#include "base/units.h"

#include <gtest/gtest.h>

namespace sfi {
namespace {

TEST(Units, Constants)
{
    EXPECT_EQ(kKiB, 1024u);
    EXPECT_EQ(kMiB, 1024u * 1024u);
    EXPECT_EQ(kGiB, 1024ull * 1024 * 1024);
    EXPECT_EQ(kWasmPageSize, 65536u);
}

TEST(Units, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(kGiB));
    EXPECT_FALSE(isPow2(kGiB + 1));
}

TEST(Units, AlignUp)
{
    EXPECT_EQ(alignUp(0, 4096), 0u);
    EXPECT_EQ(alignUp(1, 4096), 4096u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
}

TEST(Units, AlignDown)
{
    EXPECT_EQ(alignDown(4095, 4096), 0u);
    EXPECT_EQ(alignDown(4096, 4096), 4096u);
    EXPECT_EQ(alignDown(8191, 4096), 4096u);
}

TEST(Units, IsAligned)
{
    EXPECT_TRUE(isAligned(0, 8));
    EXPECT_TRUE(isAligned(64, 8));
    EXPECT_FALSE(isAligned(65, 8));
    EXPECT_FALSE(isAligned(65, 0));
}

}  // namespace
}  // namespace sfi
