#include "base/stats.h"

#include <gtest/gtest.h>

namespace sfi {
namespace {

TEST(RunningStat, MeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, Percentiles)
{
    RunningStat s;
    for (int i = 1; i <= 100; i++)
        s.add(i);
    EXPECT_NEAR(s.median(), 50.5, 0.01);
    EXPECT_NEAR(s.percentile(0), 1.0, 0.01);
    EXPECT_NEAR(s.percentile(100), 100.0, 0.01);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Histogram, Bins)
{
    Histogram h(0, 10, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(9.9);
    h.add(42.0);  // clamps to last bin
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 5u);
}

}  // namespace
}  // namespace sfi
