#include "base/stats.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "base/rng.h"

namespace sfi {
namespace {

TEST(RunningStat, MeanAndStddev)
{
    RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, Percentiles)
{
    RunningStat s;
    for (int i = 1; i <= 100; i++)
        s.add(i);
    EXPECT_NEAR(s.median(), 50.5, 0.01);
    EXPECT_NEAR(s.percentile(0), 1.0, 0.01);
    EXPECT_NEAR(s.percentile(100), 100.0, 0.01);
    EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(Geomean, Basics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Histogram, Bins)
{
    Histogram h(0, 10, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.7);
    h.add(9.9);
    h.add(42.0);  // clamps to last bin
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 2u);
    EXPECT_EQ(h.count(9), 2u);
    EXPECT_EQ(h.total(), 5u);
}

TEST(LogHistogram, EmptyIsZero)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(LogHistogram, LinearRegionIsExact)
{
    // Values below kSubBuckets each get their own bucket: percentiles
    // must be exact, not approximate.
    LogHistogram h;
    for (uint64_t v = 0; v < LogHistogram::kSubBuckets; v++)
        h.add(v);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), LogHistogram::kSubBuckets - 1);
    EXPECT_EQ(h.percentile(0), 0u);
    EXPECT_EQ(h.percentile(100), LogHistogram::kSubBuckets - 1);
    EXPECT_EQ(h.percentile(50), LogHistogram::kSubBuckets / 2);
}

TEST(LogHistogram, BucketRoundTrip)
{
    // The midpoint of a value's bucket must land back in that bucket,
    // and stay within one sub-bucket width of the value.
    for (uint64_t v : std::vector<uint64_t>{
             1, 63, 64, 65, 1000, 123456, uint64_t(1) << 32,
             (uint64_t(1) << 40) + 12345}) {
        size_t b = LogHistogram::bucketOf(v);
        uint64_t mid = LogHistogram::bucketMidpoint(b);
        EXPECT_EQ(LogHistogram::bucketOf(mid), b) << "v=" << v;
        double rel = std::abs(double(mid) - double(v)) / double(v);
        EXPECT_LE(rel, 1.0 / double(LogHistogram::kSubBuckets))
            << "v=" << v << " mid=" << mid;
    }
}

TEST(LogHistogram, PercentilesMatchSortedOracle)
{
    // Deterministic heavy-tailed sample; compare against exact
    // nearest-rank percentiles on the sorted data.
    Rng rng(12345);
    std::vector<uint64_t> vals;
    LogHistogram h;
    for (int i = 0; i < 20000; i++) {
        // Mix of microsecond-ish and long-tail values.
        uint64_t v = uint64_t(rng.nextExponential(50'000.0)) + 1;
        if (rng.next() % 100 == 0)
            v *= 50;  // tail
        vals.push_back(v);
        h.add(v);
    }
    std::sort(vals.begin(), vals.end());
    for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
        size_t rank = size_t(p / 100.0 * double(vals.size() - 1) + 0.5);
        double exact = double(vals[rank]);
        double approx = double(h.percentile(p));
        EXPECT_NEAR(approx, exact, exact * 0.03)
            << "p=" << p;  // within one bucket (~1.6%) + rank slack
    }
    EXPECT_EQ(h.max(), vals.back());
    EXPECT_EQ(h.min(), vals.front());
    EXPECT_EQ(h.count(), vals.size());
}

TEST(LogHistogram, MergeEqualsSingle)
{
    // Splitting a stream across N histograms and merging must produce
    // bit-identical results to recording into one.
    Rng rng(777);
    LogHistogram whole;
    LogHistogram parts[4];
    for (int i = 0; i < 10000; i++) {
        uint64_t v = uint64_t(rng.nextExponential(1e6)) + 1;
        whole.add(v);
        parts[i % 4].add(v);
    }
    LogHistogram merged;
    for (auto& p : parts)
        merged.merge(p);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_EQ(merged.min(), whole.min());
    EXPECT_EQ(merged.max(), whole.max());
    EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
    for (double p : {10.0, 50.0, 90.0, 99.0, 99.9})
        EXPECT_EQ(merged.percentile(p), whole.percentile(p)) << p;
}

}  // namespace
}  // namespace sfi
