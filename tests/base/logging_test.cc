#include "base/logging.h"

#include <gtest/gtest.h>

#include "base/result.h"

namespace sfi {
namespace {

TEST(Logging, InformAndWarnDoNotTerminate)
{
    SFI_INFORM("informational message %d", 42);
    SFI_WARN("warning message %s", "w");
    SUCCEED();
}

TEST(Logging, CheckPassesOnTrue)
{
    SFI_CHECK(1 + 1 == 2);
    SUCCEED();
}

TEST(LoggingDeath, CheckAborts)
{
    EXPECT_DEATH({ SFI_CHECK(false); }, "check failed");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ SFI_PANIC("boom %d", 7); }, "boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT({ SFI_FATAL("bad config"); },
                ::testing::ExitedWithCode(1), "bad config");
}

TEST(Result, OkStatus)
{
    Status s = Status::ok();
    EXPECT_TRUE(s.isOk());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.message(), "");
}

TEST(Result, ErrorStatus)
{
    Status s = Status::error("nope");
    EXPECT_FALSE(s.isOk());
    EXPECT_EQ(s.message(), "nope");
}

TEST(Result, ValueResult)
{
    Result<int> r(7);
    ASSERT_TRUE(r.isOk());
    EXPECT_EQ(r.value(), 7);
    EXPECT_EQ(*r, 7);
}

TEST(Result, ErrorResult)
{
    Result<int> r = Result<int>::error("missing");
    EXPECT_FALSE(r.isOk());
    EXPECT_EQ(r.message(), "missing");
}

TEST(ResultDeath, ValueOnErrorPanics)
{
    Result<int> r = Result<int>::error("missing");
    EXPECT_DEATH({ (void)r.value(); }, "missing");
}

}  // namespace
}  // namespace sfi
