#include "base/os_mem.h"

#include <csetjmp>
#include <csignal>
#include <cstring>

#include <gtest/gtest.h>

#include "base/units.h"

namespace sfi {
namespace {

TEST(Reservation, ReserveHugeIsCheap)
{
    // Guard-region SFI depends on reserving far more address space than
    // RAM: 64 GiB PROT_NONE must succeed on any reasonable machine.
    auto r = Reservation::reserve(64 * kGiB);
    ASSERT_TRUE(r.isOk()) << r.message();
    EXPECT_EQ(r->size(), 64 * kGiB);
    EXPECT_NE(r->base(), nullptr);
}

TEST(Reservation, AllocateIsWritable)
{
    auto r = Reservation::allocate(2 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    r->base()[0] = 0xab;
    r->base()[2 * kOsPageSize - 1] = 0xcd;
    EXPECT_EQ(r->base()[0], 0xab);
}

TEST(Reservation, CommitPartOfReservation)
{
    auto r = Reservation::reserve(16 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    ASSERT_TRUE(r->protect(4 * kOsPageSize, 4 * kOsPageSize,
                           PageAccess::ReadWrite));
    uint8_t* p = r->base() + 4 * kOsPageSize;
    p[0] = 1;
    p[4 * kOsPageSize - 1] = 2;
    EXPECT_EQ(p[0], 1);
}

TEST(Reservation, DecommitZeroes)
{
    auto r = Reservation::allocate(kOsPageSize);
    ASSERT_TRUE(r.isOk());
    r->base()[100] = 42;
    ASSERT_TRUE(r->decommit(0, kOsPageSize));
    EXPECT_EQ(r->base()[100], 0);
}

TEST(Reservation, RejectsUnalignedProtect)
{
    auto r = Reservation::reserve(4 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    EXPECT_FALSE(r->protect(1, kOsPageSize, PageAccess::ReadWrite));
    EXPECT_FALSE(r->protect(0, kOsPageSize + 1, PageAccess::ReadWrite));
    EXPECT_FALSE(
        r->protect(0, 8 * kOsPageSize, PageAccess::ReadWrite));  // OOB
}

TEST(Reservation, MoveTransfersOwnership)
{
    auto r = Reservation::allocate(kOsPageSize);
    ASSERT_TRUE(r.isOk());
    uint8_t* base = r->base();
    Reservation moved = std::move(*r);
    EXPECT_EQ(moved.base(), base);
    EXPECT_FALSE(r->valid());
}

TEST(VmaAccounting, CountsAndLimit)
{
    EXPECT_GT(currentVmaCount(), 0u);
    EXPECT_GE(maxVmaCount(), 1024u);
}

TEST(TouchedHighWater, UntouchedIsZero)
{
    // Fresh anonymous pages are not resident until first touch, so an
    // allocate-without-touch region reports an empty touched span.
    auto r = Reservation::allocate(16 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    auto hw = touchedHighWaterBytes(r->base(), r->size());
    ASSERT_TRUE(hw.isOk()) << hw.message();
    EXPECT_EQ(*hw, 0u);
}

TEST(TouchedHighWater, TracksLastTouchedPage)
{
    auto r = Reservation::allocate(16 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    // Touch pages 0..3: high water = 4 pages.
    for (int p = 0; p < 4; p++)
        r->base()[p * kOsPageSize] = 1;
    auto hw = touchedHighWaterBytes(r->base(), r->size());
    ASSERT_TRUE(hw.isOk());
    EXPECT_EQ(*hw, 4 * kOsPageSize);
    // Touch page 9 only: the span extends past the gap to page 10's
    // start even though pages 4..8 stay untouched (it is a high-water
    // mark, not a population count).
    r->base()[9 * kOsPageSize + 123] = 2;
    hw = touchedHighWaterBytes(r->base(), r->size());
    ASSERT_TRUE(hw.isOk());
    EXPECT_EQ(*hw, 10 * kOsPageSize);
}

TEST(TouchedHighWater, DecommitResetsSpan)
{
    auto r = Reservation::allocate(8 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    std::memset(r->base(), 0xff, 8 * kOsPageSize);
    auto hw = touchedHighWaterBytes(r->base(), r->size());
    ASSERT_TRUE(hw.isOk());
    EXPECT_EQ(*hw, 8 * kOsPageSize);
    ASSERT_TRUE(r->decommit(0, 8 * kOsPageSize));
    hw = touchedHighWaterBytes(r->base(), r->size());
    ASSERT_TRUE(hw.isOk());
    EXPECT_EQ(*hw, 0u);
}

TEST(TouchedHighWater, ZeroLength)
{
    auto r = Reservation::allocate(kOsPageSize);
    ASSERT_TRUE(r.isOk());
    auto hw = touchedHighWaterBytes(r->base(), 0);
    ASSERT_TRUE(hw.isOk());
    EXPECT_EQ(*hw, 0u);
}

// SIGSEGV-based probe that a guard page actually faults.
sigjmp_buf g_jmp;
void onSegv(int) { siglongjmp(g_jmp, 1); }

TEST(Reservation, GuardPageFaults)
{
    auto r = Reservation::reserve(2 * kOsPageSize);
    ASSERT_TRUE(r.isOk());
    ASSERT_TRUE(r->protect(0, kOsPageSize, PageAccess::ReadWrite));
    struct sigaction sa, old_sa;
    sa.sa_handler = onSegv;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGSEGV, &sa, &old_sa);
    volatile bool faulted = false;
    if (sigsetjmp(g_jmp, 1) == 0) {
        r->base()[kOsPageSize] = 1;  // touches the PROT_NONE page
    } else {
        faulted = true;
    }
    sigaction(SIGSEGV, &old_sa, nullptr);
    EXPECT_TRUE(faulted);
}

}  // namespace
}  // namespace sfi
