#include "base/rng.h"

#include <gtest/gtest.h>

namespace sfi {
namespace {

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; i++) {
        if (a.next() == b.next())
            same++;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; i++)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; i++) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 10000; i++) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, ExponentialMeanRoughlyCorrect)
{
    Rng rng(13);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; i++)
        sum += rng.nextExponential(5.0);
    double mean = sum / n;
    EXPECT_NEAR(mean, 5.0, 0.1);
}

TEST(Rng, UniformityGross)
{
    // Each of 8 buckets should get roughly 1/8 of the draws.
    Rng rng(17);
    int buckets[8] = {0};
    const int n = 80000;
    for (int i = 0; i < n; i++)
        buckets[rng.below(8)]++;
    for (int b = 0; b < 8; b++)
        EXPECT_NEAR(buckets[b], n / 8, n / 8 * 0.1);
}

}  // namespace
}  // namespace sfi
