/**
 * @file
 * End-to-end ColorGuard enforcement.
 *
 * The MprotectMpk backend realizes PKRU writes as real page-permission
 * flips, so on machines without PKU hardware we can still prove the
 * security property with hardware-grade enforcement: while a sandbox
 * executes with its stripe active, every other stripe's memory is
 * genuinely inaccessible — a wild load would fault.
 */
#include <gtest/gtest.h>

#include <csetjmp>
#include <csignal>

#include "mpk/mpk.h"
#include "pool/pool.h"
#include "runtime/instance.h"
#include "wasm/builder.h"

namespace sfi {
namespace {

using VT = wasm::ValType;

wasm::Module
probeModule()
{
    wasm::ModuleBuilder mb;
    mb.memory(1, 1);
    uint32_t probe = mb.importFunc("probe", {}, {VT::I64});
    auto f = mb.func("work", {VT::I32}, {VT::I64});
    f.i32Const(0).localGet(0).i32Store()  // touch own memory
        .call(probe)                      // host checks other stripes
        .end();
    mb.exportFunc("work", f.index());
    return std::move(mb).build();
}

TEST(ColorGuardEnforcement, OtherStripesInaccessibleDuringExecution)
{
    auto mpk = mpk::makeMprotect();  // enforcing backend
    pool::MemoryPool::Options popt;
    popt.config.numSlots = 6;
    popt.config.maxMemoryBytes = kWasmPageSize;
    popt.config.guardBytes = 3 * kWasmPageSize;
    popt.config.stripingEnabled = true;
    popt.mpk = mpk.get();
    auto pool = pool::MemoryPool::create(std::move(popt));
    ASSERT_TRUE(pool.isOk()) << pool.message();

    auto slot_a = pool->allocate();
    auto slot_b = pool->allocate();
    ASSERT_TRUE(slot_a.isOk() && slot_b.isOk());
    ASSERT_NE(slot_a->pkey, slot_b->pkey);
    // Touch B's memory while all keys are enabled so it is committed.
    slot_b->base[0] = 0x77;

    auto shared = rt::SharedModule::compile(
        probeModule(), jit::CompilerConfig::wamrBase());
    ASSERT_TRUE(shared.isOk());

    mpk::System* sys = mpk.get();
    uint8_t* b_base = slot_b->base;
    uint8_t* a_base = slot_a->base;
    int probes = 0;
    rt::Instance::Options iopt;
    iopt.memoryView = pool->memoryView(*slot_a, 1, 1);
    iopt.mpkSystem = sys;
    iopt.pkey = slot_a->pkey;
    auto inst = rt::Instance::create(
        shared.value(),
        {{"probe",
          [&](uint64_t*, size_t) {
              // Executing on behalf of sandbox A: A's stripe must be
              // writable, B's must be fully blocked.
              probes++;
              EXPECT_TRUE(sys->checkAccess(a_base, true));
              EXPECT_FALSE(sys->checkAccess(b_base, false));
              EXPECT_FALSE(sys->checkAccess(b_base, true));
              return rt::HostOutcome{rt::TrapKind::None, 1};
          }}},
        std::move(iopt));
    ASSERT_TRUE(inst.isOk()) << inst.message();

    auto out = (*inst)->call("work", {0xabcd});
    ASSERT_TRUE(out.ok()) << rt::name(out.trap);
    EXPECT_EQ(probes, 1);

    // After the transition out, everything is accessible again.
    EXPECT_TRUE(sys->checkAccess(b_base, true));
    EXPECT_EQ(b_base[0], 0x77);
    // And A's own store really landed in its slot.
    uint32_t v;
    std::memcpy(&v, a_base, 4);
    EXPECT_EQ(v, 0xabcdu);
}

TEST(ColorGuardEnforcement, WildReadFromWrongStripeFaults)
{
    // The raw property, without the runtime: with stripe A active,
    // touching stripe B takes a genuine SIGSEGV (page permissions were
    // really flipped by the enforcing backend).
    auto mpk = mpk::makeMprotect();
    pool::MemoryPool::Options popt;
    popt.config.numSlots = 4;
    popt.config.maxMemoryBytes = kWasmPageSize;
    popt.config.guardBytes = 2 * kWasmPageSize;
    popt.config.stripingEnabled = true;
    popt.mpk = mpk.get();
    auto pool = pool::MemoryPool::create(std::move(popt));
    ASSERT_TRUE(pool.isOk());
    auto a = pool->allocate();
    auto b = pool->allocate();
    ASSERT_TRUE(a.isOk() && b.isOk());
    b->base[0] = 1;  // commit while accessible

    mpk->writePkru(mpk::Pkru::allowOnly(a->pkey));

    static sigjmp_buf jmp;
    struct sigaction sa, old_sa;
    sa.sa_handler = [](int) { siglongjmp(jmp, 1); };
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    sigaction(SIGSEGV, &sa, &old_sa);
    volatile bool faulted = false;
    if (sigsetjmp(jmp, 1) == 0) {
        volatile uint8_t v = b->base[0];  // wild cross-stripe read
        (void)v;
    } else {
        faulted = true;
    }
    sigaction(SIGSEGV, &old_sa, nullptr);
    mpk->writePkru(mpk::Pkru::allowAll());
    EXPECT_TRUE(faulted);

    // A's own memory stayed usable the whole time.
    a->base[0] = 9;
    EXPECT_EQ(a->base[0], 9);
}

}  // namespace
}  // namespace sfi
