#include "interp/interp.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "wasm/builder.h"

namespace sfi::interp {
namespace {

using rt::TrapKind;
using wasm::ModuleBuilder;
using wasm::ValType;
using VT = wasm::ValType;

Instance
make(ModuleBuilder&& mb, std::map<std::string, HostFn> host = {})
{
    auto inst = Instance::instantiate(std::move(mb).build(),
                                      std::move(host));
    SFI_CHECK_MSG(inst.isOk(), "%s", inst.message().c_str());
    return std::move(inst.value());
}

TEST(Interp, ConstAndAdd)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32, VT::I32}, {VT::I32});
    f.localGet(0).localGet(1).i32Add().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    auto out = inst.callExport("f", {40, 2});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value, 42u);
}

TEST(Interp, I32WrapsAt32Bits)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32, VT::I32}, {VT::I32});
    f.localGet(0).localGet(1).i32Add().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f", {0xffffffffu, 1}).value, 0u);
}

TEST(Interp, SignedVsUnsignedComparisons)
{
    ModuleBuilder mb;
    auto lts = mb.func("lts", {VT::I32, VT::I32}, {VT::I32});
    lts.localGet(0).localGet(1).i32LtS().end();
    auto ltu = mb.func("ltu", {VT::I32, VT::I32}, {VT::I32});
    ltu.localGet(0).localGet(1).i32LtU().end();
    mb.exportFunc("lts", lts.index());
    mb.exportFunc("ltu", ltu.index());
    auto inst = make(std::move(mb));
    // -1 < 1 signed, but 0xffffffff > 1 unsigned.
    EXPECT_EQ(inst.callExport("lts", {0xffffffffu, 1}).value, 1u);
    EXPECT_EQ(inst.callExport("ltu", {0xffffffffu, 1}).value, 0u);
}

TEST(Interp, DivisionSemantics)
{
    ModuleBuilder mb;
    auto divs = mb.func("divs", {VT::I32, VT::I32}, {VT::I32});
    divs.localGet(0).localGet(1).i32DivS().end();
    auto rems = mb.func("rems", {VT::I32, VT::I32}, {VT::I32});
    rems.localGet(0).localGet(1).i32RemS().end();
    mb.exportFunc("divs", divs.index());
    mb.exportFunc("rems", rems.index());
    auto inst = make(std::move(mb));

    EXPECT_EQ(inst.callExport("divs", {uint64_t(uint32_t(-7)), 2}).value,
              uint32_t(-3));
    EXPECT_EQ(inst.callExport("divs", {7, 0}).trap, TrapKind::DivByZero);
    EXPECT_EQ(inst.callExport("divs", {0x80000000u, 0xffffffffu}).trap,
              TrapKind::IntegerOverflow);
    // Wasm: INT_MIN % -1 == 0, no trap.
    auto r = inst.callExport("rems", {0x80000000u, 0xffffffffu});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 0u);
}

TEST(Interp, ShiftsAndRotatesMask)
{
    ModuleBuilder mb;
    auto shl = mb.func("shl", {VT::I32, VT::I32}, {VT::I32});
    shl.localGet(0).localGet(1).i32Shl().end();
    auto rot = mb.func("rot", {VT::I32, VT::I32}, {VT::I32});
    rot.localGet(0).localGet(1).i32Rotl().end();
    mb.exportFunc("shl", shl.index());
    mb.exportFunc("rot", rot.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("shl", {1, 33}).value, 2u);  // count mod 32
    EXPECT_EQ(inst.callExport("rot", {0x80000001u, 1}).value, 3u);
}

TEST(Interp, LoopComputesSum)
{
    ModuleBuilder mb;
    auto f = mb.func("sum", {VT::I32}, {VT::I32});
    uint32_t i = f.local(VT::I32);
    uint32_t acc = f.local(VT::I32);
    f.block()
        .loop()
        .localGet(i).localGet(f.param(0)).i32GeU().brIf(1)
        .localGet(acc).localGet(i).i32Add().localSet(acc)
        .localGet(i).i32Const(1).i32Add().localSet(i)
        .br(0)
        .end()
        .end()
        .localGet(acc)
        .end();
    mb.exportFunc("sum", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("sum", {0}).value, 0u);
    EXPECT_EQ(inst.callExport("sum", {10}).value, 45u);
    EXPECT_EQ(inst.callExport("sum", {1000}).value, 499500u);
}

TEST(Interp, IfElseBothArms)
{
    ModuleBuilder mb;
    auto f = mb.func("pick", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.localGet(0)
        .if_().i32Const(111).localSet(out)
        .else_().i32Const(222).localSet(out)
        .end()
        .localGet(out)
        .end();
    mb.exportFunc("pick", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("pick", {1}).value, 111u);
    EXPECT_EQ(inst.callExport("pick", {0}).value, 222u);
}

TEST(Interp, IfWithoutElse)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.i32Const(5).localSet(out)
        .localGet(0).if_().i32Const(9).localSet(out).end()
        .localGet(out)
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f", {1}).value, 9u);
    EXPECT_EQ(inst.callExport("f", {0}).value, 5u);
}

TEST(Interp, BrTableSwitch)
{
    ModuleBuilder mb;
    auto f = mb.func("sw", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.block().block().block()
        .localGet(0).brTable({0, 1, 2})
        .end()
        .i32Const(100).localSet(out).br(1)
        .end()
        .i32Const(200).localSet(out).br(0)
        .end()
        .localGet(out)
        .end();
    mb.exportFunc("sw", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("sw", {0}).value, 100u);
    EXPECT_EQ(inst.callExport("sw", {1}).value, 200u);
    EXPECT_EQ(inst.callExport("sw", {2}).value, 0u);   // default: falls out
    EXPECT_EQ(inst.callExport("sw", {99}).value, 0u);  // default clamps
}

TEST(Interp, MemoryLoadStore)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto store = mb.func("store", {VT::I32, VT::I32}, {});
    store.localGet(0).localGet(1).i32Store().end();
    auto load = mb.func("load", {VT::I32}, {VT::I32});
    load.localGet(0).i32Load().end();
    mb.exportFunc("store", store.index());
    mb.exportFunc("load", load.index());
    auto inst = make(std::move(mb));
    ASSERT_TRUE(inst.callExport("store", {100, 0xdeadbeefu}).ok());
    EXPECT_EQ(inst.callExport("load", {100}).value, 0xdeadbeefu);
}

TEST(Interp, SubWordAccesses)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {VT::I32});
    // Store 0x80 as a byte at 10; load back sign- and zero-extended.
    f.i32Const(10).i32Const(0x80).i32Store8()
        .i32Const(10).i32Load8s()       // -128
        .i32Const(10).i32Load8u()       // 128
        .i32Add()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f").value, 0u);  // -128 + 128
}

TEST(Interp, OutOfBoundsTraps)
{
    ModuleBuilder mb;
    mb.memory(1, 1);  // 64 KiB
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.localGet(0).i32Load().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_TRUE(inst.callExport("f", {65532}).ok());
    EXPECT_EQ(inst.callExport("f", {65533}).trap, TrapKind::OutOfBounds);
    EXPECT_EQ(inst.callExport("f", {0xffffffffu}).trap,
              TrapKind::OutOfBounds);
}

TEST(Interp, StaticOffsetBeyondMemoryTraps)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.localGet(0).i32Load(65000).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_TRUE(inst.callExport("f", {0}).ok());
    EXPECT_EQ(inst.callExport("f", {1000}).trap, TrapKind::OutOfBounds);
}

TEST(Interp, MemoryGrowAndSize)
{
    ModuleBuilder mb;
    mb.memory(1, 3);
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.localGet(0).memoryGrow().end();
    auto size = mb.func("size", {}, {VT::I32});
    size.memorySize().end();
    mb.exportFunc("grow", f.index());
    mb.exportFunc("size", size.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("size").value, 1u);
    EXPECT_EQ(inst.callExport("grow", {1}).value, 1u);   // old size
    EXPECT_EQ(inst.callExport("size").value, 2u);
    EXPECT_EQ(inst.callExport("grow", {5}).value, 0xffffffffu);  // -1
    EXPECT_EQ(inst.callExport("size").value, 2u);
}

TEST(Interp, MemoryFillAndCopy)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(0).i32Const(0xab).i32Const(16).memoryFill()
        .i32Const(100).i32Const(0).i32Const(8).memoryCopy()
        .i32Const(104).i32Load()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f").value, 0xabababab);
}

TEST(Interp, MemoryFillOutOfBoundsTraps)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {});
    f.i32Const(65530).i32Const(0).i32Const(100).memoryFill().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f").trap, TrapKind::OutOfBounds);
}

TEST(Interp, DataSegmentsInitializeMemory)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    mb.data(8, {0x78, 0x56, 0x34, 0x12});
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(8).i32Load().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f").value, 0x12345678u);
}

TEST(Interp, GlobalsReadWrite)
{
    ModuleBuilder mb;
    mb.global(VT::I64, true, 7);
    auto f = mb.func("bump", {}, {VT::I64});
    f.globalGet(0).i64Const(1).i64Add().globalSet(0).globalGet(0).end();
    mb.exportFunc("bump", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("bump").value, 8u);
    EXPECT_EQ(inst.callExport("bump").value, 9u);
    EXPECT_EQ(inst.global(0), 9u);
}

TEST(Interp, DirectCallsAndRecursion)
{
    ModuleBuilder mb;
    auto fib = mb.func("fib", {VT::I32}, {VT::I32});
    fib.localGet(0).i32Const(2).i32LtU()
        .if_()
        .localGet(0).ret()
        .end()
        .localGet(0).i32Const(1).i32Sub().call(fib.index())
        .localGet(0).i32Const(2).i32Sub().call(fib.index())
        .i32Add()
        .end();
    mb.exportFunc("fib", fib.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("fib", {10}).value, 55u);
    EXPECT_EQ(inst.callExport("fib", {20}).value, 6765u);
}

TEST(Interp, InfiniteRecursionExhaustsStack)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {}, {});
    f.call(0).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f").trap, TrapKind::StackExhausted);
}

TEST(Interp, CallIndirect)
{
    ModuleBuilder mb;
    auto add = mb.func("add", {VT::I32, VT::I32}, {VT::I32});
    add.localGet(0).localGet(1).i32Add().end();
    auto sub = mb.func("sub", {VT::I32, VT::I32}, {VT::I32});
    sub.localGet(0).localGet(1).i32Sub().end();
    auto other = mb.func("other", {}, {});
    other.end();
    mb.table({add.index(), sub.index(), other.index()});
    uint32_t sig = mb.typeIndexOf({VT::I32, VT::I32}, {VT::I32});
    auto f = mb.func("dispatch", {VT::I32, VT::I32, VT::I32}, {VT::I32});
    f.localGet(1).localGet(2).localGet(0).callIndirect(sig).end();
    mb.exportFunc("dispatch", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("dispatch", {0, 30, 12}).value, 42u);
    EXPECT_EQ(inst.callExport("dispatch", {1, 30, 12}).value, 18u);
    EXPECT_EQ(inst.callExport("dispatch", {2, 0, 0}).trap,
              TrapKind::IndirectCallTypeMismatch);
    EXPECT_EQ(inst.callExport("dispatch", {9, 0, 0}).trap,
              TrapKind::IndirectCallOutOfRange);
}

TEST(Interp, HostCalls)
{
    ModuleBuilder mb;
    uint32_t h = mb.importFunc("double_it", {VT::I64}, {VT::I64});
    auto f = mb.func("f", {VT::I64}, {VT::I64});
    f.localGet(0).call(h).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb),
                     {{"double_it", [](uint64_t* a, size_t) {
                           return HostOutcome{rt::TrapKind::None,
                                              a[0] * 2};
                       }}});
    EXPECT_EQ(inst.callExport("f", {21}).value, 42u);
}

TEST(Interp, HostTrapPropagates)
{
    ModuleBuilder mb;
    uint32_t h = mb.importFunc("bad", {}, {});
    auto f = mb.func("f", {}, {});
    f.call(h).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb),
                     {{"bad", [](uint64_t*, size_t) {
                           return HostOutcome{rt::TrapKind::HostError, 0};
                       }}});
    EXPECT_EQ(inst.callExport("f").trap, TrapKind::HostError);
}

TEST(Interp, UnresolvedImportFailsInstantiation)
{
    ModuleBuilder mb;
    mb.importFunc("ghost", {}, {});
    auto inst = Instance::instantiate(std::move(mb).build(), {});
    EXPECT_FALSE(inst.isOk());
}

TEST(Interp, UnreachableTraps)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {}, {});
    f.unreachable().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f").trap, TrapKind::Unreachable);
}

TEST(Interp, FuelLimitsExecution)
{
    ModuleBuilder mb;
    auto f = mb.func("spin", {}, {});
    f.block().loop().br(0).end().end().end();
    mb.exportFunc("spin", f.index());
    auto inst = make(std::move(mb));
    inst.setFuel(10000);
    EXPECT_EQ(inst.callExport("spin").trap, TrapKind::EpochInterrupt);
}

TEST(Interp, AccessHookEnforcesColors)
{
    // Emulated-MPK semantics: the hook denies writes, mimicking a
    // wrong-color stripe.
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {});
    f.i32Const(0).i32Const(1).i32Store().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    inst.setAccessHook([](const void*, bool is_write) {
        return !is_write;
    });
    EXPECT_EQ(inst.callExport("f").trap, TrapKind::MpkViolation);
    inst.setAccessHook({});
    EXPECT_TRUE(inst.callExport("f").ok());
}

TEST(Interp, F64Arithmetic)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::F64, VT::F64}, {VT::F64});
    f.localGet(0).localGet(1).f64Add()
        .localGet(0).f64Mul()
        .f64Sqrt()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    // sqrt((3+4)*3) = sqrt(21)
    auto out = inst.callExport(
        "f", {std::bit_cast<uint64_t>(3.0), std::bit_cast<uint64_t>(4.0)});
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), std::sqrt(21.0));
}

TEST(Interp, F64Conversions)
{
    ModuleBuilder mb;
    auto f = mb.func("round_trip", {VT::I32}, {VT::I32});
    f.localGet(0).f64ConvertI32S().f64Const(2.0).f64Mul().i32TruncF64S()
        .end();
    mb.exportFunc("round_trip", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("round_trip", {21}).value, 42u);
    EXPECT_EQ(inst.callExport("round_trip", {uint32_t(-21)}).value,
              uint32_t(-42));
}

TEST(Interp, TruncOutOfRangeTraps)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::F64}, {VT::I32});
    f.localGet(0).i32TruncF64S().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f", {std::bit_cast<uint64_t>(1e20)}).trap,
              TrapKind::IntegerOverflow);
    EXPECT_EQ(
        inst.callExport("f", {std::bit_cast<uint64_t>(-3e9)}).trap,
        TrapKind::IntegerOverflow);
    EXPECT_TRUE(
        inst.callExport("f", {std::bit_cast<uint64_t>(1e9)}).ok());
}

TEST(Interp, SelectPicksByCondition)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.i32Const(7).i32Const(8).localGet(0).select().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f", {1}).value, 7u);
    EXPECT_EQ(inst.callExport("f", {0}).value, 8u);
}

TEST(Interp, I64FullWidth)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I64, VT::I64}, {VT::I64});
    f.localGet(0).localGet(1).i64Mul().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("f", {0x100000000ull, 4}).value,
              0x400000000ull);
}

TEST(Interp, ExtendAndWrap)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32}, {VT::I64});
    f.localGet(0).i64ExtendI32S().end();
    auto g = mb.func("g", {VT::I32}, {VT::I64});
    g.localGet(0).i64ExtendI32U().end();
    mb.exportFunc("exts", f.index());
    mb.exportFunc("extu", g.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst.callExport("exts", {0x80000000u}).value,
              0xffffffff80000000ull);
    EXPECT_EQ(inst.callExport("extu", {0x80000000u}).value,
              0x80000000ull);
}

}  // namespace
}  // namespace sfi::interp
