#include "elf/symtab.h"

#include <gtest/gtest.h>

#include "w2c/kernels.h"

namespace sfi::elf {
namespace {

TEST(Symtab, ReadsOwnBinary)
{
    auto syms = readFunctionSymbols("/proc/self/exe");
    ASSERT_TRUE(syms.isOk()) << syms.message();
    EXPECT_GT(syms->size(), 100u);
}

TEST(Symtab, FindsKernelInstantiations)
{
    // Force the instantiations to be referenced so the linker keeps
    // them.
    volatile auto keep = &w2c::kernCompress<w2c::SeguePolicy>;
    (void)keep;
    auto syms = readFunctionSymbols("/proc/self/exe");
    ASSERT_TRUE(syms.isOk());
    uint64_t segue = totalSizeMatching(
        *syms, {"kernCompress", "SeguePolicy"});
    uint64_t base = totalSizeMatching(
        *syms, {"kernCompress", "BaseAddPolicy"});
    EXPECT_GT(segue, 100u);
    EXPECT_GT(base, 100u);
}

TEST(Symtab, MissingFileFails)
{
    EXPECT_FALSE(readFunctionSymbols("/nonexistent").isOk());
}

TEST(Symtab, MatchingIsConjunctive)
{
    auto syms = readFunctionSymbols("/proc/self/exe");
    ASSERT_TRUE(syms.isOk());
    EXPECT_EQ(totalSizeMatching(*syms, {"kernCompress", "NoSuchPolicy"}),
              0u);
}

}  // namespace
}  // namespace sfi::elf
