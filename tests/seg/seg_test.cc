#include "seg/seg.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "x64/assembler.h"
#include "x64/exec_code.h"

namespace sfi::seg {
namespace {

TEST(Seg, SetAndGetRoundTrip)
{
    uint64_t before = getGsBase();
    setGsBase(0x1000);
    EXPECT_EQ(getGsBase(), 0x1000u);
    setGsBase(before);
    EXPECT_EQ(getGsBase(), before);
}

TEST(Seg, ScopedRestores)
{
    uint64_t before = getGsBase();
    {
        ScopedGsBase scope(0xbeef000);
        EXPECT_EQ(getGsBase(), 0xbeef000u);
        {
            ScopedGsBase nested(0xcafe000);
            EXPECT_EQ(getGsBase(), 0xcafe000u);
        }
        EXPECT_EQ(getGsBase(), 0xbeef000u);
    }
    EXPECT_EQ(getGsBase(), before);
}

TEST(Seg, ArchPrctlPathAlsoWorks)
{
    // The syscall fallback must work even where FSGSBASE is available:
    // Firefox runs on both old and new CPUs (§4.1).
    uint64_t before = getGsBase();
    setGsBaseWith(GsWriteMode::ArchPrctl, 0x2000);
    EXPECT_EQ(getGsBase(), 0x2000u);
    setGsBaseWith(GsWriteMode::ArchPrctl, before);
}

TEST(Seg, GsRelativeLoadSeesBase)
{
    // The defining Segue property: a gs:[off] load reads memory at
    // gs_base + off. JIT a `mov rax, gs:[edi]; ret` and point %gs at a
    // buffer.
    using namespace sfi::x64;
    Assembler a;
    a.load(Width::W64, false, Reg::rax, Mem::gs32(Reg::rdi));
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t)>();

    alignas(16) uint64_t heap[8] = {111, 222, 333, 444};
    ScopedGsBase scope(reinterpret_cast<uint64_t>(heap));
    EXPECT_EQ(fn(0), 111u);
    EXPECT_EQ(fn(8), 222u);
    EXPECT_EQ(fn(24), 444u);
}

TEST(Seg, Gs32TruncatesOffsetTo32Bits)
{
    // Segue's 0x67 prefix computes the effective address mod 2^32: a
    // 64-bit register holding garbage in the upper half must still access
    // heap_base + (u32)offset. This is the isolation-critical property.
    using namespace sfi::x64;
    Assembler a;
    a.load(Width::W64, false, Reg::rax, Mem::gs32(Reg::rdi));
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t)>();

    alignas(16) uint64_t heap[8] = {111, 222, 333, 444};
    ScopedGsBase scope(reinterpret_cast<uint64_t>(heap));
    // Upper 32 bits poisoned; hardware must ignore them.
    EXPECT_EQ(fn(0xdeadbeef00000008ull), 222u);
}

TEST(Seg, WriteModeResolved)
{
    // Whatever mode was resolved must round-trip (covered above); just
    // check the resolution is stable.
    EXPECT_EQ(gsWriteMode(), gsWriteMode());
    if (fsgsbaseUsable())
        EXPECT_EQ(gsWriteMode(), GsWriteMode::Fsgsbase);
    else
        EXPECT_EQ(gsWriteMode(), GsWriteMode::ArchPrctl);
}

}  // namespace
}  // namespace sfi::seg
