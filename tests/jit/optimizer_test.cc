/**
 * @file
 * Targeted fixtures for the verified JIT optimizer (ISSUE 4): the
 * dominating-check rule drops exactly the guards it may, clobbered
 * indices keep theirs, constant addresses below the initial memory
 * size are proven statically, addressing folds round-trip, and the
 * assembler peephole layer rewrites only what it can prove. Every
 * optimized module is re-proven by verify::checkModule — the
 * optimizer is only allowed to be fast because the verifier shows it
 * stayed safe.
 */
#include "jit/optimizer.h"

#include <gtest/gtest.h>

#include "jit/compiler.h"
#include "runtime/instance.h"
#include "verify/checker.h"
#include "wasm/builder.h"
#include "wkld/workloads.h"
#include "x64/assembler.h"

namespace sfi::jit {
namespace {

using wasm::ModuleBuilder;
using VT = wasm::ValType;

CompilerConfig
boundsCfg(bool optimize)
{
    return CompilerConfig{.mem = MemStrategy::BoundsCheck,
                          .optimize = optimize};
}

/** Compiles under @p cfg, asserting the verifier stays green. */
CompiledModule
compileVerified(const wasm::Module& m, const CompilerConfig& cfg)
{
    auto cm = compile(m, cfg);
    SFI_CHECK_MSG(cm.isOk(), "%s", cm.message().c_str());
    auto rep = verify::checkModule(*cm);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    return std::move(*cm);
}

uint64_t
runMain(const wasm::Module& m, const CompilerConfig& cfg, uint64_t a0,
        rt::TrapKind* trap = nullptr)
{
    auto shared = rt::SharedModule::compile(m, cfg);
    SFI_CHECK_MSG(shared.isOk(), "%s", shared.message().c_str());
    auto inst = rt::Instance::create(*shared);
    SFI_CHECK_MSG(inst.isOk(), "%s", inst.message().c_str());
    auto out = (*inst)->call("main", {a0});
    if (trap)
        *trap = out.trap;
    return out.trap == rt::TrapKind::None ? out.value : 0;
}

/** Two accesses through the same local; the wider check dominates. */
wasm::Module
dominatedModule()
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("main", {VT::I32}, {VT::I32});
    f.localGet(0).i32Const(11).i32Store(8)  // reach idx+12: check stays
        .localGet(0).i32Const(22).i32Store(0)  // reach idx+4: dominated
        .localGet(0).i32Load(8)                // reach idx+12: dominated
        .end();
    mb.exportFunc("main", f.index());
    return std::move(mb).build();
}

TEST(Optimizer, DominatedCheckDropped)
{
    wasm::Module m = dominatedModule();
    auto opt = compileVerified(m, boundsCfg(true));
    EXPECT_EQ(opt.optStats.checksConsidered, 3u);
    EXPECT_GE(opt.optStats.checksDominated, 2u);
    EXPECT_EQ(opt.optStats.checksStatic, 0u);  // param index: no bound

    // Fewer emitted guards means smaller code; the verifier still
    // proves all three accesses (boundsChecked counts proven accesses,
    // not emitted cmp instructions) through the dominating-check rule.
    auto noopt = compileVerified(m, boundsCfg(false));
    auto repOpt = verify::checkModule(opt);
    EXPECT_EQ(repOpt.stats.boundsChecked, 3u);
    EXPECT_LT(opt.totalCodeBytes, noopt.totalCodeBytes);

    // Bit-for-bit equivalent where both are in bounds.
    EXPECT_EQ(runMain(m, boundsCfg(true), 64),
              runMain(m, boundsCfg(false), 64));
    EXPECT_EQ(runMain(m, boundsCfg(true), 64), 11u);
}

TEST(Optimizer, ClobberedIndexKeepsCheck)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("main", {VT::I32}, {VT::I32});
    // The first check proves local0+12; then local0 is redefined by a
    // multiply (not an offset the fact could be shifted through), so
    // the second access must keep its guard.
    f.localGet(0).i32Const(11).i32Store(8)
        .localGet(0).i32Const(3).i32Mul().localSet(0)
        .localGet(0).i32Const(22).i32Store(0)
        .localGet(0).i32Load(0)
        .end();
    mb.exportFunc("main", f.index());
    wasm::Module m = std::move(mb).build();

    auto opt = compileVerified(m, boundsCfg(true));
    EXPECT_EQ(opt.optStats.checksDominated, 1u);  // only the final load
    auto repOpt = verify::checkModule(opt);
    EXPECT_GE(repOpt.stats.boundsChecked, 2u);  // store1 + store2 guarded

    EXPECT_EQ(runMain(m, boundsCfg(true), 8),
              runMain(m, boundsCfg(false), 8));
    EXPECT_EQ(runMain(m, boundsCfg(true), 8), 22u);
}

TEST(Optimizer, ConstAddressBelowInitialSizeElided)
{
    ModuleBuilder mb;
    mb.memory(1, 1);  // 65536 bytes from instantiation on
    auto f = mb.func("main", {VT::I32}, {VT::I32});
    f.i32Const(100).i32Const(7).i32Store(0)
        .i32Const(100).i32Load(0)
        .end();
    mb.exportFunc("main", f.index());
    wasm::Module m = std::move(mb).build();

    auto opt = compileVerified(m, boundsCfg(true));
    EXPECT_EQ(opt.optStats.checksConsidered, 2u);
    EXPECT_GE(opt.optStats.checksStatic, 1u);
    EXPECT_EQ(opt.optStats.checksEliminated(), 2u);

    // No dynamic guard remains; the verifier proves both accesses
    // statically (104 <= min memory size, monotone under grow).
    auto rep = verify::checkModule(opt);
    EXPECT_EQ(rep.stats.boundsChecked, 0u);
    EXPECT_GE(rep.stats.boundsStatic, 2u);

    EXPECT_EQ(runMain(m, boundsCfg(true), 0), 7u);
    EXPECT_EQ(runMain(m, boundsCfg(false), 0), 7u);
}

TEST(Optimizer, ConstAddressAboveInitialSizeKeepsCheck)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("main", {VT::I32}, {VT::I32});
    f.i32Const(70000).i32Const(7).i32Store(0).i32Const(0).end();
    mb.exportFunc("main", f.index());
    wasm::Module m = std::move(mb).build();

    auto opt = compileVerified(m, boundsCfg(true));
    EXPECT_EQ(opt.optStats.checksConsidered, 1u);
    EXPECT_EQ(opt.optStats.checksEliminated(), 0u);

    // And the guard it kept fires: 70004 > 65536.
    for (bool optimize : {true, false}) {
        rt::TrapKind trap = rt::TrapKind::None;
        runMain(m, boundsCfg(optimize), 0, &trap);
        EXPECT_EQ(static_cast<int>(trap),
                  static_cast<int>(rt::TrapKind::OutOfBounds));
    }
}

TEST(Optimizer, AddressFoldRoundTripsUnderEveryStrategy)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("main", {VT::I32}, {VT::I32});
    // Store through an `i32.add const` chain, read back through the
    // plain form; the fold must land on the same byte under every
    // addressing shape (including the %gs forms). The index is masked
    // so the optimizer can prove the explicit add cannot wrap — memarg
    // offsets add at infinite precision, `i32.add` wraps, so folding
    // an unbounded index would change trap behavior and is refused.
    f.localGet(0).i32Const(0xffff).i32And().i32Const(16).i32Add()
        .i32Const(0xbeef).i32Store(4)
        .localGet(0).i32Const(0xffff).i32And().i32Load(20)
        .end();
    mb.exportFunc("main", f.index());
    wasm::Module m = std::move(mb).build();

    const CompilerConfig configs[] = {
        CompilerConfig::native(),       CompilerConfig::wamrBase(),
        CompilerConfig::wamrSegue(),    CompilerConfig::wamrSegueLoads(),
        CompilerConfig::lfiBase(),      CompilerConfig::lfiSegue(),
        {MemStrategy::BoundsCheck},     {MemStrategy::SegueBounds},
    };
    for (const CompilerConfig& base : configs) {
        CompilerConfig cfg = base;
        cfg.optimize = true;
        auto cm = compileVerified(m, cfg);
        EXPECT_GE(cm.optStats.addsFolded, 1u) << name(cfg.mem);
        CompilerConfig off = base;
        off.optimize = false;
        EXPECT_EQ(runMain(m, cfg, 256), runMain(m, off, 256))
            << name(cfg.mem);
        EXPECT_EQ(runMain(m, cfg, 256), 0xbeefu) << name(cfg.mem);
    }
}

TEST(Optimizer, CountersNonzeroOnRegistryWorkloads)
{
    // The acceptance bar: on the SPEC-proxy suite the optimizer must
    // eliminate a nonzero, counter-reported fraction of guards, and the
    // whole suite must still verify.
    OptStats total;
    uint64_t optBytes = 0, nooptBytes = 0;
    for (const auto& w : wkld::spec17()) {
        wasm::Module m = w.make();
        auto opt = compileVerified(m, boundsCfg(true));
        auto noopt = compileVerified(m, boundsCfg(false));
        total.merge(opt.optStats);
        optBytes += opt.totalCodeBytes;
        nooptBytes += noopt.totalCodeBytes;
    }
    EXPECT_GT(total.checksConsidered, 0u);
    EXPECT_GT(total.checksEliminated(), 0u);
    EXPECT_LT(total.checksEliminated(), total.checksConsidered);
    EXPECT_GT(total.peepXorZeros, 0u);
    EXPECT_GE(total.peepBytesSaved,
              3 * total.peepMovsDropped + 2 * total.peepZextsDropped +
                  3 * total.peepXorZeros);
    EXPECT_LT(optBytes, nooptBytes);  // guard elimination shrinks code
}

// --- assembler peephole layer, in isolation ---

TEST(Peephole, DropsDead64BitSelfMov)
{
    x64::Assembler a;
    a.setPeephole(true);
    a.mov(x64::Width::W64, x64::Reg::rax, x64::Reg::rax);
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(a.peepStats().movsDropped, 1u);
    // Cross-register moves are untouched.
    a.mov(x64::Width::W64, x64::Reg::rax, x64::Reg::rcx);
    EXPECT_EQ(a.size(), 3u);
}

TEST(Peephole, DropsZextOnlyAfterZeroExtendingWrite)
{
    x64::Assembler a;
    a.setPeephole(true);
    // No fact yet: the truncation idiom is load-bearing, keep it.
    a.mov(x64::Width::W32, x64::Reg::rcx, x64::Reg::rcx);
    size_t kept = a.size();
    EXPECT_GT(kept, 0u);
    // That mov itself zero-extended rcx: a second one is redundant.
    a.mov(x64::Width::W32, x64::Reg::rcx, x64::Reg::rcx);
    EXPECT_EQ(a.size(), kept);
    EXPECT_EQ(a.peepStats().zextsDropped, 1u);
    // A 32-bit ALU op re-establishes the fact...
    a.alu(x64::AluOp::Add, x64::Width::W32, x64::Reg::rcx, x64::Reg::rdx);
    size_t after_alu = a.size();
    a.mov(x64::Width::W32, x64::Reg::rcx, x64::Reg::rcx);
    EXPECT_EQ(a.size(), after_alu);
    // ...but a bound label is a join point and kills it.
    x64::Label l = a.newLabel();
    a.bind(l);
    a.mov(x64::Width::W32, x64::Reg::rcx, x64::Reg::rcx);
    EXPECT_GT(a.size(), after_alu);
}

TEST(Peephole, XorZeroIdiom)
{
    x64::Assembler a;
    a.setPeephole(true);
    a.movImm32(x64::Reg::rax, 0);
    ASSERT_EQ(a.size(), 2u);
    EXPECT_EQ(a.code()[0], 0x33);  // xor eax, eax
    EXPECT_EQ(a.peepStats().xorZeros, 1u);
    // Nonzero immediates keep the plain encoding.
    a.movImm32(x64::Reg::rax, 5);
    EXPECT_EQ(a.code()[2], 0xb8);

    // Off by default: emission is bit-stable for existing clients.
    x64::Assembler plain;
    plain.movImm32(x64::Reg::rax, 0);
    EXPECT_EQ(plain.size(), 5u);
    EXPECT_EQ(plain.code()[0], 0xb8);
}

}  // namespace
}  // namespace sfi::jit
