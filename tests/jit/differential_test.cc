/**
 * @file
 * Differential testing: every SFI strategy must compute exactly what the
 * reference interpreter computes — same result bits, same trap kind,
 * same final memory and global state. This is the strongest correctness
 * evidence for the Segue code generator: gs-relative addressing must be
 * observationally identical to classic base+offset SFI.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "interp/interp.h"
#include "jit/compiler.h"
#include "runtime/instance.h"
#include "tests/support/program_gen.h"
#include "verify/checker.h"

namespace sfi {
namespace {

using jit::CompilerConfig;

uint64_t
hashMemory(const uint8_t* data, size_t n)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < n; i++) {
        h ^= data[i];
        h *= 1099511628211ull;
    }
    return h;
}

struct RunResult
{
    rt::TrapKind trap;
    uint64_t value;
    uint64_t memHash;
    uint64_t global0;
};

RunResult
runInterp(const wasm::Module& m, uint64_t a0, uint64_t a1)
{
    auto inst = interp::Instance::instantiate(m);
    SFI_CHECK(inst.isOk());
    auto out = inst->callExport("main", {a0, a1});
    return {out.trap, out.trap == rt::TrapKind::None ? out.value : 0,
            hashMemory(inst->memory().base(), inst->memory().byteSize()),
            inst->global(0)};
}

RunResult
runJit(const wasm::Module& m, const CompilerConfig& cfg, uint64_t a0,
       uint64_t a1)
{
    auto shared = rt::SharedModule::compile(m, cfg);
    SFI_CHECK_MSG(shared.isOk(), "%s", shared.message().c_str());
    // Static SFI verification rides along on every generated program.
    auto rep = verify::checkModule((*shared)->code());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    auto inst = rt::Instance::create(*shared);
    SFI_CHECK_MSG(inst.isOk(), "%s", inst.message().c_str());
    auto out = (*inst)->call("main", {a0, a1});
    return {out.trap, out.trap == rt::TrapKind::None ? out.value : 0,
            hashMemory((*inst)->memory().base(),
                       (*inst)->memory().byteSize()),
            (*inst)->global(0)};
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialTest, AllStrategiesMatchInterpreter)
{
    uint64_t seed = GetParam();
    wasm::Module m = testing::generateProgram(seed);

    const CompilerConfig configs[] = {
        CompilerConfig::native(),       CompilerConfig::wamrBase(),
        CompilerConfig::wamrSegue(),    CompilerConfig::wamrSegueLoads(),
        CompilerConfig::lfiBase(),      CompilerConfig::lfiSegue(),
        {jit::MemStrategy::BoundsCheck},
        {jit::MemStrategy::SegueBounds},
    };

    const uint64_t arg_sets[][2] = {
        {0, 0},
        {7, 0x123456789abcdefull},
        {0xffffffffu, UINT64_MAX},
        {42, 42},
    };

    for (const auto& args : arg_sets) {
        RunResult ref = runInterp(m, args[0], args[1]);
        for (const CompilerConfig& base_cfg : configs) {
            // Optimizer on and off must both match the interpreter
            // bit-for-bit: guard elimination and folding may change
            // the code, never the observable results.
            for (bool optimize : {true, false}) {
                CompilerConfig cfg = base_cfg;
                cfg.optimize = optimize;
                RunResult got = runJit(m, cfg, args[0], args[1]);
                std::string where =
                    std::string(jit::name(cfg.mem)) + "/" +
                    jit::name(cfg.cfi) +
                    (optimize ? "/opt" : "/no-opt") +
                    " seed=" + std::to_string(seed);
                EXPECT_EQ(static_cast<int>(got.trap),
                          static_cast<int>(ref.trap))
                    << where;
                EXPECT_EQ(got.value, ref.value) << where;
                EXPECT_EQ(got.memHash, ref.memHash) << where;
                EXPECT_EQ(got.global0, ref.global0) << where;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(Differential, LargerProgramsSpotCheck)
{
    testing::GenOptions opts;
    opts.numFunctions = 5;
    opts.maxStatements = 30;
    opts.maxExprDepth = 7;
    for (uint64_t seed = 1000; seed < 1008; seed++) {
        wasm::Module m = testing::generateProgram(seed, opts);
        RunResult ref = runInterp(m, 3, 99);
        for (const CompilerConfig& cfg :
             {CompilerConfig::wamrSegue(), CompilerConfig::lfiSegue()}) {
            RunResult got = runJit(m, cfg, 3, 99);
            EXPECT_EQ(got.value, ref.value) << seed;
            EXPECT_EQ(got.memHash, ref.memHash) << seed;
        }
    }
}

}  // namespace
}  // namespace sfi
