#include "jit/compiler.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "runtime/instance.h"
#include "verify/checker.h"
#include "wasm/builder.h"

namespace sfi::jit {
namespace {

using rt::HostFn;
using rt::HostOutcome;
using rt::Instance;
using rt::Outcome;
using rt::SharedModule;
using rt::TrapKind;
using wasm::ModuleBuilder;
using VT = wasm::ValType;

/** All strategies every behavioral test must pass under. */
const CompilerConfig kAllConfigs[] = {
    CompilerConfig::native(),       CompilerConfig::wamrBase(),
    CompilerConfig::wamrSegue(),    CompilerConfig::wamrSegueLoads(),
    CompilerConfig::lfiBase(),      CompilerConfig::lfiSegue(),
    {MemStrategy::BoundsCheck},     {MemStrategy::SegueBounds},
};

std::string
configName(const CompilerConfig& c)
{
    std::string n = name(c.mem);
    if (c.cfi == CfiMode::Lfi)
        n += "_lfi";
    for (char& ch : n)
        if (ch == '-')
            ch = '_';
    return n;
}

class JitStrategyTest : public ::testing::TestWithParam<CompilerConfig>
{
  protected:
    std::unique_ptr<Instance>
    make(ModuleBuilder&& mb, std::map<std::string, HostFn> host = {})
    {
        auto shared =
            SharedModule::compile(std::move(mb).build(), GetParam());
        SFI_CHECK_MSG(shared.isOk(), "%s", shared.message().c_str());
        // Every module any behavioral test compiles is also statically
        // verified: the emitted bytes must prove the SFI contract.
        auto rep = verify::checkModule((*shared)->code());
        EXPECT_TRUE(rep.ok()) << rep.summary();
        auto inst = Instance::create(std::move(*shared), std::move(host));
        SFI_CHECK_MSG(inst.isOk(), "%s", inst.message().c_str());
        return std::move(*inst);
    }
};

TEST_P(JitStrategyTest, ConstReturn)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(42).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    auto out = inst->call("f");
    ASSERT_TRUE(out.ok()) << rt::name(out.trap);
    EXPECT_EQ(out.value, 42u);
}

TEST_P(JitStrategyTest, ParamsAndArith)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32, VT::I32, VT::I32}, {VT::I32});
    // (a + b) * c - a
    f.localGet(0).localGet(1).i32Add()
        .localGet(2).i32Mul()
        .localGet(0).i32Sub()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f", {3, 4, 5}).value, 32u);
}

TEST_P(JitStrategyTest, MemoryRoundTrip)
{
    ModuleBuilder mb;
    mb.memory(1, 2);
    auto f = mb.func("f", {VT::I32, VT::I32}, {VT::I32});
    f.localGet(0).localGet(1).i32Store(16)
        .localGet(0).i32Load(16)
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f", {100, 0xfeedfaceu}).value, 0xfeedfaceu);
    EXPECT_EQ(inst->call("f", {0, 7}).value, 7u);
}

TEST_P(JitStrategyTest, SubWordMemory)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(10).i32Const(0x8081).i32Store16()
        .i32Const(10).i32Load16s()
        .i32Const(10).i32Load16u()
        .i32Add()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    // (i32)(int16)0x8081 + 0x8081 = -32639 + 32897 = 258
    EXPECT_EQ(inst->call("f").value, 258u);
}

TEST_P(JitStrategyTest, OutOfBoundsTraps)
{
    ModuleBuilder mb;
    mb.memory(1, 1);  // 64 KiB
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.localGet(0).i32Load().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    if (GetParam().mem == MemStrategy::Unsandboxed)
        return;  // the native baseline makes no isolation claims
    EXPECT_TRUE(inst->call("f", {65532}).ok());
    EXPECT_EQ(inst->call("f", {0x00ffffffu}).trap, TrapKind::OutOfBounds);
    EXPECT_EQ(inst->call("f", {0xfffffff0u}).trap, TrapKind::OutOfBounds);
}

TEST_P(JitStrategyTest, TrapRecoveryIsReusable)
{
    // After a trap the instance must stay usable (FaaS reuse pattern).
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.localGet(0).i32Load().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    if (GetParam().mem == MemStrategy::Unsandboxed)
        return;
    for (int i = 0; i < 3; i++) {
        EXPECT_EQ(inst->call("f", {0x7fffffffu}).trap,
                  TrapKind::OutOfBounds);
        EXPECT_TRUE(inst->call("f", {0}).ok());
    }
}

TEST_P(JitStrategyTest, LoopSum)
{
    ModuleBuilder mb;
    auto f = mb.func("sum", {VT::I32}, {VT::I32});
    uint32_t i = f.local(VT::I32);
    uint32_t acc = f.local(VT::I32);
    f.block()
        .loop()
        .localGet(i).localGet(f.param(0)).i32GeU().brIf(1)
        .localGet(acc).localGet(i).i32Add().localSet(acc)
        .localGet(i).i32Const(1).i32Add().localSet(i)
        .br(0)
        .end()
        .end()
        .localGet(acc)
        .end();
    mb.exportFunc("sum", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("sum", {0}).value, 0u);
    EXPECT_EQ(inst->call("sum", {10}).value, 45u);
    EXPECT_EQ(inst->call("sum", {100000}).value, 704982704u);
}

TEST_P(JitStrategyTest, IfElseChains)
{
    ModuleBuilder mb;
    auto f = mb.func("clamp", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.localGet(0).localSet(out)
        .localGet(0).i32Const(10).i32GtS()
        .if_().i32Const(10).localSet(out)
        .else_()
        .localGet(0).i32Const(0).i32LtS()
        .if_().i32Const(0).localSet(out).end()
        .end()
        .localGet(out)
        .end();
    mb.exportFunc("clamp", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("clamp", {5}).value, 5u);
    EXPECT_EQ(inst->call("clamp", {50}).value, 10u);
    EXPECT_EQ(inst->call("clamp", {uint32_t(-3)}).value, 0u);
}

TEST_P(JitStrategyTest, DivisionAndTraps)
{
    ModuleBuilder mb;
    auto f = mb.func("divs", {VT::I32, VT::I32}, {VT::I32});
    f.localGet(0).localGet(1).i32DivS().end();
    auto g = mb.func("rems", {VT::I32, VT::I32}, {VT::I32});
    g.localGet(0).localGet(1).i32RemS().end();
    mb.exportFunc("divs", f.index());
    mb.exportFunc("rems", g.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("divs", {uint32_t(-12), 4}).value, uint32_t(-3));
    EXPECT_EQ(inst->call("divs", {12, 0}).trap, TrapKind::DivByZero);
    EXPECT_EQ(inst->call("divs", {0x80000000u, 0xffffffffu}).trap,
              TrapKind::IntegerOverflow);
    auto r = inst->call("rems", {0x80000000u, 0xffffffffu});
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value, 0u);
    EXPECT_EQ(inst->call("rems", {13, 5}).value, 3u);
}

TEST_P(JitStrategyTest, RecursionAndCalls)
{
    ModuleBuilder mb;
    auto fib = mb.func("fib", {VT::I32}, {VT::I32});
    fib.localGet(0).i32Const(2).i32LtU()
        .if_().localGet(0).ret().end()
        .localGet(0).i32Const(1).i32Sub().call(fib.index())
        .localGet(0).i32Const(2).i32Sub().call(fib.index())
        .i32Add()
        .end();
    mb.exportFunc("fib", fib.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("fib", {20}).value, 6765u);
}

TEST_P(JitStrategyTest, InfiniteRecursionTrapsCleanly)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {}, {});
    f.call(0).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f").trap, TrapKind::StackExhausted);
    // And the instance survives.
    EXPECT_EQ(inst->call("f").trap, TrapKind::StackExhausted);
}

TEST_P(JitStrategyTest, CallIndirect)
{
    ModuleBuilder mb;
    auto add = mb.func("add", {VT::I32, VT::I32}, {VT::I32});
    add.localGet(0).localGet(1).i32Add().end();
    auto mul = mb.func("mul", {VT::I32, VT::I32}, {VT::I32});
    mul.localGet(0).localGet(1).i32Mul().end();
    auto nullary = mb.func("nullary", {}, {});
    nullary.end();
    mb.table({add.index(), mul.index(), nullary.index()});
    uint32_t sig = mb.typeIndexOf({VT::I32, VT::I32}, {VT::I32});
    auto f = mb.func("go", {VT::I32}, {VT::I32});
    f.i32Const(6).i32Const(7).localGet(0).callIndirect(sig).end();
    mb.exportFunc("go", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("go", {0}).value, 13u);
    EXPECT_EQ(inst->call("go", {1}).value, 42u);
    EXPECT_EQ(inst->call("go", {2}).trap,
              TrapKind::IndirectCallTypeMismatch);
    EXPECT_EQ(inst->call("go", {3}).trap,
              TrapKind::IndirectCallOutOfRange);
}

TEST_P(JitStrategyTest, HostCalls)
{
    ModuleBuilder mb;
    uint32_t h = mb.importFunc("mix", {VT::I64, VT::I64}, {VT::I64});
    auto f = mb.func("f", {VT::I64}, {VT::I64});
    f.localGet(0).i64Const(100).call(h).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb),
                     {{"mix", [](uint64_t* a, size_t n) {
                           return HostOutcome{TrapKind::None,
                                              a[0] * 3 + a[1] + n};
                       }}});
    EXPECT_EQ(inst->call("f", {5}).value, 117u);
}

TEST_P(JitStrategyTest, HostTrapUnwinds)
{
    ModuleBuilder mb;
    uint32_t h = mb.importFunc("boom", {}, {});
    auto f = mb.func("f", {}, {});
    f.call(h).end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb),
                     {{"boom", [](uint64_t*, size_t) {
                           return HostOutcome{TrapKind::HostError, 0};
                       }}});
    EXPECT_EQ(inst->call("f").trap, TrapKind::HostError);
}

TEST_P(JitStrategyTest, GlobalState)
{
    ModuleBuilder mb;
    mb.global(VT::I64, true, 100);
    auto f = mb.func("bump", {VT::I64}, {VT::I64});
    f.globalGet(0).localGet(0).i64Add().globalSet(0).globalGet(0).end();
    mb.exportFunc("bump", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("bump", {11}).value, 111u);
    EXPECT_EQ(inst->call("bump", {9}).value, 120u);
    EXPECT_EQ(inst->global(0), 120u);
}

TEST_P(JitStrategyTest, F64Pipeline)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::F64, VT::F64}, {VT::F64});
    // sqrt(|a| * b + a)
    f.localGet(0).f64Abs().localGet(1).f64Mul().localGet(0).f64Add()
        .f64Sqrt().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    auto out = inst->call("f", {std::bit_cast<uint64_t>(-2.0),
                                std::bit_cast<uint64_t>(9.0)});
    ASSERT_TRUE(out.ok());
    EXPECT_DOUBLE_EQ(std::bit_cast<double>(out.value), 4.0);
}

TEST_P(JitStrategyTest, F64CompareNaNSemantics)
{
    ModuleBuilder mb;
    auto lt = mb.func("lt", {VT::F64, VT::F64}, {VT::I32});
    lt.localGet(0).localGet(1).f64Lt().end();
    auto ne = mb.func("ne", {VT::F64, VT::F64}, {VT::I32});
    ne.localGet(0).localGet(1).f64Ne().end();
    auto eq = mb.func("eq", {VT::F64, VT::F64}, {VT::I32});
    eq.localGet(0).localGet(1).f64Eq().end();
    mb.exportFunc("lt", lt.index());
    mb.exportFunc("ne", ne.index());
    mb.exportFunc("eq", eq.index());
    auto inst = make(std::move(mb));
    uint64_t nan = std::bit_cast<uint64_t>(
        std::numeric_limits<double>::quiet_NaN());
    uint64_t one = std::bit_cast<uint64_t>(1.0);
    uint64_t two = std::bit_cast<uint64_t>(2.0);
    EXPECT_EQ(inst->call("lt", {one, two}).value, 1u);
    EXPECT_EQ(inst->call("lt", {two, one}).value, 0u);
    EXPECT_EQ(inst->call("lt", {nan, one}).value, 0u);
    EXPECT_EQ(inst->call("lt", {one, nan}).value, 0u);
    EXPECT_EQ(inst->call("eq", {nan, nan}).value, 0u);
    EXPECT_EQ(inst->call("ne", {nan, nan}).value, 1u);
    EXPECT_EQ(inst->call("eq", {one, one}).value, 1u);
}

TEST_P(JitStrategyTest, MemoryGrowAndSize)
{
    ModuleBuilder mb;
    mb.memory(1, 4);
    auto f = mb.func("grow", {VT::I32}, {VT::I32});
    f.localGet(0).memoryGrow().end();
    auto s = mb.func("size", {}, {VT::I32});
    s.memorySize().end();
    auto touch = mb.func("touch", {VT::I32}, {VT::I32});
    touch.localGet(0).i32Load().end();
    mb.exportFunc("grow", f.index());
    mb.exportFunc("size", s.index());
    mb.exportFunc("touch", touch.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("size").value, 1u);
    if (GetParam().mem != MemStrategy::Unsandboxed)
        EXPECT_EQ(inst->call("touch", {70000}).trap,
                  TrapKind::OutOfBounds);
    EXPECT_EQ(inst->call("grow", {2}).value, 1u);
    EXPECT_EQ(inst->call("size").value, 3u);
    EXPECT_TRUE(inst->call("touch", {70000}).ok());
    EXPECT_EQ(inst->call("grow", {5}).value, 0xffffffffu);
}

TEST_P(JitStrategyTest, BulkMemoryOps)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(0).i32Const(0x5a).i32Const(64).memoryFill()
        .i32Const(256).i32Const(0).i32Const(32).memoryCopy()
        .i32Const(256 + 28).i32Load()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f").value, 0x5a5a5a5au);
}

TEST_P(JitStrategyTest, BulkFillOutOfBoundsTraps)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {}, {});
    f.i32Const(65000).i32Const(1).i32Const(10000).memoryFill().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f").trap, TrapKind::OutOfBounds);
}

TEST_P(JitStrategyTest, BrTableDispatch)
{
    ModuleBuilder mb;
    auto f = mb.func("sw", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.block().block().block()
        .localGet(0).brTable({0, 1, 2})
        .end()
        .i32Const(11).localSet(out).br(1)
        .end()
        .i32Const(22).localSet(out).br(0)
        .end()
        .localGet(out)
        .end();
    mb.exportFunc("sw", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("sw", {0}).value, 11u);
    EXPECT_EQ(inst->call("sw", {1}).value, 22u);
    EXPECT_EQ(inst->call("sw", {2}).value, 0u);
    EXPECT_EQ(inst->call("sw", {77}).value, 0u);
}

TEST_P(JitStrategyTest, UnreachableTraps)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {}, {});
    f.unreachable().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f").trap, TrapKind::Unreachable);
}

TEST_P(JitStrategyTest, ShiftsRotatesPopcnt)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32, VT::I32}, {VT::I32});
    // rotl(a, b) ^ (a << (b & 31)) ^ popcnt(a)
    f.localGet(0).localGet(1).i32Rotl()
        .localGet(0).localGet(1).i32Shl()
        .i32Xor()
        .localGet(0).i32Popcnt()
        .i32Xor()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    auto expect = [](uint32_t a, uint32_t b) {
        uint32_t r = std::rotl(a, int(b & 31)) ^ (a << (b & 31)) ^
                     uint32_t(std::popcount(a));
        return r;
    };
    EXPECT_EQ(inst->call("f", {0x80000001u, 1}).value,
              expect(0x80000001u, 1));
    EXPECT_EQ(inst->call("f", {0xdeadbeefu, 13}).value,
              expect(0xdeadbeefu, 13));
    EXPECT_EQ(inst->call("f", {5, 33}).value, expect(5, 33));
}

TEST_P(JitStrategyTest, I64Wideness)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I64, VT::I64}, {VT::I64});
    f.localGet(0).localGet(1).i64Mul()
        .localGet(0).i64Const(17).i64ShrU().i64Add()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    uint64_t a = 0x123456789abcdef0ull, b = 0xfedcba9876543210ull;
    EXPECT_EQ(inst->call("f", {a, b}).value, a * b + (a >> 17));
}

TEST_P(JitStrategyTest, TruncAndConvert)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.localGet(0).f64ConvertI32S().f64Const(1.5).f64Mul().i32TruncF64S()
        .end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f", {10}).value, 15u);
    EXPECT_EQ(inst->call("f", {uint32_t(-10)}).value, uint32_t(-15));
}

TEST_P(JitStrategyTest, TruncOverflowTraps)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::F64}, {VT::I32});
    f.localGet(0).i32TruncF64S().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(
        inst->call("f", {std::bit_cast<uint64_t>(1e18)}).trap,
        TrapKind::IntegerOverflow);
    EXPECT_TRUE(inst->call("f", {std::bit_cast<uint64_t>(-7.0)}).ok());
}

TEST_P(JitStrategyTest, SelectBothTypes)
{
    ModuleBuilder mb;
    auto f = mb.func("sel", {VT::I32}, {VT::I64});
    f.i64Const(0x100000001ull).i64Const(0x200000002ull).localGet(0)
        .select().end();
    auto g = mb.func("self", {VT::I32}, {VT::F64});
    g.f64Const(2.5).f64Const(-8.5).localGet(0).select().end();
    mb.exportFunc("sel", f.index());
    mb.exportFunc("self", g.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("sel", {1}).value, 0x100000001ull);
    EXPECT_EQ(inst->call("sel", {0}).value, 0x200000002ull);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(inst->call("self", {1}).value), 2.5);
    EXPECT_DOUBLE_EQ(
        std::bit_cast<double>(inst->call("self", {0}).value), -8.5);
}

TEST_P(JitStrategyTest, DeepExpressionSpills)
{
    // Force register-pool exhaustion: a long chain of pending adds.
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    const int kDepth = 24;
    for (int i = 0; i < kDepth; i++)
        f.localGet(0).i32Const(i).i32Add();
    for (int i = 0; i < kDepth - 1; i++)
        f.i32Add();
    f.end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    uint32_t x = 7;
    uint32_t want = 0;
    for (int i = 0; i < kDepth; i++)
        want += x + i;
    EXPECT_EQ(inst->call("f", {x}).value, want);
}

TEST_P(JitStrategyTest, DataSegments)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    mb.data(32, {0xef, 0xbe, 0xad, 0xde});
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(32).i32Load().end();
    mb.exportFunc("f", f.index());
    auto inst = make(std::move(mb));
    EXPECT_EQ(inst->call("f").value, 0xdeadbeefu);
}

TEST_P(JitStrategyTest, MultipleInstancesShareModule)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    f.i32Const(0).localGet(0).i32Store()
        .i32Const(0).i32Load()
        .end();
    mb.exportFunc("f", f.index());
    auto shared = SharedModule::compile(std::move(mb).build(), GetParam());
    ASSERT_TRUE(shared.isOk());
    auto i1 = Instance::create(*shared);
    auto i2 = Instance::create(*shared);
    ASSERT_TRUE(i1.isOk() && i2.isOk());
    EXPECT_EQ((*i1)->call("f", {111}).value, 111u);
    EXPECT_EQ((*i2)->call("f", {222}).value, 222u);
    // Isolation: i1's memory is untouched by i2's store.
    uint32_t v1;
    std::memcpy(&v1, (*i1)->memory().base(), 4);
    EXPECT_EQ(v1, 111u);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, JitStrategyTest,
                         ::testing::ValuesIn(kAllConfigs),
                         [](const auto& info) {
                             return configName(info.param);
                         });

// --- non-parameterized JIT behaviors ---

TEST(Jit, SegueFreesTheHeapRegister)
{
    // The same deep-expression function must spill later (emit less
    // code) when %r15 is allocatable — observable as differing code
    // sizes between BaseReg and Segue builds.
    ModuleBuilder mb;
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    const int kDepth = 12;
    for (int i = 0; i < kDepth; i++)
        f.localGet(0).i32Const(i).i32Add();
    for (int i = 0; i < kDepth - 1; i++)
        f.i32Add();
    f.end();
    wasm::Module m = std::move(mb).takeUnvalidated();
    auto base = compile(m, CompilerConfig::wamrBase());
    auto segue = compile(m, CompilerConfig::wamrSegue());
    ASSERT_TRUE(base.isOk() && segue.isOk());
    // Not asserting a specific delta — just that both compile and code
    // was produced for one function.
    EXPECT_EQ(base->funcCodeSizes.size(), 1u);
    EXPECT_EQ(segue->funcCodeSizes.size(), 1u);
}

TEST(Jit, LfiTruncationCostsInstructions)
{
    // LFI (untrusted index registers) emits the Figure 1b truncation on
    // BaseReg but not with Segue: per-access code must be smaller with
    // Segue under the LFI configs.
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("f", {VT::I32}, {VT::I32});
    for (int i = 0; i < 16; i++)
        f.localGet(0).i32Load(uint32_t(4 * i)).drop();
    f.i32Const(0).end();
    wasm::Module m = std::move(mb).takeUnvalidated();
    auto lfi = compile(m, CompilerConfig::lfiBase());
    auto lfi_segue = compile(m, CompilerConfig::lfiSegue());
    ASSERT_TRUE(lfi.isOk() && lfi_segue.isOk());
    EXPECT_LT(lfi_segue->funcCodeSizes[0], lfi->funcCodeSizes[0]);
}

TEST(Jit, EpochInterruptStopsInfiniteLoop)
{
    ModuleBuilder mb;
    auto f = mb.func("spin", {}, {});
    f.block().loop().br(0).end().end().end();
    mb.exportFunc("spin", f.index());
    CompilerConfig cfg = CompilerConfig::wamrBase();
    cfg.epochChecks = true;
    auto shared = SharedModule::compile(std::move(mb).build(), cfg);
    ASSERT_TRUE(shared.isOk());
    auto inst = Instance::create(*shared);
    ASSERT_TRUE(inst.isOk());
    static uint64_t epoch = 100;
    (*inst)->setEpoch(&epoch, 50);  // already past the deadline
    EXPECT_EQ((*inst)->call("spin").trap, TrapKind::EpochInterrupt);
}

TEST(Jit, EpochCallbackCanResume)
{
    ModuleBuilder mb;
    auto f = mb.func("loop10", {}, {VT::I32});
    uint32_t i = f.local(VT::I32);
    f.block().loop()
        .localGet(i).i32Const(10).i32GeU().brIf(1)
        .localGet(i).i32Const(1).i32Add().localSet(i)
        .br(0)
        .end().end()
        .localGet(i)
        .end();
    mb.exportFunc("loop10", f.index());
    CompilerConfig cfg = CompilerConfig::wamrBase();
    cfg.epochChecks = true;
    auto shared = SharedModule::compile(std::move(mb).build(), cfg);
    ASSERT_TRUE(shared.isOk());
    auto inst = Instance::create(*shared);
    ASSERT_TRUE(inst.isOk());
    static uint64_t epoch = 10;
    int fired = 0;
    (*inst)->setEpoch(&epoch, 5);
    (*inst)->setEpochCallback([&] {
        fired++;
        (*inst)->setEpochDeadline(UINT64_MAX);  // let it finish
    });
    auto out = (*inst)->call("loop10");
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value, 10u);
    EXPECT_GE(fired, 1);
}

TEST(Jit, TransitionsAreCounted)
{
    ModuleBuilder mb;
    auto f = mb.func("f", {}, {VT::I32});
    f.i32Const(1).end();
    mb.exportFunc("f", f.index());
    auto shared = SharedModule::compile(std::move(mb).build(),
                                        CompilerConfig::wamrSegue());
    ASSERT_TRUE(shared.isOk());
    auto inst = Instance::create(*shared);
    ASSERT_TRUE(inst.isOk());
    for (int i = 0; i < 5; i++)
        (*inst)->call("f");
    EXPECT_EQ((*inst)->transitions(), 5u);
}

}  // namespace
}  // namespace sfi::jit
