#include <gtest/gtest.h>

#include "simx/event_queue.h"
#include "simx/faas_sim.h"
#include "simx/tlb.h"

namespace sfi::simx {
namespace {

TEST(EventQueue, OrdersByTimeThenInsertion)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(10, [&] { order.push_back(2); });
    q.schedule(5, [&] { order.push_back(1); });
    q.schedule(10, [&] { order.push_back(3); });  // ties: insertion order
    q.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 100u);
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int fired = 0;
    q.schedule(50, [&] { fired++; });
    q.schedule(150, [&] { fired++; });
    q.runUntil(100);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> tick = [&] {
        if (++count < 5)
            q.scheduleAfter(10, tick);
    };
    q.schedule(0, tick);
    q.runUntil(1000);
    EXPECT_EQ(count, 5);
}

TEST(Tlb, HitsAfterFirstAccess)
{
    TlbModel tlb;
    EXPECT_GT(tlb.access(100), 0.0);  // cold miss
    EXPECT_EQ(tlb.access(100), 0.0);  // hit
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, FlushEvictsEverything)
{
    TlbModel tlb;
    for (uint64_t p = 0; p < 8; p++)
        tlb.access(p);
    tlb.flush();
    for (uint64_t p = 0; p < 8; p++)
        EXPECT_GT(tlb.access(p), 0.0) << p;
    EXPECT_EQ(tlb.flushes(), 1u);
}

TEST(Tlb, CapacityEviction)
{
    TlbModel::Config cfg;
    cfg.entries = 16;
    cfg.ways = 4;
    TlbModel tlb(cfg);
    // Fill one set beyond its ways: pages mapping to set 0.
    for (uint64_t i = 0; i < 5; i++)
        tlb.access(i * 4);  // sets = 4, so stride 4 hits set 0
    EXPECT_GT(tlb.access(0), 0.0);  // evicted (LRU)
}

TEST(Tlb, FiveLevelWalksCostMore)
{
    // §8: 5-level paging raises TLB-miss cost ~25%.
    TlbModel::Config four;
    four.walkLevels = 4;
    TlbModel::Config five = four;
    five.walkLevels = 5;
    TlbModel t4(four), t5(five);
    double c4 = t4.access(1), c5 = t5.access(1);
    EXPECT_NEAR(c5 / c4, 1.25, 1e-9);
}

// --- the FaaS scaling model ---

FaasSimConfig
baseConfig()
{
    FaasSimConfig cfg;
    cfg.simSeconds = 2.0;
    cfg.concurrentRequests = 240;
    return cfg;
}

TEST(FaasSim, ColorGuardCompletesWork)
{
    FaasSimConfig cfg = baseConfig();
    cfg.colorguard = true;
    auto r = simulateFaas(cfg);
    EXPECT_GT(r.completedRequests, 1000u);
    EXPECT_GT(r.throughputRps, 0.0);
    EXPECT_GT(r.sandboxTransitions, r.completedRequests);
}

TEST(FaasSim, Deterministic)
{
    FaasSimConfig cfg = baseConfig();
    cfg.colorguard = true;
    auto a = simulateFaas(cfg);
    auto b = simulateFaas(cfg);
    EXPECT_EQ(a.completedRequests, b.completedRequests);
    EXPECT_EQ(a.dtlbMisses, b.dtlbMisses);
}

TEST(FaasSim, MultiprocessSwitchesGrowWithProcessCount)
{
    // Figure 7a's shape: OS context switches rise with process count,
    // while ColorGuard's stay flat and far lower.
    FaasSimConfig cg = baseConfig();
    cg.colorguard = true;
    uint64_t cg_switches = simulateFaas(cg).osContextSwitches;

    uint64_t prev = 0;
    for (int n : {2, 8, 15}) {
        FaasSimConfig mp = baseConfig();
        mp.numProcesses = n;
        auto r = simulateFaas(mp);
        EXPECT_GT(r.osContextSwitches, prev) << n;
        EXPECT_GT(r.osContextSwitches, cg_switches * 2) << n;
        prev = r.osContextSwitches;
    }
}

TEST(FaasSim, MultiprocessDtlbMissesGrow)
{
    // Figure 7b's shape, in load-independent terms: per-request dTLB
    // misses rise with the process count and ColorGuard's stay lowest.
    FaasSimConfig cg = baseConfig();
    cg.colorguard = true;
    double cg_rate = simulateFaas(cg).dtlbMissesPerRequest();

    FaasSimConfig mp15 = baseConfig();
    mp15.numProcesses = 15;
    double mp15_rate = simulateFaas(mp15).dtlbMissesPerRequest();
    EXPECT_GT(mp15_rate, cg_rate * 1.2);

    FaasSimConfig mp4 = baseConfig();
    mp4.numProcesses = 4;
    double mp4_rate = simulateFaas(mp4).dtlbMissesPerRequest();
    EXPECT_LT(mp4_rate, mp15_rate);
    EXPECT_GT(mp4_rate, cg_rate);
}

TEST(FaasSim, ColorGuardThroughputGainGrowsWithProcesses)
{
    // Figure 6's shape: the gain rises with the process count the
    // multiprocess deployment needs.
    FaasSimConfig cg = baseConfig();
    cg.colorguard = true;
    double cg_tput = simulateFaas(cg).throughputRps;

    double gain_small = 0, gain_large = 0;
    {
        FaasSimConfig mp = baseConfig();
        mp.numProcesses = 2;
        gain_small = cg_tput / simulateFaas(mp).throughputRps - 1.0;
    }
    {
        FaasSimConfig mp = baseConfig();
        mp.numProcesses = 15;
        gain_large = cg_tput / simulateFaas(mp).throughputRps - 1.0;
    }
    EXPECT_GT(gain_small, 0.0);
    EXPECT_GT(gain_large, gain_small);
    // The paper reports up to ~29%; our model should land in a sane
    // band, not orders of magnitude off.
    EXPECT_GT(gain_large, 0.05);
    EXPECT_LT(gain_large, 0.8);
}

TEST(FaasSim, TransitionCostMattersAtScale)
{
    // With epoch slicing every 1 ms, doubling the transition cost must
    // not change throughput much (it is amortized, §6.4.1).
    FaasSimConfig a = baseConfig();
    a.colorguard = true;
    FaasSimConfig b = a;
    b.transitionNs = a.transitionNs * 50;
    double ta = simulateFaas(a).throughputRps;
    double tb = simulateFaas(b).throughputRps;
    EXPECT_GT(tb, ta * 0.95);
}

}  // namespace
}  // namespace sfi::simx
