/**
 * @file
 * Cross-validation of the admission-control DES model against the real
 * FaaS host (ISSUE 10): both consume the *same* seeded open-loop
 * arrival trace; the conservation identities must hold exactly in both,
 * and the degradation counters must agree within tolerance — drift in
 * either direction flags a modeling bug or a scheduler regression.
 *
 * The pure-model runs push >= 1M simulated requests through the
 * bounded-queue c-server system; the real-host comparison runs a
 * prefix of the same trace family (real wasm execution bounds the
 * request count a unit test can afford).
 */
#include <gtest/gtest.h>

#include <cmath>

#include "faas/loadgen.h"
#include "faas/scheduler.h"
#include "simx/admission_sim.h"
#include "wkld/workloads.h"

namespace sfi::simx {
namespace {

TEST(AdmissionSim, MillionRequestOverloadConserves)
{
    // 2x overload: 64 servers at 5 ms mean service = 12.8k rps
    // capacity, offered 25k.
    faas::LoadGenConfig load;
    load.ratePerSec = 25000;
    load.seed = 42;
    const uint64_t kReqs = 1'000'000;
    std::vector<uint64_t> trace = faas::LoadGen::schedule(load, kReqs);

    AdmissionSimConfig cfg;
    cfg.servers = 64;
    cfg.shards = 4;
    cfg.queueDepth = 32;
    cfg.policy = AdmissionPolicy::Reject;
    cfg.serviceMeanNs = 5e6;
    AdmissionSimResult r = simulateAdmission(cfg, trace);

    EXPECT_EQ(r.arrivals, kReqs);
    EXPECT_EQ(r.completed + r.rejected + r.shed, kReqs);
    EXPECT_EQ(r.admitted, r.completed);
    EXPECT_GT(r.rejected, 0u);
    EXPECT_LE(r.maxDepth, 32u);
    // At 2x overload roughly half the offered load must be turned away
    // (the queue only smooths bursts); modeling drift shows up here.
    double rejFrac = double(r.rejected) / double(r.arrivals);
    EXPECT_GT(rejFrac, 0.30);
    EXPECT_LT(rejFrac, 0.65);
    // Throughput pins at capacity, not at the offered rate.
    EXPECT_LT(r.throughputRps, 15000.0);
    EXPECT_GT(r.throughputRps, 10000.0);
}

TEST(AdmissionSim, MillionRequestBackpressureIsLossless)
{
    faas::LoadGenConfig load;
    load.ratePerSec = 25000;
    load.seed = 7;
    const uint64_t kReqs = 1'000'000;
    std::vector<uint64_t> trace = faas::LoadGen::schedule(load, kReqs);

    AdmissionSimConfig cfg;
    cfg.servers = 64;
    cfg.shards = 4;
    cfg.queueDepth = 32;
    cfg.policy = AdmissionPolicy::Backpressure;
    cfg.serviceMeanNs = 5e6;
    AdmissionSimResult r = simulateAdmission(cfg, trace);

    EXPECT_EQ(r.completed, kReqs);
    EXPECT_EQ(r.rejected + r.shed, 0u);
    EXPECT_LE(r.maxDepth, 32u);
    // The overload lives upstream: admission delay grows with the
    // backlog, while post-admission sojourn stays bounded by
    // queue-depth x service-time scales, not by the backlog.
    EXPECT_GT(r.admissionDelayNs.percentile(99),
              r.sojournNs.percentile(99));
}

TEST(AdmissionSim, ShedPrefersFreshArrivals)
{
    faas::LoadGenConfig load;
    load.ratePerSec = 25000;
    load.seed = 3;
    const uint64_t kReqs = 1'000'000;
    std::vector<uint64_t> trace = faas::LoadGen::schedule(load, kReqs);

    AdmissionSimConfig cfg;
    cfg.servers = 64;
    cfg.shards = 4;
    cfg.queueDepth = 32;
    cfg.policy = AdmissionPolicy::Shed;
    cfg.serviceMeanNs = 5e6;
    AdmissionSimResult r = simulateAdmission(cfg, trace);
    EXPECT_EQ(r.completed + r.shed, kReqs);
    EXPECT_GT(r.shed, 0u);
    EXPECT_EQ(r.rejected, 0u);
}

/**
 * Runs the real host and the model on one trace; returns both.
 * serviceMeanNs for the model is calibrated from the real run's
 * measured per-request service time, so the comparison checks the
 * *queueing* model, not wasm execution speed.
 */
struct CrossVal
{
    faas::FaasHost::Stats real;
    AdmissionSimResult sim;
    uint64_t total;
};

CrossVal
runBoth(faas::AdmissionPolicy policy, uint64_t reqs)
{
    faas::LoadGenConfig load;
    load.ratePerSec = 30000;  // ~2x the 8-slot / 0.5 ms knee
    load.seed = 42;

    faas::FaasHost::Options opts;
    opts.maxConcurrent = 8;
    opts.workerThreads = 2;
    opts.ioDelayMeanMs = 0.5;
    opts.admission = policy;
    opts.admissionQueueDepth = 4;
    auto host = faas::FaasHost::create(wkld::faasWorkloads()[0].make(),
                                       std::move(opts));
    EXPECT_TRUE(host.isOk()) << host.message();
    auto stats = (*host)->runOpenLoop(reqs, load);
    EXPECT_TRUE(stats.isOk()) << stats.message();

    AdmissionSimConfig cfg;
    cfg.servers = 8;
    cfg.shards = 2;
    cfg.queueDepth = 4;
    switch (policy) {
    case faas::AdmissionPolicy::Reject:
        cfg.policy = AdmissionPolicy::Reject;
        break;
    case faas::AdmissionPolicy::Shed:
        cfg.policy = AdmissionPolicy::Shed;
        break;
    case faas::AdmissionPolicy::Backpressure:
        cfg.policy = AdmissionPolicy::Backpressure;
        break;
    default:
        cfg.policy = AdmissionPolicy::None;
        break;
    }
    cfg.serviceMeanNs = stats->latencyServiceNs.mean();
    cfg.seed = 99;  // service-time draws independent of the trace
    AdmissionSimResult sim = simulateAdmission(
        cfg, faas::LoadGen::schedule(load, reqs));
    return CrossVal{*stats, sim, reqs};
}

TEST(AdmissionSimCrossVal, RejectCountersAgree)
{
    CrossVal cv = runBoth(faas::AdmissionPolicy::Reject, 1024);

    // Exact conservation on both sides.
    EXPECT_EQ(cv.real.completed + cv.real.rejected, cv.total);
    EXPECT_EQ(cv.sim.completed + cv.sim.rejected, cv.total);

    // Degradation agrees within tolerance: the rejected fraction is
    // the model's load-dependent output, so this is where drift in
    // either system shows up.
    double realFrac = double(cv.real.rejected) / double(cv.total);
    double simFrac = double(cv.sim.rejected) / double(cv.total);
    EXPECT_GT(realFrac, 0.0);
    EXPECT_GT(simFrac, 0.0);
    EXPECT_LT(std::abs(realFrac - simFrac), 0.20)
        << "real " << realFrac << " vs sim " << simFrac;
}

TEST(AdmissionSimCrossVal, BackpressureAgreesExactly)
{
    CrossVal cv = runBoth(faas::AdmissionPolicy::Backpressure, 1024);
    // Lossless on both sides: exact agreement, not tolerance.
    EXPECT_EQ(cv.real.completed, cv.total);
    EXPECT_EQ(cv.sim.completed, cv.total);
    EXPECT_EQ(cv.real.admitted, cv.sim.admitted);
    EXPECT_EQ(cv.real.rejected + cv.sim.rejected, 0u);
}

TEST(AdmissionSimCrossVal, KeyRecycleRatesAgreeWithinTolerance)
{
    // 12 concurrent leases over a 15-key space: retirements and
    // recycle epochs happen in both systems; their per-request rates
    // must be the same order of magnitude.
    faas::LoadGenConfig load;
    load.ratePerSec = 20000;
    load.seed = 42;
    const uint64_t kReqs = 1024;

    faas::FaasHost::Options opts;
    opts.maxConcurrent = 12;
    opts.workerThreads = 2;
    opts.ioDelayMeanMs = 0.2;
    opts.keyRecycling = true;
    auto host = faas::FaasHost::create(wkld::faasWorkloads()[0].make(),
                                       std::move(opts));
    ASSERT_TRUE(host.isOk()) << host.message();
    auto stats = (*host)->runOpenLoop(kReqs, load);
    ASSERT_TRUE(stats.isOk()) << stats.message();
    ASSERT_EQ(stats->completed, kReqs);

    AdmissionSimConfig cfg;
    cfg.servers = 12;
    cfg.shards = 2;
    cfg.policy = AdmissionPolicy::None;
    cfg.serviceMeanNs = stats->latencyServiceNs.mean();
    cfg.keySpace = 15;
    AdmissionSimResult sim = simulateAdmission(
        cfg, faas::LoadGen::schedule(load, kReqs));
    ASSERT_EQ(sim.completed, kReqs);

    double realRate =
        double(stats->keyRecycles + stats->keyShares) / double(kReqs);
    double simRate =
        double(sim.keyRecycles + sim.keyShares) / double(kReqs);
    EXPECT_GT(realRate, 0.0);
    EXPECT_GT(simRate, 0.0);
    // Order-of-magnitude agreement: the model abstracts lease lifetime
    // (slot occupancy vs service window), so a loose band is the
    // honest contract — it still catches either side going quiet or
    // recycling per-request when it should batch.
    EXPECT_LT(realRate / simRate, 12.0)
        << "real " << realRate << " sim " << simRate;
    EXPECT_GT(realRate / simRate, 1.0 / 12.0)
        << "real " << realRate << " sim " << simRate;
}

}  // namespace
}  // namespace sfi::simx
