#include "wasm/validator.h"

#include <gtest/gtest.h>

#include "wasm/builder.h"

namespace sfi::wasm {
namespace {

using VT = ValType;

TEST(Validator, EmptyModuleIsValid)
{
    Module m;
    EXPECT_TRUE(validate(m));
}

TEST(Validator, SimpleAddFunction)
{
    ModuleBuilder mb;
    auto f = mb.func("add", {VT::I32, VT::I32}, {VT::I32});
    f.localGet(0).localGet(1).i32Add().end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_TRUE(validate(m)) << validate(m).message();
}

TEST(Validator, TypeMismatchRejected)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {VT::I32, VT::I64}, {VT::I32});
    f.localGet(0).localGet(1).i32Add().end();  // i32 + i64
    Module m = std::move(mb).takeUnvalidated();
    Status st = validate(m);
    EXPECT_FALSE(st);
    EXPECT_NE(st.message().find("type mismatch"), std::string::npos);
}

TEST(Validator, StackUnderflowRejected)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {VT::I32});
    f.i32Add().end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, MissingEndRejected)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {});
    f.block();  // no End for block or function
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, ResultArityChecked)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {VT::I32});
    f.end();  // returns nothing
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, ResultTypeChecked)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {VT::I32});
    f.i64Const(1).end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, LocalIndexChecked)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {VT::I32}, {});
    f.localGet(3).drop().end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, FlatStackDisciplineEnforced)
{
    // A branch with a value left in the current block must be rejected.
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {});
    f.block().i32Const(1).br(0).end().end();
    Module m = std::move(mb).takeUnvalidated();
    Status st = validate(m);
    EXPECT_FALSE(st);
    EXPECT_NE(st.message().find("flat-stack"), std::string::npos);
}

TEST(Validator, BranchDepthChecked)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {});
    f.block().br(5).end().end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, DeadCodeRejected)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {});
    f.block().br(0).i32Const(1).drop().end().end();
    Module m = std::move(mb).takeUnvalidated();
    Status st = validate(m);
    EXPECT_FALSE(st);
    EXPECT_NE(st.message().find("dead code"), std::string::npos);
}

TEST(Validator, WellFormedLoopAccepted)
{
    // Canonical counted loop under the flat-stack discipline.
    ModuleBuilder mb;
    auto f = mb.func("sum", {VT::I32}, {VT::I32});
    uint32_t i = f.local(VT::I32);
    uint32_t acc = f.local(VT::I32);
    f.block()
        .loop()
        .localGet(i).localGet(f.param(0)).i32GeU().brIf(1)
        .localGet(acc).localGet(i).i32Add().localSet(acc)
        .localGet(i).i32Const(1).i32Add().localSet(i)
        .br(0)
        .end()
        .end()
        .localGet(acc)
        .end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_TRUE(validate(m)) << validate(m).message();
}

TEST(Validator, IfElseBalancedStacks)
{
    ModuleBuilder mb;
    auto f = mb.func("sel", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.localGet(0)
        .if_()
        .i32Const(10).localSet(out)
        .else_()
        .i32Const(20).localSet(out)
        .end()
        .localGet(out)
        .end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_TRUE(validate(m)) << validate(m).message();
}

TEST(Validator, IfArmLeavingValueRejected)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {VT::I32}, {});
    f.localGet(0).if_().i32Const(1).else_().end().end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, CallSignatureChecked)
{
    ModuleBuilder mb;
    auto callee = mb.func("callee", {VT::I64}, {VT::I64});
    callee.localGet(0).end();
    auto f = mb.func("caller", {}, {});
    f.i32Const(1).call(callee.index()).drop().end();  // i32 arg to i64
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, CallIndexChecked)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {});
    f.call(42).end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, TooManyParamsRejected)
{
    Module m;
    m.types.push_back({{VT::I32, VT::I32, VT::I32, VT::I32, VT::I32,
                        VT::I32, VT::I32},
                       {}});
    EXPECT_FALSE(validate(m));
}

TEST(Validator, TooManyF64ParamsRejected)
{
    Module m;
    m.types.push_back(
        {{VT::F64, VT::F64, VT::F64, VT::F64, VT::F64}, {}});
    EXPECT_FALSE(validate(m));
}

TEST(Validator, MultiResultRejected)
{
    Module m;
    m.types.push_back({{}, {VT::I32, VT::I32}});
    EXPECT_FALSE(validate(m));
}

TEST(Validator, DataSegmentBoundsChecked)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    mb.data(65536 - 2, {1, 2, 3, 4});  // spills past initial memory
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, TableEntriesChecked)
{
    ModuleBuilder mb;
    mb.table({7});
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, ExportTargetChecked)
{
    ModuleBuilder mb;
    mb.exportFunc("ghost", 3);
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, ImmutableGlobalAssignmentRejected)
{
    ModuleBuilder mb;
    mb.global(VT::I32, /*is_mutable=*/false, 7);
    auto f = mb.func("bad", {}, {});
    f.i32Const(1).globalSet(0).end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, HugeStaticOffsetRejected)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("bad", {}, {VT::I32});
    f.i32Const(0).i32Load(0x7fffffff).end();  // ~2 GiB static offset
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, SelectTypesMustMatch)
{
    ModuleBuilder mb;
    auto f = mb.func("bad", {}, {});
    f.i32Const(1).i64Const(2).i32Const(0).select().drop().end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_FALSE(validate(m));
}

TEST(Validator, MemoryLimitsChecked)
{
    Module m;
    m.memory = {10, 5};
    EXPECT_FALSE(validate(m));
    m.memory = {0, 70000};
    EXPECT_FALSE(validate(m));
}

TEST(Validator, BrTableValidated)
{
    ModuleBuilder mb;
    auto f = mb.func("sw", {VT::I32}, {VT::I32});
    uint32_t out = f.local(VT::I32);
    f.block().block().block()
        .localGet(0).brTable({0, 1, 2})
        .end()
        .i32Const(10).localSet(out).br(1)
        .end()
        .i32Const(20).localSet(out).br(0)
        .end()
        .localGet(out)
        .end();
    Module m = std::move(mb).takeUnvalidated();
    EXPECT_TRUE(validate(m)) << validate(m).message();
}

}  // namespace
}  // namespace sfi::wasm
