/**
 * @file
 * Cross-policy differential tests for the wasm2c-style path: every
 * kernel must produce the identical checksum under every access policy
 * — native, classic SFI, Segue, and the bounds-checked variants. This
 * is the correctness backbone of the Figure 3 measurements.
 */
#include "w2c/kernels.h"

#include <gtest/gtest.h>

#include "w2c/heap.h"

namespace sfi::w2c {
namespace {

constexpr uint32_t kTestScale = 1;

template <typename P>
uint64_t
runKernel(int k)
{
    auto heap = SandboxHeap::create(kernelHeapBytes(kTestScale));
    SFI_CHECK_MSG(heap.isOk(), "%s", heap.message().c_str());
    auto guard = heap->template enter<P>();
    P policy = heap->template policy<P>();
    return kKernels<P>[k].fn(policy, kTestScale);
}

class KernelPolicyEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelPolicyEquivalence, AllPoliciesAgree)
{
    int k = GetParam();
    uint64_t native = runKernel<NativePolicy>(k);
    EXPECT_NE(native, 0u) << "degenerate checksum";
    EXPECT_EQ(runKernel<BaseAddPolicy>(k), native) << "wasm2c";
    EXPECT_EQ(runKernel<SeguePolicy>(k), native) << "segue";
    EXPECT_EQ(runKernel<BoundsPolicy>(k), native) << "bounds";
    EXPECT_EQ(runKernel<SegueBoundsPolicy>(k), native) << "segue+bounds";
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelPolicyEquivalence, ::testing::Range(0, kNumKernels),
    [](const auto& info) {
        return std::string(
            kKernels<NativePolicy>[info.index].ours);
    });

TEST(Kernels, DeterministicAcrossRuns)
{
    uint64_t a = runKernel<NativePolicy>(0);
    uint64_t b = runKernel<NativePolicy>(0);
    EXPECT_EQ(a, b);
}

TEST(Kernels, ScaleChangesWork)
{
    auto heap = SandboxHeap::create(kernelHeapBytes(2));
    ASSERT_TRUE(heap.isOk());
    auto p = heap->policy<NativePolicy>();
    EXPECT_NE(kernCompress(p, 1), kernCompress(p, 2));
}

TEST(Heap, GuardPagesArePresent)
{
    auto heap = SandboxHeap::create(kWasmPageSize);
    ASSERT_TRUE(heap.isOk());
    EXPECT_EQ(heap->size(), kWasmPageSize);
    // Reservation spans the full 4 GiB + guard.
    EXPECT_GE(heap->memory().reservedBytes(), 4 * kGiB);
}

TEST(Policies, SegueReadsThroughGs)
{
    auto heap = SandboxHeap::create(kWasmPageSize);
    ASSERT_TRUE(heap.isOk());
    heap->base()[64] = 0x5c;
    auto guard = heap->enter<SeguePolicy>();
    auto p = heap->policy<SeguePolicy>();
    EXPECT_EQ(p.load<uint8_t>(64), 0x5c);
    p.store<uint32_t>(128, 0xfeedface);
    uint32_t direct;
    std::memcpy(&direct, heap->base() + 128, 4);
    EXPECT_EQ(direct, 0xfeedfaceu);
}

TEST(Policies, SegueFloatingPoint)
{
    auto heap = SandboxHeap::create(kWasmPageSize);
    ASSERT_TRUE(heap.isOk());
    auto guard = heap->enter<SeguePolicy>();
    auto p = heap->policy<SeguePolicy>();
    p.storeAt<double>(0, 3, 2.718281828);
    EXPECT_DOUBLE_EQ(p.loadAt<double>(0, 3), 2.718281828);
    double direct;
    std::memcpy(&direct, heap->base() + 24, 8);
    EXPECT_DOUBLE_EQ(direct, 2.718281828);
}

TEST(Policies, BoundsPolicyChecksLimits)
{
    static bool tripped;
    tripped = false;
    setBoundsTrapHandler([] {
        tripped = true;
        // Tests must not continue the access; abuse exceptions? The
        // handler contract is noreturn-ish; for the test we exit the
        // access via longjmp-free EXPECT + abort suppression is messy,
        // so instead verify via the in-bounds probe below and the
        // death test.
        std::abort();
    });
    setBoundsTrapHandler(nullptr);
    auto heap = SandboxHeap::create(kWasmPageSize);
    ASSERT_TRUE(heap.isOk());
    auto p = heap->policy<BoundsPolicy>();
    // In-bounds accesses work.
    p.store<uint32_t>(kWasmPageSize - 4, 7);
    EXPECT_EQ(p.load<uint32_t>(kWasmPageSize - 4), 7u);
    EXPECT_DEATH((void)p.load<uint32_t>(kWasmPageSize - 3),
                 "bounds check failed");
}

}  // namespace
}  // namespace sfi::w2c
