#include <gtest/gtest.h>

#include <cstring>

#include "w2c/expat_lite.h"
#include "w2c/graphite_lite.h"
#include "w2c/heap.h"

namespace sfi::w2c {
namespace {

template <typename P>
XmlStats
parseDoc(const std::string& doc)
{
    auto heap = SandboxHeap::create(8 * kMiB);
    SFI_CHECK(heap.isOk());
    std::memcpy(heap->base(), doc.data(), doc.size());
    auto guard = heap->template enter<P>();
    P p = heap->template policy<P>();
    return parseXml(p, 0, static_cast<uint32_t>(doc.size()),
                    4 * kMiB);
}

TEST(ExpatLite, ParsesSimpleDocument)
{
    auto st = parseDoc<NativePolicy>(
        "<?xml version=\"1.0\"?>"
        "<a x=\"1\" y='2'><b>hi &amp; bye</b><c/></a>");
    EXPECT_TRUE(st.wellFormed);
    EXPECT_EQ(st.elements, 3u);
    EXPECT_EQ(st.attributes, 2u);
    EXPECT_EQ(st.entities, 1u);
    EXPECT_EQ(st.maxDepth, 2u);
    EXPECT_GT(st.textBytes, 0u);
}

TEST(ExpatLite, DetectsMismatchedTags)
{
    auto st = parseDoc<NativePolicy>("<a><b></a></b>");
    EXPECT_FALSE(st.wellFormed);
}

TEST(ExpatLite, DetectsUnclosedTags)
{
    auto st = parseDoc<NativePolicy>("<a><b></b>");
    EXPECT_FALSE(st.wellFormed);
}

TEST(ExpatLite, HandlesCommentsAndCdata)
{
    auto st = parseDoc<NativePolicy>(
        "<r><!-- a comment with <tags> inside -->"
        "<![CDATA[raw < > & bytes]]></r>");
    EXPECT_TRUE(st.wellFormed);
    EXPECT_EQ(st.elements, 1u);
    EXPECT_GT(st.textBytes, 10u);
}

TEST(ExpatLite, SvgDocumentWellFormed)
{
    std::string doc = makeSvgDocument(20, 3);
    auto st = parseDoc<NativePolicy>(doc);
    EXPECT_TRUE(st.wellFormed);
    // 20 icons x (g + rect + path + text) + svg root, x3 repeats.
    EXPECT_EQ(st.elements, 3u * (1 + 20 * 4));
    EXPECT_GT(st.attributes, 100u);
}

TEST(ExpatLite, AllPoliciesAgreeOnSvg)
{
    std::string doc = makeSvgDocument(16, 2);
    auto native = parseDoc<NativePolicy>(doc);
    auto base = parseDoc<BaseAddPolicy>(doc);
    auto segue = parseDoc<SeguePolicy>(doc);
    auto bounds = parseDoc<BoundsPolicy>(doc);
    EXPECT_EQ(native.checksum, base.checksum);
    EXPECT_EQ(native.checksum, segue.checksum);
    EXPECT_EQ(native.checksum, bounds.checksum);
    EXPECT_EQ(native.elements, segue.elements);
    EXPECT_EQ(native.attributes, segue.attributes);
    EXPECT_TRUE(segue.wellFormed);
}

// --- graphite_lite ---

template <typename P>
uint64_t
renderAll(uint32_t size_px)
{
    auto heap = SandboxHeap::create(16 * kMiB);
    SFI_CHECK(heap.isOk());
    uint32_t font_size = buildSyntheticFont(heap->base(), 0);
    EXPECT_GT(font_size, 1000u);
    uint64_t sum = 0;
    for (uint32_t g = 0; g < kFontGlyphs; g++) {
        // Firefox re-enters the sandbox per glyph (§6.1): the segment
        // base is set per call.
        auto guard = heap->template enter<P>();
        P p = heap->template policy<P>();
        sum = sum * 31 +
              renderGlyph(p, 0, g, size_px, 4 * kMiB, 8 * kMiB);
    }
    return sum;
}

TEST(GraphiteLite, RendersNonEmptyGlyphs)
{
    auto heap = SandboxHeap::create(16 * kMiB);
    ASSERT_TRUE(heap.isOk());
    buildSyntheticFont(heap->base(), 0);
    auto p = heap->policy<NativePolicy>();
    uint64_t cs = renderGlyph(p, 0, 5, 32, 4 * kMiB, 8 * kMiB);
    // Some pixels must be set (checksum over a zero bitmap is 0).
    EXPECT_NE(cs, 0u);
    // Count set pixels directly.
    uint32_t set = 0;
    for (uint32_t i = 0; i < 32 * 32; i++)
        set += heap->base()[4 * kMiB + i] != 0;
    EXPECT_GT(set, 16u);
    EXPECT_LT(set, 32u * 32);
}

TEST(GraphiteLite, SizesProduceDifferentBitmaps)
{
    auto heap = SandboxHeap::create(16 * kMiB);
    ASSERT_TRUE(heap.isOk());
    buildSyntheticFont(heap->base(), 0);
    auto p = heap->policy<NativePolicy>();
    EXPECT_NE(renderGlyph(p, 0, 7, 16, 4 * kMiB, 8 * kMiB),
              renderGlyph(p, 0, 7, 48, 4 * kMiB, 8 * kMiB));
}

TEST(GraphiteLite, AllPoliciesAgree)
{
    uint64_t native = renderAll<NativePolicy>(24);
    EXPECT_EQ(renderAll<BaseAddPolicy>(24), native);
    EXPECT_EQ(renderAll<SeguePolicy>(24), native);
    EXPECT_EQ(renderAll<BoundsPolicy>(24), native);
    EXPECT_EQ(renderAll<SegueBoundsPolicy>(24), native);
}

TEST(GraphiteLite, GlyphsDiffer)
{
    auto heap = SandboxHeap::create(16 * kMiB);
    ASSERT_TRUE(heap.isOk());
    buildSyntheticFont(heap->base(), 0);
    auto p = heap->policy<NativePolicy>();
    EXPECT_NE(renderGlyph(p, 0, 1, 32, 4 * kMiB, 8 * kMiB),
              renderGlyph(p, 0, 2, 32, 4 * kMiB, 8 * kMiB));
}

}  // namespace
}  // namespace sfi::w2c
