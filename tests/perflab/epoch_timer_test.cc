/**
 * @file
 * Regression test for the EpochTimer nanosleep bug: the seed wrote
 * `ts.tv_nsec = period_us * 1000` without normalizing into tv_sec, so
 * any period >= 1s handed nanosleep an out-of-range tv_nsec, got
 * EINVAL back, and busy-spun — pegging a core and bumping the epoch
 * millions of times per second instead of once per period.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "faas/scheduler.h"

namespace sfi::faas {
namespace {

using Clock = std::chrono::steady_clock;

double
elapsedSec(Clock::time_point since)
{
    return std::chrono::duration<double>(Clock::now() - since).count();
}

TEST(EpochTimer, TwoSecondPeriodSleepsInsteadOfSpinning)
{
    // epochUs = 2'000'000 is exactly the case that produced
    // tv_nsec = 2e9 >= 1e9. With the bug, 100ms of wall time saw the
    // epoch spin into the millions; fixed, it must still read 0.
    EpochTimer timer(2'000'000);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    EXPECT_LE(timer.now(), 1u);
}

TEST(EpochTimer, DestructionIsPromptMidPeriod)
{
    // The fix sleeps in <= 50ms chunks so a long period does not pin
    // the destructor for the rest of it.
    Clock::time_point start = Clock::now();
    {
        EpochTimer timer(2'000'000);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_LT(elapsedSec(start), 1.0);
}

TEST(EpochTimer, ShortPeriodStillTicks)
{
    EpochTimer timer(2'000);  // 2 ms
    const uint64_t* raw = timer.counter();
    Clock::time_point start = Clock::now();
    while (timer.now() < 5 && elapsedSec(start) < 5.0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(timer.now(), 5u);
    // The JIT-visible raw pointer aliases the same counter (the tick
    // thread may advance between the two reads).
    EXPECT_GE(*raw, 5u);
}

TEST(EpochTimer, ZeroPeriodIsClampedNotUndefined)
{
    // Defensive: period 0 must neither divide-by-zero nor hot-spin
    // with a zero-length sleep; it clamps to 1us and just ticks fast.
    EpochTimer timer(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_GE(timer.now(), 1u);
}

}  // namespace
}  // namespace sfi::faas
