/**
 * @file
 * The regression gate on hand-built baseline-vs-fresh pairs: the
 * noise band (relative floor OR scaled MAD), direction handling
 * (lower-is-better times vs higher-is-better rates), the
 * injected-20%-slowdown acceptance case, lost-coverage failures,
 * ungated tail metrics, env-fingerprint skips, and the
 * WorkloadResult JSON round trip the committed baselines rely on.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "perflab/gate.h"
#include "perflab/json.h"
#include "perflab/model.h"

namespace sfi::perflab {
namespace {

EnvFingerprint
testEnv()
{
    EnvFingerprint env;
    env.cpu = "Test CPU @ 1.0GHz";
    env.hwThreads = 4;
    env.fsgsbase = true;
    env.commit = "abc123";
    return env;
}

/** One-row workload with a single metric's samples. */
WorkloadResult
makeResult(const std::string& metric, std::vector<double> samples)
{
    WorkloadResult w;
    w.workload = "fixture";
    w.bench = "fixture";
    w.env = testEnv();
    w.reps = int(samples.size());
    BenchRow row;
    row.key = {{"section", "tiers"}, {"strategy", "segue"}};
    row.metrics[metric].samples = std::move(samples);
    row.bottleneck = "balanced";
    w.rows.push_back(std::move(row));
    return w;
}

WorkloadResult
scaled(const WorkloadResult& base, double factor)
{
    WorkloadResult w = base;
    for (BenchRow& row : w.rows)
        for (auto& [name, stat] : row.metrics)
            for (double& s : stat.samples)
                s *= factor;
    return w;
}

TEST(Gate, IdenticalRunPasses)
{
    WorkloadResult base = makeResult("warm_ns", {23.1, 23.4, 23.2});
    GateReport r = grade(base, base, GateConfig{});
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.metricsChecked, 1);
    EXPECT_EQ(r.metricsFailed, 0);
}

TEST(Gate, InjectedTwentyPercentSlowdownFails)
{
    // The acceptance fixture: a synthetic 20% slowdown on a
    // low-noise metric must trip the default band (12% floor).
    WorkloadResult base = makeResult("warm_ns", {23.1, 23.4, 23.2});
    WorkloadResult slow = scaled(base, 1.20);
    GateReport r = grade(base, slow, GateConfig{});
    EXPECT_FALSE(r.pass);
    ASSERT_EQ(r.metricsFailed, 1);
    const MetricVerdict* fail = nullptr;
    for (const MetricVerdict& v : r.verdicts)
        if (!v.ok)
            fail = &v;
    ASSERT_NE(fail, nullptr);
    EXPECT_EQ(fail->metric, "warm_ns");
    EXPECT_NE(fail->note.find("regressed"), std::string::npos);
}

TEST(Gate, SmallDriftInsideTheFloorPasses)
{
    WorkloadResult base = makeResult("warm_ns", {23.1, 23.4, 23.2});
    EXPECT_TRUE(grade(base, scaled(base, 1.05), GateConfig{}).pass);
    // Improvements never fail, however large.
    EXPECT_TRUE(grade(base, scaled(base, 0.5), GateConfig{}).pass);
}

TEST(Gate, MadBandWidensForNoisyMetrics)
{
    // 20% drift on a metric whose baseline already swings ~25%
    // between reps: the MAD term must absorb it.
    WorkloadResult base = makeResult("p99_us", {1000, 1250, 1100});
    WorkloadResult fresh = makeResult("p99_us", {1210, 1240, 1500});
    GateReport r = grade(base, fresh, GateConfig{});
    EXPECT_TRUE(r.pass) << formatReport(r, true);
}

TEST(Gate, HigherIsBetterMetricsGateDownward)
{
    WorkloadResult base = makeResult("rps", {98000, 97500, 98200});
    // Throughput drop fails...
    GateReport drop = grade(base, scaled(base, 0.8), GateConfig{});
    EXPECT_FALSE(drop.pass);
    // ...throughput gain passes.
    EXPECT_TRUE(grade(base, scaled(base, 1.3), GateConfig{}).pass);

    // _per_sec rates are throughput too (bench_pool_scaling
    // ops_per_sec): a gain must never read as a regression, even when
    // the baseline run caught a bimodal-slow rep as its minimum.
    WorkloadResult ops =
        makeResult("ops_per_sec", {13483, 32633, 36661});
    EXPECT_TRUE(grade(ops, scaled(ops, 2.5), GateConfig{}).pass);
    EXPECT_FALSE(grade(ops, scaled(ops, 0.4), GateConfig{}).pass);
}

TEST(Gate, RatioMetricsCenterOnMedian)
{
    // A baseline rep whose native denominator ran slow makes the
    // min-of-N ratio look like 0.67x native; the median ignores that
    // rep. Comparing mins here would read as a bogus 54% regression.
    WorkloadResult base =
        makeResult("bounds_norm", {0.67, 1.03, 1.05});
    WorkloadResult fresh = makeResult("bounds_norm", {1.04, 1.02});
    EXPECT_TRUE(grade(base, fresh, GateConfig{}).pass);

    // A genuine shift of the median still fails.
    WorkloadResult slow =
        makeResult("bounds_norm", {1.24, 1.26, 1.25});
    EXPECT_FALSE(grade(base, slow, GateConfig{}).pass);
    EXPECT_TRUE(metricIsRatio("bounds_norm"));
    EXPECT_TRUE(metricIsRatio("hit_pct"));
    EXPECT_FALSE(metricIsRatio("warm_ns"));
}

TEST(Gate, MinOfNIsTheCenter)
{
    // Fresh run has one slow outlier rep but its min matches the
    // baseline min: interference noise, not a regression.
    WorkloadResult base = makeResult("warm_ns", {23.0, 23.3, 23.1});
    WorkloadResult fresh = makeResult("warm_ns", {23.1, 31.0, 23.2});
    EXPECT_TRUE(grade(base, fresh, GateConfig{}).pass);
}

TEST(Gate, MissingRowFailsAsLostCoverage)
{
    WorkloadResult base = makeResult("warm_ns", {23.0});
    BenchRow extra;
    extra.key = {{"section", "tiers"}, {"strategy", "lfi-base"}};
    extra.metrics["warm_ns"].samples = {73.0};
    WorkloadResult base2 = base;
    base2.rows.push_back(extra);

    GateReport r = grade(base2, base, GateConfig{});
    EXPECT_FALSE(r.pass);
    bool found = false;
    for (const MetricVerdict& v : r.verdicts)
        if (!v.ok && v.note.find("lost coverage") != std::string::npos)
            found = true;
    EXPECT_TRUE(found);

    // The reverse — fresh grew a row — passes with a note.
    GateReport grew = grade(base, base2, GateConfig{});
    EXPECT_TRUE(grew.pass);
    ASSERT_FALSE(grew.notes.empty());
    EXPECT_NE(grew.notes[0].find("new row"), std::string::npos);
}

TEST(Gate, MissingMetricFails)
{
    WorkloadResult base = makeResult("warm_ns", {23.0});
    WorkloadResult fresh = makeResult("direct_ns", {19.0});
    GateReport r = grade(base, fresh, GateConfig{});
    EXPECT_FALSE(r.pass);
}

TEST(Gate, CountersAreNeverGated)
{
    WorkloadResult base = makeResult("warm_ns", {23.0});
    base.rows[0].counters["gs_switches"] = 60000;
    WorkloadResult fresh = base;
    fresh.rows[0].counters["gs_switches"] = 5;  // wildly different
    GateReport r = grade(base, fresh, GateConfig{});
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.metricsChecked, 1);  // only warm_ns
}

TEST(Gate, TailMetricsRecordedButNotGated)
{
    WorkloadResult base = makeResult("max_us", {2000});
    WorkloadResult fresh = makeResult("max_us", {20000});  // 10x
    GateReport r = grade(base, fresh, GateConfig{});
    EXPECT_TRUE(r.pass);
    EXPECT_EQ(r.metricsChecked, 0);
    EXPECT_FALSE(metricIsGated("max_us"));
    EXPECT_FALSE(metricIsGated("p999_us"));
    EXPECT_FALSE(metricIsGated("queue_p99_us"));
    EXPECT_TRUE(metricIsGated("p99_us"));
    EXPECT_TRUE(metricIsGated("warm_ns"));
}

TEST(Gate, EnvMismatchDeclinesToJudge)
{
    WorkloadResult base = makeResult("warm_ns", {23.0});
    WorkloadResult fresh = scaled(base, 2.0);  // would fail the band
    fresh.env.cpu = "Different CPU";

    GateReport strict = grade(base, fresh, GateConfig{});
    EXPECT_TRUE(strict.envMismatch);
    EXPECT_TRUE(strict.pass);  // declined, not judged
    EXPECT_EQ(strict.metricsChecked, 0);

    GateConfig loose;
    loose.requireEnvMatch = false;
    GateReport judged = grade(base, fresh, loose);
    EXPECT_TRUE(judged.envMismatch);
    EXPECT_FALSE(judged.pass);
}

TEST(Gate, CommitDifferenceIsNotAnEnvMismatch)
{
    WorkloadResult base = makeResult("warm_ns", {23.0});
    WorkloadResult fresh = base;
    fresh.env.commit = "def456";
    GateReport r = grade(base, fresh, GateConfig{});
    EXPECT_FALSE(r.envMismatch);
    EXPECT_TRUE(r.pass);
}

TEST(Gate, BandScalesWithConfiguredFloor)
{
    WorkloadResult base = makeResult("warm_ns", {100.0, 100.5, 99.8});
    WorkloadResult slow = scaled(base, 1.4);
    GateConfig wide;
    wide.relFloor = 0.5;
    EXPECT_TRUE(grade(base, slow, wide).pass);
    GateConfig narrow;
    narrow.relFloor = 0.12;
    EXPECT_FALSE(grade(base, slow, narrow).pass);
}

TEST(Gate, RatioMetricsKeepPrecisionFloorUnderWideBand)
{
    // The CI gate runs with --band 1.0 for wall-clock metrics; a
    // counter-normalized *_per_transition metric must still be held
    // to the 12% ratioRelFloor: a 40% regression fails even though
    // the wall band would have allowed it.
    WorkloadResult base =
        makeResult("ns_per_transition", {100.0, 100.5, 99.8});
    WorkloadResult slow = scaled(base, 1.4);
    GateConfig wide;
    wide.relFloor = 1.0;
    EXPECT_TRUE(metricIsRatio("ns_per_transition"));
    EXPECT_FALSE(grade(base, slow, wide).pass);
    // Drift inside the precision floor still passes.
    EXPECT_TRUE(grade(base, scaled(base, 1.05), wide).pass);

    // A plain wall-clock metric keeps the wide band.
    WorkloadResult wall = makeResult("warm_ns", {100.0, 100.5, 99.8});
    EXPECT_TRUE(grade(wall, scaled(wall, 1.4), wide).pass);

    // An explicitly narrower --band still applies to ratio metrics
    // (the effective floor is min(relFloor, ratioRelFloor)).
    GateConfig tight;
    tight.relFloor = 0.02;
    tight.madMult = 0.0;
    EXPECT_FALSE(grade(base, scaled(base, 1.05), tight).pass);
}

// ------------------------------------------------- model serialization

TEST(Model, WorkloadResultJsonRoundTrip)
{
    WorkloadResult w = makeResult("warm_ns", {23.1, 23.4, 23.2});
    w.rows[0].counters["gs_switches"] = 60001;
    w.rows[0].bottleneck = "transition-bound";
    w.rows[0].bottleneckRule = "transition.tier_gap";
    w.rows[0].bottleneckDetail = "full->batched recovers 66%";

    std::string text = w.toJson().dump(2);
    auto parsed = Json::parse(text);
    ASSERT_TRUE(parsed.isOk()) << parsed.message();
    auto back = WorkloadResult::fromJson(*parsed);
    ASSERT_TRUE(back.isOk()) << back.message();

    EXPECT_EQ(back->workload, "fixture");
    EXPECT_EQ(back->schemaVersion, kSchemaVersion);
    EXPECT_TRUE(back->env.compatibleWith(w.env));
    EXPECT_EQ(back->env.commit, "abc123");
    ASSERT_EQ(back->rows.size(), 1u);
    const BenchRow& row = back->rows[0];
    EXPECT_EQ(row.keyString(), "section=tiers strategy=segue");
    EXPECT_EQ(row.bottleneck, "transition-bound");
    EXPECT_EQ(row.counters.at("gs_switches"), 60001);
    ASSERT_EQ(row.metrics.at("warm_ns").samples.size(), 3u);
    EXPECT_DOUBLE_EQ(row.metrics.at("warm_ns").minOf(), 23.1);

    // A graded round trip against itself passes.
    EXPECT_TRUE(grade(w, *back, GateConfig{}).pass);
}

TEST(Model, RejectsWrongSchemaVersion)
{
    WorkloadResult w = makeResult("warm_ns", {23.0});
    Json j = w.toJson();
    j.set("schema_version", Json::number(kSchemaVersion + 1));
    auto back = WorkloadResult::fromJson(j);
    EXPECT_FALSE(back.isOk());
    EXPECT_NE(back.message().find("schema_version"),
              std::string::npos);
}

TEST(Model, MetricStatAggregates)
{
    MetricStat s;
    s.samples = {10.0, 14.0, 11.0, 100.0};  // one outlier
    EXPECT_DOUBLE_EQ(s.minOf(), 10.0);
    EXPECT_DOUBLE_EQ(s.maxOf(), 100.0);
    EXPECT_DOUBLE_EQ(s.median(), 12.5);
    // Deviations from 12.5: 2.5, 1.5, 1.5, 87.5 -> median 2.0.
    EXPECT_DOUBLE_EQ(s.mad(), 2.0);
    EXPECT_DOUBLE_EQ(s.best(true), 10.0);
    EXPECT_DOUBLE_EQ(s.best(false), 100.0);
}

TEST(Model, MergeRunsBuildsSamplesAcrossReps)
{
    const char* rep_template =
        R"({"bench": "transitions", "results": [
             {"section": "tiers", "strategy": "segue", "calls": 20000,
              "warm_ns": %f, "gs_switches": 60001},
             {"section": "faas", "batch_max": 16, "requests": 1200,
              "rps": %f, "sandbox_transitions": 96}
           ]})";
    std::vector<Json> runs;
    for (double f : {1.0, 1.01, 0.99}) {
        char buf[1024];
        std::snprintf(buf, sizeof buf, rep_template, 23.0 * f,
                      98000.0 * f);
        auto j = Json::parse(buf);
        ASSERT_TRUE(j.isOk()) << j.message();
        runs.push_back(std::move(*j));
    }
    auto merged = mergeRuns("transitions", runs, testEnv());
    ASSERT_TRUE(merged.isOk()) << merged.message();
    EXPECT_EQ(merged->bench, "transitions");
    EXPECT_EQ(merged->reps, 3);
    ASSERT_EQ(merged->rows.size(), 2u);

    // Row identity: strings + coordinates; samples accumulate.
    const BenchRow& tiers = merged->rows[0];
    EXPECT_EQ(tiers.keyString(), "section=tiers strategy=segue");
    EXPECT_EQ(tiers.metrics.at("warm_ns").samples.size(), 3u);
    // calls is integral everywhere -> counter, not a metric.
    EXPECT_EQ(tiers.counters.at("calls"), 20000);
    EXPECT_EQ(tiers.metrics.count("calls"), 0u);

    const BenchRow& faas = merged->rows[1];
    EXPECT_EQ(faas.keyString(), "section=faas batch_max=16");
    // rps has a metric suffix -> gated metric even when integral.
    EXPECT_EQ(faas.metrics.at("rps").samples.size(), 3u);
    EXPECT_EQ(faas.counters.at("sandbox_transitions"), 96);
}

TEST(Model, MergeRunsToleratesNullMeasurements)
{
    // The hardened emitter writes null for non-finite doubles; a rep
    // with a null sample simply contributes nothing to that metric.
    auto a = Json::parse(
        R"({"bench": "b", "results": [{"k": "x", "t_ns": 5.5}]})");
    auto b = Json::parse(
        R"({"bench": "b", "results": [{"k": "x", "t_ns": null}]})");
    ASSERT_TRUE(a.isOk() && b.isOk());
    auto merged = mergeRuns("w", {*a, *b}, testEnv());
    ASSERT_TRUE(merged.isOk()) << merged.message();
    EXPECT_EQ(merged->rows[0].metrics.at("t_ns").samples.size(), 1u);
}

TEST(Model, MergeRunsRejectsSchemaSurprises)
{
    auto no_results = Json::parse(R"({"bench": "b"})");
    ASSERT_TRUE(no_results.isOk());
    EXPECT_FALSE(mergeRuns("w", {*no_results}, testEnv()).isOk());
    EXPECT_FALSE(mergeRuns("w", {}, testEnv()).isOk());
}

}  // namespace
}  // namespace sfi::perflab
