/**
 * @file
 * The classifier rule table on synthetic counter sets: each rule's
 * threshold, the first-match precedence order, and classifyRow's view
 * over a merged BenchRow (counters, metric medians, numeric key
 * coordinates).
 */
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "perflab/classifier.h"

namespace sfi::perflab {
namespace {

FieldView
view(std::map<std::string, double> fields)
{
    return [fields = std::move(fields)](
               const std::string& name) -> std::optional<double> {
        auto it = fields.find(name);
        if (it == fields.end())
            return std::nullopt;
        return it->second;
    };
}

TEST(Classifier, EmptyRowIsBalanced)
{
    Classification c = classify(view({}));
    EXPECT_EQ(c.bottleneck, "balanced");
    EXPECT_EQ(c.rule, "default");
}

TEST(Classifier, CompileBoundOnColdStartShare)
{
    // 580 us of compile per cold start against a 590 us p50: the row
    // is measuring the compiler (the monolithic cold-start shape).
    Classification c = classify(view({
        {"cold_starts", 30},
        {"compile_ns", 30 * 580e3},
        {"first_req_p50_us", 590.0},
    }));
    EXPECT_EQ(c.bottleneck, "compile-bound");
    EXPECT_EQ(c.rule, "coldstart.compile_bound");

    // Warm cache: ~1 us of compile against the same p50 — not
    // compile-bound (and the rule must not fire on zero cold starts).
    EXPECT_EQ(classify(view({
                           {"cold_starts", 30},
                           {"compile_ns", 30 * 1e3},
                           {"first_req_p50_us", 127.0},
                       }))
                  .bottleneck,
              "balanced");
    EXPECT_EQ(classify(view({
                           {"cold_starts", 0},
                           {"compile_ns", 1e9},
                           {"first_req_p50_us", 590.0},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, ZeroingBoundOnBytesPerRequest)
{
    // 1 MiB scrubbed per request: zeroing dominates.
    Classification c = classify(view({
        {"warm_zeroed_bytes", 400.0 * 1024 * 1024},
        {"requests", 400},
    }));
    EXPECT_EQ(c.bottleneck, "zeroing-bound");
    EXPECT_EQ(c.rule, "zeroing.bytes_per_request");

    // 4 KiB per request: not the bottleneck.
    EXPECT_EQ(classify(view({
                           {"warm_zeroed_bytes", 400.0 * 4096},
                           {"requests", 400},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, TransitionBoundPerRequest)
{
    Classification c = classify(view({
        {"sandbox_transitions", 1200},
        {"requests", 1200},
    }));
    EXPECT_EQ(c.bottleneck, "transition-bound");
    EXPECT_EQ(c.rule, "transition.per_request");

    // Batched entry amortized the transitions away.
    EXPECT_EQ(classify(view({
                           {"sandbox_transitions", 96},
                           {"requests", 1200},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, TransitionBoundTierGap)
{
    // Segue-shaped: 37.5 ns full -> 12.5 ns batched (67% recovered).
    Classification c = classify(view({
        {"full_ns", 37.5},
        {"batched_ns", 12.5},
    }));
    EXPECT_EQ(c.bottleneck, "transition-bound");
    EXPECT_EQ(c.rule, "transition.tier_gap");

    // Under the 25% threshold.
    EXPECT_EQ(classify(view({{"full_ns", 20.0}, {"batched_ns", 16.0}}))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, TransitionBoundScopedEntry)
{
    Classification c = classify(view({
        {"scoped_ms", 10.0},
        {"cached_ms", 9.0},
    }));
    EXPECT_EQ(c.rule, "transition.scoped_entry");

    // Cached entry not faster: the per-entry %gs work was not the tax.
    EXPECT_EQ(classify(view({{"scoped_ms", 9.9}, {"cached_ms", 10.0}}))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, GuardBoundOnNormalizedOverhead)
{
    Classification c = classify(view({
        {"wasm2c_norm", 1.05},
        {"bounds_norm", 1.35},
    }));
    EXPECT_EQ(c.bottleneck, "guard-bound");
    EXPECT_EQ(c.rule, "guard.sfi_overhead");
    EXPECT_NE(c.detail.find("bounds_norm"), std::string::npos);

    EXPECT_EQ(classify(view({{"wasm2c_norm", 1.05}})).bottleneck,
              "balanced");
}

TEST(Classifier, GuardBoundOnResidualChecks)
{
    Classification c = classify(view({
        {"guard_checks_total", 273},
        {"guard_checks_eliminated", 50},
    }));
    EXPECT_EQ(c.rule, "guard.residual_checks");

    // The optimizer elided most checks: guards are no longer the story.
    EXPECT_EQ(classify(view({
                           {"guard_checks_total", 273},
                           {"guard_checks_eliminated", 250},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, AdmissionBoundOnTurnedAwayFraction)
{
    // A 2x-overload Shed row: 40% of offered work turned away.
    Classification c = classify(view({
        {"offered_requests", 1000},
        {"rejected", 0},
        {"shed_requests", 400},
    }));
    EXPECT_EQ(c.bottleneck, "admission-bound");
    EXPECT_EQ(c.rule, "admission.queue_bound");

    // 2% turned away: the queue absorbed a burst, not the bottleneck.
    EXPECT_EQ(classify(view({
                           {"offered_requests", 1000},
                           {"rejected", 20},
                           {"shed_requests", 0},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, AdmissionBoundOnBackpressureDelay)
{
    // Backpressure is lossless; the bound surfaces as admission delay
    // dominating the served p99, with overload events recorded.
    Classification c = classify(view({
        {"offered_requests", 1000},
        {"rejected", 0},
        {"shed_requests", 0},
        {"overload_events", 12},
        {"admission_p99_us", 9000},
        {"p99_us", 2000},
    }));
    EXPECT_EQ(c.rule, "admission.queue_bound");

    // No overload events: a loaded-but-keeping-up host stays balanced.
    EXPECT_EQ(classify(view({
                           {"offered_requests", 1000},
                           {"overload_events", 0},
                           {"admission_p99_us", 9000},
                           {"p99_us", 2000},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, ContentionBoundOnCrossShardSteals)
{
    Classification steals = classify(view({
        {"allocations", 1000},
        {"steals", 400},
    }));
    EXPECT_EQ(steals.bottleneck, "contention-bound");
    EXPECT_EQ(steals.rule, "pool.shard_contention");

    // Under the 25% threshold: not contention.
    EXPECT_EQ(classify(view({
                           {"allocations", 1000},
                           {"steals", 100},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, MemoryBoundOnPoolChurn)
{
    // Cold pool: no warm hits, decommit traffic.
    Classification cold = classify(view({
        {"allocations", 400},
        {"warm_hits", 0},
        {"steals", 0},
        {"decommits", 12},
    }));
    EXPECT_EQ(cold.bottleneck, "memory-bound");

    // Healthy warm pool.
    EXPECT_EQ(classify(view({
                           {"allocations", 400},
                           {"warm_hits", 390},
                           {"steals", 0},
                           {"decommits", 2},
                       }))
                  .bottleneck,
              "balanced");
}

TEST(Classifier, PrecedenceIsDocumentedOrder)
{
    // A row where everything fires classifies by the first rule:
    // zeroing before transitions before guards before memory.
    std::map<std::string, double> everything = {
        {"cold_starts", 10},          {"compile_ns", 10 * 500e3},
        {"first_req_p50_us", 600},    {"offered_requests", 100},
        {"rejected", 40},             {"warm_zeroed_bytes", 1e9},
        {"requests", 100},            {"sandbox_transitions", 100},
        {"full_ns", 40},              {"batched_ns", 10},
        {"bounds_norm", 1.5},         {"allocations", 100},
        {"steals", 90},               {"warm_hits", 10},
        {"decommits", 4},
    };
    EXPECT_EQ(classify(view(everything)).rule,
              "coldstart.compile_bound");
    everything.erase("cold_starts");
    EXPECT_EQ(classify(view(everything)).rule, "admission.queue_bound");
    everything.erase("offered_requests");
    EXPECT_EQ(classify(view(everything)).bottleneck, "zeroing-bound");
    everything.erase("warm_zeroed_bytes");
    EXPECT_EQ(classify(view(everything)).rule,
              "transition.per_request");
    everything.erase("sandbox_transitions");
    EXPECT_EQ(classify(view(everything)).rule, "transition.tier_gap");
    everything.erase("full_ns");
    EXPECT_EQ(classify(view(everything)).rule, "guard.sfi_overhead");
    everything.erase("bounds_norm");
    EXPECT_EQ(classify(view(everything)).rule, "pool.shard_contention");
    everything.erase("steals");
    EXPECT_EQ(classify(view(everything)).rule, "memory.pool_churn");
}

TEST(Classifier, ClassifyRowReadsCountersMetricsAndKey)
{
    BenchRow row;
    row.key = {{"section", "faas"}, {"batch_max", "1"}};
    row.counters["sandbox_transitions"] = 1200;
    row.counters["requests"] = 1200;
    row.metrics["rps"].samples = {50000, 51000, 49000};
    Classification c = classifyRow(row);
    EXPECT_EQ(c.bottleneck, "transition-bound");

    // Metric medians are visible to rules.
    BenchRow tier;
    tier.metrics["full_ns"].samples = {40.0, 41.0, 39.0};
    tier.metrics["batched_ns"].samples = {12.0, 12.5, 12.2};
    EXPECT_EQ(classifyRow(tier).rule, "transition.tier_gap");
}

TEST(Classifier, ClassifyAllStampsEveryRow)
{
    WorkloadResult w;
    BenchRow a;
    a.metrics["full_ns"].samples = {40.0};
    a.metrics["batched_ns"].samples = {12.0};
    BenchRow b;
    w.rows = {a, b};
    classifyAll(&w);
    EXPECT_EQ(w.rows[0].bottleneck, "transition-bound");
    EXPECT_EQ(w.rows[1].bottleneck, "balanced");
    EXPECT_FALSE(w.rows[1].bottleneckDetail.empty());
}

TEST(Classifier, RuleTableIsStable)
{
    // The rule ids are part of the schema (stored in BENCH_*.json);
    // renaming one is a deliberate, test-visible act.
    std::vector<std::string> ids;
    for (const ClassifierRule& r : classifierRules())
        ids.push_back(r.id);
    EXPECT_EQ(ids, (std::vector<std::string>{
                       "coldstart.compile_bound",
                       "admission.queue_bound",
                       "zeroing.bytes_per_request",
                       "transition.per_request",
                       "transition.tier_gap",
                       "transition.scoped_entry",
                       "guard.sfi_overhead",
                       "guard.residual_checks",
                       "pool.shard_contention",
                       "memory.pool_churn",
                   }));
}

}  // namespace
}  // namespace sfi::perflab
