/**
 * @file
 * Strict-parser units and the emitter contract: everything the
 * hardened bench JsonEmitter writes must parse with perflab's strict
 * JSON parser — including rows that carry NaN/Inf measurements and
 * strings with control characters, the two corruptions the seed
 * emitter produced.
 */
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "bench/bench_util.h"
#include "perflab/json.h"

namespace sfi::perflab {
namespace {

// --------------------------------------------------------- parser units

TEST(JsonParse, Scalars)
{
    EXPECT_TRUE(Json::parse("null")->isNull());
    EXPECT_TRUE(Json::parse("true")->asBool());
    EXPECT_FALSE(Json::parse("false")->asBool());
    EXPECT_DOUBLE_EQ(Json::parse("-12.5e2")->asNumber(), -1250.0);
    EXPECT_EQ(Json::parse("\"hi\"")->asString(), "hi");
    EXPECT_EQ(Json::parse(" [1, 2, 3] ")->items().size(), 3u);
}

TEST(JsonParse, ObjectPreservesOrderAndFinds)
{
    auto j = Json::parse(R"({"b": 1, "a": {"nested": [true]}})");
    ASSERT_TRUE(j.isOk());
    ASSERT_EQ(j->members().size(), 2u);
    EXPECT_EQ(j->members()[0].first, "b");
    const Json* a = j->find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->find("nested")->items()[0].asBool());
    EXPECT_EQ(j->find("missing"), nullptr);
}

TEST(JsonParse, StrictRejections)
{
    // The corpus of corruptions a lax parser would wave through.
    const char* bad[] = {
        "nan",          "inf",           "Infinity",
        "[1, 2,]",      "{\"a\": 1,}",   "[1] trailing",
        "'single'",     "{a: 1}",        "\"unterminated",
        "\"raw\ncontrol\"",              "01",
        "1.",           "+1",            "--1",
        "[",            "{\"a\"}",       "\"bad \\x escape\"",
        "\"\\u12\"",    "\"\\ud800\"",   "",
    };
    for (const char* text : bad)
        EXPECT_FALSE(Json::parse(text).isOk()) << text;
}

TEST(JsonParse, UnicodeEscapes)
{
    auto j = Json::parse(R"("\u0041\u00e9\u2603\ud83d\ude00")");
    ASSERT_TRUE(j.isOk());
    EXPECT_EQ(j->asString(), "A\xC3\xA9\xE2\x98\x83\xF0\x9F\x98\x80");
}

TEST(JsonParse, DeepNestingBounded)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    EXPECT_FALSE(Json::parse(deep).isOk());
}

TEST(JsonDump, RoundTrips)
{
    const char* text =
        R"({"s": "a\"b\\c\nd\u0001e", "n": -2.5, "i": 7, )"
        R"("arr": [null, true, []], "o": {}})";
    auto j = Json::parse(text);
    ASSERT_TRUE(j.isOk());
    for (int indent : {0, 2}) {
        auto back = Json::parse(j->dump(indent));
        ASSERT_TRUE(back.isOk()) << j->dump(indent);
        EXPECT_EQ(back->dump(0), j->dump(0));
    }
}

TEST(JsonDump, NonFiniteBecomesNull)
{
    EXPECT_EQ(Json::number(std::nan("")).dump(), "null");
    EXPECT_EQ(
        Json::number(std::numeric_limits<double>::infinity()).dump(),
        "null");
}

// ------------------------------------------- hardened emitter contract

class EmitterFile
{
  public:
    EmitterFile()
    {
        std::snprintf(path_, sizeof path_,
                      "/tmp/perflab_json_test_%d_%p.json", getpid(),
                      (void*)this);
    }
    ~EmitterFile() { std::remove(path_); }
    const char* path() const { return path_; }

    Result<Json>
    parse() const
    {
        auto text = readWhole();
        return Json::parse(text);
    }

    std::string
    readWhole() const
    {
        std::FILE* f = std::fopen(path_, "rb");
        EXPECT_NE(f, nullptr);
        std::string text;
        char buf[4096];
        size_t n;
        while (f != nullptr &&
               (n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        if (f != nullptr)
            std::fclose(f);
        return text;
    }

  private:
    char path_[128];
};

bench::JsonEmitter
makeEmitter(const EmitterFile& file, const char* name)
{
    const char* argv[] = {"test", "--json", file.path()};
    return bench::JsonEmitter(3, const_cast<char**>(argv), name);
}

TEST(JsonEmitter, NonFiniteDoublesEmitNull)
{
    EmitterFile file;
    {
        auto json = makeEmitter(file, "fixture");
        json.row()
            .field("ok_ns", 1.5)
            .field("nan_ns", std::nan(""))
            .field("inf_ns", std::numeric_limits<double>::infinity())
            .field("ninf_ns", -std::numeric_limits<double>::infinity());
    }
    auto doc = file.parse();
    ASSERT_TRUE(doc.isOk()) << doc.message();
    const Json& row = doc->find("results")->items()[0];
    EXPECT_DOUBLE_EQ(row.find("ok_ns")->asNumber(), 1.5);
    EXPECT_TRUE(row.find("nan_ns")->isNull());
    EXPECT_TRUE(row.find("inf_ns")->isNull());
    EXPECT_TRUE(row.find("ninf_ns")->isNull());
}

TEST(JsonEmitter, ControlCharactersEscape)
{
    const std::string nasty =
        std::string("line1\nline2\ttab\x01\x1f quote\" slash\\ end");
    EmitterFile file;
    {
        auto json = makeEmitter(file, "fixture");
        json.row().field("name", nasty);
    }
    auto doc = file.parse();
    ASSERT_TRUE(doc.isOk()) << doc.message() << "\n"
                            << file.readWhole();
    EXPECT_EQ(
        doc->find("results")->items()[0].find("name")->asString(),
        nasty);
}

TEST(JsonEmitter, RowReferencesSurviveLaterRows)
{
    // Regression: rows_ was a std::vector, so holding a Row& across
    // the next row() call dangled on reallocation. With a deque every
    // early reference stays valid through hundreds of appends.
    EmitterFile file;
    {
        auto json = makeEmitter(file, "fixture");
        bench::JsonEmitter::Row& first = json.row();
        first.field("index", 0);
        for (int i = 1; i < 300; i++)
            json.row().field("index", i);
        first.field("late_field", 42.0);  // UB before the fix
    }
    auto doc = file.parse();
    ASSERT_TRUE(doc.isOk()) << doc.message();
    const auto& rows = doc->find("results")->items();
    ASSERT_EQ(rows.size(), 300u);
    ASSERT_NE(rows[0].find("late_field"), nullptr);
    EXPECT_DOUBLE_EQ(rows[0].find("late_field")->asNumber(), 42.0);
    EXPECT_EQ(rows[299].find("late_field"), nullptr);
}

TEST(JsonEmitter, TypicalBenchRowParsesStrictly)
{
    EmitterFile file;
    {
        auto json = makeEmitter(file, "transitions");
        json.row()
            .field("section", std::string("tiers"))
            .field("strategy", std::string("segue"))
            .field("full_ns", 37.5465)
            .field("gs_switches", uint64_t(60001));
        json.row()
            .field("section", std::string("faas"))
            .field("batch_max", 16)
            .field("rps", 98165.36298974392);
    }
    auto doc = file.parse();
    ASSERT_TRUE(doc.isOk()) << doc.message();
    EXPECT_EQ(doc->find("bench")->asString(), "transitions");
    ASSERT_EQ(doc->find("results")->items().size(), 2u);
    const Json& r0 = doc->find("results")->items()[0];
    EXPECT_TRUE(r0.find("gs_switches")->isIntegral());
    EXPECT_EQ(r0.find("gs_switches")->asInt(), 60001);
}

}  // namespace
}  // namespace sfi::perflab
