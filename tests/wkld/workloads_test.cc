/**
 * @file
 * Workload-suite validation: every benchmark module must validate, run
 * identically under the interpreter and every JIT strategy, and produce
 * a non-trivial checksum. This pins down the programs the paper-figure
 * benches measure.
 */
#include "wkld/workloads.h"

#include <gtest/gtest.h>

#include "interp/interp.h"
#include "jit/compiler.h"
#include "jit/vectorize.h"
#include "runtime/instance.h"
#include "wasm/validator.h"

namespace sfi::wkld {
namespace {

using jit::CompilerConfig;

std::vector<Workload>
allRunWorkloads()
{
    std::vector<Workload> all;
    for (const auto* s : {&sightglass(), &spec17(), &polydhry()})
        all.insert(all.end(), s->begin(), s->end());
    return all;
}

class WorkloadTest : public ::testing::TestWithParam<Workload>
{
};

TEST_P(WorkloadTest, ValidatesAndRunsEverywhere)
{
    const Workload& w = GetParam();
    wasm::Module m = w.make();
    ASSERT_TRUE(wasm::validate(m)) << wasm::validate(m).message();

    // Interpreter reference.
    auto interp_inst = interp::Instance::instantiate(m);
    ASSERT_TRUE(interp_inst.isOk()) << interp_inst.message();
    auto ref = interp_inst->callExport("run", {w.testScale});
    ASSERT_TRUE(ref.ok()) << rt::name(ref.trap);
    EXPECT_NE(ref.value, 0u) << "degenerate checksum";

    const CompilerConfig configs[] = {
        CompilerConfig::native(),    CompilerConfig::wamrBase(),
        CompilerConfig::wamrSegue(), CompilerConfig::wamrSegueLoads(),
        CompilerConfig::lfiBase(),   CompilerConfig::lfiSegue(),
    };
    for (const CompilerConfig& cfg : configs) {
        auto shared = rt::SharedModule::compile(m, cfg);
        ASSERT_TRUE(shared.isOk()) << shared.message();
        auto inst = rt::Instance::create(*shared);
        ASSERT_TRUE(inst.isOk()) << inst.message();
        auto out = (*inst)->call("run", {w.testScale});
        ASSERT_TRUE(out.ok())
            << w.name << " under " << jit::name(cfg.mem) << ": "
            << rt::name(out.trap);
        EXPECT_EQ(out.value, ref.value)
            << w.name << " under " << jit::name(cfg.mem);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, WorkloadTest, ::testing::ValuesIn(allRunWorkloads()),
    [](const auto& info) {
        std::string n = info.param.name;
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Workloads, ScaleMonotonicallyChangesWork)
{
    // Spot-check that scale is wired through (different checksums).
    const Workload& w = findWorkload("seqhash");
    wasm::Module m = w.make();
    auto inst = interp::Instance::instantiate(m);
    ASSERT_TRUE(inst.isOk());
    auto one = inst->callExport("run", {1});
    auto two = inst->callExport("run", {2});
    ASSERT_TRUE(one.ok() && two.ok());
    EXPECT_NE(one.value, two.value);
}

TEST(Workloads, MemmoveAndSieveAreVectorizable)
{
    // The two §4.2 regression benchmarks must contain the canonical
    // loops the vectorizer recognizes — otherwise the Figure 4
    // mechanism is silently lost.
    for (const char* name : {"memmove", "sieve"}) {
        wasm::Module m = findWorkload(name).make();
        int total = 0;
        for (const auto& fn : m.functions)
            total += jit::countVectorizableLoops(fn);
        EXPECT_GE(total, 1) << name;
    }
}

TEST(Workloads, VectorizationPreservesSemantics)
{
    // memmove/sieve: vectorized (BaseReg) vs unvectorized (full Segue)
    // must agree — the regression is performance-only.
    for (const char* name : {"memmove", "sieve"}) {
        const Workload& w = findWorkload(name);
        wasm::Module m = w.make();
        auto base = rt::SharedModule::compile(
            m, CompilerConfig::wamrBase());
        auto segue = rt::SharedModule::compile(
            m, CompilerConfig::wamrSegue());
        ASSERT_TRUE(base.isOk() && segue.isOk());
        auto bi = rt::Instance::create(*base);
        auto si = rt::Instance::create(*segue);
        ASSERT_TRUE(bi.isOk() && si.isOk());
        auto bo = (*bi)->call("run", {w.testScale});
        auto so = (*si)->call("run", {w.testScale});
        ASSERT_TRUE(bo.ok() && so.ok());
        EXPECT_EQ(bo.value, so.value) << name;
    }
}

TEST(FaasWorkloads, HandleRunsWithIoWait)
{
    for (const Workload& w : faasWorkloads()) {
        wasm::Module m = w.make();
        ASSERT_TRUE(wasm::validate(m)) << w.name;
        int io_calls = 0;
        auto inst = interp::Instance::instantiate(
            m, {{"io_wait", [&](uint64_t*, size_t) {
                     io_calls++;
                     return interp::HostOutcome{};
                 }}});
        ASSERT_TRUE(inst.isOk()) << inst.message();
        auto out = inst->callExport("handle", {7});
        ASSERT_TRUE(out.ok()) << w.name << ": " << rt::name(out.trap);
        EXPECT_NE(out.value, 0u) << w.name;
        EXPECT_EQ(io_calls, 1) << w.name;

        // JIT path must agree.
        auto shared = rt::SharedModule::compile(
            m, CompilerConfig::wamrSegue());
        ASSERT_TRUE(shared.isOk()) << shared.message();
        auto jinst = rt::Instance::create(
            *shared, {{"io_wait", [](uint64_t*, size_t) {
                           return rt::HostOutcome{};
                       }}});
        ASSERT_TRUE(jinst.isOk());
        auto jout = (*jinst)->call("handle", {7});
        ASSERT_TRUE(jout.ok()) << w.name;
        EXPECT_EQ(jout.value, out.value) << w.name;
    }
}

TEST(FaasWorkloads, DistinctRequestsDistinctResponses)
{
    for (const Workload& w : faasWorkloads()) {
        wasm::Module m = w.make();
        auto inst = interp::Instance::instantiate(
            m, {{"io_wait", [](uint64_t*, size_t) {
                     return interp::HostOutcome{};
                 }}});
        ASSERT_TRUE(inst.isOk());
        auto a = inst->callExport("handle", {1});
        auto b = inst->callExport("handle", {2});
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_NE(a.value, b.value) << w.name;
    }
}

}  // namespace
}  // namespace sfi::wkld
