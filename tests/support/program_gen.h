/**
 * @file
 * Random Wasm-subset program generator for differential testing.
 *
 * Programs are generated under constraints that make interpreter/JIT
 * comparison exact across every SFI strategy:
 *  - memory indices are masked in-bounds (OOB wrap semantics differ
 *    between Wasm guard regions and LFI masking — footnote 1 of the
 *    paper — so bounds traps are exercised by dedicated tests instead);
 *  - divisors are forced nonzero (divide traps are tested separately);
 *  - loops are bounded by construction.
 * Everything else — arithmetic, conversions, control flow, calls,
 * loads/stores of every width, globals, select — is fair game.
 */
#ifndef SFIKIT_TESTS_SUPPORT_PROGRAM_GEN_H_
#define SFIKIT_TESTS_SUPPORT_PROGRAM_GEN_H_

#include <cstdint>

#include "base/rng.h"
#include "wasm/module.h"

namespace sfi::testing {

struct GenOptions
{
    int numFunctions = 3;
    int maxExprDepth = 5;
    int maxStatements = 12;
    uint32_t memPages = 2;
};

/** Generates a validated module whose export "main" takes (i32, i64)
 *  and returns i64. */
wasm::Module generateProgram(uint64_t seed, const GenOptions& options = {});

}  // namespace sfi::testing

#endif  // SFIKIT_TESTS_SUPPORT_PROGRAM_GEN_H_
