#include "tests/support/program_gen.h"

#include <vector>

#include "wasm/builder.h"

namespace sfi::testing {

using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::ValType;
using VT = wasm::ValType;

namespace {

/** Per-function generation state. */
class FuncGen
{
  public:
    FuncGen(Rng& rng, FunctionBuilder& f, int max_depth,
            uint32_t callable_funcs)
        : rng_(rng), f_(f), maxDepth_(max_depth),
          callableFuncs_(callable_funcs)
    {
        // Locals: params (i32, i64) + general locals + loop counters.
        i32Locals_ = {f.param(0)};
        i64Locals_ = {f.param(1)};
        for (int i = 0; i < 2; i++)
            i32Locals_.push_back(f.local(VT::I32));
        for (int i = 0; i < 2; i++)
            i64Locals_.push_back(f.local(VT::I64));
        for (int i = 0; i < 2; i++)
            f64Locals_.push_back(f.local(VT::F64));
        for (int i = 0; i < 3; i++)
            counters_.push_back(f.local(VT::I32));
    }

    void
    run(int statements)
    {
        emitStatements(statements, 0);
        // Return a value derived from the locals so state matters.
        f_.localGet(i64Locals_[0]);
        f_.localGet(i32Locals_[1]).i64ExtendI32U().i64Add();
        f_.i32Const(0).i32Load(0).i64ExtendI32U().i64Add();
        f_.end();
    }

  private:
    uint64_t pick(uint64_t n) { return rng_.below(n); }

    uint32_t
    randomLocal(VT t)
    {
        const std::vector<uint32_t>& pool =
            t == VT::I32 ? i32Locals_
            : t == VT::I64 ? i64Locals_
                           : f64Locals_;
        return pool[pick(pool.size())];
    }

    void
    emitStatements(int budget, int loop_depth)
    {
        while (budget > 0) {
            int kind = static_cast<int>(pick(10));
            if (kind < 4) {
                // local = expr
                VT t = pickType();
                expr(t, maxDepth_);
                f_.localSet(randomLocal(t));
                budget--;
            } else if (kind < 7) {
                emitStore();
                budget--;
            } else if (kind == 7 && budget >= 3) {
                // if/else
                expr(VT::I32, 2);
                f_.if_();
                emitStatements(1, loop_depth);
                if (pick(2)) {
                    f_.else_();
                    emitStatements(1, loop_depth);
                }
                f_.end();
                budget -= 3;
            } else if (kind == 8 && loop_depth < 3 && budget >= 4) {
                emitLoop(loop_depth);
                budget -= 4;
            } else {
                // global twiddle
                expr(VT::I64, 2);
                f_.globalSet(0);
                budget--;
            }
        }
    }

    void
    emitLoop(int loop_depth)
    {
        uint32_t ctr = counters_[loop_depth];
        uint32_t iters = 1 + static_cast<uint32_t>(pick(6));
        f_.i32Const(0).localSet(ctr);
        f_.block().loop();
        f_.localGet(ctr).i32Const(iters).i32GeU().brIf(1);
        emitStatements(1, loop_depth + 1);
        f_.localGet(ctr).i32Const(1).i32Add().localSet(ctr);
        f_.br(0);
        f_.end().end();
    }

    void
    emitStore()
    {
        emitIndex();
        switch (pick(4)) {
          case 0:
            expr(VT::I32, 3);
            f_.i32Store(static_cast<uint32_t>(pick(8)));
            break;
          case 1:
            expr(VT::I64, 3);
            f_.i64Store(static_cast<uint32_t>(pick(8)));
            break;
          case 2:
            expr(VT::I32, 3);
            f_.i32Store8(static_cast<uint32_t>(pick(8)));
            break;
          default:
            expr(VT::F64, 3);
            f_.f64Store(static_cast<uint32_t>(pick(8)));
            break;
        }
    }

    VT
    pickType()
    {
        switch (pick(3)) {
          case 0: return VT::I32;
          case 1: return VT::I64;
          default: return VT::F64;
        }
    }

    /** Emits an in-bounds i32 index (mask keeps idx + offset < 128 KiB). */
    void
    emitIndex()
    {
        expr(VT::I32, 2);
        f_.i32Const(0x1fff0).i32And();
    }

    void
    expr(VT t, int depth)
    {
        if (depth <= 0) {
            leaf(t);
            return;
        }
        switch (t) {
          case VT::I32: i32Expr(depth); return;
          case VT::I64: i64Expr(depth); return;
          case VT::F64: f64Expr(depth); return;
        }
    }

    void
    leaf(VT t)
    {
        switch (t) {
          case VT::I32:
            if (pick(2))
                f_.i32Const(static_cast<uint32_t>(rng_.next()));
            else
                f_.localGet(randomLocal(VT::I32));
            return;
          case VT::I64:
            switch (pick(3)) {
              case 0: f_.i64Const(rng_.next()); return;
              case 1: f_.localGet(randomLocal(VT::I64)); return;
              default: f_.globalGet(0); return;
            }
          case VT::F64:
            if (pick(2)) {
                // Mix of magnitudes, always finite.
                double v = (static_cast<double>(rng_.next() >> 32) -
                            2147483648.0) /
                           (1 + static_cast<double>(pick(1000)));
                f_.f64Const(v);
            } else {
                f_.localGet(randomLocal(VT::F64));
            }
            return;
        }
    }

    void
    i32Expr(int depth)
    {
        switch (pick(12)) {
          case 0: {  // plain binop
            expr(VT::I32, depth - 1);
            expr(VT::I32, depth - 1);
            static const wasm::Op ops[] = {
                wasm::Op::I32Add, wasm::Op::I32Sub, wasm::Op::I32Mul,
                wasm::Op::I32And, wasm::Op::I32Or, wasm::Op::I32Xor,
                wasm::Op::I32Shl, wasm::Op::I32ShrS, wasm::Op::I32ShrU,
                wasm::Op::I32Rotl, wasm::Op::I32Rotr};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 1: {  // division with nonzero divisor
            expr(VT::I32, depth - 1);
            expr(VT::I32, depth - 1);
            f_.i32Const(1).i32Or();
            static const wasm::Op ops[] = {
                wasm::Op::I32DivS, wasm::Op::I32DivU, wasm::Op::I32RemS,
                wasm::Op::I32RemU};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 2: {  // comparison
            expr(VT::I32, depth - 1);
            expr(VT::I32, depth - 1);
            static const wasm::Op ops[] = {
                wasm::Op::I32Eq, wasm::Op::I32Ne, wasm::Op::I32LtS,
                wasm::Op::I32LtU, wasm::Op::I32GtS, wasm::Op::I32GtU,
                wasm::Op::I32LeS, wasm::Op::I32LeU, wasm::Op::I32GeS,
                wasm::Op::I32GeU};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 3: {  // i64 comparison
            expr(VT::I64, depth - 1);
            expr(VT::I64, depth - 1);
            static const wasm::Op ops[] = {
                wasm::Op::I64Eq, wasm::Op::I64Ne, wasm::Op::I64LtS,
                wasm::Op::I64LtU, wasm::Op::I64GeU};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 4: {  // f64 comparison
            expr(VT::F64, depth - 1);
            expr(VT::F64, depth - 1);
            static const wasm::Op ops[] = {
                wasm::Op::F64Eq, wasm::Op::F64Ne, wasm::Op::F64Lt,
                wasm::Op::F64Gt, wasm::Op::F64Le, wasm::Op::F64Ge};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 5: {  // load
            emitIndex();
            static const wasm::Op ops[] = {
                wasm::Op::I32Load, wasm::Op::I32Load8S,
                wasm::Op::I32Load8U, wasm::Op::I32Load16S,
                wasm::Op::I32Load16U};
            f_.op(ops[pick(std::size(ops))], 0, pick(8));
            return;
          }
          case 6: {  // select
            expr(VT::I32, depth - 1);
            expr(VT::I32, depth - 1);
            expr(VT::I32, depth - 1);
            f_.select();
            return;
          }
          case 7:
            expr(VT::I64, depth - 1);
            f_.i32WrapI64();
            return;
          case 8: {  // clamped trunc from f64
            expr(VT::F64, depth - 1);
            f_.f64Const(-1e9).f64Max().f64Const(1e9).f64Min()
                .i32TruncF64S();
            return;
          }
          case 9:
            expr(VT::I32, depth - 1);
            f_.i32Eqz();
            return;
          case 10:
            expr(VT::I32, depth - 1);
            f_.i32Popcnt();
            return;
          default:
            leaf(VT::I32);
            return;
        }
    }

    void
    i64Expr(int depth)
    {
        switch (pick(9)) {
          case 0: {
            expr(VT::I64, depth - 1);
            expr(VT::I64, depth - 1);
            static const wasm::Op ops[] = {
                wasm::Op::I64Add, wasm::Op::I64Sub, wasm::Op::I64Mul,
                wasm::Op::I64And, wasm::Op::I64Or, wasm::Op::I64Xor,
                wasm::Op::I64Shl, wasm::Op::I64ShrS, wasm::Op::I64ShrU,
                wasm::Op::I64Rotl, wasm::Op::I64Rotr};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 1: {
            expr(VT::I64, depth - 1);
            expr(VT::I64, depth - 1);
            f_.i64Const(1).i64Or();
            static const wasm::Op ops[] = {
                wasm::Op::I64DivS, wasm::Op::I64DivU, wasm::Op::I64RemS,
                wasm::Op::I64RemU};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 2: {
            emitIndex();
            static const wasm::Op ops[] = {wasm::Op::I64Load,
                                           wasm::Op::I64Load32S,
                                           wasm::Op::I64Load32U};
            f_.op(ops[pick(std::size(ops))], 0, pick(8));
            return;
          }
          case 3:
            expr(VT::I32, depth - 1);
            if (pick(2))
                f_.i64ExtendI32S();
            else
                f_.i64ExtendI32U();
            return;
          case 4: {
            expr(VT::I64, depth - 1);
            expr(VT::I64, depth - 1);
            expr(VT::I32, depth - 1);
            f_.select();
            return;
          }
          case 5:
            expr(VT::F64, depth - 1);
            f_.op(wasm::Op::I64ReinterpretF64);
            return;
          case 6:
            if (callableFuncs_ > 0) {
                expr(VT::I32, depth - 1);
                expr(VT::I64, depth - 1);
                f_.call(static_cast<uint32_t>(pick(callableFuncs_)));
                return;
            }
            leaf(VT::I64);
            return;
          case 7:
            expr(VT::I64, depth - 1);
            f_.i64Popcnt();
            return;
          default:
            leaf(VT::I64);
            return;
        }
    }

    void
    f64Expr(int depth)
    {
        switch (pick(8)) {
          case 0: {
            expr(VT::F64, depth - 1);
            expr(VT::F64, depth - 1);
            static const wasm::Op ops[] = {
                wasm::Op::F64Add, wasm::Op::F64Sub, wasm::Op::F64Mul,
                wasm::Op::F64Div, wasm::Op::F64Min, wasm::Op::F64Max};
            f_.op(ops[pick(std::size(ops))]);
            return;
          }
          case 1:
            emitIndex();
            f_.f64Load(static_cast<uint32_t>(pick(8)));
            return;
          case 2:
            expr(VT::I32, depth - 1);
            if (pick(2))
                f_.f64ConvertI32S();
            else
                f_.f64ConvertI32U();
            return;
          case 3:
            expr(VT::I64, depth - 1);
            f_.f64ConvertI64S();
            return;
          case 4:
            expr(VT::F64, depth - 1);
            f_.f64Abs().f64Sqrt();
            return;
          case 5:
            expr(VT::F64, depth - 1);
            if (pick(2))
                f_.f64Neg();
            else
                f_.f64Abs();
            return;
          case 6: {
            expr(VT::F64, depth - 1);
            expr(VT::F64, depth - 1);
            expr(VT::I32, depth - 1);
            f_.select();
            return;
          }
          default:
            leaf(VT::F64);
            return;
        }
    }

    Rng& rng_;
    FunctionBuilder& f_;
    int maxDepth_;
    uint32_t callableFuncs_;
    std::vector<uint32_t> i32Locals_, i64Locals_, f64Locals_, counters_;
};

}  // namespace

wasm::Module
generateProgram(uint64_t seed, const GenOptions& options)
{
    Rng rng(seed);
    ModuleBuilder mb;
    mb.memory(options.memPages, options.memPages);
    mb.global(VT::I64, true, 0x1234567890abcdefull);

    // Deterministic initial memory contents.
    std::vector<uint8_t> data(4096);
    Rng dataRng(seed ^ 0xda7a);
    for (auto& b : data)
        b = static_cast<uint8_t>(dataRng.next());
    mb.data(0, data);

    std::vector<FunctionBuilder> funcs;
    for (int i = 0; i < options.numFunctions; i++) {
        auto f = mb.func("f" + std::to_string(i), {VT::I32, VT::I64},
                         {VT::I64});
        FuncGen gen(rng, f, options.maxExprDepth,
                    static_cast<uint32_t>(i));  // call lower-indexed only
        gen.run(options.maxStatements);
        funcs.push_back(f);
    }
    mb.exportFunc("main", funcs.back().index());
    return std::move(mb).build();
}

}  // namespace sfi::testing
