/**
 * @file
 * Tier-up concurrency storm: N worker threads hammer the same shared
 * TieredModule through separate pool-style instances while functions
 * tier up mid-flight. Proves (under -DSFIKIT_SANITIZE=thread) that the
 * entry-slot patch protocol is race-free — release store, aligned
 * plain loads, never a torn pointer — and that every result stays
 * bit-identical to the interpreter oracle regardless of which tier a
 * call happened to land on.
 */
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "interp/interp.h"
#include "jit/compiler.h"
#include "jit/tier.h"
#include "runtime/instance.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

using jit::CompilerConfig;
using jit::TierOptions;
using jit::TieredModule;

TEST(TierStress, ConcurrentCallersAcrossTierUp)
{
    const wkld::Workload& w = wkld::findWorkload("sieve");

    auto oracle = interp::Instance::instantiate(w.make());
    ASSERT_TRUE(oracle.isOk()) << oracle.message();
    uint64_t expect = 0;
    {
        auto out = oracle->callExport("run", {w.testScale});
        ASSERT_TRUE(out.ok());
        expect = out.value;
    }

    // Low threshold so the tier flip happens while workers are already
    // in flight; salted cache key so this test always exercises a cold
    // fill race, not a warm lookup.
    TierOptions opts;
    opts.hotThreshold = 3;
    opts.useCodeCache = false;
    auto shared = rt::SharedModule::compileTiered(
        w.make(), CompilerConfig::wamrSegue(), opts);
    ASSERT_TRUE(shared.isOk()) << shared.message();

    const unsigned kWorkers = 8;
    const int kCallsPerWorker = 16;
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> traps{0};

    std::vector<std::thread> workers;
    workers.reserve(kWorkers);
    for (unsigned t = 0; t < kWorkers; t++) {
        workers.emplace_back([&] {
            // One pool slot per worker: instances are per-thread, the
            // TieredModule (slots, counters, cache) is shared state.
            auto inst = rt::Instance::create(*shared);
            ASSERT_TRUE(inst.isOk()) << inst.message();
            for (int i = 0; i < kCallsPerWorker; i++) {
                auto out = (*inst)->call("run", {w.testScale});
                if (!out.ok())
                    traps.fetch_add(1, std::memory_order_relaxed);
                else if (out.value != expect)
                    mismatches.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    for (auto& th : workers)
        th.join();

    EXPECT_EQ(traps.load(), 0u);
    EXPECT_EQ(mismatches.load(), 0u);

    // Every called function ended up optimized (threshold << calls),
    // so the storm really did cross the tier boundary mid-flight.
    const TieredModule* tm = shared.value()->tiered();
    EXPECT_GE(tm->stats().tierUps, 1u);
    EXPECT_EQ(tm->stats().interpFallbacks, 0u);
}

TEST(TierStress, ConcurrentFirstCallResolvesOnce)
{
    // All workers arrive at the resolver simultaneously: exactly one
    // baseline compile per called function must happen (losers reuse
    // the winner's slot), and nobody observes a bad entry.
    const wkld::Workload& w = wkld::findWorkload("memmove");
    TierOptions opts;
    opts.hotThreshold = 1 << 30;  // stay on baseline
    opts.useCodeCache = false;
    auto shared = rt::SharedModule::compileTiered(
        w.make(), CompilerConfig::wamrSegue(), opts);
    ASSERT_TRUE(shared.isOk()) << shared.message();

    auto oracle = interp::Instance::instantiate(w.make());
    ASSERT_TRUE(oracle.isOk());
    uint64_t expect = oracle->callExport("run", {w.testScale}).value;

    const unsigned kWorkers = 8;
    std::atomic<uint64_t> bad{0};
    std::atomic<int> gate{0};
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < kWorkers; t++) {
        workers.emplace_back([&] {
            auto inst = rt::Instance::create(*shared);
            ASSERT_TRUE(inst.isOk());
            gate.fetch_add(1);
            while (gate.load() < static_cast<int>(kWorkers)) {
            }  // line up on the cold resolver
            auto out = (*inst)->call("run", {w.testScale});
            if (!out.ok() || out.value != expect)
                bad.fetch_add(1, std::memory_order_relaxed);
        });
    }
    for (auto& th : workers)
        th.join();

    EXPECT_EQ(bad.load(), 0u);
    const TieredModule* tm = shared.value()->tiered();
    // Resolution serialized: one compile per resolved function, no
    // duplicate fills from the racing losers.
    uint64_t resolved = 0;
    for (uint32_t i = 0; i < tm->numDefined(); i++)
        if (tm->state(i) == TieredModule::FuncState::Baseline)
            resolved++;
    EXPECT_EQ(tm->stats().baselineCompiles, resolved);
    EXPECT_EQ(tm->stats().tierUps, 0u);
}

}  // namespace
}  // namespace sfi
