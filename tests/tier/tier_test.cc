/**
 * @file
 * Tiered-execution tests (ISSUE 9): lazy baseline resolution, hot-count
 * tier-up, the process-wide verified code cache (warm instantiation
 * compiles zero functions), the interpreter fail-closed path, the
 * differential matrix (interpreter vs baseline vs optimized vs
 * monolithic, bit-identical across registry workloads x strategies),
 * the tier.thunk verifier rule with hand-assembled negative fixtures,
 * and the cache audit that re-proves every published blob.
 */
#include <gtest/gtest.h>

#include "interp/interp.h"
#include "jit/codecache.h"
#include "jit/compiler.h"
#include "jit/context.h"
#include "jit/tier.h"
#include "runtime/instance.h"
#include "verify/checker.h"
#include "wasm/builder.h"
#include "wkld/workloads.h"
#include "x64/assembler.h"

namespace sfi {
namespace {

using jit::CompilerConfig;
using jit::MemStrategy;
using jit::TierOptions;
using jit::TieredModule;
using verify::Rule;
using verify::TierStubKind;
using wasm::ModuleBuilder;
using x64::AluOp;
using x64::Assembler;
using x64::Mem;
using x64::Reg;
using x64::Width;
using x64::Xmm;
using VT = wasm::ValType;
using FuncState = TieredModule::FuncState;

/** Two defined functions: "run" calls a helper; "idle" is never
 *  called — it must stay Unresolved forever (laziness proof). */
wasm::Module
twoFuncModule()
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto helper = mb.func("helper", {VT::I32}, {VT::I32});
    helper.localGet(0).i32Const(7).i32Add().end();
    auto idle = mb.func("idle", {VT::I32}, {VT::I32});
    idle.localGet(0).end();
    auto run = mb.func("run", {VT::I32}, {VT::I32});
    run.localGet(0).call(helper.index()).end();
    mb.exportFunc("run", run.index());
    mb.exportFunc("idle", idle.index());
    return std::move(mb).build();
}

std::shared_ptr<const rt::SharedModule>
compileTiered(wasm::Module m, const CompilerConfig& cfg,
              const TierOptions& opts)
{
    auto shared =
        rt::SharedModule::compileTiered(std::move(m), cfg, opts);
    EXPECT_TRUE(shared.isOk()) << shared.message();
    return *shared;
}

// ---------------------------------------------------------------------
// Lazy resolution and tier state machine.
// ---------------------------------------------------------------------

TEST(TieredExec, LazyBaselineResolution)
{
    TierOptions opts;
    opts.useCodeCache = false;  // isolate this module's counters
    auto shared = compileTiered(twoFuncModule(),
                                CompilerConfig::wamrSegue(), opts);
    const TieredModule* tm = shared->tiered();
    ASSERT_NE(tm, nullptr);
    for (uint32_t i = 0; i < tm->numDefined(); i++)
        EXPECT_EQ(tm->state(i), FuncState::Unresolved);

    auto inst = rt::Instance::create(shared);
    ASSERT_TRUE(inst.isOk()) << inst.message();
    // Instantiation alone compiles nothing.
    EXPECT_EQ(tm->stats().baselineCompiles, 0u);

    auto out = (*inst)->call("run", {35});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value, 42u);

    // run + helper resolved to baseline; idle untouched.
    EXPECT_EQ(tm->state(0), FuncState::Baseline);  // helper
    EXPECT_EQ(tm->state(1), FuncState::Unresolved);  // idle
    EXPECT_EQ(tm->state(2), FuncState::Baseline);  // run
    EXPECT_EQ(tm->stats().baselineCompiles, 2u);
    EXPECT_EQ(tm->stats().tierUps, 0u);
}

TEST(TieredExec, HotCountTierUpPatchesSlot)
{
    TierOptions opts;
    opts.useCodeCache = false;
    opts.hotThreshold = 4;
    auto shared = compileTiered(twoFuncModule(),
                                CompilerConfig::wamrSegue(), opts);
    const TieredModule* tm = shared->tiered();
    auto inst = rt::Instance::create(shared);
    ASSERT_TRUE(inst.isOk()) << inst.message();

    const void* baselineSlot = nullptr;
    for (uint64_t i = 0; i < 10; i++) {
        auto out = (*inst)->call("run", {i});
        ASSERT_TRUE(out.ok());
        EXPECT_EQ(out.value, i + 7);  // identical across the tier flip
        if (i == 0)
            baselineSlot = tm->entries()[2];
    }
    EXPECT_EQ(tm->state(2), FuncState::Optimized);
    EXPECT_EQ(tm->state(0), FuncState::Optimized);
    EXPECT_GE(tm->stats().tierUps, 2u);
    // The slot really was patched to a different entry.
    EXPECT_NE(tm->entries()[2], baselineSlot);
    // The dispatch thunk address stayed stable across the patch.
    EXPECT_EQ(tm->dispatchAddr(2), tm->dispatchAddr(2));
}

TEST(TieredExec, ForceInterpRunsFailClosedPath)
{
    TierOptions opts;
    opts.useCodeCache = false;
    opts.forceInterp = true;
    auto shared = compileTiered(twoFuncModule(),
                                CompilerConfig::wamrSegue(), opts);
    const TieredModule* tm = shared->tiered();
    auto inst = rt::Instance::create(shared);
    ASSERT_TRUE(inst.isOk()) << inst.message();
    auto out = (*inst)->call("run", {100});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value, 107u);
    EXPECT_EQ(tm->state(2), FuncState::Interp);
    // interpFallbacks counts fail-closed *degradations*; pinning by
    // policy is not a failure, so it stays 0.
    EXPECT_EQ(tm->stats().interpFallbacks, 0u);
    EXPECT_EQ(tm->stats().baselineCompiles, 0u);
}

// ---------------------------------------------------------------------
// Process-wide verified code cache.
// ---------------------------------------------------------------------

TEST(CodeCacheSharing, WarmInstantiationCompilesZeroFunctions)
{
    const wkld::Workload& w = wkld::findWorkload("sieve");
    CompilerConfig cfg = CompilerConfig::wamrSegue();
    TierOptions opts;  // useCodeCache = true

    auto cold = compileTiered(w.make(), cfg, opts);
    auto instA = rt::Instance::create(cold);
    ASSERT_TRUE(instA.isOk()) << instA.message();
    auto refOut = (*instA)->call("run", {w.testScale});
    ASSERT_TRUE(refOut.ok());

    // Same image, same config: every resolution must be a cache hit.
    auto warm = compileTiered(w.make(), cfg, opts);
    const TieredModule* tm = warm->tiered();
    EXPECT_EQ(tm->moduleHash(), cold->tiered()->moduleHash());
    auto instB = rt::Instance::create(warm);
    ASSERT_TRUE(instB.isOk()) << instB.message();
    auto out = (*instB)->call("run", {w.testScale});
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out.value, refOut.value);
    EXPECT_EQ(tm->stats().baselineCompiles, 0u);
    EXPECT_GE(tm->stats().cacheHits, 1u);
    EXPECT_EQ(tm->stats().cacheFillVerifyNs, 0u);
}

TEST(CodeCacheSharing, SaltedKeysDoNotShare)
{
    // useCodeCache=false still fills/verifies but never cross-hits:
    // two salted modules of identical content both compile.
    wasm::Module m1 = twoFuncModule();
    wasm::Module m2 = twoFuncModule();
    CompilerConfig cfg = CompilerConfig::wamrSegue();
    TierOptions opts;
    opts.useCodeCache = false;
    auto a = compileTiered(std::move(m1), cfg, opts);
    auto b = compileTiered(std::move(m2), cfg, opts);
    EXPECT_NE(a->tiered()->moduleHash(), b->tiered()->moduleHash());
    auto ia = rt::Instance::create(a);
    auto ib = rt::Instance::create(b);
    ASSERT_TRUE(ia.isOk() && ib.isOk());
    ASSERT_TRUE((*ia)->call("run", {1}).ok());
    ASSERT_TRUE((*ib)->call("run", {1}).ok());
    EXPECT_GE(a->tiered()->stats().baselineCompiles, 2u);
    EXPECT_GE(b->tiered()->stats().baselineCompiles, 2u);
    EXPECT_EQ(b->tiered()->stats().cacheHits, 0u);
}

TEST(CodeCacheSharing, FillsRecordVerifyTime)
{
    // Self-contained (each gtest case may run in its own process):
    // publish at least one blob, then check the process-wide counters.
    auto shared = compileTiered(twoFuncModule(),
                                CompilerConfig::wamrSegue(), TierOptions{});
    auto inst = rt::Instance::create(shared);
    ASSERT_TRUE(inst.isOk()) << inst.message();
    ASSERT_TRUE((*inst)->call("run", {1}).ok());
    jit::CodeCache::Stats s = jit::CodeCache::instance().stats();
    EXPECT_GE(s.fills, 1u);
    EXPECT_GT(s.verifyNs, 0u);
    EXPECT_GT(s.publishedBytes, 0u);
    EXPECT_EQ(s.verifyFailures, 0u);
}

TEST(CodeCacheAudit, ReprovesEveryPublishedBlob)
{
    // Everything published so far must re-verify from the executable
    // arena itself (sfi-verify --cache-audit path). Publish at least
    // one blob first so the audit is never vacuous.
    auto shared = compileTiered(twoFuncModule(),
                                CompilerConfig::wamrSegue(), TierOptions{});
    auto inst = rt::Instance::create(shared);
    ASSERT_TRUE(inst.isOk()) << inst.message();
    ASSERT_TRUE((*inst)->call("run", {1}).ok());
    auto audited = jit::CodeCache::instance().audit();
    ASSERT_TRUE(audited.isOk()) << audited.message();
    EXPECT_GE(*audited, 1u);
}

// ---------------------------------------------------------------------
// Differential matrix: interpreter oracle vs baseline vs optimized vs
// monolithic, across registry workloads x MemStrategy variants.
// ---------------------------------------------------------------------

struct StratCase
{
    const char* name;
    CompilerConfig cfg;
};

std::vector<StratCase>
allStrategies()
{
    return {
        {"unsandboxed", {.mem = MemStrategy::Unsandboxed}},
        {"basereg", {.mem = MemStrategy::BaseReg}},
        {"segue", {.mem = MemStrategy::Segue}},
        {"segue-loads", {.mem = MemStrategy::SegueLoadsOnly}},
        {"bounds", {.mem = MemStrategy::BoundsCheck}},
        {"segue-bounds", {.mem = MemStrategy::SegueBounds}},
    };
}

class TierDifferential
    : public ::testing::TestWithParam<const wkld::Workload*>
{
};

TEST_P(TierDifferential, InterpBaselineOptimizedMonolithicAgree)
{
    const wkld::Workload& w = *GetParam();

    auto oracle = interp::Instance::instantiate(w.make());
    ASSERT_TRUE(oracle.isOk()) << oracle.message();
    auto expect = oracle->callExport("run", {w.testScale});
    ASSERT_TRUE(expect.ok());

    for (const StratCase& sc : allStrategies()) {
        SCOPED_TRACE(sc.name);

        auto mono = rt::SharedModule::compile(w.make(), sc.cfg);
        ASSERT_TRUE(mono.isOk()) << mono.message();
        auto mi = rt::Instance::create(*mono);
        ASSERT_TRUE(mi.isOk()) << mi.message();
        auto monoOut = (*mi)->call("run", {w.testScale});
        ASSERT_TRUE(monoOut.ok());
        EXPECT_EQ(monoOut.value, expect.value);

        // threshold 2: rep 0 runs baseline bodies, rep 1 tiers the hot
        // functions up mid-run, rep 2 runs fully optimized. A fresh
        // instance per rep (some workloads keep state in memory across
        // calls) — the tier counters live on the shared TieredModule,
        // so tier-up still crosses instances, the pool pattern.
        TierOptions opts;
        opts.hotThreshold = 2;
        auto tiered = compileTiered(w.make(), sc.cfg, opts);
        for (int rep = 0; rep < 3; rep++) {
            auto ti = rt::Instance::create(tiered);
            ASSERT_TRUE(ti.isOk()) << ti.message();
            auto out = (*ti)->call("run", {w.testScale});
            ASSERT_TRUE(out.ok()) << "rep " << rep;
            EXPECT_EQ(out.value, expect.value) << "rep " << rep;
        }

        // Interpreter thunk path under the tiered entry ABI.
        TierOptions fi;
        fi.useCodeCache = false;
        fi.forceInterp = true;
        auto finst = rt::Instance::create(
            compileTiered(w.make(), sc.cfg, fi));
        ASSERT_TRUE(finst.isOk()) << finst.message();
        auto fout = (*finst)->call("run", {w.testScale});
        ASSERT_TRUE(fout.ok());
        EXPECT_EQ(fout.value, expect.value);
    }
}

std::vector<const wkld::Workload*>
registryWorkloads()
{
    std::vector<const wkld::Workload*> all;
    for (const auto& w : wkld::sightglass()) all.push_back(&w);
    for (const auto& w : wkld::spec17()) all.push_back(&w);
    for (const auto& w : wkld::polydhry()) all.push_back(&w);
    return all;
}

INSTANTIATE_TEST_SUITE_P(
    Registry, TierDifferential, ::testing::ValuesIn(registryWorkloads()),
    [](const ::testing::TestParamInfo<const wkld::Workload*>& info) {
        std::string n = info.param->name;
        for (char& c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ---------------------------------------------------------------------
// tier.thunk verifier rule: positive stub set per strategy, negative
// hand-assembled fixtures that must fail closed.
// ---------------------------------------------------------------------

TEST(TierThunkVerifier, EmittedStubSetProvesForEveryStrategy)
{
    wasm::Module m = twoFuncModule();
    for (const StratCase& sc : allStrategies()) {
        SCOPED_TRACE(sc.name);
        CompilerConfig cfg = sc.cfg;
        cfg.tieredCalls = true;
        cfg.tierCounters = true;
        auto ts = jit::compileTierStubs(m, cfg);
        ASSERT_TRUE(ts.isOk()) << ts.message();
        const uint8_t* base = ts->bytes.data();
        for (size_t i = 0; i < ts->dispatchOffsets.size(); i++) {
            auto r = verify::checkTierStub(
                base + ts->dispatchOffsets[i], ts->dispatchSizes[i],
                TierStubKind::Dispatch, cfg);
            EXPECT_TRUE(r.ok()) << "dispatch " << i << "\n"
                                << r.summary();
            auto rr = verify::checkTierStub(
                base + ts->resolverOffsets[i], ts->resolverSizes[i],
                TierStubKind::Resolver, cfg);
            EXPECT_TRUE(rr.ok()) << "resolver " << i << "\n"
                                 << rr.summary();
            auto ri = verify::checkTierStub(
                base + ts->interpOffsets[i], ts->interpSizes[i],
                TierStubKind::Interp, cfg);
            EXPECT_TRUE(ri.ok()) << "interp " << i << "\n"
                                 << ri.summary();
        }
    }
}

bool
failsTierThunk(const Assembler& a, TierStubKind kind)
{
    auto r = verify::checkTierStub(a.code().data(), a.code().size(),
                                   kind, CompilerConfig::wamrSegue());
    if (r.ok())
        return false;
    EXPECT_FALSE(r.violations.empty());
    for (const auto& v : r.violations)
        EXPECT_EQ(v.rule, Rule::TierThunk);
    return true;
}

constexpr int32_t kOffFuncEntries =
    offsetof(jit::JitContext, funcEntries);
constexpr int32_t kOffTierFn = offsetof(jit::JitContext, tierFn);
constexpr int32_t kOffMemBase = offsetof(jit::JitContext, memBase);
constexpr int32_t kOffRuntimeData =
    offsetof(jit::JitContext, runtimeData);

TEST(TierThunkVerifier, DispatchThroughWrongCtxFieldFails)
{
    // Jump target loaded from ctx->memBase instead of a funcEntries
    // slot: not a runtime-published tier entry.
    Assembler a;
    a.load(Width::W64, false, Reg::r11,
           Mem::baseDisp(Reg::r14, kOffMemBase));
    a.jmpReg(Reg::r11);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Dispatch));
}

TEST(TierThunkVerifier, DispatchSkippingSlotLoadFails)
{
    // Jumps to the funcEntries *table pointer* itself, not a slot
    // value loaded from it.
    Assembler a;
    a.load(Width::W64, false, Reg::r11,
           Mem::baseDisp(Reg::r14, kOffFuncEntries));
    a.jmpReg(Reg::r11);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Dispatch));
}

TEST(TierThunkVerifier, ResolverCallingWrongCtxFieldFails)
{
    // Call target from ctx->memBase: only ctx->tierFn may be called.
    Assembler a;
    a.push(Reg::rdi);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);
    a.load(Width::W64, false, Reg::rdi,
           Mem::baseDisp(Reg::r14, kOffRuntimeData));
    a.movImm32(Reg::rsi, 0);
    a.load(Width::W64, false, Reg::rax,
           Mem::baseDisp(Reg::r14, kOffMemBase));
    a.callReg(Reg::rax);
    a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 8);
    a.pop(Reg::rdi);
    a.jmpReg(Reg::rax);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Resolver));
}

TEST(TierThunkVerifier, ResolverMisalignedCallSiteFails)
{
    // Frame depth 8 (return address) + 0 pushes: call site not 16-byte
    // aligned, so the C-ABI tierFn call would be UB. Must fail closed.
    Assembler a;
    a.load(Width::W64, false, Reg::rdi,
           Mem::baseDisp(Reg::r14, kOffRuntimeData));
    a.movImm32(Reg::rsi, 0);
    a.load(Width::W64, false, Reg::rax,
           Mem::baseDisp(Reg::r14, kOffTierFn));
    a.callReg(Reg::rax);
    a.jmpReg(Reg::rax);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Resolver));
}

TEST(TierThunkVerifier, ResolverClobberingSavedArgsFails)
{
    // Pops in the wrong order: rsi's value lands in rdi. The restore
    // must be the exact reverse of the save.
    Assembler a;
    a.push(Reg::rdi);
    a.push(Reg::rsi);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);
    a.load(Width::W64, false, Reg::rdi,
           Mem::baseDisp(Reg::r14, kOffRuntimeData));
    a.movImm32(Reg::rsi, 0);
    a.load(Width::W64, false, Reg::rax,
           Mem::baseDisp(Reg::r14, kOffTierFn));
    a.callReg(Reg::rax);
    a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 8);
    a.pop(Reg::rdi);  // wrong: should pop rsi first
    a.pop(Reg::rsi);
    a.jmpReg(Reg::rax);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Resolver));
}

TEST(TierThunkVerifier, InterpStoreOutsideFrameFails)
{
    // Arg store beyond the allocated frame: would scribble on the
    // caller's stack.
    Assembler a;
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 88);
    a.store(Width::W64, Mem::baseDisp(Reg::rsp, 200), Reg::rdi);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Interp));
}

TEST(TierThunkVerifier, InterpUnbalancedFrameFails)
{
    // Returns with the frame still open.
    Assembler a;
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 88);
    a.load(Width::W64, false, Reg::rdi,
           Mem::baseDisp(Reg::r14, kOffRuntimeData));
    a.movImm32(Reg::rsi, 0);
    a.lea(Width::W64, Reg::rdx, Mem::baseDisp(Reg::rsp, 0));
    a.load(Width::W64, false, Reg::rax,
           Mem::baseDisp(Reg::r14, offsetof(jit::JitContext, interpFn)));
    a.callReg(Reg::rax);
    a.ret();
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Interp));
}

TEST(TierThunkVerifier, PinnedRegisterWriteFails)
{
    // No thunk may write %r14 (context) — classic pivot primitive.
    Assembler a;
    a.load(Width::W64, false, Reg::r14,
           Mem::baseDisp(Reg::r14, kOffFuncEntries));
    a.load(Width::W64, false, Reg::r11, Mem::baseDisp(Reg::r14, 0));
    a.jmpReg(Reg::r11);
    EXPECT_TRUE(failsTierThunk(a, TierStubKind::Dispatch));
}

TEST(TierThunkVerifier, KindShapeMismatchFails)
{
    // A (valid) dispatch body checked as a resolver must fail: the
    // kinds have disjoint contracts.
    wasm::Module m = twoFuncModule();
    CompilerConfig cfg = CompilerConfig::wamrSegue();
    cfg.tieredCalls = true;
    cfg.tierCounters = true;
    auto ts = jit::compileTierStubs(m, cfg);
    ASSERT_TRUE(ts.isOk());
    auto r = verify::checkTierStub(
        ts->bytes.data() + ts->dispatchOffsets[0], ts->dispatchSizes[0],
        TierStubKind::Resolver, cfg);
    EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace sfi
