#include "x64/assembler.h"

#include <gtest/gtest.h>

#include <vector>

namespace sfi::x64 {
namespace {

/** Collects emitted bytes for exact comparison (objdump-verified). */
std::vector<uint8_t>
emit(void (*fn)(Assembler&))
{
    Assembler a;
    fn(a);
    return a.code();
}

using Bytes = std::vector<uint8_t>;

// --- The Figure 1 instruction patterns, byte-exact ---

TEST(Assembler, Fig1bTruncate)
{
    // mov ebx, ebx — the explicit 32-bit truncation classic SFI needs.
    EXPECT_EQ(emit([](Assembler& a) {
                  a.mov(Width::W32, Reg::rbx, Reg::rbx);
              }),
              (Bytes{0x89, 0xdb}));
}

TEST(Assembler, Fig1bBasePlusOffsetLoad)
{
    // mov r10, [rax + rbx] — heap_base in %rax + truncated offset.
    EXPECT_EQ(emit([](Assembler& a) {
                  a.load(Width::W64, false, Reg::r10,
                         Mem::baseIndex(Reg::rax, Reg::rbx));
              }),
              (Bytes{0x4c, 0x8b, 0x14, 0x18}));
}

TEST(Assembler, Fig1bTruncatingLea)
{
    // lea edi, [ecx + edx*4 + 8] (32-bit dest truncates).
    EXPECT_EQ(emit([](Assembler& a) {
                  a.lea(Width::W32, Reg::rdi,
                        Mem::baseIndex(Reg::rcx, Reg::rdx, 4, 8));
              }),
              (Bytes{0x8d, 0x7c, 0x91, 0x08}));
}

TEST(Assembler, Fig1cSegueLoad)
{
    // mov r10, gs:[ebx] — Segue's one-instruction sandboxed load:
    // 65 = %gs override, 67 = 32-bit effective address.
    EXPECT_EQ(emit([](Assembler& a) {
                  a.load(Width::W64, false, Reg::r10, Mem::gs32(Reg::rbx));
              }),
              (Bytes{0x65, 0x67, 0x4c, 0x8b, 0x13}));
}

TEST(Assembler, Fig1cSegueLoadWithIndex)
{
    // mov r11, gs:[ecx + edx*4 + 8] — mixed-mode arithmetic in one insn.
    EXPECT_EQ(emit([](Assembler& a) {
                  a.load(Width::W64, false, Reg::r11,
                         Mem::gs32Index(Reg::rcx, Reg::rdx, 4, 8));
              }),
              (Bytes{0x65, 0x67, 0x4c, 0x8b, 0x5c, 0x91, 0x08}));
}

TEST(Assembler, SegueCodeSizeAdvantage)
{
    // Pattern 1 of Figure 1: two instructions (6 bytes) without Segue,
    // one instruction (5 bytes) with. The per-pattern byte saving drives
    // the Table 2 binary-size reductions.
    Assembler base;
    base.mov(Width::W32, Reg::rbx, Reg::rbx);
    base.load(Width::W64, false, Reg::r10,
              Mem::baseIndex(Reg::rax, Reg::rbx));
    Assembler segue;
    segue.load(Width::W64, false, Reg::r10, Mem::gs32(Reg::rbx));
    EXPECT_LT(segue.size(), base.size());
}

// --- general encodings ---

TEST(Assembler, MovImm)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.movImm64(Reg::rax, 0x1122334455667788ull);
              }),
              (Bytes{0x48, 0xb8, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22,
                     0x11}));
    EXPECT_EQ(emit([](Assembler& a) { a.movImm32(Reg::r9, 0xdeadbeef); }),
              (Bytes{0x41, 0xb9, 0xef, 0xbe, 0xad, 0xde}));
}

TEST(Assembler, ByteStoreNeedsRexForDil)
{
    // mov [rsi+1], dil requires a bare REX (0x40).
    EXPECT_EQ(emit([](Assembler& a) {
                  a.store(Width::W8, Mem::baseDisp(Reg::rsi, 1), Reg::rdi);
              }),
              (Bytes{0x40, 0x88, 0x7e, 0x01}));
}

TEST(Assembler, R12BaseNeedsSib)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.store(Width::W16, Mem::baseDisp(Reg::r12, 0), Reg::rax);
              }),
              (Bytes{0x66, 0x41, 0x89, 0x04, 0x24}));
}

TEST(Assembler, RbpBaseNeedsDisp8)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.store(Width::W32, Mem::baseDisp(Reg::rbp, 0), Reg::r15);
              }),
              (Bytes{0x44, 0x89, 0x7d, 0x00}));
}

TEST(Assembler, Disp32)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.store(Width::W64, Mem::baseDisp(Reg::r13, 256),
                          Reg::rcx);
              }),
              (Bytes{0x49, 0x89, 0x8d, 0x00, 0x01, 0x00, 0x00}));
}

TEST(Assembler, SignExtendingLoads)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.load(Width::W8, true, Reg::rax,
                         Mem::baseDisp(Reg::rdx, -4));
              }),
              (Bytes{0x48, 0x0f, 0xbe, 0x42, 0xfc}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.load(Width::W32, true, Reg::rcx,
                         Mem::baseDisp(Reg::rsp, 8));
              }),
              (Bytes{0x48, 0x63, 0x4c, 0x24, 0x08}));
}

TEST(Assembler, Alu)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.alu(AluOp::Add, Width::W64, Reg::rax, Reg::rbx);
              }),
              (Bytes{0x48, 0x03, 0xc3}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.alu(AluOp::Cmp, Width::W32, Reg::r10, Reg::r11);
              }),
              (Bytes{0x45, 0x3b, 0xd3}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 0x28);
              }),
              (Bytes{0x48, 0x83, 0xec, 0x28}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.aluImm(AluOp::And, Width::W32, Reg::rax, 0x7fffffff);
              }),
              (Bytes{0x81, 0xe0, 0xff, 0xff, 0xff, 0x7f}));
}

TEST(Assembler, AluMemUsesSegueOperandSlot)
{
    // add rax, gs:[ebx+16] — the freed operand slot in action.
    EXPECT_EQ(emit([](Assembler& a) {
                  a.aluMem(AluOp::Add, Width::W64, Reg::rax,
                           Mem::gs32(Reg::rbx, 16));
              }),
              (Bytes{0x65, 0x67, 0x48, 0x03, 0x43, 0x10}));
}

TEST(Assembler, MulDivShift)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.imul(Width::W32, Reg::rax, Reg::r9);
              }),
              (Bytes{0x41, 0x0f, 0xaf, 0xc1}));
    EXPECT_EQ(emit([](Assembler& a) { a.div(Width::W32, Reg::rcx); }),
              (Bytes{0xf7, 0xf1}));
    EXPECT_EQ(emit([](Assembler& a) { a.idiv(Width::W64, Reg::r8); }),
              (Bytes{0x49, 0xf7, 0xf8}));
    EXPECT_EQ(emit([](Assembler& a) { a.cqo(); }), (Bytes{0x48, 0x99}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.shiftCl(ShiftOp::Shl, Width::W32, Reg::rax);
              }),
              (Bytes{0xd3, 0xe0}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.shiftImm(ShiftOp::Sar, Width::W64, Reg::rdx, 3);
              }),
              (Bytes{0x48, 0xc1, 0xfa, 0x03}));
}

TEST(Assembler, SetccAndCmov)
{
    EXPECT_EQ(emit([](Assembler& a) { a.setcc(Cond::E, Reg::rax); }),
              (Bytes{0x0f, 0x94, 0xc0}));
    // seta sil needs the bare REX.
    EXPECT_EQ(emit([](Assembler& a) { a.setcc(Cond::A, Reg::rsi); }),
              (Bytes{0x40, 0x0f, 0x97, 0xc6}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.cmovcc(Cond::NE, Width::W64, Reg::rax, Reg::rbx);
              }),
              (Bytes{0x48, 0x0f, 0x45, 0xc3}));
}

TEST(Assembler, ControlFlow)
{
    EXPECT_EQ(emit([](Assembler& a) { a.jmpReg(Reg::r11); }),
              (Bytes{0x41, 0xff, 0xe3}));
    EXPECT_EQ(emit([](Assembler& a) { a.callReg(Reg::rax); }),
              (Bytes{0xff, 0xd0}));
    EXPECT_EQ(emit([](Assembler& a) { a.ret(); }), (Bytes{0xc3}));
    EXPECT_EQ(emit([](Assembler& a) { a.ud2(); }), (Bytes{0x0f, 0x0b}));
}

TEST(Assembler, Sse2)
{
    EXPECT_EQ(emit([](Assembler& a) {
                  a.movsdLoad(Xmm::xmm0, Mem::baseDisp(Reg::rax, 8));
              }),
              (Bytes{0xf2, 0x0f, 0x10, 0x40, 0x08}));
    // Segue'd FP load.
    EXPECT_EQ(emit([](Assembler& a) {
                  a.movsdLoad(Xmm::xmm9,
                              Mem::gs32Index(Reg::rbx, Reg::rcx, 8, 0));
              }),
              (Bytes{0x65, 0x67, 0xf2, 0x44, 0x0f, 0x10, 0x0c, 0xcb}));
    EXPECT_EQ(emit([](Assembler& a) { a.addsd(Xmm::xmm0, Xmm::xmm1); }),
              (Bytes{0xf2, 0x0f, 0x58, 0xc1}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.cvtsi2sd(Xmm::xmm1, Width::W64, Reg::r8);
              }),
              (Bytes{0xf2, 0x49, 0x0f, 0x2a, 0xc8}));
    EXPECT_EQ(emit([](Assembler& a) {
                  a.movqToXmm(Xmm::xmm3, Reg::rax);
              }),
              (Bytes{0x66, 0x48, 0x0f, 0x6e, 0xd8}));
}

TEST(Assembler, LabelsForwardAndBackward)
{
    Assembler a;
    auto l = a.newLabel();
    a.jcc(Cond::L, l);   // forward, 6 bytes
    a.jmp(l);            // forward, 5 bytes
    a.bind(l);
    a.call(l);           // backward, rel = -5
    Bytes expect{
        0x0f, 0x8c, 0x05, 0x00, 0x00, 0x00,  // jl +5
        0xe9, 0x00, 0x00, 0x00, 0x00,        // jmp +0
        0xe8, 0xfb, 0xff, 0xff, 0xff,        // call -5
    };
    EXPECT_EQ(a.code(), expect);
    EXPECT_EQ(a.labelOffset(l), 11u);
}

TEST(Assembler, NopPadding)
{
    for (size_t n : {1u, 2u, 5u, 9u, 13u, 32u}) {
        Assembler a;
        a.nop(n);
        EXPECT_EQ(a.size(), n) << "nop(" << n << ")";
    }
}

TEST(AssemblerDeath, RspIndexRejected)
{
    Assembler a;
    EXPECT_DEATH(a.load(Width::W64, false, Reg::rax,
                        Mem::baseIndex(Reg::rbx, Reg::rsp)),
                 "rsp cannot be an index");
}

TEST(AssemblerDeath, DoubleBindRejected)
{
    Assembler a;
    auto l = a.newLabel();
    a.bind(l);
    EXPECT_DEATH(a.bind(l), "bound twice");
}

TEST(AssemblerDeath, UnboundLabelOffsetRejected)
{
    Assembler a;
    auto l = a.newLabel();
    EXPECT_DEATH((void)a.labelOffset(l), "not bound");
}

}  // namespace
}  // namespace sfi::x64
