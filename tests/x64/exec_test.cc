#include <gtest/gtest.h>

#include <cstdint>

#include "x64/assembler.h"
#include "x64/exec_code.h"

namespace sfi::x64 {
namespace {

// System V AMD64: args rdi, rsi, rdx, rcx, r8, r9; return rax.

TEST(ExecCode, ReturnConstant)
{
    Assembler a;
    a.movImm64(Reg::rax, 1234567890123ull);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk()) << code.message();
    auto fn = code->entry<uint64_t (*)()>();
    EXPECT_EQ(fn(), 1234567890123ull);
}

TEST(ExecCode, AddTwoArgs)
{
    Assembler a;
    a.mov(Width::W64, Reg::rax, Reg::rdi);
    a.alu(AluOp::Add, Width::W64, Reg::rax, Reg::rsi);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t, uint64_t)>();
    EXPECT_EQ(fn(40, 2), 42u);
    EXPECT_EQ(fn(UINT64_MAX, 1), 0u);
}

TEST(ExecCode, Mov32TruncatesLikeFig1)
{
    // mov eax, edi zero-extends: the SFI truncation primitive.
    Assembler a;
    a.mov(Width::W32, Reg::rax, Reg::rdi);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t)>();
    EXPECT_EQ(fn(0xffffffff12345678ull), 0x12345678ull);
}

TEST(ExecCode, LoadThroughPointer)
{
    // mov rax, [rdi + rsi*8]
    Assembler a;
    a.load(Width::W64, false, Reg::rax,
           Mem::baseIndex(Reg::rdi, Reg::rsi, 8, 0));
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(const uint64_t*, uint64_t)>();
    uint64_t table[4] = {10, 20, 30, 40};
    EXPECT_EQ(fn(table, 0), 10u);
    EXPECT_EQ(fn(table, 3), 40u);
}

TEST(ExecCode, BranchesAndLoops)
{
    // Sum 0..n-1 with a loop: tests labels, jcc, inc-by-add.
    Assembler a;
    a.movImm32(Reg::rax, 0);                    // acc = 0
    a.movImm32(Reg::rcx, 0);                    // i = 0
    auto head = a.newLabel();
    auto done = a.newLabel();
    a.bind(head);
    a.alu(AluOp::Cmp, Width::W64, Reg::rcx, Reg::rdi);
    a.jcc(Cond::AE, done);
    a.alu(AluOp::Add, Width::W64, Reg::rax, Reg::rcx);
    a.aluImm(AluOp::Add, Width::W64, Reg::rcx, 1);
    a.jmp(head);
    a.bind(done);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t)>();
    EXPECT_EQ(fn(0), 0u);
    EXPECT_EQ(fn(10), 45u);
    EXPECT_EQ(fn(1000), 499500u);
}

TEST(ExecCode, DivisionPair)
{
    // (rdi / rsi, remainder) — returns quotient.
    Assembler a;
    a.mov(Width::W64, Reg::rax, Reg::rdi);
    a.movImm32(Reg::rdx, 0);
    a.div(Width::W64, Reg::rsi);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t, uint64_t)>();
    EXPECT_EQ(fn(100, 7), 14u);
}

TEST(ExecCode, Float64Arithmetic)
{
    // (a + b) * a
    Assembler a;
    a.movsd(Xmm::xmm2, Xmm::xmm0);
    a.addsd(Xmm::xmm2, Xmm::xmm1);
    a.mulsd(Xmm::xmm2, Xmm::xmm0);
    a.movsd(Xmm::xmm0, Xmm::xmm2);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<double (*)(double, double)>();
    EXPECT_DOUBLE_EQ(fn(3.0, 4.0), 21.0);
}

TEST(ExecCode, SetccMaterializesFlags)
{
    // rdi < rsi (unsigned) ? 1 : 0
    Assembler a;
    a.alu(AluOp::Cmp, Width::W64, Reg::rdi, Reg::rsi);
    a.setcc(Cond::B, Reg::rax);
    a.movzx8(Reg::rax, Reg::rax);
    a.ret();
    auto code = ExecCode::publish(a.code());
    ASSERT_TRUE(code.isOk());
    auto fn = code->entry<uint64_t (*)(uint64_t, uint64_t)>();
    EXPECT_EQ(fn(1, 2), 1u);
    EXPECT_EQ(fn(2, 1), 0u);
    EXPECT_EQ(fn(5, 5), 0u);
}

TEST(ExecCode, EmptyBufferRejected)
{
    EXPECT_FALSE(ExecCode::publish({}).isOk());
}

}  // namespace
}  // namespace sfi::x64
