/**
 * @file
 * Decoder <-> assembler round-trip property tests.
 *
 * For every encoding path `x64::Assembler` exposes, assert that the
 * verifier's decoder recovers the same mnemonic/operands and consumes
 * exactly the emitted bytes. This is the foundation the static SFI
 * checker stands on: if the decoder mis-reads any emitted form, the
 * checker's conclusions are meaningless.
 */
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "verify/decoder.h"
#include "x64/assembler.h"

namespace sfi::verify {
namespace {

using x64::AluOp;
using x64::Assembler;
using x64::Cond;
using x64::Mem;
using x64::Reg;
using x64::ShiftOp;
using x64::Width;
using x64::Xmm;

// Register sets chosen to hit every encoding corner: low/high encoding
// (REX.B/R/X), and the special ModRM cases rsp/rbp/r12/r13 (SIB
// escapes and forced displacements).
const Reg kGprs[] = {Reg::rax, Reg::rcx, Reg::rsp, Reg::rbp, Reg::rsi,
                     Reg::r8,  Reg::r12, Reg::r13, Reg::r15};
const Reg kBases[] = {Reg::rax, Reg::rbx, Reg::rsp, Reg::rbp,
                      Reg::r12, Reg::r13, Reg::r14, Reg::r15};
const Width kIntWidths[] = {Width::W32, Width::W64};
const int32_t kDisps[] = {0, 1, -1, 0x40, -0x40, 0x1234, -0x1234};

/** Assembles one instruction, decodes it, and checks full consumption. */
Insn
roundTrip(const std::function<void(Assembler&)>& emit)
{
    Assembler a;
    emit(a);
    Insn in;
    bool ok = decode(a.code().data(), a.code().size(), &in);
    EXPECT_TRUE(ok) << "undecodable encoding, first byte 0x" << std::hex
                    << (a.code().empty() ? 0 : int(a.code()[0]));
    EXPECT_EQ(size_t(in.len), a.code().size()) << in.text();
    return in;
}

void
expectMem(const Insn& in, const Mem& m)
{
    ASSERT_TRUE(in.mem.present) << in.text();
    EXPECT_EQ(in.mem.hasBase, m.hasBase) << in.text();
    if (m.hasBase) {
        EXPECT_EQ(int(in.mem.base), int(m.base)) << in.text();
    }
    EXPECT_EQ(in.mem.hasIndex, m.hasIndex) << in.text();
    if (m.hasIndex) {
        EXPECT_EQ(int(in.mem.index), int(m.index)) << in.text();
        EXPECT_EQ(int(in.mem.scale), int(m.scale)) << in.text();
    }
    EXPECT_EQ(in.mem.disp, m.disp) << in.text();
    EXPECT_EQ(int(in.mem.seg), int(m.seg)) << in.text();
    EXPECT_EQ(in.mem.addr32, m.addr32) << in.text();
}

/** Every memory shape the JIT uses, across the encoding corners. */
std::vector<Mem>
memForms()
{
    std::vector<Mem> v;
    for (Reg b : kBases)
        for (int32_t d : kDisps)
            v.push_back(Mem::baseDisp(b, d));
    for (Reg b : {Reg::rax, Reg::rbp, Reg::r12, Reg::r13})
        for (Reg i : {Reg::rcx, Reg::rbp, Reg::r13, Reg::r15})
            for (uint8_t s : {1, 2, 4, 8})
                v.push_back(Mem::baseIndex(b, i, s, 16));
    for (Reg b : {Reg::rax, Reg::rbp, Reg::r12})
        for (int32_t d : {0, 64, -64}) {
            v.push_back(Mem::gs32(b, d));
            Mem m = Mem::baseDisp(b, d);
            m.seg = x64::Seg::Gs;  // 64-bit EA segue form (no 0x67)
            v.push_back(m);
        }
    v.push_back(Mem::gs32Index(Reg::rdx, Reg::rdi, 1, 8));
    v.push_back(Mem::gs32Index(Reg::r9, Reg::r10, 4, -8));
    return v;
}

TEST(RoundTrip, MovImm)
{
    for (Reg r : kGprs) {
        Insn a = roundTrip([&](Assembler& x) {
            x.movImm32(r, 0xdeadbeefu);
        });
        EXPECT_EQ(a.mn, Mn::MovImm32);
        EXPECT_EQ(int(a.reg), int(r));
        EXPECT_EQ(uint32_t(a.imm), 0xdeadbeefu);

        Insn b = roundTrip([&](Assembler& x) {
            x.movImm64(r, 0x123456789abcdef0ull);
        });
        EXPECT_EQ(b.mn, Mn::MovImm64);
        EXPECT_EQ(int(b.reg), int(r));
        EXPECT_EQ(uint64_t(b.imm), 0x123456789abcdef0ull);
    }
}

TEST(RoundTrip, MovRegReg)
{
    for (Reg d : kGprs)
        for (Reg s : kGprs)
            for (Width w : kIntWidths) {
                Insn in = roundTrip(
                    [&](Assembler& x) { x.mov(w, d, s); });
                EXPECT_EQ(in.mn, Mn::MovRR);
                EXPECT_EQ(int(in.width), int(w));
                EXPECT_EQ(int(in.rm), int(d));   // destination
                EXPECT_EQ(int(in.reg), int(s));  // source
            }
}

TEST(RoundTrip, LoadAllFormsAndWidths)
{
    struct LoadCase
    {
        Width w;
        bool sx;
    };
    const LoadCase cases[] = {
        {Width::W8, false},  {Width::W8, true},  {Width::W16, false},
        {Width::W16, true},  {Width::W32, false}, {Width::W32, true},
        {Width::W64, false},
    };
    for (const Mem& m : memForms())
        for (const LoadCase& c : cases) {
            Insn in = roundTrip([&](Assembler& x) {
                x.load(c.w, c.sx, Reg::r10, m);
            });
            EXPECT_EQ(in.mn, Mn::Load) << in.text();
            EXPECT_EQ(int(in.reg), int(Reg::r10));
            EXPECT_EQ(int(in.width), int(c.w)) << in.text();
            EXPECT_EQ(in.signExtend, c.sx) << in.text();
            expectMem(in, m);
        }
}

TEST(RoundTrip, StoreAllFormsAndWidths)
{
    const Width widths[] = {Width::W8, Width::W16, Width::W32,
                            Width::W64};
    for (const Mem& m : memForms())
        for (Width w : widths) {
            Insn in = roundTrip(
                [&](Assembler& x) { x.store(w, m, Reg::rdx); });
            EXPECT_EQ(in.mn, Mn::Store) << in.text();
            EXPECT_EQ(int(in.reg), int(Reg::rdx));
            EXPECT_EQ(int(in.width), int(w)) << in.text();
            expectMem(in, m);

            Insn si = roundTrip(
                [&](Assembler& x) { x.storeImm32(w, m, -7); });
            EXPECT_EQ(si.mn, Mn::StoreImm) << si.text();
            EXPECT_EQ(int(si.width), int(w)) << si.text();
            EXPECT_TRUE(si.hasImm);
            // imm8/imm16 truncate on encode; compare truncated.
            int64_t want = w == Width::W8    ? int8_t(-7)
                           : w == Width::W16 ? int16_t(-7)
                                             : -7;
            EXPECT_EQ(si.imm, want) << si.text();
            expectMem(si, m);
        }
}

TEST(RoundTrip, Lea)
{
    for (const Mem& m : memForms()) {
        if (m.seg != x64::Seg::None)
            continue;  // lea ignores segments; JIT never emits that
        for (Width w : kIntWidths) {
            Insn in = roundTrip(
                [&](Assembler& x) { x.lea(w, Reg::rax, m); });
            EXPECT_EQ(in.mn, Mn::Lea) << in.text();
            EXPECT_EQ(int(in.width), int(w));
            expectMem(in, m);
        }
    }
}

TEST(RoundTrip, AluRegRegAndImm)
{
    const AluOp ops[] = {AluOp::Add, AluOp::Or,  AluOp::And,
                         AluOp::Sub, AluOp::Xor, AluOp::Cmp};
    for (AluOp op : ops)
        for (Reg d : kGprs)
            for (Width w : kIntWidths) {
                Insn rr = roundTrip(
                    [&](Assembler& x) { x.alu(op, w, d, Reg::r9); });
                EXPECT_EQ(rr.mn, Mn::AluRR);
                EXPECT_EQ(int(rr.aluOp), int(op));
                EXPECT_EQ(int(rr.reg), int(d));
                EXPECT_EQ(int(rr.rm), int(Reg::r9));
                EXPECT_EQ(int(rr.width), int(w));

                for (int32_t imm : {1, -1, 127, 128, -129, 0x7000}) {
                    Insn ri = roundTrip([&](Assembler& x) {
                        x.aluImm(op, w, d, imm);
                    });
                    EXPECT_EQ(ri.mn, Mn::AluImm) << ri.text();
                    EXPECT_EQ(int(ri.aluOp), int(op));
                    EXPECT_EQ(int(ri.reg), int(d));
                    EXPECT_EQ(ri.imm, imm) << ri.text();
                }
            }
}

TEST(RoundTrip, AluMem)
{
    for (const Mem& m : memForms()) {
        Insn in = roundTrip([&](Assembler& x) {
            x.aluMem(AluOp::Cmp, Width::W64, Reg::rax, m);
        });
        EXPECT_EQ(in.mn, Mn::AluMem) << in.text();
        EXPECT_EQ(int(in.aluOp), int(AluOp::Cmp));
        EXPECT_EQ(int(in.reg), int(Reg::rax));
        expectMem(in, m);
    }
}

TEST(RoundTrip, UnaryAndShifts)
{
    for (Reg r : kGprs)
        for (Width w : kIntWidths) {
            EXPECT_EQ(roundTrip([&](Assembler& x) { x.neg(w, r); }).mn,
                      Mn::Neg);
            EXPECT_EQ(roundTrip([&](Assembler& x) { x.notR(w, r); }).mn,
                      Mn::Not);
            EXPECT_EQ(roundTrip([&](Assembler& x) { x.div(w, r); }).mn,
                      Mn::Div);
            EXPECT_EQ(roundTrip([&](Assembler& x) { x.idiv(w, r); }).mn,
                      Mn::Idiv);
            for (ShiftOp op :
                 {ShiftOp::Shl, ShiftOp::Shr, ShiftOp::Sar}) {
                Insn sc = roundTrip(
                    [&](Assembler& x) { x.shiftCl(op, w, r); });
                EXPECT_EQ(sc.mn, Mn::ShiftCl);
                EXPECT_EQ(int(sc.shiftOp), int(op));
                EXPECT_EQ(int(sc.reg), int(r));
                Insn si = roundTrip(
                    [&](Assembler& x) { x.shiftImm(op, w, r, 13); });
                EXPECT_EQ(si.mn, Mn::ShiftImm);
                EXPECT_EQ(si.imm, 13);
            }
        }
}

TEST(RoundTrip, WideningMovesAndMisc)
{
    for (Reg d : kGprs)
        for (Reg s : kGprs) {
            Insn z8 = roundTrip(
                [&](Assembler& x) { x.movzx8(d, s); });
            EXPECT_EQ(z8.mn, Mn::Movzx);
            EXPECT_EQ(int(z8.srcWidth), int(Width::W8));
            Insn z16 = roundTrip(
                [&](Assembler& x) { x.movzx16(d, s); });
            EXPECT_EQ(z16.mn, Mn::Movzx);
            EXPECT_EQ(int(z16.srcWidth), int(Width::W16));
            for (Width w : kIntWidths) {
                Insn s8 = roundTrip(
                    [&](Assembler& x) { x.movsx8(w, d, s); });
                EXPECT_EQ(s8.mn, Mn::Movsx);
                EXPECT_EQ(int(s8.width), int(w));
                EXPECT_EQ(int(s8.srcWidth), int(Width::W8));
                Insn im = roundTrip(
                    [&](Assembler& x) { x.imul(w, d, s); });
                EXPECT_EQ(im.mn, Mn::Imul);
                Insn pc = roundTrip(
                    [&](Assembler& x) { x.popcnt(w, d, s); });
                EXPECT_EQ(pc.mn, Mn::Popcnt);
                Insn cm = roundTrip([&](Assembler& x) {
                    x.cmovcc(Cond::E, w, d, s);
                });
                EXPECT_EQ(cm.mn, Mn::Cmovcc);
                EXPECT_EQ(int(cm.cond), int(Cond::E));
            }
            Insn sx = roundTrip(
                [&](Assembler& x) { x.movsxd(d, s); });
            EXPECT_EQ(sx.mn, Mn::Movsxd);
            Insn tst = roundTrip([&](Assembler& x) {
                x.test(Width::W64, d, s);
            });
            EXPECT_EQ(tst.mn, Mn::Test);
        }
    for (Cond cc : {Cond::E, Cond::NE, Cond::B, Cond::A, Cond::L,
                    Cond::GE}) {
        Insn in = roundTrip(
            [&](Assembler& x) { x.setcc(cc, Reg::r11); });
        EXPECT_EQ(in.mn, Mn::Setcc);
        EXPECT_EQ(int(in.cond), int(cc));
        EXPECT_EQ(int(in.reg), int(Reg::r11));
    }
    EXPECT_EQ(roundTrip([](Assembler& x) { x.cdq(); }).mn, Mn::Cdq);
    EXPECT_EQ(roundTrip([](Assembler& x) { x.cqo(); }).mn, Mn::Cqo);
    EXPECT_EQ(roundTrip([](Assembler& x) { x.ret(); }).mn, Mn::Ret);
    EXPECT_EQ(roundTrip([](Assembler& x) { x.ud2(); }).mn, Mn::Ud2);
    EXPECT_EQ(roundTrip([](Assembler& x) { x.int3(); }).mn, Mn::Int3);
}

TEST(RoundTrip, PushPopAndIndirects)
{
    for (Reg r : kGprs) {
        Insn pu = roundTrip([&](Assembler& x) { x.push(r); });
        EXPECT_EQ(pu.mn, Mn::Push);
        EXPECT_EQ(int(pu.reg), int(r));
        Insn po = roundTrip([&](Assembler& x) { x.pop(r); });
        EXPECT_EQ(po.mn, Mn::Pop);
        EXPECT_EQ(int(po.reg), int(r));
        Insn cr = roundTrip([&](Assembler& x) { x.callReg(r); });
        EXPECT_EQ(cr.mn, Mn::CallReg);
        EXPECT_EQ(int(cr.reg), int(r));
        Insn jr = roundTrip([&](Assembler& x) { x.jmpReg(r); });
        EXPECT_EQ(jr.mn, Mn::JmpReg);
        EXPECT_EQ(int(jr.reg), int(r));
    }
}

TEST(RoundTrip, BranchesWithRel32)
{
    // Backward branch: bind first, then jump; rel is negative.
    Assembler a;
    auto top = a.newLabel();
    a.bind(top);
    a.nop(3);
    a.jmp(top);
    a.jcc(Cond::A, top);
    a.call(top);

    const uint8_t* p = a.code().data();
    size_t off = 3;  // skip the nop
    Insn jmp;
    ASSERT_TRUE(decode(p + off, a.code().size() - off, &jmp));
    EXPECT_EQ(jmp.mn, Mn::Jmp);
    EXPECT_EQ(int64_t(off) + jmp.len + jmp.rel, 0);  // targets `top`
    off += jmp.len;

    Insn jcc;
    ASSERT_TRUE(decode(p + off, a.code().size() - off, &jcc));
    EXPECT_EQ(jcc.mn, Mn::Jcc);
    EXPECT_EQ(int(jcc.cond), int(Cond::A));
    EXPECT_EQ(int64_t(off) + jcc.len + jcc.rel, 0);
    off += jcc.len;

    Insn call;
    ASSERT_TRUE(decode(p + off, a.code().size() - off, &call));
    EXPECT_EQ(call.mn, Mn::Call);
    EXPECT_EQ(int64_t(off) + call.len + call.rel, 0);
}

TEST(RoundTrip, NopSizes)
{
    for (size_t n = 1; n <= 16; n++) {
        Assembler a;
        a.nop(n);
        size_t off = 0;
        while (off < a.code().size()) {
            Insn in;
            ASSERT_TRUE(
                decode(a.code().data() + off, a.code().size() - off,
                       &in))
                << "nop(" << n << ") at +" << off;
            EXPECT_EQ(in.mn, Mn::Nop);
            off += in.len;
        }
        EXPECT_EQ(off, a.code().size());
    }
}

TEST(RoundTrip, Sse2Scalar)
{
    const Xmm a = Xmm::xmm1, b = Xmm::xmm7;
    struct XmmCase
    {
        Mn mn;
        std::function<void(Assembler&)> emit;
    };
    const XmmCase cases[] = {
        {Mn::MovsdRR, [&](Assembler& x) { x.movsd(a, b); }},
        {Mn::Addsd, [&](Assembler& x) { x.addsd(a, b); }},
        {Mn::Subsd, [&](Assembler& x) { x.subsd(a, b); }},
        {Mn::Mulsd, [&](Assembler& x) { x.mulsd(a, b); }},
        {Mn::Divsd, [&](Assembler& x) { x.divsd(a, b); }},
        {Mn::Sqrtsd, [&](Assembler& x) { x.sqrtsd(a, b); }},
        {Mn::Minsd, [&](Assembler& x) { x.minsd(a, b); }},
        {Mn::Maxsd, [&](Assembler& x) { x.maxsd(a, b); }},
        {Mn::Ucomisd, [&](Assembler& x) { x.ucomisd(a, b); }},
        {Mn::Xorpd, [&](Assembler& x) { x.xorpd(a, b); }},
        {Mn::MovqToXmm,
         [&](Assembler& x) { x.movqToXmm(a, Reg::r8); }},
        {Mn::MovqFromXmm,
         [&](Assembler& x) { x.movqFromXmm(Reg::r8, b); }},
        {Mn::Cvtsi2sd,
         [&](Assembler& x) { x.cvtsi2sd(a, Width::W64, Reg::rdx); }},
        {Mn::Cvttsd2si,
         [&](Assembler& x) { x.cvttsd2si(Width::W32, Reg::rdx, b); }},
    };
    for (const XmmCase& c : cases)
        EXPECT_EQ(roundTrip(c.emit).mn, c.mn);

    for (const Mem& m : memForms()) {
        Insn ld = roundTrip(
            [&](Assembler& x) { x.movsdLoad(a, m); });
        EXPECT_EQ(ld.mn, Mn::MovsdLoad) << ld.text();
        expectMem(ld, m);
        Insn st = roundTrip(
            [&](Assembler& x) { x.movsdStore(m, b); });
        EXPECT_EQ(st.mn, Mn::MovsdStore) << st.text();
        expectMem(st, m);
    }
}

TEST(RoundTrip, FailClosedOnForeignBytes)
{
    // Encodings x64::Assembler never produces must not decode.
    const std::vector<std::vector<uint8_t>> foreign = {
        {0xcd, 0x80},              // int 0x80
        {0x0f, 0x05},              // syscall
        {0xf4},                    // hlt
        {0xc2, 0x08, 0x00},        // ret imm16
        {0x9c},                    // pushfq
    };
    for (const auto& bytes : foreign) {
        Insn in;
        EXPECT_FALSE(decode(bytes.data(), bytes.size(), &in))
            << "byte 0x" << std::hex << int(bytes[0])
            << " decoded unexpectedly";
        EXPECT_GE(int(in.len), 1);
    }
    Insn in;
    EXPECT_FALSE(decode(nullptr, 0, &in));
    // Truncated instruction: mov r, imm32 cut short.
    const uint8_t cut[] = {0xb8, 0x01, 0x02};
    EXPECT_FALSE(decode(cut, sizeof cut, &in));

    // RIP-relative decodes (the ELF path resolves it via relocations)
    // but is marked, and the JIT checker treats it as Bad: the
    // assembler never emits it.
    const uint8_t riprel[] = {0x8b, 0x05, 0, 0, 0, 0};
    ASSERT_TRUE(decode(riprel, sizeof riprel, &in));
    EXPECT_EQ(in.mn, Mn::Load);
    EXPECT_TRUE(in.mem.present);
    EXPECT_TRUE(in.mem.ripRel);
    EXPECT_FALSE(in.mem.hasBase);
}

}  // namespace
}  // namespace sfi::verify
