/**
 * @file
 * Stress + fault-injection + differential tier for the production-shape
 * host (ISSUE 10). Labelled "stress" (ctest -L stress, ideally under
 * -DSFIKIT_SANITIZE=thread) so tier-1 stays fast.
 *
 * Three proof obligations:
 *  1. Key recycling under churn: N threads drive the KeyRing (and the
 *     pool's lease mode) through key exhaustion, so every request
 *     crosses a recycling epoch; canary writes prove a recycled color
 *     never exposes a previous tenant's bytes (zero aliasing).
 *  2. Fault injection: key-allocation failure, quiesce timeout, and
 *     admission-queue overflow each degrade per policy instead of
 *     wedging a shard.
 *  3. MPK <-> MTE differential: identical workloads produce
 *     bit-identical checksums on both backends, and the mis-tagged
 *     granule negative fixture is caught.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "base/fault.h"
#include "faas/loadgen.h"
#include "faas/scheduler.h"
#include "mpk/keyring.h"
#include "mpk/mte_backend.h"
#include "pool/pool.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

// ---------------------------------------------------------------------
// 1. Key-recycle stress
// ---------------------------------------------------------------------

TEST(KeyRecycleStress, RingChurnManyThreads)
{
    auto sys = mpk::makeEmulated();
    mpk::KeyRing::Options ropt;
    ropt.system = sys.get();
    mpk::KeyRing ring(ropt);

    const int kThreads = 8;
    const int kIters = 1500;
    std::atomic<uint64_t> acquired{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&ring, &acquired] {
            mpk::KeyRing::Participant* self = ring.registerParticipant();
            std::vector<mpk::Lease> held;
            for (int i = 0; i < kIters; i++) {
                auto lease = ring.acquire(self);
                ASSERT_TRUE(lease.isOk()) << lease.message();
                held.push_back(*lease);
                // Hold a small working set so keys keep retiring and
                // epochs keep opening across all threads.
                if (held.size() >= 3) {
                    ring.release(held.front());
                    held.erase(held.begin());
                }
                acquired.fetch_add(1, std::memory_order_relaxed);
                self->fence();
            }
            for (const auto& l : held)
                ring.release(l);
            ring.unregisterParticipant(self);
        });
    }
    for (auto& th : threads)
        th.join();

    mpk::KeyRing::Stats s = ring.stats();
    EXPECT_EQ(acquired.load(), uint64_t(kThreads) * kIters);
    // Far more concurrent-lifetime leases than raw keys exist: the
    // recycling epochs (and, transiently, sharing) carried the excess.
    EXPECT_GT(acquired.load(), 15u * kThreads);
    EXPECT_GT(s.keyRecycles, 0u);
    EXPECT_GT(s.keysRecycled, 0u);
    // Everything returned: no leases outstanding, nothing wedged.
    EXPECT_EQ(s.liveKeys, 0u);
    EXPECT_EQ(s.quiesceTimeouts, 0u);
    EXPECT_EQ(s.allocFailures, 0u);
}

TEST(KeyRecycleStress, PoolLeaseCanariesNeverAlias)
{
    auto sys = mpk::makeEmulated();
    mpk::KeyRing::Options ropt;
    ropt.system = sys.get();
    mpk::KeyRing ring(ropt);

    pool::MemoryPool::Options popt;
    popt.config.numSlots = 32;
    popt.config.maxMemoryBytes = 4 * kWasmPageSize;
    popt.config.guardBytes = 4 * kWasmPageSize;
    popt.config.stripingEnabled = true;
    popt.mpk = sys.get();
    popt.keyRing = &ring;
    popt.shards = 4;
    auto pool = pool::MemoryPool::create(std::move(popt));
    ASSERT_TRUE(pool.isOk()) << pool.message();

    const int kThreads = 4;
    const int kIters = 400;
    const uint64_t kCanarySpan = 1024;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&, t] {
            mpk::KeyRing::Participant* self = ring.registerParticipant();
            for (int i = 0; i < kIters; i++) {
                auto slot = pool->allocate(self);
                ASSERT_TRUE(slot.isOk()) << slot.message();
                // Zero-aliasing assertion: whatever the previous tenant
                // of this color/slot wrote must be gone.
                for (uint64_t b = 0; b < kCanarySpan; b++) {
                    ASSERT_EQ(slot->base[b], 0)
                        << "thread " << t << " iter " << i << " byte "
                        << b << " leaked a previous tenant's canary";
                }
                // Distinct per-(thread, iter) canary across the cohort.
                uint8_t canary = uint8_t(0x40 + ((t * kIters + i) % 0xbf));
                std::memset(slot->base, canary, kCanarySpan);
                ASSERT_EQ(slot->base[kCanarySpan - 1], canary);
                ASSERT_TRUE(pool->free(*slot, kCanarySpan).isOk());
                self->fence();
            }
            ring.unregisterParticipant(self);
        });
    }
    for (auto& th : threads)
        th.join();

    pool::MemoryPool::Stats ps = pool->stats();
    // The churn sustained far more concurrent-lifetime sandboxes than
    // 15 keys x shards could without recycling.
    EXPECT_EQ(ps.allocations, uint64_t(kThreads) * kIters);
    EXPECT_GT(ps.allocations, 15u * 4u);
    EXPECT_GT(ps.keyRecycles + ps.keyShares, 0u);
    EXPECT_EQ(pool->slotsInUse(), 0u);
}

TEST(KeyRecycleStress, HostKeyExhaustionMatchesStaticStripingChecksum)
{
    // maxConcurrent far above 15 usable keys: with keyRecycling every
    // worker's slot churn crosses recycle epochs, yet results must be
    // bit-identical to the static-striping host on the same trace.
    const uint64_t kReqs = 768;
    faas::LoadGenConfig load;
    load.ratePerSec = 20000;
    load.seed = 42;

    auto run = [&](bool recycling) {
        faas::FaasHost::Options opts;
        opts.maxConcurrent = 48;
        opts.workerThreads = 4;
        opts.ioDelayMeanMs = 0.05;
        opts.keyRecycling = recycling;
        auto host = faas::FaasHost::create(
            wkld::faasWorkloads()[0].make(), std::move(opts));
        EXPECT_TRUE(host.isOk()) << host.message();
        auto stats = (*host)->runOpenLoop(kReqs, load);
        EXPECT_TRUE(stats.isOk()) << stats.message();
        EXPECT_EQ((*host)->memoryPool().slotsInUse(), 0u);
        return *stats;
    };

    faas::FaasHost::Stats baseline = run(false);
    faas::FaasHost::Stats recycled = run(true);
    EXPECT_EQ(baseline.completed, kReqs);
    EXPECT_EQ(recycled.completed, kReqs);
    EXPECT_EQ(recycled.checksum, baseline.checksum);
    // The lease churn actually exercised the ring.
    EXPECT_GT(recycled.keyRecycles + recycled.keyShares, 0u);
    EXPECT_EQ(baseline.keyRecycles, 0u);
}

// ---------------------------------------------------------------------
// 2. Fault injection
// ---------------------------------------------------------------------

TEST(FaultInjection, KeyAllocFailureDegradesInsteadOfWedging)
{
    auto sys = mpk::makeEmulated();
    mpk::KeyRing::Options ropt;
    ropt.system = sys.get();
    mpk::KeyRing ring(ropt);

    auto a = ring.acquire(nullptr);
    ASSERT_TRUE(a.isOk());

    fault::FaultPlan plan;
    plan.arm("keyring.alloc");
    // Free list dry and growth injected to fail: the acquire is
    // counted as a failure but degrades to sharing the one live key.
    auto b = ring.acquire(nullptr);
    ASSERT_TRUE(b.isOk()) << b.message();
    EXPECT_EQ(b->key, a->key);
    mpk::KeyRing::Stats s = ring.stats();
    EXPECT_GE(s.allocFailures, 1u);
    EXPECT_GE(s.keyShares, 1u);

    // Both leases gone: the retired key recycles past the failing
    // growth path (generation bumps prove it was reissued, not grown).
    ring.release(*a);
    ring.release(*b);
    auto c = ring.acquire(nullptr);
    ASSERT_TRUE(c.isOk()) << c.message();
    EXPECT_EQ(c->key, a->key);
    EXPECT_GT(c->generation, a->generation);
    EXPECT_GE(ring.stats().keyRecycles, 1u);
    plan.disarm("keyring.alloc");

    // Disarmed: growth works again and hands out a different key.
    auto d = ring.acquire(nullptr, /*avoid_mask=*/uint16_t(1u << c->key));
    ASSERT_TRUE(d.isOk()) << d.message();
    EXPECT_NE(d->key, c->key);
    ring.release(*c);
    ring.release(*d);
}

TEST(FaultInjection, QuiesceTimeoutDegradesToSharing)
{
    auto sys = mpk::makeEmulated();
    mpk::KeyRing::Options ropt;
    ropt.system = sys.get();
    mpk::KeyRing ring(ropt);

    // Exhaust the 15-key space, then retire ten keys and keep five
    // live so the timeout path has somewhere to degrade to.
    std::vector<mpk::Lease> leases;
    for (int i = 0; i < 15; i++) {
        auto l = ring.acquire(nullptr);
        ASSERT_TRUE(l.isOk()) << l.message();
        leases.push_back(*l);
    }
    for (int i = 0; i < 10; i++)
        ring.release(leases[size_t(i)]);

    fault::FaultPlan plan;
    plan.arm("keyring.quiesce");
    auto shared = ring.acquire(nullptr);
    ASSERT_TRUE(shared.isOk()) << shared.message();
    mpk::KeyRing::Stats s = ring.stats();
    EXPECT_GE(s.quiesceTimeouts, 1u);
    EXPECT_GE(s.keyShares, 1u);
    // The degraded lease shares one of the *live* keys — never a
    // retired (unfenced) one.
    bool is_live = false;
    for (int i = 10; i < 15; i++)
        is_live |= leases[size_t(i)].key == shared->key;
    EXPECT_TRUE(is_live);
    plan.disarm("keyring.quiesce");

    // With the fault gone the next dry acquire recycles normally.
    ring.release(*shared);
    auto fresh = ring.acquire(nullptr);
    ASSERT_TRUE(fresh.isOk());
    EXPECT_GE(ring.stats().keyRecycles, 1u);
}

class AdmissionOverflowFault
    : public ::testing::TestWithParam<faas::AdmissionPolicy>
{
};

TEST_P(AdmissionOverflowFault, DegradesPerPolicy)
{
    const uint64_t kReqs = 256;
    fault::FaultPlan plan;
    // Force the overflow path on a slice of pump passes even though the
    // real queues never fill at this load.
    plan.arm("admission.overflow", /*skip=*/3, /*count=*/40);

    faas::FaasHost::Options opts;
    opts.maxConcurrent = 16;
    opts.workerThreads = 2;
    opts.ioDelayMeanMs = 0.05;
    opts.admission = GetParam();
    opts.admissionQueueDepth = 8;
    auto host = faas::FaasHost::create(wkld::faasWorkloads()[0].make(),
                                       std::move(opts));
    ASSERT_TRUE(host.isOk()) << host.message();

    faas::LoadGenConfig load;
    load.ratePerSec = 20000;
    load.seed = 7;
    auto stats = (*host)->runOpenLoop(kReqs, load);
    ASSERT_TRUE(stats.isOk()) << stats.message();
    EXPECT_GE(plan.triggers("admission.overflow"), 1u);

    // Conservation per policy: nothing wedges, nothing is lost twice.
    EXPECT_EQ(stats->completed + stats->rejected + stats->shedRequests,
              kReqs);
    switch (GetParam()) {
    case faas::AdmissionPolicy::Reject:
        EXPECT_GE(stats->rejected, 1u);
        EXPECT_EQ(stats->shedRequests, 0u);
        break;
    case faas::AdmissionPolicy::Shed:
        EXPECT_EQ(stats->rejected, 0u);
        break;
    case faas::AdmissionPolicy::Backpressure:
        // Lossless: forced overflow only delays admission.
        EXPECT_EQ(stats->completed, kReqs);
        break;
    case faas::AdmissionPolicy::None:
        break;
    }
    EXPECT_EQ((*host)->memoryPool().slotsInUse(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AdmissionOverflowFault,
    ::testing::Values(faas::AdmissionPolicy::Reject,
                      faas::AdmissionPolicy::Shed,
                      faas::AdmissionPolicy::Backpressure),
    [](const auto& info) {
        switch (info.param) {
        case faas::AdmissionPolicy::Reject: return "Reject";
        case faas::AdmissionPolicy::Shed: return "Shed";
        case faas::AdmissionPolicy::Backpressure: return "Backpressure";
        default: return "None";
        }
    });

// ---------------------------------------------------------------------
// 3. MPK <-> MTE differential
// ---------------------------------------------------------------------

TEST(MpkMteDifferential, RegistryWorkloadsBitIdenticalChecksums)
{
    // Registry FaaS workloads x SFI strategies, one seeded open-loop
    // trace: the enforcement backend must be semantically invisible.
    const jit::CompilerConfig strategies[] = {
        jit::CompilerConfig::wamrSegue(),
        jit::CompilerConfig::wamrBase(),
    };
    const uint64_t kReqs = 96;
    faas::LoadGenConfig load;
    load.ratePerSec = 10000;
    load.seed = 42;

    for (const auto& w : wkld::faasWorkloads()) {
        for (const auto& cfg : strategies) {
            uint64_t checksum[2] = {0, 0};
            for (int be = 0; be < 2; be++) {
                faas::FaasHost::Options opts;
                opts.maxConcurrent = 12;
                opts.workerThreads = 2;
                opts.ioDelayMeanMs = 0.05;
                opts.config = cfg;
                opts.backend = be == 0 ? faas::IsolationBackend::Mpk
                                       : faas::IsolationBackend::Mte;
                opts.keyRecycling = true;  // exercise re-tag on both
                auto host =
                    faas::FaasHost::create(w.make(), std::move(opts));
                ASSERT_TRUE(host.isOk())
                    << w.name << ": " << host.message();
                auto stats = (*host)->runOpenLoop(kReqs, load);
                ASSERT_TRUE(stats.isOk())
                    << w.name << ": " << stats.message();
                EXPECT_EQ(stats->completed, kReqs) << w.name;
                checksum[be] = stats->checksum;
            }
            EXPECT_EQ(checksum[0], checksum[1])
                << w.name << " diverged across backends";
        }
    }
}

TEST(MpkMteDifferential, MteRetagsWhereMpkDoesNot)
{
    // Observation 2 (§7): decommit drops MTE tags but not PTE colors,
    // so the pool re-tags on the MTE backend only. Cold allocate/free
    // churn (warm affinity off) forces decommits between occupancies.
    auto churn = [](mpk::System* sys) {
        pool::MemoryPool::Options popt;
        popt.config.numSlots = 4;
        popt.config.maxMemoryBytes = 4 * kWasmPageSize;
        popt.config.guardBytes = 4 * kWasmPageSize;
        popt.config.stripingEnabled = true;
        popt.mpk = sys;
        popt.shards = 1;
        popt.warmSlotsPerShard = 0;
        auto pool = pool::MemoryPool::create(std::move(popt));
        EXPECT_TRUE(pool.isOk()) << pool.message();
        for (int i = 0; i < 32; i++) {
            auto s = pool->allocate();
            EXPECT_TRUE(s.isOk());
            s->base[0] = uint8_t(i + 1);
            EXPECT_TRUE(pool->free(*s, kWasmPageSize).isOk());
        }
        return pool->stats();
    };

    auto mpkSys = mpk::makeEmulated();
    auto mteSys = mpk::makeMteBackend();
    pool::MemoryPool::Stats mpkStats = churn(mpkSys.get());
    pool::MemoryPool::Stats mteStats = churn(mteSys.get());
    EXPECT_EQ(mpkStats.retags, 0u);
    EXPECT_GT(mteStats.retags, 0u);
    EXPECT_GT(mteSys->stats().granulesDiscarded, 0u);
}

TEST(MpkMteDifferential, MisTaggedGranuleIsCaught)
{
    // Negative fixture: a granule whose allocation tag was corrupted
    // (or went stale) must fail the sandbox-mode tag check.
    auto sys = mpk::makeMteBackend();
    pool::MemoryPool::Options popt;
    popt.config.numSlots = 4;
    popt.config.maxMemoryBytes = kWasmPageSize;
    popt.config.guardBytes = 2 * kWasmPageSize;
    popt.config.stripingEnabled = true;
    popt.mpk = sys.get();
    auto pool = pool::MemoryPool::create(std::move(popt));
    ASSERT_TRUE(pool.isOk()) << pool.message();

    auto slot = pool->allocate();
    ASSERT_TRUE(slot.isOk());
    slot->base[0] = 1;  // commit

    sys->writePkru(mpk::Pkru::allowOnly(slot->pkey));
    EXPECT_TRUE(sys->checkAccess(slot->base, true));

    // Corrupt one granule mid-slot: the pointer still carries the
    // slot's tag, the memory no longer does.
    uint8_t* victim = slot->base + 256;
    sys->poisonGranule(victim, uint8_t((slot->pkey % 15) + 1 == slot->pkey
                                           ? slot->pkey + 1
                                           : (slot->pkey % 15) + 1));
    EXPECT_FALSE(sys->checkAccess(victim, false));
    EXPECT_FALSE(sys->checkAccess(victim, true));
    // Neighboring granules are untouched.
    EXPECT_TRUE(sys->checkAccess(slot->base, true));
    EXPECT_TRUE(sys->checkAccess(victim + 16, true));

    // Host mode (PSTATE.TCO analogue) suppresses the tag check.
    sys->writePkru(mpk::Pkru::allowAll());
    EXPECT_TRUE(sys->checkAccess(victim, true));
    ASSERT_TRUE(pool->free(*slot).isOk());
}

}  // namespace
}  // namespace sfi
