#include "faas/loadgen.h"

#include <gtest/gtest.h>

namespace sfi::faas {
namespace {

TEST(LoadGen, DeterministicForSeed)
{
    LoadGenConfig cfg;
    cfg.ratePerSec = 5000;
    cfg.seed = 99;
    auto a = LoadGen::schedule(cfg, 1000);
    auto b = LoadGen::schedule(cfg, 1000);
    EXPECT_EQ(a, b);
    cfg.seed = 100;
    auto c = LoadGen::schedule(cfg, 1000);
    EXPECT_NE(a, c);
}

TEST(LoadGen, ScheduleIsMonotone)
{
    LoadGenConfig cfg;
    cfg.ratePerSec = 100000;
    auto s = LoadGen::schedule(cfg, 5000);
    ASSERT_EQ(s.size(), 5000u);
    for (size_t i = 1; i < s.size(); i++)
        ASSERT_GE(s[i], s[i - 1]) << "at " << i;
}

TEST(LoadGen, PoissonMeanInterArrival)
{
    // Over many samples the mean inter-arrival time converges to
    // 1/rate; 20k exponential samples have stderr ~0.7%, so 5% is a
    // safe deterministic bound.
    LoadGenConfig cfg;
    cfg.ratePerSec = 2000;  // 500 us mean gap
    cfg.process = ArrivalProcess::Poisson;
    const uint64_t n = 20000;
    auto s = LoadGen::schedule(cfg, n);
    double mean_gap_ns = double(s.back() - s.front()) / double(n - 1);
    double expected_ns = 1e9 / cfg.ratePerSec;
    EXPECT_NEAR(mean_gap_ns, expected_ns, expected_ns * 0.05);
}

TEST(LoadGen, UniformIsEvenlySpaced)
{
    LoadGenConfig cfg;
    cfg.ratePerSec = 1000;  // 1 ms apart
    cfg.process = ArrivalProcess::Uniform;
    auto s = LoadGen::schedule(cfg, 100);
    for (size_t i = 0; i < s.size(); i++)
        EXPECT_NEAR(double(s[i]), double(i + 1) * 1e6, 2.0) << i;
}

TEST(LoadGen, StreamMatchesSchedule)
{
    LoadGenConfig cfg;
    cfg.ratePerSec = 12345;
    cfg.seed = 7;
    auto s = LoadGen::schedule(cfg, 64);
    LoadGen gen(cfg);
    for (size_t i = 0; i < s.size(); i++)
        EXPECT_EQ(gen.nextArrivalNs(), s[i]) << i;
}

}  // namespace
}  // namespace sfi::faas
