/**
 * @file
 * Concurrency storm for the open-loop FaaS host: many workers claiming
 * from one arrival schedule, per-worker latency reservoirs merged at
 * the end. Labelled "stress" (run with ctest -L stress, ideally under
 * -DSFIKIT_SANITIZE=thread) so tier-1 stays fast.
 */
#include <gtest/gtest.h>

#include "faas/loadgen.h"
#include "faas/scheduler.h"
#include "wkld/workloads.h"

namespace sfi::faas {
namespace {

TEST(FaasStress, OpenLoopManyWorkers)
{
    const uint64_t kReqs = 512;
    uint64_t reference = 0;
    bool have_reference = false;
    for (int round = 0; round < 3; round++) {
        FaasHost::Options opts;
        opts.maxConcurrent = 32;
        opts.workerThreads = 4 + round;  // 4, 5, 6 workers
        opts.warmAffinity = true;
        opts.deferredDecommit = (round == 2);
        opts.ioDelayMeanMs = 0.05;
        auto host = FaasHost::create(
            wkld::faasWorkloads()[0].make(), std::move(opts));
        ASSERT_TRUE(host.isOk()) << host.message();

        LoadGenConfig load;
        load.ratePerSec = 20000;  // deliberately into saturation
        load.seed = 42;
        auto stats = (*host)->runOpenLoop(kReqs, load);
        ASSERT_TRUE(stats.isOk()) << stats.message();

        // Every request served exactly once, across all workers.
        EXPECT_EQ(stats->completed, kReqs) << "round " << round;
        EXPECT_EQ(stats->latencyTotalNs.count(), kReqs);
        EXPECT_EQ(stats->latencyQueueNs.count(), kReqs);
        EXPECT_EQ(stats->latencyServiceNs.count(), kReqs);
        EXPECT_GT(stats->latencyTotalNs.percentile(99),
                  stats->latencyTotalNs.percentile(50) / 2);

        // Checksum is xor-accumulated, so worker count can't change it.
        if (!have_reference) {
            reference = stats->checksum;
            have_reference = true;
        }
        EXPECT_EQ(stats->checksum, reference) << "round " << round;
        EXPECT_EQ((*host)->memoryPool().slotsInUse(), 0u);
    }
}

TEST(FaasStress, OpenLoopUnderloadedLatencyIsBounded)
{
    // Offered far below capacity: queueing should stay small relative
    // to sojourn time, and nothing may be lost under concurrency.
    FaasHost::Options opts;
    opts.maxConcurrent = 16;
    opts.workerThreads = 4;
    opts.ioDelayMeanMs = 0.05;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[1].make(), std::move(opts));
    ASSERT_TRUE(host.isOk()) << host.message();

    LoadGenConfig load;
    load.ratePerSec = 200;  // ~5 ms apart; host is far faster
    load.seed = 7;
    const uint64_t kReqs = 128;
    auto stats = (*host)->runOpenLoop(kReqs, load);
    ASSERT_TRUE(stats.isOk()) << stats.message();
    EXPECT_EQ(stats->completed, kReqs);
    EXPECT_EQ(stats->latencyTotalNs.count(), kReqs);
    // Underloaded: achieved tracks offered within scheduling noise.
    EXPECT_GT(stats->throughputRps, 0.5 * load.ratePerSec);
    // Queue wait is a small share of the sojourn at this load.
    EXPECT_LT(stats->latencyQueueNs.percentile(50),
              stats->latencyTotalNs.percentile(99));
}

}  // namespace
}  // namespace sfi::faas
