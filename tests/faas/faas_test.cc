#include <gtest/gtest.h>

#include "faas/fiber.h"
#include "faas/scheduler.h"
#include "wkld/workloads.h"

namespace sfi::faas {
namespace {

TEST(Fiber, RunsToCompletion)
{
    int steps = 0;
    auto fiber = Fiber::create([&] { steps = 42; });
    ASSERT_TRUE(fiber.isOk()) << fiber.message();
    (*fiber)->resume();
    EXPECT_EQ(steps, 42);
    EXPECT_TRUE((*fiber)->finished());
}

TEST(Fiber, YieldAndResume)
{
    std::vector<int> trace;
    std::unique_ptr<Fiber> fiber;
    fiber = std::move(Fiber::create([&] {
                          trace.push_back(1);
                          fiber->yield();
                          trace.push_back(3);
                          fiber->yield();
                          trace.push_back(5);
                      }).value());
    fiber->resume();
    trace.push_back(2);
    fiber->resume();
    trace.push_back(4);
    fiber->resume();
    EXPECT_TRUE(fiber->finished());
    EXPECT_EQ(trace, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, ManyFibersInterleave)
{
    const int kN = 32;
    std::vector<std::unique_ptr<Fiber>> fibers(kN);
    std::vector<int> counts(kN, 0);
    for (int i = 0; i < kN; i++) {
        fibers[i] = std::move(Fiber::create([&fibers, &counts, i] {
                                  for (int r = 0; r < 5; r++) {
                                      counts[i]++;
                                      fibers[i]->yield();
                                  }
                              }).value());
    }
    for (int round = 0; round < 6; round++) {
        for (int i = 0; i < kN; i++) {
            if (!fibers[i]->finished())
                fibers[i]->resume();
        }
    }
    for (int i = 0; i < kN; i++) {
        EXPECT_TRUE(fibers[i]->finished()) << i;
        EXPECT_EQ(counts[i], 5) << i;
    }
}

TEST(Fiber, DeepStackUse)
{
    // Recursion inside the fiber exercises the dedicated stack.
    std::function<uint64_t(int)> rec = [&](int n) -> uint64_t {
        volatile char pad[512];
        pad[0] = char(n);
        return n <= 1 ? 1 + pad[0] - pad[0] : n * rec(n - 1) % 1000003;
    };
    uint64_t result = 0;
    auto fiber = Fiber::create([&] { result = rec(100); });
    ASSERT_TRUE(fiber.isOk());
    (*fiber)->resume();
    EXPECT_NE(result, 0u);
}

class FaasHostTest : public ::testing::TestWithParam<const char*>
{
};

TEST_P(FaasHostTest, ServesRequestsConcurrently)
{
    const wkld::Workload& w = [&] {
        for (const auto& x : wkld::faasWorkloads()) {
            if (std::string(x.name) == GetParam())
                return x;
        }
        SFI_PANIC("missing workload");
    }();

    FaasHost::Options opts;
    opts.maxConcurrent = 16;
    opts.ioDelayMeanMs = 0.5;  // keep the test fast
    opts.epochUs = 200;
    auto host = FaasHost::create(w.make(), std::move(opts));
    ASSERT_TRUE(host.isOk()) << host.message();

    auto stats = (*host)->run(64);
    ASSERT_TRUE(stats.isOk()) << stats.message();
    EXPECT_EQ(stats->completed, 64u);
    EXPECT_GT(stats->throughputRps, 0.0);
    EXPECT_GE(stats->ioYields, 64u);  // every request waits on IO once
    EXPECT_NE(stats->checksum, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, FaasHostTest,
                         ::testing::Values("html-templating",
                                           "hash-load-balance",
                                           "regex-filtering"),
                         [](const auto& info) {
                             std::string n = info.param;
                             for (char& c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

FaasHost::Options
admissionOpts(AdmissionPolicy policy)
{
    FaasHost::Options opts;
    opts.maxConcurrent = 8;
    opts.workerThreads = 2;
    opts.ioDelayMeanMs = 0.5;  // slow service: overload is real
    opts.admission = policy;
    opts.admissionQueueDepth = 4;
    return opts;
}

// ~2x the capacity of 8 slots at 0.5 ms mean service.
LoadGenConfig
overloadTrace()
{
    LoadGenConfig load;
    load.ratePerSec = 30000;
    load.seed = 42;
    return load;
}

TEST(FaasAdmission, RejectBoundsQueueAndConservesRequests)
{
    const uint64_t kReqs = 384;
    auto host = FaasHost::create(wkld::faasWorkloads()[0].make(),
                                 admissionOpts(AdmissionPolicy::Reject));
    ASSERT_TRUE(host.isOk()) << host.message();
    auto stats = (*host)->runOpenLoop(kReqs, overloadTrace());
    ASSERT_TRUE(stats.isOk()) << stats.message();

    // Every id is exactly one of completed / rejected; overload at 2x
    // must actually reject.
    EXPECT_EQ(stats->completed + stats->rejected, kReqs);
    EXPECT_GT(stats->rejected, 0u);
    EXPECT_GT(stats->overloadEvents, 0u);
    // Per-shard surface: one entry per worker, bounded high-water.
    ASSERT_EQ(stats->shards.size(), 2u);
    uint64_t shard_admitted = 0;
    for (const auto& sh : stats->shards) {
        EXPECT_LE(sh.maxDepth, 4u);
        shard_admitted += sh.admitted;
    }
    EXPECT_EQ(shard_admitted, stats->admitted);
    EXPECT_EQ(stats->admitted, stats->completed);
}

TEST(FaasAdmission, ShedDropsOldestAndConserves)
{
    const uint64_t kReqs = 384;
    auto host = FaasHost::create(wkld::faasWorkloads()[0].make(),
                                 admissionOpts(AdmissionPolicy::Shed));
    ASSERT_TRUE(host.isOk()) << host.message();
    auto stats = (*host)->runOpenLoop(kReqs, overloadTrace());
    ASSERT_TRUE(stats.isOk()) << stats.message();
    EXPECT_EQ(stats->completed + stats->shedRequests, kReqs);
    EXPECT_GT(stats->shedRequests, 0u);
    EXPECT_EQ(stats->rejected, 0u);
    for (const auto& sh : stats->shards)
        EXPECT_LE(sh.maxDepth, 4u);
}

TEST(FaasAdmission, BackpressureIsLosslessWithBoundedSojourn)
{
    const uint64_t kReqs = 384;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[0].make(),
        admissionOpts(AdmissionPolicy::Backpressure));
    ASSERT_TRUE(host.isOk()) << host.message();
    auto stats = (*host)->runOpenLoop(kReqs, overloadTrace());
    ASSERT_TRUE(stats.isOk()) << stats.message();

    // Lossless: everything is eventually admitted and served.
    EXPECT_EQ(stats->completed, kReqs);
    EXPECT_EQ(stats->admitted, kReqs);
    EXPECT_EQ(stats->rejected + stats->shedRequests, 0u);
    // The overload lives in the admission delay, not the sojourn: with
    // a bounded queue of 4 and ~0.5 ms service, post-admission sojourn
    // stays within a small multiple of queue-depth x service time
    // rather than growing with the arrival backlog.
    EXPECT_GT(stats->admissionDelayNs.percentile(99), 0u);
    EXPECT_LT(stats->latencyTotalNs.percentile(99), 400'000'000u);
    for (const auto& sh : stats->shards)
        EXPECT_LE(sh.maxDepth, 4u);
}

TEST(FaasAdmission, NonePolicyKeepsLegacyCountersSilent)
{
    FaasHost::Options opts;
    opts.maxConcurrent = 8;
    opts.ioDelayMeanMs = 0.2;
    auto host =
        FaasHost::create(wkld::faasWorkloads()[0].make(), std::move(opts));
    ASSERT_TRUE(host.isOk()) << host.message();
    auto stats = (*host)->run(64);
    ASSERT_TRUE(stats.isOk()) << stats.message();
    EXPECT_EQ(stats->completed, 64u);
    EXPECT_EQ(stats->admitted + stats->rejected + stats->shedRequests, 0u);
    EXPECT_EQ(stats->overloadEvents, 0u);
}

TEST(FaasAdmission, MteBackendServesIdenticalResults)
{
    uint64_t checksum[2] = {0, 0};
    for (int be = 0; be < 2; be++) {
        FaasHost::Options opts;
        opts.maxConcurrent = 8;
        opts.ioDelayMeanMs = 0.2;
        opts.backend = be == 0 ? IsolationBackend::Mpk
                               : IsolationBackend::Mte;
        auto host = FaasHost::create(wkld::faasWorkloads()[1].make(),
                                     std::move(opts));
        ASSERT_TRUE(host.isOk()) << host.message();
        auto stats = (*host)->run(48);
        ASSERT_TRUE(stats.isOk()) << stats.message();
        EXPECT_EQ(stats->completed, 48u);
        checksum[be] = stats->checksum;
    }
    EXPECT_EQ(checksum[0], checksum[1]);
}

TEST(FaasHost, ResultsDeterministicAcrossStrategies)
{
    // The served responses (checksum) must not depend on the SFI
    // strategy — end-to-end differential check of the whole stack:
    // pool + ColorGuard keys + fibers + epochs + JIT.
    uint64_t checksums[2];
    int i = 0;
    for (auto cfg : {jit::CompilerConfig::wamrBase(),
                     jit::CompilerConfig::wamrSegue()}) {
        FaasHost::Options opts;
        opts.maxConcurrent = 8;
        opts.ioDelayMeanMs = 0.2;
        opts.config = cfg;
        auto host = FaasHost::create(
            wkld::faasWorkloads()[0].make(), std::move(opts));
        ASSERT_TRUE(host.isOk());
        auto stats = (*host)->run(32);
        ASSERT_TRUE(stats.isOk());
        EXPECT_EQ(stats->completed, 32u);
        checksums[i++] = stats->checksum;
    }
    EXPECT_EQ(checksums[0], checksums[1]);
}

TEST(FaasHost, TieredHostMatchesMonolithicAndCountsColdStarts)
{
    // Options::tiered switches the host's shared module to the lazy
    // pipeline (ISSUE 9). End-to-end: the served responses must be
    // bit-identical to the monolithic host's, every fresh instance
    // spin-up counts as a cold start, the tier counters surface in
    // Stats, and nothing fell back to the interpreter.
    const uint64_t kReqs = 48;
    uint64_t checksums[2];
    for (int tiered = 0; tiered < 2; tiered++) {
        FaasHost::Options opts;
        opts.maxConcurrent = 8;
        opts.workerThreads = 2;
        opts.ioDelayMeanMs = 0.2;
        opts.tiered = tiered != 0;
        opts.tierOptions.hotThreshold = 4;  // exercise tier-up mid-run
        opts.tierOptions.useCodeCache = false;  // isolate this test
        auto host = FaasHost::create(
            wkld::faasWorkloads()[0].make(), std::move(opts));
        ASSERT_TRUE(host.isOk()) << host.message();
        auto stats = (*host)->run(kReqs);
        ASSERT_TRUE(stats.isOk()) << stats.message();
        EXPECT_EQ(stats->completed, kReqs);
        checksums[tiered] = stats->checksum;
        if (tiered) {
            EXPECT_GE(stats->coldStarts, 1u);
            EXPECT_GE(stats->baselineCompiles, 1u);
            EXPECT_GE(stats->tierUps, 1u);
            EXPECT_EQ(stats->interpFallbacks, 0u);
            EXPECT_GT(stats->compileNs, 0u);
        } else {
            EXPECT_EQ(stats->baselineCompiles, 0u);
            EXPECT_EQ(stats->tierUps, 0u);
        }
    }
    EXPECT_EQ(checksums[0], checksums[1]);
}

TEST(FaasHost, EpochPreemptionHappens)
{
    // With a long-running request mix and a short epoch, at least some
    // epoch yields must occur (requests run > 1 epoch of compute).
    FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.ioDelayMeanMs = 0.1;
    opts.epochUs = 50;  // very aggressive preemption
    auto host = FaasHost::create(
        wkld::faasWorkloads()[0].make(), std::move(opts));
    ASSERT_TRUE(host.isOk());
    auto stats = (*host)->run(40);
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->completed, 40u);
    EXPECT_GT(stats->epochYields, 0u);
}

TEST(FaasHost, MultiWorkerMatchesSingleWorker)
{
    // The multithreaded scheduler must serve every request exactly once
    // and produce the same (order-independent) response checksum as the
    // single-worker run, for each pool-recycling strategy.
    const uint64_t kReqs = 48;
    uint64_t reference = 0;
    bool have_reference = false;
    for (bool deferred : {false, true}) {
        for (int workers : {1, 2, 4}) {
            FaasHost::Options opts;
            opts.maxConcurrent = 8;
            opts.workerThreads = workers;
            opts.deferredDecommit = deferred;
            opts.ioDelayMeanMs = 0.1;
            auto host = FaasHost::create(
                wkld::faasWorkloads()[0].make(), std::move(opts));
            ASSERT_TRUE(host.isOk()) << host.message();
            auto stats = (*host)->run(kReqs);
            ASSERT_TRUE(stats.isOk()) << stats.message();
            EXPECT_EQ(stats->completed, kReqs)
                << "workers=" << workers << " deferred=" << deferred;
            if (!have_reference) {
                reference = stats->checksum;
                have_reference = true;
            }
            EXPECT_EQ(stats->checksum, reference)
                << "workers=" << workers << " deferred=" << deferred;
            EXPECT_EQ((*host)->memoryPool().slotsInUse(), 0u);
        }
    }
}

TEST(FaasHost, WarmAffinityRecyclingHitsCache)
{
    FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.warmAffinity = true;
    opts.ioDelayMeanMs = 0.1;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[0].make(), std::move(opts));
    ASSERT_TRUE(host.isOk());
    auto stats = (*host)->run(32);
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->completed, 32u);
    // Per-request recycling goes through the warm cache, not decommit.
    EXPECT_GT((*host)->memoryPool().stats().warmHits, 0u);
}

TEST(FaasHost, PoolSlotsRecycledAcrossRuns)
{
    FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.ioDelayMeanMs = 0.1;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[1].make(), std::move(opts));
    ASSERT_TRUE(host.isOk());
    auto a = (*host)->run(8);
    ASSERT_TRUE(a.isOk());
    auto b = (*host)->run(8);
    ASSERT_TRUE(b.isOk());
    EXPECT_EQ((*host)->memoryPool().slotsInUse(), 0u);
}

TEST(FaasHost, OpenLoopServesAllAndRecordsLatency)
{
    const uint64_t kReqs = 64;
    FaasHost::Options opts;
    opts.maxConcurrent = 8;
    opts.workerThreads = 2;
    opts.ioDelayMeanMs = 0.1;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[0].make(), std::move(opts));
    ASSERT_TRUE(host.isOk()) << host.message();

    // Closed-loop reference checksum for the same request count.
    auto closed = (*host)->run(kReqs);
    ASSERT_TRUE(closed.isOk());

    LoadGenConfig load;
    load.ratePerSec = 2000;
    load.process = ArrivalProcess::Poisson;
    load.seed = 11;
    auto stats = (*host)->runOpenLoop(kReqs, load);
    ASSERT_TRUE(stats.isOk()) << stats.message();
    EXPECT_EQ(stats->completed, kReqs);
    EXPECT_EQ(stats->checksum, closed->checksum);
    EXPECT_DOUBLE_EQ(stats->offeredRps, 2000.0);

    // Every request lands in each reservoir exactly once.
    EXPECT_EQ(stats->latencyTotalNs.count(), kReqs);
    EXPECT_EQ(stats->latencyQueueNs.count(), kReqs);
    EXPECT_EQ(stats->latencyServiceNs.count(), kReqs);
    // Sojourn >= service for every request, so percentiles order too.
    EXPECT_GE(stats->latencyTotalNs.percentile(50),
              stats->latencyServiceNs.percentile(50) / 2);
    EXPECT_GT(stats->latencyTotalNs.max(), 0u);
    // Each request does ~100us of IO, so p50 sojourn can't be below it.
    EXPECT_GT(stats->latencyTotalNs.percentile(50), 50'000u);
}

TEST(FaasHost, OpenLoopDeterministicSchedule)
{
    // Same seed + rate => same arrival schedule => same checksum (the
    // checksum is order-independent, but completion must be total).
    uint64_t checksums[2];
    for (int i = 0; i < 2; i++) {
        FaasHost::Options opts;
        opts.maxConcurrent = 4;
        opts.workerThreads = 2;
        opts.ioDelayMeanMs = 0.1;
        auto host = FaasHost::create(
            wkld::faasWorkloads()[2].make(), std::move(opts));
        ASSERT_TRUE(host.isOk());
        LoadGenConfig load;
        load.ratePerSec = 5000;
        load.seed = 3;
        auto stats = (*host)->runOpenLoop(32, load);
        ASSERT_TRUE(stats.isOk());
        EXPECT_EQ(stats->completed, 32u);
        checksums[i] = stats->checksum;
    }
    EXPECT_EQ(checksums[0], checksums[1]);
}

TEST(FaasHost, ClosedLoopQueueLatencyNearZero)
{
    // Closed-loop mode has no arrival schedule: enqueue == claim time,
    // so the queue reservoir must record (near-)zero waits while the
    // total reservoir still sees real service time.
    FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.ioDelayMeanMs = 0.1;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[0].make(), std::move(opts));
    ASSERT_TRUE(host.isOk());
    auto stats = (*host)->run(16);
    ASSERT_TRUE(stats.isOk());
    EXPECT_EQ(stats->latencyTotalNs.count(), 16u);
    EXPECT_LT(stats->latencyQueueNs.percentile(50),
              stats->latencyTotalNs.percentile(50));
    EXPECT_EQ(stats->offeredRps, 0.0);
}

TEST(FaasHost, WarmReuseZeroesOnlyTouchedSpan)
{
    // Regression test for warm-reuse over-zeroing: FaaS workloads
    // declare a 1 MiB minimum memory but touch only a few KiB, so the
    // per-recycle zeroed span must stay far below the full slot size.
    FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.warmAffinity = true;
    opts.ioDelayMeanMs = 0.1;
    auto host = FaasHost::create(
        wkld::faasWorkloads()[0].make(), std::move(opts));
    ASSERT_TRUE(host.isOk());
    auto stats = (*host)->run(32);
    ASSERT_TRUE(stats.isOk());
    auto ps = (*host)->memoryPool().stats();
    ASSERT_GT(ps.warmZeroes, 0u);
    uint64_t slot_bytes = (*host)->memoryPool().layout().maxMemoryBytes;
    // Average zeroed bytes per warm reuse must be well under the slot's
    // 1 MiB committed size — the touched span, not the declared size.
    EXPECT_LT(ps.warmZeroedBytes / ps.warmZeroes, slot_bytes / 2)
        << "zeroed " << ps.warmZeroedBytes << " over " << ps.warmZeroes
        << " warm reuses (slot " << slot_bytes << ")";
}

}  // namespace
}  // namespace sfi::faas
