/**
 * @file
 * Concurrency storm for the transition tiers: many threads hammer
 * warm re-entries, direct calls, and batched entry scopes on
 * per-thread instances of one SharedModule, while the per-thread %gs
 * cache is thrashed from every thread at once. Labelled "stress"; run
 * under -DSFIKIT_SANITIZE=thread to check the cache's thread_local
 * isolation and the shared-module read paths.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "jit/compiler.h"
#include "runtime/instance.h"
#include "seg/seg.h"
#include "wasm/builder.h"

namespace sfi {
namespace {

using jit::CompilerConfig;
using wasm::ModuleBuilder;
using VT = wasm::ValType;

std::shared_ptr<const rt::SharedModule>
compileNop(const CompilerConfig& cfg)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("nop", {VT::I32}, {VT::I32});
    f.localGet(0).end();
    mb.exportFunc("nop", f.index());
    auto shared = rt::SharedModule::compile(std::move(mb).build(), cfg);
    EXPECT_TRUE(shared.isOk()) << shared.message();
    return *shared;
}

TEST(TransitionStress, ConcurrentTiersOnSharedModule)
{
    auto shared = compileNop(CompilerConfig::wamrSegue());
    constexpr int kThreads = 8;
    constexpr uint64_t kIters = 1500;
    constexpr uint64_t kBatch = 8;

    // Reference sum from a single-threaded run of the same schedule.
    auto schedule = [&](rt::Instance* inst) {
        uint64_t local = 0;
        auto de = inst->directEntry("nop");
        EXPECT_TRUE(de.direct());
        for (uint64_t i = 0; i < kIters; i++) {
            if (i % 3 == 0) {
                local += inst->call("nop", {i & 0xff}).value;
            } else if (i % 3 == 1) {
                local += de.call({i & 0xff}).value;
            } else {
                auto scope = inst->enter();
                for (uint64_t j = 0; j < kBatch; j++)
                    local += de.call({(i + j) & 0xff}).value;
            }
        }
        return local;
    };

    uint64_t expected = 0;
    {
        auto inst = rt::Instance::create(shared);
        ASSERT_TRUE(inst.isOk());
        expected = schedule(inst->get());
    }

    std::atomic<uint64_t> mismatches{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&] {
            auto inst = rt::Instance::create(shared);
            if (!inst.isOk() || schedule(inst->get()) != expected)
                mismatches.fetch_add(1);
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(mismatches.load(), 0u);
}

TEST(TransitionStress, GsCacheIsPerThread)
{
    // Every thread alternates between two instances (two bases): all
    // entries are cold for that thread no matter what the others do,
    // and the skip counters must never be polluted cross-thread.
    auto shared = compileNop(CompilerConfig::wamrSegue());
    constexpr int kThreads = 8;
    constexpr uint64_t kIters = 400;

    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&] {
            auto a = rt::Instance::create(shared);
            auto b = rt::Instance::create(shared);
            if (!a.isOk() || !b.isOk()) {
                failures.fetch_add(1);
                return;
            }
            for (uint64_t i = 0; i < kIters; i++) {
                (*a)->call("nop", {i & 0xff});
                (*b)->call("nop", {i & 0xff});
            }
            // Alternating bases: every entry writes, none skips.
            if ((*a)->gsSwitches() != kIters ||
                (*b)->gsSwitches() != kIters ||
                (*a)->gsSwitchesSkipped() + (*b)->gsSwitchesSkipped() !=
                    0)
                failures.fetch_add(1);
        });
    }
    for (auto& th : threads)
        th.join();
    EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace sfi
