/**
 * @file
 * Transition-tier tests (§6.4.1): the per-thread %gs cache (write-
 * through, explicit invalidation, fork invalidation), the Instance
 * transition counters across tiers, direct-entry vs generic-trampoline
 * equivalence on the registry workloads, batched entry scopes, and the
 * entry.contract verifier rule — positive stubs for every strategy and
 * hand-assembled negative fixtures that must fail closed.
 */
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "jit/compiler.h"
#include "jit/context.h"
#include "runtime/instance.h"
#include "seg/seg.h"
#include "verify/checker.h"
#include "wasm/builder.h"
#include "wkld/workloads.h"
#include "x64/assembler.h"

namespace sfi {
namespace {

using jit::CfiMode;
using jit::CompilerConfig;
using jit::MemStrategy;
using verify::Report;
using verify::Rule;
using wasm::ModuleBuilder;
using x64::AluOp;
using x64::Assembler;
using x64::Mem;
using x64::Reg;
using x64::Width;
using x64::Xmm;
using VT = wasm::ValType;

// ---------------------------------------------------------------------
// Per-thread %gs cache.
// ---------------------------------------------------------------------

alignas(64) uint8_t g_buf_a[64];
alignas(64) uint8_t g_buf_b[64];

/** Saves and restores the host %gs base around each cache test. */
class GsCache : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = seg::getGsBase(); }
    void TearDown() override { seg::setGsBase(saved_); }

  private:
    uint64_t saved_ = 0;
};

TEST_F(GsCache, WriteThroughAndWarmHit)
{
    uint64_t a = reinterpret_cast<uint64_t>(g_buf_a);
    uint64_t b = reinterpret_cast<uint64_t>(g_buf_b);
    seg::setGsBase(a);
    EXPECT_TRUE(seg::gsBaseCacheValid());
    EXPECT_TRUE(seg::enterGsBase(a));   // warm: write skipped
    EXPECT_FALSE(seg::enterGsBase(b));  // different base: write made
    EXPECT_EQ(seg::getGsBase(), b);
    EXPECT_TRUE(seg::enterGsBase(b));
}

TEST_F(GsCache, ExplicitInvalidationForcesWrite)
{
    uint64_t a = reinterpret_cast<uint64_t>(g_buf_a);
    seg::setGsBase(a);
    seg::invalidateGsBaseCache();
    EXPECT_FALSE(seg::gsBaseCacheValid());
    // Cold after invalidation even though the hardware already holds
    // the value: the cache must not guess.
    EXPECT_FALSE(seg::enterGsBase(a));
    EXPECT_TRUE(seg::enterGsBase(a));
}

TEST_F(GsCache, ReadRepopulates)
{
    uint64_t a = reinterpret_cast<uint64_t>(g_buf_a);
    seg::setGsBase(a);
    seg::invalidateGsBaseCache();
    EXPECT_EQ(seg::getGsBase(), a);  // hardware read...
    EXPECT_TRUE(seg::gsBaseCacheValid());
    EXPECT_TRUE(seg::enterGsBase(a));  // ...re-arms the warm path
}

TEST_F(GsCache, ForkChildStartsCold)
{
    uint64_t a = reinterpret_cast<uint64_t>(g_buf_a);
    seg::setGsBase(a);
    ASSERT_TRUE(seg::enterGsBase(a));

    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // The pthread_atfork handler must have dropped the cache: the
        // first entry performs the write, the second is warm again.
        bool cold = !seg::gsBaseCacheValid();
        bool wrote = !seg::enterGsBase(a);
        bool warm = seg::enterGsBase(a);
        _exit(cold && wrote && warm ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    // The parent's cache is untouched by the child.
    EXPECT_TRUE(seg::enterGsBase(a));
}

// ---------------------------------------------------------------------
// Instance transition counters across tiers.
// ---------------------------------------------------------------------

std::shared_ptr<const rt::SharedModule>
compileNop(const CompilerConfig& cfg)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("nop", {VT::I32}, {VT::I32});
    f.localGet(0).end();
    mb.exportFunc("nop", f.index());
    auto shared = rt::SharedModule::compile(std::move(mb).build(), cfg);
    EXPECT_TRUE(shared.isOk()) << shared.message();
    return *shared;
}

std::unique_ptr<rt::Instance>
makeInstance(std::shared_ptr<const rt::SharedModule> shared,
             rt::TransitionTier tier)
{
    rt::Instance::Options opts;
    opts.transitionTier = tier;
    auto inst =
        rt::Instance::create(std::move(shared), {}, std::move(opts));
    EXPECT_TRUE(inst.isOk()) << inst.message();
    return std::move(*inst);
}

TEST(TransitionTiers, WarmReentrySkipsGsWrite)
{
    auto inst = makeInstance(compileNop(CompilerConfig::wamrSegue()),
                             rt::TransitionTier::Lean);
    for (uint64_t i = 0; i < 5; i++)
        EXPECT_EQ(inst->call("nop", {i}).value, i);
    // First entry may or may not hit depending on the thread's prior
    // %gs state; every re-entry must.
    EXPECT_EQ(inst->gsSwitches() + inst->gsSwitchesSkipped(), 5u);
    EXPECT_GE(inst->gsSwitchesSkipped(), 4u);
}

TEST(TransitionTiers, CrossInstanceAlternationWrites)
{
    auto shared = compileNop(CompilerConfig::wamrSegue());
    auto a = makeInstance(shared, rt::TransitionTier::Lean);
    auto b = makeInstance(shared, rt::TransitionTier::Lean);
    // A freed instance from an earlier test can leave the cache holding
    // this instance's (recycled) base; drop it for determinism.
    seg::invalidateGsBaseCache();
    for (uint64_t i = 0; i < 2; i++) {
        a->call("nop", {i});
        b->call("nop", {i});
    }
    // Distinct memory bases: every alternating entry is a real switch.
    EXPECT_EQ(a->gsSwitches(), 2u);
    EXPECT_EQ(b->gsSwitches(), 2u);
    EXPECT_EQ(a->gsSwitchesSkipped() + b->gsSwitchesSkipped(), 0u);
}

TEST(TransitionTiers, FullTierAlwaysWritesAndRestores)
{
    uint64_t host_gs = seg::getGsBase();
    auto inst = makeInstance(compileNop(CompilerConfig::wamrSegue()),
                             rt::TransitionTier::Full);
    for (uint64_t i = 0; i < 3; i++)
        inst->call("nop", {i});
    EXPECT_EQ(inst->gsSwitches(), 3u);
    EXPECT_EQ(inst->gsSwitchesSkipped(), 0u);
    // The seed discipline: the host base is reinstated on every exit.
    EXPECT_EQ(seg::getGsBase(), host_gs);
}

TEST(TransitionTiers, BatchedScopeCountsOneTransition)
{
    auto inst = makeInstance(compileNop(CompilerConfig::wamrSegue()),
                             rt::TransitionTier::Lean);
    for (uint64_t i = 0; i < 3; i++)
        inst->call("nop", {i});
    EXPECT_EQ(inst->transitions(), 3u);

    auto de = inst->directEntry("nop");
    ASSERT_TRUE(de.direct());
    {
        auto scope = inst->enter();
        for (uint64_t i = 0; i < 5; i++)
            EXPECT_EQ(de.call({i}).value, i);
    }
    // Five batched calls amortize one entry.
    EXPECT_EQ(inst->transitions(), 4u);
}

// ---------------------------------------------------------------------
// Direct entry vs generic trampoline equivalence.
// ---------------------------------------------------------------------

std::vector<std::pair<const char*, CompilerConfig>>
allConfigs()
{
    return {
        {"native", CompilerConfig::native()},
        {"base", CompilerConfig::wamrBase()},
        {"segue", CompilerConfig::wamrSegue()},
        {"segue-loads", CompilerConfig::wamrSegueLoads()},
        {"bounds", {.mem = MemStrategy::BoundsCheck}},
        {"segue-bounds", {.mem = MemStrategy::SegueBounds}},
        {"lfi-base", CompilerConfig::lfiBase()},
        {"lfi-segue", CompilerConfig::lfiSegue()},
    };
}

/** Runs @p w via trampoline and via direct entry on fresh instances
 *  (identical initial state) and expects bit-identical results. */
void
expectDirectMatchesTrampoline(const wkld::Workload& w,
                              const CompilerConfig& cfg,
                              const char* cfg_name)
{
    auto shared = rt::SharedModule::compile(w.make(), cfg);
    ASSERT_TRUE(shared.isOk()) << shared.message();
    auto a = rt::Instance::create(*shared);
    auto b = rt::Instance::create(*shared);
    ASSERT_TRUE(a.isOk() && b.isOk());

    auto via_tramp = (*a)->call("run", {w.testScale});
    auto de = (*b)->directEntry("run");
    ASSERT_TRUE(de.direct()) << w.name;
    auto via_direct = de.call({w.testScale});

    ASSERT_TRUE(via_tramp.ok()) << w.name << "/" << cfg_name;
    ASSERT_TRUE(via_direct.ok()) << w.name << "/" << cfg_name;
    EXPECT_EQ(via_tramp.value, via_direct.value)
        << w.name << "/" << cfg_name;
}

TEST(DirectEquivalence, SightglassUnderSegue)
{
    for (const auto& w : wkld::sightglass())
        expectDirectMatchesTrampoline(w, CompilerConfig::wamrSegue(),
                                      "segue");
}

TEST(DirectEquivalence, PolyDhryUnderSegue)
{
    for (const auto& w : wkld::polydhry())
        expectDirectMatchesTrampoline(w, CompilerConfig::wamrSegue(),
                                      "segue");
}

TEST(DirectEquivalence, EveryStrategy)
{
    const auto& suite = wkld::sightglass();
    for (size_t i = 0; i < 3 && i < suite.size(); i++)
        for (const auto& [cfg_name, cfg] : allConfigs())
            expectDirectMatchesTrampoline(suite[i], cfg, cfg_name);
}

TEST(DirectEquivalence, BatchedSequenceMatchesTransient)
{
    // Same call sequence on two fresh instances: one transient entry
    // per call vs one scope over all calls. Workload state evolves
    // identically, so the value streams must match exactly.
    const auto& w = wkld::sightglass()[0];
    auto shared =
        rt::SharedModule::compile(w.make(), CompilerConfig::wamrSegue());
    ASSERT_TRUE(shared.isOk());
    auto a = rt::Instance::create(*shared);
    auto b = rt::Instance::create(*shared);
    ASSERT_TRUE(a.isOk() && b.isOk());

    std::vector<uint64_t> transient, batched;
    for (uint64_t i = 0; i < 3; i++)
        transient.push_back((*a)->call("run", {w.testScale}).value);
    auto de = (*b)->directEntry("run");
    ASSERT_TRUE(de.direct());
    {
        auto scope = (*b)->enter();
        for (uint64_t i = 0; i < 3; i++)
            batched.push_back(de.call({w.testScale}).value);
    }
    EXPECT_EQ(transient, batched);
}

TEST(DirectEquivalence, FallbackSignaturesStillWork)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto wide = mb.func("wide",
                        {VT::I32, VT::I32, VT::I32, VT::I32, VT::I32},
                        {VT::I32});
    wide.localGet(4).end();
    mb.exportFunc("wide", wide.index());
    auto fp = mb.func("fp", {VT::F64}, {VT::F64});
    fp.localGet(0).end();
    mb.exportFunc("fp", fp.index());
    auto shared = rt::SharedModule::compile(std::move(mb).build(),
                                            CompilerConfig::wamrSegue());
    ASSERT_TRUE(shared.isOk()) << shared.message();
    auto inst = rt::Instance::create(*shared);
    ASSERT_TRUE(inst.isOk());

    // Five params: one slot too many for the register stub.
    auto de_wide = (*inst)->directEntry("wide");
    EXPECT_FALSE(de_wide.direct());
    EXPECT_EQ(de_wide.call({1, 2, 3, 4, 5}).value, 5u);

    // f64 param: travels in xmm, only the marshal array carries it.
    auto de_fp = (*inst)->directEntry("fp");
    EXPECT_FALSE(de_fp.direct());
    uint64_t pi_bits = 0x400921fb54442d18ull;
    EXPECT_EQ(de_fp.call({pi_bits}).value, pi_bits);
}

// ---------------------------------------------------------------------
// entry.contract: positive stubs for every strategy.
// ---------------------------------------------------------------------

TEST(EntryContract, CompiledStubsProvenEveryStrategy)
{
    for (const auto& [cfg_name, base_cfg] : allConfigs()) {
        for (bool full_save : {false, true}) {
            CompilerConfig cfg = base_cfg;
            cfg.fullSaveEntry = full_save;
            auto shared = compileNop(cfg);
            Report rep = verify::checkModule(shared->code());
            EXPECT_TRUE(rep.ok())
                << cfg_name << " fullSave=" << full_save << "\n"
                << rep.summary();
            // Generic + direct trampoline both proven.
            EXPECT_EQ(rep.stats.entryStubs, 2u) << cfg_name;
        }
    }
}

// ---------------------------------------------------------------------
// entry.contract: hand-assembled negative fixtures (fail closed).
// ---------------------------------------------------------------------

Report
stubCheck(const Assembler& a, const CompilerConfig& cfg)
{
    return verify::checkEntryStub(a.code().data(), a.code().size(), cfg);
}

/** The checker stops at the first violation; it must carry the
 *  entry.contract rule id. */
void
expectContractViolation(const Report& rep)
{
    ASSERT_FALSE(rep.ok()) << rep.summary();
    ASSERT_GE(rep.violations.size(), 1u);
    for (const auto& v : rep.violations)
        EXPECT_STREQ(name(v.rule), "entry.contract") << rep.summary();
    EXPECT_EQ(rep.stats.entryStubs, 0u);
}

TEST(EntryContractRejects, MinimalLeanStubAccepted)
{
    // Reference shape the negative fixtures are mutations of.
    Assembler a;
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.callReg(Reg::r11);
    a.movqFromXmm(Reg::rdx, Xmm::xmm0);
    a.pop(Reg::r14);
    a.ret();
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.entryStubs, 1u);
}

TEST(EntryContractRejects, CtxClobberWithoutSave)
{
    Assembler a;
    a.mov(Width::W64, Reg::r14, Reg::rdi);  // no push %r14 first
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, MissingHeapPin)
{
    // BaseReg requires %r15 = ctx->memBase before the call.
    Assembler a;
    a.push(Reg::r14);
    a.push(Reg::r15);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);
    a.callReg(Reg::r11);
    Report rep = stubCheck(a, CompilerConfig::wamrBase());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, MissingLfiCodePin)
{
    Assembler a;
    a.push(Reg::r14);
    a.push(Reg::r13);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);
    a.callReg(Reg::r11);
    Report rep = stubCheck(a, CompilerConfig::lfiSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, MisalignedCallSite)
{
    Assembler a;
    a.push(Reg::r14);  // odd push count: already aligned...
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);  // ...pad breaks it
    a.callReg(Reg::r11);
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, MissingCalleeSavedRestore)
{
    Assembler a;
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.callReg(Reg::r11);
    a.ret();  // exits with %r14 still holding the sandbox context
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, PopsOutOfOrder)
{
    Assembler a;
    a.push(Reg::rbx);
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 8);
    a.callReg(Reg::r11);
    a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 8);
    a.pop(Reg::rbx);  // must be %r14 first (reverse order)
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, UnbalancedRspAtRet)
{
    Assembler a;
    a.push(Reg::r14);
    a.aluImm(AluOp::Sub, Width::W64, Reg::rsp, 16);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.callReg(Reg::r11);  // depth 8+8+16 = 32: aligned
    a.aluImm(AluOp::Add, Width::W64, Reg::rsp, 8);  // half undone
    a.pop(Reg::r14);
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, InstructionAfterRet)
{
    Assembler a;
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.callReg(Reg::r11);
    a.pop(Reg::r14);
    a.ret();
    a.nop();  // trailing reachable bytes are not part of the contract
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, InstructionOutsideSubset)
{
    Assembler a;
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    // A store before sandbox entry is never part of a trusted stub.
    a.store(Width::W64, Mem::baseDisp(Reg::r14, 0), Reg::rax);
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, RspWrittenDirectly)
{
    Assembler a;
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::rsp, Reg::rbp);
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

TEST(EntryContractRejects, ArgSlotLoadOutOfBounds)
{
    Assembler a;
    a.push(Reg::r14);
    a.mov(Width::W64, Reg::r14, Reg::rdi);
    a.mov(Width::W64, Reg::r11, Reg::rsi);
    a.mov(Width::W64, Reg::r10, Reg::rdx);
    // One slot past the 10-slot marshal array.
    a.load(Width::W64, false, Reg::rdi, Mem::baseDisp(Reg::r10, 80));
    Report rep = stubCheck(a, CompilerConfig::wamrSegue());
    expectContractViolation(rep);
}

}  // namespace
}  // namespace sfi
