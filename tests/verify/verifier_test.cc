/**
 * @file
 * Static SFI verifier tests.
 *
 * Three layers:
 *  1. Checker-mechanics tests: hand-assembled *conforming* sequences
 *     (bounds-check domination, the LFI mask/epilogue patterns) that
 *     must be accepted with the right proof statistics.
 *  2. Negative fixtures: hand-assembled *violating* sequences, each
 *     rejected with its specific rule id — the fail-closed property.
 *  3. The full positive matrix: every registered workload compiled
 *     under every sandboxing strategy x CFI mode must verify clean.
 */
#include "verify/checker.h"

#include <gtest/gtest.h>

#include "jit/compiler.h"
#include "verify/decoder.h"
#include "wasm/builder.h"
#include "wkld/workloads.h"
#include "x64/assembler.h"

namespace sfi::verify {
namespace {

using jit::CfiMode;
using jit::CompilerConfig;
using jit::MemStrategy;
using wasm::ModuleBuilder;
using x64::AluOp;
using x64::Assembler;
using x64::Cond;
using x64::Mem;
using x64::Reg;
using x64::Width;
using VT = wasm::ValType;

Report
check(const Assembler& a, const CompilerConfig& cfg)
{
    return checkFunction(a.code().data(), a.code().size(), cfg);
}

/** Expects exactly one violation carrying @p rule. */
void
expectRule(const Report& rep, Rule rule)
{
    ASSERT_EQ(rep.violations.size(), 1u) << rep.summary();
    EXPECT_STREQ(name(rep.violations[0].rule), name(rule))
        << rep.summary();
}

// ---------------------------------------------------------------------
// 1. Conforming hand-assembled sequences.
// ---------------------------------------------------------------------

TEST(CheckerAccepts, BoundsCheckDomination)
{
    // lea rax, [rcx+8]; cmp rax, ctx->memSize; ja <trap>;
    // store [r15 + rcx + 4] (4 bytes: extent 4+4 = 8 is covered).
    Assembler a;
    auto out = a.newLabel();
    a.lea(Width::W64, Reg::rax, Mem::baseDisp(Reg::rcx, 8));
    a.aluMem(AluOp::Cmp, Width::W64, Reg::rax,
             Mem::baseDisp(Reg::r14, 8));
    a.jcc(Cond::A, out);
    a.store(Width::W32, Mem::baseIndex(Reg::r15, Reg::rcx, 1, 4),
            Reg::rdx);
    a.ret();
    a.bind(out);  // at end-of-buffer: an out-of-function trap exit

    Report rep = check(a, CompilerConfig{.mem = MemStrategy::BoundsCheck});
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.boundsChecked, 1u);
    EXPECT_EQ(rep.stats.heapBaseReg, 1u);
}

TEST(CheckerAccepts, SegueBoundsDomination)
{
    Assembler a;
    auto out = a.newLabel();
    a.lea(Width::W64, Reg::rax, Mem::baseDisp(Reg::rcx, 12));
    a.aluMem(AluOp::Cmp, Width::W64, Reg::rax,
             Mem::baseDisp(Reg::r14, 8));
    a.jcc(Cond::A, out);
    Mem m = Mem::baseDisp(Reg::rcx, 4);
    m.seg = x64::Seg::Gs;
    a.store(Width::W64, m, Reg::rdx);
    a.ret();
    a.bind(out);

    Report rep = check(a, CompilerConfig{.mem = MemStrategy::SegueBounds});
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.boundsChecked, 1u);
    EXPECT_EQ(rep.stats.heapGs, 1u);
}

TEST(CheckerAccepts, BoundsSurviveFigure1bTruncation)
{
    // LFI order of operations: limit check on the 64-bit index, THEN
    // the explicit truncation (which only shrinks the value), then the
    // access. The bound must survive the self-truncating mov.
    Assembler a;
    auto out = a.newLabel();
    a.lea(Width::W64, Reg::rax, Mem::baseDisp(Reg::rcx, 8));
    a.aluMem(AluOp::Cmp, Width::W64, Reg::rax,
             Mem::baseDisp(Reg::r14, 8));
    a.jcc(Cond::A, out);
    a.mov(Width::W32, Reg::rcx, Reg::rcx);  // Figure 1b truncation
    a.store(Width::W32, Mem::baseIndex(Reg::r15, Reg::rcx, 1, 4),
            Reg::rdx);
    a.ud2();
    a.bind(out);

    CompilerConfig cfg{.mem = MemStrategy::BoundsCheck,
                       .cfi = CfiMode::Lfi,
                       .untrustedIndexRegs = true};
    Report rep = check(a, cfg);
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.boundsChecked, 1u);
    EXPECT_EQ(rep.stats.indexProvenU32, 1u);
}

TEST(CheckerAccepts, LfiProtectedReturn)
{
    Assembler a;
    a.push(Reg::rbp);
    a.mov(Width::W64, Reg::rbp, Reg::rsp);
    a.mov(Width::W64, Reg::rsp, Reg::rbp);
    a.pop(Reg::rbp);
    a.pop(Reg::rcx);
    a.alu(AluOp::Sub, Width::W64, Reg::rcx, Reg::r13);
    a.mov(Width::W32, Reg::rcx, Reg::rcx);
    a.alu(AluOp::Add, Width::W64, Reg::rcx, Reg::r13);
    a.jmpReg(Reg::rcx);

    Report rep = check(a, CompilerConfig::lfiBase());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.protectedReturns, 1u);
}

TEST(CheckerAccepts, LfiMaskedIndirectCall)
{
    // Table entry loaded through a trusted context pointer, then
    // masked into the code region before the call.
    Assembler a;
    a.load(Width::W64, false, Reg::r11, Mem::baseDisp(Reg::r14, 48));
    a.load(Width::W64, false, Reg::r11,
           Mem::baseIndex(Reg::r11, Reg::rax, 8, 0));
    a.alu(AluOp::Sub, Width::W64, Reg::r11, Reg::r13);
    a.mov(Width::W32, Reg::r11, Reg::r11);
    a.alu(AluOp::Add, Width::W64, Reg::r11, Reg::r13);
    a.callReg(Reg::r11);
    a.ud2();

    Report rep = check(a, CompilerConfig::lfiBase());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.maskedIndirects, 1u);
    EXPECT_EQ(rep.stats.trustedAccesses, 1u);
}

TEST(CheckerAccepts, LfiTrustedRuntimeCall)
{
    // Function pointers loaded straight from JitContext (trapFn,
    // hostFn, epochFn...) are trusted call targets.
    Assembler a;
    a.load(Width::W64, false, Reg::rax, Mem::baseDisp(Reg::r14, 72));
    a.callReg(Reg::rax);
    a.ud2();

    Report rep = check(a, CompilerConfig::lfiSegue());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.trustedIndirects, 1u);
}

TEST(CheckerAccepts, SegueFigure1c)
{
    // One-instruction Segue access: 0x65 gs override + 0x67 32-bit EA.
    Assembler a;
    a.load(Width::W32, false, Reg::rdx, Mem::gs32(Reg::rbx, 16));
    a.ud2();

    Report rep = check(a, CompilerConfig::lfiSegue());
    EXPECT_TRUE(rep.ok()) << rep.summary();
    EXPECT_EQ(rep.stats.heapGs, 1u);
    EXPECT_EQ(rep.stats.heapGsEa32, 1u);
}

// ---------------------------------------------------------------------
// 2. Negative fixtures — each rejected with its distinct rule id.
// ---------------------------------------------------------------------

TEST(CheckerRejects, RawLoadWithoutGsUnderSegue)
{
    Assembler a;
    a.load(Width::W32, false, Reg::rax, Mem::baseDisp(Reg::rbx, 8));
    a.ret();
    expectRule(check(a, CompilerConfig::wamrSegue()),
               Rule::SegueLoadNoGs);
}

TEST(CheckerRejects, RawStoreWithoutGsUnderSegue)
{
    Assembler a;
    a.store(Width::W32, Mem::baseDisp(Reg::rbx, 8), Reg::rax);
    a.ret();
    expectRule(check(a, CompilerConfig::wamrSegue()),
               Rule::SegueStoreNoGs);
}

TEST(CheckerRejects, HeapBaseClobberMidFunction)
{
    Assembler a;
    a.movImm32(Reg::r15, 5);
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()),
               Rule::PinnedWrite);
}

TEST(CheckerRejects, CodeBaseClobberUnderLfi)
{
    Assembler a;
    a.movImm64(Reg::r13, 0x1234);
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiBase()), Rule::PinnedWrite);
}

TEST(CheckerRejects, CtxClobber)
{
    Assembler a;
    a.alu(AluOp::Add, Width::W64, Reg::r14, Reg::rax);
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()), Rule::PinnedWrite);
}

TEST(CheckerRejects, StoreWithoutBoundsCheck)
{
    Assembler a;
    a.store(Width::W32, Mem::baseIndex(Reg::r15, Reg::rcx, 1, 0),
            Reg::rdx);
    a.ret();
    expectRule(check(a, CompilerConfig{.mem = MemStrategy::BoundsCheck}),
               Rule::BoundsMissing);
}

TEST(CheckerRejects, BoundsCheckTooNarrow)
{
    // The limit compare covers 4 bytes at disp 0, but the access reads
    // 8 bytes at disp 4: extent not dominated.
    Assembler a;
    auto out = a.newLabel();
    a.lea(Width::W64, Reg::rax, Mem::baseDisp(Reg::rcx, 4));
    a.aluMem(AluOp::Cmp, Width::W64, Reg::rax,
             Mem::baseDisp(Reg::r14, 8));
    a.jcc(Cond::A, out);
    a.store(Width::W64, Mem::baseIndex(Reg::r15, Reg::rcx, 1, 4),
            Reg::rdx);
    a.ret();
    a.bind(out);
    expectRule(check(a, CompilerConfig{.mem = MemStrategy::BoundsCheck}),
               Rule::BoundsMissing);
}

TEST(CheckerRejects, UntruncatedIndirectCallUnderLfi)
{
    Assembler a;
    a.callReg(Reg::r11);
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiSegue()),
               Rule::LfiCallUnmasked);
}

TEST(CheckerRejects, PartiallyMaskedCallUnderLfi)
{
    // sub/add without the 32-bit truncation in between: the "mask"
    // is the identity, so the target is NOT confined to code.
    Assembler a;
    a.alu(AluOp::Sub, Width::W64, Reg::r11, Reg::r13);
    a.alu(AluOp::Add, Width::W64, Reg::r11, Reg::r13);
    a.callReg(Reg::r11);
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiBase()),
               Rule::LfiCallUnmasked);
}

TEST(CheckerRejects, PlainRetUnderLfi)
{
    Assembler a;
    a.ret();
    expectRule(check(a, CompilerConfig::lfiBase()),
               Rule::LfiRetUnprotected);
}

TEST(CheckerRejects, UnmaskedJmpRegUnderLfi)
{
    Assembler a;
    a.pop(Reg::rcx);
    a.jmpReg(Reg::rcx);
    expectRule(check(a, CompilerConfig::lfiBase()),
               Rule::LfiJmpUnmasked);
}

TEST(CheckerRejects, GsAccessUnderBaseReg)
{
    Assembler a;
    a.load(Width::W32, false, Reg::rax, Mem::gs32(Reg::rbx, 0));
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()),
               Rule::GsUnexpected);
}

TEST(CheckerRejects, MissingEa32UnderLfiSegue)
{
    // gs-prefixed but with a 64-bit effective address: an untrusted
    // 64-bit index escapes the 4 GiB window (needs Figure 1c's 0x67).
    Assembler a;
    Mem m = Mem::baseDisp(Reg::rbx, 4);
    m.seg = x64::Seg::Gs;
    a.load(Width::W32, false, Reg::rax, m);
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiSegue()),
               Rule::SegueIndexNotTruncated);
}

TEST(CheckerRejects, UntruncatedIndexUnderLfiBase)
{
    Assembler a;
    a.load(Width::W32, false, Reg::rax,
           Mem::baseIndex(Reg::r15, Reg::rbx, 1, 0));
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiBase()),
               Rule::BaseRegIndexNotTruncated);
}

TEST(CheckerRejects, ScaledHeapIndex)
{
    // scale > 1 can push a clean u32 index past the guard region.
    Assembler a;
    a.load(Width::W64, false, Reg::rax,
           Mem::baseIndex(Reg::r15, Reg::rcx, 8, 0));
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()),
               Rule::BaseRegShape);
}

TEST(CheckerRejects, NegativeHeapDisplacement)
{
    Assembler a;
    a.load(Width::W64, false, Reg::rax,
           Mem::baseIndex(Reg::r15, Reg::rcx, 1, -8));
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()),
               Rule::BaseRegShape);
}

TEST(CheckerRejects, UnclassifiableMemoryOperand)
{
    Assembler a;
    a.load(Width::W64, false, Reg::rax, Mem::baseDisp(Reg::rbx, 0));
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()),
               Rule::MemUnproven);
}

TEST(CheckerRejects, StackPointerHijack)
{
    Assembler a;
    a.mov(Width::W64, Reg::rsp, Reg::rcx);
    a.ret();
    expectRule(check(a, CompilerConfig::wamrBase()),
               Rule::StackDiscipline);
}

TEST(CheckerRejects, UndecodableBytes)
{
    const uint8_t bytes[] = {0x0f, 0x05};  // syscall
    Report rep = checkFunction(bytes, sizeof bytes,
                               CompilerConfig::wamrBase());
    expectRule(rep, Rule::DecodeError);
}

TEST(CheckerRejects, BranchIntoInstruction)
{
    // Raw rel32 jumping one byte into the middle of a movabs.
    std::vector<uint8_t> code = {
        0xe9, 0x01, 0x00, 0x00, 0x00,              // jmp +1 (into movabs)
        0x48, 0xb8, 1, 2, 3, 4, 5, 6, 7, 8,        // movabs rax, imm64
        0xc3,                                      // ret
    };
    Report rep = checkFunction(code.data(), code.size(),
                               CompilerConfig::wamrBase());
    expectRule(rep, Rule::BadBranchTarget);
}

TEST(CheckerRejects, TrustDoesNotSurviveDereference)
{
    // A value loaded *through* a trusted pointer is sandbox-controlled
    // (e.g. a table entry) and must not be callable unmasked.
    Assembler a;
    a.load(Width::W64, false, Reg::r11, Mem::baseDisp(Reg::r14, 48));
    a.load(Width::W64, false, Reg::r11,
           Mem::baseIndex(Reg::r11, Reg::rax, 8, 0));
    a.callReg(Reg::r11);
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiBase()),
               Rule::LfiCallUnmasked);
}

TEST(CheckerRejects, TrustKilledByArithmetic)
{
    // Offsetting a trusted pointer forfeits its trust.
    Assembler a;
    a.load(Width::W64, false, Reg::rax, Mem::baseDisp(Reg::r14, 72));
    a.alu(AluOp::Add, Width::W64, Reg::rax, Reg::rbx);
    a.callReg(Reg::rax);
    a.ud2();
    expectRule(check(a, CompilerConfig::lfiBase()),
               Rule::LfiCallUnmasked);
}

// ---------------------------------------------------------------------
// 3. The positive matrix: every workload x every strategy verifies.
// ---------------------------------------------------------------------

std::vector<CompilerConfig>
allSandboxConfigs()
{
    std::vector<CompilerConfig> v;
    const MemStrategy mems[] = {
        MemStrategy::BaseReg,     MemStrategy::Segue,
        MemStrategy::SegueLoadsOnly, MemStrategy::BoundsCheck,
        MemStrategy::SegueBounds,
    };
    for (MemStrategy m : mems)
        for (CfiMode c : {CfiMode::None, CfiMode::Lfi})
            v.push_back(CompilerConfig{
                .mem = m,
                .cfi = c,
                .untrustedIndexRegs = c == CfiMode::Lfi});
    v.push_back(CompilerConfig::native());  // decode-only exemption
    return v;
}

void
verifySuite(const std::vector<wkld::Workload>& suite)
{
    for (const auto& w : suite) {
        wasm::Module m = w.make();
        for (const CompilerConfig& cfg : allSandboxConfigs()) {
            auto cm = jit::compile(m, cfg);
            ASSERT_TRUE(cm.isOk()) << w.name << ": " << cm.message();
            Report rep = checkModule(*cm);
            EXPECT_TRUE(rep.ok())
                << w.suite << "/" << w.name << " under "
                << jit::name(cfg.mem) << "/" << jit::name(cfg.cfi)
                << "\n"
                << rep.summary();
            EXPECT_GT(rep.stats.instructions, 0u);
        }
    }
}

TEST(VerifyWorkloads, Sightglass) { verifySuite(wkld::sightglass()); }
TEST(VerifyWorkloads, Spec17) { verifySuite(wkld::spec17()); }
TEST(VerifyWorkloads, Polydhry) { verifySuite(wkld::polydhry()); }
TEST(VerifyWorkloads, Faas) { verifySuite(wkld::faasWorkloads()); }

TEST(VerifyWorkloads, EpochChecksVerify)
{
    // Epoch interruption adds trusted-callback codegen at loop heads.
    wasm::Module m = wkld::sightglass()[0].make();
    for (CompilerConfig cfg :
         {CompilerConfig::wamrSegue(), CompilerConfig::lfiBase()}) {
        cfg.epochChecks = true;
        auto cm = jit::compile(m, cfg);
        ASSERT_TRUE(cm.isOk()) << cm.message();
        Report rep = checkModule(*cm);
        EXPECT_TRUE(rep.ok()) << rep.summary();
    }
}

TEST(VerifyWorkloads, StatsReflectStrategy)
{
    ModuleBuilder mb;
    mb.memory(1, 2);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    f.localGet(0).localGet(0).i32Store(16)
        .localGet(0).i32Load(16).i64ExtendI32U()
        .end();
    mb.exportFunc("run", f.index());
    wasm::Module m = std::move(mb).build();

    auto stats = [&](const CompilerConfig& cfg) {
        auto cm = jit::compile(m, cfg);
        SFI_CHECK(cm.isOk());
        Report rep = checkModule(*cm);
        EXPECT_TRUE(rep.ok()) << rep.summary();
        return rep.stats;
    };

    Stats segue = stats(CompilerConfig::wamrSegue());
    EXPECT_GT(segue.heapGs, 0u);
    EXPECT_EQ(segue.heapBaseReg, 0u);

    Stats base = stats(CompilerConfig::wamrBase());
    EXPECT_GT(base.heapBaseReg, 0u);
    EXPECT_EQ(base.heapGs, 0u);

    Stats split = stats(CompilerConfig::wamrSegueLoads());
    EXPECT_GT(split.heapGs, 0u);      // the load
    EXPECT_GT(split.heapBaseReg, 0u); // the store

    Stats bounds = stats(CompilerConfig{.mem = MemStrategy::BoundsCheck});
    EXPECT_GT(bounds.boundsChecked, 0u);

    Stats lfi = stats(CompilerConfig::lfiSegue());
    EXPECT_GT(lfi.heapGsEa32, 0u);          // Figure 1c encodings
    EXPECT_GT(lfi.protectedReturns, 0u);    // masked epilogue

    Stats native = stats(CompilerConfig::native());
    EXPECT_GT(native.heapUnsandboxed, 0u);
    EXPECT_EQ(native.heapGs, 0u);
}

}  // namespace
}  // namespace sfi::verify
