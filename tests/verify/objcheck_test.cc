/**
 * @file
 * ELF object checker (verify/objcheck.h) against real build artifacts:
 *
 *  - negative fixtures (fixtures/w2c_negative.s): each hand-assembled
 *    policy kernel must fail under its exact stable rule id — never
 *    slip through as verified;
 *  - property test over the build's own sfikit_w2c objects: every
 *    policy x kernel instantiation present in the symbol tables is
 *    analyzed and verified, zero symbols silently skipped, NativePolicy
 *    the single explicit exemption;
 *  - sfi-verify CLI exit codes: 0 verified / 1 violation / 2 usage /
 *    3 could-not-parse-or-vacuous, so the ctest gate cannot pass on a
 *    malformed object or an empty filter.
 *
 * The harness passes the artifact paths on the command line (see
 * tests/CMakeLists.txt): --tool <sfi-verify> --fixtures <obj>...
 * --w2c <obj>...
 */
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "elf/object.h"
#include "verify/objcheck.h"

namespace sfi::verify {
namespace {

std::string gTool;
std::vector<std::string> gFixtures;
std::vector<std::string> gW2cObjs;

Result<ObjReport>
check(const std::string& path)
{
    auto obj = elf::ElfObject::load(path.c_str());
    if (!obj.isOk())
        return Status::error(obj.message());
    return checkObject(*obj);
}

/** Rules hit per function, aggregated over the report's violations. */
std::map<std::string, std::set<Rule>>
rulesByFunction(const ObjReport& rep)
{
    std::map<std::string, std::set<Rule>> out;
    for (const Violation& v : rep.violations)
        out[v.func].insert(v.rule);
    return out;
}

TEST(ObjcheckFixtures, EachNegativeFailsUnderItsRule)
{
    ASSERT_FALSE(gFixtures.empty()) << "--fixtures not passed";
    for (const std::string& path : gFixtures) {
        auto rep = check(path);
        ASSERT_TRUE(rep.isOk()) << path << ": " << rep.message();
        auto rules = rulesByFunction(*rep);

        const struct
        {
            const char* fn;  // distinctive mangled-name fragment
            Rule rule;
        } kExpect[] = {
            {"fixGsStray", Rule::W2cGsAccess},
            {"fixGsU32", Rule::W2cGsAccess},
            {"fixUncheck", Rule::W2cBoundsDominate},
            {"fixGsUncheck", Rule::W2cBoundsDominate},
            {"fixIndirect", Rule::W2cCfgResolved},
            {"fixEscape", Rule::W2cHeapEscape},
            {"fixDecode", Rule::DecodeError},
        };
        for (const auto& e : kExpect) {
            bool found = false;
            for (const auto& [fn, rs] : rules) {
                if (fn.find(e.fn) == std::string::npos ||
                    // fixUncheck is a substring of fixGsUncheck: demand
                    // the fragment is preceded by its length prefix.
                    fn.find(std::to_string(std::string(e.fn).size()) +
                            e.fn) == std::string::npos)
                    continue;
                found = true;
                EXPECT_TRUE(rs.count(e.rule))
                    << fn << " did not fire " << name(e.rule);
            }
            EXPECT_TRUE(found) << "fixture " << e.fn << " missing from "
                               << path;
        }

        // Fail-closed: no negative fixture may read as verified.
        for (const ObjFunctionResult& f : rep->functions) {
            EXPECT_FALSE(f.exempt) << f.name;
            EXPECT_GT(f.violations, 0u) << f.name << " passed verification";
        }
        EXPECT_EQ(rep->verified, 0u);
    }
}

TEST(ObjcheckFixtures, DecodeRejectCarriesOffsetAndHexWindow)
{
    ASSERT_FALSE(gFixtures.empty());
    auto rep = check(gFixtures.front());
    ASSERT_TRUE(rep.isOk()) << rep.message();
    bool found = false;
    for (const Violation& v : rep->violations) {
        if (v.rule != Rule::DecodeError)
            continue;
        found = true;
        EXPECT_NE(v.func.find("fixDecode"), std::string::npos);
        // The insn field holds the raw-byte window for decode errors;
        // the fixture's poison byte is 0x06.
        EXPECT_NE(v.insn.find("06"), std::string::npos) << v.insn;
    }
    EXPECT_TRUE(found) << "no DecodeError reported for fixDecode";
}

TEST(ObjcheckProperty, EveryPolicyKernelInstantiationVerifies)
{
    if (gW2cObjs.empty())
        GTEST_SKIP() << "w2c objects not passed (sanitizer build: "
                        "instrumented kernels are outside the "
                        "constrained-codegen contract)";
    uint64_t perPolicy[6] = {};
    uint64_t analyzed = 0;
    for (const std::string& path : gW2cObjs) {
        auto obj = elf::ElfObject::load(path.c_str());
        ASSERT_TRUE(obj.isOk()) << path << ": " << obj.message();
        auto rep = checkObject(*obj);
        ASSERT_TRUE(rep.isOk()) << path << ": " << rep.message();
        EXPECT_TRUE(rep->ok()) << path << ":\n" << rep->summary();

        // Inventory completeness: every policy-mangled function symbol
        // in the object appears in the report exactly once — a symbol
        // the checker silently skipped would be an unverified kernel
        // shipping under a verified banner.
        std::map<std::string, int> reported;
        for (const ObjFunctionResult& f : rep->functions)
            reported[f.name]++;
        uint64_t policySyms = 0;
        for (const elf::FuncSlice& f : obj->functions()) {
            W2cPolicy p = policyOf(f.name);
            if (p == W2cPolicy::None)
                continue;
            policySyms++;
            EXPECT_EQ(reported[f.name], 1)
                << path << ": " << f.name << " skipped or duplicated";
        }
        EXPECT_EQ(policySyms, rep->functions.size()) << path;

        for (const ObjFunctionResult& f : rep->functions) {
            // NativePolicy is the single allowed exemption, and it must
            // be explicit; everything else is analyzed and clean.
            EXPECT_EQ(f.exempt, f.policy == W2cPolicy::Native) << f.name;
            if (!f.exempt) {
                EXPECT_EQ(f.violations, 0u) << f.name;
                EXPECT_GT(f.instructions, 0u) << f.name;
                analyzed++;
            }
            perPolicy[static_cast<int>(f.policy)]++;
        }
    }
    // Every SFI policy is instantiated somewhere in the build.
    for (W2cPolicy p : {W2cPolicy::BaseAdd, W2cPolicy::Segue,
                        W2cPolicy::Bounds, W2cPolicy::SegueBounds})
        EXPECT_GT(perPolicy[static_cast<int>(p)], 0u) << name(p);
    EXPECT_GE(analyzed, 30u) << "suspiciously few kernels analyzed";
}

TEST(ObjcheckProperty, KernellessObjectIsOkNotAnError)
{
    // heap.cc.o (runtime support, no policy templates) must not turn
    // the audit into an error; vacuity is judged across the whole
    // audit by the CLI.
    if (gW2cObjs.empty())
        GTEST_SKIP() << "w2c objects not passed (sanitizer build)";
    for (const std::string& path : gW2cObjs) {
        auto rep = check(path);
        ASSERT_TRUE(rep.isOk()) << path << ": " << rep.message();
    }
}

int
runTool(const std::string& args)
{
    std::string cmd = gTool + " " + args + " >/dev/null 2>&1";
    int rc = std::system(cmd.c_str());
    return rc < 0 ? rc : WEXITSTATUS(rc);
}

TEST(SfiVerifyCli, ExitCodesAreDistinct)
{
    ASSERT_FALSE(gTool.empty()) << "--tool not passed";
    ASSERT_FALSE(gFixtures.empty());

    EXPECT_EQ(runTool("--quiet --elf " + gFixtures.front()), 1)
        << "violations";
    EXPECT_EQ(runTool("--bogus-flag"), 2) << "usage";
    EXPECT_EQ(runTool("--quiet --elf /nonexistent/no.o"), 3)
        << "unreadable object";
    // A filter matching nothing must refuse the vacuous pass (the
    // fixture object has no NativePolicy symbols, so nothing matches).
    EXPECT_EQ(runTool("--quiet --policy-filter nosuchpolicy --elf " +
                      gFixtures.front()),
              3)
        << "vacuous filter";

    if (gW2cObjs.empty())
        GTEST_SKIP() << "w2c objects not passed (sanitizer build)";
    std::string allW2c;
    for (const std::string& o : gW2cObjs)
        allW2c += " --elf " + o;
    EXPECT_EQ(runTool("--quiet" + allW2c), 0) << "clean objects";
}

}  // namespace
}  // namespace sfi::verify

int
main(int argc, char** argv)
{
    testing::InitGoogleTest(&argc, argv);
    using sfi::verify::gFixtures;
    using sfi::verify::gTool;
    using sfi::verify::gW2cObjs;
    std::vector<std::string>* sink = nullptr;
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--tool" && i + 1 < argc) {
            gTool = argv[++i];
            sink = nullptr;
        } else if (a == "--fixtures") {
            sink = &gFixtures;
        } else if (a == "--w2c") {
            sink = &gW2cObjs;
        } else if (sink) {
            // CMake passes $<TARGET_OBJECTS:...> as one ;-joined
            // argument; accept both spellings.
            size_t pos = 0;
            while (pos <= a.size()) {
                size_t sep = a.find(';', pos);
                if (sep == std::string::npos)
                    sep = a.size();
                if (sep > pos)
                    sink->push_back(a.substr(pos, sep - pos));
                pos = sep + 1;
            }
        }
    }
    return RUN_ALL_TESTS();
}
