# ctest driver for the sfi_verify_w2c tier-1 gate: expands the ;-joined
# object list (add_test cannot splice a generator-expression list into
# separate arguments) into repeated --elf flags and fails on any
# non-zero exit — violation (1) and vacuous/unparsable audit (3) alike.
if(NOT TOOL OR NOT OBJS)
  message(FATAL_ERROR "usage: cmake -DTOOL=<sfi-verify> -DOBJS=<o1;o2;..> -P run_sfi_verify.cmake")
endif()
set(args --quiet)
foreach(obj IN LISTS OBJS)
  list(APPEND args --elf ${obj})
endforeach()
execute_process(COMMAND ${TOOL} ${args} RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${TOOL} exited ${rc}: w2c policy kernels failed static SFI verification")
endif()
