# Hand-assembled negative fixtures for the ELF object checker
# (verify/objcheck.h): each function carries a policy-mangled name the
# checker keys off and violates exactly one SFI proof obligation, so
# tests/verify/objcheck_test.cc can assert the precise stable rule id
# fires (and that no negative slips through as "verified").
#
# The manglings mimic real kernel instantiations
# (_ZN3sfi3w2c<len><name>INS0_<len><Policy>EEEj RKT_ j ...): policyOf()
# matches on the length-prefixed policy token, and the trailing 'j'
# return type keeps the sret detection off, so the policy reference
# arrives in %rdi exactly as in compiler output.

	.text

# ---- w2c.gs_access: stray %gs access in a non-Segue kernel ----------
	.globl	_ZN3sfi3w2c10fixGsStrayINS0_12BoundsPolicyEEEjRKT_j
	.type	_ZN3sfi3w2c10fixGsStrayINS0_12BoundsPolicyEEEjRKT_j,@function
_ZN3sfi3w2c10fixGsStrayINS0_12BoundsPolicyEEEjRKT_j:
	movl	%gs:(%rsi), %eax
	ret
	.size	_ZN3sfi3w2c10fixGsStrayINS0_12BoundsPolicyEEEjRKT_j, .-_ZN3sfi3w2c10fixGsStrayINS0_12BoundsPolicyEEEjRKT_j

# ---- w2c.gs_access: gs operand register not provably zext u32 -------
# %rdx is untracked (Top) at entry: a 64-bit value straight into the gs
# addressing register could reach past the 4 GiB + 4 GiB reservation.
	.globl	_ZN3sfi3w2c8fixGsU32INS0_11SeguePolicyEEEjRKT_j
	.type	_ZN3sfi3w2c8fixGsU32INS0_11SeguePolicyEEEjRKT_j,@function
_ZN3sfi3w2c8fixGsU32INS0_11SeguePolicyEEEjRKT_j:
	movl	%gs:(%rdx), %eax
	ret
	.size	_ZN3sfi3w2c8fixGsU32INS0_11SeguePolicyEEEjRKT_j, .-_ZN3sfi3w2c8fixGsU32INS0_11SeguePolicyEEEjRKT_j

# ---- w2c.bounds.dominate: Bounds access with the check hoisted out --
# The offset is a proper zext u32 and the base is the real heap base
# loaded from the policy object, but no compare against [obj+8]
# dominates the access.
	.globl	_ZN3sfi3w2c10fixUncheckINS0_12BoundsPolicyEEEjRKT_j
	.type	_ZN3sfi3w2c10fixUncheckINS0_12BoundsPolicyEEEjRKT_j,@function
_ZN3sfi3w2c10fixUncheckINS0_12BoundsPolicyEEEjRKT_j:
	movq	(%rdi), %rax
	movl	%esi, %esi
	movl	(%rax,%rsi,1), %eax
	ret
	.size	_ZN3sfi3w2c10fixUncheckINS0_12BoundsPolicyEEEjRKT_j, .-_ZN3sfi3w2c10fixUncheckINS0_12BoundsPolicyEEEjRKT_j

# ---- w2c.bounds.dominate: SegueBounds gs access without a check -----
	.globl	_ZN3sfi3w2c12fixGsUncheckINS0_17SegueBoundsPolicyEEEjRKT_j
	.type	_ZN3sfi3w2c12fixGsUncheckINS0_17SegueBoundsPolicyEEEjRKT_j,@function
_ZN3sfi3w2c12fixGsUncheckINS0_17SegueBoundsPolicyEEEjRKT_j:
	movl	%esi, %esi
	movl	%gs:(%rsi), %eax
	ret
	.size	_ZN3sfi3w2c12fixGsUncheckINS0_17SegueBoundsPolicyEEEjRKT_j, .-_ZN3sfi3w2c12fixGsUncheckINS0_17SegueBoundsPolicyEEEjRKT_j

# ---- w2c.cfg.resolved: indirect jump in a policy kernel -------------
	.globl	_ZN3sfi3w2c11fixIndirectINS0_13BaseAddPolicyEEEjRKT_j
	.type	_ZN3sfi3w2c11fixIndirectINS0_13BaseAddPolicyEEEjRKT_j,@function
_ZN3sfi3w2c11fixIndirectINS0_13BaseAddPolicyEEEjRKT_j:
	xorl	%eax, %eax
	jmp	*%rax
	.size	_ZN3sfi3w2c11fixIndirectINS0_13BaseAddPolicyEEEjRKT_j, .-_ZN3sfi3w2c11fixIndirectINS0_13BaseAddPolicyEEEjRKT_j

# ---- w2c.heap_escape: access through an unclassifiable value --------
	.globl	_ZN3sfi3w2c9fixEscapeINS0_13BaseAddPolicyEEEjRKT_j
	.type	_ZN3sfi3w2c9fixEscapeINS0_13BaseAddPolicyEEEjRKT_j,@function
_ZN3sfi3w2c9fixEscapeINS0_13BaseAddPolicyEEEjRKT_j:
	movl	(%rdx), %eax
	ret
	.size	_ZN3sfi3w2c9fixEscapeINS0_13BaseAddPolicyEEEjRKT_j, .-_ZN3sfi3w2c9fixEscapeINS0_13BaseAddPolicyEEEjRKT_j

# ---- decode.error: bytes outside the modeled subset -----------------
# 0x06 (push %es) is invalid in 64-bit mode; the checker must fail
# closed and report the offset + hex window, not skip the function.
	.globl	_ZN3sfi3w2c9fixDecodeINS0_11SeguePolicyEEEjRKT_j
	.type	_ZN3sfi3w2c9fixDecodeINS0_11SeguePolicyEEEjRKT_j,@function
_ZN3sfi3w2c9fixDecodeINS0_11SeguePolicyEEEjRKT_j:
	.byte	0x06
	ret
	.size	_ZN3sfi3w2c9fixDecodeINS0_11SeguePolicyEEEjRKT_j, .-_ZN3sfi3w2c9fixDecodeINS0_11SeguePolicyEEEjRKT_j
