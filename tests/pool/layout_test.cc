#include "pool/layout.h"

#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/units.h"

namespace sfi::pool {
namespace {

PoolConfig
classicWasmConfig()
{
    // The standard scheme: 4 GiB memory + 4 GiB guard = 8 GiB/instance.
    PoolConfig c;
    c.numSlots = 64;
    c.maxMemoryBytes = 4 * kGiB;
    c.guardBytes = 4 * kGiB;
    return c;
}

TEST(Layout, ClassicWasmScheme)
{
    auto lay = computeLayout(classicWasmConfig());
    ASSERT_TRUE(lay.isOk()) << lay.message();
    EXPECT_EQ(lay->numStripes, 1u);
    EXPECT_EQ(lay->slotBytes, 8 * kGiB);
    EXPECT_EQ(lay->expectedSlotBytes, 8 * kGiB);
    EXPECT_TRUE(lay->validate(classicWasmConfig()));
}

TEST(Layout, WasmtimeSharedPreGuardScheme)
{
    // §5.1: 2 GiB pre-guard + 2 GiB post-guard, shared between
    // neighbours -> 6 GiB per instance instead of 8 GiB.
    PoolConfig c;
    c.numSlots = 64;
    c.maxMemoryBytes = 4 * kGiB;
    c.guardBytes = 2 * kGiB;
    c.guardBeforeSlots = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk());
    EXPECT_EQ(lay->slotBytes, 6 * kGiB);
    EXPECT_EQ(lay->preSlotGuardBytes, 2 * kGiB);
    EXPECT_TRUE(lay->validate(c));
}

TEST(Layout, ColorGuardShrinksSlots)
{
    // Figure 2: 1 GiB memories in an 8 GiB contract pack 8x denser.
    PoolConfig c;
    c.numSlots = 64;
    c.maxMemoryBytes = 1 * kGiB;
    c.guardBytes = 7 * kGiB;
    c.expectedSlotBytes = 8 * kGiB;
    c.stripingEnabled = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk()) << lay.message();
    EXPECT_EQ(lay->slotBytes, 1 * kGiB);
    EXPECT_EQ(lay->numStripes, 8u);
    EXPECT_TRUE(lay->validate(c)) << lay->validate(c).message();
}

TEST(Layout, ColorGuard15xDensity)
{
    // §6.4.2: 8 GiB / 15 colors ≈ 550 MB slots at maximum density. The
    // compiler contract stays 8 GiB (4 GiB index space + 4 GiB guard);
    // with 544 MiB memories the per-slot guard requirement is the rest.
    PoolConfig c;
    c.numSlots = 256;
    c.maxMemoryBytes = 544 * kMiB;  // multiple of 64 KiB
    c.guardBytes = 8 * kGiB - 544 * kMiB;
    c.stripingEnabled = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk()) << lay.message();
    EXPECT_EQ(lay->numStripes, 15u);
    EXPECT_TRUE(lay->validate(c)) << lay->validate(c).message();
    // Density vs the classic layout:
    auto classic = computeLayout([&] {
        PoolConfig cc = c;
        cc.stripingEnabled = false;
        return cc;
    }());
    ASSERT_TRUE(classic.isOk());
    EXPECT_GE(classic->slotBytes / lay->slotBytes, 14u);
}

TEST(Layout, InsufficientKeysMixesGuardsAndStripes)
{
    // With only 4 keys, the slots must grow so 4 stripes still cover
    // the 8 GiB contract (§5.1's "combination of stripes and guards").
    PoolConfig c;
    c.numSlots = 64;
    c.maxMemoryBytes = 1 * kGiB;
    c.guardBytes = 7 * kGiB;
    c.expectedSlotBytes = 8 * kGiB;
    c.stripingEnabled = true;
    c.keysAvailable = 4;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk());
    EXPECT_LE(lay->numStripes, 4u);
    EXPECT_GE(lay->numStripes * lay->slotBytes, 8 * kGiB);
    EXPECT_TRUE(lay->validate(c)) << lay->validate(c).message();
}

TEST(Layout, SingleSlotNeverStripes)
{
    PoolConfig c;
    c.numSlots = 1;
    c.maxMemoryBytes = kGiB;
    c.guardBytes = kGiB;
    c.stripingEnabled = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk());
    EXPECT_EQ(lay->numStripes, 1u);
    EXPECT_TRUE(lay->validate(c));
}

TEST(Layout, LastSlotHasRealGuard)
{
    PoolConfig c;
    c.numSlots = 32;
    c.maxMemoryBytes = 256 * kMiB;
    c.guardBytes = kGiB;
    c.expectedSlotBytes = 2 * kGiB;
    c.stripingEnabled = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk());
    // Invariant 6, second clause.
    EXPECT_GE(lay->slotBytes + lay->postSlotGuardBytes,
              lay->expectedSlotBytes);
    EXPECT_TRUE(lay->validate(c));
}

TEST(Layout, RejectsZeroSlots)
{
    PoolConfig c;
    c.maxMemoryBytes = kGiB;
    c.numSlots = 0;
    EXPECT_FALSE(computeLayout(c).isOk());
}

TEST(Layout, RejectsContractSmallerThanMemoryPlusGuard)
{
    PoolConfig c;
    c.numSlots = 4;
    c.maxMemoryBytes = 4 * kGiB;
    c.guardBytes = 4 * kGiB;
    c.expectedSlotBytes = 6 * kGiB;  // < 8 GiB
    EXPECT_FALSE(computeLayout(c).isOk());
}

TEST(Layout, CheckedArithmeticCatchesOverflow)
{
    // Absurd configuration whose total overflows 64 bits.
    PoolConfig c;
    c.numSlots = UINT64_MAX / 2;
    c.maxMemoryBytes = 4 * kGiB;
    c.guardBytes = 4 * kGiB;
    auto lay = computeLayout(c, LayoutArithmetic::Checked);
    EXPECT_FALSE(lay.isOk());
    EXPECT_NE(lay.message().find("overflow"), std::string::npos);
}

TEST(Layout, SaturatingBugBreaksInvariant1)
{
    // The §5.2 bug: the same configuration silently saturates and the
    // resulting layout violates Invariant 1 — caught only because the
    // invariants are checked independently of the computation.
    PoolConfig c;
    c.numSlots = UINT64_MAX / 2;
    c.maxMemoryBytes = 4 * kGiB;
    c.guardBytes = 4 * kGiB;
    auto lay = computeLayout(c, LayoutArithmetic::SaturatingBuggy);
    ASSERT_TRUE(lay.isOk()) << "buggy mode must not flag the overflow";
    Status st = lay->validate(c);
    EXPECT_FALSE(st);
    EXPECT_NE(st.message().find("invariant 1"), std::string::npos);
}

TEST(Layout, StripeAssignmentCycles)
{
    PoolConfig c;
    c.numSlots = 20;
    c.maxMemoryBytes = kGiB;
    c.guardBytes = 3 * kGiB;
    c.stripingEnabled = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk());
    ASSERT_EQ(lay->numStripes, 4u);
    for (uint64_t i = 0; i < 20; i++)
        EXPECT_EQ(lay->stripeOf(i), i % 4);
    // Adjacent slots within a contract window never share a stripe.
    for (uint64_t i = 0; i + 1 < 20; i++) {
        for (uint64_t j = i + 1;
             j < 20 && (j - i) * lay->slotBytes < lay->expectedSlotBytes;
             j++) {
            EXPECT_NE(lay->stripeOf(i), lay->stripeOf(j))
                << i << "," << j;
        }
    }
}

TEST(Layout, SlotOffsetsAccountForPreGuard)
{
    PoolConfig c;
    c.numSlots = 4;
    c.maxMemoryBytes = 64 * kMiB;
    c.guardBytes = 64 * kMiB;
    c.guardBeforeSlots = true;
    auto lay = computeLayout(c);
    ASSERT_TRUE(lay.isOk());
    EXPECT_EQ(lay->slotOffset(0), lay->preSlotGuardBytes);
    EXPECT_EQ(lay->slotOffset(1), lay->preSlotGuardBytes + lay->slotBytes);
}

// Property test: random *reasonable* configurations always produce
// layouts that pass the full invariant suite — the paper's attacker
// model says the allocator must be defensive for any inputs (§5.2).
class LayoutPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LayoutPropertyTest, CheckedLayoutsAlwaysValidate)
{
    Rng rng(GetParam());
    for (int iter = 0; iter < 200; iter++) {
        PoolConfig c;
        c.numSlots = 1 + rng.below(300);
        c.maxMemoryBytes = (1 + rng.below(1024)) * kWasmPageSize;
        c.guardBytes = rng.below(64) * kOsPageSize * (1 + rng.below(512));
        c.expectedSlotBytes = 0;  // derive
        if (rng.below(2)) {
            c.expectedSlotBytes =
                alignUp(c.maxMemoryBytes + c.guardBytes +
                            rng.below(8) * kWasmPageSize,
                        kWasmPageSize);
        }
        c.guardBeforeSlots = rng.below(2);
        c.stripingEnabled = rng.below(2);
        c.keysAvailable = 1 + static_cast<int>(rng.below(15));
        auto lay = computeLayout(c);
        if (!lay.isOk())
            continue;  // rejected configurations are fine
        Status st = lay->validate(c);
        EXPECT_TRUE(st) << st.message()
                        << " slots=" << c.numSlots
                        << " maxMem=" << c.maxMemoryBytes
                        << " guard=" << c.guardBytes
                        << " expected=" << c.expectedSlotBytes
                        << " striping=" << c.stripingEnabled
                        << " keys=" << c.keysAvailable;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LayoutPropertyTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace sfi::pool
