#include "pool/pool.h"

#include <cstring>

#include <gtest/gtest.h>

#include "base/units.h"
#include "mpk/mpk.h"

namespace sfi::pool {
namespace {

MemoryPool::Options
smallStripedOptions(mpk::System* sys)
{
    MemoryPool::Options opt;
    opt.config.numSlots = 12;
    opt.config.maxMemoryBytes = 2 * kWasmPageSize;  // 128 KiB slots
    opt.config.guardBytes = 6 * kWasmPageSize;
    opt.config.stripingEnabled = true;
    opt.mpk = sys;
    return opt;
}

class PoolTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys_ = mpk::makeEmulated(0);
    }

    std::unique_ptr<mpk::System> sys_;
};

TEST_F(PoolTest, AllocateAndFreeCycles)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk()) << pool.message();
    EXPECT_EQ(pool->capacity(), 12u);

    auto s1 = pool->allocate();
    auto s2 = pool->allocate();
    ASSERT_TRUE(s1.isOk() && s2.isOk());
    EXPECT_EQ(pool->slotsInUse(), 2u);
    EXPECT_NE(s1->base, s2->base);

    // Slot memory is writable.
    s1->base[0] = 0xaa;
    s1->base[2 * kWasmPageSize - 1] = 0xbb;
    EXPECT_EQ(s1->base[0], 0xaa);

    ASSERT_TRUE(pool->free(*s1));
    EXPECT_EQ(pool->slotsInUse(), 1u);
    ASSERT_TRUE(pool->free(*s2));
    EXPECT_EQ(pool->slotsInUse(), 0u);
}

TEST_F(PoolTest, RecycledSlotsAreZeroed)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    uint64_t idx = s->index;
    s->base[100] = 42;
    ASSERT_TRUE(pool->free(*s));
    // The freelist is LIFO, so we get the same slot back.
    auto s2 = pool->allocate();
    ASSERT_TRUE(s2.isOk());
    EXPECT_EQ(s2->index, idx);
    EXPECT_EQ(s2->base[100], 0);
}

TEST_F(PoolTest, ColorsSurviveRecycling)
{
    // §7: with MPK, madvise keeps PTE colors — no re-striping on reuse.
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    mpk::Pkey key = s->pkey;
    EXPECT_NE(key, 0);
    EXPECT_EQ(sys_->keyOf(s->base), key);
    ASSERT_TRUE(pool->free(*s));
    EXPECT_EQ(sys_->keyOf(s->base), key);  // color persisted
    auto s2 = pool->allocate();
    ASSERT_TRUE(s2.isOk());
    EXPECT_EQ(s2->pkey, key);
}

TEST_F(PoolTest, AdjacentSlotsHaveDistinctColors)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    ASSERT_GT(pool->layout().numStripes, 1u);
    std::vector<Slot> slots;
    for (int i = 0; i < 8; i++) {
        auto s = pool->allocate();
        ASSERT_TRUE(s.isOk());
        slots.push_back(*s);
    }
    // Sort by address; within a contract window, no repeated colors.
    std::sort(slots.begin(), slots.end(),
              [](const Slot& a, const Slot& b) { return a.base < b.base; });
    uint64_t window = pool->layout().expectedSlotBytes;
    for (size_t i = 0; i < slots.size(); i++) {
        for (size_t j = i + 1; j < slots.size(); j++) {
            uint64_t dist = uint64_t(slots[j].base - slots[i].base);
            if (dist < window)
                EXPECT_NE(slots[i].pkey, slots[j].pkey) << i << "," << j;
        }
    }
}

TEST_F(PoolTest, StripeIsolationUnderPkru)
{
    // The ColorGuard security property: with one stripe active, every
    // other stripe's memory is inaccessible.
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    auto a = pool->allocate();
    auto b = pool->allocate();
    ASSERT_TRUE(a.isOk() && b.isOk());
    ASSERT_NE(a->pkey, b->pkey);

    sys_->writePkru(mpk::Pkru::allowOnly(a->pkey));
    EXPECT_TRUE(sys_->checkAccess(a->base, true));
    EXPECT_FALSE(sys_->checkAccess(b->base, true));
    EXPECT_FALSE(sys_->checkAccess(b->base, false));

    sys_->writePkru(mpk::Pkru::allowOnly(b->pkey));
    EXPECT_FALSE(sys_->checkAccess(a->base, false));
    EXPECT_TRUE(sys_->checkAccess(b->base, true));

    sys_->writePkru(mpk::Pkru::allowAll());
}

TEST_F(PoolTest, ExhaustionAndReuse)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    std::vector<Slot> slots;
    for (uint64_t i = 0; i < pool->capacity(); i++) {
        auto s = pool->allocate();
        ASSERT_TRUE(s.isOk()) << i;
        slots.push_back(*s);
    }
    EXPECT_FALSE(pool->allocate().isOk());
    ASSERT_TRUE(pool->free(slots.back()));
    EXPECT_TRUE(pool->allocate().isOk());
}

TEST_F(PoolTest, DoubleFreeRejected)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    ASSERT_TRUE(pool->free(*s));
    EXPECT_FALSE(pool->free(*s));
}

TEST_F(PoolTest, DensityGainMatchesStripes)
{
    // The same address-space budget holds numStripes-times more slots
    // with ColorGuard than without — the mechanism behind §6.4.2.
    MemoryPool::Options striped = smallStripedOptions(sys_.get());
    auto lay_striped = computeLayout(striped.config);
    PoolConfig classic = striped.config;
    classic.stripingEnabled = false;
    auto lay_classic = computeLayout(classic);
    ASSERT_TRUE(lay_striped.isOk() && lay_classic.isOk());
    EXPECT_EQ(lay_classic->slotBytes / lay_striped->slotBytes,
              lay_striped->numStripes);
}

TEST_F(PoolTest, MemoryViewCoversContract)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    rt::LinearMemory mem = pool->memoryView(*s, 1, 2);
    EXPECT_EQ(mem.base(), s->base);
    EXPECT_EQ(mem.pages(), 1u);
    EXPECT_EQ(mem.maxPages(), 2u);
    EXPECT_GE(mem.reservedBytes(), pool->layout().slotBytes);
    // grow within the slot works and stays in bounds bookkeeping-wise.
    EXPECT_EQ(mem.grow(1), 1);
    EXPECT_EQ(mem.grow(1), -1);
}

TEST_F(PoolTest, GuardRegionsStayProtected)
{
    // The post-slot guard must be PROT_NONE: probe via mpk checkAccess
    // (emulated backend tracks protections too).
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());
    const SlotLayout& lay = pool->layout();
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    // End of slab = last slot end + post guard; nothing was ever
    // committed there, and keyOf is the default 0 color.
    uint8_t* guard = s->base + lay.slotBytes * lay.numSlots;
    (void)guard;
    EXPECT_EQ(sys_->keyOf(s->base + lay.maxMemoryBytes +
                          lay.slotBytes * (lay.numSlots - 1)),
              0);
}

TEST_F(PoolTest, StatsCountersBalance)
{
    auto pool = MemoryPool::create(smallStripedOptions(sys_.get()));
    ASSERT_TRUE(pool.isOk());

    auto a = pool->allocate();
    auto b = pool->allocate();
    ASSERT_TRUE(a.isOk() && b.isOk());
    MemoryPool::Stats st = pool->stats();
    EXPECT_EQ(st.allocations, 2u);
    EXPECT_EQ(st.frees, 0u);
    EXPECT_EQ(st.firstCommits, 2u);

    ASSERT_TRUE(pool->free(*a, kWasmPageSize).isOk());
    ASSERT_TRUE(pool->free(*b, kWasmPageSize).isOk());
    st = pool->stats();
    EXPECT_EQ(st.frees, 2u);
    // Both freed slots are either warm-cached or back on a cold list.
    EXPECT_EQ(st.warmDepth + st.coldDepth, pool->capacity());
    EXPECT_EQ(st.pendingReclaim, 0u);

    // Re-allocating hits the warm cache; no new first-commit.
    auto c = pool->allocate();
    ASSERT_TRUE(c.isOk());
    st = pool->stats();
    EXPECT_EQ(st.allocations, 3u);
    EXPECT_EQ(st.firstCommits, 2u);
    EXPECT_EQ(st.warmHits, 1u);
}

TEST_F(PoolTest, WarmZeroingCoversOnlyDirtySpan)
{
    // Warm reuse must zero the dirty high-water span the freer
    // reported, not the whole slot — the counter pair makes the cost
    // observable.
    MemoryPool::Options opt = smallStripedOptions(sys_.get());
    opt.warmSlotsPerShard = 4;
    opt.warmKeepResidentBytes = UINT64_MAX;  // no trimming at free()
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());

    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    const uint64_t touched = 3 * kOsPageSize;
    std::memset(s->base, 0x5a, touched);
    ASSERT_TRUE(pool->free(*s, touched));

    auto s2 = pool->allocate();  // LIFO warm hit on the same slot
    ASSERT_TRUE(s2.isOk());
    EXPECT_EQ(s2->index, s->index);
    EXPECT_EQ(s2->base[touched - 1], 0);

    MemoryPool::Stats st = pool->stats();
    EXPECT_EQ(st.warmZeroes, 1u);
    EXPECT_EQ(st.warmZeroedBytes, touched);
    EXPECT_LT(st.warmZeroedBytes, pool->layout().maxMemoryBytes);
    ASSERT_TRUE(pool->free(*s2, touched));
}

TEST_F(PoolTest, WarmAffinityReturnsSameSlotZeroed)
{
    MemoryPool::Options opt = smallStripedOptions(sys_.get());
    opt.warmSlotsPerShard = 4;
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());

    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    EXPECT_FALSE(s->warm);  // first use is a cold commit
    uint64_t idx = s->index;
    s->base[123] = 0x5a;
    ASSERT_TRUE(pool->free(*s, kWasmPageSize).isOk());

    auto s2 = pool->allocate();
    ASSERT_TRUE(s2.isOk());
    EXPECT_EQ(s2->index, idx);
    EXPECT_TRUE(s2->warm);
    EXPECT_EQ(s2->dirtyBytes, 0u);
    EXPECT_EQ(s2->base[123], 0);  // memset over the dirty span
    EXPECT_EQ(pool->stats().warmHits, 1u);
    EXPECT_EQ(pool->stats().decommits, 0u);
}

TEST_F(PoolTest, DirtySpanReportedWhenZeroingDisabled)
{
    MemoryPool::Options opt = smallStripedOptions(sys_.get());
    opt.zeroOnWarmReuse = false;
    opt.warmKeepResidentBytes = UINT64_MAX;  // keep the full span
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());

    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    s->base[123] = 0x5a;
    ASSERT_TRUE(pool->free(*s, kWasmPageSize).isOk());

    // Single-tenant affinity reuse: stale bytes stay, and the slot
    // reports how far they may extend.
    auto s2 = pool->allocate();
    ASSERT_TRUE(s2.isOk());
    EXPECT_TRUE(s2->warm);
    EXPECT_EQ(s2->dirtyBytes, kWasmPageSize);
    EXPECT_EQ(s2->base[123], 0x5a);
}

TEST_F(PoolTest, KeepResidentTrimsLargeWarmSpans)
{
    // A footprint beyond warmKeepResidentBytes keeps only its head
    // committed; the tail is decommitted at free() and so reads zero,
    // and the memset on reuse covers the head.
    MemoryPool::Options opt = smallStripedOptions(sys_.get());
    opt.warmKeepResidentBytes = kWasmPageSize;
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());

    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    s->base[0] = 1;                      // head
    s->base[kWasmPageSize + 17] = 2;     // tail
    ASSERT_TRUE(pool->free(*s, 2 * kWasmPageSize).isOk());
    MemoryPool::Stats st = pool->stats();
    EXPECT_EQ(st.decommittedBytes, kWasmPageSize);  // tail only

    auto s2 = pool->allocate();
    ASSERT_TRUE(s2.isOk());
    EXPECT_TRUE(s2->warm);
    EXPECT_EQ(s2->base[0], 0);
    EXPECT_EQ(s2->base[kWasmPageSize + 17], 0);
}

TEST_F(PoolTest, DeferredReclaimZeroesOnReuse)
{
    MemoryPool::Options opt = smallStripedOptions(sys_.get());
    opt.shards = 1;
    opt.warmSlotsPerShard = 0;  // force every free through the queue
    opt.deferredDecommit = true;
    opt.dirtyByteBudget = 1;    // reclaim immediately
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());

    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    uint64_t idx = s->index;
    s->base[77] = 0x77;
    ASSERT_TRUE(pool->free(*s, kWasmPageSize).isOk());
    pool->quiesce();

    MemoryPool::Stats st = pool->stats();
    EXPECT_EQ(st.pendingReclaim, 0u);
    EXPECT_GT(st.decommittedBytes, 0u);

    // Drain the cold list until the recycled slot comes back: it must
    // read zero again.
    std::vector<Slot> held;
    for (;;) {
        auto s2 = pool->allocate();
        ASSERT_TRUE(s2.isOk());
        if (s2->index == idx) {
            EXPECT_EQ(s2->base[77], 0);
            break;
        }
        held.push_back(*s2);
    }
    for (const Slot& h : held)
        ASSERT_TRUE(pool->free(h, 0).isOk());
}

TEST_F(PoolTest, QuiesceDrainsBelowBudget)
{
    // Frees smaller than the dirty-byte budget sit in the queue until
    // quiesce() forces the batch out.
    MemoryPool::Options opt = smallStripedOptions(sys_.get());
    opt.warmSlotsPerShard = 0;
    opt.deferredDecommit = true;
    opt.dirtyByteBudget = 1 * kGiB;  // never reached by this test
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());

    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    s->base[0] = 1;
    ASSERT_TRUE(pool->free(*s, kWasmPageSize).isOk());
    EXPECT_EQ(pool->stats().pendingReclaim, 1u);
    pool->quiesce();
    EXPECT_EQ(pool->stats().pendingReclaim, 0u);
    EXPECT_EQ(pool->stats().decommittedBytes, kWasmPageSize);
}

TEST_F(PoolTest, MoveAssignReleasesStripeKeys)
{
    // Regression: a defaulted move-assign dropped the destination's
    // Core without freeing its stripe keys, leaking them for the life
    // of the mpk::System.
    {
        auto a = MemoryPool::create(smallStripedOptions(sys_.get()));
        auto b = MemoryPool::create(smallStripedOptions(sys_.get()));
        ASSERT_TRUE(a.isOk() && b.isOk());
        ASSERT_GT(a->layout().numStripes, 1u);
        *b = std::move(*a);  // must release b's original keys
    }
    // Every sandbox key must be allocatable again.
    std::vector<mpk::Pkey> keys;
    for (;;) {
        auto k = sys_->allocKey();
        if (!k.isOk())
            break;
        keys.push_back(*k);
    }
    EXPECT_EQ(keys.size(), size_t(mpk::kNumSandboxKeys));
    for (mpk::Pkey k : keys)
        EXPECT_TRUE(sys_->freeKey(k).isOk());
}

TEST(PoolNoMpk, ClassicLayoutWorksWithoutStriping)
{
    auto sys = mpk::makeEmulated(0);
    MemoryPool::Options opt;
    opt.config.numSlots = 4;
    opt.config.maxMemoryBytes = kWasmPageSize;
    opt.config.guardBytes = kWasmPageSize;
    opt.config.stripingEnabled = false;
    opt.mpk = sys.get();
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk());
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    EXPECT_EQ(s->pkey, 0);
    s->base[0] = 1;
}

TEST(PoolBuggy, SaturatingConfigRefusedByValidation)
{
    // Even in buggy arithmetic mode, MemoryPool::create re-validates the
    // layout and refuses to build an unsafe pool — defense in depth.
    auto sys = mpk::makeEmulated(0);
    MemoryPool::Options opt;
    opt.config.numSlots = UINT64_MAX / 2;
    opt.config.maxMemoryBytes = 4 * kGiB;
    opt.config.guardBytes = 4 * kGiB;
    opt.arithmetic = LayoutArithmetic::SaturatingBuggy;
    opt.mpk = sys.get();
    auto pool = MemoryPool::create(std::move(opt));
    EXPECT_FALSE(pool.isOk());
}

}  // namespace
}  // namespace sfi::pool
