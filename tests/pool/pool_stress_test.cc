/**
 * @file
 * Concurrency stress for the pooling allocator: many threads hammer
 * allocate/touch/free cycles against one pool while an atomic
 * owner-table proves no slot is ever handed to two threads at once.
 *
 * Registered under the ctest label "stress" (not tier-1) and meant to
 * run under -DSFIKIT_SANITIZE=thread|address as well; iteration count
 * scales via SFIKIT_STRESS_ITERS.
 */
#include "pool/pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "base/units.h"
#include "mpk/mpk.h"

namespace sfi::pool {
namespace {

constexpr int kThreads = 8;

int
itersPerThread()
{
    if (const char* env = std::getenv("SFIKIT_STRESS_ITERS"))
        return std::max(1, std::atoi(env));
    return 2000;
}

/** Runs the 8-thread cycle storm against @p opt-configured pools. */
void
stressPool(MemoryPool::Options opt, uint64_t num_slots)
{
    auto sys = mpk::makeEmulated(0);
    opt.config.numSlots = num_slots;
    opt.config.maxMemoryBytes = 2 * kWasmPageSize;
    opt.config.guardBytes = 6 * kWasmPageSize;
    opt.config.stripingEnabled = true;
    opt.mpk = sys.get();
    auto pool = MemoryPool::create(std::move(opt));
    ASSERT_TRUE(pool.isOk()) << pool.message();

    // owner[i] = 1 + thread id while slot i is checked out. A CAS from
    // 0 failing means the pool double-handed a slot.
    std::vector<std::atomic<uint32_t>> owner(num_slots);
    std::atomic<uint64_t> handoutViolations{0};
    std::atomic<uint64_t> failures{0};
    const int iters = itersPerThread();

    auto worker = [&](uint32_t tid) {
        for (int i = 0; i < iters; i++) {
            auto slot = pool->allocate();
            if (!slot.isOk()) {
                // Transient exhaustion is legal when 8 threads race
                // over few slots; give the others a beat.
                std::this_thread::yield();
                continue;
            }
            uint32_t expected = 0;
            if (!owner[slot->index].compare_exchange_strong(expected,
                                                            tid + 1))
                handoutViolations.fetch_add(1);
            // Zero-on-reuse: a fresh checkout never shows stale bytes.
            if (slot->base[64] != 0)
                failures.fetch_add(1);
            slot->base[64] = uint8_t(tid + 1);
            slot->base[kWasmPageSize + 5] = 0xee;
            owner[slot->index].store(0);
            if (!pool->free(*slot, 2 * kWasmPageSize).isOk())
                failures.fetch_add(1);
        }
    };

    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < kThreads; t++)
        threads.emplace_back(worker, t);
    for (auto& t : threads)
        t.join();
    pool->quiesce();

    EXPECT_EQ(handoutViolations.load(), 0u);
    EXPECT_EQ(failures.load(), 0u);
    EXPECT_EQ(pool->slotsInUse(), 0u);
    MemoryPool::Stats st = pool->stats();
    EXPECT_EQ(st.allocations, st.frees);
    EXPECT_EQ(st.pendingReclaim, 0u);
    EXPECT_EQ(st.warmDepth + st.coldDepth, num_slots);
    // Double-frees must still be rejected after the storm.
    auto s = pool->allocate();
    ASSERT_TRUE(s.isOk());
    EXPECT_TRUE(pool->free(*s).isOk());
    EXPECT_FALSE(pool->free(*s).isOk());
}

TEST(PoolStress, SynchronousDecommit)
{
    MemoryPool::Options opt;
    opt.warmSlotsPerShard = 0;
    stressPool(std::move(opt), 16);
}

TEST(PoolStress, WarmAffinity)
{
    MemoryPool::Options opt;
    opt.warmSlotsPerShard = 4;
    stressPool(std::move(opt), 16);
}

TEST(PoolStress, DeferredDecommit)
{
    MemoryPool::Options opt;
    opt.warmSlotsPerShard = 2;
    opt.deferredDecommit = true;
    opt.dirtyByteBudget = 8 * kWasmPageSize;
    stressPool(std::move(opt), 16);
}

TEST(PoolStress, ContendedFewSlots)
{
    // More threads than slots: constant stealing + transient
    // exhaustion on every path.
    MemoryPool::Options opt;
    opt.shards = 4;
    opt.warmSlotsPerShard = 1;
    opt.deferredDecommit = true;
    opt.dirtyByteBudget = 1;  // reclaimer constantly active
    stressPool(std::move(opt), 4);
}

}  // namespace
}  // namespace sfi::pool
