#include "mpk/mpk.h"

#include <gtest/gtest.h>

#include "base/os_mem.h"
#include "base/units.h"

namespace sfi::mpk {
namespace {

TEST(Pkru, AllowAllPermitsEverything)
{
    Pkru p = Pkru::allowAll();
    for (int k = 0; k < kNumKeys; k++) {
        EXPECT_TRUE(p.canAccess(k));
        EXPECT_TRUE(p.canWrite(k));
    }
}

TEST(Pkru, AllowOnlyIsolatesOtherColors)
{
    // The ColorGuard transition value: key 0 (runtime) + active stripe.
    Pkru p = Pkru::allowOnly(5);
    EXPECT_TRUE(p.canAccess(0));
    EXPECT_TRUE(p.canWrite(0));
    EXPECT_TRUE(p.canAccess(5));
    EXPECT_TRUE(p.canWrite(5));
    for (int k = 1; k < kNumKeys; k++) {
        if (k == 5)
            continue;
        EXPECT_FALSE(p.canAccess(k)) << "key " << k;
        EXPECT_FALSE(p.canWrite(k)) << "key " << k;
    }
}

TEST(Pkru, BitLayoutMatchesIsa)
{
    // AD = bit 2k, WD = bit 2k+1.
    Pkru p(0b01u << (2 * 3));  // AD for key 3
    EXPECT_FALSE(p.canAccess(3));
    Pkru q(0b10u << (2 * 3));  // WD only
    EXPECT_TRUE(q.canAccess(3));
    EXPECT_FALSE(q.canWrite(3));
}

class EmulatedMpkTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys_ = makeEmulated(/*modeled_wrpkru_cycles=*/0);
        mem_ = std::move(Reservation::allocate(16 * kOsPageSize).value());
    }

    std::unique_ptr<System> sys_;
    Reservation mem_;
};

TEST_F(EmulatedMpkTest, KeyAllocationYields15Keys)
{
    for (int i = 1; i <= kNumSandboxKeys; i++) {
        auto k = sys_->allocKey();
        ASSERT_TRUE(k.isOk()) << i;
        EXPECT_EQ(*k, i);
    }
    EXPECT_FALSE(sys_->allocKey().isOk());  // 16th fails
}

TEST_F(EmulatedMpkTest, FreeingAllowsRealloc)
{
    auto k = sys_->allocKey();
    ASSERT_TRUE(k.isOk());
    ASSERT_TRUE(sys_->freeKey(*k));
    auto k2 = sys_->allocKey();
    ASSERT_TRUE(k2.isOk());
    EXPECT_EQ(*k2, *k);
}

TEST_F(EmulatedMpkTest, DoubleFreeRejected)
{
    auto k = sys_->allocKey();
    ASSERT_TRUE(sys_->freeKey(*k));
    EXPECT_FALSE(sys_->freeKey(*k));
}

TEST_F(EmulatedMpkTest, ColorAssignmentTracked)
{
    auto k = sys_->allocKey();
    ASSERT_TRUE(sys_->protectRange(mem_.base(), 4 * kOsPageSize,
                                   PageAccess::ReadWrite, *k));
    EXPECT_EQ(sys_->keyOf(mem_.base()), *k);
    EXPECT_EQ(sys_->keyOf(mem_.base() + 4 * kOsPageSize - 1), *k);
    EXPECT_EQ(sys_->keyOf(mem_.base() + 4 * kOsPageSize), 0);
}

TEST_F(EmulatedMpkTest, PkruGatesAccess)
{
    auto k = sys_->allocKey();
    ASSERT_TRUE(sys_->protectRange(mem_.base(), kOsPageSize,
                                   PageAccess::ReadWrite, *k));
    sys_->writePkru(Pkru::allowAll());
    EXPECT_TRUE(sys_->checkAccess(mem_.base(), true));

    sys_->writePkru(Pkru::allowOnly(*k + 1));  // wrong stripe active
    EXPECT_FALSE(sys_->checkAccess(mem_.base(), false));
    EXPECT_FALSE(sys_->checkAccess(mem_.base(), true));

    sys_->writePkru(Pkru::allowOnly(*k));
    EXPECT_TRUE(sys_->checkAccess(mem_.base(), false));
    EXPECT_TRUE(sys_->checkAccess(mem_.base(), true));
}

TEST_F(EmulatedMpkTest, StripingAdjacentRanges)
{
    // Three adjacent 1-page "slots" with distinct colors — the Figure 2
    // pattern in miniature. Activating one stripe must make exactly that
    // stripe accessible.
    Pkey keys[3];
    for (int i = 0; i < 3; i++) {
        auto k = sys_->allocKey();
        ASSERT_TRUE(k.isOk());
        keys[i] = *k;
        ASSERT_TRUE(sys_->protectRange(mem_.base() + i * kOsPageSize,
                                       kOsPageSize, PageAccess::ReadWrite,
                                       keys[i]));
    }
    for (int active = 0; active < 3; active++) {
        sys_->writePkru(Pkru::allowOnly(keys[active]));
        for (int i = 0; i < 3; i++) {
            EXPECT_EQ(sys_->checkAccess(mem_.base() + i * kOsPageSize,
                                        true),
                      i == active)
                << "active=" << active << " i=" << i;
        }
    }
}

TEST_F(EmulatedMpkTest, RecoloringOverwrites)
{
    auto k1 = sys_->allocKey();
    auto k2 = sys_->allocKey();
    ASSERT_TRUE(sys_->protectRange(mem_.base(), 4 * kOsPageSize,
                                   PageAccess::ReadWrite, *k1));
    // Recolor the middle two pages.
    ASSERT_TRUE(sys_->protectRange(mem_.base() + kOsPageSize,
                                   2 * kOsPageSize, PageAccess::ReadWrite,
                                   *k2));
    EXPECT_EQ(sys_->keyOf(mem_.base()), *k1);
    EXPECT_EQ(sys_->keyOf(mem_.base() + kOsPageSize), *k2);
    EXPECT_EQ(sys_->keyOf(mem_.base() + 2 * kOsPageSize), *k2);
    EXPECT_EQ(sys_->keyOf(mem_.base() + 3 * kOsPageSize), *k1);
}

TEST_F(EmulatedMpkTest, ProtNoneStillInaccessible)
{
    auto k = sys_->allocKey();
    ASSERT_TRUE(sys_->protectRange(mem_.base(), kOsPageSize,
                                   PageAccess::None, *k));
    sys_->writePkru(Pkru::allowOnly(*k));
    EXPECT_FALSE(sys_->checkAccess(mem_.base(), false));
}

TEST_F(EmulatedMpkTest, UnalignedProtectRejected)
{
    auto k = sys_->allocKey();
    EXPECT_FALSE(sys_->protectRange(mem_.base() + 1, kOsPageSize,
                                    PageAccess::ReadWrite, *k));
}

TEST(MprotectMpk, EnforcesLikeHardware)
{
    // The enforcing fallback really changes page permissions on PKRU
    // writes, so a cross-color touch would fault. We only probe via
    // checkAccess + a read that must succeed after re-enabling.
    auto sys = makeMprotect();
    auto mem = std::move(Reservation::allocate(2 * kOsPageSize).value());
    auto k = sys->allocKey();
    ASSERT_TRUE(k.isOk());
    ASSERT_TRUE(sys->protectRange(mem.base(), kOsPageSize,
                                  PageAccess::ReadWrite, *k));
    mem.base()[0] = 7;

    sys->writePkru(Pkru::allowOnly(*k + 1));
    EXPECT_FALSE(sys->checkAccess(mem.base(), false));

    sys->writePkru(Pkru::allowOnly(*k));
    EXPECT_TRUE(sys->checkAccess(mem.base(), false));
    EXPECT_EQ(mem.base()[0], 7);  // really readable again
}

TEST(MpkSystem, DefaultSystemIsUsable)
{
    System& sys = defaultSystem();
    EXPECT_NE(sys.name(), nullptr);
    auto k = sys.allocKey();
    ASSERT_TRUE(k.isOk());
    EXPECT_TRUE(sys.freeKey(*k));
}

TEST(MpkSystem, HardwareMatchesCpuid)
{
    if (hardwareAvailable()) {
        EXPECT_TRUE(makeHardware().isOk());
    } else {
        EXPECT_FALSE(makeHardware().isOk());
    }
}

}  // namespace
}  // namespace sfi::mpk
