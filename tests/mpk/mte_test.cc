#include "mpk/mte.h"

#include <gtest/gtest.h>

#include "base/units.h"

namespace sfi::mpk {
namespace {

TEST(Mte, TagsStartZero)
{
    MteEmu mte(64 * kKiB);
    EXPECT_EQ(mte.granules(), 64 * kKiB / kMteGranule);
    EXPECT_EQ(mte.tagAt(0), 0);
    EXPECT_EQ(mte.tagAt(64 * kKiB - 16), 0);
}

TEST(Mte, UserTaggingSetsRange)
{
    MteEmu mte(4096);
    mte.setTagRangeUser(256, 512, 0x7);
    EXPECT_EQ(mte.tagAt(255), 0);
    EXPECT_EQ(mte.tagAt(256), 0x7);
    EXPECT_EQ(mte.tagAt(256 + 511), 0x7);
    EXPECT_EQ(mte.tagAt(256 + 512), 0);
}

TEST(Mte, BulkTaggingMatchesUserTagging)
{
    MteEmu a(4096), b(4096);
    a.setTagRangeUser(0, 4096, 0x3);
    b.setTagRangeBulk(0, 4096, 0x3);
    for (uint64_t off = 0; off < 4096; off += 16)
        EXPECT_EQ(a.tagAt(off), b.tagAt(off));
}

TEST(Mte, PointerTagChecking)
{
    MteEmu mte(4096);
    mte.setTagRangeBulk(0, 2048, 0x5);
    mte.setTagRangeBulk(2048, 2048, 0x9);
    EXPECT_TRUE(mte.checkAccess(0x5, 0, 8));
    EXPECT_TRUE(mte.checkAccess(0x5, 2032, 16));
    EXPECT_FALSE(mte.checkAccess(0x5, 2048, 8));   // wrong color
    EXPECT_TRUE(mte.checkAccess(0x9, 2048, 8));
    EXPECT_FALSE(mte.checkAccess(0x5, 2040, 16));  // straddles colors
    EXPECT_FALSE(mte.checkAccess(0x9, 4096 - 8, 16));  // out of region
}

TEST(Mte, TagNibbleMasked)
{
    MteEmu mte(256);
    mte.setTagRangeBulk(0, 256, 0xf5);  // only low nibble stored
    EXPECT_EQ(mte.tagAt(0), 0x5);
    EXPECT_TRUE(mte.checkAccess(0x5, 0, 16));
}

TEST(Mte, DecommitDiscardsTagsByDefault)
{
    // §7 Observation 2: madvise(MADV_DONTNEED) resets MTE tags...
    MteEmu mte(4096);
    mte.setTagRangeBulk(0, 4096, 0x5);
    uint64_t cleared = mte.decommit(0, 4096, /*preserve_tags=*/false);
    EXPECT_EQ(cleared, 4096u / kMteGranule);
    EXPECT_EQ(mte.tagAt(0), 0);
    EXPECT_FALSE(mte.checkAccess(0x5, 0, 16));
}

TEST(Mte, DecommitCanPreserveTags)
{
    // ...while the paper's proposed madvise flag would keep them (like
    // MPK's PTE colors), making slot recycling free.
    MteEmu mte(4096);
    mte.setTagRangeBulk(0, 4096, 0x5);
    uint64_t cleared = mte.decommit(0, 4096, /*preserve_tags=*/true);
    EXPECT_EQ(cleared, 0u);
    EXPECT_EQ(mte.tagAt(0), 0x5);
    EXPECT_TRUE(mte.checkAccess(0x5, 0, 16));
}

TEST(Mte, ZeroLengthAccessAllowed)
{
    MteEmu mte(256);
    EXPECT_TRUE(mte.checkAccess(0x0, 0, 0));
}

}  // namespace
}  // namespace sfi::mpk
