/**
 * @file
 * Quickstart: build a module, compile it with Segue, run it in a
 * sandbox, and watch isolation work.
 *
 *   $ ./examples/quickstart
 */
#include <cstdio>

#include "jit/compiler.h"
#include "runtime/instance.h"
#include "wasm/builder.h"

using namespace sfi;
using VT = wasm::ValType;

int
main()
{
    // 1. Author a module with the builder API: a dot-product over two
    //    arrays in linear memory, plus a store helper.
    wasm::ModuleBuilder mb;
    mb.memory(/*min_pages=*/1, /*max_pages=*/4);

    auto poke = mb.func("poke", {VT::I32, VT::I32}, {});
    poke.localGet(0).localGet(1).i32Store().end();

    auto dot = mb.func("dot", {VT::I32, VT::I32, VT::I32}, {VT::I64});
    uint32_t i = dot.local(VT::I32);
    uint32_t acc = dot.local(VT::I64);
    dot.block()
        .loop()
        .localGet(i).localGet(dot.param(2)).i32GeU().brIf(1)
        // acc += a[i] * b[i]
        .localGet(acc)
        .localGet(dot.param(0)).localGet(i).i32Const(2).i32Shl()
        .i32Add().i32Load().i64ExtendI32U()
        .localGet(dot.param(1)).localGet(i).i32Const(2).i32Shl()
        .i32Add().i32Load().i64ExtendI32U()
        .i64Mul().i64Add().localSet(acc)
        .localGet(i).i32Const(1).i32Add().localSet(i)
        .br(0)
        .end()
        .end()
        .localGet(acc)
        .end();

    mb.exportFunc("poke", poke.index());
    mb.exportFunc("dot", dot.index());

    // 2. Compile with the Segue strategy: every heap access is a single
    //    %gs-relative instruction (Figure 1c of the paper).
    auto shared = rt::SharedModule::compile(
        std::move(mb).build(), jit::CompilerConfig::wamrSegue());
    if (!shared) {
        std::fprintf(stderr, "compile failed: %s\n",
                     shared.message().c_str());
        return 1;
    }
    std::printf("compiled %llu bytes of Segue machine code\n",
                (unsigned long long)(*shared)->code().totalCodeBytes);

    // 3. Instantiate (4 GiB reservation + guard regions) and run.
    auto inst = rt::Instance::create(*shared);
    if (!inst) {
        std::fprintf(stderr, "instantiate failed: %s\n",
                     inst.message().c_str());
        return 1;
    }

    for (uint32_t k = 0; k < 8; k++) {
        (*inst)->call("poke", {k * 4, k + 1});        // a[k] = k+1
        (*inst)->call("poke", {64 + k * 4, 2 * k + 1});  // b[k] = 2k+1
    }
    auto out = (*inst)->call("dot", {0, 64, 8});
    std::printf("dot(a, b) = %llu\n", (unsigned long long)out.value);

    // 4. Isolation in action: an out-of-bounds access hits the guard
    //    region, faults in hardware, and surfaces as a trap — the
    //    instance (and the process) survive.
    auto oob = (*inst)->call("dot", {0xfffffff0u, 64, 8});
    std::printf("out-of-bounds dot -> trap: %s\n", rt::name(oob.trap));

    auto again = (*inst)->call("dot", {0, 64, 8});
    std::printf("instance still healthy: dot = %llu\n",
                (unsigned long long)again.value);
    return 0;
}
