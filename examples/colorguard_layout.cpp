/**
 * @file
 * ColorGuard layout explorer: prints the Figure 2 striping picture for
 * a configuration you choose and demonstrates the PKRU isolation
 * property on a live pool.
 *
 *   $ ./examples/colorguard_layout [slot_mib] [guard_gib]
 */
#include <cstdio>
#include <cstdlib>

#include "base/units.h"
#include "mpk/mpk.h"
#include "pool/pool.h"

using namespace sfi;

int
main(int argc, char** argv)
{
    uint64_t slot_mib = argc > 1 ? strtoull(argv[1], nullptr, 10) : 512;
    uint64_t guard_gib = argc > 2 ? strtoull(argv[2], nullptr, 10) : 7;

    pool::PoolConfig cfg;
    cfg.numSlots = 24;
    cfg.maxMemoryBytes = slot_mib * kMiB;
    cfg.guardBytes = guard_gib * kGiB;
    cfg.stripingEnabled = true;

    auto lay = pool::computeLayout(cfg);
    if (!lay) {
        std::fprintf(stderr, "layout: %s\n", lay.message().c_str());
        return 1;
    }
    printf("ColorGuard layout for %llu MiB slots, %llu GiB guard "
           "contract:\n",
           (unsigned long long)slot_mib, (unsigned long long)guard_gib);
    printf("  slot stride      : %.2f GiB\n",
           double(lay->slotBytes) / double(kGiB));
    printf("  stripes (colors) : %llu\n",
           (unsigned long long)lay->numStripes);
    printf("  density vs guard-page SFI: %.1fx\n",
           double(lay->expectedSlotBytes) / double(lay->slotBytes));
    Status st = lay->validate(cfg);
    printf("  Table-1 invariants: %s\n",
           st ? "all hold" : st.message().c_str());

    printf("\n  Figure 2 striping (first 24 slots):\n    ");
    for (uint64_t i = 0; i < 24; i++)
        printf("%llu ", (unsigned long long)lay->stripeOf(i) + 1);
    printf("\n\n");

    // Live isolation demo on a small emulated-MPK pool.
    auto mpk = mpk::makeEmulated();
    pool::MemoryPool::Options popt;
    popt.config.numSlots = 8;
    popt.config.maxMemoryBytes = 2 * kWasmPageSize;
    popt.config.guardBytes = 6 * kWasmPageSize;
    popt.config.stripingEnabled = true;
    popt.mpk = mpk.get();
    auto pool = pool::MemoryPool::create(std::move(popt));
    if (!pool) {
        std::fprintf(stderr, "pool: %s\n", pool.message().c_str());
        return 1;
    }
    auto a = pool->allocate();
    auto b = pool->allocate();
    printf("live pool: slot A color %d, slot B color %d\n", a->pkey,
           b->pkey);
    mpk->writePkru(mpk::Pkru::allowOnly(a->pkey));
    printf("  with A's color active: A writable=%d, B accessible=%d\n",
           mpk->checkAccess(a->base, true),
           mpk->checkAccess(b->base, false));
    mpk->writePkru(mpk::Pkru::allowOnly(b->pkey));
    printf("  with B's color active: A accessible=%d, B writable=%d\n",
           mpk->checkAccess(a->base, false),
           mpk->checkAccess(b->base, true));
    mpk->writePkru(mpk::Pkru::allowAll());
    printf("backend: %s%s\n", mpk->name(),
           mpk::hardwareAvailable()
               ? " (hardware)"
               : " (no PKU on this CPU; emulated semantics)");
    return 0;
}
