/**
 * @file
 * A miniature FaaS edge node (the paper's §6.4 scenario): thousands of
 * requests served by ColorGuard-striped sandbox instances in ONE
 * process, scheduled cooperatively on fibers with 1 ms epoch
 * preemption and Poisson IO waits.
 *
 *   $ ./examples/faas_edge [requests] [concurrency]
 */
#include <cstdio>
#include <cstdlib>

#include "faas/scheduler.h"
#include "wkld/workloads.h"

using namespace sfi;

int
main(int argc, char** argv)
{
    uint64_t requests = argc > 1 ? strtoull(argv[1], nullptr, 10) : 500;
    int concurrency = argc > 2 ? atoi(argv[2]) : 64;

    std::printf("sfikit FaaS edge node — 1 process, ColorGuard "
                "striping, epoch preemption\n\n");

    for (const auto& w : wkld::faasWorkloads()) {
        faas::FaasHost::Options opts;
        opts.maxConcurrent = concurrency;
        opts.colorguard = true;
        opts.epochUs = 1000;       // paper: 1 ms epochs
        opts.ioDelayMeanMs = 5.0;  // paper: Poisson 5 ms IO
        opts.config = jit::CompilerConfig::wamrSegue();

        auto host = faas::FaasHost::create(w.make(), std::move(opts));
        if (!host) {
            std::fprintf(stderr, "host: %s\n", host.message().c_str());
            return 1;
        }
        const auto& layout = (*host)->memoryPool().layout();
        std::printf("%-18s  pool: %llu slots x %.0f MiB, %llu MPK "
                    "stripes\n",
                    w.name,
                    (unsigned long long)layout.numSlots,
                    double(layout.slotBytes) / double(kMiB),
                    (unsigned long long)layout.numStripes);

        auto stats = (*host)->run(requests);
        if (!stats) {
            std::fprintf(stderr, "run: %s\n", stats.message().c_str());
            return 1;
        }
        std::printf("  %llu requests in %.2f s  ->  %.0f req/s   "
                    "(io yields %llu, epoch preemptions %llu, "
                    "transitions %llu)\n\n",
                    (unsigned long long)stats->completed,
                    stats->elapsedSec, stats->throughputRps,
                    (unsigned long long)stats->ioYields,
                    (unsigned long long)stats->epochYields,
                    (unsigned long long)stats->transitions);
    }
    std::printf("every instance ran in its own ColorGuard stripe; IO "
                "waits overlapped inside one address space.\n");
    return 0;
}
