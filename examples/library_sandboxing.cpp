/**
 * @file
 * Firefox-style library sandboxing (the paper's §6.1 scenario): run an
 * untrusted XML parser and an untrusted font rasterizer inside a
 * wasm2c-style sandbox, with Segue's segment-relative addressing, and
 * show that malformed input is contained.
 *
 *   $ ./examples/library_sandboxing
 */
#include <cstdio>
#include <cstring>

#include "w2c/expat_lite.h"
#include "w2c/graphite_lite.h"
#include "w2c/heap.h"

using namespace sfi;
using namespace sfi::w2c;

int
main()
{
    // A 16 MiB sandbox heap inside a 4 GiB + guard reservation.
    auto heap = SandboxHeap::create(16 * kMiB);
    if (!heap) {
        std::fprintf(stderr, "heap: %s\n", heap.message().c_str());
        return 1;
    }

    // --- sandboxed XML parsing (libexpat stand-in) ---
    std::string svg = makeSvgDocument(/*icons=*/12, /*repeat=*/1);
    std::memcpy(heap->base(), svg.data(), svg.size());
    {
        // Entering the sandbox = setting the segment base (Segue).
        auto guard = heap->enter<SeguePolicy>();
        auto p = heap->policy<SeguePolicy>();
        XmlStats st =
            parseXml(p, 0, uint32_t(svg.size()), 8 * kMiB);
        std::printf("SVG parse (sandboxed, Segue): %u elements, "
                    "%u attributes, depth %u, well-formed=%d\n",
                    st.elements, st.attributes, st.maxDepth,
                    st.wellFormed);
    }

    // Hostile input: mismatched tags. The parser rejects it; nothing
    // outside the sandbox heap was ever addressable.
    const char* evil = "<a><b href='x'></a></b><unclosed>";
    std::memcpy(heap->base(), evil, std::strlen(evil));
    {
        auto guard = heap->enter<SeguePolicy>();
        auto p = heap->policy<SeguePolicy>();
        XmlStats st = parseXml(p, 0, uint32_t(std::strlen(evil)),
                               8 * kMiB);
        std::printf("hostile XML: well-formed=%d (contained)\n",
                    st.wellFormed);
    }

    // --- sandboxed font rendering (libgraphite stand-in) ---
    buildSyntheticFont(heap->base(), 0);
    uint64_t cs = 0;
    const char* text = "Segue";
    for (const char* c = text; *c; c++) {
        // Firefox enters the sandbox once per glyph (§6.1).
        auto guard = heap->enter<SeguePolicy>();
        auto p = heap->policy<SeguePolicy>();
        cs = cs * 31 + renderGlyph(p, 0, uint32_t(*c) % kFontGlyphs,
                                   /*size_px=*/24, 4 * kMiB, 8 * kMiB);
    }
    std::printf("rendered \"%s\" at 24px inside the sandbox "
                "(coverage checksum %llx)\n",
                text, (unsigned long long)cs);

    // Render one glyph as ASCII art to prove real pixels came out.
    {
        auto guard = heap->enter<SeguePolicy>();
        auto p = heap->policy<SeguePolicy>();
        renderGlyph(p, 0, 'S' % kFontGlyphs, 24, 4 * kMiB, 8 * kMiB);
    }
    std::printf("\nglyph 'S' @24px:\n");
    for (uint32_t y = 0; y < 24; y += 2) {
        for (uint32_t x = 0; x < 24; x++) {
            std::putchar(
                heap->base()[4 * kMiB + y * 24 + x] ? '#' : '.');
        }
        std::putchar('\n');
    }
    return 0;
}
