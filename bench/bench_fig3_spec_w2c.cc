/**
 * @file
 * Figure 3: SPEC-CPU-2006-like suite on the wasm2c-style path,
 * normalized to native. Reports classic SFI vs Segue, plus the
 * bounds-checked variants (§6.1's 25.2% note).
 *
 * Expected shape: wasm2c > 100% on most kernels, Segue cutting a large
 * fraction of that overhead; pointer-chasing kernels (mincost/mcf) may
 * dip below native (the 32-bit-offset cache effect); astar-like tight
 * loops may show Segue's instruction-length cost (§6.1 outliers).
 */
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "w2c/heap.h"
#include "w2c/kernels.h"

namespace sfi::w2c {
namespace {

constexpr uint32_t kScale = 16;
constexpr int kReps = 5;

template <typename P>
double
timeKernel(int k, uint64_t* checksum)
{
    auto heap = SandboxHeap::create(kernelHeapBytes(kScale));
    SFI_CHECK(heap.isOk());
    auto guard = heap->template enter<P>();
    P policy = heap->template policy<P>();
    uint64_t cs = 0;
    double sec = bench::timeMinSec(
        [&] { cs += kKernels<P>[k].fn(policy, kScale); }, kReps);
    *checksum ^= cs;
    return sec;
}

int
run(int argc, char** argv)
{
    bench::header("Figure 3 — Segue on wasm2c: SPEC CPU 2006 analogs",
                  "norm. runtime vs native; paper: Segue removes 44.7% "
                  "of geomean overhead");
    bench::JsonEmitter json(argc, argv, "fig3_spec_w2c");

    std::printf("%-16s %10s %10s %10s %10s %10s\n", "benchmark",
                "native(s)", "wasm2c", "+segue", "bounds", "b+segue");
    std::vector<double> over_base, over_segue, over_bounds,
        over_sbounds;
    uint64_t sink = 0;
    for (int k = 0; k < kNumKernels; k++) {
        double native = timeKernel<NativePolicy>(k, &sink);
        double base = timeKernel<BaseAddPolicy>(k, &sink);
        double segue = timeKernel<SeguePolicy>(k, &sink);
        double bounds = timeKernel<BoundsPolicy>(k, &sink);
        double sbounds = timeKernel<SegueBoundsPolicy>(k, &sink);
        std::printf("%-16s %10.3f %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
                    kKernels<NativePolicy>[k].name, native,
                    100 * base / native, 100 * segue / native,
                    100 * bounds / native, 100 * sbounds / native);
        json.row()
            .field("benchmark",
                   std::string(kKernels<NativePolicy>[k].name))
            .field("scale", int(kScale))
            .field("heap_bytes", kernelHeapBytes(kScale))
            .field("native_sec", native)
            .field("wasm2c_norm", base / native)
            .field("segue_norm", segue / native)
            .field("bounds_norm", bounds / native)
            .field("bounds_segue_norm", sbounds / native);
        over_base.push_back(base / native);
        over_segue.push_back(segue / native);
        over_bounds.push_back(bounds / native);
        over_sbounds.push_back(sbounds / native);
    }
    double gb = geomean(over_base), gs = geomean(over_segue);
    double gbo = geomean(over_bounds), gso = geomean(over_sbounds);
    json.row()
        .field("benchmark", std::string("geomean"))
        .field("wasm2c_norm", gb)
        .field("segue_norm", gs)
        .field("bounds_norm", gbo)
        .field("bounds_segue_norm", gso);
    bench::hr();
    std::printf("%-16s %10s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", "geomean",
                "", 100 * gb, 100 * gs, 100 * gbo, 100 * gso);
    if (gb > 1.0) {
        std::printf(
            "Segue eliminates %.1f%% of wasm2c's overhead "
            "(paper: 44.7%%)\n",
            100 * (gb - gs) / (gb - 1.0));
    }
    if (gbo > 1.0) {
        std::printf(
            "Segue eliminates %.1f%% of the bounds-checked overhead "
            "(paper: 25.2%%)\n",
            100 * (gbo - gso) / (gbo - 1.0));
    }
    std::printf("(sink=%llx)\n", (unsigned long long)sink);
    return 0;
}

}  // namespace
}  // namespace sfi::w2c

int
main(int argc, char** argv)
{
    return sfi::w2c::run(argc, argv);
}
