/**
 * @file
 * Concurrent pooling-allocator scaling: allocate/touch/free cycle
 * throughput vs. thread count for the three recycling strategies the
 * pool supports (§5.1 production-allocator model):
 *
 *   cold      — no warm cache; every free decommits synchronously
 *               (madvise on the request path, refault on reuse).
 *   warm      — warm-slot affinity; freed slots stay committed in a
 *               per-shard cache and are reused after a dirty-span
 *               memset, keeping PTEs and MPK colors warm.
 *   deferred  — no warm cache, decommit batched on the background
 *               reclamation thread (off the critical path).
 *
 * Each worker thread loops: allocate() -> write kTouchBytes -> free()
 * with the touched length. Reports ops/sec per configuration at 1-16
 * threads, the pool's own counters (warm hits, steals, decommits), and
 * the single-thread warm-vs-cold latency ratio. `--json out.json`
 * emits the table machine-readably.
 *
 * Note: scaling past the machine's core count measures oversubscription
 * (on a 1-core host all thread counts serialize); the interesting
 * signal there is that throughput does not *collapse* from lock
 * contention.
 */
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "base/units.h"
#include "bench/bench_util.h"
#include "mpk/mpk.h"
#include "pool/pool.h"

namespace sfi {
namespace {

constexpr uint64_t kNumSlots = 64;
constexpr uint64_t kSlotBytes = 2 * kMiB;
constexpr uint64_t kTouchBytes = 64 * kKiB;
constexpr int kItersPerThread = 2000;

struct Config
{
    const char* name;
    uint32_t warmSlotsPerShard;
    bool deferredDecommit;
};

constexpr Config kConfigs[] = {
    {"cold", 0, false},
    {"warm", 8, false},
    {"deferred", 0, true},
};

struct RunResult
{
    double opsPerSec = 0;
    double nsPerOp = 0;
    pool::MemoryPool::Stats stats;
};

RunResult
runConfig(const Config& cfg, int threads)
{
    auto mpk = mpk::makeEmulated(0);
    pool::MemoryPool::Options opt;
    opt.config.numSlots = kNumSlots;
    opt.config.maxMemoryBytes = kSlotBytes;
    opt.config.stripingEnabled = true;
    opt.mpk = mpk.get();
    opt.shards = uint32_t(threads);
    opt.warmSlotsPerShard = cfg.warmSlotsPerShard;
    opt.deferredDecommit = cfg.deferredDecommit;
    // Small budget so the reclaimer actually runs during the bench
    // instead of deferring everything to destruction.
    opt.dirtyByteBudget = 1 * kMiB;
    auto pool = pool::MemoryPool::create(std::move(opt));
    SFI_CHECK_MSG(pool.isOk(), "%s", pool.message().c_str());

    auto worker = [&pool] {
        for (int i = 0; i < kItersPerThread; i++) {
            auto slot = pool->allocate();
            SFI_CHECK(slot.isOk());
            // Touch the slot the way an instance would: dirty a
            // footprint that free() then reports as the high-water
            // mark.
            std::memset(slot->base, 0xab, kTouchBytes);
            SFI_CHECK(pool->free(*slot, kTouchBytes).isOk());
        }
    };

    uint64_t t0 = monotonicNs();
    if (threads == 1) {
        worker();
    } else {
        std::vector<std::thread> pool_threads;
        for (int t = 0; t < threads; t++)
            pool_threads.emplace_back(worker);
        for (auto& t : pool_threads)
            t.join();
    }
    pool->quiesce();
    uint64_t t1 = monotonicNs();

    RunResult r;
    double ops = double(threads) * kItersPerThread;
    r.opsPerSec = ops * 1e9 / double(t1 - t0);
    r.nsPerOp = double(t1 - t0) / ops;
    r.stats = pool->stats();
    return r;
}

int
run(int argc, char** argv)
{
    bench::header("Pool scaling — allocate/touch/free cycle throughput",
                  "§5.1 concurrent pooling allocator: sharded "
                  "free-lists, warm-slot affinity, deferred decommit");
    bench::JsonEmitter json(argc, argv, "pool_scaling");

    std::printf("slots=%llu  slot=%llu KiB  touch=%llu KiB  "
                "iters/thread=%d  cores=%u\n\n",
                (unsigned long long)kNumSlots,
                (unsigned long long)(kSlotBytes / kKiB),
                (unsigned long long)(kTouchBytes / kKiB), kItersPerThread,
                std::thread::hardware_concurrency());
    std::printf("%-10s %8s %12s %10s %10s %8s %10s\n", "config",
                "threads", "ops/sec", "ns/op", "warm-hit%", "steals",
                "decommits");

    double cold_1t_ns = 0, warm_1t_ns = 0;
    for (const Config& cfg : kConfigs) {
        for (int threads : {1, 2, 4, 8, 16}) {
            RunResult r = runConfig(cfg, threads);
            double warm_pct =
                r.stats.allocations
                    ? 100.0 * double(r.stats.warmHits) /
                          double(r.stats.allocations)
                    : 0;
            std::printf("%-10s %8d %12.0f %10.0f %9.1f%% %8llu %10llu\n",
                        cfg.name, threads, r.opsPerSec, r.nsPerOp,
                        warm_pct, (unsigned long long)r.stats.steals,
                        (unsigned long long)r.stats.decommits);
            if (threads == 1 && std::strcmp(cfg.name, "cold") == 0)
                cold_1t_ns = r.nsPerOp;
            if (threads == 1 && std::strcmp(cfg.name, "warm") == 0)
                warm_1t_ns = r.nsPerOp;
            json.row()
                .field("config", std::string(cfg.name))
                .field("threads", threads)
                .field("ops_per_sec", r.opsPerSec)
                .field("ns_per_op", r.nsPerOp)
                .field("allocations", r.stats.allocations)
                .field("warm_hits", r.stats.warmHits)
                .field("steals", r.stats.steals)
                .field("first_commits", r.stats.firstCommits)
                .field("decommits", r.stats.decommits)
                .field("decommitted_bytes", r.stats.decommittedBytes);
        }
        std::printf("\n");
    }

    if (cold_1t_ns > 0 && warm_1t_ns > 0)
        std::printf("single-thread latency: cold %.0f ns vs warm %.0f ns "
                    "-> warm affinity is %.2fx faster\n",
                    cold_1t_ns, warm_1t_ns, cold_1t_ns / warm_1t_ns);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
