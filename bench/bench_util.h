/**
 * @file
 * Shared helpers for the paper-figure benchmark binaries: repetition
 * timing with median/stddev reporting, table printing, and a
 * machine-readable JSON results emitter (`--json out.json`) so perf
 * trajectories can be tracked across PRs.
 */
#ifndef SFIKIT_BENCH_BENCH_UTIL_H_
#define SFIKIT_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/cpu.h"
#include "base/logging.h"
#include "base/stats.h"

namespace sfi::bench {

/**
 * Times @p fn: one untimed warmup run (absorbing first-rep page-fault
 * and I-cache noise, matching timeMinSec's contract), then @p reps
 * timed runs whose median seconds is returned. The median is the
 * central-tendency estimator (robust to a few interference spikes);
 * use timeMinSec when the noise-floor minimum is wanted instead. A
 * value computed by fn should be accumulated by the caller to defeat
 * dead-code elimination.
 */
inline double
timeMedianSec(const std::function<void()>& fn, int reps = 5)
{
    fn();  // warmup
    RunningStat stat;
    for (int r = 0; r < reps; r++) {
        uint64_t t0 = monotonicNs();
        fn();
        uint64_t t1 = monotonicNs();
        stat.add(double(t1 - t0) / 1e9);
    }
    return stat.median();
}

/**
 * Best-of-N timing with one warmup run. On shared/virtualized hosts the
 * minimum is the standard noise-robust estimator (interference only
 * ever adds time).
 */
inline double
timeMinSec(const std::function<void()>& fn, int reps = 7)
{
    fn();  // warmup
    RunningStat stat;
    for (int r = 0; r < reps; r++) {
        uint64_t t0 = monotonicNs();
        fn();
        uint64_t t1 = monotonicNs();
        stat.add(double(t1 - t0) / 1e9);
    }
    return stat.min();
}

/**
 * Times several competing configurations with interleaved repetitions
 * (a-b-c, a-b-c, ...) so machine-load bursts hit every configuration
 * equally, then returns the per-configuration minimum.
 */
inline std::vector<double>
timeInterleavedMinSec(const std::vector<std::function<void()>>& fns,
                      int reps = 5)
{
    std::vector<double> best(fns.size(), 1e100);
    for (const auto& fn : fns)
        fn();  // warmup
    for (int r = 0; r < reps; r++) {
        for (size_t i = 0; i < fns.size(); i++) {
            uint64_t t0 = monotonicNs();
            fns[i]();
            uint64_t t1 = monotonicNs();
            double sec = double(t1 - t0) / 1e9;
            if (sec < best[i])
                best[i] = sec;
        }
    }
    return best;
}

inline void
hr()
{
    std::printf(
        "--------------------------------------------------------------"
        "--------\n");
}

inline void
header(const char* title, const char* paper_ref)
{
    hr();
    std::printf("%s\n  reproduces: %s\n", title, paper_ref);
    hr();
}

/**
 * Machine-readable results sink. Construct from main()'s argv; when the
 * user passed `--json <path>` every row() lands in a JSON file of the
 * shape
 *
 *   {"bench": "<name>", "results": [{"metric": 1.0, ...}, ...]}
 *
 * on destruction. Without the flag all calls are no-ops, so benches can
 * emit rows unconditionally.
 */
class JsonEmitter
{
  public:
    /** One result row: a flat set of string/number fields. */
    class Row
    {
      public:
        Row&
        field(const char* name, double value)
        {
            // JSON has no NaN/Infinity literals; %.17g would print
            // `nan`/`inf` and corrupt the file for strict parsers
            // (like the perf-lab's). Non-finite measurements become
            // null.
            if (!std::isfinite(value)) {
                fields_.emplace_back(name, "null");
                return *this;
            }
            char buf[64];
            std::snprintf(buf, sizeof buf, "%.17g", value);
            fields_.emplace_back(name, buf);
            return *this;
        }

        Row&
        field(const char* name, uint64_t value)
        {
            fields_.emplace_back(
                name, std::to_string((unsigned long long)value));
            return *this;
        }

        Row&
        field(const char* name, int value)
        {
            fields_.emplace_back(name, std::to_string(value));
            return *this;
        }

        Row&
        field(const char* name, const std::string& value)
        {
            fields_.emplace_back(name, "\"" + escape(value) + "\"");
            return *this;
        }

      private:
        friend class JsonEmitter;

        static std::string
        escape(const std::string& s)
        {
            std::string out;
            for (char c : s) {
                unsigned char u = static_cast<unsigned char>(c);
                switch (c) {
                case '"': out += "\\\""; break;
                case '\\': out += "\\\\"; break;
                case '\b': out += "\\b"; break;
                case '\f': out += "\\f"; break;
                case '\n': out += "\\n"; break;
                case '\r': out += "\\r"; break;
                case '\t': out += "\\t"; break;
                default:
                    // Remaining control characters are illegal raw in
                    // JSON strings; \uXXXX-escape them.
                    if (u < 0x20) {
                        char buf[8];
                        std::snprintf(buf, sizeof buf, "\\u%04x", u);
                        out += buf;
                    } else {
                        out.push_back(c);
                    }
                }
            }
            return out;
        }

        /** name -> already-JSON-encoded value */
        std::vector<std::pair<std::string, std::string>> fields_;
    };

    JsonEmitter(int argc, char** argv, const char* bench_name)
        : benchName_(bench_name)
    {
        for (int i = 1; i < argc; i++) {
            if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
                path_ = argv[i + 1];
            else if (std::strncmp(argv[i], "--json=", 7) == 0)
                path_ = argv[i] + 7;
        }
    }

    ~JsonEmitter() { write(); }

    bool enabled() const { return !path_.empty(); }

    /**
     * Appends and returns a fresh result row. The reference stays
     * valid across later row() calls — rows_ is a deque precisely so a
     * bench can hold one row open while emitting others (a vector
     * would invalidate it on reallocation).
     */
    Row& row()
    {
        rows_.emplace_back();
        return rows_.back();
    }

    /** Writes the file now (also runs at destruction). */
    void
    write()
    {
        if (path_.empty() || written_)
            return;
        std::FILE* f = std::fopen(path_.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         path_.c_str());
            return;
        }
        std::fprintf(f, "{\"bench\": \"%s\", \"results\": [\n",
                     benchName_.c_str());
        for (size_t i = 0; i < rows_.size(); i++) {
            std::fprintf(f, "  {");
            const auto& fields = rows_[i].fields_;
            for (size_t j = 0; j < fields.size(); j++) {
                std::fprintf(f, "\"%s\": %s%s", fields[j].first.c_str(),
                             fields[j].second.c_str(),
                             j + 1 < fields.size() ? ", " : "");
            }
            std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(f, "]}\n");
        std::fclose(f);
        std::printf("results written to %s\n", path_.c_str());
        written_ = true;
    }

  private:
    std::string benchName_;
    std::string path_;
    std::deque<Row> rows_;
    bool written_ = false;
};

}  // namespace sfi::bench

#endif  // SFIKIT_BENCH_BENCH_UTIL_H_
