/**
 * @file
 * Shared helpers for the paper-figure benchmark binaries: repetition
 * timing with median/stddev reporting and table printing.
 */
#ifndef SFIKIT_BENCH_BENCH_UTIL_H_
#define SFIKIT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "base/cpu.h"
#include "base/stats.h"

namespace sfi::bench {

/**
 * Times @p fn: runs it @p reps times, returns the median seconds per
 * run. A value computed by fn should be accumulated by the caller to
 * defeat dead-code elimination.
 */
inline double
timeMedianSec(const std::function<void()>& fn, int reps = 5)
{
    RunningStat stat;
    for (int r = 0; r < reps; r++) {
        uint64_t t0 = monotonicNs();
        fn();
        uint64_t t1 = monotonicNs();
        stat.add(double(t1 - t0) / 1e9);
    }
    return stat.median();
}

/**
 * Best-of-N timing with one warmup run. On shared/virtualized hosts the
 * minimum is the standard noise-robust estimator (interference only
 * ever adds time).
 */
inline double
timeMinSec(const std::function<void()>& fn, int reps = 7)
{
    fn();  // warmup
    RunningStat stat;
    for (int r = 0; r < reps; r++) {
        uint64_t t0 = monotonicNs();
        fn();
        uint64_t t1 = monotonicNs();
        stat.add(double(t1 - t0) / 1e9);
    }
    return stat.min();
}

/**
 * Times several competing configurations with interleaved repetitions
 * (a-b-c, a-b-c, ...) so machine-load bursts hit every configuration
 * equally, then returns the per-configuration minimum.
 */
inline std::vector<double>
timeInterleavedMinSec(const std::vector<std::function<void()>>& fns,
                      int reps = 5)
{
    std::vector<double> best(fns.size(), 1e100);
    for (const auto& fn : fns)
        fn();  // warmup
    for (int r = 0; r < reps; r++) {
        for (size_t i = 0; i < fns.size(); i++) {
            uint64_t t0 = monotonicNs();
            fns[i]();
            uint64_t t1 = monotonicNs();
            double sec = double(t1 - t0) / 1e9;
            if (sec < best[i])
                best[i] = sec;
        }
    }
    return best;
}

inline void
hr()
{
    std::printf(
        "--------------------------------------------------------------"
        "--------\n");
}

inline void
header(const char* title, const char* paper_ref)
{
    hr();
    std::printf("%s\n  reproduces: %s\n", title, paper_ref);
    hr();
}

}  // namespace sfi::bench

#endif  // SFIKIT_BENCH_BENCH_UTIL_H_
