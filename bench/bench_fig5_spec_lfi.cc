/**
 * @file
 * Figure 5: the SPEC-2017-like suite under the LFI-style backend —
 * classic LFI (explicit truncation + reserved heap register + protected
 * control flow) vs LFI+Segue — normalized to the unsandboxed build.
 *
 * Expected shape: LFI carries a visible geomean overhead from the
 * two-instruction memory pattern and return-address masking; Segue
 * removes the memory half (paper: 17.4% -> 9.4%, eliminating 46%).
 */
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "jit/compiler.h"
#include "runtime/instance.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

using jit::CompilerConfig;

/** Times the workload under several configs with interleaved reps. */
std::vector<double>
timeWorkloadConfigs(const wkld::Workload& w,
                    const std::vector<CompilerConfig>& cfgs,
                    uint64_t* sink)
{
    std::vector<std::unique_ptr<rt::Instance>> instances;
    for (const CompilerConfig& cfg : cfgs) {
        auto shared = rt::SharedModule::compile(w.make(), cfg);
        SFI_CHECK_MSG(shared.isOk(), "%s", shared.message().c_str());
        auto inst = rt::Instance::create(*shared);
        SFI_CHECK(inst.isOk());
        instances.push_back(std::move(*inst));
    }
    std::vector<std::function<void()>> fns;
    for (auto& inst : instances) {
        rt::Instance* p = inst.get();
        fns.push_back([p, &w, sink] {
            auto out = p->call("run", {w.benchScale});
            SFI_CHECK_MSG(out.ok(), "trap in %s", w.name);
            *sink ^= out.value;
        });
    }
    return bench::timeInterleavedMinSec(fns, 5);
}

int
run(int argc, char** argv)
{
    bench::header("Figure 5 — Segue on LFI: SPEC CPU 2017 analogs",
                  "paper: LFI 17.4% geomean overhead -> 9.4% with "
                  "Segue (46% eliminated)");
    bench::JsonEmitter json(argc, argv, "fig5_spec_lfi");

    std::printf("%-18s %11s %9s %10s\n", "benchmark", "native(s)", "lfi",
                "lfi+segue");
    uint64_t sink = 0;
    std::vector<double> lfi_norm, segue_norm;
    for (const auto& w : wkld::spec17()) {
        auto t = timeWorkloadConfigs(
            w,
            {CompilerConfig::native(), CompilerConfig::lfiBase(),
             CompilerConfig::lfiSegue()},
            &sink);
        double native = t[0], lfi = t[1], segue = t[2];
        std::printf("%-18s %11.3f %8.1f%% %9.1f%%\n", w.name, native,
                    100 * lfi / native, 100 * segue / native);
        json.row()
            .field("benchmark", std::string(w.name))
            .field("native_sec", native)
            .field("lfi_norm", lfi / native)
            .field("lfi_segue_norm", segue / native);
        lfi_norm.push_back(lfi / native);
        segue_norm.push_back(segue / native);
    }
    double gl = geomean(lfi_norm), gs = geomean(segue_norm);
    json.row()
        .field("benchmark", std::string("geomean"))
        .field("lfi_norm", gl)
        .field("lfi_segue_norm", gs);
    bench::hr();
    std::printf("%-18s %11s %8.1f%% %9.1f%%\n", "geomean", "", 100 * gl,
                100 * gs);
    if (gl > 1.0) {
        std::printf("Segue eliminates %.0f%% of LFI's overhead "
                    "(paper: 46%%)\n",
                    100 * (gl - gs) / (gl - 1.0));
    }
    std::printf("(sink=%llx)\n", (unsigned long long)sink);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
