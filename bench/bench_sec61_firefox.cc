/**
 * @file
 * §6.1 Firefox library sandboxing: font rendering (graphite_lite) and
 * XML/SVG parsing (expat_lite), unsandboxed vs wasm2c vs wasm2c+Segue.
 * Firefox re-enters the sandbox per glyph / per parse, so the
 * per-invocation segment-base set is included (as the paper notes).
 *
 * Expected shape: sandboxing adds a visible overhead over native;
 * Segue removes most of it (paper: 75% of font overhead, 68% of XML).
 */
#include <cstdio>
#include <algorithm>
#include <cstring>

#include "bench/bench_util.h"
#include "w2c/expat_lite.h"
#include "w2c/graphite_lite.h"
#include "w2c/heap.h"

namespace sfi::w2c {
namespace {

// Ten reflows at different font sizes; every glyph is a separate
// sandbox invocation (matches Firefox's per-glyph calls).
template <typename P>
double
fontBench(uint64_t* sink)
{
    auto heap = SandboxHeap::create(32 * kMiB);
    SFI_CHECK(heap.isOk());
    buildSyntheticFont(heap->base(), 0);
    const uint32_t sizes[10] = {18, 22, 26, 30, 34, 38, 42, 48, 56, 64};
    const char* text =
        "Sphinx of black quartz, judge my vow! 0123456789 "
        "Pack my box with five dozen liquor jugs.";
    size_t text_len = std::strlen(text);

    return bench::timeMinSec([&] {
        uint64_t cs = 0;
        for (uint32_t s : sizes) {
            for (size_t i = 0; i < text_len; i++) {
                auto guard = heap->template enter<P>();
                P p = heap->template policy<P>();
                cs += renderGlyph(p, 0,
                                  uint32_t(text[i]) % kFontGlyphs, s,
                                  4 * kMiB, 8 * kMiB);
            }
        }
        *sink ^= cs;
    });
}

// An SVG (Google-Docs-toolbar-like icon strip) concatenated 10x, parsed
// per §6.1's libexpat benchmark.
template <typename P>
double
xmlBench(uint64_t* sink)
{
    std::string doc = makeSvgDocument(256, 40);
    auto heap = SandboxHeap::create(32 * kMiB);
    SFI_CHECK(heap.isOk());
    std::memcpy(heap->base(), doc.data(), doc.size());

    return bench::timeMinSec([&] {
        // One sandbox entry per document load (Firefox enters the
        // sandboxed parser per parse call).
        auto guard = heap->template enter<P>();
        P p = heap->template policy<P>();
        *sink ^=
            parseXml(p, 0, uint32_t(doc.size()), 16 * kMiB).checksum;
    });
}

int
run()
{
    bench::header("§6.1 — Firefox-style library sandboxing",
                  "font: 264/356/287 ms (native/wasm2c/segue); "
                  "XML: 331/381/347 ms");

    uint64_t sink = 0;
    // Interleave reps across policies (bench_util) by timing each
    // policy several times back-to-back-to-back.
    double fn = 1e100, fb = 1e100, fs = 1e100;
    for (int r = 0; r < 3; r++) {
        fn = std::min(fn, fontBench<NativePolicy>(&sink));
        fb = std::min(fb, fontBench<BaseAddPolicy>(&sink));
        fs = std::min(fs, fontBench<SeguePolicy>(&sink));
    }
    std::printf("font rendering : native %7.2f ms | wasm2c %7.2f ms | "
                "segue %7.2f ms\n",
                fn * 1e3, fb * 1e3, fs * 1e3);
    if (fb > fn) {
        std::printf("  Segue eliminates %.0f%% of sandboxing overhead "
                    "(paper: 75%%)\n",
                    100 * (fb - fs) / (fb - fn));
    }

    double xn = 1e100, xb = 1e100, xs = 1e100;
    for (int r = 0; r < 3; r++) {
        xn = std::min(xn, xmlBench<NativePolicy>(&sink));
        xb = std::min(xb, xmlBench<BaseAddPolicy>(&sink));
        xs = std::min(xs, xmlBench<SeguePolicy>(&sink));
    }
    std::printf("XML/SVG parsing: native %7.2f ms | wasm2c %7.2f ms | "
                "segue %7.2f ms\n",
                xn * 1e3, xb * 1e3, xs * 1e3);
    if (xb > xn) {
        std::printf("  Segue eliminates %.0f%% of sandboxing overhead "
                    "(paper: 68%%)\n",
                    100 * (xb - xs) / (xb - xn));
    }
    std::printf("(sink=%llx)\n", (unsigned long long)sink);
    return 0;
}

}  // namespace
}  // namespace sfi::w2c

int
main()
{
    return sfi::w2c::run();
}
