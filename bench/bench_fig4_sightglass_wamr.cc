/**
 * @file
 * Figure 4: Sightglass-like micros under the WAMR-style JIT — Segue for
 * loads+stores, and loads-only — normalized to the unsandboxed build of
 * the same JIT (our "native" substitute, DESIGN.md §1).
 *
 * Expected shape: most benchmarks within noise of 100%; `memmove` and
 * `sieve` regress sharply under full Segue (the vectorized bulk-memory
 * fast path can't pattern-match segment-relative stores, §4.2) and
 * recover under Segue-for-loads-only.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "jit/compiler.h"
#include "runtime/instance.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

using jit::CompilerConfig;

std::vector<double>
timeWorkloadConfigs(const wkld::Workload& w,
                    const std::vector<CompilerConfig>& cfgs,
                    uint64_t* sink)
{
    std::vector<std::unique_ptr<rt::Instance>> instances;
    for (const CompilerConfig& cfg : cfgs) {
        auto shared = rt::SharedModule::compile(w.make(), cfg);
        SFI_CHECK_MSG(shared.isOk(), "%s", shared.message().c_str());
        auto inst = rt::Instance::create(*shared);
        SFI_CHECK(inst.isOk());
        instances.push_back(std::move(*inst));
    }
    std::vector<std::function<void()>> fns;
    for (auto& inst : instances) {
        rt::Instance* p = inst.get();
        fns.push_back([p, &w, sink] {
            auto out = p->call("run", {w.benchScale});
            SFI_CHECK_MSG(out.ok(), "trap in %s", w.name);
            *sink ^= out.value;
        });
    }
    return bench::timeInterleavedMinSec(fns, 5);
}

int
run(int argc, char** argv)
{
    bench::header(
        "Figure 4 — Sightglass on the WAMR-style JIT",
        "paper: mostly noise; memmove +35.6%, sieve +48.7% with full "
        "Segue; loads-only fixes both");
    bench::JsonEmitter json(argc, argv, "fig4_sightglass_wamr");

    std::printf("%-14s %11s %9s %9s %12s\n", "benchmark", "native(s)",
                "wamr", "+segue", "+segue-loads");
    uint64_t sink = 0;
    std::vector<double> base_overhead, segue_overhead;
    for (const auto& w : wkld::sightglass()) {
        auto t = timeWorkloadConfigs(
            w,
            {CompilerConfig::native(), CompilerConfig::wamrBase(),
             CompilerConfig::wamrSegue(),
             CompilerConfig::wamrSegueLoads()},
            &sink);
        double native = t[0], base = t[1], segue = t[2], loads = t[3];
        std::printf("%-14s %11.3f %8.1f%% %8.1f%% %11.1f%%\n", w.name,
                    native, 100 * base / native, 100 * segue / native,
                    100 * loads / native);
        json.row()
            .field("benchmark", std::string(w.name))
            .field("native_sec", native)
            .field("wamr_norm", base / native)
            .field("segue_norm", segue / native)
            .field("segue_loads_norm", loads / native);
        base_overhead.push_back(base / native);
        segue_overhead.push_back(segue / native);
    }
    bench::hr();
    double gb = geomean(base_overhead), gs = geomean(segue_overhead);
    std::printf("%-14s %11s %8.1f%% %8.1f%%\n", "geomean", "", 100 * gb,
                100 * gs);
    json.row()
        .field("benchmark", std::string("geomean"))
        .field("wamr_norm", gb)
        .field("segue_norm", gs);
    std::printf("(sink=%llx)\n", (unsigned long long)sink);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
