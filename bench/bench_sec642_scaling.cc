/**
 * @file
 * §6.4.2 scaling microbenchmark: how many 408 MB instance slots fit in
 * the user address space without and with ColorGuard.
 *
 * Paper (on 128 GB RAM / 47-bit user space): 14,582 slots classic;
 * 218,716 with ColorGuard (~15x). This machine's VMA budget
 * (vm.max_map_count) caps how much we can actually reserve — exactly
 * the deployment consideration §5.1 discusses — so the bench reports
 * the layout-computed capacity of the 47-bit space, then proves out as
 * many real reservations as the kernel allows.
 */
#include <cstdio>

#include "base/os_mem.h"
#include "base/units.h"
#include "bench/bench_util.h"
#include "mpk/keyring.h"
#include "mpk/mpk.h"
#include "pool/pool.h"

namespace sfi {
namespace {

constexpr uint64_t kSlotBytes = 408 * kMiB;
constexpr uint64_t kUserSpaceBytes = 1ull << 47;

uint64_t
layoutCapacity(bool striping, uint64_t* slot_stride)
{
    pool::PoolConfig cfg;
    cfg.numSlots = 1 << 20;  // stride probe at scale
    cfg.maxMemoryBytes = kSlotBytes;
    cfg.guardBytes = 8 * kGiB - alignUp(kSlotBytes, kWasmPageSize);
    cfg.stripingEnabled = striping;
    auto lay = pool::computeLayout(cfg);
    SFI_CHECK(lay.isOk());
    *slot_stride = lay->slotBytes;
    return kUserSpaceBytes / lay->slotBytes;
}

uint64_t
realReservationProbe(bool striping, uint64_t budget_slots)
{
    auto mpk = mpk::makeEmulated(0);
    pool::MemoryPool::Options opt;
    opt.config.numSlots = budget_slots;
    opt.config.maxMemoryBytes = kSlotBytes;
    opt.config.guardBytes = 8 * kGiB - alignUp(kSlotBytes, kWasmPageSize);
    opt.config.stripingEnabled = striping;
    opt.mpk = mpk.get();
    auto pool = pool::MemoryPool::create(std::move(opt));
    if (!pool)
        return 0;
    return pool->capacity();
}

int
run()
{
    bench::header("§6.4.2 — instance-slot scaling with 408 MB slots",
                  "paper: 14,582 classic -> 218,716 with ColorGuard "
                  "(~15x)");

    uint64_t stride_classic = 0, stride_cg = 0;
    uint64_t classic = layoutCapacity(false, &stride_classic);
    uint64_t cg = layoutCapacity(true, &stride_cg);
    std::printf("47-bit user address space, 8 GiB compiler contract:\n");
    std::printf("  classic guard regions: stride %6.2f GiB -> %8llu "
                "slots\n",
                double(stride_classic) / double(kGiB),
                (unsigned long long)classic);
    std::printf("  ColorGuard striping  : stride %6.2f GiB -> %8llu "
                "slots   (%.1fx)\n",
                double(stride_cg) / double(kGiB),
                (unsigned long long)cg, double(cg) / double(classic));

    std::printf("\nReal reservations on this machine "
                "(vm.max_map_count = %llu, %llu VMAs in use):\n",
                (unsigned long long)maxVmaCount(),
                (unsigned long long)currentVmaCount());
    // Stay well under the VMA limit; each committed slot splits a VMA.
    uint64_t probe_cap =
        std::min<uint64_t>(8192, maxVmaCount() - currentVmaCount() - 512);
    uint64_t got_classic = realReservationProbe(false, probe_cap);
    uint64_t got_cg = realReservationProbe(true, probe_cap);
    std::printf("  classic   : reserved pool of %llu slots "
                "(%.1f TiB address space)\n",
                (unsigned long long)got_classic,
                double(got_classic) * double(stride_classic) / double(kGiB) /
                    1024.0);
    std::printf("  ColorGuard: reserved pool of %llu slots "
                "(%.1f TiB address space)\n",
                (unsigned long long)got_cg,
                double(got_cg) * double(stride_cg) / double(kGiB) /
                    1024.0);
    std::printf(
        "\nNote: fully committing 218K colored slots needs "
        "vm.max_map_count raised beyond the default 65530 (§5.1).\n");

    // The other scaling axis (ISSUE 10): the 15-key protection-key
    // space. Static striping caps concurrent-lifetime sandboxes at 15
    // colors; the generation-counted KeyRing lifts the cap by
    // recycling retired keys (quiesce -> retag -> reissue) and, past
    // exhaustion, sharing live colors.
    {
        auto sys = mpk::makeEmulated();
        mpk::KeyRing::Options ropt;
        ropt.system = sys.get();
        mpk::KeyRing ring(ropt);
        constexpr int kLive = 64;
        std::vector<mpk::Lease> leases;
        for (int i = 0; i < kLive; i++) {
            auto l = ring.acquire(nullptr);
            SFI_CHECK_MSG(l.isOk(), "%s", l.message().c_str());
            leases.push_back(*l);
        }
        // Drain the whole cohort and refill: every key retires, so the
        // first acquire of the second generation runs a recycle epoch
        // (quiesce -> retag -> reissue) before sharing resumes.
        for (const mpk::Lease& l : leases)
            ring.release(l);
        for (int i = 0; i < kLive; i++) {
            auto l = ring.acquire(nullptr);
            SFI_CHECK_MSG(l.isOk(), "%s", l.message().c_str());
            leases[size_t(i)] = *l;
        }
        mpk::KeyRing::Stats ks = ring.stats();
        std::printf("\nKey-space scaling (15 hardware keys, "
                    "generation-counted recycling):\n");
        std::printf("  concurrent leases    : %d (4.3x the static "
                    "stripe cap)\n",
                    kLive);
        std::printf("  recycle epochs %llu, keys recycled %llu, "
                    "shared-color leases %llu\n",
                    (unsigned long long)ks.keyRecycles,
                    (unsigned long long)ks.keysRecycled,
                    (unsigned long long)ks.keyShares);
        SFI_CHECK(ks.keyShares > 0);
        SFI_CHECK(ks.keyRecycles > 0);
        for (const mpk::Lease& l : leases)
            ring.release(l);
    }
    return 0;
}

}  // namespace
}  // namespace sfi

int
main()
{
    return sfi::run();
}
