/**
 * @file
 * §6.4.1: sandbox-transition microbenchmark (Wasmtime's call.rs
 * analog). Measures the cost of calling a trivial exported function —
 * the full transition in and out — without and with ColorGuard's PKRU
 * switch, plus the isolated cost of the (modelled/real) wrpkru write
 * and the two %gs write paths.
 *
 * Paper: 30.34 ns -> 51.52 ns per transition (~44 cycles for wrpkru).
 */
#include <benchmark/benchmark.h>

#include "jit/compiler.h"
#include "mpk/mpk.h"
#include "runtime/instance.h"
#include "seg/seg.h"
#include "wasm/builder.h"

namespace sfi {
namespace {

using VT = wasm::ValType;

std::unique_ptr<rt::Instance>
makeTrivialInstance(const jit::CompilerConfig& cfg, mpk::System* mpk,
                    mpk::Pkey key)
{
    wasm::ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("nop", {VT::I32}, {VT::I32});
    f.localGet(0).end();
    mb.exportFunc("nop", f.index());
    auto shared = rt::SharedModule::compile(std::move(mb).build(), cfg);
    SFI_CHECK(shared.isOk());
    rt::Instance::Options opts;
    opts.mpkSystem = mpk;
    opts.pkey = key;
    auto inst = rt::Instance::create(*shared, {}, std::move(opts));
    SFI_CHECK(inst.isOk());
    return std::move(*inst);
}

void
BM_TransitionBaseline(benchmark::State& state)
{
    auto inst = makeTrivialInstance(jit::CompilerConfig::wamrBase(),
                                    nullptr, 0);
    uint64_t x = 0;
    for (auto _ : state) {
        x += inst->call("nop", {x & 0xff}).value;
    }
    benchmark::DoNotOptimize(x);
    state.SetLabel("plain transition (no gs, no pkru)");
}
BENCHMARK(BM_TransitionBaseline);

void
BM_TransitionSegue(benchmark::State& state)
{
    auto inst = makeTrivialInstance(jit::CompilerConfig::wamrSegue(),
                                    nullptr, 0);
    uint64_t x = 0;
    for (auto _ : state) {
        x += inst->call("nop", {x & 0xff}).value;
    }
    benchmark::DoNotOptimize(x);
    state.SetLabel("transition + gs base switch (Segue)");
}
BENCHMARK(BM_TransitionSegue);

void
BM_TransitionColorGuard(benchmark::State& state)
{
    static auto mpk = mpk::makeEmulated();
    static mpk::Pkey key = mpk->allocKey().value();
    auto inst = makeTrivialInstance(jit::CompilerConfig::wamrSegue(),
                                    mpk.get(), key);
    uint64_t x = 0;
    for (auto _ : state) {
        x += inst->call("nop", {x & 0xff}).value;
    }
    benchmark::DoNotOptimize(x);
    state.SetLabel(
        "transition + gs + PKRU switch (ColorGuard; paper: +~20ns)");
}
BENCHMARK(BM_TransitionColorGuard);

void
BM_WrpkruAlone(benchmark::State& state)
{
    auto mpk = mpk::makeEmulated();  // models the ~44-cycle wrpkru
    mpk::Pkru a = mpk::Pkru::allowAll();
    mpk::Pkru b = mpk::Pkru::allowOnly(3);
    bool flip = false;
    for (auto _ : state) {
        mpk->writePkru(flip ? a : b);
        flip = !flip;
    }
    state.SetLabel(mpk::hardwareAvailable()
                       ? "hardware wrpkru"
                       : "emulated wrpkru (44-cycle model)");
}
BENCHMARK(BM_WrpkruAlone);

void
BM_GsWriteFsgsbase(benchmark::State& state)
{
    if (!seg::fsgsbaseUsable()) {
        state.SkipWithError("FSGSBASE not usable");
        return;
    }
    uint64_t saved = seg::getGsBase();
    uint64_t v = 0x10000;
    for (auto _ : state) {
        seg::setGsBaseWith(seg::GsWriteMode::Fsgsbase, v);
        v ^= 0x20000;
    }
    seg::setGsBase(saved);
    state.SetLabel("wrgsbase (userspace, post-IvyBridge path)");
}
BENCHMARK(BM_GsWriteFsgsbase);

void
BM_GsWriteArchPrctl(benchmark::State& state)
{
    uint64_t saved = seg::getGsBase();
    uint64_t v = 0x10000;
    for (auto _ : state) {
        seg::setGsBaseWith(seg::GsWriteMode::ArchPrctl, v);
        v ^= 0x20000;
    }
    seg::setGsBase(saved);
    state.SetLabel("arch_prctl syscall (old-CPU fallback, §4.1)");
}
BENCHMARK(BM_GsWriteArchPrctl);

}  // namespace
}  // namespace sfi

BENCHMARK_MAIN();
