/**
 * @file
 * Figure 7: the mechanism behind Figure 6 — (a) OS context switches and
 * (b) dTLB misses, multiprocess vs ColorGuard, as the process count
 * grows. Produced by the simx model at fixed offered load.
 *
 * Expected shape: ColorGuard flat and low on both metrics; the
 * multiprocess rows grow with the process count.
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "simx/faas_sim.h"

namespace sfi {
namespace {

int
run(int argc, char** argv)
{
    bench::header("Figure 7 — context switches and dTLB misses",
                  "paper: both grow with process count for "
                  "multiprocess; ColorGuard stays flat");
    bench::JsonEmitter json(argc, argv, "fig7_ctx_dtlb");

    std::printf("%-10s %16s %16s | %16s %16s\n", "processes",
                "ctx-sw (MP)", "ctx-sw (CG)", "dTLB/req (MP)",
                "dTLB/req (CG)");

    simx::FaasSimConfig base;
    base.computeMeanUs = 150;
    base.simSeconds = 10;

    for (int n = 1; n <= 15; n++) {
        simx::FaasSimConfig mp = base;
        mp.numProcesses = n;
        mp.concurrentRequests = 64 * n;
        simx::FaasSimConfig cg = mp;
        cg.colorguard = true;

        auto rmp = simx::simulateFaas(mp);
        auto rcg = simx::simulateFaas(cg);
        std::printf("%-10d %16llu %16llu | %16.1f %16.1f\n", n,
                    (unsigned long long)rmp.osContextSwitches,
                    (unsigned long long)rcg.osContextSwitches,
                    rmp.dtlbMissesPerRequest(),
                    rcg.dtlbMissesPerRequest());
        json.row()
            .field("processes", n)
            .field("ctx_sw_mp", rmp.osContextSwitches)
            .field("ctx_sw_cg", rcg.osContextSwitches)
            .field("dtlb_per_req_mp", rmp.dtlbMissesPerRequest())
            .field("dtlb_per_req_cg", rcg.dtlbMissesPerRequest());
    }
    std::printf("\n(10 simulated seconds per cell; 64 concurrent "
                "requests per process-equivalent)\n");
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
