/**
 * @file
 * Transition-tier microbenchmark (§6.4.1): the per-entry cost of the
 * sandbox transition under the four optimization tiers this repo
 * implements on top of the seed trampoline, per SFI strategy.
 *
 *   full     seed behavior: full-save entry stub (every callee-saved
 *            GPR pushed whether or not the module touches it) plus
 *            save/restore of the host %gs base on every entry.
 *   cold     lean stubs, but every entry targets a *different*
 *            instance, so the per-thread %gs cache never hits and
 *            Segue strategies pay the segment write each time.
 *   warm     lean stubs, repeated re-entry into one instance: the
 *            common case. The %gs write is skipped via the cache.
 *   direct   warm + the typed direct-entry stub: up to four integer
 *            args travel in registers and the marshal-slot array is
 *            never touched (springboard elimination).
 *   batched  direct calls inside one EntryScope: %gs/PKRU/fault-
 *            ownership setup performed once and amortized over N
 *            calls ("enter once, service N requests").
 *
 * Three sections (all rows land in `--json out.json`):
 *   tiers    ns/transition for every strategy x tier on a trivial
 *            export (the Wasmtime call.rs analog).
 *   w2c      end-to-end effect on the §6.1 Firefox-style harnesses:
 *            graphite_lite per-glyph and expat_lite per-parse with the
 *            seed save/restore entry (ScopedGsBase) vs the amortized
 *            cached entry (CachedGsBase).
 *   faas     the real FaaS host, closed loop, batchMax swept: batched
 *            scheduler entry vs one-entry-per-request, with the
 *            transition counters surfaced.
 */
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "faas/scheduler.h"
#include "jit/compiler.h"
#include "mpk/mpk.h"
#include "runtime/instance.h"
#include "seg/seg.h"
#include "w2c/expat_lite.h"
#include "w2c/graphite_lite.h"
#include "w2c/heap.h"
#include "wasm/builder.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

using VT = wasm::ValType;

// ---------------------------------------------------------------- tiers

struct StrategyRow
{
    const char* name;
    jit::CompilerConfig cfg;
    bool colorguard;
};

std::vector<StrategyRow>
strategies()
{
    using jit::CompilerConfig;
    using jit::MemStrategy;
    return {
        {"native", CompilerConfig::native(), false},
        {"base", CompilerConfig::wamrBase(), false},
        {"segue", CompilerConfig::wamrSegue(), false},
        {"segue-loads", CompilerConfig::wamrSegueLoads(), false},
        {"bounds", {.mem = MemStrategy::BoundsCheck}, false},
        {"segue-bounds", {.mem = MemStrategy::SegueBounds}, false},
        {"lfi-base", CompilerConfig::lfiBase(), false},
        {"lfi-segue", CompilerConfig::lfiSegue(), false},
        {"segue+cg", CompilerConfig::wamrSegue(), true},
    };
}

std::shared_ptr<const rt::SharedModule>
compileNop(jit::CompilerConfig cfg)
{
    wasm::ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("nop", {VT::I32}, {VT::I32});
    f.localGet(0).end();
    mb.exportFunc("nop", f.index());
    auto shared = rt::SharedModule::compile(std::move(mb).build(), cfg);
    SFI_CHECK_MSG(shared.isOk(), "%s", shared.message().c_str());
    return *shared;
}

std::unique_ptr<rt::Instance>
makeInstance(std::shared_ptr<const rt::SharedModule> shared,
             mpk::System* mpk, mpk::Pkey key, rt::TransitionTier tier)
{
    rt::Instance::Options opts;
    opts.mpkSystem = mpk;
    opts.pkey = key;
    opts.transitionTier = tier;
    auto inst = rt::Instance::create(std::move(shared), {}, std::move(opts));
    SFI_CHECK_MSG(inst.isOk(), "%s", inst.message().c_str());
    return std::move(*inst);
}

constexpr int kCalls = 20000;

double
nsPerCall(const std::function<void()>& fn)
{
    return bench::timeMinSec(fn, 5) * 1e9 / double(kCalls);
}

void
runTiers(bench::JsonEmitter& json)
{
    static auto mpk = mpk::makeEmulated();
    static mpk::Pkey key = mpk->allocKey().value();

    std::printf("ns per transition (trivial export, %d calls/rep, "
                "best of 5):\n",
                kCalls);
    std::printf("%-14s %8s %8s %8s %8s %8s\n", "strategy", "full",
                "cold", "warm", "direct", "batched");

    uint64_t grand = 0;
    for (const StrategyRow& s : strategies()) {
        mpk::System* sys = s.colorguard ? mpk.get() : nullptr;
        mpk::Pkey pk = s.colorguard ? key : 0;

        jit::CompilerConfig full_cfg = s.cfg;
        full_cfg.fullSaveEntry = true;
        auto full_shared = compileNop(full_cfg);
        auto lean_shared = compileNop(s.cfg);
        uint32_t fidx = lean_shared->module().exports.at("nop");

        auto inst_full = makeInstance(full_shared, sys, pk,
                                      rt::TransitionTier::Full);
        auto inst_a = makeInstance(lean_shared, sys, pk,
                                   rt::TransitionTier::Lean);
        auto inst_b = makeInstance(lean_shared, sys, pk,
                                   rt::TransitionTier::Lean);

        uint64_t sink = 0;
        std::vector<uint64_t> args{0};

        double t_full = nsPerCall([&] {
            for (int i = 0; i < kCalls; i++) {
                args[0] = uint64_t(i & 0xff);
                sink += inst_full->callFunction(fidx, args).value;
            }
        });
        double t_cold = nsPerCall([&] {
            for (int i = 0; i < kCalls; i++) {
                args[0] = uint64_t(i & 0xff);
                rt::Instance* in = (i & 1) ? inst_b.get() : inst_a.get();
                sink += in->callFunction(fidx, args).value;
            }
        });
        double t_warm = nsPerCall([&] {
            for (int i = 0; i < kCalls; i++) {
                args[0] = uint64_t(i & 0xff);
                sink += inst_a->callFunction(fidx, args).value;
            }
        });
        auto de = inst_a->directEntry("nop");
        SFI_CHECK(de.direct());
        double t_direct = nsPerCall([&] {
            for (int i = 0; i < kCalls; i++) {
                args[0] = uint64_t(i & 0xff);
                sink += de.call(args).value;
            }
        });
        double t_batched = nsPerCall([&] {
            auto scope = inst_a->enter();
            for (int i = 0; i < kCalls; i++) {
                args[0] = uint64_t(i & 0xff);
                sink += de.call(args).value;
            }
        });
        // The instrumented counters double as a correctness check on
        // the tier semantics: warm re-entry must actually skip the
        // segment write for %gs strategies.
        if (s.cfg.needsGsBase())
            SFI_CHECK(inst_a->gsSwitchesSkipped() > 0);

        std::printf("%-14s %8.1f %8.1f %8.1f %8.1f %8.1f\n", s.name,
                    t_full, t_cold, t_warm, t_direct, t_batched);
        json.row()
            .field("section", std::string("tiers"))
            .field("strategy", std::string(s.name))
            .field("calls", kCalls)
            .field("full_ns", t_full)
            .field("cold_ns", t_cold)
            .field("warm_ns", t_warm)
            .field("direct_ns", t_direct)
            .field("batched_ns", t_batched)
            .field("gs_switches", inst_a->gsSwitches())
            .field("gs_switches_skipped", inst_a->gsSwitchesSkipped());
        grand ^= sink;
    }
    std::printf("(full = seed full-save stub + gs save/restore; the "
                "others use the lean contract stubs; sink=%llx)\n\n",
                (unsigned long long)grand);
}

// ----------------------------------------------------------------- w2c

// Mirrors bench_sec61_firefox's per-glyph harness; Cached switches the
// per-entry ScopedGsBase (save + write + restore) for the amortized
// CachedGsBase path.
template <typename P, bool Cached>
double
fontBench(uint64_t* sink)
{
    auto heap = w2c::SandboxHeap::create(32 * kMiB);
    SFI_CHECK(heap.isOk());
    w2c::buildSyntheticFont(heap->base(), 0);
    const uint32_t sizes[10] = {18, 22, 26, 30, 34, 38, 42, 48, 56, 64};
    const char* text =
        "Sphinx of black quartz, judge my vow! 0123456789 "
        "Pack my box with five dozen liquor jugs.";
    size_t text_len = std::strlen(text);

    return bench::timeMinSec([&] {
        uint64_t cs = 0;
        for (uint32_t s : sizes) {
            for (size_t i = 0; i < text_len; i++) {
                std::unique_ptr<seg::ScopedGsBase> guard;
                if constexpr (Cached)
                    heap->template enterCached<P>();
                else
                    guard = heap->template enter<P>();
                P p = heap->template policy<P>();
                cs += renderGlyph(p, 0,
                                  uint32_t(text[i]) % w2c::kFontGlyphs,
                                  s, 4 * kMiB, 8 * kMiB);
            }
        }
        *sink ^= cs;
    });
}

template <typename P, bool Cached>
double
xmlBench(uint64_t* sink)
{
    std::string doc = w2c::makeSvgDocument(256, 40);
    auto heap = w2c::SandboxHeap::create(32 * kMiB);
    SFI_CHECK(heap.isOk());
    std::memcpy(heap->base(), doc.data(), doc.size());

    return bench::timeMinSec([&] {
        std::unique_ptr<seg::ScopedGsBase> guard;
        if constexpr (Cached)
            heap->template enterCached<P>();
        else
            guard = heap->template enter<P>();
        P p = heap->template policy<P>();
        *sink ^= w2c::parseXml(p, 0, uint32_t(doc.size()), 16 * kMiB)
                     .checksum;
    });
}

void
runW2c(bench::JsonEmitter& json)
{
    std::printf("w2c end-to-end (Segue policy, §6.1 harnesses), "
                "scoped vs cached %%gs entry:\n");
    uint64_t sink_a = 0, sink_b = 0;
    double fs = 1e100, fc = 1e100, xs = 1e100, xc = 1e100;
    for (int r = 0; r < 3; r++) {
        fs = std::min(fs, fontBench<w2c::SeguePolicy, false>(&sink_a));
        fc = std::min(fc, fontBench<w2c::SeguePolicy, true>(&sink_b));
        xs = std::min(xs, xmlBench<w2c::SeguePolicy, false>(&sink_a));
        xc = std::min(xc, xmlBench<w2c::SeguePolicy, true>(&sink_b));
    }
    // Identical computation, different entry discipline.
    SFI_CHECK(sink_a == sink_b);
    std::printf("  font (per-glyph entry): scoped %7.2f ms | cached "
                "%7.2f ms  (%+.1f%%)\n",
                fs * 1e3, fc * 1e3, 100 * (fc - fs) / fs);
    std::printf("  XML  (per-parse entry): scoped %7.2f ms | cached "
                "%7.2f ms  (%+.1f%%)\n",
                xs * 1e3, xc * 1e3, 100 * (xc - xs) / xs);
    json.row()
        .field("section", std::string("w2c"))
        .field("workload", std::string("font"))
        .field("scoped_ms", fs * 1e3)
        .field("cached_ms", fc * 1e3);
    json.row()
        .field("section", std::string("w2c"))
        .field("workload", std::string("xml"))
        .field("scoped_ms", xs * 1e3)
        .field("cached_ms", xc * 1e3);
    std::printf("\n");
}

// ---------------------------------------------------------------- faas

void
runFaas(bench::JsonEmitter& json)
{
    const auto& w = wkld::faasWorkloads()[0];
    const uint64_t kReqs = 1200;
    std::printf("FaaS host, closed loop, %llu requests (%s), batched "
                "entry swept:\n",
                (unsigned long long)kReqs, w.name);
    std::printf("%8s %10s %12s %12s %12s %10s\n", "batch", "rps",
                "transitions", "gs-skipped", "batched-req", "checksum");

    uint64_t ref_checksum = 0;
    bool have_ref = false;
    for (int batch : {1, 4, 16}) {
        faas::FaasHost::Options opts;
        opts.maxConcurrent = 32;
        opts.workerThreads = std::max(
            1, std::min(4, int(std::thread::hardware_concurrency())));
        opts.ioDelayMeanMs = 0.05;
        opts.batchMax = batch;
        auto host = faas::FaasHost::create(w.make(), std::move(opts));
        SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());
        auto stats = (*host)->run(kReqs);
        SFI_CHECK_MSG(stats.isOk(), "%s", stats.message().c_str());
        SFI_CHECK(stats->completed == kReqs);
        // Warm-container batching must not change any response.
        if (!have_ref) {
            ref_checksum = stats->checksum;
            have_ref = true;
        }
        SFI_CHECK(stats->checksum == ref_checksum);

        std::printf("%8d %10.0f %12llu %12llu %12llu %10llx\n", batch,
                    stats->throughputRps,
                    (unsigned long long)stats->sandboxTransitions,
                    (unsigned long long)stats->gsSwitchesSkipped,
                    (unsigned long long)stats->batchedRequests,
                    (unsigned long long)stats->checksum);
        json.row()
            .field("section", std::string("faas"))
            .field("workload", std::string(w.name))
            .field("batch_max", batch)
            .field("requests", stats->completed)
            .field("rps", stats->throughputRps)
            // Counter-normalized cost: wall time over this run's own
            // transition count. The gate treats *_per_transition as a
            // ratio metric and holds it to the 12% precision band
            // where raw rps only gets the loose wall-clock band.
            .field("ns_per_transition",
                   stats->sandboxTransitions
                       ? stats->elapsedSec * 1e9 /
                             double(stats->sandboxTransitions)
                       : 0.0)
            .field("sandbox_transitions", stats->sandboxTransitions)
            .field("gs_switches", stats->gsSwitches)
            .field("gs_switches_skipped", stats->gsSwitchesSkipped)
            .field("batched_requests", stats->batchedRequests);
    }
    std::printf("(checksum verified identical across batch sizes)\n");
}

int
run(int argc, char** argv)
{
    bench::header("Sandbox-transition tiers — §6.4.1 extension",
                  "paper: 30.34 ns plain -> 51.52 ns ColorGuard "
                  "transition; this repo adds the amortized tiers");
    bench::JsonEmitter json(argc, argv, "transitions");

    bool tiers_only = false, w2c_only = false, faas_only = false;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--tiers-only") == 0)
            tiers_only = true;
        if (std::strcmp(argv[i], "--w2c-only") == 0)
            w2c_only = true;
        if (std::strcmp(argv[i], "--faas-only") == 0)
            faas_only = true;
    }
    bool all = !tiers_only && !w2c_only && !faas_only;
    if (all || tiers_only)
        runTiers(json);
    if (all || w2c_only)
        runW2c(json);
    if (all || faas_only)
        runFaas(json);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
