/**
 * @file
 * Ablations beyond the paper's headline numbers:
 *  (1) slot-size sweep — density gain vs slot size (the 8x/15x curve);
 *  (2) key-budget sweep — mixing stripes and guards when fewer than 15
 *      keys are available (§5.1);
 *  (3) epoch-period sweep on the simulated FaaS host — preemption
 *      granularity vs throughput;
 *  (4) 4- vs 5-level paging in the dTLB model (§8's 25% walk-cost
 *      note).
 */
#include <cstdio>

#include "base/units.h"
#include "bench/bench_util.h"
#include "pool/layout.h"
#include "simx/faas_sim.h"

namespace sfi {
namespace {

int
run(int argc, char** argv)
{
    bench::header("Ablations — ColorGuard design-space sweeps",
                  "DESIGN.md ablation index");
    bench::JsonEmitter json(argc, argv, "ablation_colorguard");

    std::printf("(1) density vs slot size (8 GiB contract, 15 keys):\n");
    std::printf("    %-12s %10s %10s %8s\n", "slot size", "stripes",
                "stride", "density");
    for (uint64_t mb : {4096, 2048, 1024, 544, 256, 128}) {
        pool::PoolConfig c;
        c.numSlots = 64;
        c.maxMemoryBytes = mb * kMiB;
        c.guardBytes = 8 * kGiB - alignUp(mb * kMiB, kWasmPageSize);
        c.stripingEnabled = true;
        auto lay = pool::computeLayout(c);
        SFI_CHECK(lay.isOk());
        std::printf("    %8llu MiB %10llu %7.2f GiB %7.1fx\n",
                    (unsigned long long)mb,
                    (unsigned long long)lay->numStripes,
                    double(lay->slotBytes) / double(kGiB),
                    double(8 * kGiB) / double(lay->slotBytes));
        json.row()
            .field("sweep", std::string("slot_size"))
            .field("slot_mib", mb)
            .field("stripes", lay->numStripes)
            .field("stride_bytes", lay->slotBytes)
            .field("density",
                   double(8 * kGiB) / double(lay->slotBytes));
    }

    std::printf("\n(2) density vs available keys (544 MiB slots):\n");
    std::printf("    %-6s %10s %12s %8s\n", "keys", "stripes",
                "slot stride", "density");
    for (int keys : {15, 12, 8, 4, 2, 1}) {
        pool::PoolConfig c;
        c.numSlots = 64;
        c.maxMemoryBytes = 544 * kMiB;
        c.guardBytes = 8 * kGiB - 544 * kMiB;
        c.stripingEnabled = true;
        c.keysAvailable = keys;
        auto lay = pool::computeLayout(c);
        SFI_CHECK(lay.isOk());
        std::printf("    %-6d %10llu %9.2f GiB %7.1fx\n", keys,
                    (unsigned long long)lay->numStripes,
                    double(lay->slotBytes) / double(kGiB),
                    double(8 * kGiB) / double(lay->slotBytes));
        json.row()
            .field("sweep", std::string("key_budget"))
            .field("keys", keys)
            .field("stripes", lay->numStripes)
            .field("stride_bytes", lay->slotBytes)
            .field("density",
                   double(8 * kGiB) / double(lay->slotBytes));
    }

    std::printf("\n(3) epoch period vs ColorGuard throughput "
                "(simulated, 480 concurrent):\n");
    std::printf("    %-12s %14s %14s\n", "epoch", "throughput",
                "transitions/s");
    for (double epoch_ms : {0.1, 0.25, 0.5, 1.0, 2.0, 5.0}) {
        simx::FaasSimConfig cfg;
        cfg.colorguard = true;
        cfg.epochMs = epoch_ms;
        cfg.simSeconds = 5;
        auto r = simx::simulateFaas(cfg);
        std::printf("    %8.2f ms %11.0f rps %14.0f\n", epoch_ms,
                    r.throughputRps,
                    double(r.sandboxTransitions) / cfg.simSeconds);
        json.row()
            .field("sweep", std::string("epoch_period"))
            .field("epoch_ms", epoch_ms)
            .field("rps", r.throughputRps)
            .field("transitions_per_sec",
                   double(r.sandboxTransitions) / cfg.simSeconds);
    }

    std::printf("\n(4) 4- vs 5-level paging (§8), multiprocess N=15:\n");
    for (int levels : {4, 5}) {
        simx::FaasSimConfig cfg;
        cfg.numProcesses = 15;
        cfg.concurrentRequests = 64 * 15;
        cfg.tlb.walkLevels = levels;
        cfg.simSeconds = 5;
        auto r = simx::simulateFaas(cfg);
        std::printf("    %d-level walks: %10.0f rps  (%.1f dTLB "
                    "misses/request)\n",
                    levels, r.throughputRps, r.dtlbMissesPerRequest());
        json.row()
            .field("sweep", std::string("paging_levels"))
            .field("walk_levels", levels)
            .field("rps", r.throughputRps)
            .field("dtlb_per_req", r.dtlbMissesPerRequest());
    }
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
