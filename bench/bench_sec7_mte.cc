/**
 * @file
 * §7: ColorGuard on ARM MTE — the two cost problems the paper's Pixel 8
 * prototype found, reproduced on the MTE emulation:
 *
 *  Observation 1: userspace tagging handles 2 granules (32 B) per
 *  instruction, so striping 40 x 64 KiB linear memories is far slower
 *  than untagged initialization (paper: 79 us -> 2,182 us / instance).
 *
 *  Observation 2: madvise discards tags, so teardown pays a tag-zeroing
 *  walk and every reuse re-tags (paper: 29 us -> 377 us / instance);
 *  a tag-preserving madvise flag (like MPK's sticky PTE colors) makes
 *  recycling free.
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "base/os_mem.h"
#include "base/units.h"
#include "bench/bench_util.h"
#include "mpk/mte.h"
#include "mpk/mte_backend.h"

namespace sfi {
namespace {

constexpr uint32_t kInstances = 40;
constexpr uint64_t kMemBytes = 64 * kKiB;

/**
 * Backend section (ISSUE 10): the same costs through the first-class
 * MteSystem backend — allocKey/protectRange/decommit/re-protect on the
 * common mpk::System interface the pool and scheduler use, with the
 * Observation 1 userspace-ST2G cost modeled. This is the per-slot
 * recycle path an MTE FaaS host actually pays; the granule counters
 * feed the perf-lab's mte_backend baseline.
 */
void
runBackend(bench::JsonEmitter& json)
{
    mpk::MteBackendOptions mopt;
    mopt.modelUserTagCost = true;
    auto sys = mpk::makeMteBackend(mopt);
    // protectRange tags at page granularity; a vector's buffer is not
    // page aligned, so use a real mapping.
    auto mem = Reservation::allocate(kMemBytes);
    SFI_CHECK_MSG(mem.isOk(), "%s", mem.message().c_str());

    auto key = sys->allocKey();
    SFI_CHECK_MSG(key.isOk(), "%s", key.message().c_str());

    // Cold protect: page permissions + tagging every granule.
    double protect_s = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++) {
            SFI_CHECK(sys->protectRange(mem->base(), kMemBytes,
                                        PageAccess::ReadWrite,
                                        *key)
                          .isOk());
        }
    });
    // Decommit + re-protect: the recycle path. Tags do not survive
    // decommit (Observation 2), so every reuse re-tags the slot.
    double recycle_s = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++) {
            sys->onDecommit(mem->base(), kMemBytes);
            SFI_CHECK(sys->protectRange(mem->base(), kMemBytes,
                                        PageAccess::ReadWrite,
                                        *key)
                          .isOk());
        }
    });
    mpk::MteSystem::Stats st = sys->stats();
    std::printf("\nMteSystem backend (modeled user tagging), per "
                "instance:\n");
    std::printf("  protect+tag          : %8.1f us\n",
                protect_s * 1e6 / kInstances);
    std::printf("  decommit+retag cycle : %8.1f us   "
                "(tags do not survive decommit)\n",
                recycle_s * 1e6 / kInstances);
    std::printf("  granules tagged %llu, discarded %llu, decommits "
                "%llu\n",
                (unsigned long long)st.granulesTagged,
                (unsigned long long)st.granulesDiscarded,
                (unsigned long long)st.decommits);
    SFI_CHECK(!sys->tagsSurviveDecommit());
    SFI_CHECK(st.granulesDiscarded > 0);
    json.row()
        .field("section", std::string("backend"))
        .field("protect_tag_us", protect_s * 1e6 / kInstances)
        .field("recycle_retag_us", recycle_s * 1e6 / kInstances)
        .field("granules_tagged", st.granulesTagged)
        .field("granules_discarded", st.granulesDiscarded)
        .field("decommits", st.decommits);
    SFI_CHECK(sys->freeKey(*key).isOk());
}

int
run(int argc, char** argv)
{
    bench::JsonEmitter json(argc, argv, "sec7_mte");
    bench::header("§7 — ColorGuard-MTE cost study (40 x 64 KiB memories)",
                  "paper: init 79 -> 2182 us/inst; teardown 29 -> 377 "
                  "us/inst");

    std::vector<uint8_t> mem(kMemBytes);

    // Initialization without MTE: plain zeroing.
    double init_plain = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++)
            std::memset(mem.data(), 0, kMemBytes);
    });

    // Initialization with MTE (userspace 2-granules-per-op tagging).
    mpk::MteEmu mte(kMemBytes);
    double init_mte = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++) {
            std::memset(mem.data(), 0, kMemBytes);
            mte.setTagRangeUser(0, kMemBytes, uint8_t(1 + i % 15));
        }
    });

    // Kernel-style bulk tagging (the OS support §7 proposes).
    double init_bulk = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++) {
            std::memset(mem.data(), 0, kMemBytes);
            mte.setTagRangeBulk(0, kMemBytes, uint8_t(1 + i % 15));
        }
    });

    std::printf("init, per instance:\n");
    std::printf("  without MTE          : %8.1f us   (paper:   79 us)\n",
                init_plain * 1e6 / kInstances);
    std::printf("  MTE, user tagging    : %8.1f us   (paper: 2182 us)"
                "  -> %.1fx slower\n",
                init_mte * 1e6 / kInstances, init_mte / init_plain);
    std::printf("  MTE, bulk (proposed) : %8.1f us\n",
                init_bulk * 1e6 / kInstances);

    // Teardown: madvise discards tags (Observation 2) vs preserving.
    mte.setTagRangeBulk(0, kMemBytes, 5);
    double td_discard = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++)
            mte.decommit(0, kMemBytes, /*preserve_tags=*/false);
    });
    double td_preserve = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++)
            mte.decommit(0, kMemBytes, /*preserve_tags=*/true);
    });
    std::printf("\nteardown (madvise), per instance:\n");
    std::printf("  tags discarded (Linux today)   : %8.2f us   "
                "(paper: 377 us incl. kernel)\n",
                td_discard * 1e6 / kInstances);
    std::printf("  tags preserved (proposed flag) : %8.2f us   "
                "(paper-equivalent: 29 us)\n",
                td_preserve * 1e6 / kInstances);
    json.row()
        .field("section", std::string("emulation"))
        .field("init_plain_us", init_plain * 1e6 / kInstances)
        .field("init_mte_user_us", init_mte * 1e6 / kInstances)
        .field("init_mte_bulk_us", init_bulk * 1e6 / kInstances)
        .field("teardown_discard_us", td_discard * 1e6 / kInstances)
        .field("teardown_preserve_us", td_preserve * 1e6 / kInstances);

    runBackend(json);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
