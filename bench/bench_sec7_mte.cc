/**
 * @file
 * §7: ColorGuard on ARM MTE — the two cost problems the paper's Pixel 8
 * prototype found, reproduced on the MTE emulation:
 *
 *  Observation 1: userspace tagging handles 2 granules (32 B) per
 *  instruction, so striping 40 x 64 KiB linear memories is far slower
 *  than untagged initialization (paper: 79 us -> 2,182 us / instance).
 *
 *  Observation 2: madvise discards tags, so teardown pays a tag-zeroing
 *  walk and every reuse re-tags (paper: 29 us -> 377 us / instance);
 *  a tag-preserving madvise flag (like MPK's sticky PTE colors) makes
 *  recycling free.
 */
#include <cstdio>
#include <cstring>
#include <vector>

#include "base/units.h"
#include "bench/bench_util.h"
#include "mpk/mte.h"

namespace sfi {
namespace {

constexpr uint32_t kInstances = 40;
constexpr uint64_t kMemBytes = 64 * kKiB;

int
run()
{
    bench::header("§7 — ColorGuard-MTE cost study (40 x 64 KiB memories)",
                  "paper: init 79 -> 2182 us/inst; teardown 29 -> 377 "
                  "us/inst");

    std::vector<uint8_t> mem(kMemBytes);

    // Initialization without MTE: plain zeroing.
    double init_plain = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++)
            std::memset(mem.data(), 0, kMemBytes);
    });

    // Initialization with MTE (userspace 2-granules-per-op tagging).
    mpk::MteEmu mte(kMemBytes);
    double init_mte = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++) {
            std::memset(mem.data(), 0, kMemBytes);
            mte.setTagRangeUser(0, kMemBytes, uint8_t(1 + i % 15));
        }
    });

    // Kernel-style bulk tagging (the OS support §7 proposes).
    double init_bulk = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++) {
            std::memset(mem.data(), 0, kMemBytes);
            mte.setTagRangeBulk(0, kMemBytes, uint8_t(1 + i % 15));
        }
    });

    std::printf("init, per instance:\n");
    std::printf("  without MTE          : %8.1f us   (paper:   79 us)\n",
                init_plain * 1e6 / kInstances);
    std::printf("  MTE, user tagging    : %8.1f us   (paper: 2182 us)"
                "  -> %.1fx slower\n",
                init_mte * 1e6 / kInstances, init_mte / init_plain);
    std::printf("  MTE, bulk (proposed) : %8.1f us\n",
                init_bulk * 1e6 / kInstances);

    // Teardown: madvise discards tags (Observation 2) vs preserving.
    mte.setTagRangeBulk(0, kMemBytes, 5);
    double td_discard = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++)
            mte.decommit(0, kMemBytes, /*preserve_tags=*/false);
    });
    double td_preserve = bench::timeMedianSec([&] {
        for (uint32_t i = 0; i < kInstances; i++)
            mte.decommit(0, kMemBytes, /*preserve_tags=*/true);
    });
    std::printf("\nteardown (madvise), per instance:\n");
    std::printf("  tags discarded (Linux today)   : %8.2f us   "
                "(paper: 377 us incl. kernel)\n",
                td_discard * 1e6 / kInstances);
    std::printf("  tags preserved (proposed flag) : %8.2f us   "
                "(paper-equivalent: 29 us)\n",
                td_preserve * 1e6 / kInstances);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main()
{
    return sfi::run();
}
