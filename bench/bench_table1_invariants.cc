/**
 * @file
 * Table 1: the ColorGuard allocator safety invariants — exercising the
 * checker on representative configurations, demonstrating the
 * saturating-addition bug the paper's verification found (§5.2), and
 * fuzzing random configurations under the hostile-caller model.
 */
#include <cstdio>
#include <map>
#include <string>

#include "base/rng.h"
#include "base/units.h"
#include "bench/bench_util.h"
#include "elf/object.h"
#include "jit/compiler.h"
#include "pool/layout.h"
#include "verify/checker.h"
#include "verify/objcheck.h"
#include "wkld/workloads.h"

namespace sfi::pool {
namespace {

/** Kernel-name fragment from a policy-kernel mangling (after "3w2c"). */
std::string
kernelOf(const std::string& mangled)
{
    size_t p = mangled.find("3w2c");
    if (p == std::string::npos)
        return mangled;
    p += 4;
    for (;;) {
        size_t len = 0;
        while (p < mangled.size() && isdigit(mangled[p]))
            len = len * 10 + (mangled[p++] - '0');
        if (!len || p + len > mangled.size())
            return mangled;
        std::string part = mangled.substr(p, len);
        p += len;
        if (part != "_GLOBAL__N_1")  // anonymous namespace: skip
            return part;
    }
}

/**
 * The verified-kernel matrix (EXPERIMENTS.md): every policy x kernel
 * instantiation in the build's own w2c objects, with its verifier
 * verdict. Returns the violation count (0 = whole matrix proven).
 */
uint64_t
elfKernelMatrix()
{
#ifndef SFIKIT_W2C_OBJECTS
    std::printf("  (w2c object list not compiled in; skipped)\n");
    return 0;
#else
    // kernel -> policy -> verdict cell
    std::map<std::string, std::map<int, const char*>> grid;
    uint64_t violations = 0, kernels = 0, insns = 0;
    std::string objs = SFIKIT_W2C_OBJECTS;  // ':'-joined by CMake
    for (size_t pos = 0; pos <= objs.size();) {
        size_t sep = objs.find(':', pos);
        if (sep == std::string::npos)
            sep = objs.size();
        std::string path = objs.substr(pos, sep - pos);
        pos = sep + 1;
        if (path.empty())
            continue;
        auto obj = elf::ElfObject::load(path.c_str());
        SFI_CHECK(obj.isOk());
        auto rep = verify::checkObject(*obj);
        SFI_CHECK(rep.isOk());
        violations += rep->violations.size();
        insns += rep->instructions;
        for (const auto& fn : rep->functions) {
            kernels++;
            grid[kernelOf(fn.name)][static_cast<int>(fn.policy)] =
                fn.exempt ? "exempt"
                          : (fn.violations ? "FAIL" : "ok");
        }
    }
    std::printf("  %-16s", "kernel");
    for (int p = 1; p <= 5; p++)
        std::printf(" %-12s",
                    verify::name(static_cast<verify::W2cPolicy>(p)));
    std::printf("\n");
    for (const auto& [kern, cells] : grid) {
        std::printf("  %-16s", kern.c_str());
        for (int p = 1; p <= 5; p++) {
            auto it = cells.find(p);
            std::printf(" %-12s", it == cells.end() ? "-" : it->second);
        }
        std::printf("\n");
    }
    std::printf("  %llu instantiations, %llu instructions, %llu "
                "violation(s)\n",
                (unsigned long long)kernels, (unsigned long long)insns,
                (unsigned long long)violations);
    return violations;
#endif
}

void
show(const char* what, const PoolConfig& cfg, LayoutArithmetic arith)
{
    auto lay = computeLayout(cfg, arith);
    if (!lay.isOk()) {
        std::printf("%-34s -> rejected: %s\n", what,
                    lay.message().c_str());
        return;
    }
    Status st = lay->validate(cfg);
    std::printf("%-34s -> slot %7.3f GiB x%-7llu stripes %2llu : %s\n",
                what, double(lay->slotBytes) / double(kGiB),
                (unsigned long long)lay->numSlots,
                (unsigned long long)lay->numStripes,
                st ? "all 10 invariants hold" : st.message().c_str());
}

int
run()
{
    bench::header("Table 1 — ColorGuard allocator invariants",
                  "6 upstream invariants + 4 verification-found checks "
                  "+ the saturating-add bug");

    PoolConfig classic;
    classic.numSlots = 1024;
    classic.maxMemoryBytes = 4 * kGiB;
    classic.guardBytes = 4 * kGiB;
    show("classic 4+4 GiB", classic, LayoutArithmetic::Checked);

    PoolConfig shared = classic;
    shared.guardBytes = 2 * kGiB;
    shared.guardBeforeSlots = true;
    show("Wasmtime shared pre-guard (6 GiB)", shared,
         LayoutArithmetic::Checked);

    PoolConfig striped;
    striped.numSlots = 4096;
    striped.maxMemoryBytes = 512 * kMiB;
    striped.guardBytes = 8 * kGiB - 512 * kMiB;
    striped.stripingEnabled = true;
    show("ColorGuard 512 MiB slots", striped, LayoutArithmetic::Checked);

    PoolConfig few_keys = striped;
    few_keys.keysAvailable = 4;
    show("ColorGuard with only 4 keys", few_keys,
         LayoutArithmetic::Checked);

    std::printf("\nThe saturating-addition bug (§5.2):\n");
    PoolConfig absurd;
    absurd.numSlots = UINT64_MAX / 2;
    absurd.maxMemoryBytes = 4 * kGiB;
    absurd.guardBytes = 4 * kGiB;
    show("absurd config, checked arithmetic", absurd,
         LayoutArithmetic::Checked);
    show("absurd config, saturating (buggy)", absurd,
         LayoutArithmetic::SaturatingBuggy);

    std::printf("\nHostile-caller fuzzing (the §5.2 attacker model):\n");
    Rng rng(0xf422);
    uint64_t tried = 0, accepted = 0, violations = 0;
    for (int i = 0; i < 100000; i++) {
        PoolConfig c;
        c.numSlots = 1 + rng.below(1 << 20);
        c.maxMemoryBytes = rng.next() >> (16 + rng.below(32));
        c.guardBytes = rng.next() >> (16 + rng.below(32));
        c.expectedSlotBytes = rng.below(2) ? 0 : rng.next() >> 18;
        c.guardBeforeSlots = rng.below(2);
        c.stripingEnabled = rng.below(2);
        c.keysAvailable = 1 + int(rng.below(15));
        tried++;
        auto lay = computeLayout(c, LayoutArithmetic::Checked);
        if (!lay.isOk())
            continue;
        accepted++;
        if (!lay->validate(c))
            violations++;
    }
    std::printf("  %llu random configs: %llu accepted, %llu invariant "
                "violations\n",
                (unsigned long long)tried, (unsigned long long)accepted,
                (unsigned long long)violations);
    std::printf("  (0 violations = every accepted layout provably "
                "honors the compiler contract)\n");

    // The binary-level counterpart: the static SFI verifier over the
    // full workload x strategy matrix (the paper's VeriWasm extension;
    // DESIGN.md on src/verify/). Every generated instruction must carry
    // its sandboxing proof.
    std::printf("\nStatic SFI verification (machine-code invariants):\n");
    using jit::CfiMode;
    using jit::CompilerConfig;
    using jit::MemStrategy;
    std::vector<wkld::Workload> all;
    for (const auto* suite :
         {&wkld::sightglass(), &wkld::spec17(), &wkld::polydhry(),
          &wkld::faasWorkloads()})
        all.insert(all.end(), suite->begin(), suite->end());
    uint64_t sfiViolations = 0;
    for (bool optimize : {true, false}) {
        std::printf("  [optimizer %s]\n", optimize ? "on" : "off");
        for (MemStrategy mem :
             {MemStrategy::BaseReg, MemStrategy::Segue,
              MemStrategy::SegueLoadsOnly, MemStrategy::BoundsCheck,
              MemStrategy::SegueBounds}) {
            for (CfiMode cfi : {CfiMode::None, CfiMode::Lfi}) {
                CompilerConfig cfg{
                    .mem = mem,
                    .cfi = cfi,
                    .untrustedIndexRegs = cfi == CfiMode::Lfi,
                    .optimize = optimize};
                verify::Stats st;
                uint64_t viol = 0;
                for (const auto& w : all) {
                    auto cm = jit::compile(w.make(), cfg);
                    SFI_CHECK(cm.isOk());
                    verify::Report rep = verify::checkModule(*cm);
                    st.merge(rep.stats);
                    viol += rep.violations.size();
                }
                sfiViolations += viol;
                std::printf(
                    "  %-16s %-4s -> %5llu insns: gs %llu (ea32 %llu), "
                    "basereg %llu, bounds %llu (static %llu), "
                    "protected-ret %llu : %s\n",
                    jit::name(mem), jit::name(cfi),
                    (unsigned long long)st.instructions,
                    (unsigned long long)st.heapGs,
                    (unsigned long long)st.heapGsEa32,
                    (unsigned long long)st.heapBaseReg,
                    (unsigned long long)st.boundsChecked,
                    (unsigned long long)st.boundsStatic,
                    (unsigned long long)st.protectedReturns,
                    viol ? "VIOLATIONS" : "verified");
            }
        }
    }

    // The other half of the proof: the compiler-emitted w2c policy
    // kernels, sliced straight out of the build's object files
    // (verify/objcheck.h) — the verified-kernel matrix of
    // EXPERIMENTS.md.
    std::printf(
        "\nStatic SFI verification (compiler-emitted w2c kernels):\n");
    uint64_t elfViolations = elfKernelMatrix();

    return violations == 0 && sfiViolations == 0 && elfViolations == 0
               ? 0
               : 1;
}

}  // namespace
}  // namespace sfi::pool

int
main()
{
    return sfi::pool::run();
}
