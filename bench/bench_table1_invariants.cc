/**
 * @file
 * Table 1: the ColorGuard allocator safety invariants — exercising the
 * checker on representative configurations, demonstrating the
 * saturating-addition bug the paper's verification found (§5.2), and
 * fuzzing random configurations under the hostile-caller model.
 */
#include <cstdio>

#include "base/rng.h"
#include "base/units.h"
#include "bench/bench_util.h"
#include "jit/compiler.h"
#include "pool/layout.h"
#include "verify/checker.h"
#include "wkld/workloads.h"

namespace sfi::pool {
namespace {

void
show(const char* what, const PoolConfig& cfg, LayoutArithmetic arith)
{
    auto lay = computeLayout(cfg, arith);
    if (!lay.isOk()) {
        std::printf("%-34s -> rejected: %s\n", what,
                    lay.message().c_str());
        return;
    }
    Status st = lay->validate(cfg);
    std::printf("%-34s -> slot %7.3f GiB x%-7llu stripes %2llu : %s\n",
                what, double(lay->slotBytes) / double(kGiB),
                (unsigned long long)lay->numSlots,
                (unsigned long long)lay->numStripes,
                st ? "all 10 invariants hold" : st.message().c_str());
}

int
run()
{
    bench::header("Table 1 — ColorGuard allocator invariants",
                  "6 upstream invariants + 4 verification-found checks "
                  "+ the saturating-add bug");

    PoolConfig classic;
    classic.numSlots = 1024;
    classic.maxMemoryBytes = 4 * kGiB;
    classic.guardBytes = 4 * kGiB;
    show("classic 4+4 GiB", classic, LayoutArithmetic::Checked);

    PoolConfig shared = classic;
    shared.guardBytes = 2 * kGiB;
    shared.guardBeforeSlots = true;
    show("Wasmtime shared pre-guard (6 GiB)", shared,
         LayoutArithmetic::Checked);

    PoolConfig striped;
    striped.numSlots = 4096;
    striped.maxMemoryBytes = 512 * kMiB;
    striped.guardBytes = 8 * kGiB - 512 * kMiB;
    striped.stripingEnabled = true;
    show("ColorGuard 512 MiB slots", striped, LayoutArithmetic::Checked);

    PoolConfig few_keys = striped;
    few_keys.keysAvailable = 4;
    show("ColorGuard with only 4 keys", few_keys,
         LayoutArithmetic::Checked);

    std::printf("\nThe saturating-addition bug (§5.2):\n");
    PoolConfig absurd;
    absurd.numSlots = UINT64_MAX / 2;
    absurd.maxMemoryBytes = 4 * kGiB;
    absurd.guardBytes = 4 * kGiB;
    show("absurd config, checked arithmetic", absurd,
         LayoutArithmetic::Checked);
    show("absurd config, saturating (buggy)", absurd,
         LayoutArithmetic::SaturatingBuggy);

    std::printf("\nHostile-caller fuzzing (the §5.2 attacker model):\n");
    Rng rng(0xf422);
    uint64_t tried = 0, accepted = 0, violations = 0;
    for (int i = 0; i < 100000; i++) {
        PoolConfig c;
        c.numSlots = 1 + rng.below(1 << 20);
        c.maxMemoryBytes = rng.next() >> (16 + rng.below(32));
        c.guardBytes = rng.next() >> (16 + rng.below(32));
        c.expectedSlotBytes = rng.below(2) ? 0 : rng.next() >> 18;
        c.guardBeforeSlots = rng.below(2);
        c.stripingEnabled = rng.below(2);
        c.keysAvailable = 1 + int(rng.below(15));
        tried++;
        auto lay = computeLayout(c, LayoutArithmetic::Checked);
        if (!lay.isOk())
            continue;
        accepted++;
        if (!lay->validate(c))
            violations++;
    }
    std::printf("  %llu random configs: %llu accepted, %llu invariant "
                "violations\n",
                (unsigned long long)tried, (unsigned long long)accepted,
                (unsigned long long)violations);
    std::printf("  (0 violations = every accepted layout provably "
                "honors the compiler contract)\n");

    // The binary-level counterpart: the static SFI verifier over the
    // full workload x strategy matrix (the paper's VeriWasm extension;
    // DESIGN.md on src/verify/). Every generated instruction must carry
    // its sandboxing proof.
    std::printf("\nStatic SFI verification (machine-code invariants):\n");
    using jit::CfiMode;
    using jit::CompilerConfig;
    using jit::MemStrategy;
    std::vector<wkld::Workload> all;
    for (const auto* suite :
         {&wkld::sightglass(), &wkld::spec17(), &wkld::polydhry(),
          &wkld::faasWorkloads()})
        all.insert(all.end(), suite->begin(), suite->end());
    uint64_t sfiViolations = 0;
    for (bool optimize : {true, false}) {
        std::printf("  [optimizer %s]\n", optimize ? "on" : "off");
        for (MemStrategy mem :
             {MemStrategy::BaseReg, MemStrategy::Segue,
              MemStrategy::SegueLoadsOnly, MemStrategy::BoundsCheck,
              MemStrategy::SegueBounds}) {
            for (CfiMode cfi : {CfiMode::None, CfiMode::Lfi}) {
                CompilerConfig cfg{
                    .mem = mem,
                    .cfi = cfi,
                    .untrustedIndexRegs = cfi == CfiMode::Lfi,
                    .optimize = optimize};
                verify::Stats st;
                uint64_t viol = 0;
                for (const auto& w : all) {
                    auto cm = jit::compile(w.make(), cfg);
                    SFI_CHECK(cm.isOk());
                    verify::Report rep = verify::checkModule(*cm);
                    st.merge(rep.stats);
                    viol += rep.violations.size();
                }
                sfiViolations += viol;
                std::printf(
                    "  %-16s %-4s -> %5llu insns: gs %llu (ea32 %llu), "
                    "basereg %llu, bounds %llu (static %llu), "
                    "protected-ret %llu : %s\n",
                    jit::name(mem), jit::name(cfi),
                    (unsigned long long)st.instructions,
                    (unsigned long long)st.heapGs,
                    (unsigned long long)st.heapGsEa32,
                    (unsigned long long)st.heapBaseReg,
                    (unsigned long long)st.boundsChecked,
                    (unsigned long long)st.boundsStatic,
                    (unsigned long long)st.protectedReturns,
                    viol ? "VIOLATIONS" : "verified");
            }
        }
    }

    return violations == 0 && sfiViolations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace sfi::pool

int
main()
{
    return sfi::pool::run();
}
