/**
 * @file
 * Figure 6: ColorGuard vs multiprocess scaling, single core — the
 * throughput gain of keeping every instance in one address space as the
 * process count the alternative deployment needs grows from 1 to 15.
 *
 * The comparison runs on the simx discrete-event model (DESIGN.md §1's
 * substitution for the paper's Tokio + pinned-process testbed), with
 * the sandbox-transition cost taken from the real §6.4.1 measurement
 * and the per-request compute calibrated by actually running each FaaS
 * workload in the sfikit runtime.
 *
 * Expected shape: gain grows with the process count, topping out
 * around the paper's ~29% at 15 processes.
 *
 * A second, measured (not simulated) section then drives the real
 * multi-worker FaaS host across 1-16 scheduler threads for the three
 * pool-recycling strategies (cold / warm-affinity / deferred-decommit),
 * exercising the concurrent pooling allocator end to end. `--json
 * out.json` emits both sections machine-readably; `--sim-only` /
 * `--mt-only` select one.
 *
 * `--open-loop` switches to arrival-rate load generation: a seeded
 * Poisson schedule offers requests at a fixed rate (`--rate <rps>`, or
 * a sweep that brackets the closed-loop capacity when omitted) and the
 * host reports p50/p90/p95/p99/p99.9 sojourn-time percentiles next to
 * achieved throughput — the latency-under-load view closed-loop
 * numbers hide (coordinated omission). The sweep flags the saturation
 * knee: the first rate the host fails to serve at ≥95% of offered.
 * Each row also surfaces the §6.4.1 transition counters (entries, %gs
 * writes performed/skipped, batch-extension requests); `--batch <n>`
 * sets the batched-entry fairness bound (Options.batchMax).
 *
 * Production-host knobs (ISSUE 10): `--policy
 * <none|reject|shed|backpressure>` selects the per-shard admission
 * policy, `--queue-depth <n>` bounds each shard's admission queue, and
 * `--backend <mpk|mte>` picks the isolation backend. Open-loop rows
 * then also report the admission counters (admitted / rejected / shed /
 * overload events / steals / admission-delay p99) and the
 * backend-degradation counters (key recycles/shares, recolors, retags)
 * so the perf-lab's faas_overload and mte_backend baselines can gate
 * them.
 */
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "faas/loadgen.h"
#include "faas/scheduler.h"
#include "jit/tier.h"
#include "runtime/instance.h"
#include "simx/faas_sim.h"
#include "wasm/builder.h"
#include "wkld/emit_util.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

/** Measures mean compute time per request by running the real
 *  workload (no IO delay) in the sfikit FaaS host. */
double
calibrateComputeUs(const wkld::Workload& w)
{
    faas::FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.ioDelayMeanMs = 0.0001;  // effectively no IO
    auto host = faas::FaasHost::create(w.make(), std::move(opts));
    SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());
    const uint64_t kReqs = 200;
    auto stats = (*host)->run(kReqs);
    SFI_CHECK(stats.isOk());
    return stats->elapsedSec * 1e6 / double(kReqs);
}

void
runSimulated(bench::JsonEmitter& json)
{
    const auto& workloads = wkld::faasWorkloads();
    double compute_us[3];
    for (int i = 0; i < 3; i++) {
        compute_us[i] = calibrateComputeUs(workloads[i]);
        std::printf("calibrated %-18s : %.0f us compute/request\n",
                    workloads[i].name, compute_us[i]);
    }

    std::printf("\n%-10s", "processes");
    for (const auto& w : workloads)
        std::printf(" %18s", w.name);
    std::printf("\n");

    for (int n = 1; n <= 15; n++) {
        std::printf("%-10d", n);
        for (int i = 0; i < 3; i++) {
            simx::FaasSimConfig base;
            base.computeMeanUs = compute_us[i];
            base.concurrentRequests = 64 * n;  // load that needs n procs
            simx::FaasSimConfig cg = base;
            cg.colorguard = true;
            simx::FaasSimConfig mp = base;
            mp.numProcesses = n;

            double tput_cg = simx::simulateFaas(cg).throughputRps;
            double tput_mp = simx::simulateFaas(mp).throughputRps;
            double gain = 100.0 * (tput_cg / tput_mp - 1.0);
            std::printf(" %17.1f%%", gain);
            json.row()
                .field("section", std::string("simulated"))
                .field("workload", std::string(workloads[i].name))
                .field("processes", n)
                .field("colorguard_rps", tput_cg)
                .field("multiprocess_rps", tput_mp)
                .field("gain_pct", gain);
        }
        std::printf("\n");
    }
    std::printf("\n(throughput gain of ColorGuard over N-process "
                "scaling; single simulated core)\n");
}

struct HostConfig
{
    const char* name;
    bool warmAffinity;
    bool deferredDecommit;
};

constexpr HostConfig kHostConfigs[] = {
    {"cold", false, false},
    {"warm", true, false},
    {"deferred", true, true},
};

void
runMultithreaded(bench::JsonEmitter& json)
{
    std::printf("\nMeasured multi-worker host (concurrent pool, "
                "%u cores):\n",
                std::thread::hardware_concurrency());
    std::printf("%-10s %8s %10s %12s %10s %12s\n", "config", "threads",
                "requests", "rps", "warm-hit%", "checksum");

    const auto& w = wkld::faasWorkloads()[0];
    const uint64_t kReqs = 400;
    uint64_t ref_checksum = 0;
    bool have_ref = false;
    for (const HostConfig& cfg : kHostConfigs) {
        for (int threads : {1, 2, 4, 8, 16}) {
            faas::FaasHost::Options opts;
            opts.maxConcurrent = 32;
            opts.workerThreads = threads;
            opts.warmAffinity = cfg.warmAffinity;
            opts.deferredDecommit = cfg.deferredDecommit;
            opts.ioDelayMeanMs = 0.2;
            auto host = faas::FaasHost::create(w.make(), std::move(opts));
            SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());
            auto stats = (*host)->run(kReqs);
            SFI_CHECK_MSG(stats.isOk(), "%s", stats.message().c_str());
            SFI_CHECK(stats->completed == kReqs);
            // The response checksum is order-independent (xor), so every
            // configuration and thread count must agree on it.
            if (!have_ref) {
                ref_checksum = stats->checksum;
                have_ref = true;
            }
            SFI_CHECK(stats->checksum == ref_checksum);

            auto ps = (*host)->memoryPool().stats();
            double warm_pct =
                ps.allocations ? 100.0 * double(ps.warmHits) /
                                     double(ps.allocations)
                               : 0;
            std::printf("%-10s %8d %10llu %12.0f %9.1f%% %12llx\n",
                        cfg.name, threads,
                        (unsigned long long)stats->completed,
                        stats->throughputRps, warm_pct,
                        (unsigned long long)stats->checksum);
            json.row()
                .field("section", std::string("measured"))
                .field("config", std::string(cfg.name))
                .field("threads", threads)
                .field("requests", stats->completed)
                .field("rps", stats->throughputRps)
                .field("allocations", ps.allocations)
                .field("warm_hits", ps.warmHits)
                .field("warm_zeroes", ps.warmZeroes)
                .field("warm_zeroed_bytes", ps.warmZeroedBytes)
                .field("steals", ps.steals)
                .field("decommits", ps.decommits);
        }
    }
    std::printf("(closed-loop, %llu requests, workload %s; checksum "
                "verified identical across all configs)\n",
                (unsigned long long)kReqs, w.name);
}

/** Open-loop section knobs (ISSUE 10 adds the production-host ones). */
struct OpenLoopConfig
{
    double fixedRate = 0;  ///< > 0 pins one rate instead of sweeping
    int batch = 1;         ///< §6.4.1 batched-entry bound (batchMax)
    faas::AdmissionPolicy policy = faas::AdmissionPolicy::None;
    uint32_t queueDepth = 64;
    faas::IsolationBackend backend = faas::IsolationBackend::Mpk;
    /** Disable warm-affinity reuse: every recycle decommits, which on
     *  the MTE backend discards tags and forces the retag walk (§7
     *  Observation 2) — the cost the mte_backend baseline gates. */
    bool cold = false;
};

const char*
policyName(faas::AdmissionPolicy p)
{
    switch (p) {
    case faas::AdmissionPolicy::Reject: return "reject";
    case faas::AdmissionPolicy::Shed: return "shed";
    case faas::AdmissionPolicy::Backpressure: return "backpressure";
    default: return "none";
    }
}

/**
 * Open-loop latency section: offered-rate sweep with percentile rows.
 * Admission policy / queue depth / isolation backend come from @p cfg
 * so the perf-lab can pin overload (faas_overload) and backend-parity
 * (mte_backend) rows.
 */
void
runOpenLoop(bench::JsonEmitter& json, const OpenLoopConfig& cfg)
{
    const auto& w = wkld::faasWorkloads()[0];
    const int batch = cfg.batch;
    faas::FaasHost::Options opts;
    opts.maxConcurrent = 32;
    opts.workerThreads = std::max(
        1, std::min(4, int(std::thread::hardware_concurrency())));
    opts.warmAffinity = !cfg.cold;
    opts.ioDelayMeanMs = 0.2;
    opts.batchMax = batch;
    opts.admission = cfg.policy;
    opts.admissionQueueDepth = cfg.queueDepth;
    opts.backend = cfg.backend;
    auto host = faas::FaasHost::create(w.make(), std::move(opts));
    SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());

    std::vector<double> rates;
    if (cfg.fixedRate > 0) {
        rates.push_back(cfg.fixedRate);
    } else {
        // Bracket the saturation point: calibrate capacity closed-loop,
        // then offer fractions of it up through overload.
        auto cal = (*host)->run(400);
        SFI_CHECK_MSG(cal.isOk(), "%s", cal.message().c_str());
        double capacity = cal->throughputRps;
        std::printf("closed-loop capacity ≈ %.0f rps (%d workers)\n\n",
                    capacity, opts.workerThreads);
        for (double f : {0.25, 0.5, 0.75, 0.9, 1.0, 1.2})
            rates.push_back(capacity * f);
    }

    std::printf("Open-loop latency, workload %s (Poisson arrivals, "
                "sojourn time = arrival->finish, batchMax=%d, "
                "policy=%s, queue=%u, backend=%s):\n",
                w.name, batch, policyName(cfg.policy), cfg.queueDepth,
                cfg.backend == faas::IsolationBackend::Mte ? "mte"
                                                           : "mpk");
    std::printf("%10s %10s %9s %9s %9s %9s %9s %9s\n", "rate(rps)",
                "achieved", "p50(us)", "p90(us)", "p95(us)", "p99(us)",
                "p99.9(us)", "max(us)");

    double knee_rate = 0;
    for (double rate : rates) {
        faas::LoadGenConfig load;
        load.ratePerSec = rate;
        load.process = faas::ArrivalProcess::Poisson;
        // ~1.5 s of offered load per point, bounded for very slow or
        // very fast hosts.
        uint64_t reqs = uint64_t(
            std::clamp(rate * 1.5, 200.0, 20000.0));
        auto stats = (*host)->runOpenLoop(reqs, load);
        SFI_CHECK_MSG(stats.isOk(), "%s", stats.message().c_str());
        // Conservation, not completion: Reject/Shed turn work away at
        // admission instead of serving it (None keeps the old check).
        SFI_CHECK(stats->completed + stats->rejected +
                      stats->shedRequests ==
                  reqs);

        const auto& lat = stats->latencyTotalNs;
        auto us = [](uint64_t ns) { return double(ns) / 1e3; };
        double p50 = us(lat.percentile(50)), p90 = us(lat.percentile(90));
        double p95 = us(lat.percentile(95)), p99 = us(lat.percentile(99));
        double p999 = us(lat.percentile(99.9)), pmax = us(lat.max());
        bool saturated = stats->throughputRps < 0.95 * rate;
        if (saturated && knee_rate == 0)
            knee_rate = rate;
        std::printf("%10.0f %10.0f %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f%s\n",
                    rate, stats->throughputRps, p50, p90, p95, p99, p999,
                    pmax, saturated ? "  <- saturated" : "");
        std::printf("%10s transitions=%llu gs-switches=%llu "
                    "gs-skipped=%llu batched=%llu\n", "",
                    (unsigned long long)stats->sandboxTransitions,
                    (unsigned long long)stats->gsSwitches,
                    (unsigned long long)stats->gsSwitchesSkipped,
                    (unsigned long long)stats->batchedRequests);
        if (cfg.policy != faas::AdmissionPolicy::None) {
            std::printf("%10s admitted=%llu rejected=%llu shed=%llu "
                        "overloads=%llu stolen=%llu adm-p99=%.0fus\n",
                        "", (unsigned long long)stats->admitted,
                        (unsigned long long)stats->rejected,
                        (unsigned long long)stats->shedRequests,
                        (unsigned long long)stats->overloadEvents,
                        (unsigned long long)stats->stolenAdmissions,
                        us(stats->admissionDelayNs.percentile(99)));
        }
        uint64_t shard_max_depth = 0;
        for (const auto& sh : stats->shards)
            shard_max_depth = std::max(shard_max_depth, sh.maxDepth);
        json.row()
            .field("section", std::string("open_loop"))
            .field("workload", std::string(w.name))
            .field("policy", std::string(policyName(cfg.policy)))
            .field("backend",
                   std::string(cfg.backend == faas::IsolationBackend::Mte
                                   ? "mte"
                                   : "mpk"))
            .field("queue_depth", int(cfg.queueDepth))
            .field("workers", opts.workerThreads)
            .field("offered_rps", rate)
            .field("achieved_rps", stats->throughputRps)
            .field("requests", stats->completed)
            .field("offered_requests", reqs)
            .field("admitted", stats->admitted)
            .field("rejected", stats->rejected)
            .field("shed_requests", stats->shedRequests)
            .field("overload_events", stats->overloadEvents)
            .field("stolen_admissions", stats->stolenAdmissions)
            .field("shard_max_depth", shard_max_depth)
            .field("admission_p99_us",
                   us(stats->admissionDelayNs.count()
                          ? stats->admissionDelayNs.percentile(99)
                          : 0))
            .field("key_recycles", stats->keyRecycles)
            .field("key_shares", stats->keyShares)
            .field("recolors", stats->recolors)
            .field("retags", stats->retags)
            .field("p50_us", p50)
            .field("p90_us", p90)
            .field("p95_us", p95)
            .field("p99_us", p99)
            .field("p999_us", p999)
            .field("max_us", pmax)
            .field("queue_p99_us",
                   us(stats->latencyQueueNs.percentile(99)))
            .field("batch_max", batch)
            .field("sandbox_transitions", stats->sandboxTransitions)
            .field("gs_switches", stats->gsSwitches)
            .field("gs_switches_skipped", stats->gsSwitchesSkipped)
            .field("batched_requests", stats->batchedRequests)
            .field("saturated", saturated ? 1 : 0);
    }
    if (rates.size() > 1) {
        if (knee_rate > 0)
            std::printf("\nsaturation knee ≈ %.0f offered rps (first "
                        "rate served below 95%% of offered)\n",
                        knee_rate);
        else
            std::printf("\nno saturation knee inside the swept range\n");
    }
}

/**
 * Synthetic FaaS image for the cold-start measurement: kColdHandlers
 * route handlers with distinct bodies, of which one request ("run")
 * touches only kColdHot. That shape — a big image, a small request
 * path — is what lazy compilation exists for: the monolithic compile
 * pays for every handler before the first response, the tiered
 * pipeline compiles only the handlers on the request path, and a warm
 * cache compiles none. (The registry workloads are all 1-2 functions
 * with expensive first calls, so they cannot show this gap.)
 */
constexpr int kColdHandlers = 48;
constexpr int kColdHot = 4;

wasm::Module
makeColdStartImage()
{
    using wasm::ValType;
    wasm::ModuleBuilder mb;
    mb.memory(1, 1);
    std::vector<uint32_t> handlers;
    for (int h = 0; h < kColdHandlers; h++) {
        auto f = mb.func("h" + std::to_string(h), {ValType::I32},
                         {ValType::I64});
        uint32_t acc = f.local(ValType::I64);
        uint32_t i = f.local(ValType::I32);
        uint32_t end = f.local(ValType::I32);
        f.i64Const(0x9E3779B97F4A7C15ull ^ (uint64_t(h) << 32))
            .localSet(acc);
        f.localGet(f.param(0)).i32Const(64).i32Mul().localSet(end);
        wkld::forLoop(f, i, end, [&] {
            // Distinct mix per handler (rotate count + addend depend
            // on h) so no two bodies compile to the same code, plus a
            // store/load pair so the bounds-checking strategies emit
            // and verify real guards.
            f.localGet(acc)
                .localGet(i)
                .i64ExtendI32U()
                .i64Const(uint64_t(h) * 0x2545F4914F6CDD1Dull + 0xC0FFEE)
                .i64Add()
                .i64Xor()
                .i64Const(uint64_t(h % 31) + 1)
                .i64Rotl()
                .i64Const(0x5851F42D4C957F2Dull)
                .i64Mul()
                .localSet(acc);
            f.localGet(i).i32Const(7).i32Mul().i32Const(1016).i32And();
            f.localGet(acc).i64Store(4096);
            f.localGet(acc)
                .localGet(i)
                .i32Const(1016)
                .i32And()
                .i64Load(4096)
                .i64Add()
                .localSet(acc);
        });
        f.localGet(acc).end();
        handlers.push_back(f.index());
    }
    auto run = mb.func("run", {ValType::I32}, {ValType::I64});
    uint32_t r = run.local(ValType::I64);
    run.i64Const(0).localSet(r);
    for (int k = 0; k < kColdHot; k++) {
        // Spread the hot handlers across the image (h1, h13, h25, h37).
        uint32_t h = handlers[k * (kColdHandlers / kColdHot) + 1];
        run.localGet(r)
            .localGet(run.param(0))
            .call(h)
            .i64Xor()
            .localSet(r);
    }
    run.localGet(r).end();
    mb.exportFunc("run", run.index());
    return std::move(mb).build();
}

/**
 * Cold-start section (`--cold-start`, ISSUE 9): first-request latency
 * when a FaaS pool slot instantiates a module image it has never seen
 * (module arrival -> first response). Three compilation modes:
 *
 *  - monolithic:  the seed behavior — eagerly compile the whole module
 *                 through the optimizer, then serve.
 *  - tiered-cold: lazy tiered pipeline, salted cache key — only the
 *                 functions the request touches compile (baseline),
 *                 nothing is shared between samples.
 *  - tiered-warm: lazy tiered pipeline against a primed process-wide
 *                 code cache — the already-verified blobs are reused
 *                 and a sample compiles zero functions.
 */
void
runColdStart(bench::JsonEmitter& json)
{
    const char* kImageName = "faas-image-48h";
    const jit::CompilerConfig cfg = jit::CompilerConfig::wamrSegue();
    const int kSamples = 30;
    // A cold-start request is light (FaaS handlers are short); scale 1
    // keeps the measurement compile-bound instead of compute-bound.
    const uint64_t kScale = 1;

    // One wasm image, rebuilt per sample outside the timed span: the
    // cold start being measured is compile + verify + first run, not
    // workload-generator time.
    std::printf("Cold start, image %s (%d handlers, %d hot; %d samples, "
                "first-request latency = module bytes -> first "
                "response):\n\n",
                kImageName, kColdHandlers, kColdHot, kSamples);
    std::printf("%-14s %12s %12s %10s %10s %10s\n", "mode",
                "p50(us)", "p99(us)", "compiles", "cachehits",
                "tierups");

    struct Mode
    {
        const char* name;
        bool tiered;
        bool useCache;
    };
    const Mode kModes[] = {
        {"monolithic", false, false},
        {"tiered-cold", true, false},
        {"tiered-warm", true, true},
    };

    for (const Mode& mode : kModes) {
        if (mode.useCache) {
            // Prime the process-wide cache with one untimed
            // instantiation so the timed samples measure the warm
            // path (a pool serving an image it has seen before).
            auto prime = rt::SharedModule::compileTiered(
                makeColdStartImage(), cfg);
            SFI_CHECK_MSG(prime.isOk(), "%s", prime.message().c_str());
            auto pi = rt::Instance::create(*prime);
            SFI_CHECK(pi.isOk());
            SFI_CHECK((*pi)->call("run", {kScale}).ok());
        }

        std::vector<double> first_us;
        uint64_t compiles = 0, cache_hits = 0, tier_ups = 0;
        uint64_t compile_ns = 0, verify_ns = 0, fallbacks = 0;
        uint64_t checksum = 0;
        for (int s = 0; s < kSamples; s++) {
            wasm::Module m = makeColdStartImage();
            uint64_t t0 = monotonicNs();
            uint64_t value = 0;
            if (!mode.tiered) {
                uint64_t c0 = monotonicNs();
                auto shared = rt::SharedModule::compile(std::move(m),
                                                        cfg);
                SFI_CHECK_MSG(shared.isOk(), "%s",
                              shared.message().c_str());
                compile_ns += monotonicNs() - c0;
                compiles +=
                    (*shared)->module().functions.size();
                auto inst = rt::Instance::create(*shared);
                SFI_CHECK(inst.isOk());
                auto out = (*inst)->call("run", {kScale});
                SFI_CHECK(out.ok());
                value = out.value;
            } else {
                jit::TierOptions topts;
                topts.useCodeCache = mode.useCache;
                auto shared = rt::SharedModule::compileTiered(
                    std::move(m), cfg, topts);
                SFI_CHECK_MSG(shared.isOk(), "%s",
                              shared.message().c_str());
                auto inst = rt::Instance::create(*shared);
                SFI_CHECK(inst.isOk());
                auto out = (*inst)->call("run", {kScale});
                SFI_CHECK(out.ok());
                value = out.value;
                jit::TierStatsSnapshot ts =
                    (*shared)->tiered()->stats();
                compiles += ts.baselineCompiles;
                cache_hits += ts.cacheHits;
                tier_ups += ts.tierUps;
                compile_ns += ts.compileNs;
                verify_ns += ts.cacheFillVerifyNs;
                fallbacks += ts.interpFallbacks;
            }
            first_us.push_back(double(monotonicNs() - t0) / 1e3);
            if (s == 0)
                checksum = value;
            SFI_CHECK(value == checksum);
        }
        SFI_CHECK(fallbacks == 0);
        // Warm cache = zero compiles: the acceptance property.
        if (mode.useCache)
            SFI_CHECK_MSG(compiles == 0,
                          "warm-cache sample compiled %llu functions",
                          (unsigned long long)compiles);

        std::sort(first_us.begin(), first_us.end());
        auto pct = [&](double p) {
            size_t i = size_t(p / 100.0 * double(first_us.size() - 1) +
                              0.5);
            return first_us[std::min(i, first_us.size() - 1)];
        };
        double p50 = pct(50), p99 = pct(99);
        std::printf("%-14s %12.0f %12.0f %10llu %10llu %10llu\n",
                    mode.name, p50, p99,
                    (unsigned long long)compiles,
                    (unsigned long long)cache_hits,
                    (unsigned long long)tier_ups);
        json.row()
            .field("section", std::string("cold_start"))
            .field("mode", std::string(mode.name))
            .field("workload", std::string(kImageName))
            .field("samples", uint64_t(kSamples))
            .field("first_req_p50_us", p50)
            .field("first_req_p99_us", p99)
            .field("cold_starts", uint64_t(kSamples))
            .field("baseline_compiles", compiles)
            .field("cache_hits", cache_hits)
            .field("tier_ups", tier_ups)
            .field("compile_ns", compile_ns)
            .field("cache_fill_verify_ns", verify_ns);
    }
    std::printf("\n(checksums verified identical across modes and "
                "samples; warm mode asserted zero compiles)\n");
}

int
run(int argc, char** argv)
{
    bench::header("Figure 6 — ColorGuard vs multiprocess throughput",
                  "paper: gain grows with process count, up to ~29% at "
                  "15 processes");
    bench::JsonEmitter json(argc, argv, "fig6_faas_throughput");

    bool sim_only = false, mt_only = false, open_loop = false;
    bool cold_start = false;
    OpenLoopConfig olc;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--cold-start") == 0)
            cold_start = true;
        if (std::strcmp(argv[i], "--policy") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--policy requires a value "
                                     "(none|reject|shed|backpressure)\n");
                return 2;
            }
            const char* v = argv[++i];
            if (std::strcmp(v, "none") == 0)
                olc.policy = faas::AdmissionPolicy::None;
            else if (std::strcmp(v, "reject") == 0)
                olc.policy = faas::AdmissionPolicy::Reject;
            else if (std::strcmp(v, "shed") == 0)
                olc.policy = faas::AdmissionPolicy::Shed;
            else if (std::strcmp(v, "backpressure") == 0)
                olc.policy = faas::AdmissionPolicy::Backpressure;
            else {
                std::fprintf(stderr, "--policy: unknown policy '%s'\n",
                             v);
                return 2;
            }
        }
        if (std::strcmp(argv[i], "--queue-depth") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--queue-depth requires a value\n");
                return 2;
            }
            int depth = std::atoi(argv[++i]);
            if (depth < 1) {
                std::fprintf(stderr, "--queue-depth: '%s' must be "
                                     ">= 1\n",
                             argv[i]);
                return 2;
            }
            olc.queueDepth = uint32_t(depth);
        }
        if (std::strcmp(argv[i], "--cold") == 0)
            olc.cold = true;
        if (std::strcmp(argv[i], "--backend") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--backend requires a value (mpk|mte)\n");
                return 2;
            }
            const char* v = argv[++i];
            if (std::strcmp(v, "mpk") == 0)
                olc.backend = faas::IsolationBackend::Mpk;
            else if (std::strcmp(v, "mte") == 0)
                olc.backend = faas::IsolationBackend::Mte;
            else {
                std::fprintf(stderr, "--backend: unknown backend "
                                     "'%s'\n",
                             v);
                return 2;
            }
        }
        if (std::strcmp(argv[i], "--sim-only") == 0)
            sim_only = true;
        if (std::strcmp(argv[i], "--mt-only") == 0)
            mt_only = true;
        if (std::strcmp(argv[i], "--open-loop") == 0)
            open_loop = true;
        if (std::strcmp(argv[i], "--batch") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--batch requires a value (batchMax)\n");
                return 2;
            }
            olc.batch = std::atoi(argv[i + 1]);
            if (olc.batch < 1) {
                std::fprintf(stderr, "--batch: '%s' must be >= 1\n",
                             argv[i + 1]);
                return 2;
            }
            i++;
        }
        if (std::strcmp(argv[i], "--rate") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--rate requires a value (offered rps)\n");
                return 2;
            }
            char* end = nullptr;
            errno = 0;
            olc.fixedRate = std::strtod(argv[i + 1], &end);
            if (end == argv[i + 1] || *end != '\0' || errno == ERANGE ||
                !std::isfinite(olc.fixedRate) || olc.fixedRate <= 0) {
                std::fprintf(stderr,
                             "--rate: '%s' is not a positive number\n",
                             argv[i + 1]);
                return 2;
            }
            i++;  // consume the value so it is not re-scanned as a flag
        }
    }
    if (cold_start) {
        runColdStart(json);
        return 0;
    }
    if (open_loop) {
        runOpenLoop(json, olc);
        return 0;
    }
    if (!mt_only)
        runSimulated(json);
    if (!sim_only)
        runMultithreaded(json);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
