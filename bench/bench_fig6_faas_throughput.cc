/**
 * @file
 * Figure 6: ColorGuard vs multiprocess scaling, single core — the
 * throughput gain of keeping every instance in one address space as the
 * process count the alternative deployment needs grows from 1 to 15.
 *
 * The comparison runs on the simx discrete-event model (DESIGN.md §1's
 * substitution for the paper's Tokio + pinned-process testbed), with
 * the sandbox-transition cost taken from the real §6.4.1 measurement
 * and the per-request compute calibrated by actually running each FaaS
 * workload in the sfikit runtime.
 *
 * Expected shape: gain grows with the process count, topping out
 * around the paper's ~29% at 15 processes.
 */
#include <cstdio>

#include "bench/bench_util.h"
#include "faas/scheduler.h"
#include "simx/faas_sim.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

/** Measures mean compute time per request by running the real
 *  workload (no IO delay) in the sfikit FaaS host. */
double
calibrateComputeUs(const wkld::Workload& w)
{
    faas::FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.ioDelayMeanMs = 0.0001;  // effectively no IO
    auto host = faas::FaasHost::create(w.make(), std::move(opts));
    SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());
    const uint64_t kReqs = 200;
    auto stats = (*host)->run(kReqs);
    SFI_CHECK(stats.isOk());
    return stats->elapsedSec * 1e6 / double(kReqs);
}

int
run()
{
    bench::header("Figure 6 — ColorGuard vs multiprocess throughput",
                  "paper: gain grows with process count, up to ~29% at "
                  "15 processes");

    const auto& workloads = wkld::faasWorkloads();
    double compute_us[3];
    for (int i = 0; i < 3; i++) {
        compute_us[i] = calibrateComputeUs(workloads[i]);
        std::printf("calibrated %-18s : %.0f us compute/request\n",
                    workloads[i].name, compute_us[i]);
    }

    std::printf("\n%-10s", "processes");
    for (const auto& w : workloads)
        std::printf(" %18s", w.name);
    std::printf("\n");

    for (int n = 1; n <= 15; n++) {
        std::printf("%-10d", n);
        for (int i = 0; i < 3; i++) {
            simx::FaasSimConfig base;
            base.computeMeanUs = compute_us[i];
            base.concurrentRequests = 64 * n;  // load that needs n procs

            simx::FaasSimConfig cg = base;
            cg.colorguard = true;
            simx::FaasSimConfig mp = base;
            mp.numProcesses = n;

            double tput_cg = simx::simulateFaas(cg).throughputRps;
            double tput_mp = simx::simulateFaas(mp).throughputRps;
            double gain = 100.0 * (tput_cg / tput_mp - 1.0);
            std::printf(" %17.1f%%", gain);
        }
        std::printf("\n");
    }
    std::printf("\n(throughput gain of ColorGuard over N-process "
                "scaling; single simulated core)\n");
    return 0;
}

}  // namespace
}  // namespace sfi

int
main()
{
    return sfi::run();
}
