/**
 * @file
 * Figure 6: ColorGuard vs multiprocess scaling, single core — the
 * throughput gain of keeping every instance in one address space as the
 * process count the alternative deployment needs grows from 1 to 15.
 *
 * The comparison runs on the simx discrete-event model (DESIGN.md §1's
 * substitution for the paper's Tokio + pinned-process testbed), with
 * the sandbox-transition cost taken from the real §6.4.1 measurement
 * and the per-request compute calibrated by actually running each FaaS
 * workload in the sfikit runtime.
 *
 * Expected shape: gain grows with the process count, topping out
 * around the paper's ~29% at 15 processes.
 *
 * A second, measured (not simulated) section then drives the real
 * multi-worker FaaS host across 1-16 scheduler threads for the three
 * pool-recycling strategies (cold / warm-affinity / deferred-decommit),
 * exercising the concurrent pooling allocator end to end. `--json
 * out.json` emits both sections machine-readably; `--sim-only` /
 * `--mt-only` select one.
 *
 * `--open-loop` switches to arrival-rate load generation: a seeded
 * Poisson schedule offers requests at a fixed rate (`--rate <rps>`, or
 * a sweep that brackets the closed-loop capacity when omitted) and the
 * host reports p50/p90/p95/p99/p99.9 sojourn-time percentiles next to
 * achieved throughput — the latency-under-load view closed-loop
 * numbers hide (coordinated omission). The sweep flags the saturation
 * knee: the first rate the host fails to serve at ≥95% of offered.
 * Each row also surfaces the §6.4.1 transition counters (entries, %gs
 * writes performed/skipped, batch-extension requests); `--batch <n>`
 * sets the batched-entry fairness bound (Options.batchMax).
 */
#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_util.h"
#include "faas/loadgen.h"
#include "faas/scheduler.h"
#include "simx/faas_sim.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

/** Measures mean compute time per request by running the real
 *  workload (no IO delay) in the sfikit FaaS host. */
double
calibrateComputeUs(const wkld::Workload& w)
{
    faas::FaasHost::Options opts;
    opts.maxConcurrent = 4;
    opts.ioDelayMeanMs = 0.0001;  // effectively no IO
    auto host = faas::FaasHost::create(w.make(), std::move(opts));
    SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());
    const uint64_t kReqs = 200;
    auto stats = (*host)->run(kReqs);
    SFI_CHECK(stats.isOk());
    return stats->elapsedSec * 1e6 / double(kReqs);
}

void
runSimulated(bench::JsonEmitter& json)
{
    const auto& workloads = wkld::faasWorkloads();
    double compute_us[3];
    for (int i = 0; i < 3; i++) {
        compute_us[i] = calibrateComputeUs(workloads[i]);
        std::printf("calibrated %-18s : %.0f us compute/request\n",
                    workloads[i].name, compute_us[i]);
    }

    std::printf("\n%-10s", "processes");
    for (const auto& w : workloads)
        std::printf(" %18s", w.name);
    std::printf("\n");

    for (int n = 1; n <= 15; n++) {
        std::printf("%-10d", n);
        for (int i = 0; i < 3; i++) {
            simx::FaasSimConfig base;
            base.computeMeanUs = compute_us[i];
            base.concurrentRequests = 64 * n;  // load that needs n procs
            simx::FaasSimConfig cg = base;
            cg.colorguard = true;
            simx::FaasSimConfig mp = base;
            mp.numProcesses = n;

            double tput_cg = simx::simulateFaas(cg).throughputRps;
            double tput_mp = simx::simulateFaas(mp).throughputRps;
            double gain = 100.0 * (tput_cg / tput_mp - 1.0);
            std::printf(" %17.1f%%", gain);
            json.row()
                .field("section", std::string("simulated"))
                .field("workload", std::string(workloads[i].name))
                .field("processes", n)
                .field("colorguard_rps", tput_cg)
                .field("multiprocess_rps", tput_mp)
                .field("gain_pct", gain);
        }
        std::printf("\n");
    }
    std::printf("\n(throughput gain of ColorGuard over N-process "
                "scaling; single simulated core)\n");
}

struct HostConfig
{
    const char* name;
    bool warmAffinity;
    bool deferredDecommit;
};

constexpr HostConfig kHostConfigs[] = {
    {"cold", false, false},
    {"warm", true, false},
    {"deferred", true, true},
};

void
runMultithreaded(bench::JsonEmitter& json)
{
    std::printf("\nMeasured multi-worker host (concurrent pool, "
                "%u cores):\n",
                std::thread::hardware_concurrency());
    std::printf("%-10s %8s %10s %12s %10s %12s\n", "config", "threads",
                "requests", "rps", "warm-hit%", "checksum");

    const auto& w = wkld::faasWorkloads()[0];
    const uint64_t kReqs = 400;
    uint64_t ref_checksum = 0;
    bool have_ref = false;
    for (const HostConfig& cfg : kHostConfigs) {
        for (int threads : {1, 2, 4, 8, 16}) {
            faas::FaasHost::Options opts;
            opts.maxConcurrent = 32;
            opts.workerThreads = threads;
            opts.warmAffinity = cfg.warmAffinity;
            opts.deferredDecommit = cfg.deferredDecommit;
            opts.ioDelayMeanMs = 0.2;
            auto host = faas::FaasHost::create(w.make(), std::move(opts));
            SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());
            auto stats = (*host)->run(kReqs);
            SFI_CHECK_MSG(stats.isOk(), "%s", stats.message().c_str());
            SFI_CHECK(stats->completed == kReqs);
            // The response checksum is order-independent (xor), so every
            // configuration and thread count must agree on it.
            if (!have_ref) {
                ref_checksum = stats->checksum;
                have_ref = true;
            }
            SFI_CHECK(stats->checksum == ref_checksum);

            auto ps = (*host)->memoryPool().stats();
            double warm_pct =
                ps.allocations ? 100.0 * double(ps.warmHits) /
                                     double(ps.allocations)
                               : 0;
            std::printf("%-10s %8d %10llu %12.0f %9.1f%% %12llx\n",
                        cfg.name, threads,
                        (unsigned long long)stats->completed,
                        stats->throughputRps, warm_pct,
                        (unsigned long long)stats->checksum);
            json.row()
                .field("section", std::string("measured"))
                .field("config", std::string(cfg.name))
                .field("threads", threads)
                .field("requests", stats->completed)
                .field("rps", stats->throughputRps)
                .field("allocations", ps.allocations)
                .field("warm_hits", ps.warmHits)
                .field("warm_zeroes", ps.warmZeroes)
                .field("warm_zeroed_bytes", ps.warmZeroedBytes)
                .field("steals", ps.steals)
                .field("decommits", ps.decommits);
        }
    }
    std::printf("(closed-loop, %llu requests, workload %s; checksum "
                "verified identical across all configs)\n",
                (unsigned long long)kReqs, w.name);
}

/**
 * Open-loop latency section: offered-rate sweep with percentile rows.
 * @p fixed_rate > 0 pins a single rate instead of sweeping. @p batch
 * is the §6.4.1 batched-entry fairness bound (Options.batchMax).
 */
void
runOpenLoop(bench::JsonEmitter& json, double fixed_rate, int batch)
{
    const auto& w = wkld::faasWorkloads()[0];
    faas::FaasHost::Options opts;
    opts.maxConcurrent = 32;
    opts.workerThreads = std::max(
        1, std::min(4, int(std::thread::hardware_concurrency())));
    opts.warmAffinity = true;
    opts.ioDelayMeanMs = 0.2;
    opts.batchMax = batch;
    auto host = faas::FaasHost::create(w.make(), std::move(opts));
    SFI_CHECK_MSG(host.isOk(), "%s", host.message().c_str());

    std::vector<double> rates;
    if (fixed_rate > 0) {
        rates.push_back(fixed_rate);
    } else {
        // Bracket the saturation point: calibrate capacity closed-loop,
        // then offer fractions of it up through overload.
        auto cal = (*host)->run(400);
        SFI_CHECK_MSG(cal.isOk(), "%s", cal.message().c_str());
        double capacity = cal->throughputRps;
        std::printf("closed-loop capacity ≈ %.0f rps (%d workers)\n\n",
                    capacity, opts.workerThreads);
        for (double f : {0.25, 0.5, 0.75, 0.9, 1.0, 1.2})
            rates.push_back(capacity * f);
    }

    std::printf("Open-loop latency, workload %s (Poisson arrivals, "
                "sojourn time = arrival->finish, batchMax=%d):\n",
                w.name, batch);
    std::printf("%10s %10s %9s %9s %9s %9s %9s %9s\n", "rate(rps)",
                "achieved", "p50(us)", "p90(us)", "p95(us)", "p99(us)",
                "p99.9(us)", "max(us)");

    double knee_rate = 0;
    for (double rate : rates) {
        faas::LoadGenConfig load;
        load.ratePerSec = rate;
        load.process = faas::ArrivalProcess::Poisson;
        // ~1.5 s of offered load per point, bounded for very slow or
        // very fast hosts.
        uint64_t reqs = uint64_t(
            std::clamp(rate * 1.5, 200.0, 20000.0));
        auto stats = (*host)->runOpenLoop(reqs, load);
        SFI_CHECK_MSG(stats.isOk(), "%s", stats.message().c_str());
        SFI_CHECK(stats->completed == reqs);

        const auto& lat = stats->latencyTotalNs;
        auto us = [](uint64_t ns) { return double(ns) / 1e3; };
        double p50 = us(lat.percentile(50)), p90 = us(lat.percentile(90));
        double p95 = us(lat.percentile(95)), p99 = us(lat.percentile(99));
        double p999 = us(lat.percentile(99.9)), pmax = us(lat.max());
        bool saturated = stats->throughputRps < 0.95 * rate;
        if (saturated && knee_rate == 0)
            knee_rate = rate;
        std::printf("%10.0f %10.0f %9.0f %9.0f %9.0f %9.0f %9.0f %9.0f%s\n",
                    rate, stats->throughputRps, p50, p90, p95, p99, p999,
                    pmax, saturated ? "  <- saturated" : "");
        std::printf("%10s transitions=%llu gs-switches=%llu "
                    "gs-skipped=%llu batched=%llu\n", "",
                    (unsigned long long)stats->sandboxTransitions,
                    (unsigned long long)stats->gsSwitches,
                    (unsigned long long)stats->gsSwitchesSkipped,
                    (unsigned long long)stats->batchedRequests);
        json.row()
            .field("section", std::string("open_loop"))
            .field("workload", std::string(w.name))
            .field("workers", opts.workerThreads)
            .field("offered_rps", rate)
            .field("achieved_rps", stats->throughputRps)
            .field("requests", stats->completed)
            .field("p50_us", p50)
            .field("p90_us", p90)
            .field("p95_us", p95)
            .field("p99_us", p99)
            .field("p999_us", p999)
            .field("max_us", pmax)
            .field("queue_p99_us",
                   us(stats->latencyQueueNs.percentile(99)))
            .field("batch_max", batch)
            .field("sandbox_transitions", stats->sandboxTransitions)
            .field("gs_switches", stats->gsSwitches)
            .field("gs_switches_skipped", stats->gsSwitchesSkipped)
            .field("batched_requests", stats->batchedRequests)
            .field("saturated", saturated ? 1 : 0);
    }
    if (rates.size() > 1) {
        if (knee_rate > 0)
            std::printf("\nsaturation knee ≈ %.0f offered rps (first "
                        "rate served below 95%% of offered)\n",
                        knee_rate);
        else
            std::printf("\nno saturation knee inside the swept range\n");
    }
}

int
run(int argc, char** argv)
{
    bench::header("Figure 6 — ColorGuard vs multiprocess throughput",
                  "paper: gain grows with process count, up to ~29% at "
                  "15 processes");
    bench::JsonEmitter json(argc, argv, "fig6_faas_throughput");

    bool sim_only = false, mt_only = false, open_loop = false;
    double rate = 0;
    int batch = 1;
    for (int i = 1; i < argc; i++) {
        if (std::strcmp(argv[i], "--sim-only") == 0)
            sim_only = true;
        if (std::strcmp(argv[i], "--mt-only") == 0)
            mt_only = true;
        if (std::strcmp(argv[i], "--open-loop") == 0)
            open_loop = true;
        if (std::strcmp(argv[i], "--batch") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--batch requires a value (batchMax)\n");
                return 2;
            }
            batch = std::atoi(argv[i + 1]);
            if (batch < 1) {
                std::fprintf(stderr, "--batch: '%s' must be >= 1\n",
                             argv[i + 1]);
                return 2;
            }
            i++;
        }
        if (std::strcmp(argv[i], "--rate") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "--rate requires a value (offered rps)\n");
                return 2;
            }
            char* end = nullptr;
            errno = 0;
            rate = std::strtod(argv[i + 1], &end);
            if (end == argv[i + 1] || *end != '\0' || errno == ERANGE ||
                !std::isfinite(rate) || rate <= 0) {
                std::fprintf(stderr,
                             "--rate: '%s' is not a positive number\n",
                             argv[i + 1]);
                return 2;
            }
            i++;  // consume the value so it is not re-scanned as a flag
        }
    }
    if (open_loop) {
        runOpenLoop(json, rate, batch);
        return 0;
    }
    if (!mt_only)
        runSimulated(json);
    if (!sim_only)
        runMultithreaded(json);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
