/**
 * @file
 * Table 2: compiled binary sizes, wasm2c-style SFI with vs without
 * Segue. Sizes come from this binary's own ELF symbol table (one
 * explicit template instantiation per kernel x policy), cross-checked
 * with the JIT's per-function code sizes on the bytecode suite.
 *
 * Expected shape: Segue consistently smaller (paper: median 5.9%, max
 * 12.3%) because the two-instruction address pattern collapses to one.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "base/stats.h"
#include "elf/symtab.h"
#include "jit/compiler.h"
#include "w2c/kernels.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

// Pull in every instantiation so the linker keeps the symbols.
template <typename P>
const void*
anchor()
{
    static const void* fns[] = {
        reinterpret_cast<const void*>(&w2c::kernCompress<P>),
        reinterpret_cast<const void*>(&w2c::kernMincost<P>),
        reinterpret_cast<const void*>(&w2c::kernLattice<P>),
        reinterpret_cast<const void*>(&w2c::kernNbody<P>),
        reinterpret_cast<const void*>(&w2c::kernGotactics<P>),
        reinterpret_cast<const void*>(&w2c::kernMinimax<P>),
        reinterpret_cast<const void*>(&w2c::kernQsim<P>),
        reinterpret_cast<const void*>(&w2c::kernBlockcodec<P>),
        reinterpret_cast<const void*>(&w2c::kernStencil<P>),
        reinterpret_cast<const void*>(&w2c::kernAstar<P>),
    };
    return fns[0];
}

const char* kSymbolNames[] = {
    "kernCompress", "kernMincost", "kernLattice", "kernNbody",
    "kernGotactics", "kernMinimax", "kernQsim", "kernBlockcodec",
    "kernStencil", "kernAstar",
};

int
run(int argc, char** argv)
{
    (void)anchor<w2c::BaseAddPolicy>();
    (void)anchor<w2c::SeguePolicy>();

    bench::header("Table 2 — binary sizes: wasm2c vs wasm2c+Segue",
                  "paper: median 5.9% smaller with Segue, max 12.3%");
    bench::JsonEmitter json(argc, argv, "table2_binary_size");

    auto syms = elf::readFunctionSymbols("/proc/self/exe");
    SFI_CHECK_MSG(syms.isOk(), "%s", syms.message().c_str());

    std::printf("%-16s %12s %14s %10s\n", "benchmark", "wasm2c",
                "wasm2c+segue", "reduction");
    RunningStat reductions;
    for (int k = 0; k < w2c::kNumKernels; k++) {
        uint64_t base = elf::totalSizeMatching(
            *syms, {kSymbolNames[k], "BaseAddPolicy"});
        uint64_t segue = elf::totalSizeMatching(
            *syms, {kSymbolNames[k], "SeguePolicy"});
        double red = percentReduction(double(base), double(segue));
        reductions.add(red);
        std::printf("%-16s %10llu B %12llu B %9.1f%%\n",
                    w2c::kKernels<w2c::NativePolicy>[k].name,
                    (unsigned long long)base, (unsigned long long)segue,
                    red);
        json.row()
            .field("kernel",
                   std::string(w2c::kKernels<w2c::NativePolicy>[k].name))
            .field("wasm2c_bytes", base)
            .field("wasm2c_segue_bytes", segue)
            .field("reduction_pct", red);
    }
    bench::hr();
    std::printf("median reduction: %.1f%% (paper: 5.9%%)   max: %.1f%%\n",
                reductions.median(), reductions.max());

    // Cross-check with JIT code sizes on the bytecode suite (here the
    // LFI configs are the interesting pair: truncation vs 0x67).
    std::printf("\nJIT code size (LFI backend), per workload:\n");
    std::printf("%-18s %10s %12s %10s\n", "workload", "lfi", "lfi+segue",
                "reduction");
    RunningStat jit_red;
    for (const auto& w : wkld::spec17()) {
        wasm::Module m = w.make();
        auto base = jit::compile(m, jit::CompilerConfig::lfiBase());
        auto segue = jit::compile(m, jit::CompilerConfig::lfiSegue());
        SFI_CHECK(base.isOk() && segue.isOk());
        double red = percentReduction(double(base->totalCodeBytes),
                                      double(segue->totalCodeBytes));
        jit_red.add(red);
        std::printf("%-18s %8llu B %10llu B %9.1f%%\n", w.name,
                    (unsigned long long)base->totalCodeBytes,
                    (unsigned long long)segue->totalCodeBytes, red);
        json.row()
            .field("workload", std::string(w.name))
            .field("lfi_bytes", base->totalCodeBytes)
            .field("lfi_segue_bytes", segue->totalCodeBytes)
            .field("reduction_pct", red);
    }
    bench::hr();
    std::printf("median JIT code-size reduction: %.1f%%\n",
                jit_red.median());

    // The optimizer column: guard elimination + addressing folds +
    // the peephole change per-strategy code size, so Table 2's story
    // must be told against both pipelines (ISSUE 4). Sizes are the
    // sum over the SPEC-proxy suite.
    std::printf("\nJIT code size per strategy, optimizer off vs on:\n");
    std::printf("%-18s %12s %12s %10s %22s\n", "strategy", "no-opt",
                "opt", "reduction", "checks-elim / peep-B");
    using jit::CfiMode;
    using jit::CompilerConfig;
    using jit::MemStrategy;
    for (MemStrategy mem :
         {MemStrategy::BaseReg, MemStrategy::Segue,
          MemStrategy::SegueLoadsOnly, MemStrategy::BoundsCheck,
          MemStrategy::SegueBounds}) {
        uint64_t plain = 0, optimized = 0;
        jit::OptStats ostats;
        for (const auto& w : wkld::spec17()) {
            wasm::Module m = w.make();
            auto off = jit::compile(
                m, CompilerConfig{.mem = mem, .optimize = false});
            auto on = jit::compile(
                m, CompilerConfig{.mem = mem, .optimize = true});
            SFI_CHECK(off.isOk() && on.isOk());
            plain += off->totalCodeBytes;
            optimized += on->totalCodeBytes;
            ostats.merge(on->optStats);
        }
        double red =
            percentReduction(double(plain), double(optimized));
        std::printf("%-18s %10llu B %10llu B %9.1f%% %12llu / %llu\n",
                    jit::name(mem), (unsigned long long)plain,
                    (unsigned long long)optimized, red,
                    (unsigned long long)ostats.checksEliminated(),
                    (unsigned long long)ostats.peepBytesSaved);
        json.row()
            .field("strategy", std::string(jit::name(mem)))
            .field("noopt_bytes", plain)
            .field("opt_bytes", optimized)
            .field("reduction_pct", red)
            .field("checks_eliminated", ostats.checksEliminated())
            .field("peephole_bytes_saved", ostats.peepBytesSaved);
    }
    return 0;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    return sfi::run(argc, argv);
}
