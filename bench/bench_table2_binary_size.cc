/**
 * @file
 * Table 2: compiled binary sizes, wasm2c-style SFI with vs without
 * Segue. Sizes come from this binary's own ELF symbol table (one
 * explicit template instantiation per kernel x policy), cross-checked
 * with the JIT's per-function code sizes on the bytecode suite.
 *
 * Expected shape: Segue consistently smaller (paper: median 5.9%, max
 * 12.3%) because the two-instruction address pattern collapses to one.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "base/stats.h"
#include "elf/symtab.h"
#include "jit/compiler.h"
#include "w2c/kernels.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

// Pull in every instantiation so the linker keeps the symbols.
template <typename P>
const void*
anchor()
{
    static const void* fns[] = {
        reinterpret_cast<const void*>(&w2c::kernCompress<P>),
        reinterpret_cast<const void*>(&w2c::kernMincost<P>),
        reinterpret_cast<const void*>(&w2c::kernLattice<P>),
        reinterpret_cast<const void*>(&w2c::kernNbody<P>),
        reinterpret_cast<const void*>(&w2c::kernGotactics<P>),
        reinterpret_cast<const void*>(&w2c::kernMinimax<P>),
        reinterpret_cast<const void*>(&w2c::kernQsim<P>),
        reinterpret_cast<const void*>(&w2c::kernBlockcodec<P>),
        reinterpret_cast<const void*>(&w2c::kernStencil<P>),
        reinterpret_cast<const void*>(&w2c::kernAstar<P>),
    };
    return fns[0];
}

const char* kSymbolNames[] = {
    "kernCompress", "kernMincost", "kernLattice", "kernNbody",
    "kernGotactics", "kernMinimax", "kernQsim", "kernBlockcodec",
    "kernStencil", "kernAstar",
};

int
run()
{
    (void)anchor<w2c::BaseAddPolicy>();
    (void)anchor<w2c::SeguePolicy>();

    bench::header("Table 2 — binary sizes: wasm2c vs wasm2c+Segue",
                  "paper: median 5.9% smaller with Segue, max 12.3%");

    auto syms = elf::readFunctionSymbols("/proc/self/exe");
    SFI_CHECK_MSG(syms.isOk(), "%s", syms.message().c_str());

    std::printf("%-16s %12s %14s %10s\n", "benchmark", "wasm2c",
                "wasm2c+segue", "reduction");
    RunningStat reductions;
    for (int k = 0; k < w2c::kNumKernels; k++) {
        uint64_t base = elf::totalSizeMatching(
            *syms, {kSymbolNames[k], "BaseAddPolicy"});
        uint64_t segue = elf::totalSizeMatching(
            *syms, {kSymbolNames[k], "SeguePolicy"});
        double red =
            base ? 100.0 * (double(base) - double(segue)) / double(base)
                 : 0;
        reductions.add(red);
        std::printf("%-16s %10llu B %12llu B %9.1f%%\n",
                    w2c::kKernels<w2c::NativePolicy>[k].name,
                    (unsigned long long)base, (unsigned long long)segue,
                    red);
    }
    bench::hr();
    std::printf("median reduction: %.1f%% (paper: 5.9%%)   max: %.1f%%\n",
                reductions.median(), reductions.max());

    // Cross-check with JIT code sizes on the bytecode suite (here the
    // LFI configs are the interesting pair: truncation vs 0x67).
    std::printf("\nJIT code size (LFI backend), per workload:\n");
    std::printf("%-18s %10s %12s %10s\n", "workload", "lfi", "lfi+segue",
                "reduction");
    RunningStat jit_red;
    for (const auto& w : wkld::spec17()) {
        wasm::Module m = w.make();
        auto base = jit::compile(m, jit::CompilerConfig::lfiBase());
        auto segue = jit::compile(m, jit::CompilerConfig::lfiSegue());
        SFI_CHECK(base.isOk() && segue.isOk());
        double red = 100.0 *
                     (double(base->totalCodeBytes) -
                      double(segue->totalCodeBytes)) /
                     double(base->totalCodeBytes);
        jit_red.add(red);
        std::printf("%-18s %8llu B %10llu B %9.1f%%\n", w.name,
                    (unsigned long long)base->totalCodeBytes,
                    (unsigned long long)segue->totalCodeBytes, red);
    }
    bench::hr();
    std::printf("median JIT code-size reduction: %.1f%%\n",
                jit_red.median());
    return 0;
}

}  // namespace
}  // namespace sfi

int
main()
{
    return sfi::run();
}
