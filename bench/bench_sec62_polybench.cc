/**
 * @file
 * §6.2: PolybenchC-like kernels + Dhrystone-alike on the WAMR-style
 * JIT, with and without Segue, normalized to the unsandboxed build.
 */
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "jit/compiler.h"
#include "runtime/instance.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

using jit::CompilerConfig;

int
run()
{
    bench::header("§6.2 — PolybenchC + Dhrystone on the WAMR-style JIT",
                  "paper: Wasm ~6% faster than native geomean; Segue "
                  "improves further");

    std::printf("%-14s %11s %9s %9s\n", "benchmark", "native(s)", "wamr",
                "+segue");
    uint64_t sink = 0;
    std::vector<double> base_n, segue_n;
    for (const auto& w : wkld::polydhry()) {
        std::vector<std::unique_ptr<rt::Instance>> instances;
        for (const CompilerConfig& cfg :
             {CompilerConfig::native(), CompilerConfig::wamrBase(),
              CompilerConfig::wamrSegue()}) {
            auto shared = rt::SharedModule::compile(w.make(), cfg);
            SFI_CHECK(shared.isOk());
            auto inst = rt::Instance::create(*shared);
            SFI_CHECK(inst.isOk());
            instances.push_back(std::move(*inst));
        }
        std::vector<std::function<void()>> fns;
        for (auto& inst : instances) {
            rt::Instance* p = inst.get();
            fns.push_back([p, &w, &sink] {
                auto out = p->call("run", {w.benchScale});
                SFI_CHECK(out.ok());
                sink ^= out.value;
            });
        }
        auto t = bench::timeInterleavedMinSec(fns, 5);
        double native = t[0], base = t[1], segue = t[2];
        std::printf("%-14s %11.3f %8.1f%% %8.1f%%\n", w.name, native,
                    100 * base / native, 100 * segue / native);
        base_n.push_back(base / native);
        segue_n.push_back(segue / native);
    }
    bench::hr();
    std::printf("%-14s %11s %8.1f%% %8.1f%%\n", "geomean", "",
                100 * geomean(base_n), 100 * geomean(segue_n));
    std::printf("(sink=%llx)\n", (unsigned long long)sink);

    // The verified-optimizer ablation (ISSUE 4): the explicit-bounds
    // strategies are where guard elimination pays at runtime; sweep
    // them with the optimizer off (the old single-pass baseline) and
    // on, normalized to native. EXPERIMENTS.md §6.1 records the
    // geomeans.
    std::printf("\nExplicit-bounds strategies, optimizer off vs on "
                "(normalized to native):\n");
    std::printf("%-14s %9s %9s %9s %9s\n", "benchmark", "bc/off",
                "bc/on", "sb/off", "sb/on");
    using jit::MemStrategy;
    auto cfgOf = [](MemStrategy mem, bool opt) {
        return CompilerConfig{.mem = mem, .optimize = opt};
    };
    std::vector<std::vector<double>> norms(4);
    for (const auto& w : wkld::polydhry()) {
        std::vector<std::unique_ptr<rt::Instance>> instances;
        for (const CompilerConfig& cfg :
             {CompilerConfig::native(),
              cfgOf(MemStrategy::BoundsCheck, false),
              cfgOf(MemStrategy::BoundsCheck, true),
              cfgOf(MemStrategy::SegueBounds, false),
              cfgOf(MemStrategy::SegueBounds, true)}) {
            auto shared = rt::SharedModule::compile(w.make(), cfg);
            SFI_CHECK(shared.isOk());
            auto inst = rt::Instance::create(*shared);
            SFI_CHECK(inst.isOk());
            instances.push_back(std::move(*inst));
        }
        std::vector<std::function<void()>> fns;
        for (auto& inst : instances) {
            rt::Instance* p = inst.get();
            fns.push_back([p, &w, &sink] {
                auto out = p->call("run", {w.benchScale});
                SFI_CHECK(out.ok());
                sink ^= out.value;
            });
        }
        auto t = bench::timeInterleavedMinSec(fns, 5);
        std::printf("%-14s", w.name);
        for (int i = 0; i < 4; i++) {
            norms[i].push_back(t[i + 1] / t[0]);
            std::printf(" %8.1f%%", 100 * t[i + 1] / t[0]);
        }
        std::printf("\n");
    }
    bench::hr();
    std::printf("%-14s", "geomean");
    for (int i = 0; i < 4; i++)
        std::printf(" %8.1f%%", 100 * geomean(norms[i]));
    std::printf("\n(sink=%llx)\n", (unsigned long long)sink);
    return 0;
}

}  // namespace
}  // namespace sfi

int
main()
{
    return sfi::run();
}
