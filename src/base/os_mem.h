/**
 * @file
 * RAII wrappers over mmap/mprotect/madvise.
 *
 * Guard-region-based SFI rests on the OS virtual-memory substrate: Wasm
 * engines reserve huge PROT_NONE spans, commit the accessible prefix, and
 * recycle slots with madvise(MADV_DONTNEED) (§2, §5.1). These helpers make
 * those idioms safe and explicit.
 */
#ifndef SFIKIT_BASE_OS_MEM_H_
#define SFIKIT_BASE_OS_MEM_H_

#include <cstddef>
#include <cstdint>

#include "base/result.h"

namespace sfi {

/** Page protections, a safer tri-state over PROT_* flags. */
enum class PageAccess : uint8_t {
    None,       ///< PROT_NONE — guard regions.
    ReadOnly,   ///< PROT_READ.
    ReadWrite,  ///< PROT_READ | PROT_WRITE.
    ReadExec,   ///< PROT_READ | PROT_EXEC — finalized JIT code.
    ReadWriteExec,  ///< For single-step JIT emission where W^X is relaxed.
};

/**
 * An owned span of virtual address space obtained from mmap.
 *
 * The reservation is PROT_NONE + MAP_NORESERVE by default, so reserving
 * terabytes costs only a VMA. Sub-ranges are committed/protected
 * explicitly.
 */
class Reservation
{
  public:
    Reservation() = default;

    /** Reserves @p bytes of PROT_NONE address space. */
    static Result<Reservation> reserve(uint64_t bytes);

    /** Maps @p bytes read-write immediately (small allocations). */
    static Result<Reservation> allocate(uint64_t bytes);

    ~Reservation();

    Reservation(Reservation&& other) noexcept;
    Reservation& operator=(Reservation&& other) noexcept;
    Reservation(const Reservation&) = delete;
    Reservation& operator=(const Reservation&) = delete;

    /** Change protection of [offset, offset+bytes); page-aligned. */
    Status protect(uint64_t offset, uint64_t bytes, PageAccess access);

    /**
     * Return the pages of [offset, offset+bytes) to the OS and zero them
     * on next touch (madvise MADV_DONTNEED). The mapping and, on real MPK
     * hardware, the page protection keys survive — the property §7
     * contrasts with MTE's tag discarding.
     */
    Status decommit(uint64_t offset, uint64_t bytes);

    /**
     * Zero [offset, offset+bytes) with a plain memset. The pages stay
     * committed and their PTEs (including MPK colors) stay warm — the
     * cheap alternative to decommit() when the dirty span is small and
     * the slot is about to be reused (warm-affinity reuse). The range
     * must already be writable.
     */
    Status zero(uint64_t offset, uint64_t bytes);

    uint8_t* base() const { return base_; }
    uint64_t size() const { return size_; }
    bool valid() const { return base_ != nullptr; }

  private:
    Reservation(uint8_t* base, uint64_t size) : base_(base), size_(size) {}

    uint8_t* base_ = nullptr;
    uint64_t size_ = 0;
};

/**
 * Probes [base, base+bytes) and returns the *touched high-water span*:
 * the byte offset (from @p base, rounded up to a page boundary) just
 * past the last page the process ever faulted, or 0 when none has
 * been. Anonymous pages are touched on first store and decommit
 * (MADV_DONTNEED) forgets them, so for a pooling-allocator slot the
 * result is the span the occupant actually dirtied — what
 * MemoryPool::free() wants as touched_bytes instead of the
 * conservative declared memory size.
 *
 * The primary probe reads /proc/self/pagemap and counts a page as
 * touched when it is RAM-resident *or swapped out* — mincore(2) alone
 * would report a swapped-out dirty page as untouched and leak the
 * previous occupant's bytes to the slot's next tenant when the page
 * faults back in. mincore serves as fallback only when pagemap is
 * unreadable and no swap is configured (SwapTotal == 0).
 *
 * @p base is rounded down and @p bytes up to page boundaries. Errors
 * (range not mapped, no safe probe available) surface as a Result
 * error; callers MUST fall back to their conservative span — the
 * result is isolation-relevant, never best-effort.
 */
Result<uint64_t> touchedHighWaterBytes(const void* base, uint64_t bytes);

/** Number of distinct VMAs currently mapped by this process. */
uint64_t currentVmaCount();

/** Value of the vm.max_map_count sysctl (VMA-count limit, §5.1). */
uint64_t maxVmaCount();

}  // namespace sfi

#endif  // SFIKIT_BASE_OS_MEM_H_
