#include "base/cpu.h"

#include <cpuid.h>
#include <time.h>
#include <x86intrin.h>

namespace sfi {

namespace {

CpuFeatures
queryCpuFeatures()
{
    CpuFeatures f;
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
        f.fsgsbase = (ebx & (1u << 0)) != 0;
        f.pku = (ecx & (1u << 3)) != 0;
        f.ospke = (ecx & (1u << 4)) != 0;
    }
    return f;
}

}  // namespace

const CpuFeatures&
cpuFeatures()
{
    static const CpuFeatures features = queryCpuFeatures();
    return features;
}

uint64_t
rdtscFenced()
{
    _mm_lfence();
    uint64_t t = __rdtsc();
    _mm_lfence();
    return t;
}

uint64_t
monotonicNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

double
tscHz()
{
    static const double hz = [] {
        uint64_t ns0 = monotonicNs();
        uint64_t c0 = rdtscFenced();
        // ~20 ms calibration window keeps startup fast while staying well
        // above timer granularity.
        while (monotonicNs() - ns0 < 20'000'000) {
        }
        uint64_t ns1 = monotonicNs();
        uint64_t c1 = rdtscFenced();
        return static_cast<double>(c1 - c0) /
               (static_cast<double>(ns1 - ns0) * 1e-9);
    }();
    return hz;
}

}  // namespace sfi
