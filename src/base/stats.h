/**
 * @file
 * Small statistics helpers used by benchmark harnesses: running mean and
 * standard deviation, percentiles, and geometric mean — the aggregations
 * the paper reports (geomean overheads, medians, stddev < 1%).
 */
#ifndef SFIKIT_BASE_STATS_H_
#define SFIKIT_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sfi {

/** Accumulates samples; provides mean / stddev / min / max / percentiles. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        sum_ += x;
        sumSq_ += x * x;
    }

    size_t count() const { return samples_.size(); }

    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / samples_.size();
    }

    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double n = static_cast<double>(samples_.size());
        double var = (sumSq_ - sum_ * sum_ / n) / (n - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    double
    min() const
    {
        return samples_.empty()
                   ? 0.0
                   : *std::min_element(samples_.begin(), samples_.end());
    }

    double
    max() const
    {
        return samples_.empty()
                   ? 0.0
                   : *std::max_element(samples_.begin(), samples_.end());
    }

    /** p-th percentile (p in [0, 100]) by nearest-rank on sorted samples. */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        double rank = p / 100.0 * (sorted.size() - 1);
        size_t lo = static_cast<size_t>(rank);
        size_t hi = std::min(lo + 1, sorted.size() - 1);
        double frac = rank - lo;
        return sorted[lo] * (1 - frac) + sorted[hi] * frac;
    }

    double median() const { return percentile(50); }

  private:
    std::vector<double> samples_;
    double sum_ = 0;
    double sumSq_ = 0;
};

/**
 * Size/time reduction of @p opt relative to @p base, in percent
 * (positive = opt is smaller/faster). 0 when base is 0 so callers can
 * feed degenerate rows without a guard.
 */
inline double
percentReduction(double base, double opt)
{
    return base != 0.0 ? 100.0 * (base - opt) / base : 0.0;
}

/** Geometric mean of a set of (positive) ratios. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / xs.size());
}

/** Fixed-width histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
    }

    void
    add(double x)
    {
        double t = (x - lo_) / (hi_ - lo_);
        t = std::clamp(t, 0.0, 1.0);
        size_t bin = std::min(static_cast<size_t>(t * counts_.size()),
                              counts_.size() - 1);
        counts_[bin]++;
        total_++;
    }

    uint64_t count(size_t bin) const { return counts_.at(bin); }
    uint64_t total() const { return total_; }
    size_t bins() const { return counts_.size(); }

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Fixed-bucket log-linear histogram over non-negative integers
 * (HdrHistogram-style): 64 linear buckets below 2^6, then 64
 * sub-buckets per power-of-two octave. Buckets are at most
 * 2^-kSubBucketBits (~1.6%) of their value wide, so reporting the
 * midpoint bounds the relative error at half that (~0.8%) — across
 * the full uint64_t range, with a fixed ~30 KiB footprint.
 *
 * Built for latency percentiles on the FaaS hot path: each worker owns
 * a private histogram (add() is a couple of shifts and one increment,
 * no allocation, no locks) and the per-worker reservoirs are merge()d
 * once at the end of the run — the aggregation never coordinates with
 * request serving.
 */
class LogHistogram
{
  public:
    /** Sub-buckets per octave (and size of the linear region). */
    static constexpr int kSubBucketBits = 6;
    static constexpr uint64_t kSubBuckets = 1ull << kSubBucketBits;
    static constexpr size_t kNumBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    LogHistogram() : counts_(kNumBuckets, 0) {}

    void
    add(uint64_t v)
    {
        counts_[bucketOf(v)]++;
        total_++;
        sum_ += v;
        if (v < min_)
            min_ = v;
        if (v > max_)
            max_ = v;
    }

    /** Cross-worker aggregation; exact (bucket-wise sum). */
    void
    merge(const LogHistogram& other)
    {
        for (size_t i = 0; i < kNumBuckets; i++)
            counts_[i] += other.counts_[i];
        total_ += other.total_;
        sum_ += other.sum_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

    uint64_t count() const { return total_; }
    uint64_t min() const { return total_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double
    mean() const
    {
        return total_ ? double(sum_) / double(total_) : 0.0;
    }

    /**
     * p-th percentile (p in [0, 100]) by nearest-rank over the bucket
     * midpoints; exact at the recorded min/max endpoints, and within
     * half a bucket width (≤ 2^-(kSubBucketBits+1), ~0.8% relative)
     * elsewhere.
     */
    uint64_t
    percentile(double p) const
    {
        if (total_ == 0)
            return 0;
        uint64_t rank = uint64_t(p / 100.0 * double(total_ - 1) + 0.5);
        if (rank >= total_ - 1)
            return max_;
        uint64_t seen = 0;
        for (size_t i = 0; i < kNumBuckets; i++) {
            seen += counts_[i];
            if (seen > rank) {
                uint64_t v = bucketMidpoint(i);
                return std::clamp(v, min_, max_);
            }
        }
        return max_;
    }

    /** Index of the bucket holding @p v. */
    static size_t
    bucketOf(uint64_t v)
    {
        if (v < kSubBuckets)
            return size_t(v);
        int msb = 63 - __builtin_clzll(v);
        int shift = msb - kSubBucketBits;
        uint64_t sub = (v >> shift) - kSubBuckets;
        return size_t(kSubBuckets + uint64_t(shift) * kSubBuckets + sub);
    }

    /** Representative (midpoint) value of bucket @p i. */
    static uint64_t
    bucketMidpoint(size_t i)
    {
        if (i < kSubBuckets)
            return uint64_t(i);  // exact in the linear region
        uint64_t shift = (i - kSubBuckets) / kSubBuckets;
        uint64_t sub = (i - kSubBuckets) % kSubBuckets;
        uint64_t lo = (kSubBuckets + sub) << shift;
        uint64_t width = 1ull << shift;
        return lo + width / 2;
    }

  private:
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = UINT64_MAX;
    uint64_t max_ = 0;
};

}  // namespace sfi

#endif  // SFIKIT_BASE_STATS_H_
