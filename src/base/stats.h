/**
 * @file
 * Small statistics helpers used by benchmark harnesses: running mean and
 * standard deviation, percentiles, and geometric mean — the aggregations
 * the paper reports (geomean overheads, medians, stddev < 1%).
 */
#ifndef SFIKIT_BASE_STATS_H_
#define SFIKIT_BASE_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sfi {

/** Accumulates samples; provides mean / stddev / min / max / percentiles. */
class RunningStat
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        sum_ += x;
        sumSq_ += x * x;
    }

    size_t count() const { return samples_.size(); }

    double
    mean() const
    {
        return samples_.empty() ? 0.0 : sum_ / samples_.size();
    }

    double
    stddev() const
    {
        if (samples_.size() < 2)
            return 0.0;
        double n = static_cast<double>(samples_.size());
        double var = (sumSq_ - sum_ * sum_ / n) / (n - 1);
        return var > 0 ? std::sqrt(var) : 0.0;
    }

    double
    min() const
    {
        return samples_.empty()
                   ? 0.0
                   : *std::min_element(samples_.begin(), samples_.end());
    }

    double
    max() const
    {
        return samples_.empty()
                   ? 0.0
                   : *std::max_element(samples_.begin(), samples_.end());
    }

    /** p-th percentile (p in [0, 100]) by nearest-rank on sorted samples. */
    double
    percentile(double p) const
    {
        if (samples_.empty())
            return 0.0;
        std::vector<double> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        double rank = p / 100.0 * (sorted.size() - 1);
        size_t lo = static_cast<size_t>(rank);
        size_t hi = std::min(lo + 1, sorted.size() - 1);
        double frac = rank - lo;
        return sorted[lo] * (1 - frac) + sorted[hi] * frac;
    }

    double median() const { return percentile(50); }

  private:
    std::vector<double> samples_;
    double sum_ = 0;
    double sumSq_ = 0;
};

/** Geometric mean of a set of (positive) ratios. */
inline double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0;
    for (double x : xs)
        logSum += std::log(x);
    return std::exp(logSum / xs.size());
}

/** Fixed-width histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins)
        : lo_(lo), hi_(hi), counts_(bins, 0)
    {
    }

    void
    add(double x)
    {
        double t = (x - lo_) / (hi_ - lo_);
        t = std::clamp(t, 0.0, 1.0);
        size_t bin = std::min(static_cast<size_t>(t * counts_.size()),
                              counts_.size() - 1);
        counts_[bin]++;
        total_++;
    }

    uint64_t count(size_t bin) const { return counts_.at(bin); }
    uint64_t total() const { return total_; }
    size_t bins() const { return counts_.size(); }

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

}  // namespace sfi

#endif  // SFIKIT_BASE_STATS_H_
