/**
 * @file
 * Lightweight error propagation: Status and Result<T>.
 *
 * sfikit reserves exceptions for internal bugs (panic); recoverable errors
 * (bad module bytes, unsupported configuration, exhausted pool) travel
 * through these value types so callers can handle them.
 */
#ifndef SFIKIT_BASE_RESULT_H_
#define SFIKIT_BASE_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "base/logging.h"

namespace sfi {

/** The outcome of an operation with no payload: ok, or an error message. */
class Status
{
  public:
    /** Constructs an OK status. */
    Status() = default;

    /** Constructs an error status carrying @p message. */
    static Status
    error(std::string message)
    {
        Status s;
        s.message_ = std::move(message);
        s.ok_ = false;
        return s;
    }

    static Status ok() { return Status(); }

    bool isOk() const { return ok_; }
    explicit operator bool() const { return ok_; }

    /** Error message; empty for OK statuses. */
    const std::string& message() const { return message_; }

  private:
    bool ok_ = true;
    std::string message_;
};

/** A value of type T, or an error message. */
template <typename T>
class Result
{
  public:
    /** Implicitly constructs a success result. */
    Result(T value) : value_(std::move(value)) {}

    /** Constructs a failed result from a non-OK Status. */
    Result(Status status) : status_(std::move(status))
    {
        SFI_CHECK_MSG(!status_.isOk(),
                      "Result constructed from an OK status");
    }

    static Result<T>
    error(std::string message)
    {
        return Result<T>(Status::error(std::move(message)));
    }

    bool isOk() const { return value_.has_value(); }
    explicit operator bool() const { return isOk(); }

    /** Error message; empty on success. */
    const std::string& message() const { return status_.message(); }
    const Status& status() const { return status_; }

    /** Access the payload; panics if this result is an error. */
    T&
    value()
    {
        SFI_CHECK_MSG(isOk(), "Result::value() on error: %s",
                      status_.message().c_str());
        return *value_;
    }

    const T&
    value() const
    {
        SFI_CHECK_MSG(isOk(), "Result::value() on error: %s",
                      status_.message().c_str());
        return *value_;
    }

    T* operator->() { return &value(); }
    const T* operator->() const { return &value(); }
    T& operator*() { return value(); }
    const T& operator*() const { return value(); }

  private:
    std::optional<T> value_;
    Status status_;
};

}  // namespace sfi

#endif  // SFIKIT_BASE_RESULT_H_
