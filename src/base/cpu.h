/**
 * @file
 * Host-CPU feature detection and timing.
 *
 * Segue needs FSGSBASE (userspace wrgsbase) or falls back to
 * arch_prctl(2); ColorGuard needs MPK (PKU/OSPKE) or falls back to an
 * emulated backend. Mirrors the graceful-fallback requirements the paper
 * describes for production deployment (§4.1, §5.1).
 */
#ifndef SFIKIT_BASE_CPU_H_
#define SFIKIT_BASE_CPU_H_

#include <cstdint>

namespace sfi {

/** Capabilities of the host CPU relevant to Segue and ColorGuard. */
struct CpuFeatures
{
    /** CPUID.7.0:EBX[0] — userspace wrfsbase/wrgsbase available. */
    bool fsgsbase = false;
    /** CPUID.7.0:ECX[3] — protection keys for userspace exist. */
    bool pku = false;
    /** CPUID.7.0:ECX[4] — OS has enabled PKU (CR4.PKE). */
    bool ospke = false;
};

/** Queries CPUID once and caches the result. */
const CpuFeatures& cpuFeatures();

/** Serializing-ish cycle counter read (rdtsc; lfence-fenced). */
uint64_t rdtscFenced();

/** Monotonic wall-clock in nanoseconds. */
uint64_t monotonicNs();

/**
 * Estimated TSC frequency in Hz, measured once against the monotonic
 * clock. Used to convert cycle deltas into ns for reporting.
 */
double tscHz();

}  // namespace sfi

#endif  // SFIKIT_BASE_CPU_H_
