#include "base/logging.h"

#include <cstdio>
#include <cstdlib>

namespace sfi {
namespace detail {

void
logv(LogLevel level, const char* file, int line, const char* fmt, va_list ap)
{
    const char* tag = "info";
    switch (level) {
      case LogLevel::Inform: tag = "info"; break;
      case LogLevel::Warn: tag = "warn"; break;
      case LogLevel::Fatal: tag = "fatal"; break;
      case LogLevel::Panic: tag = "panic"; break;
    }
    std::fprintf(stderr, "[%s] ", tag);
    std::vfprintf(stderr, fmt, ap);
    if (level == LogLevel::Fatal || level == LogLevel::Panic)
        std::fprintf(stderr, " (%s:%d)", file, line);
    std::fprintf(stderr, "\n");
    std::fflush(stderr);
}

}  // namespace detail

void
informAt(const char* file, int line, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::logv(LogLevel::Inform, file, line, fmt, ap);
    va_end(ap);
}

void
warnAt(const char* file, int line, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::logv(LogLevel::Warn, file, line, fmt, ap);
    va_end(ap);
}

void
fatalAt(const char* file, int line, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::logv(LogLevel::Fatal, file, line, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
panicAt(const char* file, int line, const char* fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    detail::logv(LogLevel::Panic, file, line, fmt, ap);
    va_end(ap);
    std::abort();
}

}  // namespace sfi
