/**
 * @file
 * Status-message and error-exit helpers in the gem5 style.
 *
 * fatal()  — the situation is the *user's* fault (bad configuration,
 *            unsupported hardware, invalid arguments); exits with code 1.
 * panic()  — the situation is a bug in sfikit itself; aborts so a core
 *            dump / debugger can capture the state.
 * warn()   — something works, but not as well as it should.
 * inform() — neutral operational status.
 */
#ifndef SFIKIT_BASE_LOGGING_H_
#define SFIKIT_BASE_LOGGING_H_

#include <cstdarg>
#include <cstdint>
#include <string>

namespace sfi {

/** Severity levels for log messages. */
enum class LogLevel : uint8_t { Inform, Warn, Fatal, Panic };

namespace detail {
/** Core logging sink; printf-style formatting, writes to stderr. */
void logv(LogLevel level, const char* file, int line, const char* fmt,
          va_list ap);
}  // namespace detail

/** Print an informational message to stderr. */
void informAt(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print a warning message to stderr. */
void warnAt(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Report a user-caused error and exit(1). */
[[noreturn]] void fatalAt(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Report an internal sfikit bug and abort(). */
[[noreturn]] void panicAt(const char* file, int line, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace sfi

#define SFI_INFORM(...) ::sfi::informAt(__FILE__, __LINE__, __VA_ARGS__)
#define SFI_WARN(...) ::sfi::warnAt(__FILE__, __LINE__, __VA_ARGS__)
#define SFI_FATAL(...) ::sfi::fatalAt(__FILE__, __LINE__, __VA_ARGS__)
#define SFI_PANIC(...) ::sfi::panicAt(__FILE__, __LINE__, __VA_ARGS__)

/** Internal-invariant check: failure means an sfikit bug, so panic. */
#define SFI_CHECK(cond)                                              \
    do {                                                             \
        if (__builtin_expect(!(cond), 0)) {                          \
            ::sfi::panicAt(__FILE__, __LINE__,                       \
                           "check failed: %s", #cond);               \
        }                                                            \
    } while (0)

/** Internal-invariant check with a formatted explanation. */
#define SFI_CHECK_MSG(cond, ...)                                     \
    do {                                                             \
        if (__builtin_expect(!(cond), 0)) {                          \
            ::sfi::panicAt(__FILE__, __LINE__, __VA_ARGS__);         \
        }                                                            \
    } while (0)

#endif  // SFIKIT_BASE_LOGGING_H_
