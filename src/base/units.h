/**
 * @file
 * Size units and alignment helpers used throughout sfikit.
 */
#ifndef SFIKIT_BASE_UNITS_H_
#define SFIKIT_BASE_UNITS_H_

#include <cstdint>

namespace sfi {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/** Host (OS) page size assumed by layout math; verified at startup. */
inline constexpr uint64_t kOsPageSize = 4096;

/** WebAssembly page size: 64 KiB, fixed by the spec. */
inline constexpr uint64_t kWasmPageSize = 64 * kKiB;

/** Returns true iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Rounds @p v up to the next multiple of @p align (a power of two). */
constexpr uint64_t
alignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Rounds @p v down to a multiple of @p align (a power of two). */
constexpr uint64_t
alignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Returns true iff @p v is a multiple of @p align. */
constexpr bool
isAligned(uint64_t v, uint64_t align)
{
    return align != 0 && (v % align) == 0;
}

}  // namespace sfi

#endif  // SFIKIT_BASE_UNITS_H_
