#include "base/fault.h"

#include <map>
#include <mutex>

#include "base/logging.h"

namespace sfi {
namespace fault {

namespace detail {
std::atomic<uint64_t> armedPoints{0};
}  // namespace detail

namespace {

struct PointState {
    uint64_t skip = 0;       // firings to let pass before failing
    uint64_t remaining = 0;  // fail budget
    uint64_t hits = 0;       // firings that failed
    uint64_t triggers = 0;   // firings evaluated at all
    bool armed = false;      // still owned by a live plan
};

struct Registry {
    std::mutex mu;
    // Entries persist after disarm so hits()/triggers() stay readable
    // until the owning plan resets; plans erase their entries on reset.
    std::map<std::string, PointState> points;
};

Registry&
registry()
{
    static Registry* r = new Registry();
    return *r;
}

}  // namespace

bool
fireSlow(const char* point)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    if (it == r.points.end() || !it->second.armed) {
        return false;
    }
    PointState& st = it->second;
    st.triggers++;
    if (st.skip > 0) {
        st.skip--;
        return false;
    }
    if (st.remaining == 0) {
        return false;
    }
    st.remaining--;
    st.hits++;
    return true;
}

FaultPlan::~FaultPlan()
{
    reset();
}

void
FaultPlan::arm(const std::string& point, uint64_t skip, uint64_t count)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    PointState& st = r.points[point];
    SFI_CHECK_MSG(!st.armed, "fault point '%s' armed twice", point.c_str());
    st.skip = skip;
    st.remaining = count;
    st.hits = 0;
    st.triggers = 0;
    st.armed = true;
    owned_.push_back(point);
    detail::armedPoints.fetch_add(1, std::memory_order_relaxed);
}

void
FaultPlan::disarm(const std::string& point)
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    if (it == r.points.end() || !it->second.armed) {
        return;
    }
    it->second.armed = false;
    detail::armedPoints.fetch_sub(1, std::memory_order_relaxed);
}

uint64_t
FaultPlan::hits(const std::string& point) const
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    return it == r.points.end() ? 0 : it->second.hits;
}

uint64_t
FaultPlan::triggers(const std::string& point) const
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    return it == r.points.end() ? 0 : it->second.triggers;
}

void
FaultPlan::reset()
{
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const std::string& point : owned_) {
        auto it = r.points.find(point);
        if (it != r.points.end() && it->second.armed) {
            detail::armedPoints.fetch_sub(1, std::memory_order_relaxed);
        }
        r.points.erase(point);
    }
    owned_.clear();
}

}  // namespace fault
}  // namespace sfi
