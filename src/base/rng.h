/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 / xoshiro256**).
 *
 * Benchmarks and property tests need reproducible randomness that is
 * identical across platforms and standard-library versions, so we do not
 * use <random> engines for anything whose sequence matters.
 */
#ifndef SFIKIT_BASE_RNG_H_
#define SFIKIT_BASE_RNG_H_

#include <cstdint>

namespace sfi {

/** splitmix64 step; good for seeding and hashing. */
constexpr uint64_t
splitmix64(uint64_t& state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** generator: fast, high-quality, and deterministic.
 */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedull)
    {
        uint64_t sm = seed;
        for (auto& s : state_)
            s = splitmix64(sm);
    }

    /** Next 64 uniformly random bits. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire-style rejection-free for our purposes: modulo bias is
        // negligible for the bounds used in tests/benches, but we still use
        // multiply-shift reduction for speed and better distribution.
        return static_cast<uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
                        below(static_cast<uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /**
     * Sample from an exponential distribution with the given mean — used
     * to model inter-arrival / IO delays (the paper draws IO latencies
     * from a Poisson process, 5 ms mean).
     */
    double
    nextExponential(double mean)
    {
        double u = nextDouble();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * log_(u);
    }

  private:
    static constexpr uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    /** Natural log via __builtin to avoid a <cmath> include in a header. */
    static double log_(double x) { return __builtin_log(x); }

    uint64_t state_[4];
};

}  // namespace sfi

#endif  // SFIKIT_BASE_RNG_H_
