#include "base/os_mem.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "base/units.h"

namespace sfi {

namespace {

int
protFlags(PageAccess access)
{
    switch (access) {
      case PageAccess::None: return PROT_NONE;
      case PageAccess::ReadOnly: return PROT_READ;
      case PageAccess::ReadWrite: return PROT_READ | PROT_WRITE;
      case PageAccess::ReadExec: return PROT_READ | PROT_EXEC;
      case PageAccess::ReadWriteExec:
        return PROT_READ | PROT_WRITE | PROT_EXEC;
    }
    return PROT_NONE;
}

}  // namespace

Result<Reservation>
Reservation::reserve(uint64_t bytes)
{
    bytes = alignUp(bytes, kOsPageSize);
    void* p = mmap(nullptr, bytes, PROT_NONE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
    if (p == MAP_FAILED) {
        return Result<Reservation>::error(
            std::string("mmap reserve failed: ") + std::strerror(errno));
    }
    return Reservation(static_cast<uint8_t*>(p), bytes);
}

Result<Reservation>
Reservation::allocate(uint64_t bytes)
{
    bytes = alignUp(bytes, kOsPageSize);
    void* p = mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p == MAP_FAILED) {
        return Result<Reservation>::error(
            std::string("mmap allocate failed: ") + std::strerror(errno));
    }
    return Reservation(static_cast<uint8_t*>(p), bytes);
}

Reservation::~Reservation()
{
    if (base_ != nullptr)
        munmap(base_, size_);
}

Reservation::Reservation(Reservation&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0))
{
}

Reservation&
Reservation::operator=(Reservation&& other) noexcept
{
    if (this != &other) {
        if (base_ != nullptr)
            munmap(base_, size_);
        base_ = std::exchange(other.base_, nullptr);
        size_ = std::exchange(other.size_, 0);
    }
    return *this;
}

Status
Reservation::protect(uint64_t offset, uint64_t bytes, PageAccess access)
{
    if (offset + bytes > size_ || offset % kOsPageSize != 0 ||
        bytes % kOsPageSize != 0) {
        return Status::error("protect range not page aligned or in bounds");
    }
    if (mprotect(base_ + offset, bytes, protFlags(access)) != 0) {
        return Status::error(std::string("mprotect failed: ") +
                             std::strerror(errno));
    }
    return Status::ok();
}

Status
Reservation::decommit(uint64_t offset, uint64_t bytes)
{
    if (offset + bytes > size_ || offset % kOsPageSize != 0 ||
        bytes % kOsPageSize != 0) {
        return Status::error("decommit range not page aligned or in bounds");
    }
    if (madvise(base_ + offset, bytes, MADV_DONTNEED) != 0) {
        return Status::error(std::string("madvise failed: ") +
                             std::strerror(errno));
    }
    return Status::ok();
}

Status
Reservation::zero(uint64_t offset, uint64_t bytes)
{
    if (offset > size_ || bytes > size_ - offset)
        return Status::error("zero range out of bounds");
    std::memset(base_ + offset, 0, bytes);
    return Status::ok();
}

#ifdef __linux__
namespace {

// Pagemap entry flags (man 5 proc): present pages and swapped-out
// pages were both faulted by the occupant; everything else was never
// touched. Unprivileged readers see zeroed PFNs but intact flags
// (Linux >= 4.2).
constexpr uint64_t kPagemapPresent = 1ull << 63;
constexpr uint64_t kPagemapSwapped = 1ull << 62;

/** True when any swap is configured (SwapTotal > 0). Read per call:
 *  a swapon after a cached "no swap" answer would silently void the
 *  probe's no-under-report guarantee. Unreadable /proc/meminfo or a
 *  missing field assume the worst. */
bool
swapConfigured()
{
    std::FILE* f = std::fopen("/proc/meminfo", "r");
    if (f == nullptr)
        return true;
    char line[160];
    bool swap = true;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        unsigned long long kb = 0;
        if (std::sscanf(line, "SwapTotal: %llu", &kb) == 1) {
            swap = kb > 0;
            break;
        }
    }
    std::fclose(f);
    return swap;
}

/** High-water scan of /proc/self/pagemap over page-aligned
 *  [start, end): returns the byte offset from @p base just past the
 *  last present-or-swapped page. Errors when pagemap is unreadable
 *  (pre-4.2 kernel, masked /proc). */
Result<uint64_t>
pagemapHighWaterBytes(const void* base, uint64_t start, uint64_t end)
{
    int fd = open("/proc/self/pagemap", O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        return Result<uint64_t>::error(
            std::string("open /proc/self/pagemap failed: ") +
            std::strerror(errno));
    }
    // Scan in fixed chunks from the top so a sparse slot answers after
    // one read over its (empty) tail in the common case.
    constexpr uint64_t kChunkPages = 1024;  // 8 KiB buffer, 4 MiB span
    uint64_t vec[kChunkPages];
    uint64_t chunk_end = end;
    while (chunk_end > start) {
        uint64_t pages =
            std::min<uint64_t>((chunk_end - start) / kOsPageSize,
                               kChunkPages);
        uint64_t chunk_start = chunk_end - pages * kOsPageSize;
        uint64_t want = pages * sizeof(uint64_t);
        uint64_t got = 0;
        off_t off = static_cast<off_t>(
            chunk_start / kOsPageSize * sizeof(uint64_t));
        while (got < want) {
            ssize_t n = pread(fd, reinterpret_cast<char*>(vec) + got,
                              want - got, off + static_cast<off_t>(got));
            if (n <= 0 && errno == EINTR)
                continue;
            if (n <= 0) {
                close(fd);
                return Result<uint64_t>::error(
                    std::string("pagemap read failed: ") +
                    (n < 0 ? std::strerror(errno) : "short read"));
            }
            got += uint64_t(n);
        }
        for (uint64_t i = pages; i-- > 0;) {
            if (vec[i] & (kPagemapPresent | kPagemapSwapped)) {
                close(fd);
                uint64_t last_end =
                    chunk_start + (i + 1) * kOsPageSize;
                return Result<uint64_t>(
                    last_end - reinterpret_cast<uint64_t>(base));
            }
        }
        chunk_end = chunk_start;
    }
    close(fd);
    return Result<uint64_t>(0);
}

}  // namespace
#endif  // __linux__

Result<uint64_t>
touchedHighWaterBytes(const void* base, uint64_t bytes)
{
#ifndef __linux__
    (void)base;
    (void)bytes;
    return Result<uint64_t>::error("touched-span probe unavailable");
#else
    uint64_t start = alignDown(reinterpret_cast<uint64_t>(base),
                               kOsPageSize);
    uint64_t end = alignUp(reinterpret_cast<uint64_t>(base) + bytes,
                           kOsPageSize);
    if (end == start)
        return Result<uint64_t>(0);

    auto probed = pagemapHighWaterBytes(base, start, end);
    if (probed)
        return probed;

    // mincore(2) reports only RAM residency: a dirty page the kernel
    // swapped out reads as untouched, which would let the slot's next
    // occupant see the previous occupant's bytes once it faults back.
    // So the mincore fallback is safe only while no swap is configured.
    if (swapConfigured()) {
        return Result<uint64_t>::error(
            "touched-span probe unavailable: pagemap unreadable and "
            "swap is configured (" +
            probed.message() + ")");
    }
    constexpr uint64_t kChunkPages = 4096;  // 16 MiB per syscall
    unsigned char vec[kChunkPages];
    uint64_t chunk_end = end;
    while (chunk_end > start) {
        uint64_t pages =
            std::min<uint64_t>((chunk_end - start) / kOsPageSize,
                               kChunkPages);
        uint64_t chunk_start = chunk_end - pages * kOsPageSize;
        if (mincore(reinterpret_cast<void*>(chunk_start),
                    pages * kOsPageSize, vec) != 0) {
            return Result<uint64_t>::error(
                std::string("mincore failed: ") + std::strerror(errno));
        }
        for (uint64_t i = pages; i-- > 0;) {
            if (vec[i] & 1) {
                uint64_t last_end =
                    chunk_start + (i + 1) * kOsPageSize;
                return Result<uint64_t>(
                    last_end - reinterpret_cast<uint64_t>(base));
            }
        }
        chunk_end = chunk_start;
    }
    return Result<uint64_t>(0);
#endif
}

uint64_t
currentVmaCount()
{
    std::FILE* f = std::fopen("/proc/self/maps", "r");
    if (f == nullptr)
        return 0;
    uint64_t lines = 0;
    int c;
    while ((c = std::fgetc(f)) != EOF) {
        if (c == '\n')
            lines++;
    }
    std::fclose(f);
    return lines;
}

uint64_t
maxVmaCount()
{
    std::FILE* f = std::fopen("/proc/sys/vm/max_map_count", "r");
    if (f == nullptr)
        return 65530;  // Linux default.
    unsigned long long v = 65530;
    if (std::fscanf(f, "%llu", &v) != 1)
        v = 65530;
    std::fclose(f);
    return v;
}

}  // namespace sfi
