/**
 * @file
 * Test-only fault injection: named failure points compiled into the
 * production paths, armed only from tests.
 *
 * A fault point is a string id checked at a specific spot in the code,
 * e.g. `fault::fire("keyring.alloc")` inside the key allocator. When no
 * plan is armed anywhere in the process the check is a single relaxed
 * atomic load of a global counter — cheap enough to leave in release
 * builds, which is the point: the tested binary is the shipped binary.
 *
 * Tests arm points through FaultPlan:
 *
 *     sfi::fault::FaultPlan plan;
 *     plan.arm("keyring.alloc", 2, 1);   // skip 2 firings, then fail once
 *     ...                                // run the workload
 *     EXPECT_EQ(plan.hits("keyring.alloc"), 1);
 *
 * The plan disarms its points on destruction, so a throwing test cannot
 * leave faults armed for the next one. Arming is process-global (the
 * code under test does not know which test armed it), so tests that arm
 * faults must not share a process timeslice with tests that assume a
 * fault-free run of the same point — in practice: keep fault tests in
 * their own suite.
 */
#ifndef SFIKIT_BASE_FAULT_H_
#define SFIKIT_BASE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sfi {
namespace fault {

namespace detail {
/** Count of armed points across the process; 0 == fast path. */
extern std::atomic<uint64_t> armedPoints;
}  // namespace detail

/**
 * Returns true if the named point should fail this time.
 *
 * Disarmed (the common case): one relaxed load, no branch into the
 * registry. Armed: consults the registry under a lock; a point fails
 * while its remaining fail budget is positive, after its skip budget
 * is exhausted.
 */
bool fireSlow(const char* point);

inline bool
fire(const char* point)
{
    if (__builtin_expect(
            detail::armedPoints.load(std::memory_order_relaxed) == 0, 1)) {
        return false;
    }
    return fireSlow(point);
}

/**
 * RAII owner of a set of armed fault points.
 *
 * Arming the same point from two live plans is a test bug and panics.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    ~FaultPlan();

    FaultPlan(const FaultPlan&) = delete;
    FaultPlan& operator=(const FaultPlan&) = delete;

    /**
     * Arms @p point: the first @p skip firings pass, the next @p count
     * firings fail, later firings pass again (but are still counted as
     * hits-after-exhaustion via triggers()).
     */
    void arm(const std::string& point, uint64_t skip = 0,
             uint64_t count = UINT64_MAX);

    /** Disarms @p point (no-op if this plan did not arm it). */
    void disarm(const std::string& point);

    /** Number of times @p point actually *failed* so far. */
    uint64_t hits(const std::string& point) const;

    /** Number of times @p point was evaluated (failed or not). */
    uint64_t triggers(const std::string& point) const;

    /** Disarms everything this plan armed. */
    void reset();

  private:
    std::vector<std::string> owned_;
};

}  // namespace fault
}  // namespace sfi

#endif  // SFIKIT_BASE_FAULT_H_
