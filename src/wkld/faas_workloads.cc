/**
 * @file
 * The FaaS edge workloads of §6.4.3: HTML templating, hash-based load
 * balancing, and pattern filtering of URLs — each as a bytecode module
 * whose exported `handle(request_id) -> i64` first awaits simulated IO
 * through the imported `io_wait` host call, then computes.
 */
#include "wkld/workloads.h"

#include <cstring>

#include "wkld/emit_util.h"

namespace sfi::wkld {

using VT = wasm::ValType;

namespace {

/** Common preamble: io_wait import + handle() skeleton. */
struct FaasCtx
{
    ModuleBuilder mb;
    uint32_t ioWait;
    FunctionBuilder f;

    FaasCtx()
        : ioWait(mb.importFunc("io_wait", {VT::I32}, {})),
          f((mb.memory(16, 16), mb.func("handle", {VT::I32}, {VT::I64})))
    {
    }

    wasm::Module
    done(uint32_t acc)
    {
        f.localGet(acc).end();
        mb.exportFunc("handle", f.index());
        return std::move(mb).build();
    }
};

// HTML templating: expand "{{name}}" placeholders from the request.
wasm::Module
mkTemplating()
{
    FaasCtx c;
    auto& f = c.f;
    const char* tpl =
        "<html><head><title>{{t}}</title></head><body>"
        "<h1>Hello {{u}}</h1><ul>{{i}}</ul>"
        "<footer>req {{r}} served by edge-{{e}}</footer></body></html>";
    std::vector<uint8_t> tpl_bytes(tpl, tpl + std::strlen(tpl));
    uint32_t tpl_len = static_cast<uint32_t>(tpl_bytes.size());
    c.mb.data(0, tpl_bytes);
    const uint32_t out = 4096;

    uint32_t req = f.param(0);
    uint32_t i = f.local(VT::I32);
    uint32_t o = f.local(VT::I32);
    uint32_t ch = f.local(VT::I32);
    uint32_t k = f.local(VT::I32);
    uint32_t v = f.local(VT::I32);
    uint32_t len = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.localGet(req).call(c.ioWait);  // await backend data

    // Expand the template 8 times (several fragments per page).
    uint32_t frag = f.local(VT::I32);
    f.i32Const(tpl_len).localSet(len);
    forLoopConst(f, frag, 8, [&] {
        f.i32Const(out).localSet(o);
        f.i32Const(0).localSet(i);
        whileLoop(
            f, [&] { f.localGet(i).localGet(len).i32LtU(); },
            [&] {
                f.localGet(i).i32Load8u(0).localSet(ch);
                // "{{x}}" ?
                f.localGet(ch).i32Const('{').i32Eq()
                    .localGet(i).i32Const(4).i32Add().localGet(len)
                    .i32LtU().i32And()
                    .if_()
                    // substitute: write decimal digits of a value
                    // derived from the request and the key char.
                    .localGet(i).i32Load8u(2).localSet(k)
                    .localGet(req).localGet(k).i32Mul()
                    .localGet(frag).i32Add().i32Const(99991)
                    .i32RemU().localSet(v)
                    // 5 decimal digits, most significant first.
                    .i32Const(10000).localSet(ch)
                    .block().loop()
                    .localGet(ch).i32Eqz().brIf(1)
                    .localGet(o)
                    .localGet(v).localGet(ch).i32DivU().i32Const(10)
                    .i32RemU().i32Const('0').i32Add()
                    .i32Store8()
                    .localGet(o).i32Const(1).i32Add().localSet(o)
                    .localGet(ch).i32Const(10).i32DivU().localSet(ch)
                    .br(0)
                    .end().end()
                    .localGet(i).i32Const(5).i32Add().localSet(i)
                    .else_()
                    .localGet(o).localGet(ch).i32Store8()
                    .localGet(o).i32Const(1).i32Add().localSet(o)
                    .localGet(i).i32Const(1).i32Add().localSet(i)
                    .end();
            });
        // Hash the rendered fragment into the response checksum.
        f.i32Const(out).localSet(i);
        whileLoop(
            f, [&] { f.localGet(i).localGet(o).i32LtU(); },
            [&] {
                f.localGet(acc).i64Const(131).i64Mul()
                    .localGet(i).i32Load8u().i64ExtendI32U().i64Add()
                    .localSet(acc);
                f.localGet(i).i32Const(1).i32Add().localSet(i);
            });
    });
    return c.done(acc);
}

// Hash-based load balancing: consistent-hash a synthetic request key.
wasm::Module
mkHashBalance()
{
    FaasCtx c;
    auto& f = c.f;
    const uint32_t key = 0, ring = 4096;
    uint32_t req = f.param(0);
    uint32_t i = f.local(VT::I32);
    uint32_t h = f.local(VT::I32);
    uint32_t best = f.local(VT::I32);
    uint32_t bestd = f.local(VT::I32);
    uint32_t d = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.localGet(req).call(c.ioWait);

    // 64 virtual nodes on the ring, deterministic positions.
    forLoopConst(f, i, 64, [&] {
        f.localGet(i).i32Const(2).i32Shl()
            .localGet(i).i32Const(0x9e3779b9).i32Mul()
            .i32Store(ring);
    });
    // 128 sub-requests (cache keys) per request.
    uint32_t sub = f.local(VT::I32);
    forLoopConst(f, sub, 128, [&] {
        // Build a 24-byte key from req + sub.
        forLoopConst(f, i, 24, [&] {
            f.localGet(i)
                .localGet(req).localGet(sub).i32Mul().localGet(i)
                .i32Add().i32Const(251).i32RemU()
                .i32Store8(key);
        });
        // FNV the key.
        f.i32Const(2166136261u).localSet(h);
        forLoopConst(f, i, 24, [&] {
            f.localGet(h).localGet(i).i32Load8u(key).i32Xor()
                .i32Const(16777619).i32Mul().localSet(h);
        });
        // Nearest ring node (min |h - node|).
        f.i32Const(0xffffffffu).localSet(bestd);
        f.i32Const(0).localSet(best);
        forLoopConst(f, i, 64, [&] {
            f.localGet(h)
                .localGet(i).i32Const(2).i32Shl().i32Load(ring)
                .i32Sub().localSet(d);
            // d = min(d, -d) unsigned-wrapped ring distance.
            f.i32Const(0).localGet(d).i32Sub()
                .localGet(d)
                .localGet(d).i32Const(0x80000000u).i32LtU()
                .select().localSet(d);
            f.localGet(d).localGet(bestd).i32LtU()
                .if_()
                .localGet(d).localSet(bestd)
                .localGet(i).localSet(best)
                .end();
        });
        f.localGet(acc).i64Const(67).i64Mul()
            .localGet(best).i64ExtendI32U().i64Add().localSet(acc);
    });
    return c.done(acc);
}

// URL filtering: glob-style pattern matching ('*', '?', literals) of
// synthetic request paths against a rule set.
wasm::Module
mkRegexFilter()
{
    FaasCtx c;
    auto& f = c.f;
    // Rule set in a data segment: null-separated patterns.
    static const char rules[] =
        "/api/*/users\0/static/*.css\0/img/??/thumb-*\0"
        "/api/v2/orders/*\0/health\0/api/*/cart/items\0";
    std::vector<uint8_t> rule_bytes(rules, rules + sizeof(rules));
    c.mb.data(0, rule_bytes);
    const uint32_t url = 2048;

    uint32_t req = f.param(0);
    uint32_t i = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    // match(p: i32, u: i32) -> i32 — recursive glob matcher.
    auto match = c.mb.func("match", {VT::I32, VT::I32}, {VT::I32});
    {
        auto& g = match;
        uint32_t pc = g.local(VT::I32);
        uint32_t uc = g.local(VT::I32);
        g.localGet(0).i32Load8u().localSet(pc);
        g.localGet(1).i32Load8u().localSet(uc);
        // End of pattern: match iff end of url.
        g.localGet(pc).i32Eqz()
            .if_().localGet(uc).i32Eqz().ret().end();
        // '*' : match zero chars or consume one url char.
        g.localGet(pc).i32Const('*').i32Eq()
            .if_()
            .localGet(0).i32Const(1).i32Add().localGet(1)
            .call(match.index())
            .if_().i32Const(1).ret().end()
            .localGet(uc).i32Eqz()
            .if_().i32Const(0).ret().end()
            .localGet(0).localGet(1).i32Const(1).i32Add()
            .call(match.index()).ret()
            .end();
        // '?' or exact char.
        g.localGet(uc).i32Eqz()
            .if_().i32Const(0).ret().end();
        g.localGet(pc).i32Const('?').i32Eq()
            .localGet(pc).localGet(uc).i32Eq().i32Or()
            .if_()
            .localGet(0).i32Const(1).i32Add()
            .localGet(1).i32Const(1).i32Add()
            .call(match.index()).ret()
            .end();
        g.i32Const(0).end();
    }

    f.localGet(req).call(c.ioWait);

    // 64 synthetic URLs per request; count rule hits.
    uint32_t q = f.local(VT::I32);
    uint32_t rule_off = f.local(VT::I32);
    forLoopConst(f, q, 64, [&] {
        // Build "/api/vN/users" style path with variation.
        // Compose: "/api/v" + digit + "/users" or other shapes by mod.
        f.i32Const(url).localSet(s);
        // Write "/api/v".
        const char* head = "/api/v";
        for (int k = 0; k < 6; k++) {
            f.localGet(s).i32Const(uint32_t(head[k])).i32Store8();
            f.localGet(s).i32Const(1).i32Add().localSet(s);
        }
        f.localGet(s)
            .localGet(req).localGet(q).i32Add().i32Const(10).i32RemU()
            .i32Const('0').i32Add().i32Store8();
        f.localGet(s).i32Const(1).i32Add().localSet(s);
        // Vary the tail so the rule-hit pattern depends on the request.
        auto writeTail = [&](const char* tail) {
            for (int k = 0; tail[k] != 0; k++) {
                f.localGet(s).i32Const(uint32_t(tail[k])).i32Store8();
                f.localGet(s).i32Const(1).i32Add().localSet(s);
            }
        };
        f.localGet(req).localGet(q).i32Add().i32Const(3).i32RemU()
            .i32Eqz()
            .if_();
        writeTail("/users");
        f.else_();
        f.localGet(req).localGet(q).i32Add().i32Const(3).i32RemU()
            .i32Const(1).i32Eq()
            .if_();
        writeTail("/cart/items");
        f.else_();
        writeTail("/orders/77");
        f.end();
        f.end();
        f.localGet(s).i32Const(0).i32Store8();  // NUL
        // Try every rule; mix the matching rule index in.
        f.i32Const(0).localSet(rule_off);
        forLoopConst(f, i, 6, [&] {
            f.localGet(rule_off).i32Const(url).call(match.index())
                .if_()
                .localGet(acc).i64Const(131).i64Mul()
                .localGet(i).localGet(q).i32Add().i64ExtendI32U()
                .i64Add().i64Const(1).i64Add().localSet(acc)
                .end();
            // Advance to the next NUL-terminated rule.
            whileLoop(
                f,
                [&] {
                    f.localGet(rule_off).i32Load8u().i32Const(0)
                        .i32Ne();
                },
                [&] {
                    f.localGet(rule_off).i32Const(1).i32Add()
                        .localSet(rule_off);
                });
            f.localGet(rule_off).i32Const(1).i32Add()
                .localSet(rule_off);
        });
    });
    return c.done(acc);
}

}  // namespace

const std::vector<Workload>&
faasWorkloads()
{
    static const std::vector<Workload> suite = {
        {"faas", "html-templating", &mkTemplating, 1, 1},
        {"faas", "hash-load-balance", &mkHashBalance, 1, 1},
        {"faas", "regex-filtering", &mkRegexFilter, 1, 1},
    };
    return suite;
}

}  // namespace sfi::wkld
