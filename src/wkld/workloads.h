/**
 * @file
 * Bytecode workload registry: the benchmark programs the JIT figures
 * run.
 *
 * Three suites (DESIGN.md §5):
 *  - sightglass(): 14 micros mirroring the Bytecode Alliance Sightglass
 *    suite WAMR uses (Figure 4), including the two vectorization-
 *    sensitive cases (`memmove`, `sieve`).
 *  - spec17(): 14 kernels mirroring the SPECrate 2017 C/C++ subset the
 *    LFI evaluation uses (Figure 5).
 *  - polydhry(): PolybenchC-flavoured kernels + a Dhrystone-alike
 *    (§6.2).
 *
 * Every module exports "run": (scale: i32) -> i64 checksum; checksums
 * are strategy- and engine-independent (verified by differential
 * tests).
 */
#ifndef SFIKIT_WKLD_WORKLOADS_H_
#define SFIKIT_WKLD_WORKLOADS_H_

#include <vector>

#include "wasm/module.h"

namespace sfi::wkld {

struct Workload
{
    const char* suite;
    const char* name;
    wasm::Module (*make)();
    /** Scale used by benches (larger) and tests (small). */
    uint32_t benchScale;
    uint32_t testScale;
};

const std::vector<Workload>& sightglass();
const std::vector<Workload>& spec17();
const std::vector<Workload>& polydhry();

/**
 * The §6.4.3 FaaS functions. These modules import `io_wait(i32)` and
 * export `handle(request_id: i32) -> i64` instead of `run`.
 */
const std::vector<Workload>& faasWorkloads();

/** Lookup by name across all suites; panics if missing. */
const Workload& findWorkload(const char* name);

}  // namespace sfi::wkld

#endif  // SFIKIT_WKLD_WORKLOADS_H_
