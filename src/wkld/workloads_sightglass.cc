/**
 * @file
 * The Sightglass-like micro suite (Figure 4). Names and characters
 * follow the Bytecode Alliance suite WAMR benchmarks with: crypto
 * permutation, sorting, matrix math, memory movement, loop nests,
 * hashing, scanning, and switch dispatch.
 *
 * `memmove` and `sieve` deliberately use the canonical byte-loop
 * patterns (emit_util.h) that the vectorizer pass rewrites to bulk
 * operations — the mechanism behind their full-Segue regressions
 * (§4.2, §6.2).
 */
#include "wkld/workloads.h"

#include "wkld/emit_util.h"

namespace sfi::wkld {

using VT = wasm::ValType;

namespace {

/** Standard preamble: memory + "run" function signature. */
FunctionBuilder
runFunc(ModuleBuilder& mb, uint32_t pages = 64)
{
    mb.memory(pages, pages);
    return mb.func("run", {VT::I32}, {VT::I64});
}

void
finish(ModuleBuilder& mb, FunctionBuilder& f)
{
    mb.exportFunc("run", f.index());
}

// --- base64: encode a pseudo-random buffer ---
wasm::Module
mkBase64()
{
    ModuleBuilder mb;
    auto f = runFunc(mb);
    // Alphabet as a data segment at 0; input at 256; output at 128K.
    const char* alpha =
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    mb.data(0, std::vector<uint8_t>(alpha, alpha + 64));
    const uint32_t in = 256, out = 128 * 1024, n = 96 * 1024;

    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t o = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t w = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);
    uint32_t nloc = f.local(VT::I32);

    f.i32Const(0x1234).localSet(s);
    f.i32Const(n).localSet(nloc);
    // Fill input with xorshift bytes.
    forLoop(f, i, nloc, [&] {
        f.localGet(i);
        xorshift32(f, s);
        f.i32Store8(in);
    });
    // scale encode passes.
    forLoop(f, rep, f.param(0), [&] {
        f.i32Const(out).localSet(o);
        f.i32Const(0).localSet(i);
        whileLoop(
            f,
            [&] { f.localGet(i).i32Const(n - 3).i32LtU(); },
            [&] {
                // w = 3 input bytes packed.
                f.localGet(i).i32Load8u(in).i32Const(16).i32Shl();
                f.localGet(i).i32Load8u(in + 1).i32Const(8).i32Shl();
                f.i32Or();
                f.localGet(i).i32Load8u(in + 2).i32Or();
                f.localSet(w);
                // 4 output symbols via the table.
                f.localGet(o)
                    .localGet(w).i32Const(18).i32ShrU().i32Const(63)
                    .i32And().i32Load8u(0).i32Store8(out - out);
                f.localGet(o)
                    .localGet(w).i32Const(12).i32ShrU().i32Const(63)
                    .i32And().i32Load8u(0).i32Store8(1);
                f.localGet(o)
                    .localGet(w).i32Const(6).i32ShrU().i32Const(63)
                    .i32And().i32Load8u(0).i32Store8(2);
                f.localGet(o)
                    .localGet(w).i32Const(63).i32And().i32Load8u(0)
                    .i32Store8(3);
                f.localGet(o).i32Const(4).i32Add().localSet(o);
                f.localGet(i).i32Const(3).i32Add().localSet(i);
            });
        // Mix a sample of the output into the checksum.
        f.localGet(acc)
            .localGet(o).i32Load8u(out - 128 * 1024 + 0)
            .i64ExtendI32U().i64Add()
            .localGet(o).i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- fib2: recursive Fibonacci (call-heavy) ---
wasm::Module
mkFib2()
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto fib = mb.func("fib", {VT::I32}, {VT::I32});
    fib.localGet(0).i32Const(2).i32LtU()
        .if_().localGet(0).ret().end()
        .localGet(0).i32Const(1).i32Sub().call(fib.index())
        .localGet(0).i32Const(2).i32Sub().call(fib.index())
        .i32Add()
        .end();
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    uint32_t rep = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);
    forLoop(f, rep, f.param(0), [&] {
        f.i32Const(24).call(fib.index()).i64ExtendI32U()
            .localGet(acc).i64Add().localSet(acc);
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

// --- gimli: 384-bit permutation (rotate/xor heavy) ---
wasm::Module
mkGimli()
{
    ModuleBuilder mb;
    auto f = runFunc(mb, 1);
    // State: 12 u32 words at offset 0.
    uint32_t rep = f.local(VT::I32);
    uint32_t round = f.local(VT::I32);
    uint32_t col = f.local(VT::I32);
    uint32_t x = f.local(VT::I32);
    uint32_t y = f.local(VT::I32);
    uint32_t z = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t twelve = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(12).localSet(twelve);
    // Init state deterministically.
    forLoop(f, i, twelve, [&] {
        f.localGet(i).i32Const(2).i32Shl();
        f.localGet(i).i32Const(0x9e3779b9).i32Mul()
            .localGet(i).i32Const(7).i32Add().i32Xor();
        f.i32Store();
    });
    forLoop(f, rep, f.param(0), [&] {
        forLoopConst(f, round, 24, [&] {
            forLoopConst(f, col, 4, [&] {
                // x = rotl(s[col], 24); y = rotl(s[col+4], 9);
                // z = s[col+8]
                f.localGet(col).i32Const(2).i32Shl().i32Load()
                    .i32Const(24).i32Rotl().localSet(x);
                f.localGet(col).i32Const(2).i32Shl().i32Load(16)
                    .i32Const(9).i32Rotl().localSet(y);
                f.localGet(col).i32Const(2).i32Shl().i32Load(32)
                    .localSet(z);
                // s[col+8] = x ^ (z<<1) ^ ((y & z) << 2)
                f.localGet(col).i32Const(2).i32Shl();
                f.localGet(x)
                    .localGet(z).i32Const(1).i32Shl().i32Xor()
                    .localGet(y).localGet(z).i32And().i32Const(2)
                    .i32Shl().i32Xor();
                f.i32Store(32);
                // s[col+4] = y ^ x ^ ((x | z) << 1)
                f.localGet(col).i32Const(2).i32Shl();
                f.localGet(y).localGet(x).i32Xor()
                    .localGet(x).localGet(z).i32Or().i32Const(1)
                    .i32Shl().i32Xor();
                f.i32Store(16);
                // s[col] = z ^ y ^ ((x & y) << 3)
                f.localGet(col).i32Const(2).i32Shl();
                f.localGet(z).localGet(y).i32Xor()
                    .localGet(x).localGet(y).i32And().i32Const(3)
                    .i32Shl().i32Xor();
                f.i32Store();
            });
            // Small-swap / big-swap + round constant on round & 3.
            f.localGet(round).i32Const(3).i32And().i32Eqz()
                .if_()
                .i32Const(0).i32Const(0).i32Load().i32Const(0x9e377900)
                .i32Xor().localGet(round).i32Xor().i32Store()
                .end();
        });
        // Fold state word 0 into the checksum.
        f.localGet(acc).i32Const(0).i32Load().i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- heapsort over a u32 array ---
wasm::Module
mkHeapsort()
{
    ModuleBuilder mb;
    auto f = runFunc(mb);
    const uint32_t arr = 0, n = 48 * 1024;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t heap_n = f.local(VT::I32);
    uint32_t root = f.local(VT::I32);
    uint32_t child = f.local(VT::I32);
    uint32_t tmp = f.local(VT::I32);
    uint32_t nloc = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(n).localSet(nloc);
    // siftDown(root, heap_n) expressed inline inside the two phases.
    auto sift_down = [&] {
        whileLoop(
            f,
            [&] {
                f.localGet(root).i32Const(1).i32Shl().i32Const(1)
                    .i32Add().localGet(heap_n).i32LtU();
            },
            [&] {
                f.localGet(root).i32Const(1).i32Shl().i32Const(1)
                    .i32Add().localSet(child);
                // pick larger child
                f.localGet(child).i32Const(1).i32Add().localGet(heap_n)
                    .i32LtU()
                    .if_()
                    .localGet(child).i32Const(2).i32Shl().i32Load(arr)
                    .localGet(child).i32Const(2).i32Shl().i32Load(arr + 4)
                    .i32LtU()
                    .if_()
                    .localGet(child).i32Const(1).i32Add().localSet(child)
                    .end()
                    .end();
                // if (a[root] >= a[child]) break (set root = heap_n)
                f.localGet(root).i32Const(2).i32Shl().i32Load(arr)
                    .localGet(child).i32Const(2).i32Shl().i32Load(arr)
                    .i32GeU()
                    .if_()
                    .localGet(heap_n).localSet(root)
                    .else_()
                    // swap a[root], a[child]; root = child
                    .localGet(root).i32Const(2).i32Shl().i32Load(arr)
                    .localSet(tmp)
                    .localGet(root).i32Const(2).i32Shl()
                    .localGet(child).i32Const(2).i32Shl().i32Load(arr)
                    .i32Store(arr)
                    .localGet(child).i32Const(2).i32Shl().localGet(tmp)
                    .i32Store(arr)
                    .localGet(child).localSet(root)
                    .end();
            });
    };

    forLoop(f, rep, f.param(0), [&] {
        // Fill with xorshift values (re-seeded per repetition).
        f.localGet(rep).i32Const(0x5eed).i32Add().localSet(s);
        forLoop(f, i, nloc, [&] {
            f.localGet(i).i32Const(2).i32Shl();
            xorshift32(f, s);
            f.i32Store(arr);
        });
        // Heapify.
        f.i32Const(n).localSet(heap_n);
        f.i32Const(n / 2).localSet(i);
        whileLoop(
            f, [&] { f.localGet(i).i32Const(0).i32GtU(); },
            [&] {
                f.localGet(i).i32Const(1).i32Sub().localSet(i);
                f.localGet(i).localSet(root);
                sift_down();
            });
        // Extract.
        whileLoop(
            f, [&] { f.localGet(heap_n).i32Const(1).i32GtU(); },
            [&] {
                f.localGet(heap_n).i32Const(1).i32Sub().localSet(heap_n);
                // swap a[0], a[heap_n]
                f.i32Const(0).i32Load(arr).localSet(tmp);
                f.i32Const(0)
                    .localGet(heap_n).i32Const(2).i32Shl().i32Load(arr)
                    .i32Store(arr);
                f.localGet(heap_n).i32Const(2).i32Shl().localGet(tmp)
                    .i32Store(arr);
                f.i32Const(0).localSet(root);
                sift_down();
            });
        // Verify order cheaply via sampled sums.
        f.localGet(acc)
            .i32Const((n / 4) * 4).i32Load(arr).i64ExtendI32U().i64Add()
            .i32Const((n / 2) * 4).i32Load(arr).i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- matrix: f64 matrix multiply ---
wasm::Module
mkMatrix()
{
    ModuleBuilder mb;
    auto f = runFunc(mb);
    const uint32_t N = 48;
    const uint32_t A = 0, B = N * N * 8, C = 2 * N * N * 8;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t j = f.local(VT::I32);
    uint32_t k = f.local(VT::I32);
    uint32_t nn = f.local(VT::I32);
    uint32_t sum = f.local(VT::F64);
    uint32_t acc = f.local(VT::F64);

    f.i32Const(N * N).localSet(nn);
    forLoop(f, i, nn, [&] {
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(7).i32RemU().f64ConvertI32U()
            .f64Const(0.25).f64Mul().f64Store(A);
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(11).i32RemU().f64ConvertI32U()
            .f64Const(0.125).f64Mul().f64Store(B);
    });
    forLoop(f, rep, f.param(0), [&] {
        forLoopConst(f, i, N, [&] {
            forLoopConst(f, j, N, [&] {
                f.f64Const(0).localSet(sum);
                forLoopConst(f, k, N, [&] {
                    f.localGet(sum);
                    f.localGet(i).i32Const(N).i32Mul().localGet(k)
                        .i32Add().i32Const(3).i32Shl().f64Load(A);
                    f.localGet(k).i32Const(N).i32Mul().localGet(j)
                        .i32Add().i32Const(3).i32Shl().f64Load(B);
                    f.f64Mul().f64Add().localSet(sum);
                });
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().localGet(sum).f64Store(C);
            });
        });
        f.localGet(acc).i32Const((N + 1) * 8).f64Load(C).f64Add()
            .localSet(acc);
    });
    f.localGet(acc).f64Const(1e6).f64Mul().i64TruncF64S().end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- memmove: explicit byte-copy loop (vectorizer-sensitive) ---
wasm::Module
mkMemmove()
{
    ModuleBuilder mb;
    auto f = runFunc(mb);
    const uint32_t src = 0, dst = 1024 * 1024, n = 768 * 1024;
    uint32_t rep = f.local(VT::I32);
    uint32_t d = f.local(VT::I32);
    uint32_t sp = f.local(VT::I32);
    uint32_t e = f.local(VT::I32);
    uint32_t seed = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t nloc = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(0xfeed).localSet(seed);
    f.i32Const(4096).localSet(nloc);
    forLoop(f, i, nloc, [&] {
        f.localGet(i);
        xorshift32(f, seed);
        f.i32Store8(src);
    });
    forLoop(f, rep, f.param(0), [&] {
        f.i32Const(dst).localSet(d);
        f.i32Const(src).localSet(sp);
        f.i32Const(dst + n).localSet(e);
        emitByteCopyLoop(f, d, sp, e);
        f.localGet(acc)
            .i32Const(dst + 4095).i32Load8u().i64ExtendI32U().i64Add()
            .localGet(d).i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- nested loops (pure arithmetic) ---
wasm::Module
mkNestedLoopN(int depth)
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    uint32_t rep = f.local(VT::I32);
    uint32_t a = f.local(VT::I32);
    uint32_t b = f.local(VT::I32);
    uint32_t c = f.local(VT::I32);
    uint32_t d = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);
    const uint32_t inner = depth == 1 ? 4000 : (depth == 2 ? 160 : 40);

    forLoop(f, rep, f.param(0), [&] {
        forLoopConst(f, a, inner, [&] {
            if (depth >= 2) {
                forLoopConst(f, b, inner, [&] {
                    if (depth >= 3) {
                        forLoopConst(f, c, inner, [&] {
                            f.localGet(acc)
                                .localGet(a).localGet(b).i32Mul()
                                .localGet(c).i32Add()
                                .i64ExtendI32U().i64Add()
                                .localSet(acc);
                        });
                    } else {
                        f.localGet(acc)
                            .localGet(a).localGet(b).i32Xor()
                            .i64ExtendI32U().i64Add().localSet(acc);
                    }
                });
            } else {
                f.localGet(acc)
                    .localGet(a).i32Const(2654435761u).i32Mul()
                    .i64ExtendI32U().i64Add().localSet(acc);
            }
        });
    });
    (void)d;
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

wasm::Module mkNestedLoop() { return mkNestedLoopN(1); }
wasm::Module mkNestedLoop2() { return mkNestedLoopN(2); }
wasm::Module mkNestedLoop3() { return mkNestedLoopN(3); }

// --- random: PRNG stream + histogram stores ---
wasm::Module
mkRandom()
{
    ModuleBuilder mb;
    mb.memory(16, 16);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    const uint32_t hist = 0;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t slot = f.local(VT::I32);
    uint32_t nloc = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(0xc0ffee).localSet(s);
    f.i32Const(200000).localSet(nloc);
    forLoop(f, rep, f.param(0), [&] {
        forLoop(f, i, nloc, [&] {
            // hist[rand & 0xffff]++
            xorshift32(f, s);
            f.i32Const(0xffff).i32And().i32Const(2).i32Shl()
                .localSet(slot);
            f.localGet(slot)
                .localGet(slot).i32Load(hist).i32Const(1).i32Add()
                .i32Store(hist);
        });
        f.localGet(acc)
            .i32Const(0x1234 * 4).i32Load(hist).i64ExtendI32U()
            .i64Add().localSet(acc);
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

// --- seqhash: FNV over a buffer ---
wasm::Module
mkSeqhash()
{
    ModuleBuilder mb;
    auto f = runFunc(mb, 32);
    const uint32_t buf = 0, n = 1024 * 1024;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t h = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t nloc = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(0xabcd).localSet(s);
    f.i32Const(n).localSet(nloc);
    forLoop(f, i, nloc, [&] {
        f.localGet(i);
        xorshift32(f, s);
        f.i32Store8(buf);
    });
    forLoop(f, rep, f.param(0), [&] {
        f.i32Const(2166136261u).localSet(h);
        forLoop(f, i, nloc, [&] {
            f.localGet(h).localGet(i).i32Load8u(buf).i32Xor()
                .i32Const(16777619).i32Mul().localSet(h);
        });
        f.localGet(acc).localGet(h).i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- sieve: array clear (vectorizable) + composite marking ---
wasm::Module
mkSieve()
{
    ModuleBuilder mb;
    auto f = runFunc(mb, 32);
    const uint32_t flags = 0, n = 1024 * 1024;
    uint32_t rep = f.local(VT::I32);
    uint32_t d = f.local(VT::I32);
    uint32_t e = f.local(VT::I32);
    uint32_t p = f.local(VT::I32);
    uint32_t q = f.local(VT::I32);
    uint32_t count = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    forLoop(f, rep, f.param(0), [&] {
        // Re-initialize the flag array each iteration — the canonical
        // fill loop the vectorizer recognizes (cf. WAMR's sieve, §6.2).
        f.i32Const(flags).localSet(d);
        f.i32Const(flags + n).localSet(e);
        emitByteFillLoop(f, d, e, 1);
        // Mark composites.
        f.i32Const(2).localSet(p);
        whileLoop(
            f,
            [&] {
                f.localGet(p).localGet(p).i32Mul().i32Const(n).i32LtU();
            },
            [&] {
                f.localGet(p).i32Load8u(flags)
                    .if_()
                    .localGet(p).localGet(p).i32Mul().localSet(q)
                    .block().loop()
                    .localGet(q).i32Const(n).i32GeU().brIf(1)
                    .localGet(q).i32Const(0).i32Store8(flags)
                    .localGet(q).localGet(p).i32Add().localSet(q)
                    .br(0)
                    .end().end()
                    .end();
                f.localGet(p).i32Const(1).i32Add().localSet(p);
            });
        // Count primes in a sample window.
        f.i32Const(0).localSet(count);
        f.i32Const(2).localSet(q);
        whileLoop(
            f, [&] { f.localGet(q).i32Const(65536).i32LtU(); },
            [&] {
                f.localGet(count).localGet(q).i32Load8u(flags).i32Add()
                    .localSet(count);
                f.localGet(q).i32Const(1).i32Add().localSet(q);
            });
        f.localGet(acc).localGet(count).i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- strchr: byte scan with early exit ---
wasm::Module
mkStrchr()
{
    ModuleBuilder mb;
    auto f = runFunc(mb, 32);
    const uint32_t buf = 0, n = 512 * 1024;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t needle = f.local(VT::I32);
    uint32_t found = f.local(VT::I32);
    uint32_t nloc = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(0xdead).localSet(s);
    f.i32Const(n).localSet(nloc);
    forLoop(f, i, nloc, [&] {
        f.localGet(i);
        xorshift32(f, s);
        f.i32Const(0x7f).i32And().i32Store8(buf);
    });
    forLoop(f, rep, f.param(0), [&] {
        // Search for a needle derived from the iteration; usually a
        // long scan (values 128..255 never appear -> full scan half
        // the time).
        f.localGet(rep).i32Const(0xff).i32And().localSet(needle);
        f.i32Const(0xffffffffu).localSet(found);
        f.i32Const(0).localSet(i);
        f.block();
        f.loop();
        f.localGet(i).localGet(nloc).i32GeU().brIf(1);
        f.localGet(i).i32Load8u(buf).localGet(needle).i32Eq()
            .if_()
            .localGet(i).localSet(found)
            .br(2)  // break out of the scan
            .end();
        f.localGet(i).i32Const(1).i32Add().localSet(i);
        f.br(0);
        f.end();
        f.end();
        f.localGet(acc).localGet(found).i64ExtendI32U().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    finish(mb, f);
    return std::move(mb).build();
}

// --- switch2: br_table dispatch ---
wasm::Module
mkSwitch2()
{
    ModuleBuilder mb;
    mb.memory(1, 1);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t s = f.local(VT::I32);
    uint32_t v = f.local(VT::I32);
    uint32_t nloc = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    f.i32Const(0x51e).localSet(s);
    f.i32Const(200000).localSet(nloc);
    forLoop(f, rep, f.param(0), [&] {
        forLoop(f, i, nloc, [&] {
            xorshift32(f, s);
            f.i32Const(7).i32And().localSet(v);
            // 8-way dispatch: blocks 7..0, each case adds a distinct
            // amount to acc.
            f.block().block().block().block()
                .block().block().block().block().block();
            f.localGet(v).brTable({0, 1, 2, 3, 4, 5, 6, 7, 8});
            f.end();
            f.localGet(acc).i64Const(1).i64Add().localSet(acc).br(7);
            f.end();
            f.localGet(acc).i64Const(3).i64Add().localSet(acc).br(6);
            f.end();
            f.localGet(acc).i64Const(5).i64Add().localSet(acc).br(5);
            f.end();
            f.localGet(acc).i64Const(7).i64Add().localSet(acc).br(4);
            f.end();
            f.localGet(acc).i64Const(11).i64Add().localSet(acc).br(3);
            f.end();
            f.localGet(acc).i64Const(13).i64Add().localSet(acc).br(2);
            f.end();
            f.localGet(acc).i64Const(17).i64Add().localSet(acc).br(1);
            f.end();
            f.localGet(acc).i64Const(19).i64Add().localSet(acc);
            f.end();
        });
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

}  // namespace

const std::vector<Workload>&
sightglass()
{
    static const std::vector<Workload> suite = {
        {"sightglass", "base64", &mkBase64, 40, 1},
        {"sightglass", "fib2", &mkFib2, 60, 1},
        {"sightglass", "gimli", &mkGimli, 30000, 2},
        {"sightglass", "heapsort", &mkHeapsort, 30, 1},
        {"sightglass", "matrix", &mkMatrix, 60, 1},
        {"sightglass", "memmove", &mkMemmove, 400, 1},
        {"sightglass", "nestedloop", &mkNestedLoop, 8000, 2},
        {"sightglass", "nestedloop2", &mkNestedLoop2, 1200, 2},
        {"sightglass", "nestedloop3", &mkNestedLoop3, 500, 2},
        {"sightglass", "random", &mkRandom, 30, 1},
        {"sightglass", "seqhash", &mkSeqhash, 30, 1},
        {"sightglass", "sieve", &mkSieve, 12, 1},
        {"sightglass", "strchr", &mkStrchr, 40, 1},
        {"sightglass", "switch2", &mkSwitch2, 30, 1},
    };
    return suite;
}

}  // namespace sfi::wkld
