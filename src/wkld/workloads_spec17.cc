/**
 * @file
 * The SPEC-CPU-2017-like suite (Figure 5): fourteen kernels mirroring
 * the SPECrate C/C++ subset the LFI paper evaluates. Each is a
 * from-scratch bytecode program with the namesake's computational
 * character (DESIGN.md §5).
 */
#include "wkld/workloads.h"

#include "wkld/emit_util.h"

namespace sfi::wkld {

using VT = wasm::ValType;

namespace {

struct Ctx
{
    ModuleBuilder mb;
    FunctionBuilder f;
    uint32_t rep, i, j, s, acc;

    explicit Ctx(uint32_t pages)
        : f((mb.memory(pages, pages),
             mb.func("run", {VT::I32}, {VT::I64})))
    {
        rep = f.local(VT::I32);
        i = f.local(VT::I32);
        j = f.local(VT::I32);
        s = f.local(VT::I32);
        acc = f.local(VT::I64);
    }

    wasm::Module
    done()
    {
        f.localGet(acc).end();
        mb.exportFunc("run", f.index());
        return std::move(mb).build();
    }
};

/** Fill [base, base+n*4) u32 slots from xorshift (seed local s). */
void
fillWords(Ctx& c, uint32_t base, uint32_t n, uint32_t mask = 0xffffffffu)
{
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(n).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(2).i32Shl();
        xorshift32(c.f, c.s);
        if (mask != 0xffffffffu)
            c.f.i32Const(mask).i32And();
        c.f.i32Store(base);
    });
}

// 502.gcc_r: token dispatch + symbol hashing over a synthetic stream.
wasm::Module
mk502()
{
    Ctx c(32);
    const uint32_t toks = 0, symtab = 1024 * 1024, N = 200000;
    uint32_t v = c.f.local(VT::I32);
    uint32_t slot = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(0x6cc).localSet(c.s);
    fillWords(c, toks, N, 0xffff);
    c.f.i32Const(N).localSet(nloc);
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        forLoop(c.f, c.i, nloc, [&] {
            c.f.localGet(c.i).i32Const(2).i32Shl().i32Load(toks)
                .localSet(v);
            // 6-way "IR opcode" dispatch.
            c.f.block().block().block().block().block().block().block();
            c.f.localGet(v).i32Const(7).i32And().brTable(
                {0, 1, 2, 3, 4, 5, 6, 6});
            c.f.end();
            // def: insert into hash table.
            c.f.localGet(v).i32Const(2654435761u).i32Mul()
                .i32Const(0x3ffff).i32And().i32Const(2).i32Shl()
                .localSet(slot);
            c.f.localGet(slot).localGet(v).i32Store(symtab).br(5);
            c.f.end();
            // use: probe.
            c.f.localGet(v).i32Const(2654435761u).i32Mul()
                .i32Const(0x3ffff).i32And().i32Const(2).i32Shl()
                .i32Load(symtab).i64ExtendI32U()
                .localGet(c.acc).i64Add().localSet(c.acc).br(4);
            c.f.end();
            c.f.localGet(c.acc).i64Const(3).i64Add().localSet(c.acc)
                .br(3);
            c.f.end();
            c.f.localGet(c.acc).localGet(v).i64ExtendI32U().i64Xor()
                .localSet(c.acc).br(2);
            c.f.end();
            c.f.localGet(c.acc).i64Const(1).i64Shl().localSet(c.acc)
                .br(1);
            c.f.end();
            c.f.localGet(c.acc).i64Const(7).i64Add().localSet(c.acc);
            c.f.end();
        });
    });
    return c.done();
}

// 505.mcf_r: adjacency pointer chasing.
wasm::Module
mk505()
{
    Ctx c(64);
    const uint32_t V = 65536;
    const uint32_t nxt = 0, val = V * 4, dist = V * 8;
    uint32_t cur = c.f.local(VT::I32);
    uint32_t steps = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(0x5cf).localSet(c.s);
    fillWords(c, nxt, V, V - 1);
    fillWords(c, val, V, 0xff);
    c.f.i32Const(V).localSet(nloc);
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        // Long pointer chase accumulating values.
        c.f.i32Const(1).localSet(cur);
        c.f.i32Const(300000).localSet(steps);
        forLoop(c.f, c.i, steps, [&] {
            c.f.localGet(cur).i32Const(2).i32Shl().i32Load(val)
                .i64ExtendI32U().localGet(c.acc).i64Add()
                .localSet(c.acc);
            c.f.localGet(cur).i32Const(2).i32Shl().i32Load(nxt)
                .localSet(cur);
        });
        // Relaxation sweep.
        forLoop(c.f, c.i, nloc, [&] {
            c.f.localGet(c.i).i32Const(2).i32Shl();
            c.f.localGet(c.i).i32Const(2).i32Shl().i32Load(dist)
                .localGet(c.i).i32Const(2).i32Shl().i32Load(val)
                .i32Add();
            c.f.i32Store(dist);
        });
    });
    return c.done();
}

// 508.namd_r: windowed pair forces (f64).
wasm::Module
mk508()
{
    Ctx c(64);
    const uint32_t N = 16384;
    const uint32_t X = 0, F = N * 8;
    uint32_t fx = c.f.local(VT::F64);
    uint32_t xi = c.f.local(VT::F64);
    uint32_t dx = c.f.local(VT::F64);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(N).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(3).i32Shl()
            .localGet(c.i).i32Const(1023).i32And().f64ConvertI32U()
            .f64Const(0.03125).f64Mul().f64Store(X);
        c.f.localGet(c.i).i32Const(3).i32Shl().f64Const(0).f64Store(F);
    });
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        forLoop(c.f, c.i, nloc, [&] {
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(X)
                .localSet(xi);
            c.f.f64Const(0).localSet(fx);
            // window of 16 neighbours (wrapping).
            forLoopConst(c.f, c.j, 16, [&] {
                c.f.localGet(xi)
                    .localGet(c.i).localGet(c.j).i32Add().i32Const(N - 1)
                    .i32And().i32Const(3).i32Shl().f64Load(X)
                    .f64Sub().localSet(dx);
                c.f.localGet(dx).localGet(dx).f64Mul().f64Const(0.5)
                    .f64Add();
                c.f.localGet(dx).f64Mul();
                c.f.localGet(fx).f64Add().localSet(fx);
            });
            c.f.localGet(c.i).i32Const(3).i32Shl();
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(F)
                .localGet(fx).f64Add();
            c.f.f64Store(F);
        });
        c.f.localGet(c.acc)
            .i32Const(128 * 8).f64Load(F).f64Const(100).f64Mul()
            .i64TruncF64S().i64Add().localSet(c.acc);
    });
    return c.done();
}

// 510.parest_r: CSR sparse matrix-vector products (f64).
wasm::Module
mk510()
{
    Ctx c(64);
    const uint32_t R = 32768, NNZ_PER = 8;
    const uint32_t colidx = 0, vals = R * NNZ_PER * 4,
                   x = vals + R * NNZ_PER * 8, y = x + R * 8;
    uint32_t sum = c.f.local(VT::F64);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(0xbe57).localSet(c.s);
    fillWords(c, colidx, R * NNZ_PER, R - 1);
    c.f.i32Const(R * NNZ_PER).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(3).i32Shl()
            .localGet(c.i).i32Const(255).i32And().f64ConvertI32U()
            .f64Const(0.004).f64Mul().f64Store(vals);
    });
    c.f.i32Const(R).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(3).i32Shl()
            .localGet(c.i).i32Const(127).i32And().f64ConvertI32U()
            .f64Store(x);
    });
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        forLoop(c.f, c.i, nloc, [&] {
            c.f.f64Const(0).localSet(sum);
            forLoopConst(c.f, c.j, NNZ_PER, [&] {
                // sum += vals[i*8+j] * x[colidx[i*8+j]]
                c.f.localGet(sum);
                c.f.localGet(c.i).i32Const(3).i32Shl().localGet(c.j)
                    .i32Add().i32Const(3).i32Shl().f64Load(vals);
                c.f.localGet(c.i).i32Const(3).i32Shl().localGet(c.j)
                    .i32Add().i32Const(2).i32Shl().i32Load(colidx)
                    .i32Const(3).i32Shl().f64Load(x);
                c.f.f64Mul().f64Add().localSet(sum);
            });
            c.f.localGet(c.i).i32Const(3).i32Shl().localGet(sum)
                .f64Store(y);
        });
        c.f.localGet(c.acc)
            .i32Const(999 * 8).f64Load(y).i64TruncF64S().i64Add()
            .localSet(c.acc);
    });
    return c.done();
}

// 511.povray_r: ray-sphere intersection tests (f64 + sqrt).
wasm::Module
mk511()
{
    Ctx c(16);
    const uint32_t S = 512;  // spheres: cx, cy, cz, r (4 f64 each)
    const uint32_t sph = 0;
    uint32_t t = c.f.local(VT::F64);
    uint32_t b = c.f.local(VT::F64);
    uint32_t disc = c.f.local(VT::F64);
    uint32_t ox = c.f.local(VT::F64);
    uint32_t dx = c.f.local(VT::F64);
    uint32_t hits = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(S * 4).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(3).i32Shl()
            .localGet(c.i).i32Const(63).i32And().f64ConvertI32U()
            .f64Const(0.25).f64Mul().f64Const(1.0).f64Add()
            .f64Store(sph);
    });
    c.f.i32Const(S).localSet(nloc);
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        c.f.i32Const(0).localSet(hits);
        forLoopConst(c.f, c.j, 256, [&] {  // rays
            c.f.localGet(c.j).f64ConvertI32U().f64Const(0.07).f64Mul()
                .localSet(dx);
            forLoop(c.f, c.i, nloc, [&] {
                // b = dot(center - origin, dir); disc = b*b - (|c|^2 - r^2)
                c.f.localGet(c.i).i32Const(5).i32Shl().f64Load(sph)
                    .localGet(dx).f64Sub().localSet(ox);
                c.f.localGet(ox).localGet(dx).f64Mul().localSet(b);
                c.f.localGet(b).localGet(b).f64Mul()
                    .localGet(ox).localGet(ox).f64Mul()
                    .localGet(c.i).i32Const(5).i32Shl().f64Load(sph + 24)
                    .f64Sub().f64Sub().localSet(disc);
                c.f.localGet(disc).f64Const(0).f64Gt()
                    .if_()
                    .localGet(b).localGet(disc).f64Sqrt().f64Sub()
                    .localSet(t)
                    .localGet(t).f64Const(0).f64Gt()
                    .if_()
                    .localGet(hits).i32Const(1).i32Add().localSet(hits)
                    .end()
                    .end();
            });
        });
        c.f.localGet(c.acc).localGet(hits).i64ExtendI32U().i64Add()
            .localSet(c.acc);
    });
    return c.done();
}

// 519.lbm_r: 1D-blocked f64 streaming stencil.
wasm::Module
mk519()
{
    Ctx c(64);
    const uint32_t N = 262144;
    const uint32_t A = 0, B = N * 8;
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(N).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(3).i32Shl()
            .localGet(c.i).i32Const(8191).i32And().f64ConvertI32U()
            .f64Const(0.0001).f64Mul().f64Store(A);
    });
    uint32_t n2 = c.f.local(VT::I32);
    c.f.i32Const(N - 2).localSet(n2);
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        forLoop(c.f, c.i, n2, [&] {
            // B[i+1] = 0.25*A[i] + 0.5*A[i+1] + 0.25*A[i+2]
            c.f.localGet(c.i).i32Const(3).i32Shl();
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(A)
                .f64Const(0.25).f64Mul();
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(A + 8)
                .f64Const(0.5).f64Mul().f64Add();
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(A + 16)
                .f64Const(0.25).f64Mul().f64Add();
            c.f.f64Store(B + 8);
        });
        forLoop(c.f, c.i, n2, [&] {  // copy back
            c.f.localGet(c.i).i32Const(3).i32Shl();
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(B + 8);
            c.f.f64Store(A + 8);
        });
        c.f.localGet(c.acc)
            .i32Const(1000 * 8).f64Load(A).f64Const(1e6).f64Mul()
            .i64TruncF64S().i64Add().localSet(c.acc);
    });
    return c.done();
}

// 520.omnetpp_r: discrete-event heap simulation (i64 keys).
wasm::Module
mk520()
{
    Ctx c(32);
    const uint32_t heap = 0;
    uint32_t hn = c.f.local(VT::I32);
    uint32_t idx = c.f.local(VT::I32);
    uint32_t child = c.f.local(VT::I32);
    uint32_t tmp = c.f.local(VT::I64);
    uint32_t now = c.f.local(VT::I64);
    uint32_t events = c.f.local(VT::I32);
    c.f.i32Const(0x04e7).localSet(c.s);

    auto sift_up = [&] {
        whileLoop(
            c.f, [&] { c.f.localGet(idx).i32Const(0).i32GtU(); },
            [&] {
                // parent = (idx-1)/2
                c.f.localGet(idx).i32Const(1).i32Sub().i32Const(1)
                    .i32ShrU().localSet(c.j);
                c.f.localGet(c.j).i32Const(3).i32Shl().i64Load(heap)
                    .localGet(idx).i32Const(3).i32Shl().i64Load(heap)
                    .i64LeU()
                    .if_()
                    .i32Const(0).localSet(idx)
                    .else_()
                    .localGet(c.j).i32Const(3).i32Shl().i64Load(heap)
                    .localSet(tmp)
                    .localGet(c.j).i32Const(3).i32Shl()
                    .localGet(idx).i32Const(3).i32Shl().i64Load(heap)
                    .i64Store(heap)
                    .localGet(idx).i32Const(3).i32Shl().localGet(tmp)
                    .i64Store(heap)
                    .localGet(c.j).localSet(idx)
                    .end();
            });
    };

    forLoop(c.f, c.rep, c.f.param(0), [&] {
        c.f.i32Const(0).localSet(hn);
        c.f.i64Const(0).localSet(now);
        c.f.i32Const(200000).localSet(events);
        // Seed 64 initial events.
        forLoopConst(c.f, c.i, 64, [&] {
            xorshift32(c.f, c.s);
            c.f.i64ExtendI32U().localSet(tmp);
            c.f.localGet(hn).i32Const(3).i32Shl().localGet(tmp)
                .i64Store(heap);
            c.f.localGet(hn).localSet(idx);
            c.f.localGet(hn).i32Const(1).i32Add().localSet(hn);
            sift_up();
        });
        forLoop(c.f, c.i, events, [&] {
            // Pop min into now.
            c.f.i32Const(0).i64Load(heap).localSet(now);
            c.f.localGet(hn).i32Const(1).i32Sub().localSet(hn);
            c.f.i32Const(0)
                .localGet(hn).i32Const(3).i32Shl().i64Load(heap)
                .i64Store(heap);
            // Sift down.
            c.f.i32Const(0).localSet(idx);
            whileLoop(
                c.f,
                [&] {
                    c.f.localGet(idx).i32Const(1).i32Shl().i32Const(1)
                        .i32Add().localGet(hn).i32LtU();
                },
                [&] {
                    c.f.localGet(idx).i32Const(1).i32Shl().i32Const(1)
                        .i32Add().localSet(child);
                    c.f.localGet(child).i32Const(1).i32Add()
                        .localGet(hn).i32LtU()
                        .if_()
                        .localGet(child).i32Const(3).i32Shl()
                        .i64Load(heap + 8)
                        .localGet(child).i32Const(3).i32Shl()
                        .i64Load(heap)
                        .i64LtU()
                        .if_()
                        .localGet(child).i32Const(1).i32Add()
                        .localSet(child)
                        .end()
                        .end();
                    c.f.localGet(idx).i32Const(3).i32Shl().i64Load(heap)
                        .localGet(child).i32Const(3).i32Shl()
                        .i64Load(heap)
                        .i64LeU()
                        .if_()
                        .localGet(hn).localSet(idx)
                        .else_()
                        .localGet(idx).i32Const(3).i32Shl().i64Load(heap)
                        .localSet(tmp)
                        .localGet(idx).i32Const(3).i32Shl()
                        .localGet(child).i32Const(3).i32Shl()
                        .i64Load(heap).i64Store(heap)
                        .localGet(child).i32Const(3).i32Shl()
                        .localGet(tmp).i64Store(heap)
                        .localGet(child).localSet(idx)
                        .end();
                });
            // Schedule a follow-up event.
            xorshift32(c.f, c.s);
            c.f.i32Const(0xffff).i32And().i64ExtendI32U()
                .localGet(now).i64Add().localSet(tmp);
            c.f.localGet(hn).i32Const(3).i32Shl().localGet(tmp)
                .i64Store(heap);
            c.f.localGet(hn).localSet(idx);
            c.f.localGet(hn).i32Const(1).i32Add().localSet(hn);
            sift_up();
        });
        c.f.localGet(c.acc).localGet(now).i64Add().localSet(c.acc);
    });
    return c.done();
}

// 523.xalancbmk_r: tree walk + string hashing.
wasm::Module
mk523()
{
    Ctx c(32);
    const uint32_t NODES = 65536;
    // node: left(u32), right(u32), tag(u32)
    const uint32_t left = 0, right = NODES * 4, tag = NODES * 8;
    uint32_t cur = c.f.local(VT::I32);
    uint32_t depth = c.f.local(VT::I32);
    uint32_t h = c.f.local(VT::I32);
    uint32_t walks = c.f.local(VT::I32);
    c.f.i32Const(0xa1a).localSet(c.s);
    fillWords(c, left, NODES, NODES - 1);
    fillWords(c, right, NODES, NODES - 1);
    fillWords(c, tag, NODES, 0xffff);
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        c.f.i32Const(40000).localSet(walks);
        forLoop(c.f, c.i, walks, [&] {
            // Walk 24 levels, picking left/right by tag parity,
            // hashing tags like element names.
            c.f.localGet(c.i).i32Const(0x7ff).i32And().localSet(cur);
            c.f.i32Const(2166136261u).localSet(h);
            forLoopConst(c.f, depth, 24, [&] {
                c.f.localGet(h)
                    .localGet(cur).i32Const(2).i32Shl().i32Load(tag)
                    .i32Xor().i32Const(16777619).i32Mul().localSet(h);
                c.f.localGet(cur).i32Const(2).i32Shl().i32Load(tag)
                    .i32Const(1).i32And()
                    .if_()
                    .localGet(cur).i32Const(2).i32Shl().i32Load(left)
                    .localSet(cur)
                    .else_()
                    .localGet(cur).i32Const(2).i32Shl().i32Load(right)
                    .localSet(cur)
                    .end();
            });
            c.f.localGet(c.acc).localGet(h).i64ExtendI32U().i64Add()
                .localSet(c.acc);
        });
    });
    return c.done();
}

// 525.x264_r: block SAD sweeps.
wasm::Module
mk525()
{
    Ctx c(32);
    const uint32_t W = 512, H = 256;
    const uint32_t ref = 0, cur = W * H;
    uint32_t sad = c.f.local(VT::I32);
    uint32_t x = c.f.local(VT::I32);
    uint32_t y = c.f.local(VT::I32);
    uint32_t bx = c.f.local(VT::I32);
    uint32_t by = c.f.local(VT::I32);
    uint32_t d = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(0x264).localSet(c.s);
    c.f.i32Const(W * H).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i);
        xorshift32(c.f, c.s);
        c.f.i32Store8(ref);
        c.f.localGet(c.i);
        xorshift32(c.f, c.s);
        c.f.i32Store8(cur);
    });
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        c.f.i32Const(0).localSet(by);
        whileLoop(
            c.f, [&] { c.f.localGet(by).i32Const(H - 16).i32LtU(); },
            [&] {
                c.f.i32Const(0).localSet(bx);
                whileLoop(
                    c.f,
                    [&] { c.f.localGet(bx).i32Const(W - 16).i32LtU(); },
                    [&] {
                        c.f.i32Const(0).localSet(sad);
                        forLoopConst(c.f, y, 16, [&] {
                            forLoopConst(c.f, x, 16, [&] {
                                c.f.localGet(by).localGet(y).i32Add()
                                    .i32Const(W).i32Mul()
                                    .localGet(bx).i32Add()
                                    .localGet(x).i32Add()
                                    .localSet(d);
                                c.f.localGet(d).i32Load8u(cur)
                                    .localGet(d).i32Load8u(ref)
                                    .i32Sub().localSet(d);
                                // abs via mask trick
                                c.f.localGet(d).i32Const(31).i32ShrS()
                                    .localSet(c.j);
                                c.f.localGet(sad)
                                    .localGet(d).localGet(c.j).i32Xor()
                                    .localGet(c.j).i32Sub()
                                    .i32Add().localSet(sad);
                            });
                        });
                        c.f.localGet(c.acc).localGet(sad)
                            .i64ExtendI32U().i64Add().localSet(c.acc);
                        c.f.localGet(bx).i32Const(16).i32Add()
                            .localSet(bx);
                    });
                c.f.localGet(by).i32Const(16).i32Add().localSet(by);
            });
    });
    return c.done();
}

// 531.deepsjeng_r: recursive negamax with a transposition table.
wasm::Module
mk531()
{
    ModuleBuilder mb;
    mb.memory(16, 16);
    // search(state: i64, depth: i32) -> i32
    auto search = mb.func("search", {VT::I64, VT::I32}, {VT::I32});
    {
        auto& f = search;
        uint32_t best = f.local(VT::I32);
        uint32_t mv = f.local(VT::I32);
        uint32_t child = f.local(VT::I64);
        uint32_t slot = f.local(VT::I32);
        f.localGet(1).i32Eqz()
            .if_()
            .localGet(0).i64Const(0x9e3779b97f4a7c15ull).i64Mul()
            .i64Const(29).i64ShrU().i32WrapI64().i32Const(0xfff)
            .i32And().i32Const(2048).i32Sub().ret()
            .end();
        // TT probe: 64K entries {key u32, val u32}.
        f.localGet(0).i64Const(17).i64ShrU().i32WrapI64()
            .i32Const(0xffff).i32And().i32Const(3).i32Shl()
            .localSet(slot);
        f.localGet(slot).i32Load(0)
            .localGet(0).i32WrapI64().localGet(1).i32Xor().i32Eq()
            .if_()
            .localGet(slot).i32Load(4).ret()
            .end();
        f.i32Const(0xc0000000u).localSet(best);
        forLoopConst(f, mv, 5, [&] {
            f.localGet(0).i64Const(6364136223846793005ull).i64Mul()
                .localGet(mv).i64ExtendI32U().i64Const(2654435761u)
                .i64Mul().i64Add().i64Const(1).i64Add()
                .localSet(child);
            // score = -search(child, depth-1)
            f.i32Const(0)
                .localGet(child).localGet(1).i32Const(1).i32Sub()
                .call(search.index())
                .i32Sub().localSet(slot);
            f.localGet(slot).localGet(best).i32GtS()
                .if_()
                .localGet(slot).localSet(best)
                .end();
        });
        // TT store.
        f.localGet(0).i64Const(17).i64ShrU().i32WrapI64()
            .i32Const(0xffff).i32And().i32Const(3).i32Shl()
            .localSet(slot);
        f.localGet(slot)
            .localGet(0).i32WrapI64().localGet(1).i32Xor()
            .i32Store(0);
        f.localGet(slot).localGet(best).i32Store(4);
        f.localGet(best).end();
    }
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    uint32_t rep = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);
    forLoop(f, rep, f.param(0), [&] {
        f.localGet(rep).i64ExtendI32U().i64Const(0xabcdull).i64Add()
            .i32Const(7).call(search.index())
            .i64ExtendI32S().localGet(acc).i64Add().localSet(acc);
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

// 538.imagick_r: 3x3 convolution over bytes.
wasm::Module
mk538()
{
    Ctx c(32);
    const uint32_t W = 512, H = 256;
    const uint32_t src = 0, dst = W * H;
    uint32_t x = c.f.local(VT::I32);
    uint32_t y = c.f.local(VT::I32);
    uint32_t sum = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(0x1346).localSet(c.s);
    c.f.i32Const(W * H).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i);
        xorshift32(c.f, c.s);
        c.f.i32Store8(src);
    });
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        c.f.i32Const(1).localSet(y);
        whileLoop(
            c.f, [&] { c.f.localGet(y).i32Const(H - 1).i32LtU(); },
            [&] {
                c.f.i32Const(1).localSet(x);
                whileLoop(
                    c.f,
                    [&] { c.f.localGet(x).i32Const(W - 1).i32LtU(); },
                    [&] {
                        // 3x3 blur: j = top-left corner so every
                        // neighbour has a non-negative static offset.
                        c.f.localGet(y).i32Const(1).i32Sub()
                            .i32Const(W).i32Mul()
                            .localGet(x).i32Add().i32Const(1).i32Sub()
                            .localSet(c.j);
                        c.f.localGet(c.j).i32Load8u(src + W + 1)
                            .i32Const(2).i32Shl();
                        c.f.localGet(c.j).i32Load8u(src).i32Add();
                        c.f.localGet(c.j).i32Load8u(src + 1).i32Add();
                        c.f.localGet(c.j).i32Load8u(src + 2).i32Add();
                        c.f.localGet(c.j).i32Load8u(src + W).i32Add();
                        c.f.localGet(c.j).i32Load8u(src + W + 2)
                            .i32Add();
                        c.f.localGet(c.j).i32Load8u(src + 2 * W)
                            .i32Add();
                        c.f.localGet(c.j).i32Load8u(src + 2 * W + 1)
                            .i32Add();
                        c.f.localGet(c.j).i32Load8u(src + 2 * W + 2)
                            .i32Add();
                        c.f.i32Const(3).i32ShrU().localSet(sum);
                        c.f.localGet(c.j).localGet(sum)
                            .i32Store8(dst + W + 1);
                        c.f.localGet(x).i32Const(1).i32Add()
                            .localSet(x);
                    });
                c.f.localGet(y).i32Const(1).i32Add().localSet(y);
            });
        c.f.localGet(c.acc)
            .i32Const(W * 100 + 77).i32Load8u(dst).i64ExtendI32U()
            .i64Add().localSet(c.acc);
    });
    return c.done();
}

// 541.leela_r: board flood fills.
wasm::Module
mk541()
{
    Ctx c(16);
    const uint32_t B = 361;  // 19x19
    const uint32_t board = 0, mark = 512, stack = 1024;
    uint32_t sp = c.f.local(VT::I32);
    uint32_t pos = c.f.local(VT::I32);
    uint32_t libs = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    uint32_t games = c.f.local(VT::I32);
    c.f.i32Const(0x1ee1a).localSet(c.s);
    c.f.i32Const(B).localSet(nloc);
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        c.f.i32Const(2000).localSet(games);
        forLoop(c.f, c.j, games, [&] {
            forLoop(c.f, c.i, nloc, [&] {
                c.f.localGet(c.i);
                xorshift32(c.f, c.s);
                c.f.i32Const(3).i32RemU().i32Store8(board);
                c.f.localGet(c.i).i32Const(0).i32Store8(mark);
            });
            c.f.i32Const(0).localSet(libs);
            forLoop(c.f, c.i, nloc, [&] {
                c.f.localGet(c.i).i32Load8u(board).i32Eqz()
                    .localGet(c.i).i32Load8u(mark).i32Const(0).i32Ne()
                    .i32Or()
                    .if_().else_()
                    // flood fill empties from i, counting area
                    .i32Const(0).localSet(sp)
                    .localGet(sp).i32Const(2).i32Shl().localGet(c.i)
                    .i32Store(stack)
                    .localGet(sp).i32Const(1).i32Add().localSet(sp)
                    .localGet(c.i).i32Const(1).i32Store8(mark)
                    .block().loop()
                    .localGet(sp).i32Eqz().brIf(1)
                    .localGet(sp).i32Const(1).i32Sub().localSet(sp)
                    .localGet(sp).i32Const(2).i32Shl().i32Load(stack)
                    .localSet(pos)
                    .localGet(libs).i32Const(1).i32Add().localSet(libs)
                    // right neighbour
                    .localGet(pos).i32Const(19).i32RemU().i32Const(18)
                    .i32LtU()
                    .if_()
                    .localGet(pos).i32Load8u(board + 1).i32Eqz()
                    .localGet(pos).i32Load8u(mark + 1).i32Eqz().i32And()
                    .if_()
                    .localGet(pos).i32Const(1).i32Add().i32Const(1)
                    .i32Store8(mark - 1)
                    .localGet(sp).i32Const(2).i32Shl()
                    .localGet(pos).i32Const(1).i32Add().i32Store(stack)
                    .localGet(sp).i32Const(1).i32Add().localSet(sp)
                    .end()
                    .end()
                    // down neighbour
                    .localGet(pos).i32Const(B - 19).i32LtU()
                    .if_()
                    .localGet(pos).i32Load8u(board + 19).i32Eqz()
                    .localGet(pos).i32Load8u(mark + 19).i32Eqz()
                    .i32And()
                    .if_()
                    .localGet(pos).i32Const(19).i32Add().i32Const(1)
                    .i32Store8(mark - 19)
                    .localGet(sp).i32Const(2).i32Shl()
                    .localGet(pos).i32Const(19).i32Add().i32Store(stack)
                    .localGet(sp).i32Const(1).i32Add().localSet(sp)
                    .end()
                    .end()
                    .br(0)
                    .end().end()
                    .end();
            });
            c.f.localGet(c.acc).localGet(libs).i64ExtendI32U().i64Add()
                .localSet(c.acc);
        });
    });
    return c.done();
}

// 544.nab_r: nonbonded force accumulation (f64, reciprocals).
wasm::Module
mk544()
{
    Ctx c(32);
    const uint32_t N = 8192;
    const uint32_t Q = 0, E = N * 8;
    uint32_t e = c.f.local(VT::F64);
    uint32_t r2 = c.f.local(VT::F64);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(N).localSet(nloc);
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i).i32Const(3).i32Shl()
            .localGet(c.i).i32Const(15).i32And().f64ConvertI32U()
            .f64Const(0.1).f64Mul().f64Const(0.2).f64Add().f64Store(Q);
    });
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        forLoop(c.f, c.i, nloc, [&] {
            c.f.f64Const(0).localSet(e);
            forLoopConst(c.f, c.j, 32, [&] {
                c.f.localGet(c.i).localGet(c.j).i32Add().i32Const(1)
                    .i32Add().f64ConvertI32U().localSet(r2);
                // e += q_i*q_j / r2 - 1/(r2*r2)
                c.f.localGet(e);
                c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(Q);
                c.f.localGet(c.i).localGet(c.j).i32Add()
                    .i32Const(N - 1).i32And().i32Const(3).i32Shl()
                    .f64Load(Q);
                c.f.f64Mul().localGet(r2).f64Div().f64Add();
                c.f.f64Const(1).localGet(r2).localGet(r2).f64Mul()
                    .f64Div().f64Sub();
                c.f.localSet(e);
            });
            c.f.localGet(c.i).i32Const(3).i32Shl();
            c.f.localGet(c.i).i32Const(3).i32Shl().f64Load(E)
                .localGet(e).f64Add();
            c.f.f64Store(E);
        });
        c.f.localGet(c.acc)
            .i32Const(77 * 8).f64Load(E).f64Const(1000).f64Mul()
            .i64TruncF64S().i64Add().localSet(c.acc);
    });
    return c.done();
}

// 557.xz_r: LZ77-style match finder with hash chains.
wasm::Module
mk557()
{
    Ctx c(64);
    const uint32_t N = 1024 * 1024;
    const uint32_t buf = 0, head = N, prev = N + 0x40000;
    uint32_t pos = c.f.local(VT::I32);
    uint32_t h = c.f.local(VT::I32);
    uint32_t cand = c.f.local(VT::I32);
    uint32_t len = c.f.local(VT::I32);
    uint32_t best = c.f.local(VT::I32);
    uint32_t tries = c.f.local(VT::I32);
    uint32_t nloc = c.f.local(VT::I32);
    c.f.i32Const(0x715).localSet(c.s);
    c.f.i32Const(N).localSet(nloc);
    // Compressible input: low-entropy bytes.
    forLoop(c.f, c.i, nloc, [&] {
        c.f.localGet(c.i);
        xorshift32(c.f, c.s);
        c.f.i32Const(15).i32And().i32Store8(buf);
    });
    forLoop(c.f, c.rep, c.f.param(0), [&] {
        // Reset the hash heads (prev chains are gated by head+cand<pos).
        forLoopConst(c.f, c.i, 0x10000, [&] {
            c.f.localGet(c.i).i32Const(2).i32Shl().i32Const(0xffffffffu)
                .i32Store(head);
        });
        c.f.i32Const(0).localSet(pos);
        whileLoop(
            c.f,
            [&] { c.f.localGet(pos).i32Const(N - 64).i32LtU(); },
            [&] {
                // h = hash of 3 bytes.
                c.f.localGet(pos).i32Load8u(buf).i32Const(16).i32Shl()
                    .localGet(pos).i32Load8u(buf + 1).i32Const(8)
                    .i32Shl().i32Or()
                    .localGet(pos).i32Load8u(buf + 2).i32Or()
                    .i32Const(2654435761u).i32Mul().i32Const(16)
                    .i32ShrU().localSet(h);
                c.f.localGet(h).i32Const(2).i32Shl().i32Load(head)
                    .localSet(cand);
                c.f.i32Const(0).localSet(best);
                c.f.i32Const(8).localSet(tries);
                whileLoop(
                    c.f,
                    [&] {
                        c.f.localGet(cand).i32Const(0xffffffffu)
                            .i32Ne()
                            .localGet(tries).i32Const(0).i32GtU()
                            .i32And()
                            .localGet(cand).localGet(pos).i32LtU()
                            .i32And();
                    },
                    [&] {
                        // match length up to 32.
                        c.f.i32Const(0).localSet(len);
                        whileLoop(
                            c.f,
                            [&] {
                                c.f.localGet(len).i32Const(32).i32LtU();
                            },
                            [&] {
                                c.f.localGet(cand).localGet(len)
                                    .i32Add().i32Load8u(buf)
                                    .localGet(pos).localGet(len)
                                    .i32Add().i32Load8u(buf)
                                    .i32Ne()
                                    .if_()
                                    .i32Const(32).localSet(len)
                                    // force-exit marker: len=32 ends loop
                                    .else_()
                                    .localGet(len).i32Const(1).i32Add()
                                    .localSet(len)
                                    .end();
                            });
                        c.f.localGet(len).localGet(best).i32GtU()
                            .if_()
                            .localGet(len).localSet(best)
                            .end();
                        c.f.localGet(cand).i32Const(0x7ffff).i32And()
                            .i32Const(2).i32Shl().i32Load(prev)
                            .localSet(cand);
                        c.f.localGet(tries).i32Const(1).i32Sub()
                            .localSet(tries);
                    });
                // Insert pos into the chain.
                c.f.localGet(pos).i32Const(0x7ffff).i32And()
                    .i32Const(2).i32Shl()
                    .localGet(h).i32Const(2).i32Shl().i32Load(head)
                    .i32Store(prev);
                c.f.localGet(h).i32Const(2).i32Shl().localGet(pos)
                    .i32Store(head);
                c.f.localGet(c.acc).localGet(best).i64ExtendI32U()
                    .i64Add().localSet(c.acc);
                // Skip by matched length (like lazy matching off):
                // pos += best > 1 ? best : 1.
                c.f.localGet(best).i32Const(1)
                    .localGet(best).i32Const(1).i32GtU().select()
                    .localGet(pos).i32Add().localSet(pos);
            });
    });
    return c.done();
}

}  // namespace

const std::vector<Workload>&
spec17()
{
    static const std::vector<Workload> suite = {
        {"spec17", "502.gcc_r", &mk502, 12, 1},
        {"spec17", "505.mcf_r", &mk505, 20, 1},
        {"spec17", "508.namd_r", &mk508, 12, 1},
        {"spec17", "510.parest_r", &mk510, 12, 1},
        {"spec17", "511.povray_r", &mk511, 16, 1},
        {"spec17", "519.lbm_r", &mk519, 16, 1},
        {"spec17", "520.omnetpp_r", &mk520, 10, 1},
        {"spec17", "523.xalancbmk_r", &mk523, 12, 1},
        {"spec17", "525.x264_r", &mk525, 12, 1},
        {"spec17", "531.deepsjeng_r", &mk531, 40, 1},
        {"spec17", "538.imagick_r", &mk538, 16, 1},
        {"spec17", "541.leela_r", &mk541, 6, 1},
        {"spec17", "544.nab_r", &mk544, 10, 1},
        {"spec17", "557.xz_r", &mk557, 8, 1},
    };
    return suite;
}

}  // namespace sfi::wkld
