/**
 * @file
 * Emission helpers for authoring bytecode workloads: counted loops,
 * while loops, inline xorshift PRNG — the idioms every benchmark needs,
 * emitted under the flat-stack discipline the validator enforces.
 */
#ifndef SFIKIT_WKLD_EMIT_UTIL_H_
#define SFIKIT_WKLD_EMIT_UTIL_H_

#include <functional>

#include "wasm/builder.h"

namespace sfi::wkld {

using wasm::FunctionBuilder;
using wasm::ModuleBuilder;
using wasm::ValType;

/**
 * for (i = start; i < end_local; i++) body()
 * @p i must be a dedicated i32 local; @p end_local an i32 local.
 */
inline void
forLoop(FunctionBuilder& f, uint32_t i, uint32_t end_local,
        const std::function<void()>& body, uint32_t start = 0,
        uint32_t step = 1)
{
    f.i32Const(start).localSet(i);
    f.block().loop();
    f.localGet(i).localGet(end_local).i32GeU().brIf(1);
    body();
    f.localGet(i).i32Const(step).i32Add().localSet(i);
    f.br(0);
    f.end().end();
}

/** for (i = start; i < end_const; i++) body() */
inline void
forLoopConst(FunctionBuilder& f, uint32_t i, uint32_t end_const,
             const std::function<void()>& body, uint32_t start = 0,
             uint32_t step = 1)
{
    f.i32Const(start).localSet(i);
    f.block().loop();
    f.localGet(i).i32Const(end_const).i32GeU().brIf(1);
    body();
    f.localGet(i).i32Const(step).i32Add().localSet(i);
    f.br(0);
    f.end().end();
}

/** while (cond()) body(); cond leaves one i32 on the stack. */
inline void
whileLoop(FunctionBuilder& f, const std::function<void()>& cond,
          const std::function<void()>& body)
{
    f.block().loop();
    cond();
    f.i32Eqz().brIf(1);
    body();
    f.br(0);
    f.end().end();
}

/** Advances xorshift32 state in local @p s and leaves it on the stack. */
inline void
xorshift32(FunctionBuilder& f, uint32_t s)
{
    f.localGet(s).localGet(s).i32Const(13).i32Shl().i32Xor().localSet(s);
    f.localGet(s).localGet(s).i32Const(17).i32ShrU().i32Xor().localSet(s);
    f.localGet(s).localGet(s).i32Const(5).i32Shl().i32Xor().localTee(s);
}

/**
 * The canonical byte-fill loop the vectorizer recognizes
 * (jit/vectorize.h): fills [d, e) with constant @p val; d ends at e.
 * Must stay in exact sync with matchFill().
 */
inline void
emitByteFillLoop(FunctionBuilder& f, uint32_t d, uint32_t e, uint32_t val)
{
    f.block().loop();
    f.localGet(d).localGet(e).i32GeU().brIf(1);
    f.localGet(d).i32Const(val).i32Store8();
    f.localGet(d).i32Const(1).i32Add().localSet(d);
    f.br(0);
    f.end().end();
}

/**
 * The canonical byte-copy loop the vectorizer recognizes: copies
 * [s, s + (e-d)) to [d, e); d and s advance.
 */
inline void
emitByteCopyLoop(FunctionBuilder& f, uint32_t d, uint32_t s, uint32_t e)
{
    f.block().loop();
    f.localGet(d).localGet(e).i32GeU().brIf(1);
    f.localGet(d).localGet(s).i32Load8u().i32Store8();
    f.localGet(d).i32Const(1).i32Add().localSet(d);
    f.localGet(s).i32Const(1).i32Add().localSet(s);
    f.br(0);
    f.end().end();
}

}  // namespace sfi::wkld

#endif  // SFIKIT_WKLD_EMIT_UTIL_H_
