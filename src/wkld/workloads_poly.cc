/**
 * @file
 * PolybenchC-flavoured kernels and a Dhrystone-alike (§6.2): linear
 * algebra, stencils, and the synthetic systems-programming mix WAMR's
 * own benchmark scripts use.
 */
#include "wkld/workloads.h"

#include "wkld/emit_util.h"

namespace sfi::wkld {

using VT = wasm::ValType;

namespace {

// poly.2mm: D = A*B*C (f64, N x N).
wasm::Module
mk2mm()
{
    ModuleBuilder mb;
    mb.memory(64, 64);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    const uint32_t N = 40;
    const uint32_t A = 0, B = N * N * 8, C = 2 * N * N * 8,
                   T = 3 * N * N * 8, D = 4 * N * N * 8;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t j = f.local(VT::I32);
    uint32_t k = f.local(VT::I32);
    uint32_t sum = f.local(VT::F64);
    uint32_t acc = f.local(VT::I64);
    uint32_t nn = f.local(VT::I32);
    f.i32Const(N * N).localSet(nn);
    forLoop(f, i, nn, [&] {
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(13).i32RemU().f64ConvertI32U()
            .f64Const(0.125).f64Mul().f64Store(A);
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(17).i32RemU().f64ConvertI32U()
            .f64Const(0.0625).f64Mul().f64Store(B);
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(7).i32RemU().f64ConvertI32U()
            .f64Const(0.5).f64Mul().f64Store(C);
    });
    auto matmul = [&](uint32_t X, uint32_t Y, uint32_t Z) {
        forLoopConst(f, i, N, [&] {
            forLoopConst(f, j, N, [&] {
                f.f64Const(0).localSet(sum);
                forLoopConst(f, k, N, [&] {
                    f.localGet(sum);
                    f.localGet(i).i32Const(N).i32Mul().localGet(k)
                        .i32Add().i32Const(3).i32Shl().f64Load(X);
                    f.localGet(k).i32Const(N).i32Mul().localGet(j)
                        .i32Add().i32Const(3).i32Shl().f64Load(Y);
                    f.f64Mul().f64Add().localSet(sum);
                });
                f.localGet(i).i32Const(N).i32Mul().localGet(j)
                    .i32Add().i32Const(3).i32Shl().localGet(sum)
                    .f64Store(Z);
            });
        });
    };
    forLoop(f, rep, f.param(0), [&] {
        matmul(A, B, T);
        matmul(T, C, D);
        f.localGet(acc)
            .i32Const((N + 2) * 8).f64Load(D).f64Const(100).f64Mul()
            .i64TruncF64S().i64Add().localSet(acc);
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

// poly.jacobi2d: 5-point relaxation.
wasm::Module
mkJacobi2d()
{
    ModuleBuilder mb;
    mb.memory(64, 64);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    const uint32_t N = 192;
    const uint32_t A = 0, B = N * N * 8;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t j = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);
    uint32_t nn = f.local(VT::I32);
    f.i32Const(N * N).localSet(nn);
    forLoop(f, i, nn, [&] {
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(101).i32RemU().f64ConvertI32U()
            .f64Store(A);
    });
    forLoop(f, rep, f.param(0), [&] {
        forLoopConst(f, i, N - 2, [&] {
            forLoopConst(f, j, N - 2, [&] {
                // B[c] = 0.2*(A[c] + A[c-1] + A[c+1] + A[c-N] + A[c+N])
                // with c = (i+1)*N + (j+1); use top-left indexing so all
                // offsets are non-negative.
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl();
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().f64Load(A + (N + 1) * 8);
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().f64Load(A + N * 8).f64Add();
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().f64Load(A + (N + 2) * 8)
                    .f64Add();
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().f64Load(A + 8).f64Add();
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().f64Load(A + (2 * N + 1) * 8)
                    .f64Add();
                f.f64Const(0.2).f64Mul();
                f.f64Store(B + (N + 1) * 8);
            });
        });
        // Copy back.
        forLoop(f, i, nn, [&] {
            f.localGet(i).i32Const(3).i32Shl();
            f.localGet(i).i32Const(3).i32Shl().f64Load(B);
            f.f64Store(A);
        });
        f.localGet(acc)
            .i32Const((N * 5 + 5) * 8).f64Load(A).f64Const(1000)
            .f64Mul().i64TruncF64S().i64Add().localSet(acc);
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

// poly.atax: A^T * (A * x).
wasm::Module
mkAtax()
{
    ModuleBuilder mb;
    mb.memory(64, 64);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    const uint32_t N = 256;
    const uint32_t A = 0, X = N * N * 8, T = X + N * 8, Y = T + N * 8;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t j = f.local(VT::I32);
    uint32_t sum = f.local(VT::F64);
    uint32_t acc = f.local(VT::I64);
    uint32_t nn = f.local(VT::I32);
    f.i32Const(N * N).localSet(nn);
    forLoop(f, i, nn, [&] {
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(31).i32And().f64ConvertI32U()
            .f64Const(0.03125).f64Mul().f64Store(A);
    });
    uint32_t nl = f.local(VT::I32);
    f.i32Const(N).localSet(nl);
    forLoop(f, i, nl, [&] {
        f.localGet(i).i32Const(3).i32Shl()
            .localGet(i).i32Const(5).i32RemU().f64ConvertI32U()
            .f64Store(X);
    });
    forLoop(f, rep, f.param(0), [&] {
        forLoopConst(f, i, N, [&] {
            f.f64Const(0).localSet(sum);
            forLoopConst(f, j, N, [&] {
                f.localGet(sum);
                f.localGet(i).i32Const(N).i32Mul().localGet(j).i32Add()
                    .i32Const(3).i32Shl().f64Load(A);
                f.localGet(j).i32Const(3).i32Shl().f64Load(X);
                f.f64Mul().f64Add().localSet(sum);
            });
            f.localGet(i).i32Const(3).i32Shl().localGet(sum)
                .f64Store(T);
        });
        forLoopConst(f, i, N, [&] {
            f.f64Const(0).localSet(sum);
            forLoopConst(f, j, N, [&] {
                f.localGet(sum);
                f.localGet(j).i32Const(N).i32Mul().localGet(i).i32Add()
                    .i32Const(3).i32Shl().f64Load(A);
                f.localGet(j).i32Const(3).i32Shl().f64Load(T);
                f.f64Mul().f64Add().localSet(sum);
            });
            f.localGet(i).i32Const(3).i32Shl().localGet(sum)
                .f64Store(Y);
        });
        f.localGet(acc)
            .i32Const(100 * 8).f64Load(Y).i64TruncF64S().i64Add()
            .localSet(acc);
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

// dhrystone-alike: record copies, string compares, branchy control.
wasm::Module
mkDhrystone()
{
    ModuleBuilder mb;
    mb.memory(4, 4);
    auto f = mb.func("run", {VT::I32}, {VT::I64});
    // Records: 64 bytes each; string area.
    const uint32_t recA = 0, recB = 64, str1 = 256, str2 = 320;
    uint32_t rep = f.local(VT::I32);
    uint32_t i = f.local(VT::I32);
    uint32_t loops = f.local(VT::I32);
    uint32_t eq = f.local(VT::I32);
    uint32_t k = f.local(VT::I32);
    uint32_t acc = f.local(VT::I64);

    // Initialize strings (30 chars, differ at the last position).
    uint32_t thirty = f.local(VT::I32);
    f.i32Const(30).localSet(thirty);
    forLoop(f, i, thirty, [&] {
        f.localGet(i).localGet(i).i32Const(65).i32Add().i32Store8(str1);
        f.localGet(i).localGet(i).i32Const(65).i32Add().i32Store8(str2);
    });
    f.i32Const(29).i32Const(90).i32Store8(str2);

    forLoop(f, rep, f.param(0), [&] {
        f.i32Const(40000).localSet(loops);
        forLoop(f, i, loops, [&] {
            // Proc: fill record A fields, copy to B, branch on values.
            f.i32Const(0).localGet(i).i32Store(recA);        // int comp
            f.i32Const(0).i32Const(2).i32Store(recA + 4);    // enum
            f.i32Const(0).localGet(i).i32Const(10).i32RemU()
                .i32Store(recA + 8);
            // Record assignment (8 words).
            forLoopConst(f, k, 8, [&] {
                f.localGet(k).i32Const(2).i32Shl();
                f.localGet(k).i32Const(2).i32Shl().i32Load(recA);
                f.i32Store(recB);
            });
            // String compare.
            f.i32Const(1).localSet(eq);
            forLoop(f, k, thirty, [&] {
                f.localGet(k).i32Load8u(str1)
                    .localGet(k).i32Load8u(str2).i32Ne()
                    .if_().i32Const(0).localSet(eq).end();
            });
            // Branch chain like Proc_6/Func_2.
            f.localGet(eq)
                .if_()
                .localGet(acc).i64Const(3).i64Add().localSet(acc)
                .else_()
                .i32Const(0).i32Load(recB + 8).i32Const(5).i32GtU()
                .if_()
                .localGet(acc).i64Const(7).i64Add().localSet(acc)
                .else_()
                .localGet(acc).i64Const(1).i64Add().localSet(acc)
                .end()
                .end();
        });
    });
    f.localGet(acc).end();
    mb.exportFunc("run", f.index());
    return std::move(mb).build();
}

}  // namespace

const std::vector<Workload>&
polydhry()
{
    static const std::vector<Workload> suite = {
        {"polybench", "2mm", &mk2mm, 40, 1},
        {"polybench", "jacobi-2d", &mkJacobi2d, 80, 1},
        {"polybench", "atax", &mkAtax, 60, 1},
        {"dhrystone", "dhrystone", &mkDhrystone, 25, 1},
    };
    return suite;
}

const Workload&
findWorkload(const char* name)
{
    for (const auto* suite : {&sightglass(), &spec17(), &polydhry()}) {
        for (const Workload& w : *suite) {
            if (std::string(w.name) == name)
                return w;
        }
    }
    SFI_PANIC("unknown workload '%s'", name);
}

}  // namespace sfi::wkld
