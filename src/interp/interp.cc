#include "interp/interp.h"

#include <bit>
#include <cmath>
#include <cstring>

#include "base/logging.h"
#include "wasm/validator.h"

namespace sfi::interp {

using rt::TrapKind;
using wasm::Instr;
using wasm::Op;

namespace {

/** Maximum interpreter call depth before StackExhausted. */
constexpr int kMaxCallDepth = 1000;

double
asF64(uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

uint64_t
asBits(double v)
{
    return std::bit_cast<uint64_t>(v);
}

}  // namespace

Status
Instance::initCommon(Instance& inst, const wasm::Module& module,
                     const std::map<std::string, HostFn>& host_fns)
{
    if (auto st = wasm::validate(module); !st)
        return Status::error("validation: " + st.message());

    for (const wasm::Import& imp : module.imports) {
        auto it = host_fns.find(imp.name);
        if (it == host_fns.end())
            return Status::error("unresolved import: " + imp.name);
        inst.imports_.push_back(it->second);
    }

    // Precompute matching End/Else for every structured opcode.
    for (const wasm::Function& fn : module.functions) {
        ControlMap cm;
        cm.endOf.assign(fn.body.size(), SIZE_MAX);
        cm.elseOf.assign(fn.body.size(), SIZE_MAX);
        std::vector<size_t> stack;
        for (size_t pc = 0; pc < fn.body.size(); pc++) {
            Op op = fn.body[pc].op;
            if (op == Op::Block || op == Op::Loop || op == Op::If) {
                stack.push_back(pc);
            } else if (op == Op::Else) {
                SFI_CHECK(!stack.empty());
                cm.elseOf[stack.back()] = pc;
            } else if (op == Op::End) {
                if (stack.empty())
                    continue;  // function End
                cm.endOf[stack.back()] = pc;
                // An Else "belongs" to its If; record End there too.
                if (cm.elseOf[stack.back()] != SIZE_MAX)
                    cm.endOf[cm.elseOf[stack.back()]] = pc;
                stack.pop_back();
            }
        }
        inst.controlMaps_.push_back(std::move(cm));
    }
    return Status::ok();
}

Result<Instance>
Instance::instantiate(const wasm::Module& module,
                      std::map<std::string, HostFn> host_fns)
{
    Instance inst;
    inst.module_ = module;
    if (auto st = initCommon(inst, module, host_fns); !st)
        return Result<Instance>::error(st.message());

    // Memory: the interpreter always bounds-checks in software, so no
    // guard reservation is needed.
    rt::LinearMemory::Config cfg;
    cfg.minPages = module.memory.minPages;
    cfg.maxPages = module.memory.maxPages;
    cfg.guardBytes = 0;
    cfg.reserveFull = false;
    auto mem = rt::LinearMemory::create(cfg);
    if (!mem)
        return Result<Instance>::error(mem.message());
    inst.memory_ = std::move(*mem);

    for (const wasm::DataSegment& seg : module.data)
        std::memcpy(inst.memory_.base() + seg.offset, seg.bytes.data(),
                    seg.bytes.size());

    for (const wasm::Global& g : module.globals)
        inst.globals_.push_back(g.init);

    return inst;
}

Result<Instance>
Instance::instantiateAttached(const wasm::Module& module,
                              std::map<std::string, HostFn> host_fns,
                              rt::LinearMemory* memory,
                              std::vector<uint64_t>* globals)
{
    SFI_CHECK(memory != nullptr && globals != nullptr);
    Instance inst;
    inst.module_ = module;
    if (auto st = initCommon(inst, module, host_fns); !st)
        return Result<Instance>::error(st.message());

    // The runtime owns memory and globals and has already applied data
    // segments and global initializers; attach, don't re-initialize.
    inst.extMemory_ = memory;
    inst.extGlobals_ = globals;
    return inst;
}

Outcome
Instance::callExport(const std::string& name,
                     const std::vector<uint64_t>& args)
{
    auto it = module_.exports.find(name);
    SFI_CHECK_MSG(it != module_.exports.end(), "no export named '%s'",
                  name.c_str());
    return callFunction(it->second, args);
}

Outcome
Instance::callFunction(uint32_t func_idx, const std::vector<uint64_t>& args)
{
    fuelEnabled_ = fuel_ > 0;
    return invoke(func_idx, args.data(), args.size(), 0);
}

Outcome
Instance::invoke(uint32_t func_idx, const uint64_t* args, size_t nargs,
                 int depth)
{
    if (depth > kMaxCallDepth)
        return {TrapKind::StackExhausted, 0};

    if (func_idx < module_.numImports()) {
        HostOutcome ho = imports_[func_idx](const_cast<uint64_t*>(args),
                                            nargs);
        return {ho.trap, ho.value};
    }

    const wasm::Function& fn =
        module_.functions[func_idx - module_.numImports()];
    const ControlMap& cm = controlMaps_[func_idx - module_.numImports()];
    const wasm::FuncType& ft = module_.types[fn.typeIdx];
    SFI_CHECK_MSG(nargs == ft.params.size(),
                  "call arity mismatch on '%s'", fn.name.c_str());

    std::vector<uint64_t> locals(ft.params.size() + fn.locals.size(), 0);
    std::copy(args, args + nargs, locals.begin());

    struct Ctrl
    {
        Op op;       ///< Block / Loop / If / Else
        size_t pc;   ///< position of the opener
        size_t height;
    };
    std::vector<Ctrl> ctrl;
    std::vector<uint64_t> stack;

    auto push = [&](uint64_t v) { stack.push_back(v); };
    auto pop = [&]() {
        uint64_t v = stack.back();
        stack.pop_back();
        return v;
    };
    auto pushF = [&](double v) { stack.push_back(asBits(v)); };
    auto popF = [&]() { return asF64(pop()); };

    // Resolve the live memory/globals once per frame: either this
    // instance's own state or the runtime state it is attached to.
    rt::LinearMemory& lm = mem();
    std::vector<uint64_t>& gl = glb();

    auto memCheck = [&](uint64_t addr, uint64_t len, bool is_write,
                        TrapKind* out) {
        if (!lm.inBounds(addr, len)) {
            *out = TrapKind::OutOfBounds;
            return false;
        }
        if (accessHook_ &&
            !accessHook_(lm.base() + addr, is_write)) {
            *out = TrapKind::MpkViolation;
            return false;
        }
        return true;
    };

    size_t pc = 0;
    const size_t body_size = fn.body.size();
    while (pc < body_size) {
        if (fuelEnabled_) {
            if (fuel_ == 0)
                return {TrapKind::EpochInterrupt, 0};
            fuel_--;
        }
        const Instr& in = fn.body[pc];
        switch (in.op) {
          case Op::Unreachable:
            return {TrapKind::Unreachable, 0};
          case Op::Nop:
            break;

          case Op::Block:
          case Op::Loop:
            ctrl.push_back({in.op, pc, stack.size()});
            break;
          case Op::If: {
            uint64_t cond = pop();
            if (cond & 0xffffffffu) {
                ctrl.push_back({Op::If, pc, stack.size()});
            } else if (cm.elseOf[pc] != SIZE_MAX) {
                ctrl.push_back({Op::Else, cm.elseOf[pc], stack.size()});
                pc = cm.elseOf[pc];  // jump into the else arm
            } else {
                pc = cm.endOf[pc];  // skip the whole If
            }
            break;
          }
          case Op::Else: {
            // Falling into Else from the then-arm: skip to End.
            SFI_CHECK(!ctrl.empty());
            size_t if_pc = ctrl.back().pc;
            ctrl.pop_back();
            pc = cm.endOf[if_pc];
            break;
          }
          case Op::End:
            if (!ctrl.empty())
                ctrl.pop_back();
            break;

          case Op::Br:
          case Op::BrIf: {
            if (in.op == Op::BrIf) {
                uint64_t cond = pop();
                if (!(cond & 0xffffffffu))
                    break;
            }
            uint32_t d = in.a;
            if (d >= ctrl.size()) {
                // Branch to the function frame = return.
                uint64_t rv = module_.types[fn.typeIdx].results.empty()
                                  ? 0
                                  : pop();
                return {TrapKind::None, rv};
            }
            Ctrl target = ctrl[ctrl.size() - 1 - d];
            ctrl.resize(ctrl.size() - d);  // keep target for loops
            stack.resize(target.height);
            if (target.op == Op::Loop) {
                pc = target.pc;  // re-enter loop body (frame kept)
            } else {
                ctrl.pop_back();
                pc = cm.endOf[target.pc];
            }
            break;
          }
          case Op::BrTable: {
            uint32_t idx = static_cast<uint32_t>(pop());
            const auto& depths = fn.brTables[in.a];
            uint32_t d = idx < depths.size() - 1 ? depths[idx]
                                                 : depths.back();
            if (d >= ctrl.size()) {
                uint64_t rv = module_.types[fn.typeIdx].results.empty()
                                  ? 0
                                  : pop();
                return {TrapKind::None, rv};
            }
            Ctrl target = ctrl[ctrl.size() - 1 - d];
            ctrl.resize(ctrl.size() - d);
            stack.resize(target.height);
            if (target.op == Op::Loop) {
                pc = target.pc;
            } else {
                ctrl.pop_back();
                pc = cm.endOf[target.pc];
            }
            break;
          }
          case Op::Return: {
            uint64_t rv =
                module_.types[fn.typeIdx].results.empty() ? 0 : pop();
            return {TrapKind::None, rv};
          }

          case Op::Call: {
            const wasm::FuncType& callee = module_.typeOfFunc(in.a);
            size_t n = callee.params.size();
            std::vector<uint64_t> call_args(n);
            for (size_t i = n; i-- > 0;)
                call_args[i] = pop();
            Outcome out =
                invoke(in.a, call_args.data(), n, depth + 1);
            if (out.trap != TrapKind::None)
                return out;
            if (!callee.results.empty())
                push(out.value);
            break;
          }
          case Op::CallIndirect: {
            uint32_t ti = static_cast<uint32_t>(pop());
            if (ti >= module_.table.size())
                return {TrapKind::IndirectCallOutOfRange, 0};
            uint32_t target = module_.table[ti];
            const wasm::FuncType& want = module_.types[in.a];
            if (!(module_.typeOfFunc(target) == want))
                return {TrapKind::IndirectCallTypeMismatch, 0};
            size_t n = want.params.size();
            std::vector<uint64_t> call_args(n);
            for (size_t i = n; i-- > 0;)
                call_args[i] = pop();
            Outcome out = invoke(target, call_args.data(), n, depth + 1);
            if (out.trap != TrapKind::None)
                return out;
            if (!want.results.empty())
                push(out.value);
            break;
          }

          case Op::Drop:
            pop();
            break;
          case Op::Select: {
            uint64_t cond = pop();
            uint64_t b = pop();
            uint64_t a = pop();
            push((cond & 0xffffffffu) ? a : b);
            break;
          }

          case Op::LocalGet:
            push(locals[in.a]);
            break;
          case Op::LocalSet:
            locals[in.a] = pop();
            break;
          case Op::LocalTee:
            locals[in.a] = stack.back();
            break;
          case Op::GlobalGet:
            push(gl[in.a]);
            break;
          case Op::GlobalSet:
            gl[in.a] = pop();
            break;

#define SFIKIT_LOAD(T, push_expr)                                      \
    {                                                                  \
        uint64_t addr = (pop() & 0xffffffffu) + in.imm;                \
        TrapKind tk;                                                   \
        if (!memCheck(addr, sizeof(T), false, &tk))                    \
            return {tk, 0};                                            \
        T v;                                                           \
        std::memcpy(&v, lm.base() + addr, sizeof(T));                  \
        push_expr;                                                     \
    }                                                                  \
    break

          case Op::I32Load:
            SFIKIT_LOAD(uint32_t, push(v));
          case Op::I64Load:
            SFIKIT_LOAD(uint64_t, push(v));
          case Op::F64Load:
            SFIKIT_LOAD(uint64_t, push(v));
          case Op::I32Load8S:
            SFIKIT_LOAD(int8_t, push(uint32_t(int32_t(v))));
          case Op::I32Load8U:
            SFIKIT_LOAD(uint8_t, push(v));
          case Op::I32Load16S:
            SFIKIT_LOAD(int16_t, push(uint32_t(int32_t(v))));
          case Op::I32Load16U:
            SFIKIT_LOAD(uint16_t, push(v));
          case Op::I64Load32S:
            SFIKIT_LOAD(int32_t, push(uint64_t(int64_t(v))));
          case Op::I64Load32U:
            SFIKIT_LOAD(uint32_t, push(v));
#undef SFIKIT_LOAD

#define SFIKIT_STORE(T)                                                \
    {                                                                  \
        T v = static_cast<T>(pop());                                   \
        uint64_t addr = (pop() & 0xffffffffu) + in.imm;                \
        TrapKind tk;                                                   \
        if (!memCheck(addr, sizeof(T), true, &tk))                     \
            return {tk, 0};                                            \
        std::memcpy(lm.base() + addr, &v, sizeof(T));                  \
    }                                                                  \
    break

          case Op::I32Store:
            SFIKIT_STORE(uint32_t);
          case Op::I64Store:
            SFIKIT_STORE(uint64_t);
          case Op::F64Store:
            SFIKIT_STORE(uint64_t);
          case Op::I32Store8:
            SFIKIT_STORE(uint8_t);
          case Op::I32Store16:
            SFIKIT_STORE(uint16_t);
#undef SFIKIT_STORE

          case Op::MemorySize:
            push(lm.pages());
            break;
          case Op::MemoryGrow: {
            uint32_t delta = static_cast<uint32_t>(pop());
            push(static_cast<uint32_t>(lm.grow(delta)));
            break;
          }
          case Op::MemoryFill: {
            uint32_t n = static_cast<uint32_t>(pop());
            uint32_t val = static_cast<uint32_t>(pop());
            uint32_t dst = static_cast<uint32_t>(pop());
            TrapKind tk;
            if (n > 0 && !memCheck(dst, n, true, &tk))
                return {tk, 0};
            std::memset(lm.base() + dst, int(val & 0xff), n);
            break;
          }
          case Op::MemoryCopy: {
            uint32_t n = static_cast<uint32_t>(pop());
            uint32_t src = static_cast<uint32_t>(pop());
            uint32_t dst = static_cast<uint32_t>(pop());
            TrapKind tk;
            if (n > 0 && (!memCheck(src, n, false, &tk) ||
                          !memCheck(dst, n, true, &tk)))
                return {tk, 0};
            std::memmove(lm.base() + dst, lm.base() + src, n);
            break;
          }

          case Op::I32Const:
          case Op::I64Const:
          case Op::F64Const:
            push(in.imm);
            break;

          // --- i32 ---
#define SFIKIT_I32_CMP(expr)                                           \
    {                                                                  \
        uint32_t b = static_cast<uint32_t>(pop());                     \
        uint32_t a = static_cast<uint32_t>(pop());                     \
        (void)a;                                                       \
        (void)b;                                                       \
        push((expr) ? 1 : 0);                                          \
    }                                                                  \
    break
#define SFIKIT_I32_BIN(expr)                                           \
    {                                                                  \
        uint32_t b = static_cast<uint32_t>(pop());                     \
        uint32_t a = static_cast<uint32_t>(pop());                     \
        (void)a;                                                       \
        (void)b;                                                       \
        push(static_cast<uint32_t>(expr));                             \
    }                                                                  \
    break

          case Op::I32Eqz:
            push((static_cast<uint32_t>(pop()) == 0) ? 1 : 0);
            break;
          case Op::I32Eq: SFIKIT_I32_CMP(a == b);
          case Op::I32Ne: SFIKIT_I32_CMP(a != b);
          case Op::I32LtS: SFIKIT_I32_CMP(int32_t(a) < int32_t(b));
          case Op::I32LtU: SFIKIT_I32_CMP(a < b);
          case Op::I32GtS: SFIKIT_I32_CMP(int32_t(a) > int32_t(b));
          case Op::I32GtU: SFIKIT_I32_CMP(a > b);
          case Op::I32LeS: SFIKIT_I32_CMP(int32_t(a) <= int32_t(b));
          case Op::I32LeU: SFIKIT_I32_CMP(a <= b);
          case Op::I32GeS: SFIKIT_I32_CMP(int32_t(a) >= int32_t(b));
          case Op::I32GeU: SFIKIT_I32_CMP(a >= b);
          case Op::I32Add: SFIKIT_I32_BIN(a + b);
          case Op::I32Sub: SFIKIT_I32_BIN(a - b);
          case Op::I32Mul: SFIKIT_I32_BIN(a * b);
          case Op::I32And: SFIKIT_I32_BIN(a & b);
          case Op::I32Or: SFIKIT_I32_BIN(a | b);
          case Op::I32Xor: SFIKIT_I32_BIN(a ^ b);
          case Op::I32Shl: SFIKIT_I32_BIN(a << (b & 31));
          case Op::I32ShrU: SFIKIT_I32_BIN(a >> (b & 31));
          case Op::I32ShrS: SFIKIT_I32_BIN(int32_t(a) >> (b & 31));
          case Op::I32Rotl: SFIKIT_I32_BIN(std::rotl(a, int(b & 31)));
          case Op::I32Rotr: SFIKIT_I32_BIN(std::rotr(a, int(b & 31)));
          case Op::I32DivS: {
            uint32_t b = static_cast<uint32_t>(pop());
            uint32_t a = static_cast<uint32_t>(pop());
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            if (a == 0x80000000u && b == 0xffffffffu)
                return {TrapKind::IntegerOverflow, 0};
            push(uint32_t(int32_t(a) / int32_t(b)));
            break;
          }
          case Op::I32DivU: {
            uint32_t b = static_cast<uint32_t>(pop());
            uint32_t a = static_cast<uint32_t>(pop());
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            push(a / b);
            break;
          }
          case Op::I32RemS: {
            uint32_t b = static_cast<uint32_t>(pop());
            uint32_t a = static_cast<uint32_t>(pop());
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            if (b == 0xffffffffu) {
                push(0);  // INT_MIN % -1 == 0 per Wasm
            } else {
                push(uint32_t(int32_t(a) % int32_t(b)));
            }
            break;
          }
          case Op::I32RemU: {
            uint32_t b = static_cast<uint32_t>(pop());
            uint32_t a = static_cast<uint32_t>(pop());
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            push(a % b);
            break;
          }
          case Op::I32Popcnt:
            push(uint32_t(
                std::popcount(static_cast<uint32_t>(pop()))));
            break;
#undef SFIKIT_I32_CMP
#undef SFIKIT_I32_BIN

          // --- i64 ---
#define SFIKIT_I64_CMP(expr)                                           \
    {                                                                  \
        uint64_t b = pop();                                            \
        uint64_t a = pop();                                            \
        (void)a;                                                       \
        (void)b;                                                       \
        push((expr) ? 1 : 0);                                          \
    }                                                                  \
    break
#define SFIKIT_I64_BIN(expr)                                           \
    {                                                                  \
        uint64_t b = pop();                                            \
        uint64_t a = pop();                                            \
        (void)a;                                                       \
        (void)b;                                                       \
        push(static_cast<uint64_t>(expr));                             \
    }                                                                  \
    break

          case Op::I64Eqz:
            push((pop() == 0) ? 1 : 0);
            break;
          case Op::I64Eq: SFIKIT_I64_CMP(a == b);
          case Op::I64Ne: SFIKIT_I64_CMP(a != b);
          case Op::I64LtS: SFIKIT_I64_CMP(int64_t(a) < int64_t(b));
          case Op::I64LtU: SFIKIT_I64_CMP(a < b);
          case Op::I64GtS: SFIKIT_I64_CMP(int64_t(a) > int64_t(b));
          case Op::I64GtU: SFIKIT_I64_CMP(a > b);
          case Op::I64LeS: SFIKIT_I64_CMP(int64_t(a) <= int64_t(b));
          case Op::I64LeU: SFIKIT_I64_CMP(a <= b);
          case Op::I64GeS: SFIKIT_I64_CMP(int64_t(a) >= int64_t(b));
          case Op::I64GeU: SFIKIT_I64_CMP(a >= b);
          case Op::I64Add: SFIKIT_I64_BIN(a + b);
          case Op::I64Sub: SFIKIT_I64_BIN(a - b);
          case Op::I64Mul: SFIKIT_I64_BIN(a * b);
          case Op::I64And: SFIKIT_I64_BIN(a & b);
          case Op::I64Or: SFIKIT_I64_BIN(a | b);
          case Op::I64Xor: SFIKIT_I64_BIN(a ^ b);
          case Op::I64Shl: SFIKIT_I64_BIN(a << (b & 63));
          case Op::I64ShrU: SFIKIT_I64_BIN(a >> (b & 63));
          case Op::I64ShrS: SFIKIT_I64_BIN(int64_t(a) >> (b & 63));
          case Op::I64Rotl: SFIKIT_I64_BIN(std::rotl(a, int(b & 63)));
          case Op::I64Rotr: SFIKIT_I64_BIN(std::rotr(a, int(b & 63)));
          case Op::I64DivS: {
            uint64_t b = pop();
            uint64_t a = pop();
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            if (a == 0x8000000000000000ull && b == UINT64_MAX)
                return {TrapKind::IntegerOverflow, 0};
            push(uint64_t(int64_t(a) / int64_t(b)));
            break;
          }
          case Op::I64DivU: {
            uint64_t b = pop();
            uint64_t a = pop();
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            push(a / b);
            break;
          }
          case Op::I64RemS: {
            uint64_t b = pop();
            uint64_t a = pop();
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            if (b == UINT64_MAX) {
                push(0);
            } else {
                push(uint64_t(int64_t(a) % int64_t(b)));
            }
            break;
          }
          case Op::I64RemU: {
            uint64_t b = pop();
            uint64_t a = pop();
            if (b == 0)
                return {TrapKind::DivByZero, 0};
            push(a % b);
            break;
          }
          case Op::I64Popcnt:
            push(uint64_t(std::popcount(pop())));
            break;
#undef SFIKIT_I64_CMP
#undef SFIKIT_I64_BIN

          case Op::I32WrapI64:
            push(pop() & 0xffffffffu);
            break;
          case Op::I64ExtendI32S:
            push(uint64_t(int64_t(int32_t(uint32_t(pop())))));
            break;
          case Op::I64ExtendI32U:
            push(pop() & 0xffffffffu);
            break;

          // --- f64 ---
#define SFIKIT_F64_CMP(expr)                                           \
    {                                                                  \
        double b = popF();                                             \
        double a = popF();                                             \
        (void)a;                                                       \
        (void)b;                                                       \
        push((expr) ? 1 : 0);                                          \
    }                                                                  \
    break
#define SFIKIT_F64_BIN(expr)                                           \
    {                                                                  \
        double b = popF();                                             \
        double a = popF();                                             \
        (void)a;                                                       \
        (void)b;                                                       \
        pushF(expr);                                                   \
    }                                                                  \
    break

          case Op::F64Eq: SFIKIT_F64_CMP(a == b);
          case Op::F64Ne: SFIKIT_F64_CMP(a != b);
          case Op::F64Lt: SFIKIT_F64_CMP(a < b);
          case Op::F64Gt: SFIKIT_F64_CMP(a > b);
          case Op::F64Le: SFIKIT_F64_CMP(a <= b);
          case Op::F64Ge: SFIKIT_F64_CMP(a >= b);
          case Op::F64Add: SFIKIT_F64_BIN(a + b);
          case Op::F64Sub: SFIKIT_F64_BIN(a - b);
          case Op::F64Mul: SFIKIT_F64_BIN(a * b);
          case Op::F64Div: SFIKIT_F64_BIN(a / b);
          // min/max mirror x86 minsd/maxsd semantics (returns second
          // operand on NaN/equal-zero cases) so interp == JIT.
          case Op::F64Min: SFIKIT_F64_BIN(a < b ? a : b);
          case Op::F64Max: SFIKIT_F64_BIN(a > b ? a : b);
          case Op::F64Sqrt:
            pushF(std::sqrt(popF()));
            break;
          case Op::F64Neg:
            push(pop() ^ 0x8000000000000000ull);
            break;
          case Op::F64Abs:
            push(pop() & 0x7fffffffffffffffull);
            break;
#undef SFIKIT_F64_CMP
#undef SFIKIT_F64_BIN

          case Op::F64ConvertI32S:
            pushF(double(int32_t(uint32_t(pop()))));
            break;
          case Op::F64ConvertI32U:
            pushF(double(uint32_t(pop())));
            break;
          case Op::F64ConvertI64S:
            pushF(double(int64_t(pop())));
            break;
          case Op::I32TruncF64S: {
            double f = popF();
            // Subset rule (matches the JIT's cvttsd2si sentinel check):
            // the result must lie strictly inside (INT32_MIN, INT32_MAX].
            if (!(f > -2147483648.0 && f < 2147483648.0))
                return {TrapKind::IntegerOverflow, 0};
            push(uint32_t(int32_t(f)));
            break;
          }
          case Op::I64TruncF64S: {
            double f = popF();
            if (!(f > -9223372036854775808.0 &&
                  f < 9223372036854775808.0))
                return {TrapKind::IntegerOverflow, 0};
            push(uint64_t(int64_t(f)));
            break;
          }
          case Op::F64ReinterpretI64:
          case Op::I64ReinterpretF64:
            break;  // bits already on the stack
        }
        pc++;
    }

    // Implicit end of function.
    uint64_t rv = module_.types[fn.typeIdx].results.empty()
                      ? 0
                      : (stack.empty() ? 0 : stack.back());
    return {TrapKind::None, rv};
}

}  // namespace sfi::interp
