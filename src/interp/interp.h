/**
 * @file
 * Reference interpreter for the sfikit Wasm subset.
 *
 * The interpreter is the semantic oracle: the JIT is differentially
 * tested against it on random programs (tests/jit/differential_test.cc).
 * It bounds-checks every access in software, can enforce emulated-MPK
 * colors (ColorGuard semantics without hardware), and supports fuel
 * limits to model epoch interruption deterministically.
 */
#ifndef SFIKIT_INTERP_INTERP_H_
#define SFIKIT_INTERP_INTERP_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/result.h"
#include "runtime/memory.h"
#include "runtime/trap.h"
#include "wasm/module.h"

namespace sfi::interp {

/** Result of a host function: a trap or a (possibly unused) value. */
struct HostOutcome
{
    rt::TrapKind trap = rt::TrapKind::None;
    uint64_t value = 0;
};

/** Host function: receives raw 64-bit argument slots. */
using HostFn = std::function<HostOutcome(uint64_t* args, size_t n)>;

/** Result of invoking a Wasm function. */
struct Outcome
{
    rt::TrapKind trap = rt::TrapKind::None;
    uint64_t value = 0;  ///< result bits (f64 via bit pattern); 0 if none

    bool ok() const { return trap == rt::TrapKind::None; }
};

/** An instantiated module executing under the interpreter. */
class Instance
{
  public:
    /**
     * Validates and instantiates @p module. Host imports are resolved by
     * name from @p host_fns.
     */
    static Result<Instance>
    instantiate(const wasm::Module& module,
                std::map<std::string, HostFn> host_fns = {});

    /**
     * Instantiates against runtime-owned state instead of creating a
     * private copy: linear-memory accesses go through @p memory and
     * globals through @p globals (both must outlive the Instance, and
     * are assumed already initialized — data segments and global
     * initializers are NOT re-applied). This is the tiered
     * interpreter-fallback mode: a JIT instance lends its memory and
     * globals so interpreted functions observe and produce exactly the
     * state compiled functions do.
     */
    static Result<Instance>
    instantiateAttached(const wasm::Module& module,
                        std::map<std::string, HostFn> host_fns,
                        rt::LinearMemory* memory,
                        std::vector<uint64_t>* globals);

    /** Calls an exported function. */
    Outcome callExport(const std::string& name,
                       const std::vector<uint64_t>& args = {});

    /** Calls any function by index. */
    Outcome callFunction(uint32_t func_idx,
                         const std::vector<uint64_t>& args = {});

    rt::LinearMemory& memory() { return mem(); }
    const rt::LinearMemory& memory() const
    {
        return extMemory_ ? *extMemory_ : memory_;
    }

    uint64_t global(uint32_t i) const
    {
        return extGlobals_ ? extGlobals_->at(i) : globals_.at(i);
    }
    void setGlobal(uint32_t i, uint64_t v) { glb().at(i) = v; }

    /**
     * Limits execution to roughly @p instructions interpreter steps;
     * exceeding it traps with EpochInterrupt. 0 disables (default).
     */
    void setFuel(uint64_t instructions) { fuel_ = instructions; }
    uint64_t fuelRemaining() const { return fuel_; }

    /**
     * Installs an access-legality hook consulted on every linear-memory
     * access — this is how emulated-MPK ColorGuard semantics are checked
     * without MPK hardware. Returning false traps with MpkViolation.
     */
    void
    setAccessHook(std::function<bool(const void*, bool)> hook)
    {
        accessHook_ = std::move(hook);
    }

    const wasm::Module& module() const { return module_; }

  private:
    friend class Frame;

    /** Matching-construct indices precomputed per function. */
    struct ControlMap
    {
        /** For each Block/Loop/If pc: index of its matching End. */
        std::vector<size_t> endOf;
        /** For each If pc: index of its Else, or SIZE_MAX. */
        std::vector<size_t> elseOf;
    };

    Outcome invoke(uint32_t func_idx, const uint64_t* args, size_t nargs,
                   int depth);

    /** Validation, import resolution, control maps (both modes). */
    static Status initCommon(Instance& inst, const wasm::Module& module,
                             const std::map<std::string, HostFn>& host_fns);

    /** Live memory: the attached one when present, else the owned one. */
    rt::LinearMemory& mem() { return extMemory_ ? *extMemory_ : memory_; }
    std::vector<uint64_t>&
    glb()
    {
        return extGlobals_ ? *extGlobals_ : globals_;
    }

    wasm::Module module_;
    rt::LinearMemory memory_;
    std::vector<uint64_t> globals_;
    rt::LinearMemory* extMemory_ = nullptr;
    std::vector<uint64_t>* extGlobals_ = nullptr;
    std::vector<HostFn> imports_;
    std::vector<ControlMap> controlMaps_;
    uint64_t fuel_ = 0;
    bool fuelEnabled_ = false;
    std::function<bool(const void*, bool)> accessHook_;
};

}  // namespace sfi::interp

#endif  // SFIKIT_INTERP_INTERP_H_
