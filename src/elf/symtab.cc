#include "elf/symtab.h"

#include <cstdio>
#include <cstring>

namespace sfi::elf {

namespace {

// Just the ELF64 structures we need (avoiding <elf.h> keeps the parser
// honest about what it reads).
struct Ehdr
{
    uint8_t ident[16];
    uint16_t type, machine;
    uint32_t version;
    uint64_t entry, phoff, shoff;
    uint32_t flags;
    uint16_t ehsize, phentsize, phnum, shentsize, shnum, shstrndx;
};

struct Shdr
{
    uint32_t name, type;
    uint64_t flags, addr, offset, size;
    uint32_t link, info;
    uint64_t addralign, entsize;
};

struct Sym
{
    uint32_t name;
    uint8_t info, other;
    uint16_t shndx;
    uint64_t value, size;
};

constexpr uint32_t kShtSymtab = 2;
constexpr uint8_t kSttFunc = 2;

}  // namespace

Result<std::vector<FuncSymbol>>
readFunctionSymbols(const std::string& path)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return Result<std::vector<FuncSymbol>>::error("cannot open " +
                                                      path);
    }
    auto fail = [&](const char* why) {
        std::fclose(f);
        return Result<std::vector<FuncSymbol>>::error(why);
    };

    Ehdr eh;
    if (std::fread(&eh, sizeof eh, 1, f) != 1)
        return fail("short read on ELF header");
    if (std::memcmp(eh.ident, "\x7f"
                              "ELF",
                    4) != 0 ||
        eh.ident[4] != 2 /* ELFCLASS64 */) {
        return fail("not an ELF64 file");
    }

    std::vector<Shdr> sections(eh.shnum);
    if (std::fseek(f, long(eh.shoff), SEEK_SET) != 0 ||
        std::fread(sections.data(), sizeof(Shdr), eh.shnum, f) !=
            eh.shnum) {
        return fail("cannot read section headers");
    }

    std::vector<FuncSymbol> out;
    for (const Shdr& sh : sections) {
        if (sh.type != kShtSymtab)
            continue;
        // Associated string table via sh.link.
        if (sh.link >= sections.size())
            return fail("bad symtab link");
        const Shdr& strs = sections[sh.link];
        std::vector<char> strtab(strs.size);
        if (std::fseek(f, long(strs.offset), SEEK_SET) != 0 ||
            std::fread(strtab.data(), 1, strs.size, f) != strs.size) {
            return fail("cannot read strtab");
        }
        size_t count = sh.size / sizeof(Sym);
        std::vector<Sym> syms(count);
        if (std::fseek(f, long(sh.offset), SEEK_SET) != 0 ||
            std::fread(syms.data(), sizeof(Sym), count, f) != count) {
            return fail("cannot read symtab");
        }
        for (const Sym& s : syms) {
            if ((s.info & 0xf) != kSttFunc || s.size == 0)
                continue;
            if (s.name >= strtab.size())
                continue;
            out.push_back(FuncSymbol{
                std::string(&strtab[s.name]), s.value, s.size});
        }
    }
    std::fclose(f);
    if (out.empty())
        return fail("no function symbols (stripped binary?)");
    return out;
}

uint64_t
totalSizeMatching(const std::vector<FuncSymbol>& symbols,
                  const std::vector<std::string>& needles)
{
    uint64_t total = 0;
    for (const FuncSymbol& s : symbols) {
        bool all = true;
        for (const std::string& n : needles) {
            if (s.name.find(n) == std::string::npos) {
                all = false;
                break;
            }
        }
        if (all)
            total += s.size;
    }
    return total;
}

}  // namespace sfi::elf
