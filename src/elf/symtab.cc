#include "elf/symtab.h"

#include "elf/object.h"

namespace sfi::elf {

Result<std::vector<FuncSymbol>>
readFunctionSymbols(const std::string& path)
{
    using R = Result<std::vector<FuncSymbol>>;
    auto obj = ElfObject::load(path);
    if (!obj.isOk())
        return R::error(obj.message());
    std::vector<FuncSymbol> out;
    for (const Symbol& s : obj->symbols()) {
        if (!s.isFunc() || s.size == 0 || s.name.empty())
            continue;
        out.push_back(FuncSymbol{s.name, s.value, s.size});
    }
    if (out.empty())
        return R::error("no function symbols (stripped binary?)");
    return out;
}

uint64_t
totalSizeMatching(const std::vector<FuncSymbol>& symbols,
                  const std::vector<std::string>& needles)
{
    uint64_t total = 0;
    for (const FuncSymbol& s : symbols) {
        bool all = true;
        for (const std::string& n : needles) {
            if (s.name.find(n) == std::string::npos) {
                all = false;
                break;
            }
        }
        if (all)
            total += s.size;
    }
    return total;
}

}  // namespace sfi::elf
