/**
 * @file
 * Function-symbol convenience view over the ELF64 reader (object.h).
 *
 * Table 2 reports per-benchmark binary sizes with and without Segue.
 * For the wasm2c-style path, each kernel×policy instantiation is a
 * distinct function symbol in this very binary; reading our own symbol
 * table gives exact per-policy machine-code sizes without external
 * tooling. The full section/relocation reader behind this lives in
 * object.h and also feeds the w2c object verifier.
 */
#ifndef SFIKIT_ELF_SYMTAB_H_
#define SFIKIT_ELF_SYMTAB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace sfi::elf {

/** One function symbol. */
struct FuncSymbol
{
    std::string name;  ///< mangled
    uint64_t addr = 0;
    uint64_t size = 0;
};

/** Reads all STT_FUNC symbols from @p path (e.g. "/proc/self/exe"). */
Result<std::vector<FuncSymbol>> readFunctionSymbols(
    const std::string& path);

/**
 * Sum of sizes of function symbols whose mangled names contain every
 * string in @p needles. Returns 0 when nothing matches.
 */
uint64_t totalSizeMatching(const std::vector<FuncSymbol>& symbols,
                           const std::vector<std::string>& needles);

}  // namespace sfi::elf

#endif  // SFIKIT_ELF_SYMTAB_H_
