#include "elf/object.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace sfi::elf {

namespace {

// Local ELF64 layouts (see object.h for why these are not <elf.h>).
struct Ehdr
{
    uint8_t ident[16];
    uint16_t type, machine;
    uint32_t version;
    uint64_t entry, phoff, shoff;
    uint32_t flags;
    uint16_t ehsize, phentsize, phnum, shentsize, shnum, shstrndx;
};

struct Shdr
{
    uint32_t name, type;
    uint64_t flags, addr, offset, size;
    uint32_t link, info;
    uint64_t addralign, entsize;
};

struct Sym
{
    uint32_t name;
    uint8_t info, other;
    uint16_t shndx;
    uint64_t value, size;
};

struct Rela
{
    uint64_t offset;
    uint64_t info;  // sym << 32 | type
    int64_t addend;
};

constexpr uint32_t kShtSymtab = 2;
constexpr uint32_t kShtStrtab = 3;
constexpr uint32_t kShtNobits = 8;
constexpr uint32_t kShtRela = 4;
constexpr uint64_t kShfAlloc = 0x2;

std::string
strAt(const std::vector<uint8_t>& tab, uint32_t off)
{
    if (off >= tab.size())
        return {};
    const char* s = reinterpret_cast<const char*>(tab.data() + off);
    size_t max = tab.size() - off;
    return std::string(s, strnlen(s, max));
}

}  // namespace

Result<ElfObject>
ElfObject::load(const std::string& path)
{
    using R = Result<ElfObject>;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return R::error("cannot open " + path);
    auto fail = [&](const std::string& why) {
        std::fclose(f);
        return R::error(path + ": " + why);
    };

    Ehdr eh;
    if (std::fread(&eh, sizeof eh, 1, f) != 1)
        return fail("short read on ELF header");
    if (std::memcmp(eh.ident,
                    "\x7f"
                    "ELF",
                    4) != 0 ||
        eh.ident[4] != 2 /* ELFCLASS64 */ ||
        eh.ident[5] != 1 /* little-endian */) {
        return fail("not a little-endian ELF64 file");
    }
    if (eh.shentsize != sizeof(Shdr))
        return fail("unexpected section-header entry size");
    if (eh.shnum == 0)
        return fail("no section headers");

    std::vector<Shdr> shdrs(eh.shnum);
    if (std::fseek(f, long(eh.shoff), SEEK_SET) != 0 ||
        std::fread(shdrs.data(), sizeof(Shdr), eh.shnum, f) != eh.shnum)
        return fail("cannot read section headers");
    if (eh.shstrndx >= eh.shnum)
        return fail("bad shstrndx");

    ElfObject obj;
    obj.type_ = eh.type;
    obj.sections_.resize(eh.shnum);
    obj.relocs_.resize(eh.shnum);

    // Pass 1: load raw bytes for every section that has any.
    for (uint16_t i = 0; i < eh.shnum; i++) {
        const Shdr& sh = shdrs[i];
        Section& s = obj.sections_[i];
        s.type = sh.type;
        s.flags = sh.flags;
        s.addr = sh.addr;
        s.size = sh.size;
        s.link = sh.link;
        s.info = sh.info;
        s.entsize = sh.entsize;
        if (sh.type == kShtNobits || sh.size == 0)
            continue;
        // Only materialize bytes the reader interprets: allocated
        // sections (code/data), symbol/string tables, and relocations.
        // This keeps .debug_* of a RelWithDebInfo executable on disk.
        if (!(sh.flags & kShfAlloc) && sh.type != kShtSymtab &&
            sh.type != kShtStrtab && sh.type != kShtRela)
            continue;
        s.data.resize(sh.size);
        if (std::fseek(f, long(sh.offset), SEEK_SET) != 0 ||
            std::fread(s.data.data(), 1, sh.size, f) != sh.size)
            return fail("cannot read section " + std::to_string(i));
    }
    std::fclose(f);
    f = nullptr;

    // Section names.
    const std::vector<uint8_t>& shstr = obj.sections_[eh.shstrndx].data;
    for (uint16_t i = 0; i < eh.shnum; i++)
        obj.sections_[i].name = strAt(shstr, shdrs[i].name);

    // Pass 2: symbol tables (first SHT_SYMTAB wins; objects have one).
    for (uint16_t i = 0; i < eh.shnum; i++) {
        const Section& s = obj.sections_[i];
        if (s.type != kShtSymtab)
            continue;
        if (s.link >= obj.sections_.size())
            return R::error(path + ": bad symtab strtab link");
        const std::vector<uint8_t>& strtab =
            obj.sections_[s.link].data;
        size_t count = s.data.size() / sizeof(Sym);
        obj.symbols_.reserve(count);
        for (size_t k = 0; k < count; k++) {
            Sym raw;
            std::memcpy(&raw, s.data.data() + k * sizeof(Sym),
                        sizeof raw);
            Symbol sym;
            sym.name = strAt(strtab, raw.name);
            sym.value = raw.value;
            sym.size = raw.size;
            sym.type = raw.info & 0xf;
            sym.bind = raw.info >> 4;
            sym.shndx = raw.shndx;
            // Section symbols have no name of their own; surface the
            // section name so relocations resolve to something useful.
            if (sym.name.empty() && sym.type == 3 /* STT_SECTION */ &&
                raw.shndx < obj.sections_.size())
                sym.name = obj.sections_[raw.shndx].name;
            obj.symbols_.push_back(std::move(sym));
        }
        break;
    }

    // Pass 3: RELA sections, grouped by the section they patch.
    for (uint16_t i = 0; i < eh.shnum; i++) {
        const Section& s = obj.sections_[i];
        if (s.type != kShtRela)
            continue;
        if (s.info >= obj.sections_.size())
            return R::error(path + ": bad rela target link");
        size_t count = s.data.size() / sizeof(Rela);
        std::vector<Reloc>& out = obj.relocs_[s.info];
        out.reserve(out.size() + count);
        for (size_t k = 0; k < count; k++) {
            Rela raw;
            std::memcpy(&raw, s.data.data() + k * sizeof(Rela),
                        sizeof raw);
            Reloc r;
            r.offset = raw.offset;
            r.type = static_cast<uint32_t>(raw.info & 0xffffffffu);
            r.addend = raw.addend;
            r.symIndex = static_cast<uint32_t>(raw.info >> 32);
            if (r.symIndex < obj.symbols_.size())
                r.symName = obj.symbols_[r.symIndex].name;
            out.push_back(std::move(r));
        }
    }
    for (auto& v : obj.relocs_) {
        std::sort(v.begin(), v.end(),
                  [](const Reloc& a, const Reloc& b) {
                      return a.offset < b.offset;
                  });
    }
    return obj;
}

std::vector<FuncSlice>
ElfObject::functions() const
{
    std::vector<FuncSlice> out;
    for (const Symbol& sym : symbols_) {
        if (!sym.isFunc() || !sym.defined() || sym.size == 0)
            continue;
        if (sym.shndx >= sections_.size())
            continue;
        uint16_t shndx = sym.shndx;
        uint64_t off = sym.value;
        if (!relocatable()) {
            // Executables address symbols by vaddr: find the executable
            // section containing the symbol's range.
            bool found = false;
            for (uint16_t i = 0; i < sections_.size(); i++) {
                const Section& s = sections_[i];
                if (!s.executable() || s.data.empty())
                    continue;
                if (sym.value >= s.addr &&
                    sym.value + sym.size <= s.addr + s.size) {
                    shndx = i;
                    off = sym.value - s.addr;
                    found = true;
                    break;
                }
            }
            if (!found)
                continue;
        }
        const Section& sec = sections_[shndx];
        if (!sec.executable())
            continue;
        if (off + sym.size > sec.data.size())
            continue;  // truncated/corrupt: skip rather than misread
        out.push_back(FuncSlice{sym.name, shndx, off, sym.size,
                                sec.data.data() + off});
    }
    std::sort(out.begin(), out.end(),
              [](const FuncSlice& a, const FuncSlice& b) {
                  return a.name < b.name;
              });
    return out;
}

const Reloc*
ElfObject::relocAt(uint16_t section_index, uint64_t offset) const
{
    if (section_index >= relocs_.size())
        return nullptr;
    const std::vector<Reloc>& v = relocs_[section_index];
    auto it = std::lower_bound(
        v.begin(), v.end(), offset,
        [](const Reloc& r, uint64_t off) { return r.offset < off; });
    if (it == v.end() || it->offset != offset)
        return nullptr;
    return &*it;
}

const std::vector<Reloc>&
ElfObject::relocsFor(uint16_t section_index) const
{
    static const std::vector<Reloc> kEmpty;
    if (section_index >= relocs_.size())
        return kEmpty;
    return relocs_[section_index];
}

}  // namespace sfi::elf
