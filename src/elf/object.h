/**
 * @file
 * ELF64 object reader: sections, symbols, relocations, and per-function
 * byte slices.
 *
 * The static w2c verifier (verify/objcheck.h) audits the build's *own*
 * object files: it slices every policy-templated kernel out of
 * `sfikit_w2c`'s `.o` files and proves the per-policy SFI contract on
 * the compiler's output. That needs more than the symtab reader that
 * backs Table 2 (symtab.h): section bytes to disassemble, and the
 * `.rela.text.*` entries that name every call / tail-call target in a
 * relocatable object (the zeroed rel32 fields are meaningless before
 * linking).
 *
 * Like symtab.cc, the structures are declared locally instead of
 * pulling in <elf.h>: the parser stays honest about exactly what it
 * reads, and fails closed on anything malformed (truncated headers,
 * out-of-range links, overlapping ranges).
 */
#ifndef SFIKIT_ELF_OBJECT_H_
#define SFIKIT_ELF_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace sfi::elf {

/** One parsed section header plus its (loaded) contents. */
struct Section
{
    std::string name;
    uint32_t type = 0;
    uint64_t flags = 0;
    uint64_t addr = 0;
    uint64_t size = 0;
    uint32_t link = 0;
    uint32_t info = 0;
    uint64_t entsize = 0;
    /** Raw bytes; empty for SHT_NOBITS and non-loaded section kinds. */
    std::vector<uint8_t> data;

    bool executable() const { return (flags & 0x4) != 0; }  // SHF_EXECINSTR
};

/** One symbol-table entry (names resolved through the strtab). */
struct Symbol
{
    std::string name;
    uint64_t value = 0;  ///< section offset (ET_REL) or vaddr
    uint64_t size = 0;
    uint8_t type = 0;    ///< STT_*
    uint8_t bind = 0;    ///< STB_*
    uint16_t shndx = 0;  ///< defining section; SHN_UNDEF == 0

    bool isFunc() const { return type == 2; }  // STT_FUNC
    bool defined() const { return shndx != 0 && shndx < 0xff00; }
};

/** One RELA entry, with the target symbol name pre-resolved. */
struct Reloc
{
    uint64_t offset = 0;  ///< within the relocated section
    uint32_t type = 0;    ///< R_X86_64_*
    int64_t addend = 0;
    uint32_t symIndex = 0;
    std::string symName;  ///< symbol (or section) name, may be empty
};

// The relocation types the verifier interprets (call / tail-call /
// rip-relative data targets in small-model code).
constexpr uint32_t kRX86_64Pc32 = 2;
constexpr uint32_t kRX86_64Plt32 = 4;

/**
 * A function carved out of an executable section: name plus the byte
 * range holding its code.
 */
struct FuncSlice
{
    std::string name;
    uint16_t sectionIndex = 0;
    uint64_t sectionOffset = 0;  ///< start within the section
    uint64_t size = 0;
    const uint8_t* bytes = nullptr;  ///< into ElfObject section data
};

/**
 * A loaded ELF64 object (ET_REL) or executable (ET_EXEC/ET_DYN).
 * Owns all section bytes; FuncSlice pointers stay valid as long as the
 * object lives.
 */
class ElfObject
{
  public:
    static Result<ElfObject> load(const std::string& path);

    uint16_t type() const { return type_; }
    bool relocatable() const { return type_ == 1; }  // ET_REL

    const std::vector<Section>& sections() const { return sections_; }
    const std::vector<Symbol>& symbols() const { return symbols_; }

    /**
     * All defined STT_FUNC symbols with non-zero size that live in an
     * executable section, as byte slices ready to decode.
     */
    std::vector<FuncSlice> functions() const;

    /**
     * The relocation applying at @p offset within section
     * @p section_index, or nullptr. For a `call rel32` at instruction
     * offset o the relocation sits at o+1 (the displacement field).
     */
    const Reloc* relocAt(uint16_t section_index, uint64_t offset) const;

    /** All relocations targeting @p section_index. */
    const std::vector<Reloc>& relocsFor(uint16_t section_index) const;

  private:
    uint16_t type_ = 0;
    std::vector<Section> sections_;
    std::vector<Symbol> symbols_;
    /** Indexed by relocated-section index; empty vector when none. */
    std::vector<std::vector<Reloc>> relocs_;
};

}  // namespace sfi::elf

#endif  // SFIKIT_ELF_OBJECT_H_
