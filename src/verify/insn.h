/**
 * @file
 * Decoded-instruction representation for the static SFI verifier.
 *
 * The decoder (decoder.h) recovers exactly the instruction subset
 * `x64::Assembler` can emit — the verifier's trusted computing base is
 * "these bytes decode to instructions whose SFI-relevant effects we
 * model", so any byte sequence outside that subset is a *decode error*,
 * which the checker treats as a violation (fail closed, the VeriWasm
 * discipline).
 */
#ifndef SFIKIT_VERIFY_INSN_H_
#define SFIKIT_VERIFY_INSN_H_

#include <cstdint>
#include <string>

#include "x64/assembler.h"

namespace sfi::verify {

/**
 * Mnemonics, one per Assembler encoding path (not per x86 opcode):
 * the round-trip property tests assert encode(m) |> decode == m at
 * this granularity.
 */
enum class Mn : uint8_t {
    Invalid,
    // moves
    MovImm64, MovImm32, MovRR, Load, Store, StoreImm, Lea, Xchg,
    // integer ALU
    AluRR, AluImm, AluMem, Test, Imul, Neg, Not, Div, Idiv, Cdq, Cqo,
    ShiftCl, ShiftImm, Movzx, Movsx, Movsxd, Setcc, Cmovcc, Popcnt,
    // compiler-emitted extensions (ELF verification path; the JIT
    // assembler never produces these)
    AluMemDst,   ///< alu [m], r — read-modify-write (cmp: read only)
    AluImmMem,   ///< alu [m], imm — read-modify-write (cmp: read only)
    TestMem,     ///< test [m], r
    TestImm,     ///< test r/[m], imm (f6/f7 /0, a8/a9)
    Mul,         ///< one-operand unsigned mul (f7 /4)
    Bt,          ///< bt r, r (flags only; register form)
    Cdqe,        ///< cltq: rax = sext(eax)
    // control flow
    Jmp, Jcc, JmpReg, Call, CallReg, Ret, Push, Pop, Nop, Ud2, Int3,
    // SSE2 f64
    MovsdLoad, MovsdStore, MovsdRR, MovqToXmm, MovqFromXmm,
    Addsd, Subsd, Mulsd, Divsd, Sqrtsd, Minsd, Maxsd, Ucomisd, Xorpd,
    Cvtsi2sd, Cvttsd2si,
    // 128-bit moves/logic (GCC spill/zero idioms; scalar code only —
    // auto-vectorization is off in the measured objects)
    Comisd, MovVecLoad, MovVecStore, MovVecRR, Pxor,
};

const char* name(Mn m);

/** A decoded memory operand (mirrors x64::Mem). */
struct MemRef
{
    bool present = false;
    bool hasBase = false;
    bool hasIndex = false;
    x64::Reg base = x64::Reg::rax;
    x64::Reg index = x64::Reg::rax;
    uint8_t scale = 1;
    int32_t disp = 0;
    x64::Seg seg = x64::Seg::None;
    bool addr32 = false;  ///< 0x67 prefix: 32-bit effective address
    /** RIP-relative (mod=0, rm=5): disp holds the rel32. The JIT
     *  checker treats this as Bad (the assembler never emits it); the
     *  ELF checker resolves it through relocations. */
    bool ripRel = false;
};

/** One decoded instruction. */
struct Insn
{
    Mn mn = Mn::Invalid;
    uint8_t len = 0;          ///< bytes consumed
    x64::Width width = x64::Width::W32;
    /** Source width of Movzx/Movsx register forms (W8 or W16). */
    x64::Width srcWidth = x64::Width::W8;
    bool signExtend = false;  ///< Load/Movsx distinction

    // Register operands, as hardware numbers; -1 when absent. For
    // SSE mnemonics `reg` / `rm` index XMM registers.
    int8_t reg = -1;  ///< ModRM.reg operand (dst for loads, src for stores)
    int8_t rm = -1;   ///< ModRM.rm when a register form

    MemRef mem;

    x64::AluOp aluOp = x64::AluOp::Add;
    x64::ShiftOp shiftOp = x64::ShiftOp::Shl;
    x64::Cond cond = x64::Cond::O;

    bool hasImm = false;
    int64_t imm = 0;

    bool hasRel = false;
    int32_t rel = 0;  ///< rel8/rel32 branch displacement (from insn end)

    /** Bytes the memory operand touches (0 when no access): access
     *  width for integer ops, 8 for f64, 16 for the 128-bit moves. */
    uint8_t accessBytes = 0;

    bool isBranch() const { return mn == Mn::Jmp || mn == Mn::Jcc; }
    bool
    isTerminator() const
    {
        return mn == Mn::Jmp || mn == Mn::JmpReg || mn == Mn::Ret ||
               mn == Mn::Ud2;
    }
    bool
    readsMem() const
    {
        if (!mem.present)
            return false;
        switch (mn) {
          case Mn::Load: case Mn::AluMem: case Mn::AluMemDst:
          case Mn::AluImmMem: case Mn::TestMem: case Mn::TestImm:
          case Mn::Mul: case Mn::Div: case Mn::Idiv: case Mn::Imul:
          case Mn::Neg: case Mn::Not:
          case Mn::ShiftImm: case Mn::ShiftCl:
          case Mn::Cmovcc:
          case Mn::MovsdLoad: case Mn::MovVecLoad:
          case Mn::Addsd: case Mn::Subsd: case Mn::Mulsd:
          case Mn::Divsd: case Mn::Sqrtsd: case Mn::Minsd:
          case Mn::Maxsd: case Mn::Ucomisd: case Mn::Comisd:
          case Mn::Xorpd: case Mn::Cvtsi2sd: case Mn::Cvttsd2si:
            return true;
          default:
            return false;
        }
    }
    bool
    writesMem() const
    {
        if (!mem.present)
            return false;
        switch (mn) {
          case Mn::Store: case Mn::StoreImm: case Mn::MovsdStore:
          case Mn::MovVecStore: case Mn::Setcc:
          case Mn::Neg: case Mn::Not:
          case Mn::ShiftImm: case Mn::ShiftCl:
            return true;
          case Mn::AluMemDst: case Mn::AluImmMem:
            return aluOp != x64::AluOp::Cmp;
          default:
            return false;
        }
    }

    /** "mov r10, gs:[ebx+8]"-style rendering for reports. */
    std::string text() const;
};

}  // namespace sfi::verify

#endif  // SFIKIT_VERIFY_INSN_H_
