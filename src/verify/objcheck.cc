#include "verify/objcheck.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

#include "verify/decoder.h"
#include "verify/insn.h"

namespace sfi::verify {

namespace {

using elf::ElfObject;
using elf::FuncSlice;
using elf::Reloc;
using x64::AluOp;
using x64::Cond;
using x64::Seg;
using x64::Width;

constexpr int kRsp = 4;

// Relocation types beyond the two in elf/object.h the checker
// interprets: GOT-relative loads produce the *address* of the symbol.
constexpr uint32_t kRGotPcRel = 9;
constexpr uint32_t kRGotPcRelx = 41;
constexpr uint32_t kRRexGotPcRelx = 42;

bool
isGotLoad(uint32_t t)
{
    return t == kRGotPcRel || t == kRGotPcRelx || t == kRRexGotPcRelx;
}

/**
 * Abstract value kinds for the object checker. The lattice is flat:
 * unequal non-Top kinds join to Top.
 */
enum class K : uint8_t {
    Top,        ///< anything (untrusted 64-bit value)
    U32,        ///< provably zero-extended 32-bit value
    ObjPtr,     ///< the policy-object argument (&policy)
    HeapBase,   ///< loaded from [ObjPtr+0] (plain-base policies only)
    HeapSize,   ///< loaded from [ObjPtr+8]
    HostPtr,    ///< host pointer from the entry ABI (sret) / stack addr
    GlobalPtr,  ///< rip-relative address resolved via a relocation
    HeapPtr,    ///< HeapBase + zext(u32) + delta (formed by lea/add)
};

struct AV
{
    K k = K::Top;
    /** HeapPtr: constant added beyond base + the u32 index. */
    int64_t delta = 0;
    /**
     * Dominating-check fact, tracked independently of the kind:
     * U32      value + slack <= policy size
     * HeapPtr  (value - heapBase) + slack <= policy size
     * -1 = no fact. Established on branch edges of a compare against
     * the HeapSize field (w2c.bounds.dominate).
     */
    int64_t slack = -1;
    /**
     * Linear relations: value == current value of register linBase +
     * linOff (established by lea/mov/add over a zero-extended source).
     * Invalidated when the base is redefined; lets a fact proven about
     * `lea rdx,[rax+4]` land on %rax too. Two slots: the direct source
     * register of the defining copy/lea *and* the folded root of its
     * chain — GCC freely overwrites either one before the compare that
     * needs the relation, so a single slot loses whichever the
     * allocator recycles.
     */
    int8_t linBase = -1;
    int64_t linOff = 0;
    int8_t linBase2 = -1;
    int64_t linOff2 = 0;

    /** value == regs[base] + off; slot 2 falls back to slot 1. */
    void
    addLin(int base, int64_t off)
    {
        if (base < 0 || base == linBase)
            return;
        if (linBase < 0) {
            linBase = static_cast<int8_t>(base);
            linOff = off;
        } else if (linBase2 < 0) {
            linBase2 = static_cast<int8_t>(base);
            linOff2 = off;
        }
    }

    bool
    operator==(const AV& o) const
    {
        return k == o.k && delta == o.delta && slack == o.slack &&
               linBase == o.linBase && linOff == o.linOff &&
               linBase2 == o.linBase2 && linOff2 == o.linOff2;
    }
    bool operator!=(const AV& o) const { return !(*this == o); }
};

AV
av(K k)
{
    AV r;
    r.k = k;
    return r;
}

/** Does @p x hold the relation (base, off) in either lin slot? */
bool
hasLin(const AV& x, int8_t base, int64_t off)
{
    return (x.linBase == base && x.linOff == off) ||
           (x.linBase2 == base && x.linOff2 == off);
}

void
clearLin(AV& x)
{
    x.linBase = x.linBase2 = -1;
    x.linOff = x.linOff2 = 0;
}

/** Severs any relation of @p x through register @p r (r was written). */
void
dropLinTo(AV& x, int r)
{
    if (x.linBase2 == r) {
        x.linBase2 = -1;
        x.linOff2 = 0;
    }
    if (x.linBase == r) {
        x.linBase = x.linBase2;
        x.linOff = x.linOff2;
        x.linBase2 = -1;
        x.linOff2 = 0;
    }
}

AV
joinAV(const AV& a, const AV& b)
{
    AV r;
    // HeapPtr deltas must agree exactly (they feed the lower-bound
    // check); disagreeing values collapse to Top.
    if (a.k == b.k && a.delta == b.delta) {
        r.k = a.k;
        r.delta = a.delta;
    } else {
        r.k = K::Top;
        r.delta = 0;
    }
    // Slack facts widen instead of chasing a descending chain: a
    // loop-carried pointer stepping forward each iteration would
    // otherwise shrink the fact one step per fixpoint round. Keeping
    // the accumulated fact only when the incoming one is at least as
    // strong is sound (dropping facts always is) and terminates.
    r.slack = (a.slack >= 0 && b.slack >= a.slack) ? a.slack : -1;
    // Lin slots survive a join only if the other side holds the same
    // relation (in either slot — slot order is not canonical).
    if (a.linBase >= 0 && hasLin(b, a.linBase, a.linOff))
        r.addLin(a.linBase, a.linOff);
    if (a.linBase2 >= 0 && hasLin(b, a.linBase2, a.linOff2))
        r.addLin(a.linBase2, a.linOff2);
    return r;
}

/** Flags fact from `cmp X, size` (or the swapped order). */
struct FlagFact
{
    bool valid = false;
    bool sizeLeft = false;  ///< compare computed size - X, not X - size
    int8_t reg = -1;        ///< register holding X
    int64_t ext = 0;        ///< X == reg + ext (via the reg's lin)
    int8_t reg2 = -1;       ///< optional second representation
    int64_t ext2 = 0;

    bool
    operator==(const FlagFact& o) const
    {
        if (valid != o.valid)
            return false;
        return !valid ||
               (sizeLeft == o.sizeLeft && reg == o.reg && ext == o.ext &&
                reg2 == o.reg2 && ext2 == o.ext2);
    }
};

struct State
{
    AV regs[16];
    /** rsp == entry rsp + rspAdj (negative after push/sub). */
    int64_t rspAdj = 0;
    bool rspLost = false;  ///< join disagreed; slots untracked
    /** Entry-rsp-relative spill slots: key = rspAdj + disp. */
    std::map<int64_t, AV> slots;
    FlagFact flags;

    bool
    joinWith(const State& o)
    {
        bool changed = false;
        for (int i = 0; i < 16; i++) {
            AV j = joinAV(regs[i], o.regs[i]);
            if (j != regs[i]) {
                regs[i] = j;
                changed = true;
            }
        }
        if (!rspLost && (o.rspLost || o.rspAdj != rspAdj)) {
            rspLost = true;
            slots.clear();
            changed = true;
        }
        if (!rspLost) {
            for (auto it = slots.begin(); it != slots.end();) {
                auto oi = o.slots.find(it->first);
                AV j = oi == o.slots.end() ? av(K::Top)
                                           : joinAV(it->second, oi->second);
                if (j.k == K::Top && j.slack < 0) {
                    it = slots.erase(it);
                    changed = true;
                    continue;
                }
                if (j != it->second) {
                    it->second = j;
                    changed = true;
                }
                ++it;
            }
        }
        if (!(flags == o.flags) && flags.valid) {
            flags.valid = false;
            changed = true;
        }
        return changed;
    }
};

struct Block
{
    size_t first = 0;
    size_t last = 0;
    std::vector<size_t> succs;
    State in;
    bool visited = false;
    /// Seeded all-Top because no reachable path leads here (alignment
    /// padding, post-trap code). Checked fail-closed, but its out-edges
    /// never execute, so its state must not flow into live blocks.
    bool dead = false;
};

/** How a memory operand classified. */
enum class MC : uint8_t {
    None,       ///< no memory operand
    Stack,      ///< rsp-relative host stack
    PolicyObj,  ///< [ObjPtr + d]: the policy object (host)
    Global,     ///< rip-relative / GOT-resolved host data
    HostMem,    ///< through an entry host pointer (sret)
    Gs,         ///< proven %gs heap access (Segue form)
    Heap,       ///< proven plain-pointer heap access
    Fs,         ///< %fs:0x28 stack-protector canary
    Bad,        ///< violation recorded
};

/** Callees that never return: the block ends at the call site. */
bool
isNoreturn(const std::string& sym)
{
    if (sym == "_ZN3sfi3w2c10boundsTrapEv" || sym == "abort" ||
        sym == "__stack_chk_fail" || sym == "_Unwind_Resume" ||
        sym == "__cxa_throw")
        return true;
    return sym.compare(0, 4, "_ZSt") == 0 &&
           sym.find("__throw") != std::string::npos;
}

/** SysV caller-saved GPRs: rax rcx rdx rsi rdi r8-r11. */
constexpr uint32_t kVolatileMask = (1u << 0) | (1u << 1) | (1u << 2) |
                                   (1u << 6) | (1u << 7) | (1u << 8) |
                                   (1u << 9) | (1u << 10) | (1u << 11);

/**
 * Register effects of the local functions a kernel calls, computed
 * from their own bytes (the whole-binary half of the verifier). GCC
 * compiles local helpers with IPA-RA and keeps caller values live in
 * volatile registers the callee provably never writes; re-deriving the
 * clobber set here keeps those kernels verifiable without trusting the
 * compiler. Callee-saved registers are covered by the documented SysV
 * assumption, so only the volatile set is refined. Anything the scan
 * cannot fully decode or resolve stays `known = false` — the caller
 * then fails closed to the full volatile clobber.
 */
class ClobberIndex
{
  public:
    struct Effects
    {
        uint32_t regs = kVolatileMask;  ///< possibly-written volatiles
        bool usesGs = false;            ///< %gs operand anywhere (transitively)
        bool known = false;             ///< body + callees fully analyzed
    };

    explicit ClobberIndex(const ElfObject& obj) : obj_(obj)
    {
        for (const FuncSlice& f : obj.functions())
            entries_[key(f.sectionIndex, f.sectionOffset)] = f;
    }

    /**
     * Resolves a call/tail-call relocation to a defined local symbol's
     * (section, offset). False for undefined (external) targets.
     */
    bool
    resolveCall(const Reloc& r, uint16_t* sec, uint64_t* off) const
    {
        if (r.type != elf::kRX86_64Pc32 && r.type != elf::kRX86_64Plt32)
            return false;
        if (r.symIndex >= obj_.symbols().size())
            return false;
        const elf::Symbol& s = obj_.symbols()[r.symIndex];
        if (!s.defined())
            return false;
        *sec = s.shndx;
        // rel32 target = S + A + 4 in section coordinates (the reloc
        // sits on the displacement field, 4 bytes before the insn end).
        *off = s.value + static_cast<uint64_t>(r.addend + 4);
        return true;
    }

    /** Effects of the function whose *entry* is (sec, off). */
    Effects
    effectsAt(uint16_t sec, uint64_t off)
    {
        auto it = entries_.find(key(sec, off));
        if (it == entries_.end())
            return Effects{};  // not a function entry: unknown
        uint64_t k = key(sec, off);
        auto m = memo_.find(k);
        if (m != memo_.end())
            return m->second;
        // In-progress marker: mutual recursion falls back to the full
        // volatile set instead of looping.
        memo_[k] = Effects{};
        Effects e = compute(it->second);
        memo_[k] = e;
        return e;
    }

  private:
    static uint64_t
    key(uint16_t sec, uint64_t off)
    {
        return (static_cast<uint64_t>(sec) << 48) | off;
    }

    /** Registers instruction @p in may write (over-approximate). */
    static uint32_t
    writesOf(const Insn& in)
    {
        uint32_t m = 0;
        auto add = [&m](int r) {
            if (r >= 0 && r < 16)
                m |= 1u << r;
        };
        switch (in.mn) {
          case Mn::Mul:
          case Mn::Div:
          case Mn::Idiv:
            add(0);
            add(2);
            break;
          case Mn::Cdq:
          case Mn::Cqo:
            add(2);
            break;
          case Mn::Cdqe:
            add(0);
            break;
          default:
            // Adding both ModRM operands over-approximates reads as
            // writes (cmp, stores); harmless for a clobber set. SSE
            // mnemonics index XMM registers — irrelevant to GPR facts
            // but equally harmless to include.
            add(in.reg);
            add(in.rm);
            break;
        }
        return m;
    }

    Effects
    compute(const FuncSlice& f)
    {
        Effects e;
        e.regs = 0;
        e.usesGs = false;
        e.known = true;
        size_t off = 0;
        while (off < f.size) {
            Insn in;
            if (!decode(f.bytes + off, f.size - off, &in))
                return Effects{};  // undecodable: fail closed
            if (in.mem.present && in.mem.seg == Seg::Gs)
                e.usesGs = true;
            e.regs |= writesOf(in);
            if (in.mn == Mn::CallReg || in.mn == Mn::JmpReg)
                return Effects{};  // indirect flow: fail closed
            if (in.hasRel &&
                (in.mn == Mn::Call || in.mn == Mn::Jmp)) {
                uint64_t lo = f.sectionOffset + off;
                const Reloc* r = nullptr;
                for (const Reloc& cand : obj_.relocsFor(f.sectionIndex))
                    if (cand.offset >= lo && cand.offset < lo + in.len)
                        r = &cand;
                if (r) {
                    if (!isNoreturn(r->symName)) {
                        uint16_t cs;
                        uint64_t co;
                        if (resolveCall(*r, &cs, &co)) {
                            Effects ce = effectsAt(cs, co);
                            e.regs |= ce.regs;
                            e.usesGs = e.usesGs || ce.usesGs;
                            e.known = e.known && ce.known;
                        } else {
                            // External (libc) target: full volatile
                            // clobber under the documented host-ABI
                            // assumption.
                            e.regs |= kVolatileMask;
                        }
                    }
                } else {
                    // No relocation: a target resolved at compile
                    // time, necessarily within this section.
                    uint64_t t = f.sectionOffset + off + in.len +
                                 static_cast<int64_t>(in.rel);
                    bool internal = t >= f.sectionOffset &&
                                    t < f.sectionOffset + f.size;
                    if (!internal) {
                        Effects ce = effectsAt(f.sectionIndex, t);
                        e.regs |= ce.regs;
                        e.usesGs = e.usesGs || ce.usesGs;
                        e.known = e.known && ce.known;
                    }
                }
            }
            off += in.len;
        }
        e.regs &= kVolatileMask;
        return e;
    }

    const ElfObject& obj_;
    std::unordered_map<uint64_t, FuncSlice> entries_;
    std::unordered_map<uint64_t, Effects> memo_;
};

class ObjFnChecker
{
  public:
    ObjFnChecker(const ElfObject& obj, const FuncSlice& fn, W2cPolicy policy,
                 bool sret, ClobberIndex* clobbers, ObjReport* rep,
                 ObjFunctionResult* fr)
        : obj_(obj), fn_(fn), policy_(policy), sret_(sret),
          clobbers_(clobbers), rep_(rep), fr_(fr)
    {
        usesGs_ = policy == W2cPolicy::Segue ||
                  policy == W2cPolicy::SegueBounds;
        plainBase_ = policy == W2cPolicy::BaseAdd ||
                     policy == W2cPolicy::Bounds;
        needsBounds_ = policy == W2cPolicy::Bounds ||
                       policy == W2cPolicy::SegueBounds;
    }

    void
    run()
    {
        if (!decodeAll())
            return;
        if (!buildBlocks())
            return;
        analyze();
        record_ = true;
        for (auto& b : blocks_) {
            State st = b.in;
            for (size_t i = b.first; i < b.last; i++)
                transfer(st, i);
        }
    }

  private:
    // ---- reporting ------------------------------------------------

    void
    violation(uint64_t off, Rule rule, const std::string& insn,
              std::string detail)
    {
        rep_->violations.push_back(
            {off, rule, fn_.name, insn, std::move(detail)});
        fr_->violations++;
    }

    // ---- relocations ----------------------------------------------

    /** First relocation landing inside instruction @p i, or nullptr. */
    const Reloc*
    relocIn(size_t i) const
    {
        uint64_t lo = fn_.sectionOffset + offs_[i];
        uint64_t hi = lo + insns_[i].len;
        for (const Reloc& r : obj_.relocsFor(fn_.sectionIndex))
            if (r.offset >= lo && r.offset < hi)
                return &r;
        return nullptr;
    }

    // ---- decode + CFG ---------------------------------------------

    bool
    decodeAll()
    {
        size_t off = 0;
        while (off < fn_.size) {
            Insn in;
            if (!decode(fn_.bytes + off, fn_.size - off, &in)) {
                violation(off, Rule::DecodeError,
                          hexWindow(fn_.bytes, fn_.size, off),
                          "undecodable instruction (fail closed)");
                return false;
            }
            offToIdx_[off] = insns_.size();
            offs_.push_back(off);
            insns_.push_back(in);
            off += in.len;
        }
        fr_->instructions = insns_.size();
        rep_->instructions += insns_.size();
        return true;
    }

    int64_t
    targetOf(size_t i) const
    {
        const Insn& in = insns_[i];
        if (!in.hasRel)
            return -1;
        return static_cast<int64_t>(offs_[i]) + in.len + in.rel;
    }

    bool
    inRange(int64_t t) const
    {
        return t >= 0 && static_cast<uint64_t>(t) < fn_.size;
    }

    /** A rel32 call/jump that leaves the function via a relocation. */
    bool
    leavesViaReloc(size_t i) const
    {
        return insns_[i].hasRel && relocIn(i) != nullptr;
    }

    bool
    noreturnCall(size_t i) const
    {
        if (insns_[i].mn != Mn::Call)
            return false;
        const Reloc* r = relocIn(i);
        return r && isNoreturn(r->symName);
    }

    bool
    buildBlocks()
    {
        std::vector<uint8_t> leader(insns_.size(), 0);
        leader[0] = 1;
        for (size_t i = 0; i < insns_.size(); i++) {
            const Insn& in = insns_[i];
            if (in.isBranch() && !leavesViaReloc(i)) {
                int64_t t = targetOf(i);
                auto it = inRange(t)
                              ? offToIdx_.find(static_cast<size_t>(t))
                              : offToIdx_.end();
                if (it == offToIdx_.end()) {
                    violation(offs_[i], Rule::W2cCfgResolved, in.text(),
                              "branch target not on a decoded "
                              "instruction boundary");
                    return false;
                }
                leader[it->second] = 1;
            }
            if ((in.isBranch() || in.isTerminator() || noreturnCall(i)) &&
                i + 1 < insns_.size())
                leader[i + 1] = 1;
        }

        for (size_t i = 0; i < insns_.size(); i++) {
            if (!leader[i])
                continue;
            size_t j = i + 1;
            while (j < insns_.size() && !leader[j])
                j++;
            idxToBlock_[i] = blocks_.size();
            blocks_.push_back(Block{i, j, {}, State{}, false});
        }

        for (auto& b : blocks_) {
            size_t li = b.last - 1;
            const Insn& last = insns_[li];
            if (noreturnCall(li))
                continue;  // trap call: no successors
            if (last.mn == Mn::Jmp) {
                if (!leavesViaReloc(li))
                    b.succs.push_back(blockAt(targetOf(li)));
                // else: relocation-resolved tail call, no successors
            } else if (last.mn == Mn::Jcc) {
                if (b.last < insns_.size())
                    b.succs.push_back(idxToBlock_.at(b.last));
                if (!leavesViaReloc(li))
                    b.succs.push_back(blockAt(targetOf(li)));
            } else if (!last.isTerminator()) {
                if (b.last < insns_.size())
                    b.succs.push_back(idxToBlock_.at(b.last));
            }
        }
        fr_->basicBlocks = blocks_.size();
        return true;
    }

    size_t
    blockAt(int64_t off)
    {
        return idxToBlock_.at(offToIdx_.at(static_cast<size_t>(off)));
    }

    // ---- entry state ----------------------------------------------

    State
    entryState() const
    {
        State st;  // everything Top
        // SysV integer argument order; a by-value class return (sret)
        // shifts the policy reference one slot right.
        static constexpr int kArg[2] = {7 /*rdi*/, 6 /*rsi*/};
        int ai = 0;
        if (sret_)
            st.regs[kArg[ai++]] = av(K::HostPtr);
        st.regs[kArg[ai]] = av(K::ObjPtr);
        return st;
    }

    // ---- fixpoint -------------------------------------------------

    void
    analyze()
    {
        std::vector<size_t> work;
        blocks_[0].in = entryState();
        blocks_[0].visited = true;
        work.push_back(0);

        while (true) {
            while (!work.empty()) {
                size_t bi = work.back();
                work.pop_back();
                Block& b = blocks_[bi];
                State st = b.in;
                for (size_t i = b.first; i < b.last; i++)
                    transfer(st, i);
                // Dead-seeded blocks are verified (fail closed) but
                // their edges never execute: propagating their all-Top
                // state would poison live loop headers they precede.
                if (b.dead)
                    continue;
                bool twoWay = b.succs.size() == 2 &&
                              b.succs[0] != b.succs[1];
                for (size_t e = 0; e < b.succs.size(); e++) {
                    State es = st;
                    // succs[0] is the fallthrough, succs[1] the taken
                    // edge of a Jcc (buildBlocks order).
                    if (twoWay)
                        applyEdgeFact(b, e == 1, es);
                    es.flags.valid = false;
                    Block& s = blocks_[b.succs[e]];
                    if (!s.visited) {
                        s.in = es;
                        s.visited = true;
                        work.push_back(b.succs[e]);
                    } else if (s.in.joinWith(es)) {
                        work.push_back(b.succs[e]);
                    }
                }
            }
            // Unreachable blocks (e.g. after a noreturn call) verify
            // from a fresh all-Top state: fail closed, never skipped.
            size_t next = blocks_.size();
            for (size_t i = 0; i < blocks_.size(); i++)
                if (!blocks_[i].visited) {
                    next = i;
                    break;
                }
            if (next == blocks_.size())
                break;
            blocks_[next].visited = true;
            blocks_[next].dead = true;
            work.push_back(next);
        }
    }

    /**
     * Turns the `cmp X, size; jcc` fact into a slack on the compared
     * register (and its lin base) along the edge where X is proven
     * below the policy size.
     */
    void
    applyEdgeFact(const Block& b, bool taken, State& es) const
    {
        const Insn& last = insns_[b.last - 1];
        if (last.mn != Mn::Jcc || !es.flags.valid)
            return;
        // Effective condition on this edge (x86 tttn: ^1 inverts).
        uint8_t c = static_cast<uint8_t>(last.cond);
        if (!taken)
            c ^= 1;
        // Relation of X vs size under the effective condition:
        // 0 none, 1 X <= size, 2 X < size.
        int rel = 0;
        if (!es.flags.sizeLeft) {  // flags = X - size
            if (c == 0x2)  // b
                rel = 2;
            else if (c == 0x6 || c == 0x4)  // be, e
                rel = 1;
        } else {  // flags = size - X
            if (c == 0x7)  // a
                rel = 2;
            else if (c == 0x3 || c == 0x4)  // ae, e
                rel = 1;
        }
        if (!rel)
            return;
        int64_t add = rel == 2 ? 1 : 0;
        applySlack(es, es.flags.reg, es.flags.ext + add);
        if (es.flags.reg2 >= 0)
            applySlack(es, es.flags.reg2, es.flags.ext2 + add);
    }

    static void
    raiseSlack(State& es, int r, int64_t s)
    {
        if (s >= 0 && es.regs[r].slack < s)
            es.regs[r].slack = s;
    }

    static void
    applySlack(State& es, int r, int64_t s)
    {
        if (r < 0 || s < 0)
            return;
        raiseSlack(es, r, s);
        // The compare names one copy of the value; registers related
        // through lin chains hold the same value shifted by a known
        // offset (value(j) == value(anchor) + linOff_j), so the bound
        // transfers. Lin records point at the *direct* source register
        // of each copy/lea, so the chain from the compared register is
        // walked transitively (it cannot cycle: writing a register
        // severs every lin pointing at it). HeapPtr slack has different
        // semantics (relative to the heap base) and is never raised
        // from an offset fact.
        int anchors[8];
        int64_t aslack[8];
        int n = 0;
        anchors[n] = r;
        aslack[n++] = s;
        // Breadth-first over both lin slots of every anchor (writing a
        // register severs relations through it, so the graph is acyclic;
        // the seen-check and the cap bound the walk regardless).
        for (int head = 0; head < n; head++) {
            const AV& a = es.regs[anchors[head]];
            const int8_t bases[2] = {a.linBase, a.linBase2};
            const int64_t offs[2] = {a.linOff, a.linOff2};
            for (int p = 0; p < 2 && n < 8; p++) {
                int b = bases[p];
                if (b < 0)
                    continue;
                int64_t bs = aslack[head] + offs[p];
                if (bs < 0)
                    continue;
                bool seen = false;
                for (int t = 0; t < n; t++)
                    seen = seen || anchors[t] == b;
                if (seen)
                    continue;
                if (es.regs[b].k != K::HeapPtr)
                    raiseSlack(es, b, bs);
                anchors[n] = b;
                aslack[n++] = bs;
            }
        }
        for (int j = 0; j < 16; j++) {
            const AV& a = es.regs[j];
            if (a.k == K::HeapPtr)
                continue;
            for (int t = 0; t < n; t++) {
                if (j == anchors[t])
                    continue;
                if (a.linBase == anchors[t])
                    raiseSlack(es, j, aslack[t] - a.linOff);
                if (a.linBase2 == anchors[t])
                    raiseSlack(es, j, aslack[t] - a.linOff2);
            }
        }
    }

    // ---- state helpers --------------------------------------------

    void
    setReg(State& st, int r, AV v)
    {
        if (r < 0 || r > 15)
            return;
        if (r == kRsp) {
            if (record_)
                violation(curOff_, Rule::StackDiscipline,
                          insns_[curIdx_].text(),
                          "%rsp written outside push/pop/sub/add/lea "
                          "frame shapes");
            return;
        }
        dropLinTo(v, r);
        for (int j = 0; j < 16; j++)
            if (j != r)
                dropLinTo(st.regs[j], r);
        if (st.flags.valid && (st.flags.reg == r || st.flags.reg2 == r))
            st.flags.valid = false;
        st.regs[r] = v;
    }

    /** 8/16-bit partial write: zero-extension (if any) survives. */
    AV
    narrow(const State& st, int r) const
    {
        return av(st.regs[r].k == K::U32 ? K::U32 : K::Top);
    }

    void
    clobberRegs(State& st, uint32_t mask)
    {
        for (int r = 0; r < 16; r++)
            if (mask & (1u << r))
                setReg(st, r, av(K::Top));
        st.flags.valid = false;
        // The red zone (below the callee's entry rsp) is dead across
        // any call, refined clobber set or not.
        if (!st.rspLost)
            st.slots.erase(st.slots.begin(),
                           st.slots.lower_bound(st.rspAdj));
    }

    void
    clobberVolatile(State& st)
    {
        // SysV caller-saved: rax rcx rdx rsi rdi r8-r11.
        clobberRegs(st, kVolatileMask);
    }

    /** A store hit the policy object: cached base/size facts die. */
    void
    killHeapFacts(State& st)
    {
        auto kill = [](AV& v) {
            if (v.k == K::HeapBase || v.k == K::HeapSize ||
                v.k == K::HeapPtr)
                v = av(K::Top);
            v.slack = -1;
        };
        for (int r = 0; r < 16; r++)
            kill(st.regs[r]);
        for (auto& [d, v] : st.slots)
            kill(v);
        st.flags.valid = false;
    }

    int64_t
    slotKey(const State& st, int32_t disp) const
    {
        return st.rspAdj + disp;
    }

    AV
    slotLoad(const State& st, const MemRef& m) const
    {
        if (st.rspLost || m.hasIndex)
            return av(K::Top);
        auto it = st.slots.find(slotKey(st, m.disp));
        return it == st.slots.end() ? av(K::Top) : it->second;
    }

    void
    slotStore(State& st, const MemRef& m, AV v, int bytes)
    {
        if (st.rspLost)
            return;
        if (m.hasIndex) {
            // Indexed store into a stack array. A zero-extended index
            // only reaches offsets >= disp, so slots strictly below the
            // array base survive; anything else may alias and dies.
            if (st.regs[static_cast<int>(m.index)].k == K::U32)
                st.slots.erase(st.slots.lower_bound(slotKey(st, m.disp)),
                               st.slots.end());
            else
                st.slots.clear();
            return;
        }
        int64_t key = slotKey(st, m.disp);
        clearLin(v);  // lin is register-relative; spills drop it
        if (bytes == 8) {
            st.slots[key] = v;
        } else {
            st.slots.erase(key);
            if (bytes == 16)
                st.slots.erase(key + 8);
        }
    }

    // ---- memory classification (the policy rules) -----------------

    MC
    checkAccess(State& st, size_t i)
    {
        const Insn& in = insns_[i];
        const MemRef& m = in.mem;
        uint64_t off = offs_[i];
        int bytes = in.accessBytes ? in.accessBytes : 1;

        if (m.seg == Seg::Gs) {
            if (!usesGs_) {
                if (record_)
                    violation(off, Rule::W2cGsAccess, in.text(),
                              "stray %gs access in a non-Segue kernel");
                return MC::Bad;
            }
            bool shape = m.hasBase && !m.hasIndex && m.disp == 0 &&
                         !m.ripRel;
            int b = shape ? static_cast<int>(m.base) : -1;
            if (!shape || st.regs[b].k != K::U32) {
                if (record_)
                    violation(off, Rule::W2cGsAccess, in.text(),
                              "heap access is not %gs:(reg) with a "
                              "provably zero-extended u32 register");
                return MC::Bad;
            }
            if (policy_ == W2cPolicy::SegueBounds) {
                if (st.regs[b].slack < bytes) {
                    if (record_)
                        violation(off, Rule::W2cBoundsDominate, in.text(),
                                  "gs heap access without a dominating "
                                  "size check covering its extent");
                    return MC::Bad;
                }
                if (record_)
                    fr_->boundsChecked++;
            }
            if (record_)
                fr_->heapAccesses++;
            return MC::Gs;
        }
        if (m.seg == Seg::Fs) {
            // %fs:0x28 is the stack-protector canary (host TLS).
            if (!m.hasBase && !m.hasIndex && m.disp == 0x28) {
                if (record_)
                    fr_->hostAccesses++;
                return MC::Fs;
            }
            if (record_)
                violation(off, Rule::W2cHeapEscape, in.text(),
                          "unrecognized %fs access");
            return MC::Bad;
        }
        if (m.ripRel) {
            if (relocIn(i)) {
                if (record_)
                    fr_->hostAccesses++;
                return MC::Global;
            }
            if (record_)
                violation(off, Rule::W2cHeapEscape, in.text(),
                          "rip-relative access without a resolving "
                          "relocation");
            return MC::Bad;
        }
        if (!m.hasBase) {
            if (record_)
                violation(off, Rule::W2cHeapEscape, in.text(),
                          "absolute-address access");
            return MC::Bad;
        }
        int b = static_cast<int>(m.base);
        if (b == kRsp) {
            if (record_)
                fr_->hostAccesses++;
            return MC::Stack;
        }
        const AV bv = st.regs[b];
        switch (bv.k) {
          case K::ObjPtr:
            if (m.hasIndex) {
                if (record_)
                    violation(off, Rule::W2cHeapEscape, in.text(),
                              "indexed access into the policy object");
                return MC::Bad;
            }
            if (record_)
                fr_->hostAccesses++;
            return MC::PolicyObj;
          case K::HostPtr:
            if (record_)
                fr_->hostAccesses++;
            return MC::HostMem;
          case K::GlobalPtr:
            if (record_)
                fr_->hostAccesses++;
            return MC::Global;
          case K::HeapBase:
          case K::HeapPtr:
            return checkHeapAccess(st, in, bv, off, bytes);
          default:
            if (record_)
                violation(off, Rule::W2cHeapEscape, in.text(),
                          "access through a value the analysis cannot "
                          "classify");
            return MC::Bad;
        }
    }

    MC
    checkHeapAccess(State& st, const Insn& in, const AV& bv, uint64_t off,
                    int bytes)
    {
        const MemRef& m = in.mem;
        if (usesGs_) {
            // Segue kernels never form plain heap pointers (HeapBase is
            // not even assigned for them); defensive fail-close.
            if (record_)
                violation(off, Rule::W2cGsAccess, in.text(),
                          "non-%gs heap access in a Segue kernel");
            return MC::Bad;
        }
        int64_t idxSlack = -1;
        if (m.hasIndex) {
            int idx = static_cast<int>(m.index);
            // The index must be a zero-extended u32 at byte scale on
            // the plain HeapBase; a second index over an already-offset
            // HeapPtr could overflow the 8 GiB reservation.
            if (m.scale != 1 || st.regs[idx].k != K::U32 ||
                bv.k != K::HeapBase) {
                if (record_)
                    violation(off, Rule::W2cHeapEscape, in.text(),
                              "heap access is not [base + zext(u32)*1 "
                              "+ disp]");
                return MC::Bad;
            }
            idxSlack = st.regs[idx].slack;
        }
        int64_t delta = bv.k == K::HeapPtr ? bv.delta : 0;
        if (delta + m.disp < 0) {
            if (record_)
                violation(off, Rule::W2cHeapEscape, in.text(),
                          "effective displacement below the heap base");
            return MC::Bad;
        }
        if (policy_ == W2cPolicy::Bounds) {
            int64_t slack = m.hasIndex ? idxSlack : bv.slack;
            int64_t need = delta + m.disp + bytes;
            if (slack < need) {
                if (record_)
                    violation(off, Rule::W2cBoundsDominate, in.text(),
                              "heap access without a dominating size "
                              "check covering its extent");
                return MC::Bad;
            }
            if (record_)
                fr_->boundsChecked++;
        }
        if (record_)
            fr_->heapAccesses++;
        return MC::Heap;
    }

    // ---- transfer -------------------------------------------------

    void transfer(State& st, size_t i);

    /** Records a flags fact when @p x is compared against HeapSize. */
    void
    setCmpFact(State& st, int x, bool sizeLeft)
    {
        if (x < 0)
            return;
        FlagFact f;
        f.valid = true;
        f.sizeLeft = sizeLeft;
        f.reg = static_cast<int8_t>(x);
        f.ext = 0;
        if (st.regs[x].linBase >= 0) {
            f.reg2 = st.regs[x].linBase;
            f.ext2 = st.regs[x].linOff;
        }
        st.flags = f;
        factSet_ = true;
    }

    /** Mnemonics that leave EFLAGS untouched (facts survive them). */
    static bool
    preservesFlags(Mn m)
    {
        switch (m) {
          case Mn::MovImm64: case Mn::MovImm32: case Mn::MovRR:
          case Mn::Load: case Mn::Store: case Mn::StoreImm:
          case Mn::Lea: case Mn::Xchg: case Mn::Movzx: case Mn::Movsx:
          case Mn::Movsxd: case Mn::Setcc: case Mn::Cmovcc:
          case Mn::Push: case Mn::Pop: case Mn::Nop: case Mn::Jmp:
          case Mn::Jcc: case Mn::Cdq: case Mn::Cqo: case Mn::Cdqe:
          case Mn::MovsdLoad: case Mn::MovsdStore: case Mn::MovsdRR:
          case Mn::MovqToXmm: case Mn::MovqFromXmm:
          case Mn::MovVecLoad: case Mn::MovVecStore: case Mn::MovVecRR:
          case Mn::Addsd: case Mn::Subsd: case Mn::Mulsd: case Mn::Divsd:
          case Mn::Sqrtsd: case Mn::Minsd: case Mn::Maxsd:
          case Mn::Xorpd: case Mn::Pxor: case Mn::Cvtsi2sd:
          case Mn::Cvttsd2si:
            return true;
          default:
            return false;
        }
    }

    const ElfObject& obj_;
    const FuncSlice& fn_;
    W2cPolicy policy_;
    bool sret_;
    ClobberIndex* clobbers_;
    ObjReport* rep_;
    ObjFunctionResult* fr_;
    bool usesGs_ = false;
    bool plainBase_ = false;
    bool needsBounds_ = false;

    std::vector<Insn> insns_;
    std::vector<size_t> offs_;
    std::unordered_map<size_t, size_t> offToIdx_;
    std::unordered_map<size_t, size_t> idxToBlock_;
    std::vector<Block> blocks_;

    bool record_ = false;
    bool factSet_ = false;
    uint64_t curOff_ = 0;
    size_t curIdx_ = 0;
};

void
ObjFnChecker::transfer(State& st, size_t i)
{
    const Insn& in = insns_[i];
    uint64_t off = offs_[i];
    curOff_ = off;
    curIdx_ = i;
    factSet_ = false;

    // Classify the memory operand once, before modeling the value
    // effect: every accessing form funnels through the policy rules.
    MC mc = MC::None;
    if (in.mem.present && in.mn != Mn::Lea && in.mn != Mn::Nop &&
        (in.readsMem() || in.writesMem()))
        mc = checkAccess(st, i);

    switch (in.mn) {
      case Mn::MovImm64:
        setReg(st, in.reg,
               av(in.imm >= 0 && in.imm <= 0xffffffffll ? K::U32
                                                        : K::Top));
        break;
      case Mn::MovImm32:
        if (in.mem.present) {  // c7 /0 with a memory destination
            if (mc == MC::Stack)
                slotStore(st, in.mem, av(K::Top), 0);
        } else {
            setReg(st, in.reg, av(K::U32));
        }
        break;

      case Mn::MovRR: {
        int dst = in.rm, src = in.reg;
        if (in.width == Width::W64) {
            AV v = st.regs[src];
            // Keep the relation to the *direct* source alongside the
            // source's own (folded) relation: GCC recycles whichever
            // register dies first, and the compare that needs the link
            // may come after either one is overwritten.
            if (src != dst) {
                AV chain = st.regs[src];
                clearLin(v);
                v.addLin(src, 0);
                v.addLin(chain.linBase, chain.linOff);
            }
            setReg(st, dst, v);
        } else if (in.width == Width::W32) {
            AV v = st.regs[src];
            AV r = av(K::U32);
            // low32(x) <= x: a dominating-check fact survives the
            // truncation; the lin relation only when no bits drop.
            r.slack = v.slack;
            if (v.k == K::U32) {
                if (src != dst) {
                    r.addLin(src, 0);
                    r.addLin(v.linBase, v.linOff);
                } else {
                    r.linBase = v.linBase;
                    r.linOff = v.linOff;
                    r.linBase2 = v.linBase2;
                    r.linOff2 = v.linOff2;
                }
            }
            setReg(st, dst, r);
        } else {
            setReg(st, dst, narrow(st, dst));
        }
        break;
      }

      case Mn::Load: {
        AV v = av(K::Top);
        if (in.signExtend) {
            v = av(in.width == Width::W8 || in.width == Width::W16
                       ? K::Top  // movsx to 32/64: sign bit unknown
                       : K::Top);
        } else if (in.width == Width::W64) {
            if (mc == MC::PolicyObj && !in.mem.hasIndex) {
                if (in.mem.disp == 0 && plainBase_)
                    v = av(K::HeapBase);
                else if (in.mem.disp == 8)
                    v = av(K::HeapSize);
            } else if (mc == MC::Stack) {
                v = slotLoad(st, in.mem);
            } else if (mc == MC::Global) {
                const Reloc* r = relocIn(i);
                if (r && isGotLoad(r->type))
                    v = av(K::GlobalPtr);
            }
        } else {
            v = av(K::U32);  // 8/16/32-bit loads zero-extend
        }
        setReg(st, in.reg, v);
        break;
      }

      case Mn::Store:
        if (mc == MC::Stack)
            slotStore(st, in.mem, st.regs[in.reg],
                      in.width == Width::W64 ? 8 : 0);
        else if (mc == MC::PolicyObj)
            killHeapFacts(st);
        break;
      case Mn::StoreImm:
        if (mc == MC::Stack)
            slotStore(st, in.mem,
                      in.width == Width::W64 && in.imm >= 0 &&
                              in.imm <= 0xffffffffll
                          ? av(K::U32)
                          : av(K::Top),
                      in.width == Width::W64 ? 8 : 0);
        else if (mc == MC::PolicyObj)
            killHeapFacts(st);
        break;
      case Mn::MovsdStore:
      case Mn::MovVecStore:
        if (mc == MC::Stack)
            slotStore(st, in.mem, av(K::Top),
                      in.mn == Mn::MovVecStore ? 16 : 0);
        else if (mc == MC::PolicyObj)
            killHeapFacts(st);
        break;

      case Mn::Lea: {
        const MemRef& m = in.mem;
        AV v = av(K::Top);
        if (m.ripRel) {
            if (relocIn(i))
                v = av(K::GlobalPtr);
        } else if (in.width == Width::W32) {
            v = av(K::U32);  // wrapping u32 address arithmetic
        } else if (m.hasBase) {
            int b = static_cast<int>(m.base);
            const AV bv = st.regs[b];
            if (b == kRsp) {
                v = av(K::HostPtr);
            } else if (bv.k == K::HostPtr || bv.k == K::GlobalPtr) {
                // Indexed or displaced host-side address computation
                // (stack arrays, rodata tables) stays host-side.
                v = av(bv.k);
            } else if (!m.hasIndex) {
                if (bv.k == K::HeapBase) {
                    v = av(K::HeapPtr);
                    v.delta = m.disp;
                } else if (bv.k == K::HeapPtr) {
                    v = bv;
                    clearLin(v);
                    v.delta += m.disp;
                    if (v.slack >= 0) {
                        v.slack -= m.disp;
                        if (v.slack < 0)
                            v.slack = -1;
                    }
                } else if (bv.k == K::U32) {
                    // value = base + disp exactly (no 64-bit wrap for
                    // disp >= 0; for disp < 0 the fact consumer guards).
                    // Record the direct base *and* its folded root:
                    // either may be the register GCC recycles before
                    // the compare (setReg severs dangling relations,
                    // including to the lea destination itself).
                    v = av(K::Top);
                    if (b != in.reg)
                        v.addLin(b, m.disp);
                    if (bv.linBase >= 0)
                        v.addLin(bv.linBase, bv.linOff + m.disp);
                    if (m.disp >= 0 && bv.slack >= m.disp)
                        v.slack = bv.slack - m.disp;
                }
            } else if (m.scale == 1 && bv.k == K::HeapBase &&
                       st.regs[static_cast<int>(m.index)].k == K::U32) {
                v = av(K::HeapPtr);
                v.delta = m.disp;
                int64_t s = st.regs[static_cast<int>(m.index)].slack;
                if (s >= 0) {
                    v.slack = s - m.disp;
                    if (v.slack < 0)
                        v.slack = -1;
                }
            }
        }
        setReg(st, in.reg, v);
        break;
      }

      case Mn::AluRR: {
        int dst = in.reg, src = in.rm;
        if (in.aluOp == AluOp::Cmp) {
            if (in.width == Width::W64) {
                if (st.regs[src].k == K::HeapSize)
                    setCmpFact(st, dst, false);
                else if (st.regs[dst].k == K::HeapSize)
                    setCmpFact(st, src, true);
            }
            break;
        }
        AV v = av(K::Top);
        if (in.aluOp == AluOp::Xor && dst == src) {
            v = av(K::U32);
        } else if (in.width == Width::W32) {
            v = av(K::U32);
        } else if (in.width == Width::W8 || in.width == Width::W16) {
            v = narrow(st, dst);
        } else if (in.aluOp == AluOp::Add) {
            const AV &a = st.regs[dst], &b = st.regs[src];
            if (a.k == K::HeapBase && b.k == K::U32) {
                v = av(K::HeapPtr);
                v.slack = b.slack;
            } else if (a.k == K::U32 && b.k == K::HeapBase) {
                v = av(K::HeapPtr);
                v.slack = a.slack;
            }
        }
        setReg(st, dst, v);
        break;
      }

      case Mn::AluImm: {
        if (in.aluOp == AluOp::Cmp)
            break;
        int dst = in.reg;
        if (dst == kRsp) {
            // Frame allocation: the only rsp arithmetic allowed.
            if (in.width == Width::W64 && in.aluOp == AluOp::Sub)
                st.rspAdj -= in.imm;
            else if (in.width == Width::W64 && in.aluOp == AluOp::Add)
                st.rspAdj += in.imm;
            else
                setReg(st, kRsp, av(K::Top));  // reports StackDiscipline
            break;
        }
        AV v = av(K::Top);
        const AV bv = st.regs[dst];
        if (in.width == Width::W32) {
            v = av(K::U32);
        } else if (in.width == Width::W8 || in.width == Width::W16) {
            v = narrow(st, dst);
        } else if (in.aluOp == AluOp::Add) {
            if (bv.k == K::HeapPtr) {
                v = bv;
                clearLin(v);
                v.delta += in.imm;
                if (v.slack >= 0) {
                    v.slack -= in.imm;
                    if (v.slack < 0)
                        v.slack = -1;
                }
            } else if (bv.k == K::HeapBase) {
                v = av(K::HeapPtr);
                v.delta = in.imm;
            } else if (bv.k == K::HostPtr || bv.k == K::GlobalPtr) {
                v = av(bv.k);  // host-side pointer walk stays host-side
            } else if (bv.k == K::U32) {
                v.addLin(bv.linBase, bv.linOff + in.imm);
                v.addLin(bv.linBase2, bv.linOff2 + in.imm);
                if (in.imm >= 0 && bv.slack >= in.imm)
                    v.slack = bv.slack - in.imm;
            }
        } else if (in.aluOp == AluOp::Sub) {
            if (bv.k == K::HeapPtr) {
                v = bv;
                clearLin(v);
                v.delta -= in.imm;
                if (v.slack >= 0)
                    v.slack += in.imm;
            } else if (bv.k == K::HostPtr || bv.k == K::GlobalPtr) {
                v = av(bv.k);
            } else if (bv.k == K::U32) {
                v.addLin(bv.linBase, bv.linOff - in.imm);
                v.addLin(bv.linBase2, bv.linOff2 - in.imm);
            }
        } else if (in.aluOp == AluOp::And && in.imm >= 0 &&
                   in.imm <= 0xffffffffll) {
            v = av(K::U32);
        }
        if (in.width == Width::W64 &&
            (in.aluOp == AluOp::Add || in.aluOp == AluOp::Sub)) {
            // A 64-bit add/sub of a constant shifts the value by a
            // known amount: registers holding lin aliases of dst rebase
            // onto the new value instead of losing the relation (GCC
            // likes `mov rax,rdx; add $4,rdx; cmp rdx,size` where the
            // access then goes through rax).
            int64_t d = in.aluOp == AluOp::Add ? in.imm : -in.imm;
            for (int j = 0; j < 16; j++) {
                if (j == dst)
                    continue;
                if (st.regs[j].linBase == dst)
                    st.regs[j].linOff -= d;
                if (st.regs[j].linBase2 == dst)
                    st.regs[j].linOff2 -= d;
            }
            if (st.flags.valid &&
                (st.flags.reg == dst || st.flags.reg2 == dst))
                st.flags.valid = false;
            dropLinTo(v, dst);
            st.regs[dst] = v;
            break;
        }
        setReg(st, dst, v);
        break;
      }

      case Mn::AluMem: {
        if (in.aluOp == AluOp::Cmp) {
            // The size operand may be the policy field itself or a
            // stack slot GCC spilled it to (slots keep the kind).
            if (in.width == Width::W64 &&
                ((mc == MC::PolicyObj && !in.mem.hasIndex &&
                  in.mem.disp == 8) ||
                 (mc == MC::Stack &&
                  slotLoad(st, in.mem).k == K::HeapSize)))
                setCmpFact(st, in.reg, false);
            break;
        }
        setReg(st, in.reg,
               in.width == Width::W32
                   ? av(K::U32)
                   : in.width == Width::W64 ? av(K::Top)
                                            : narrow(st, in.reg));
        break;
      }

      case Mn::AluMemDst: {
        if (in.aluOp == AluOp::Cmp) {
            if (in.width == Width::W64 &&
                ((mc == MC::PolicyObj && !in.mem.hasIndex &&
                  in.mem.disp == 8) ||
                 (mc == MC::Stack &&
                  slotLoad(st, in.mem).k == K::HeapSize)))
                setCmpFact(st, in.reg, true);
            break;
        }
        if (mc == MC::Stack)
            slotStore(st, in.mem, av(K::Top), 0);  // RMW: value unknown
        else if (mc == MC::PolicyObj)
            killHeapFacts(st);
        break;
      }
      case Mn::AluImmMem:
        if (in.aluOp != AluOp::Cmp) {
            if (mc == MC::Stack)
                slotStore(st, in.mem, av(K::Top), 0);
            else if (mc == MC::PolicyObj)
                killHeapFacts(st);
        }
        break;

      case Mn::Imul:
        setReg(st, in.reg,
               av(in.width == Width::W32 ? K::U32 : K::Top));
        break;

      case Mn::ShiftImm: {
        AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
        // A 64-bit logical right shift by >= 32 lands in u32 range.
        if (in.width == Width::W64 && in.shiftOp == x64::ShiftOp::Shr &&
            (in.imm & 63) >= 32)
            v = av(K::U32);
        if (in.mem.present) {
            if (mc == MC::Stack)
                slotStore(st, in.mem, av(K::Top), 0);
            else if (mc == MC::PolicyObj)
                killHeapFacts(st);
        } else {
            setReg(st, in.reg, v);
        }
        break;
      }
      case Mn::ShiftCl:
        if (in.mem.present) {
            if (mc == MC::Stack)
                slotStore(st, in.mem, av(K::Top), 0);
            else if (mc == MC::PolicyObj)
                killHeapFacts(st);
        } else {
            setReg(st, in.reg,
                   av(in.width == Width::W32 ? K::U32 : K::Top));
        }
        break;

      case Mn::Neg:
      case Mn::Not:
        if (in.mem.present) {
            if (mc == MC::Stack)
                slotStore(st, in.mem, av(K::Top), 0);
            else if (mc == MC::PolicyObj)
                killHeapFacts(st);
        } else {
            setReg(st, in.reg,
                   in.width == Width::W32
                       ? av(K::U32)
                       : in.width == Width::W64 ? av(K::Top)
                                                : narrow(st, in.reg));
        }
        break;

      case Mn::Popcnt:
        setReg(st, in.reg, av(K::U32));
        break;

      case Mn::Mul:
      case Mn::Div:
      case Mn::Idiv: {
        AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
        setReg(st, 0, v);  // rax
        setReg(st, 2, v);  // rdx
        break;
      }
      case Mn::Cdq:
        setReg(st, 2, av(K::U32));  // 32-bit write zero-extends
        break;
      case Mn::Cqo:
        setReg(st, 2, av(K::Top));
        break;
      case Mn::Cdqe:
        setReg(st, 0, av(K::Top));
        break;

      case Mn::Movzx:
        setReg(st, in.reg, av(K::U32));
        break;
      case Mn::Movsx:
        setReg(st, in.reg,
               av(in.width == Width::W32 ? K::U32 : K::Top));
        break;
      case Mn::Movsxd:
        setReg(st, in.reg, av(K::Top));
        break;

      case Mn::Setcc:
        if (in.mem.present) {
            if (mc == MC::Stack)
                slotStore(st, in.mem, av(K::Top), 0);
        } else {
            setReg(st, in.reg, narrow(st, in.reg));
        }
        break;

      case Mn::Cmovcc:
        if (in.width == Width::W32)
            setReg(st, in.reg, av(K::U32));
        else if (in.mem.present)
            setReg(st, in.reg, joinAV(st.regs[in.reg], av(K::Top)));
        else
            setReg(st, in.reg,
                   joinAV(st.regs[in.reg], st.regs[in.rm]));
        break;

      case Mn::Xchg: {
        AV a = st.regs[in.reg], b = st.regs[in.rm];
        if (in.width != Width::W64) {
            a = av(in.width == Width::W32 ? K::U32 : K::Top);
            b = a;
        }
        setReg(st, in.reg, b);
        setReg(st, in.rm, a);
        break;
      }

      case Mn::Cvttsd2si:
        setReg(st, in.reg,
               av(in.width == Width::W32 ? K::U32 : K::Top));
        break;
      case Mn::MovqFromXmm:
        setReg(st, in.rm,
               av(in.width == Width::W32 ? K::U32 : K::Top));
        break;

      case Mn::Push:
        st.rspAdj -= 8;
        if (!st.rspLost)
            st.slots[st.rspAdj] = st.regs[in.reg];
        break;
      case Mn::Pop: {
        AV v = av(K::Top);
        if (!st.rspLost) {
            auto it = st.slots.find(st.rspAdj);
            if (it != st.slots.end())
                v = it->second;
            st.slots.erase(st.rspAdj);
        }
        st.rspAdj += 8;
        setReg(st, in.reg, v);
        break;
      }

      case Mn::Call: {
        const Reloc* r = relocIn(i);
        if (record_) {
            int64_t t = targetOf(i);
            if (r || (inRange(t) &&
                      offToIdx_.count(static_cast<size_t>(t))))
                fr_->calls++;  // reloc-resolved or self-recursion
            else
                violation(off, Rule::W2cCfgResolved, in.text(),
                          "direct call resolves to no relocation or "
                          "in-function target");
        }
        // GCC's IPA-RA keeps caller values live in volatile registers a
        // local callee provably never writes; clobber only the callee's
        // actual effect set, re-derived from its own bytes, when the
        // target resolves to a fully analyzable local function. Anything
        // else (externals, unanalyzable bodies) gets the full volatile
        // set under the documented host-ABI assumption.
        uint32_t mask = kVolatileMask;
        uint16_t csec;
        uint64_t coff;
        if (clobbers_ && r && clobbers_->resolveCall(*r, &csec, &coff)) {
            ClobberIndex::Effects e = clobbers_->effectsAt(csec, coff);
            if (e.known) {
                mask = e.regs;
                // A local callee touching %gs inside a non-Segue kernel
                // would be an unchecked sandbox access: the callee is
                // verified under *its own* policy only if it carries a
                // policy mangling, which gs-clean plain helpers do not.
                if (e.usesGs && !usesGs_ && record_)
                    violation(off, Rule::W2cGsAccess, in.text(),
                              "call target touches %gs in a non-segue "
                              "policy kernel");
            }
        }
        clobberRegs(st, mask);
        break;
      }
      case Mn::CallReg:
        if (record_)
            violation(off, Rule::W2cCfgResolved, in.text(),
                      "indirect call in a policy kernel");
        clobberVolatile(st);
        break;
      case Mn::JmpReg:
        if (record_)
            violation(off, Rule::W2cCfgResolved, in.text(),
                      "indirect jump in a policy kernel");
        break;
      case Mn::Jmp:
        if (record_ && leavesViaReloc(i))
            fr_->calls++;  // relocation-resolved tail call
        break;

      default:
        break;  // flags-only, SSE-internal, nop, ret, jcc
    }

    if (!factSet_ && !preservesFlags(in.mn))
        st.flags.valid = false;
}

}  // namespace

const char*
name(W2cPolicy p)
{
    switch (p) {
      case W2cPolicy::None: return "none";
      case W2cPolicy::Native: return "native";
      case W2cPolicy::BaseAdd: return "baseadd";
      case W2cPolicy::Segue: return "segue";
      case W2cPolicy::Bounds: return "bounds";
      case W2cPolicy::SegueBounds: return "segue+bounds";
    }
    return "?";
}

W2cPolicy
policyOf(const std::string& mangled)
{
    // Length-prefixed type tokens are substring-safe against each
    // other ("12BoundsPolicy" never occurs inside a mangling of
    // SegueBoundsPolicy).
    static const struct
    {
        const char* token;
        W2cPolicy policy;
    } kTokens[] = {
        {"17SegueBoundsPolicy", W2cPolicy::SegueBounds},
        {"12NativePolicy", W2cPolicy::Native},
        {"13BaseAddPolicy", W2cPolicy::BaseAdd},
        {"11SeguePolicy", W2cPolicy::Segue},
        {"12BoundsPolicy", W2cPolicy::Bounds},
    };
    for (const auto& t : kTokens)
        if (mangled.find(t.token) != std::string::npos)
            return t.policy;
    return W2cPolicy::None;
}

namespace {

/**
 * A by-value class return (e.g. XmlStats, 32 bytes) arrives via a
 * hidden sret pointer in %rdi, shifting the policy reference to %rsi.
 * In the mangling the return type follows the template-argument list:
 * ...I<policy>E..E<ret><params>; a class return starts with 'N'.
 */
bool
returnsViaSret(const std::string& mangled, W2cPolicy p)
{
    const char* tok = nullptr;
    switch (p) {
      case W2cPolicy::Native: tok = "12NativePolicy"; break;
      case W2cPolicy::BaseAdd: tok = "13BaseAddPolicy"; break;
      case W2cPolicy::Segue: tok = "11SeguePolicy"; break;
      case W2cPolicy::Bounds: tok = "12BoundsPolicy"; break;
      case W2cPolicy::SegueBounds: tok = "17SegueBoundsPolicy"; break;
      case W2cPolicy::None: return false;
    }
    size_t pos = mangled.find(tok);
    if (pos == std::string::npos)
        return false;
    pos += std::string(tok).size();
    while (pos < mangled.size() && mangled[pos] == 'E')
        pos++;
    return pos < mangled.size() && mangled[pos] == 'N';
}

}  // namespace

std::string
ObjReport::summary() const
{
    char buf[512];
    std::string s;
    std::snprintf(buf, sizeof buf,
                  "sfi-verify (elf): %zu violation(s)\n",
                  violations.size());
    s += buf;
    for (const auto& v : violations) {
        std::snprintf(buf, sizeof buf, "  %s+0x%llx [%s] %s — %s\n",
                      v.func.empty() ? "" : (v.func + " ").c_str(),
                      static_cast<unsigned long long>(v.offset),
                      name(v.rule), v.insn.c_str(), v.detail.c_str());
        s += buf;
    }
    uint64_t heap = 0, host = 0, checked = 0, calls = 0;
    for (const auto& f : functions) {
        heap += f.heapAccesses;
        host += f.hostAccesses;
        checked += f.boundsChecked;
        calls += f.calls;
    }
    std::snprintf(buf, sizeof buf,
                  "  kernels: %zu (%llu verified, %llu exempt), "
                  "%llu instructions\n",
                  functions.size(),
                  static_cast<unsigned long long>(verified),
                  static_cast<unsigned long long>(exempt),
                  static_cast<unsigned long long>(instructions));
    s += buf;
    std::snprintf(buf, sizeof buf,
                  "  accesses: heap %llu (bounds-checked %llu), host "
                  "%llu; resolved calls %llu\n",
                  static_cast<unsigned long long>(heap),
                  static_cast<unsigned long long>(checked),
                  static_cast<unsigned long long>(host),
                  static_cast<unsigned long long>(calls));
    s += buf;
    return s;
}

Result<ObjReport>
checkObject(const ElfObject& obj, const ObjCheckOptions& opts)
{
    ObjReport rep;
    uint64_t checked = 0;
    ClobberIndex clobbers(obj);  // shared across the object's kernels
    for (const FuncSlice& f : obj.functions()) {
        W2cPolicy p = policyOf(f.name);
        if (p == W2cPolicy::None)
            continue;
        ObjFunctionResult fr;
        fr.name = f.name;
        fr.policy = p;
        if (p == W2cPolicy::Native) {
            fr.exempt = true;
            rep.exempt++;
            rep.functions.push_back(std::move(fr));
            continue;
        }
        if (!opts.policyFilter.empty() &&
            std::string(name(p)).find(opts.policyFilter) ==
                std::string::npos)
            continue;
        if (f.size == 0 || f.bytes == nullptr)
            return Status::error("policy kernel '" + f.name +
                                 "' has no bytes to verify");
        ObjFnChecker fc(obj, f, p, returnsViaSret(f.name, p), &clobbers,
                        &rep, &fr);
        fc.run();
        if (fr.violations == 0)
            rep.verified++;
        rep.functions.push_back(std::move(fr));
        checked++;
    }
    // Zero matches is not an error here: one object of a multi-object
    // audit may legitimately hold no kernels (heap.cc.o). The caller is
    // responsible for refusing a vacuous pass across the whole audit
    // (the CLI exits 3 when *no* object yields an analyzed kernel).
    (void)checked;
    return rep;
}

}  // namespace sfi::verify
