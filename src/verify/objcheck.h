/**
 * @file
 * Whole-binary static SFI verification of the compiler-emitted w2c
 * policy kernels (the ELF-object half of the verifier; the JIT half is
 * checker.h).
 *
 * The build compiles every workload kernel once per SFI policy
 * (w2c/policy.h); the policies constrain the code GCC may emit for a
 * heap access (pinned u32 offsets, single-register %gs operands). This
 * checker closes the loop: it slices each policy-templated kernel out
 * of the build's *own* object files (elf/object.h), reconstructs its
 * CFG with relocation-resolved call targets, and abstract-interprets
 * the x86-64 to prove the per-policy contract on the compiler's actual
 * output — the VeriWasm discipline applied at the wasm2c boundary
 * instead of a JIT boundary.
 *
 * Per-policy proof obligations (stable rule ids):
 *
 *   SeguePolicy / SegueBoundsPolicy
 *     w2c.gs_access       every heap access is exactly `%gs:(reg)` with
 *                         a provably zero-extended u32 register, no
 *                         index, no displacement; %gs never appears in
 *                         kernels of other policies.
 *   BoundsPolicy / SegueBoundsPolicy
 *     w2c.bounds.dominate every heap access is dominated by a compare
 *                         of its offset (plus access extent) against
 *                         the policy's `size` field, branching to a
 *                         noreturn trap.
 *   BaseAddPolicy
 *     w2c.heap_escape     every heap access is `[base + zext(u32)*1 +
 *                         disp>=0]` — boundable inside the 4 GiB
 *                         reservation + 4 GiB guard.
 *   all policies
 *     w2c.cfg.resolved    no indirect calls or jumps; every direct
 *                         call/tail-call resolves through a relocation
 *                         or lands on a decoded instruction boundary.
 *     w2c.heap_escape     any access through a value the analysis
 *                         cannot prove is host memory (stack, the
 *                         policy object, rip-relative globals) or a
 *                         policy-shaped heap address.
 *
 * NativePolicy kernels are the native baseline and the single explicit
 * exemption: they are inventoried but not analyzed.
 *
 * Soundness assumptions (documented, mirrored in DESIGN.md): heap
 * stores do not alias host memory the analysis tracks (the sandbox
 * invariant this verifier itself establishes), and called helpers
 * follow the SysV ABI (callee-saved registers preserved; policy-tagged
 * callees are themselves verified). Volatile registers are refined
 * further: local callees' clobber sets are re-derived from their own
 * bytes (GCC's IPA-RA keeps caller values live in volatiles the callee
 * never writes), failing closed to the full caller-saved set for
 * external or unanalyzable targets. External (libc) callees are
 * additionally assumed not to touch %gs.
 *
 * Fails closed: undecodable bytes, unclassifiable memory operands, and
 * unresolved control flow are violations, not warnings.
 */
#ifndef SFIKIT_VERIFY_OBJCHECK_H_
#define SFIKIT_VERIFY_OBJCHECK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"
#include "elf/object.h"
#include "verify/checker.h"

namespace sfi::verify {

/** The SFI policy a kernel instantiation was compiled against. */
enum class W2cPolicy : uint8_t {
    None,  ///< not a policy-templated symbol
    Native,
    BaseAdd,
    Segue,
    Bounds,
    SegueBounds,
};

const char* name(W2cPolicy p);

/**
 * Detects the policy template argument from a mangled symbol name via
 * the length-prefixed type tokens ("12BoundsPolicy", ...), which are
 * substring-safe against each other. None = not a policy kernel.
 */
W2cPolicy policyOf(const std::string& mangled);

/** Per-function verification outcome (one policy instantiation). */
struct ObjFunctionResult
{
    std::string name;  ///< mangled symbol
    W2cPolicy policy = W2cPolicy::None;
    uint64_t instructions = 0;
    uint64_t basicBlocks = 0;
    uint64_t heapAccesses = 0;    ///< accesses proven under the policy rule
    uint64_t hostAccesses = 0;    ///< stack / policy-object / global accesses
    uint64_t boundsChecked = 0;   ///< heap accesses proven by a dominating check
    uint64_t calls = 0;           ///< relocation-resolved direct (tail) calls
    bool exempt = false;          ///< NativePolicy: inventoried, not analyzed
    uint64_t violations = 0;
};

struct ObjCheckOptions
{
    /**
     * Substring filter on the policy name ("segue", "bounds", ...);
     * empty = all policies. Exempt NativePolicy entries are always
     * inventoried regardless of the filter.
     */
    std::string policyFilter;
};

struct ObjReport
{
    std::vector<Violation> violations;  ///< func holds the mangled symbol
    std::vector<ObjFunctionResult> functions;
    uint64_t instructions = 0;  ///< decoded across all checked kernels
    uint64_t verified = 0;      ///< non-exempt kernels with no violations
    uint64_t exempt = 0;        ///< NativePolicy instantiations

    bool ok() const { return violations.empty(); }
    /** Multi-line human summary (violations first, then totals). */
    std::string summary() const;
};

/**
 * Verifies every policy-templated kernel in @p obj. Returns an error
 * status — distinct from a verification failure — when a kernel's
 * bytes cannot be sliced. An object with no matching kernels yields an
 * ok report with an empty function list: the vacuous-pass guard
 * (sfi-verify exit code 3) aggregates across all objects of an audit,
 * since one object of several may legitimately hold no kernels.
 */
Result<ObjReport> checkObject(const elf::ElfObject& obj,
                              const ObjCheckOptions& opts = {});

}  // namespace sfi::verify

#endif  // SFIKIT_VERIFY_OBJCHECK_H_
