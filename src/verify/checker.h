/**
 * @file
 * Static SFI checker for JIT-emitted machine code (the VeriWasm role).
 *
 * `checkFunction` linearly disassembles one compiled function, recovers
 * basic blocks, and abstract-interprets register/flag/frame-slot state
 * to prove the per-strategy contract of `jit::CompilerConfig`:
 *
 *  - Segue modes: every heap load/store goes through a %gs-prefixed
 *    operand (loads, stores, or both per the load/store split); under
 *    LFI's untrusted-index semantics the 0x67 address-size override
 *    must also be present (the hardware truncation of Figure 1c).
 *  - BaseReg modes: every heap access is `[%r15 + idx*1 + disp>=0]`
 *    (a 33-bit-boundable effective address inside the guard region);
 *    under untrusted-index semantics the index must be provably
 *    zero-extended (the explicit `mov r32, r32` of Figure 1b).
 *  - BoundsCheck/SegueBounds: every heap access is dominated by the
 *    `lea idx+k; cmp mem_size; ja trap` sequence with k covering the
 *    access extent.
 *  - Pinned registers (%r14 ctx, %r15 heap base when pinned, %r13 LFI
 *    code base) are never written; %rsp/%rbp only move through the
 *    recognized prologue/epilogue shapes.
 *  - Under CfiMode::Lfi every indirect call/jump target is either a
 *    function pointer loaded directly from the (trusted) JitContext or
 *    has been masked into the code region (`sub %r13; mov r32,r32;
 *    add %r13`), and plain `ret` is forbidden.
 *  - All other memory operands must classify as frame (%rbp/%rsp),
 *    context (%r14, in-bounds displacement), or a pointer loaded from
 *    the context (globals/table indirections).
 *
 * Unsandboxed + no-CFI code is exempt from SFI rules (it is the
 * "native" baseline); only decodability is checked.
 *
 * The checker fails closed: undecodable bytes, unclassifiable memory
 * operands, and branch targets that miss instruction boundaries are
 * violations, not warnings.
 */
#ifndef SFIKIT_VERIFY_CHECKER_H_
#define SFIKIT_VERIFY_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "jit/compiler.h"
#include "jit/strategy.h"
#include "verify/insn.h"

namespace sfi::verify {

/** Violation rule ids (stable strings via name()). */
enum class Rule : uint8_t {
    DecodeError,        ///< bytes outside the modeled subset
    BadBranchTarget,    ///< rel32 lands inside an instruction
    PinnedWrite,        ///< %r14 / pinned %r15 / LFI %r13 written
    StackDiscipline,    ///< %rsp/%rbp written outside prologue shapes
    SegueLoadNoGs,      ///< heap load without %gs under a Segue mode
    SegueStoreNoGs,     ///< heap store without %gs under a Segue mode
    GsUnexpected,       ///< %gs access in a non-Segue path
    SegueIndexNotTruncated,  ///< untrusted index without 0x67 (Fig 1c)
    BaseRegShape,       ///< heap access not [%r15 + idx*1 + disp>=0]
    BaseRegIndexNotTruncated,  ///< untrusted index not provably u32
    BoundsMissing,      ///< access not dominated by limit check
    MemUnproven,        ///< memory operand classifies as nothing safe
    LfiCallUnmasked,    ///< indirect call target not masked/trusted
    LfiJmpUnmasked,     ///< indirect jump target not masked/trusted
    LfiRetUnprotected,  ///< plain ret under LFI
    EntryContract,      ///< entry stub breaks the transition contract
    TierThunk,          ///< tiered dispatch/resolver/interp thunk breaks
                        ///< its contract (checkTierStub)

    // Rules of the ELF object checker (objcheck.h): the compiler-
    // emitted w2c policy kernels, keyed off the mangled policy
    // template argument.
    W2cGsAccess,       ///< Segue kernels: heap access not a proven
                       ///< %gs:[zext-u32] form (or stray %gs use)
    W2cBoundsDominate, ///< Bounds kernels: access without a dominating
                       ///< limit compare covering its extent
    W2cCfgResolved,    ///< indirect or unresolvable control flow
    W2cHeapEscape,     ///< access through an unproven pointer value
};

const char* name(Rule r);

/**
 * Renders up to 12 raw bytes starting at @p off as "48 8b 05 .." for
 * decode-error diagnostics (both the JIT and the ELF object paths).
 */
std::string hexWindow(const uint8_t* code, size_t size, uint64_t off);

struct Violation
{
    uint64_t offset = 0;  ///< byte offset of the instruction
    Rule rule = Rule::MemUnproven;
    std::string func;    ///< containing function (mangled), if known
    std::string insn;    ///< decoded text (or hex for decode errors)
    std::string detail;  ///< human explanation
};

/** Proof statistics: what the checker classified and how it proved it. */
struct Stats
{
    uint64_t functions = 0;
    uint64_t instructions = 0;
    uint64_t bytes = 0;
    uint64_t basicBlocks = 0;

    uint64_t frameAccesses = 0;    ///< [%rbp/%rsp ± d] spill slots
    uint64_t ctxAccesses = 0;      ///< [%r14 + d] context fields
    uint64_t trustedAccesses = 0;  ///< via pointers loaded from ctx
    uint64_t heapGs = 0;           ///< %gs-prefixed heap accesses
    uint64_t heapGsEa32 = 0;       ///< ... with the 0x67 truncation
    uint64_t heapBaseReg = 0;      ///< [%r15 + idx + d] heap accesses
    uint64_t heapUnsandboxed = 0;  ///< heap accesses in exempt code
    uint64_t boundsChecked = 0;    ///< accesses proven by a limit check
    uint64_t boundsStatic = 0;     ///< accesses proven below initial size
    uint64_t indexProvenU32 = 0;   ///< heap index locally proven u32
    uint64_t indexAssumedU32 = 0;  ///< heap index trusted per Wasm types

    uint64_t maskedIndirects = 0;   ///< LFI-masked call/jmp targets
    uint64_t trustedIndirects = 0;  ///< targets loaded from JitContext
    uint64_t protectedReturns = 0;  ///< LFI pop/mask/jmp returns

    uint64_t entryStubs = 0;  ///< entry stubs proven under entry.contract
    uint64_t tierStubs = 0;   ///< tier thunks proven under tier.thunk

    void merge(const Stats& o);
};

struct Report
{
    std::vector<Violation> violations;
    Stats stats;

    bool ok() const { return violations.empty(); }
    /** Multi-line human summary (violations first, then stats). */
    std::string summary() const;
};

/**
 * Verifies one compiled function's bytes under @p cfg. Offsets in the
 * report are relative to @p code; pass @p base_offset to bias them
 * (e.g. a function's offset inside the module code buffer).
 */
Report checkFunction(const uint8_t* code, size_t size,
                     const jit::CompilerConfig& cfg,
                     uint64_t base_offset = 0,
                     uint64_t min_mem_bytes = 0);

/**
 * Verifies one entry/exit stub under rule id `entry.contract`. The
 * stubs are host-side transition code that *establishes* the pins, so
 * the sandboxed-code rules don't apply; instead a dedicated linear
 * checker proves the transition contract (§6.4.1, lean tiers):
 *
 *  - every instruction decodes and belongs to the small stub subset
 *    (push/pop, reg-reg moves, context/arg-slot loads, one rsp
 *    adjustment pair, exactly one indirect call, a trailing ret);
 *  - the JitContext pointer is captured from %rdi before any
 *    context-relative load, and the call target is the host-passed
 *    %rsi (never a value fabricated inside the stub);
 *  - every pinned register the configuration requires (%r15 heap base,
 *    %r13 LFI code base) is loaded from the context before the call —
 *    i.e. before the first sandboxed instruction can run;
 *  - any callee-saved register the stub or the sandbox may write is
 *    pushed first and popped in exact reverse order on the (single)
 *    exit edge, with the rsp adjustment balanced — callee-saved state
 *    is restored on every return path;
 *  - the call site is 16-byte aligned per the System-V ABI.
 *
 * Fails closed: unknown bytes or any instruction outside the subset
 * are violations.
 */
Report checkEntryStub(const uint8_t* code, size_t size,
                      const jit::CompilerConfig& cfg,
                      uint64_t base_offset = 0);

/** The three per-function thunk shapes of the tiered stub set. */
enum class TierStubKind : uint8_t {
    Dispatch,  ///< load slot from ctx->funcEntries, jmp
    Resolver,  ///< save args, call ctx->tierFn, restore, tail-jump
    Interp,    ///< marshal args to the frame, call ctx->interpFn, ret
};

/**
 * Verifies one tiered thunk under rule id `tier.thunk` (fail-closed,
 * linear, like checkEntryStub). Proven properties, per kind:
 *
 *  - only the thunk's instruction subset appears; pinned registers
 *    (%r14 ctx, %r15 heap base when pinned) are never written;
 *  - every memory access is a JitContext field, a funcEntries slot
 *    (pointer chain loaded from the context), or the thunk's own
 *    %rsp-relative frame within its tracked adjustment;
 *  - Dispatch: the jump target is a ctx->funcEntries slot value — the
 *    thunk can only land on runtime-published tier entries;
 *  - Resolver: the single call target is ctx->tierFn, the argument
 *    registers are saved before and restored (exact reverse order)
 *    after, the frame is balanced, the call site is 16-byte aligned,
 *    and the tail-jump target is tierFn's return value;
 *  - Interp: the single call target is ctx->interpFn, arg stores stay
 *    inside the frame, the frame is balanced, the call site is 16-byte
 *    aligned, and the thunk returns (no other control flow).
 */
Report checkTierStub(const uint8_t* code, size_t size, TierStubKind kind,
                     const jit::CompilerConfig& cfg,
                     uint64_t base_offset = 0);

/**
 * Verifies every defined function of a compiled module, the trap stub
 * region after the last function, and — under rule `entry.contract` —
 * both entry trampolines (generic and typed direct), which live at the
 * end of the code buffer so their prologues could be trimmed to the
 * observed register contract.
 */
Report checkModule(const jit::CompiledModule& cm);

}  // namespace sfi::verify

#endif  // SFIKIT_VERIFY_CHECKER_H_
