#include "verify/checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <unordered_map>
#include <vector>

#include "verify/decoder.h"

namespace sfi::verify {

namespace {

using jit::CfiMode;
using jit::CompilerConfig;
using jit::MemStrategy;
using x64::AluOp;
using x64::Cond;
using x64::Reg;
using x64::Seg;
using x64::Width;

// Hardware register numbers for the pinned/special registers.
constexpr int kRsp = 4;
constexpr int kRbp = 5;
constexpr int kCode = 13;  // %r13: LFI code base
constexpr int kCtx = 14;   // %r14: JitContext
constexpr int kHeap = 15;  // %r15: heap base when pinned

// JitContext layout facts the checker relies on (see jit/context.h).
constexpr int32_t kOffMemSize = 8;
constexpr int32_t kCtxBytes = static_cast<int32_t>(sizeof(jit::JitContext));

int
sizeBytes(Width w)
{
    switch (w) {
      case Width::W8: return 1;
      case Width::W16: return 2;
      case Width::W32: return 4;
      case Width::W64: return 8;
    }
    return 8;
}

/**
 * Abstract value kinds. The lattice is flat: unequal non-Top values
 * join to Top.
 */
enum class K : uint8_t {
    Top,         ///< anything (untrusted 64-bit value)
    U32,         ///< provably zero-extended 32-bit value
    Trusted,     ///< pointer loaded directly from a JitContext field
    DiffCode,    ///< x - %r13 (LFI mask, step 1)
    DiffCode32,  ///< low 32 bits of a DiffCode value (step 2)
    CodeMasked,  ///< %r13 + DiffCode32: a valid LFI branch target
    BoundsLea,   ///< idxReg + ext, the lea feeding a limit compare
};

/** "No max-value bound known" sentinel for AV::bound. */
constexpr uint64_t kNoBound = ~0ull;

struct AV
{
    K k = K::Top;
    uint8_t idx = 0;   // BoundsLea: index register
    int32_t ext = 0;   // BoundsLea: constant addend
    /**
     * Max possible runtime value, tracked independently of the kind
     * lattice (a Top value can still have a known bound, and two U32
     * values with different bounds still join as U32). Feeds the
     * static half of the bounds.dominate rule: bound + disp + bytes
     * <= initial memory size needs no dynamic check.
     */
    uint64_t bound = kNoBound;

    bool
    operator==(const AV& o) const
    {
        return k == o.k && idx == o.idx && ext == o.ext &&
               bound == o.bound;
    }
    bool operator!=(const AV& o) const { return !(*this == o); }
};

AV
av(K k)
{
    return AV{k, 0, 0, kNoBound};
}

AV
avB(K k, uint64_t bound)
{
    return AV{k, 0, 0, bound};
}

AV
joinAV(const AV& a, const AV& b)
{
    // Kind and bound join independently: collapsing the kind to Top
    // must not lose an agreeing bound, and a disagreeing bound must
    // not collapse agreeing kinds (the LFI truncation proofs rely on
    // U32 surviving joins).
    AV r;
    if (a.k == b.k && a.idx == b.idx && a.ext == b.ext)
        r = a;
    else
        r = av(K::Top);
    // Max-value claims widen rather than join by max: a strictly
    // growing incoming bound (a loop counter stepping 1, 2, 3, ...)
    // would otherwise crawl the fixpoint toward 2^32 one step at a
    // time. @p a is the accumulated state, @p b the incoming one.
    r.bound = b.bound <= a.bound ? a.bound : kNoBound;
    return r;
}

/** The flags fact set by `cmp BoundsLea, ctx->memSize`. */
struct FlagFact
{
    bool valid = false;
    uint8_t idx = 0;
    int32_t ext = 0;

    bool
    operator==(const FlagFact& o) const
    {
        return valid == o.valid && (!valid || (idx == o.idx && ext == o.ext));
    }
};

/** regHome sentinel: register has no known frame-slot alias. */
constexpr int32_t kNoHome = INT32_MIN;

struct State
{
    AV regs[16];
    /**
     * regBound[r] = k (>= 0) proves r + k <= ctx->memSize on this path
     * (established by the fallthrough of `cmp lea; ja trap`); -1 =
     * none. The per-slot mirror slotBound carries the same proof for a
     * spilled copy of the value, and regHome[r] records which frame
     * slot register r provably equals (its "home"), so a fact recorded
     * against either representative reaches the other. This is how one
     * dominating check covers a later access that re-loads the same
     * local: check on the register -> fact lands on its home slot ->
     * the reload picks it back up.
     */
    int64_t regBound[16];
    /** Frame slot the register was last loaded from / stored to. */
    int32_t regHome[16];
    /**
     * true: register provably equals its home slot; false: register is
     * provably <= the slot (after a 32-bit self-truncation). Facts may
     * be read through the home either way, but written through it only
     * when exact — a fact about a truncated value says nothing about
     * the wider value still sitting in the slot.
     */
    bool regHomeEq[16];
    /** slotBound[disp] = k proves mem[rbp+disp] + k <= ctx->memSize. */
    std::map<int32_t, int64_t> slotBound;
    FlagFact flags;
    /** rbp-relative frame slots (spills/locals), disp -> value. */
    std::map<int32_t, AV> slots;

    State()
    {
        for (int r = 0; r < 16; r++) {
            regBound[r] = -1;
            regHome[r] = kNoHome;
            regHomeEq[r] = false;
        }
    }

    /** Joins @p o into *this; returns true when anything changed. */
    bool
    joinWith(const State& o)
    {
        bool changed = false;
        for (int i = 0; i < 16; i++) {
            AV j = joinAV(regs[i], o.regs[i]);
            if (j != regs[i]) {
                regs[i] = j;
                changed = true;
            }
            int64_t nb = (regBound[i] < 0 || o.regBound[i] < 0)
                             ? -1
                             : std::min(regBound[i], o.regBound[i]);
            if (nb != regBound[i]) {
                regBound[i] = nb;
                changed = true;
            }
            if (regHome[i] != o.regHome[i] && regHome[i] != kNoHome) {
                regHome[i] = kNoHome;
                regHomeEq[i] = false;
                changed = true;
            } else if (regHome[i] != kNoHome && regHomeEq[i] &&
                       !o.regHomeEq[i]) {
                regHomeEq[i] = false;
                changed = true;
            }
        }
        // Intersect the slot facts, keeping the weaker proof.
        for (auto it = slotBound.begin(); it != slotBound.end();) {
            auto oi = o.slotBound.find(it->first);
            if (oi == o.slotBound.end()) {
                it = slotBound.erase(it);
                changed = true;
                continue;
            }
            if (oi->second < it->second) {
                it->second = oi->second;
                changed = true;
            }
            ++it;
        }
        if (!(flags == o.flags) && flags.valid) {
            flags.valid = false;
            changed = true;
        }
        for (auto it = slots.begin(); it != slots.end();) {
            auto oi = o.slots.find(it->first);
            AV j = oi == o.slots.end()
                       ? av(K::Top)
                       : joinAV(it->second, oi->second);
            if (j.k == K::Top && j.bound == kNoBound) {
                it = slots.erase(it);
                changed = true;
                continue;
            }
            if (j != it->second) {
                it->second = j;
                changed = true;
            }
            ++it;
        }
        return changed;
    }
};

/** How a memory operand classifies under the abstract state. */
enum class MC : uint8_t {
    Frame,     ///< [%rbp/%rsp ± d]
    Ctx,       ///< [%r14 + d], d within JitContext
    Trusted,   ///< base register holds a context-loaded pointer
    HeapGs,    ///< %gs-prefixed heap access
    HeapBase,  ///< [%r15 + ...] with %r15 pinned
    Bad,       ///< nothing provable
};

struct Block
{
    size_t first = 0;  ///< index of first insn
    size_t last = 0;   ///< index one past the last insn
    std::vector<size_t> succs;
    State in;
    bool visited = false;
};

class FnChecker
{
  public:
    FnChecker(const uint8_t* code, size_t size, const CompilerConfig& cfg,
              uint64_t base, Report* rep, uint64_t min_mem_bytes)
        : code_(code), size_(size), cfg_(cfg), base_(base), rep_(rep),
          minMem_(min_mem_bytes)
    {
        fullyExempt_ = cfg.mem == MemStrategy::Unsandboxed &&
                       cfg.cfi == CfiMode::None;
        memExempt_ = cfg.mem == MemStrategy::Unsandboxed;
        pinHeap_ = !fullyExempt_ && cfg.needsHeapBaseReg();
        lfi_ = cfg.cfi == CfiMode::Lfi;
    }

    void
    run()
    {
        rep_->stats.bytes += size_;
        if (!decodeAll())
            return;
        if (!buildBlocks())
            return;
        analyze();
        record();
    }

  private:
    void
    violation(uint64_t off, Rule rule, const std::string& insn,
              std::string detail)
    {
        rep_->violations.push_back(
            {base_ + off, rule, std::string(), insn,
             std::move(detail)});
    }

    /**
     * True for decodable forms `x64::Assembler` never emits — they
     * exist for the ELF object checker (objcheck.h). The JIT path
     * fails closed on them instead of modeling their effects.
     */
    static bool
    outsideJitSubset(const Insn& in)
    {
        switch (in.mn) {
          case Mn::Xchg: case Mn::AluMemDst: case Mn::AluImmMem:
          case Mn::TestMem: case Mn::TestImm: case Mn::Mul:
          case Mn::Bt: case Mn::Cdqe: case Mn::Comisd:
          case Mn::MovVecLoad: case Mn::MovVecStore:
          case Mn::MovVecRR: case Mn::Pxor:
            return true;
          default:
            break;
        }
        if (!in.mem.present)
            return false;
        if (in.mem.ripRel)
            return true;
        switch (in.mn) {  // memory forms the Assembler can produce
          case Mn::Load: case Mn::Store: case Mn::StoreImm:
          case Mn::Lea: case Mn::AluMem: case Mn::MovsdLoad:
          case Mn::MovsdStore: case Mn::Nop:
            return false;
          default:
            return true;
        }
    }

    bool
    decodeAll()
    {
        size_t off = 0;
        while (off < size_) {
            Insn in;
            if (!decode(code_ + off, size_ - off, &in)) {
                violation(off, Rule::DecodeError,
                          hexWindow(code_, size_, off),
                          "undecodable instruction (fail closed)");
                return false;
            }
            if (outsideJitSubset(in)) {
                violation(off, Rule::DecodeError, in.text(),
                          "instruction form outside the JIT-emitted "
                          "subset (fail closed)");
                return false;
            }
            offToIdx_[off] = insns_.size();
            offs_.push_back(off);
            insns_.push_back(in);
            off += in.len;
        }
        rep_->stats.instructions += insns_.size();
        return true;
    }

    /** Branch target offset, or -1 for register/indirect forms. */
    int64_t
    targetOf(size_t i) const
    {
        const Insn& in = insns_[i];
        if (!in.hasRel)
            return -1;
        return static_cast<int64_t>(offs_[i]) + in.len + in.rel;
    }

    bool
    inRange(int64_t t) const
    {
        return t >= 0 && static_cast<uint64_t>(t) < size_;
    }

    bool
    buildBlocks()
    {
        std::vector<uint8_t> leader(insns_.size(), 0);
        leader[0] = 1;
        for (size_t i = 0; i < insns_.size(); i++) {
            const Insn& in = insns_[i];
            if (in.isBranch()) {
                int64_t t = targetOf(i);
                if (inRange(t)) {
                    auto it = offToIdx_.find(static_cast<size_t>(t));
                    if (it == offToIdx_.end()) {
                        violation(offs_[i], Rule::BadBranchTarget,
                                  in.text(),
                                  "branch target not on an instruction "
                                  "boundary");
                        return false;
                    }
                    leader[it->second] = 1;
                }
            }
            if ((in.isBranch() || in.isTerminator()) &&
                i + 1 < insns_.size())
                leader[i + 1] = 1;
        }

        for (size_t i = 0; i < insns_.size(); i++) {
            if (!leader[i])
                continue;
            size_t j = i + 1;
            while (j < insns_.size() && !leader[j])
                j++;
            idxToBlock_[i] = blocks_.size();
            blocks_.push_back(Block{i, j, {}, State{}, false});
        }

        for (auto& b : blocks_) {
            const Insn& last = insns_[b.last - 1];
            int64_t t =
                last.isBranch() ? targetOf(b.last - 1) : -1;
            if (last.mn == Mn::Jmp) {
                if (inRange(t))
                    b.succs.push_back(blockAt(t));
                // else: exit to a trap stub / another function
            } else if (last.mn == Mn::Jcc) {
                if (b.last < insns_.size())
                    b.succs.push_back(idxToBlock_.at(b.last));
                if (inRange(t))
                    b.succs.push_back(blockAt(t));
            } else if (!last.isTerminator()) {
                if (b.last < insns_.size())
                    b.succs.push_back(idxToBlock_.at(b.last));
            }
        }
        rep_->stats.basicBlocks += blocks_.size();
        return true;
    }

    size_t
    blockAt(int64_t off)
    {
        return idxToBlock_.at(
            offToIdx_.at(static_cast<size_t>(off)));
    }

    void
    analyze()
    {
        std::vector<size_t> work;
        auto seed = [&](size_t bi) {
            blocks_[bi].visited = true;
            work.push_back(bi);
        };
        seed(0);  // entry state: everything Top

        while (true) {
            while (!work.empty()) {
                size_t bi = work.back();
                work.pop_back();
                Block& b = blocks_[bi];
                State st = b.in;
                for (size_t i = b.first; i < b.last; i++)
                    transfer(st, i, false);
                for (size_t si : b.succs) {
                    State es = st;
                    applyEdgeFact(b, si, es);
                    Block& s = blocks_[si];
                    if (!s.visited) {
                        s.in = es;
                        s.visited = true;
                        work.push_back(si);
                    } else if (s.in.joinWith(es)) {
                        work.push_back(si);
                    }
                }
            }
            // Blocks unreachable from the entry (dead code after an
            // unconditional branch, trap stubs entered from other
            // functions) are verified with a fresh all-Top state.
            size_t next = blocks_.size();
            for (size_t i = 0; i < blocks_.size(); i++) {
                if (!blocks_[i].visited) {
                    next = i;
                    break;
                }
            }
            if (next == blocks_.size())
                break;
            seed(next);
        }
    }

    /**
     * The guard pattern `cmp (idx+ext), ctx->memSize; ja <trap>`
     * proves idx + ext <= memSize on the fallthrough edge when the
     * taken edge leaves the function (a trap stub).
     */
    void
    applyEdgeFact(const Block& b, size_t succ, State& es) const
    {
        const Insn& last = insns_[b.last - 1];
        if (last.mn != Mn::Jcc || last.cond != Cond::A)
            return;
        if (!es.flags.valid)
            return;
        int64_t t = static_cast<int64_t>(offs_[b.last - 1]) + last.len +
                    last.rel;
        if (inRange(t))
            return;  // in-function branch: not a trap exit
        if (b.last < insns_.size() &&
            idxToBlock_.at(b.last) == succ) {
            int r = es.flags.idx;
            int64_t ext = static_cast<int64_t>(es.flags.ext);
            es.regBound[r] = std::max(es.regBound[r], ext);
            // When the register's home slot holds exactly the same
            // value, the proof covers a later reload of it too.
            if (es.regHome[r] != kNoHome && es.regHomeEq[r]) {
                int64_t& sb = es.slotBound[es.regHome[r]];
                sb = std::max(sb, ext);
            }
        }
    }

    // --- state updates ---

    /**
     * Writes register @p r. @p self_trunc32 marks `mov r32, r32`
     * self-truncation, which only decreases the value, so bounds facts
     * about r survive (the Figure 1b truncation after a limit check).
     * @p bnd installs a limit fact for the new value (-1 = none) and
     * @p home its frame-slot alias (kNoHome = none) — used by the
     * load/store/copy cases that provably preserve a value.
     */
    void
    setReg(State& st, int r, AV v, bool self_trunc32 = false,
           int64_t bnd = -1, int32_t home = kNoHome,
           bool home_eq = true)
    {
        if (r < 0 || r == kRsp || r == kRbp)
            return;  // stack registers are untracked
        if (!self_trunc32) {
            if (st.flags.valid && st.flags.idx == r)
                st.flags.valid = false;
            for (int j = 0; j < 16; j++)
                if (j != r && st.regs[j].k == K::BoundsLea &&
                    st.regs[j].idx == r)
                    st.regs[j] = av(K::Top);
        }
        if (self_trunc32) {
            // Keep the fact and the home (the truncated value is at
            // most the slot's), but demote the home to <=.
            st.regHomeEq[r] = false;
        } else {
            st.regBound[r] = bnd;
            st.regHome[r] = home;
            st.regHomeEq[r] = home != kNoHome && home_eq;
        }
        st.regs[r] = v;
    }

    /** Partial (8/16-bit) register writes preserve zero-extension. */
    AV
    partialWrite(const State& st, int r) const
    {
        return st.regs[r].k == K::U32 ? av(K::U32) : av(K::Top);
    }

    void
    clobberVolatile(State& st)
    {
        for (int r = 0; r < 16; r++) {
            if (r == kRsp || r == kRbp || r == kCtx)
                continue;
            if (r == kHeap && cfg_.needsHeapBaseReg())
                continue;
            if (r == kCode && lfi_)
                continue;
            setReg(st, r, av(K::Top));
        }
        st.flags.valid = false;
    }

    static bool
    clobbersFlags(const Insn& in)
    {
        switch (in.mn) {
          case Mn::AluRR: case Mn::AluImm: case Mn::AluMem:
          case Mn::Test: case Mn::Imul: case Mn::Neg: case Mn::Not:
          case Mn::Div: case Mn::Idiv: case Mn::ShiftCl:
          case Mn::ShiftImm: case Mn::Popcnt: case Mn::Ucomisd:
            return true;
          default:
            return false;
        }
    }

    // --- memory operand handling ---

    MC
    classify(const State& st, const MemRef& m) const
    {
        if (m.ripRel)
            return MC::Bad;  // the JIT assembler never emits RIP-rel
        if (m.seg == Seg::Gs)
            return MC::HeapGs;
        if (m.seg == Seg::Fs || !m.hasBase)
            return MC::Bad;
        int b = static_cast<int>(m.base);
        if (b == kRsp || b == kRbp)
            return m.hasIndex ? MC::Bad : MC::Frame;
        if (b == kCtx) {
            if (m.hasIndex || m.disp < 0 || m.disp + 8 > kCtxBytes)
                return MC::Bad;
            return MC::Ctx;
        }
        if (b == kHeap && cfg_.needsHeapBaseReg())
            return MC::HeapBase;
        if (st.regs[b].k == K::Trusted)
            return MC::Trusted;
        return MC::Bad;
    }

    /** Records violations/stats for one heap-or-otherwise access. */
    void
    checkAccess(State& st, const Insn& in, bool is_store, MC mc,
                uint64_t off, bool record)
    {
        if (!record)
            return;
        Stats& s = rep_->stats;
        const MemRef& m = in.mem;
        int bytes = in.mn == Mn::MovsdLoad || in.mn == Mn::MovsdStore
                        ? 8
                        : sizeBytes(in.width);

        switch (mc) {
          case MC::Frame:
            s.frameAccesses++;
            return;
          case MC::Ctx:
            s.ctxAccesses++;
            return;
          case MC::Trusted:
            s.trustedAccesses++;
            return;
          case MC::HeapGs: {
            if (memExempt_) {
                s.heapUnsandboxed++;
                return;
            }
            s.heapGs++;
            if (m.addr32)
                s.heapGsEa32++;
            bool want_gs =
                is_store ? cfg_.segueStores() : cfg_.segueLoads();
            if (!want_gs) {
                violation(off, Rule::GsUnexpected, in.text(),
                          "gs-prefixed access under a strategy that "
                          "does not segue this direction");
                return;
            }
            if (cfg_.untrustedIndexRegs && !m.addr32) {
                violation(off, Rule::SegueIndexNotTruncated, in.text(),
                          "untrusted index needs the 0x67 32-bit "
                          "effective address (Figure 1c)");
            } else if (!cfg_.untrustedIndexRegs) {
                noteIndexTrust(st, m);
                // Without the 0x67 truncation the displacement adds
                // into a 64-bit EA; it must stay inside the guard.
                if (m.disp < 0 && !m.addr32)
                    violation(off, Rule::MemUnproven, in.text(),
                              "negative displacement on a 64-bit "
                              "gs-relative effective address");
            }
            if (cfg_.explicitBounds())
                checkBounds(st, in, off, bytes);
            return;
          }
          case MC::HeapBase: {
            if (memExempt_) {
                s.heapUnsandboxed++;
                return;
            }
            s.heapBaseReg++;
            bool want_gs =
                is_store ? cfg_.segueStores() : cfg_.segueLoads();
            if (want_gs) {
                violation(off,
                          is_store ? Rule::SegueStoreNoGs
                                   : Rule::SegueLoadNoGs,
                          in.text(),
                          "heap access bypasses the %gs segment base");
                return;
            }
            if ((m.hasIndex && m.scale != 1) || m.disp < 0) {
                violation(off, Rule::BaseRegShape, in.text(),
                          "heap operand must be [%r15 + idx*1 + "
                          "disp>=0] to stay inside the guard region");
                return;
            }
            if (m.hasIndex) {
                int idx = static_cast<int>(m.index);
                if (cfg_.untrustedIndexRegs) {
                    if (st.regs[idx].k != K::U32) {
                        violation(off, Rule::BaseRegIndexNotTruncated,
                                  in.text(),
                                  "untrusted index lacks an explicit "
                                  "32-bit truncation (Figure 1b)");
                    } else {
                        s.indexProvenU32++;
                    }
                } else {
                    noteIndexTrust(st, m);
                }
            }
            if (cfg_.explicitBounds())
                checkBounds(st, in, off, bytes);
            return;
          }
          case MC::Bad:
            if (memExempt_)
                return;
            if (!is_store && cfg_.segueLoads())
                violation(off, Rule::SegueLoadNoGs, in.text(),
                          "load from linear memory without the %gs "
                          "segment prefix");
            else if (is_store && cfg_.segueStores())
                violation(off, Rule::SegueStoreNoGs, in.text(),
                          "store to linear memory without the %gs "
                          "segment prefix");
            else
                violation(off, Rule::MemUnproven, in.text(),
                          "memory operand proves neither frame, "
                          "context, trusted-pointer, nor heap shape");
            return;
        }
    }

    void
    noteIndexTrust(const State& st, const MemRef& m)
    {
        // Wasm-mode configs trust i32 cleanliness by construction
        // (strategy.h: untrustedIndexRegs == false); record whether the
        // checker could also prove it locally.
        auto note = [&](int r) {
            if (st.regs[r].k == K::U32)
                rep_->stats.indexProvenU32++;
            else
                rep_->stats.indexAssumedU32++;
        };
        if (m.seg == Seg::Gs) {
            if (m.hasBase)
                note(static_cast<int>(m.base));
            if (m.hasIndex)
                note(static_cast<int>(m.index));
        } else if (m.hasIndex) {
            note(static_cast<int>(m.index));
        }
    }

    void
    checkBounds(const State& st, const Insn& in, uint64_t off,
                int bytes)
    {
        const MemRef& m = in.mem;
        // The guarded index register: the SIB index under %r15
        // addressing, the base under %gs addressing.
        int idx = -1;
        if (m.seg == Seg::Gs) {
            if (m.hasBase && !m.hasIndex)
                idx = static_cast<int>(m.base);
        } else if (m.hasIndex) {
            idx = static_cast<int>(m.index);
        }
        int64_t need = static_cast<int64_t>(m.disp) + bytes;
        if (idx >= 0 && m.disp >= 0) {
            // Dynamic proof: a dominating limit compare on this value
            // (directly or via its home frame slot) covers the extent.
            int64_t f = st.regBound[idx];
            if (st.regHome[idx] != kNoHome) {
                auto it = st.slotBound.find(st.regHome[idx]);
                if (it != st.slotBound.end())
                    f = std::max(f, it->second);
            }
            if (f >= need) {
                rep_->stats.boundsChecked++;
                return;
            }
            // Static proof: max value + extent fits below the initial
            // memory size; ctx->memSize only ever grows past it.
            uint64_t b = st.regs[idx].bound;
            if (minMem_ > 0 && b != kNoBound &&
                b + static_cast<uint64_t>(need) <= minMem_) {
                rep_->stats.boundsStatic++;
                return;
            }
        }
        if (std::getenv("SFIKIT_VERIFY_DEBUG")) {
            std::fprintf(
                stderr,
                "dbg +%llx idx=%d regBound=%lld home=%d need=%lld "
                "bound=%llx slotBound={",
                (unsigned long long)off, idx,
                idx >= 0 ? (long long)st.regBound[idx] : -1ll,
                idx >= 0 ? st.regHome[idx] : 0,
                (long long)need,
                idx >= 0 ? (unsigned long long)st.regs[idx].bound
                         : 0ull);
            for (auto& kv : st.slotBound)
                std::fprintf(stderr, "%d:%lld ", kv.first,
                             (long long)kv.second);
            std::fprintf(stderr, "}\n");
        }
        violation(off, Rule::BoundsMissing, in.text(),
                  "access not dominated by a limit compare "
                  "covering its extent");
    }

    // --- pinned / stack register discipline ---

    bool
    stackWriteAllowed(const Insn& in, int r) const
    {
        if (r == kRsp) {
            if (in.mn == Mn::MovRR && in.width == Width::W64 &&
                in.rm == kRsp && in.reg == kRbp)
                return true;  // mov rsp, rbp (epilogue)
            if (in.mn == Mn::AluImm && in.width == Width::W64 &&
                in.reg == kRsp &&
                (in.aluOp == AluOp::Add || in.aluOp == AluOp::Sub))
                return true;  // frame allocation
            return false;
        }
        // rbp
        if (in.mn == Mn::Pop && in.reg == kRbp)
            return true;
        if (in.mn == Mn::MovRR && in.width == Width::W64 &&
            in.rm == kRbp && in.reg == kRsp)
            return true;  // mov rbp, rsp (prologue)
        return false;
    }

    void
    checkRegWrite(const Insn& in, int r, uint64_t off)
    {
        if (r < 0 || fullyExempt_)
            return;
        if (r == kCtx) {
            violation(off, Rule::PinnedWrite, in.text(),
                      "%r14 (JitContext) is pinned");
        } else if (r == kHeap && pinHeap_) {
            violation(off, Rule::PinnedWrite, in.text(),
                      "%r15 (heap base) is pinned under this "
                      "strategy");
        } else if (r == kCode && lfi_) {
            violation(off, Rule::PinnedWrite, in.text(),
                      "%r13 (LFI code base) is pinned");
        } else if ((r == kRsp || r == kRbp) &&
                   !stackWriteAllowed(in, r)) {
            violation(off, Rule::StackDiscipline, in.text(),
                      "stack register written outside the recognized "
                      "prologue/epilogue shapes");
        }
    }

    // --- the transfer function ---

    /** Saturating-at-kNoBound helpers for the bound transfer rules. */
    static uint64_t
    boundAdd(uint64_t a, uint64_t b)
    {
        if (a == kNoBound || b == kNoBound || a + b > 0xffffffffull)
            return kNoBound;  // a 32-bit add may wrap: no claim
        return a + b;
    }
    static uint64_t
    boundMul(uint64_t a, uint64_t b)
    {
        if (a == kNoBound || b == kNoBound)
            return kNoBound;
        if (a != 0 && b > 0xffffffffull / a)
            return kNoBound;
        return a * b;
    }

    void
    transfer(State& st, size_t i, bool record)
    {
        const Insn& in = insns_[i];
        uint64_t off = offs_[i];

        // Pinned/stack discipline: every explicitly written GPR.
        if (record) {
            for (int r : writtenGprs(in))
                checkRegWrite(in, r, off);
        }

        bool flags_fact_set = false;

        switch (in.mn) {
          case Mn::MovImm64:
            setReg(st, in.reg,
                   in.imm >= 0 && in.imm <= 0xffffffffll
                       ? avB(K::U32, static_cast<uint64_t>(in.imm))
                       : av(K::Top));
            break;
          case Mn::MovImm32:
            setReg(st, in.reg,
                   avB(K::U32, static_cast<uint32_t>(in.imm)));
            break;

          case Mn::MovRR: {
            int dst = in.rm, src = in.reg;
            if (in.width == Width::W64) {
                if (src == kRsp || src == kRbp) {
                    setReg(st, dst, av(K::Top));
                } else {
                    // A faithful copy: fact and home travel with it.
                    setReg(st, dst, st.regs[src], false,
                           st.regBound[src], st.regHome[src],
                           st.regHomeEq[src]);
                }
            } else if (in.width == Width::W32) {
                if (dst == src) {
                    AV v = st.regs[dst].k == K::DiffCode
                               ? av(K::DiffCode32)
                               : av(K::U32);
                    // Truncation never grows the value.
                    v.bound = st.regs[dst].bound;
                    setReg(st, dst, v, /*self_trunc32=*/true);
                } else {
                    // Cross-register truncation: the result is at most
                    // the source, so a limit fact (and the source's
                    // home, demoted to <=) carries over.
                    AV v = av(K::U32);
                    if (st.regs[src].bound <= 0xffffffffull)
                        v.bound = st.regs[src].bound;
                    setReg(st, dst, v, false, st.regBound[src],
                           st.regHome[src], false);
                }
            } else {
                setReg(st, dst, partialWrite(st, dst));
            }
            break;
          }

          case Mn::Load: {
            MC mc = classify(st, in.mem);
            checkAccess(st, in, false, mc, off, record);
            AV v = av(K::Top);
            int64_t bnd = -1;
            int32_t home = kNoHome;
            if (in.width == Width::W64) {
                if (mc == MC::Ctx) {
                    v = av(K::Trusted);
                } else if (mc == MC::Frame) {
                    auto it = st.slots.find(in.mem.disp);
                    if (it != st.slots.end())
                        v = it->second;
                    home = in.mem.disp;
                    auto sb = st.slotBound.find(in.mem.disp);
                    if (sb != st.slotBound.end())
                        bnd = sb->second;
                }
            } else if (!in.signExtend) {
                // Zero-extending sub-64-bit load: width caps the value.
                v = av(K::U32);
                if (in.width == Width::W8)
                    v.bound = 255;
                else if (in.width == Width::W16)
                    v.bound = 65535;
            }
            setReg(st, in.reg, v, false, bnd, home);
            break;
          }

          case Mn::Store: {
            MC mc = classify(st, in.mem);
            checkAccess(st, in, true, mc, off, record);
            if (mc == MC::Frame) {
                int32_t d = in.mem.disp;
                // The slot's old value is gone: registers homed here
                // (other than the stored one) no longer match it.
                for (int j = 0; j < 16; j++)
                    if (j != in.reg && st.regHome[j] == d)
                        st.regHome[j] = kNoHome;
                if (in.width == Width::W64) {
                    st.slots[d] = st.regs[in.reg];
                    if (st.regBound[in.reg] >= 0)
                        st.slotBound[d] = st.regBound[in.reg];
                    else
                        st.slotBound.erase(d);
                    if (in.reg != kRsp && in.reg != kRbp) {
                        st.regHome[in.reg] = d;
                        st.regHomeEq[in.reg] = true;
                    }
                } else {
                    st.slots.erase(d);
                    st.slotBound.erase(d);
                }
            }
            break;
          }
          case Mn::StoreImm: {
            MC mc = classify(st, in.mem);
            checkAccess(st, in, true, mc, off, record);
            if (mc == MC::Frame) {
                int32_t d = in.mem.disp;
                for (int j = 0; j < 16; j++)
                    if (st.regHome[j] == d)
                        st.regHome[j] = kNoHome;
                st.slotBound.erase(d);
                if (in.width == Width::W64 && in.imm >= 0) {
                    st.slots[d] =
                        avB(K::U32, static_cast<uint64_t>(in.imm));
                } else {
                    st.slots.erase(d);
                }
            }
            break;
          }
          case Mn::MovsdStore: {
            MC mc = classify(st, in.mem);
            checkAccess(st, in, true, mc, off, record);
            if (mc == MC::Frame) {
                st.slots.erase(in.mem.disp);
                st.slotBound.erase(in.mem.disp);
                for (int j = 0; j < 16; j++)
                    if (st.regHome[j] == in.mem.disp)
                        st.regHome[j] = kNoHome;
            }
            break;
          }
          case Mn::MovsdLoad:
            checkAccess(st, in, false, classify(st, in.mem), off,
                        record);
            break;

          case Mn::Lea: {
            AV v = av(K::Top);
            if (in.width == Width::W32) {
                v = av(K::U32);
            } else if (in.mem.hasBase && !in.mem.hasIndex) {
                int b = static_cast<int>(in.mem.base);
                if (b == kCtx) {
                    v = av(K::Trusted);  // address of a ctx field
                } else if (b != kRsp && b != kRbp &&
                           !(b == kHeap && pinHeap_) &&
                           in.mem.disp >= 1) {
                    v = AV{K::BoundsLea, static_cast<uint8_t>(b),
                           in.mem.disp};
                }
            }
            setReg(st, in.reg, v);
            break;
          }

          case Mn::AluRR: {
            int dst = in.reg, src = in.rm;
            if (in.aluOp == AluOp::Cmp)
                break;  // flags only
            AV v;
            if (lfi_ && in.width == Width::W64 && src == kCode &&
                in.aluOp == AluOp::Sub) {
                v = av(K::DiffCode);
            } else if (lfi_ && in.width == Width::W64 &&
                       src == kCode && in.aluOp == AluOp::Add &&
                       st.regs[dst].k == K::DiffCode32) {
                v = av(K::CodeMasked);
            } else if (in.aluOp == AluOp::Xor && dst == src) {
                v = avB(K::U32, 0);  // canonical zero idiom
            } else if (in.width == Width::W32) {
                v = av(K::U32);
                uint64_t a = st.regs[dst].bound;
                uint64_t b = st.regs[src].bound;
                if (in.aluOp == AluOp::Add)
                    v.bound = boundAdd(a, b);
                else if (in.aluOp == AluOp::And)
                    v.bound = a < b ? a : b;
            } else if (in.width == Width::W8 ||
                       in.width == Width::W16) {
                v = partialWrite(st, dst);
            } else {
                v = av(K::Top);
            }
            setReg(st, dst, v);
            break;
          }

          case Mn::AluImm: {
            if (in.aluOp == AluOp::Cmp)
                break;
            AV v;
            if (in.width == Width::W32) {
                v = av(K::U32);
                if (in.imm >= 0) {
                    uint64_t c = static_cast<uint64_t>(in.imm);
                    uint64_t a = st.regs[in.reg].bound;
                    if (in.aluOp == AluOp::Add)
                        v.bound = boundAdd(a, c);
                    else if (in.aluOp == AluOp::And)
                        v.bound = a < c ? a : c;
                }
            } else if (in.width == Width::W8 ||
                       in.width == Width::W16) {
                v = partialWrite(st, in.reg);
            } else {
                v = av(K::Top);
            }
            setReg(st, in.reg, v);
            break;
          }

          case Mn::AluMem: {
            MC mc = classify(st, in.mem);
            checkAccess(st, in, false, mc, off, record);
            if (in.aluOp == AluOp::Cmp) {
                // cmp (idx+ext), ctx->memSize: the bounds pattern.
                if (in.width == Width::W64 && mc == MC::Ctx &&
                    in.mem.disp == kOffMemSize &&
                    st.regs[in.reg].k == K::BoundsLea) {
                    st.flags = FlagFact{true, st.regs[in.reg].idx,
                                        st.regs[in.reg].ext};
                    flags_fact_set = true;
                }
                break;
            }
            AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
            if (in.width == Width::W32 && mc == MC::Frame) {
                auto it = st.slots.find(in.mem.disp);
                uint64_t m = it != st.slots.end() ? it->second.bound
                                                  : kNoBound;
                uint64_t a = st.regs[in.reg].bound;
                if (in.aluOp == AluOp::Add)
                    v.bound = boundAdd(a, m);
                else if (in.aluOp == AluOp::And)
                    v.bound = a < m ? a : m;
            }
            setReg(st, in.reg, v);
            break;
          }

          case Mn::Imul: {
            AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
            if (in.width == Width::W32 && in.rm >= 0)
                v.bound = boundMul(st.regs[in.reg].bound,
                                   st.regs[in.rm].bound);
            setReg(st, in.reg, v);
            break;
          }

          case Mn::ShiftImm: {
            AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
            if (in.width == Width::W32) {
                uint32_t s = static_cast<uint32_t>(in.imm) & 31;
                uint64_t a = st.regs[in.reg].bound;
                if (in.shiftOp == x64::ShiftOp::Shl) {
                    if (a != kNoBound && (a << s) <= 0xffffffffull)
                        v.bound = a << s;
                } else if (in.shiftOp == x64::ShiftOp::Shr) {
                    v.bound = (a == kNoBound ? 0xffffffffull : a) >> s;
                }
            }
            setReg(st, in.reg, v);
            break;
          }

          case Mn::ShiftCl: {
            AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
            // A logical right shift never increases the value.
            if (in.width == Width::W32 &&
                in.shiftOp == x64::ShiftOp::Shr)
                v.bound = st.regs[in.reg].bound;
            setReg(st, in.reg, v);
            break;
          }

          case Mn::Neg:
          case Mn::Not:
            setReg(st, in.reg,
                   in.width == Width::W32 ? av(K::U32)
                   : in.width == Width::W64
                       ? av(K::Top)
                       : partialWrite(st, in.reg));
            break;

          case Mn::Popcnt:
            setReg(st, in.reg, avB(K::U32, 64));
            break;

          case Mn::Div:
          case Mn::Idiv: {
            AV v = av(in.width == Width::W32 ? K::U32 : K::Top);
            setReg(st, 0, v);  // rax
            setReg(st, 2, v);  // rdx
            break;
          }
          case Mn::Cdq:
            setReg(st, 2, av(K::U32));
            break;
          case Mn::Cqo:
            setReg(st, 2, av(K::Top));
            break;

          case Mn::Movzx:
            setReg(st, in.reg,
                   avB(K::U32,
                       in.srcWidth == Width::W8 ? 255 : 65535));
            break;
          case Mn::Movsx:
            setReg(st, in.reg,
                   av(in.width == Width::W32 ? K::U32 : K::Top));
            break;
          case Mn::Movsxd:
            setReg(st, in.reg, av(K::Top));
            break;

          case Mn::Setcc:
            setReg(st, in.reg, partialWrite(st, in.reg));
            break;

          case Mn::Cmovcc:
            setReg(st, in.reg,
                   in.width == Width::W32
                       ? av(K::U32)
                       : joinAV(st.regs[in.reg], st.regs[in.rm]));
            break;

          case Mn::Cvttsd2si:
            setReg(st, in.reg,
                   av(in.width == Width::W32 ? K::U32 : K::Top));
            break;
          case Mn::MovqFromXmm:
            setReg(st, in.rm, av(K::Top));
            break;

          case Mn::Pop:
            setReg(st, in.reg, av(K::Top));
            break;
          case Mn::Push:
            break;

          case Mn::Call:
            clobberVolatile(st);
            break;

          case Mn::CallReg: {
            if (record) {
                K k = st.regs[in.reg].k;
                if (k == K::Trusted)
                    rep_->stats.trustedIndirects++;
                else if (k == K::CodeMasked)
                    rep_->stats.maskedIndirects++;
                if (lfi_ && k != K::Trusted && k != K::CodeMasked)
                    violation(off, Rule::LfiCallUnmasked, in.text(),
                              "indirect call target neither "
                              "context-loaded nor %r13-masked");
            }
            clobberVolatile(st);
            break;
          }

          case Mn::JmpReg: {
            if (record) {
                K k = st.regs[in.reg].k;
                if (k == K::CodeMasked)
                    rep_->stats.protectedReturns++;
                else if (k == K::Trusted)
                    rep_->stats.trustedIndirects++;
                if (lfi_ && k != K::Trusted && k != K::CodeMasked)
                    violation(off, Rule::LfiJmpUnmasked, in.text(),
                              "indirect jump target neither "
                              "context-loaded nor %r13-masked");
            }
            break;
          }

          case Mn::Ret:
            if (record && lfi_)
                violation(off, Rule::LfiRetUnprotected, in.text(),
                          "plain ret under LFI; returns must go "
                          "through the masked-jump epilogue");
            break;

          // No SFI-relevant effect.
          case Mn::Test:
          case Mn::Jmp:
          case Mn::Jcc:
          case Mn::Nop:
          case Mn::Ud2:
          case Mn::Int3:
          case Mn::MovsdRR:
          case Mn::MovqToXmm:
          case Mn::Addsd:
          case Mn::Subsd:
          case Mn::Mulsd:
          case Mn::Divsd:
          case Mn::Sqrtsd:
          case Mn::Minsd:
          case Mn::Maxsd:
          case Mn::Ucomisd:
          case Mn::Xorpd:
          case Mn::Cvtsi2sd:
          case Mn::Invalid:
          // ELF-only forms: unreachable here — decodeAll() rejects
          // them before analysis (outsideJitSubset).
          case Mn::Xchg: case Mn::AluMemDst: case Mn::AluImmMem:
          case Mn::TestMem: case Mn::TestImm: case Mn::Mul:
          case Mn::Bt: case Mn::Cdqe: case Mn::Comisd:
          case Mn::MovVecLoad: case Mn::MovVecStore:
          case Mn::MovVecRR: case Mn::Pxor:
            break;
        }

        if (clobbersFlags(in) && !flags_fact_set)
            st.flags.valid = false;
    }

    /** GPRs explicitly written by @p in (implicit rax/rdx included). */
    static std::vector<int>
    writtenGprs(const Insn& in)
    {
        switch (in.mn) {
          case Mn::MovImm64: case Mn::MovImm32: case Mn::Load:
          case Mn::Lea: case Mn::Imul: case Mn::Popcnt:
          case Mn::Movzx: case Mn::Movsx: case Mn::Movsxd:
          case Mn::Cmovcc: case Mn::Cvttsd2si: case Mn::Pop:
          case Mn::Setcc: case Mn::Neg: case Mn::Not:
          case Mn::ShiftCl: case Mn::ShiftImm:
            return {in.reg};
          case Mn::MovRR:
          case Mn::MovqFromXmm:
            return {in.rm};
          case Mn::AluRR: case Mn::AluImm: case Mn::AluMem:
            return in.aluOp == AluOp::Cmp ? std::vector<int>{}
                                          : std::vector<int>{in.reg};
          case Mn::Div: case Mn::Idiv:
            return {0, 2};
          case Mn::Cdq: case Mn::Cqo:
            return {2};
          default:
            return {};
        }
    }

    void
    record()
    {
        for (auto& b : blocks_) {
            State st = b.in;
            for (size_t i = b.first; i < b.last; i++)
                transfer(st, i, true);
        }
    }

    const uint8_t* code_;
    size_t size_;
    const CompilerConfig& cfg_;
    uint64_t base_;
    Report* rep_;

    bool fullyExempt_ = false;
    bool memExempt_ = false;
    bool pinHeap_ = false;
    bool lfi_ = false;
    /** Initial memory size; static bounds proofs need it (0 = none). */
    uint64_t minMem_ = 0;

    std::vector<Insn> insns_;
    std::vector<size_t> offs_;
    std::unordered_map<size_t, size_t> offToIdx_;  // offset -> insn
    std::unordered_map<size_t, size_t> idxToBlock_;
    std::vector<Block> blocks_;
};

/**
 * Linear checker for the entry/exit trampolines (rule entry.contract).
 * The stubs are straight-line code with exactly one call and one ret,
 * so no CFG or dataflow join is needed — a single pass tracking a few
 * facts proves the transition contract described in checker.h.
 */
class EntryStubChecker
{
  public:
    EntryStubChecker(const uint8_t* code, size_t size,
                     const CompilerConfig& cfg, uint64_t base,
                     Report* rep)
        : code_(code), size_(size), cfg_(cfg), base_(base), rep_(rep)
    {
    }

    void
    run()
    {
        size_t off = 0;
        while (off < size_) {
            Insn in;
            if (!decode(code_ + off, size_ - off, &in)) {
                fail(off, in, "undecodable byte(s) in entry stub");
                return;
            }
            rep_->stats.instructions++;
            if (seenRet_) {
                fail(off, in, "instruction after the stub's ret");
                return;
            }
            if (!step(off, in))
                return;  // fail closed: stop at the first violation
            off += in.len;
        }
        rep_->stats.bytes += size_;
        if (!seenCall_)
            failEnd("stub never calls the target function");
        else if (!seenRet_)
            failEnd("stub has no ret — exit edge missing");
        if (rep_->ok())
            rep_->stats.entryStubs++;
    }

  private:
    static bool
    calleeSaved(int r)
    {
        return r == 3 /*rbx*/ || r == kRbp || r == 12 || r == kCode ||
               r == kCtx || r == kHeap;
    }

    /** A write to @p r is legal only if the stub saved it first. */
    bool
    writeOk(size_t off, const Insn& in, int r)
    {
        if (r == kRsp) {
            fail(off, in, "%rsp written outside the tracked adjustment");
            return false;
        }
        if (calleeSaved(r) && !isPushed(r)) {
            fail(off, in,
                 "callee-saved register written without a prior push");
            return false;
        }
        return true;
    }

    bool
    isPushed(int r) const
    {
        for (int p : pushed_)
            if (p == r)
                return true;
        return false;
    }

    bool
    step(size_t off, const Insn& in)
    {
        switch (in.mn) {
          case Mn::Nop:
            return true;

          case Mn::Push:
            if (seenCall_ || rspAdj_ != 0) {
                fail(off, in, "push outside the prologue");
                return false;
            }
            pushed_.push_back(in.reg);
            return true;

          case Mn::Pop: {
            if (!seenCall_) {
                fail(off, in, "pop before the call — nothing to restore");
                return false;
            }
            if (rspAdj_ != 0) {
                fail(off, in, "pop before the rsp adjustment is undone");
                return false;
            }
            if (popIdx_ >= pushed_.size()) {
                fail(off, in, "more pops than pushes");
                return false;
            }
            int expect = pushed_[pushed_.size() - 1 - popIdx_];
            if (in.reg != expect) {
                fail(off, in,
                     "pops must mirror pushes in reverse order");
                return false;
            }
            popIdx_++;
            return true;
          }

          case Mn::MovRR: {
            if (in.width != Width::W64) {
                fail(off, in, "non-64-bit move in entry stub");
                return false;
            }
            if (!writeOk(off, in, in.rm))
                return false;
            if (in.rm == kCtx && in.reg == 7 /*rdi*/)
                ctxHeld_ = true;
            else if (in.rm == 11 /*r11*/ && in.reg == 6 /*rsi*/)
                targetHeld_ = true;
            else if (in.rm == 10 /*r10*/ && in.reg == 2 /*rdx*/)
                argsHeld_ = true;
            else if (in.rm == kRbp && in.reg == kRsp)
                ;  // full-tier frame setup (rbp push enforced above)
            return true;
          }

          case Mn::Load: {
            if (!in.mem.present || in.mem.seg != Seg::None ||
                in.mem.hasIndex || in.width != Width::W64) {
                fail(off, in, "load outside the stub's operand shapes");
                return false;
            }
            if (!writeOk(off, in, in.reg))
                return false;
            int b = static_cast<int>(in.mem.base);
            if (in.mem.hasBase && b == kCtx) {
                if (!ctxHeld_) {
                    fail(off, in,
                         "context load before %r14 holds the "
                         "JitContext");
                    return false;
                }
                if (in.mem.disp < 0 || in.mem.disp >= kCtxBytes) {
                    fail(off, in, "context load out of bounds");
                    return false;
                }
                rep_->stats.ctxAccesses++;
                if (in.reg == kHeap &&
                    in.mem.disp == static_cast<int32_t>(
                                       offsetof(jit::JitContext, memBase)))
                    heapPinned_ = true;
                if (in.reg == kCode &&
                    in.mem.disp == static_cast<int32_t>(
                                       offsetof(jit::JitContext, codeBase)))
                    codePinned_ = true;
                return true;
            }
            if (in.mem.hasBase && b == 10 /*r10: marshal slots*/) {
                if (!argsHeld_) {
                    fail(off, in,
                         "arg-slot load before %r10 holds the array");
                    return false;
                }
                if (in.mem.disp < 0 || in.mem.disp >= 80) {
                    fail(off, in, "arg-slot load out of bounds");
                    return false;
                }
                return true;
            }
            fail(off, in, "load base is neither context nor arg slots");
            return false;
          }

          case Mn::MovsdLoad: {
            if (!in.mem.present || in.mem.seg != Seg::None ||
                in.mem.hasIndex || !in.mem.hasBase ||
                static_cast<int>(in.mem.base) != 10 || !argsHeld_ ||
                in.mem.disp < 48 || in.mem.disp >= 80) {
                fail(off, in, "f64 load outside the marshal slots");
                return false;
            }
            return true;
          }

          case Mn::MovqFromXmm:
            // EntryResult.f64Bits mirror (xmm0 -> rdx).
            return writeOk(off, in, in.rm);

          case Mn::AluImm: {
            if (in.reg != kRsp || in.width != Width::W64 ||
                (in.aluOp != AluOp::Sub && in.aluOp != AluOp::Add) ||
                in.imm <= 0 || in.imm % 8 != 0) {
                fail(off, in, "ALU outside the rsp adjustment pair");
                return false;
            }
            if (in.aluOp == AluOp::Sub) {
                if (seenCall_) {
                    fail(off, in, "rsp lowered after the call");
                    return false;
                }
                rspAdj_ += in.imm;
            } else {
                if (!seenCall_) {
                    fail(off, in, "rsp raised before the call");
                    return false;
                }
                rspAdj_ -= in.imm;
                if (rspAdj_ < 0) {
                    fail(off, in, "rsp adjustment unbalanced");
                    return false;
                }
            }
            return true;
          }

          case Mn::CallReg: {
            if (seenCall_) {
                fail(off, in, "entry stub must call exactly once");
                return false;
            }
            if (in.reg != 11 || !targetHeld_) {
                fail(off, in,
                     "call target is not the host-passed function "
                     "(%r11 from %rsi)");
                return false;
            }
            if (!ctxHeld_) {
                fail(off, in, "%r14 does not hold the JitContext");
                return false;
            }
            if (!isPushed(kCtx)) {
                fail(off, in, "%r14 clobbered without a save");
                return false;
            }
            if (cfg_.needsHeapBaseReg() && !heapPinned_) {
                fail(off, in,
                     "heap base %r15 not pinned before sandbox entry");
                return false;
            }
            if (cfg_.cfi == CfiMode::Lfi && !codePinned_) {
                fail(off, in,
                     "LFI code base %r13 not pinned before sandbox "
                     "entry");
                return false;
            }
            // System-V: rsp must be 16-byte aligned at the callee's
            // first instruction. Depth = ret addr + pushes + sub.
            int64_t depth = 8 + 8 * static_cast<int64_t>(pushed_.size()) +
                            rspAdj_;
            if (depth % 16 != 0) {
                fail(off, in, "call site breaks 16-byte alignment");
                return false;
            }
            seenCall_ = true;
            return true;
          }

          case Mn::Ret:
            if (!seenCall_) {
                fail(off, in, "ret before the call");
                return false;
            }
            if (rspAdj_ != 0) {
                fail(off, in, "ret with unbalanced rsp adjustment");
                return false;
            }
            if (popIdx_ != pushed_.size()) {
                fail(off, in,
                     "ret without restoring every saved register");
                return false;
            }
            seenRet_ = true;
            return true;

          default:
            fail(off, in, "instruction outside the entry-stub subset");
            return false;
        }
    }

    void
    fail(size_t off, const Insn& in, const char* why)
    {
        Violation v;
        v.offset = base_ + off;
        v.rule = Rule::EntryContract;
        v.insn = in.mn == Mn::Invalid ? "(bad bytes)" : in.text();
        v.detail = why;
        rep_->violations.push_back(std::move(v));
    }

    void
    failEnd(const char* why)
    {
        Violation v;
        v.offset = base_ + size_;
        v.rule = Rule::EntryContract;
        v.insn = "(end of stub)";
        v.detail = why;
        rep_->violations.push_back(std::move(v));
    }

    const uint8_t* code_;
    size_t size_;
    const CompilerConfig& cfg_;
    uint64_t base_;
    Report* rep_;

    std::vector<int> pushed_;  ///< hw numbers, in push order
    size_t popIdx_ = 0;
    int64_t rspAdj_ = 0;  ///< net bytes subtracted from rsp
    bool ctxHeld_ = false;     ///< %r14 holds the JitContext
    bool targetHeld_ = false;  ///< %r11 holds the host-passed target
    bool argsHeld_ = false;    ///< %r10 holds the marshal-slot array
    bool heapPinned_ = false;
    bool codePinned_ = false;
    bool seenCall_ = false;
    bool seenRet_ = false;
};

/**
 * Linear checker for the tiered per-function thunks (rule tier.thunk).
 * Like EntryStubChecker: straight-line code, no CFG — a single pass
 * tracks provenance of the few registers that matter (what was loaded
 * from which JitContext field) and the thunk's own frame discipline.
 */
class TierStubChecker
{
  public:
    TierStubChecker(const uint8_t* code, size_t size, TierStubKind kind,
                    const CompilerConfig& cfg, uint64_t base,
                    Report* rep)
        : code_(code), size_(size), kind_(kind), cfg_(cfg), base_(base),
          rep_(rep)
    {
    }

    void
    run()
    {
        size_t off = 0;
        while (off < size_) {
            Insn in;
            if (!decode(code_ + off, size_ - off, &in)) {
                fail(off, in, "undecodable byte(s) in tier thunk");
                return;
            }
            rep_->stats.instructions++;
            if (terminated_) {
                fail(off, in, "instruction after the thunk's exit");
                return;
            }
            if (!step(off, in))
                return;  // fail closed
            off += in.len;
        }
        rep_->stats.bytes += size_;
        if (!terminated_) {
            failEnd("thunk falls off the end without jmp/ret");
            return;
        }
        if (kind_ != TierStubKind::Dispatch && !seenCall_) {
            failEnd("thunk never calls its runtime entry");
            return;
        }
        if (rep_->ok())
            rep_->stats.tierStubs++;
    }

  private:
    /** What a tracked register currently holds. */
    enum class Val : uint8_t {
        Unknown,
        FuncEntries,  ///< ctx->funcEntries array pointer
        SlotValue,    ///< a value loaded from a funcEntries slot
        TierFn,       ///< ctx->tierFn
        InterpFn,     ///< ctx->interpFn
        CallResult,   ///< tierFn's return value (rax after the call)
    };

    bool
    pinnedWrite(size_t off, const Insn& in, int r)
    {
        if (r == kCtx) {
            fail(off, in, "%r14 (JitContext) written inside a thunk");
            return true;
        }
        if (r == kHeap && cfg_.needsHeapBaseReg()) {
            fail(off, in, "pinned heap base %r15 written inside a thunk");
            return true;
        }
        if (r == kCode && cfg_.cfi == CfiMode::Lfi) {
            fail(off, in, "pinned LFI code base %r13 written");
            return true;
        }
        if (r == kRsp || r == kRbp) {
            fail(off, in,
                 "stack register written outside the tracked "
                 "adjustment");
            return true;
        }
        return false;
    }

    void
    setVal(int r, Val v)
    {
        vals_[r] = v;
    }

    bool
    frameAccessOk(const Insn& in)
    {
        const MemRef& m = in.mem;
        if (!m.present || m.seg != Seg::None || !m.hasBase ||
            m.hasIndex || static_cast<int>(m.base) != kRsp)
            return false;
        // All thunk frame traffic is 8 bytes (u64 slots / f64).
        return m.disp >= 0 &&
               static_cast<int64_t>(m.disp) + 8 <= rspAdj_;
    }

    bool
    step(size_t off, const Insn& in)
    {
        switch (in.mn) {
          case Mn::Nop:
            return true;

          case Mn::Push: {
            if (kind_ != TierStubKind::Resolver) {
                fail(off, in, "push outside the resolver thunk");
                return false;
            }
            if (seenCall_ || rspAdj_ != 0) {
                fail(off, in, "push outside the resolver prologue");
                return false;
            }
            int r = in.reg;
            // Only the internal-convention argument registers need
            // preserving across tierFn; anything else being pushed is
            // not the emitted shape.
            if (r != 7 && r != 6 && r != 2 && r != 1 && r != 8 &&
                r != 9) {
                fail(off, in, "push of a non-argument register");
                return false;
            }
            pushed_.push_back(r);
            return true;
          }

          case Mn::Pop: {
            if (!seenCall_ || rspAdj_ != 0) {
                fail(off, in,
                     "pop before the call / before the frame is "
                     "released");
                return false;
            }
            if (popIdx_ >= pushed_.size()) {
                fail(off, in, "more pops than pushes");
                return false;
            }
            int expect = pushed_[pushed_.size() - 1 - popIdx_];
            if (in.reg != expect) {
                fail(off, in,
                     "pops must mirror pushes in reverse order");
                return false;
            }
            popIdx_++;
            return true;
          }

          case Mn::AluImm: {
            if (in.reg != kRsp || in.width != Width::W64 ||
                (in.aluOp != AluOp::Sub && in.aluOp != AluOp::Add) ||
                in.imm <= 0 || in.imm % 8 != 0) {
                fail(off, in, "ALU outside the rsp adjustment pair");
                return false;
            }
            if (kind_ == TierStubKind::Dispatch) {
                fail(off, in, "dispatch thunk must not touch rsp");
                return false;
            }
            if (in.aluOp == AluOp::Sub) {
                if (seenCall_ || rspAdj_ != 0) {
                    fail(off, in, "unexpected second frame allocation");
                    return false;
                }
                rspAdj_ = in.imm;
            } else {
                if (!seenCall_ || in.imm != rspAdj_) {
                    fail(off, in, "rsp adjustment unbalanced");
                    return false;
                }
                rspAdj_ = 0;
            }
            return true;
          }

          case Mn::Load: {
            if (!in.mem.present || in.mem.seg != Seg::None ||
                in.mem.hasIndex || in.width != Width::W64 ||
                !in.mem.hasBase) {
                fail(off, in, "load outside the thunk's operand shapes");
                return false;
            }
            if (pinnedWrite(off, in, in.reg))
                return false;
            int b = static_cast<int>(in.mem.base);
            if (b == kCtx) {
                if (in.mem.disp < 0 || in.mem.disp + 8 > kCtxBytes) {
                    fail(off, in, "context load out of bounds");
                    return false;
                }
                rep_->stats.ctxAccesses++;
                auto field = [&](auto member_off) {
                    return in.mem.disp ==
                           static_cast<int32_t>(member_off);
                };
                if (field(offsetof(jit::JitContext, funcEntries)))
                    setVal(in.reg, Val::FuncEntries);
                else if (field(offsetof(jit::JitContext, tierFn)))
                    setVal(in.reg, Val::TierFn);
                else if (field(offsetof(jit::JitContext, interpFn)))
                    setVal(in.reg, Val::InterpFn);
                else if (field(offsetof(jit::JitContext, runtimeData)))
                    setVal(in.reg, Val::Unknown);
                else {
                    fail(off, in,
                         "thunk loads a context field it has no "
                         "business reading");
                    return false;
                }
                return true;
            }
            if (vals_[b] == Val::FuncEntries) {
                if (in.mem.disp < 0 || in.mem.disp % 8 != 0) {
                    fail(off, in, "misaligned funcEntries slot load");
                    return false;
                }
                rep_->stats.trustedAccesses++;
                setVal(in.reg, Val::SlotValue);
                return true;
            }
            fail(off, in,
                 "load base is neither context nor the funcEntries "
                 "array");
            return false;
          }

          case Mn::Store: {
            if (kind_ != TierStubKind::Interp ||
                in.width != Width::W64 || !frameAccessOk(in)) {
                fail(off, in,
                     "store outside the interp thunk's arg frame");
                return false;
            }
            if (seenCall_) {
                fail(off, in, "arg store after the call");
                return false;
            }
            rep_->stats.frameAccesses++;
            return true;
          }

          case Mn::MovsdStore:
            if (!frameAccessOk(in) || seenCall_) {
                fail(off, in, "f64 store outside the thunk frame");
                return false;
            }
            rep_->stats.frameAccesses++;
            return true;

          case Mn::MovsdLoad:
            if (kind_ != TierStubKind::Resolver || !frameAccessOk(in) ||
                !seenCall_) {
                fail(off, in,
                     "f64 load outside the resolver's restore "
                     "sequence");
                return false;
            }
            rep_->stats.frameAccesses++;
            return true;

          case Mn::MovImm32:
            // The defined-function index for rsi — nothing else.
            if (in.reg != 6 /*rsi*/) {
                fail(off, in, "immediate into a non-index register");
                return false;
            }
            setVal(in.reg, Val::Unknown);
            return true;

          case Mn::Lea: {
            // lea rdx, [rsp + 0]: the interp thunk's args pointer.
            if (kind_ != TierStubKind::Interp || in.reg != 2 /*rdx*/ ||
                !in.mem.hasBase || in.mem.hasIndex ||
                static_cast<int>(in.mem.base) != kRsp ||
                in.mem.disp != 0 || rspAdj_ == 0) {
                fail(off, in, "lea outside the args-pointer shape");
                return false;
            }
            setVal(in.reg, Val::Unknown);
            return true;
          }

          case Mn::MovqToXmm:
            // Interp thunk mirrors an f64 result from rax to xmm0.
            if (kind_ != TierStubKind::Interp || !seenCall_) {
                fail(off, in, "xmm move outside the result mirror");
                return false;
            }
            return true;

          case Mn::CallReg: {
            if (kind_ == TierStubKind::Dispatch) {
                fail(off, in, "dispatch thunk must not call");
                return false;
            }
            if (seenCall_) {
                fail(off, in, "thunk must call exactly once");
                return false;
            }
            Val want = kind_ == TierStubKind::Resolver ? Val::TierFn
                                                       : Val::InterpFn;
            if (vals_[in.reg] != want) {
                fail(off, in,
                     kind_ == TierStubKind::Resolver
                         ? "call target is not ctx->tierFn"
                         : "call target is not ctx->interpFn");
                return false;
            }
            // Thunks are entered by call (return address on the
            // stack): depth = ret addr + pushes + frame.
            int64_t depth = 8 +
                            8 * static_cast<int64_t>(pushed_.size()) +
                            rspAdj_;
            if (depth % 16 != 0) {
                fail(off, in, "call site breaks 16-byte alignment");
                return false;
            }
            rep_->stats.trustedIndirects++;
            seenCall_ = true;
            for (auto& v : vals_)
                v = Val::Unknown;  // the callee clobbers volatiles
            vals_[0] = Val::CallResult;  // rax
            return true;
          }

          case Mn::JmpReg: {
            if (kind_ == TierStubKind::Interp) {
                fail(off, in, "interp thunk must return, not jump");
                return false;
            }
            if (rspAdj_ != 0 || popIdx_ != pushed_.size()) {
                fail(off, in,
                     "tail-jump with unbalanced frame or unrestored "
                     "registers");
                return false;
            }
            Val want = kind_ == TierStubKind::Dispatch
                           ? Val::SlotValue
                           : Val::CallResult;
            if (vals_[in.reg] != want) {
                fail(off, in,
                     kind_ == TierStubKind::Dispatch
                         ? "jump target is not a funcEntries slot value"
                         : "jump target is not tierFn's return value");
                return false;
            }
            if (kind_ == TierStubKind::Resolver && !seenCall_) {
                fail(off, in, "resolver tail-jump before the call");
                return false;
            }
            terminated_ = true;
            return true;
          }

          case Mn::Ret:
            if (kind_ != TierStubKind::Interp) {
                fail(off, in, "only the interp thunk returns");
                return false;
            }
            if (!seenCall_ || rspAdj_ != 0) {
                fail(off, in, "ret with unbalanced frame");
                return false;
            }
            terminated_ = true;
            return true;

          default:
            fail(off, in, "instruction outside the tier-thunk subset");
            return false;
        }
    }

    void
    fail(size_t off, const Insn& in, const char* why)
    {
        Violation v;
        v.offset = base_ + off;
        v.rule = Rule::TierThunk;
        v.insn = in.mn == Mn::Invalid ? "(bad bytes)" : in.text();
        v.detail = why;
        rep_->violations.push_back(std::move(v));
    }

    void
    failEnd(const char* why)
    {
        Violation v;
        v.offset = base_ + size_;
        v.rule = Rule::TierThunk;
        v.insn = "(end of thunk)";
        v.detail = why;
        rep_->violations.push_back(std::move(v));
    }

    const uint8_t* code_;
    size_t size_;
    TierStubKind kind_;
    const CompilerConfig& cfg_;
    uint64_t base_;
    Report* rep_;

    Val vals_[16] = {};
    std::vector<int> pushed_;
    size_t popIdx_ = 0;
    int64_t rspAdj_ = 0;
    bool seenCall_ = false;
    bool terminated_ = false;
};

}  // namespace

const char*
name(Rule r)
{
    switch (r) {
      case Rule::DecodeError: return "verify.decode";
      case Rule::BadBranchTarget: return "cfg.target";
      case Rule::PinnedWrite: return "pin.write";
      case Rule::StackDiscipline: return "stack.shape";
      case Rule::SegueLoadNoGs: return "segue.load.gs";
      case Rule::SegueStoreNoGs: return "segue.store.gs";
      case Rule::GsUnexpected: return "segue.gs.unexpected";
      case Rule::SegueIndexNotTruncated: return "segue.index.ea32";
      case Rule::BaseRegShape: return "basereg.shape";
      case Rule::BaseRegIndexNotTruncated: return "basereg.index.trunc";
      case Rule::BoundsMissing: return "bounds.dominate";
      case Rule::MemUnproven: return "mem.unproven";
      case Rule::LfiCallUnmasked: return "lfi.call.mask";
      case Rule::LfiJmpUnmasked: return "lfi.jmp.mask";
      case Rule::LfiRetUnprotected: return "lfi.ret.protect";
      case Rule::EntryContract: return "entry.contract";
      case Rule::TierThunk: return "tier.thunk";
      case Rule::W2cGsAccess: return "w2c.gs_access";
      case Rule::W2cBoundsDominate: return "w2c.bounds.dominate";
      case Rule::W2cCfgResolved: return "w2c.cfg.resolved";
      case Rule::W2cHeapEscape: return "w2c.heap_escape";
    }
    return "?";
}

std::string
hexWindow(const uint8_t* code, size_t size, uint64_t off)
{
    std::string s;
    char b[4];
    for (uint64_t i = off; i < size && i < off + 12; i++) {
        std::snprintf(b, sizeof b, "%02x ", code[i]);
        s += b;
    }
    if (!s.empty())
        s.pop_back();
    if (off + 12 < size)
        s += " ..";
    return s;
}

void
Stats::merge(const Stats& o)
{
    functions += o.functions;
    instructions += o.instructions;
    bytes += o.bytes;
    basicBlocks += o.basicBlocks;
    frameAccesses += o.frameAccesses;
    ctxAccesses += o.ctxAccesses;
    trustedAccesses += o.trustedAccesses;
    heapGs += o.heapGs;
    heapGsEa32 += o.heapGsEa32;
    heapBaseReg += o.heapBaseReg;
    heapUnsandboxed += o.heapUnsandboxed;
    boundsChecked += o.boundsChecked;
    boundsStatic += o.boundsStatic;
    indexProvenU32 += o.indexProvenU32;
    indexAssumedU32 += o.indexAssumedU32;
    maskedIndirects += o.maskedIndirects;
    trustedIndirects += o.trustedIndirects;
    protectedReturns += o.protectedReturns;
    entryStubs += o.entryStubs;
    tierStubs += o.tierStubs;
}

std::string
Report::summary() const
{
    char buf[256];
    std::string s;
    std::snprintf(buf, sizeof buf, "sfi-verify: %zu violation(s)\n",
                  violations.size());
    s += buf;
    for (const auto& v : violations) {
        std::snprintf(buf, sizeof buf, "  %s%s+0x%llx [%s] %s — %s\n",
                      v.func.c_str(), v.func.empty() ? "" : " ",
                      static_cast<unsigned long long>(v.offset),
                      name(v.rule), v.insn.c_str(), v.detail.c_str());
        s += buf;
    }
    std::snprintf(
        buf, sizeof buf,
        "  %llu insns, %llu bytes, %llu blocks, %llu function(s)\n",
        static_cast<unsigned long long>(stats.instructions),
        static_cast<unsigned long long>(stats.bytes),
        static_cast<unsigned long long>(stats.basicBlocks),
        static_cast<unsigned long long>(stats.functions));
    s += buf;
    std::snprintf(
        buf, sizeof buf,
        "  accesses: frame %llu, ctx %llu, trusted %llu, gs %llu "
        "(ea32 %llu), basereg %llu, unsandboxed %llu\n",
        static_cast<unsigned long long>(stats.frameAccesses),
        static_cast<unsigned long long>(stats.ctxAccesses),
        static_cast<unsigned long long>(stats.trustedAccesses),
        static_cast<unsigned long long>(stats.heapGs),
        static_cast<unsigned long long>(stats.heapGsEa32),
        static_cast<unsigned long long>(stats.heapBaseReg),
        static_cast<unsigned long long>(stats.heapUnsandboxed));
    s += buf;
    std::snprintf(
        buf, sizeof buf,
        "  proofs: bounds %llu (static %llu), idx-proven %llu, "
        "idx-assumed %llu, masked %llu, trusted-indirect %llu, "
        "protected-ret %llu\n",
        static_cast<unsigned long long>(stats.boundsChecked),
        static_cast<unsigned long long>(stats.boundsStatic),
        static_cast<unsigned long long>(stats.indexProvenU32),
        static_cast<unsigned long long>(stats.indexAssumedU32),
        static_cast<unsigned long long>(stats.maskedIndirects),
        static_cast<unsigned long long>(stats.trustedIndirects),
        static_cast<unsigned long long>(stats.protectedReturns));
    s += buf;
    if (stats.entryStubs) {
        std::snprintf(buf, sizeof buf,
                      "  entry stubs proven: %llu (entry.contract)\n",
                      static_cast<unsigned long long>(stats.entryStubs));
        s += buf;
    }
    if (stats.tierStubs) {
        std::snprintf(buf, sizeof buf,
                      "  tier thunks proven: %llu (tier.thunk)\n",
                      static_cast<unsigned long long>(stats.tierStubs));
        s += buf;
    }
    return s;
}

Report
checkFunction(const uint8_t* code, size_t size,
              const jit::CompilerConfig& cfg, uint64_t base_offset,
              uint64_t min_mem_bytes)
{
    Report rep;
    if (size == 0)
        return rep;
    FnChecker fc(code, size, cfg, base_offset, &rep, min_mem_bytes);
    fc.run();
    return rep;
}

Report
checkEntryStub(const uint8_t* code, size_t size,
               const jit::CompilerConfig& cfg, uint64_t base_offset)
{
    Report rep;
    if (size == 0)
        return rep;
    EntryStubChecker ec(code, size, cfg, base_offset, &rep);
    ec.run();
    return rep;
}

Report
checkTierStub(const uint8_t* code, size_t size, TierStubKind kind,
              const jit::CompilerConfig& cfg, uint64_t base_offset)
{
    Report rep;
    if (size == 0)
        return rep;
    TierStubChecker tc(code, size, kind, cfg, base_offset, &rep);
    tc.run();
    return rep;
}

Report
checkModule(const jit::CompiledModule& cm)
{
    Report rep;
    auto absorb = [&rep](Report r) {
        rep.stats.merge(r.stats);
        for (auto& v : r.violations)
            rep.violations.push_back(std::move(v));
    };
    const uint8_t* code = static_cast<const uint8_t*>(cm.code.base());
    for (size_t i = 0; i < cm.funcOffsets.size(); i++) {
        Report r = checkFunction(code + cm.funcOffsets[i],
                                 cm.funcCodeSizes[i], cm.config,
                                 cm.funcOffsets[i], cm.minMemBytes);
        r.stats.functions++;
        char fn[32];
        std::snprintf(fn, sizeof fn, "func#%zu", i);
        for (auto& v : r.violations)
            if (v.func.empty())
                v.func = fn;
        absorb(std::move(r));
    }
    // Trap stubs sit immediately after the last function; they run
    // sandboxed (reached by in-sandbox jumps), so they are verified
    // under the same contract. The entry trampolines follow the trap
    // stubs at the very end of the buffer (their save set is derived
    // from the bodies), and are proven under entry.contract instead of
    // being trusted.
    uint64_t entry_begin =
        cm.entrySize != 0 ? cm.entryOffset : cm.totalCodeBytes;
    if (!cm.funcOffsets.empty()) {
        uint64_t stubs =
            cm.funcOffsets.back() + cm.funcCodeSizes.back();
        if (stubs < entry_begin)
            absorb(checkFunction(code + stubs, entry_begin - stubs,
                                 cm.config, stubs, cm.minMemBytes));
    }
    absorb(checkEntryStub(code + cm.entryOffset, cm.entrySize,
                          cm.config, cm.entryOffset));
    absorb(checkEntryStub(code + cm.directEntryOffset, cm.directEntrySize,
                          cm.config, cm.directEntryOffset));
    return rep;
}

}  // namespace sfi::verify
