/**
 * @file
 * sfi-verify: the static SFI verifier as a command-line tool.
 *
 * Compiles registry workloads under a chosen (or every) sandboxing
 * configuration and runs the binary verifier over the emitted machine
 * code. Exit status is the number of configurations with violations,
 * so it drops straight into CI.
 *
 *   sfi-verify                       # full workload x strategy matrix
 *   sfi-verify --wkld sieve          # one workload, all strategies
 *   sfi-verify --mem segue --cfi lfi # one config, all workloads
 *   sfi-verify --wkld sieve --mem segue-bounds --dump
 *
 * A second mode audits the build's own object files: every
 * policy-templated w2c kernel is sliced out of the ELF and statically
 * verified against its policy contract (verify/objcheck.h).
 *
 *   sfi-verify --elf kernels.cc.o [--elf ...] [--policy-filter segue]
 *
 * A third mode audits the tiered code cache (jit/codecache.h): it
 * drives the lazy pipeline over the workload x strategy matrix —
 * publishing the same baseline blobs, optimized blobs, and thunk sets
 * a FaaS host would — then re-proves every published blob from the
 * cache's stored metadata, independently of the fill-time checks.
 *
 *   sfi-verify --cache-audit [--wkld NAME] [--mem STRATEGY]
 *
 * ELF/cache-mode exit codes (so the ctest gate cannot pass vacuously):
 *   0 every matched kernel verified   1 violations found
 *   2 usage error                     3 could not parse / no kernels
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "elf/object.h"
#include "jit/codecache.h"
#include "jit/compiler.h"
#include "jit/tier.h"
#include "verify/checker.h"
#include "verify/decoder.h"
#include "verify/objcheck.h"
#include "wkld/workloads.h"

namespace sfi {
namespace {

using jit::CfiMode;
using jit::CompilerConfig;
using jit::MemStrategy;

struct Options
{
    const char* wkld = nullptr;  // nullptr = all
    const char* mem = nullptr;   // nullptr = all sandboxing strategies
    const char* cfi = nullptr;   // nullptr = both
    std::vector<const char*> elfObjs;  // non-empty = ELF object mode
    const char* policyFilter = nullptr;
    const char* jsonPath = nullptr;
    bool dump = false;
    bool quiet = false;
    bool optimize = true;
    bool cacheAudit = false;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: sfi-verify [--wkld NAME] [--mem STRATEGY] [--cfi MODE]\n"
        "                  [--opt | --no-opt] [--dump] [--quiet]\n"
        "       sfi-verify --elf OBJ [--elf OBJ ...] [--policy-filter S]\n"
        "                  [--json PATH] [--dump] [--quiet]\n"
        "       sfi-verify --cache-audit [--wkld NAME] [--mem STRATEGY]\n"
        "                  [--quiet]\n"
        "  --wkld NAME   verify one registry workload (default: all)\n"
        "  --mem S       base-reg | segue | segue-loads-only | bounds-check |\n"
        "                segue-bounds | unsandboxed (default: all "
        "sandboxing\n"
        "                strategies)\n"
        "  --cfi M       none | lfi (default: both)\n"
        "  --opt         run the verified optimizer (default)\n"
        "  --no-opt      disable the optimizer\n"
        "  --elf OBJ     verify the policy-templated w2c kernels inside an\n"
        "                ELF relocatable object (repeatable)\n"
        "  --cache-audit fill the tiered code cache from the selected\n"
        "                matrix, then re-prove every published blob\n"
        "  --policy-filter S  only check policies whose name contains S\n"
        "  --json PATH   write per-policy coverage counters as JSON\n"
        "  --dump        print the decoded instruction listing\n"
        "  --quiet       only print failing configurations/kernels\n"
        "ELF-mode exit codes: 0 verified, 1 violation, 2 usage,\n"
        "                     3 could-not-parse (incl. no matching "
        "kernels)\n");
    return 2;
}

std::vector<CompilerConfig>
selectConfigs(const Options& opt)
{
    struct MemName
    {
        const char* name;
        MemStrategy mem;
    };
    const MemName mems[] = {
        {"base-reg", MemStrategy::BaseReg},
        {"segue", MemStrategy::Segue},
        {"segue-loads-only", MemStrategy::SegueLoadsOnly},
        {"bounds-check", MemStrategy::BoundsCheck},
        {"segue-bounds", MemStrategy::SegueBounds},
        {"unsandboxed", MemStrategy::Unsandboxed},
    };
    std::vector<CompilerConfig> out;
    for (const MemName& m : mems) {
        if (opt.mem ? std::strcmp(opt.mem, m.name) != 0
                    : m.mem == MemStrategy::Unsandboxed)
            continue;
        for (CfiMode c : {CfiMode::None, CfiMode::Lfi}) {
            if (opt.cfi &&
                std::strcmp(opt.cfi, c == CfiMode::Lfi ? "lfi" : "none"))
                continue;
            // LFI deployments hand the sandbox raw 64-bit registers, so
            // pair Lfi with the untrusted-index contract (the presets'
            // convention).
            out.push_back(CompilerConfig{
                .mem = m.mem,
                .cfi = c,
                .untrustedIndexRegs = c == CfiMode::Lfi,
                .optimize = opt.optimize});
        }
    }
    return out;
}

std::vector<wkld::Workload>
selectWorkloads(const Options& opt)
{
    std::vector<wkld::Workload> all;
    for (const auto* suite :
         {&wkld::sightglass(), &wkld::spec17(), &wkld::polydhry(),
          &wkld::faasWorkloads()})
        all.insert(all.end(), suite->begin(), suite->end());
    if (!opt.wkld)
        return all;
    std::vector<wkld::Workload> picked;
    for (const auto& w : all)
        if (!std::strcmp(w.name, opt.wkld))
            picked.push_back(w);
    if (picked.empty()) {
        std::fprintf(stderr, "sfi-verify: unknown workload '%s'\n",
                     opt.wkld);
    }
    return picked;
}

void
dumpListing(const jit::CompiledModule& cm)
{
    const uint8_t* code = static_cast<const uint8_t*>(cm.code.base());
    for (size_t f = 0; f < cm.funcOffsets.size(); f++) {
        uint64_t off = cm.funcOffsets[f];
        uint64_t end = off + cm.funcCodeSizes[f];
        std::printf("  -- function %zu [%#llx, %#llx) --\n", f,
                    (unsigned long long)off, (unsigned long long)end);
        while (off < end) {
            verify::Insn in;
            if (!verify::decode(code + off, end - off, &in)) {
                std::printf("  +%#llx  <undecodable>\n",
                            (unsigned long long)off);
                break;
            }
            std::printf("  +%#llx  %s\n", (unsigned long long)off,
                        in.text().c_str());
            off += in.len;
        }
    }
}

void
dumpElfListing(const elf::FuncSlice& fn)
{
    std::printf("  -- %s [%llu bytes] --\n", fn.name.c_str(),
                (unsigned long long)fn.size);
    uint64_t off = 0;
    while (off < fn.size) {
        verify::Insn in;
        if (!verify::decode(fn.bytes + off, fn.size - off, &in)) {
            std::printf("  +%#llx  <undecodable> %s\n",
                        (unsigned long long)off,
                        verify::hexWindow(fn.bytes, fn.size, off).c_str());
            break;
        }
        std::printf("  +%#llx  %s\n", (unsigned long long)off,
                    in.text().c_str());
        off += in.len;
    }
}

/** Aggregated per-policy coverage counters for the --json row. */
struct PolicyTotals
{
    uint64_t kernels = 0;
    uint64_t verified = 0;
    uint64_t exempt = 0;
    uint64_t instructions = 0;
    uint64_t heapAccesses = 0;
    uint64_t hostAccesses = 0;
    uint64_t boundsChecked = 0;
    uint64_t calls = 0;
    uint64_t violations = 0;
};

bool
writeCoverageJson(const char* path,
                  const PolicyTotals (&per)[6])
{
    std::FILE* f = std::fopen(path, "w");
    if (!f) {
        std::fprintf(stderr, "sfi-verify: cannot write %s\n", path);
        return false;
    }
    // Same shape the benchmarks emit (bench/bench_util.h JsonEmitter),
    // so the perf-lab ingester picks these rows up unchanged.
    std::fprintf(f, "{\n  \"bench\": \"sfi_verify_elf\",\n"
                    "  \"results\": [\n");
    bool first = true;
    for (int p = 1; p <= 5; p++) {
        const PolicyTotals& t = per[p];
        if (!t.kernels)
            continue;
        if (!first)
            std::fprintf(f, ",\n");
        first = false;
        std::fprintf(
            f,
            "    {\"policy\": \"%s\", \"kernels\": %llu, "
            "\"verified\": %llu, \"exempt\": %llu, "
            "\"instructions\": %llu, \"heap_accesses\": %llu, "
            "\"host_accesses\": %llu, \"bounds_checked\": %llu, "
            "\"calls\": %llu, \"violations\": %llu}",
            verify::name(static_cast<verify::W2cPolicy>(p)),
            (unsigned long long)t.kernels,
            (unsigned long long)t.verified,
            (unsigned long long)t.exempt,
            (unsigned long long)t.instructions,
            (unsigned long long)t.heapAccesses,
            (unsigned long long)t.hostAccesses,
            (unsigned long long)t.boundsChecked,
            (unsigned long long)t.calls,
            (unsigned long long)t.violations);
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    return true;
}

int
runElf(const Options& opt)
{
    verify::ObjCheckOptions checkOpts;
    if (opt.policyFilter)
        checkOpts.policyFilter = opt.policyFilter;

    PolicyTotals per[6];
    uint64_t violations = 0, kernels = 0, verified = 0, exempt = 0,
             instructions = 0;
    for (const char* path : opt.elfObjs) {
        auto obj = elf::ElfObject::load(path);
        if (!obj.isOk()) {
            std::fprintf(stderr, "sfi-verify: %s: %s\n", path,
                         obj.message().c_str());
            return 3;
        }
        auto rep = verify::checkObject(*obj, checkOpts);
        if (!rep.isOk()) {
            std::fprintf(stderr, "sfi-verify: %s: %s\n", path,
                         rep.message().c_str());
            return 3;
        }
        violations += rep->violations.size();
        kernels += rep->functions.size();
        verified += rep->verified;
        exempt += rep->exempt;
        instructions += rep->instructions;
        if (!opt.quiet || !rep->ok())
            std::printf("== %s ==\n", path);
        if (!rep->ok())
            std::printf("%s", rep->summary().c_str());
        for (const auto& fn : rep->functions) {
            int p = static_cast<int>(fn.policy);
            per[p].kernels++;
            per[p].exempt += fn.exempt;
            per[p].verified += !fn.exempt && !fn.violations;
            per[p].instructions += fn.instructions;
            per[p].heapAccesses += fn.heapAccesses;
            per[p].hostAccesses += fn.hostAccesses;
            per[p].boundsChecked += fn.boundsChecked;
            per[p].calls += fn.calls;
            per[p].violations += fn.violations;
            if (!opt.quiet || fn.violations) {
                std::printf(
                    "  %-12s %-8s %5llu insn %3llu bb  heap %3llu  "
                    "host %3llu  bounds %3llu  calls %2llu  %s\n",
                    verify::name(fn.policy),
                    fn.exempt ? "exempt"
                              : (fn.violations ? "FAIL" : "verified"),
                    (unsigned long long)fn.instructions,
                    (unsigned long long)fn.basicBlocks,
                    (unsigned long long)fn.heapAccesses,
                    (unsigned long long)fn.hostAccesses,
                    (unsigned long long)fn.boundsChecked,
                    (unsigned long long)fn.calls, fn.name.c_str());
            }
        }
        if (opt.dump) {
            for (const auto& fn : obj->functions())
                if (verify::policyOf(fn.name) != verify::W2cPolicy::None)
                    dumpElfListing(fn);
        }
    }
    if (!opt.quiet) {
        std::printf(
            "\n%llu violation(s); %llu/%llu kernel(s) verified, "
            "%llu exempt (native); %llu instructions\n",
            (unsigned long long)violations, (unsigned long long)verified,
            (unsigned long long)(kernels - exempt),
            (unsigned long long)exempt,
            (unsigned long long)instructions);
    }
    if (kernels == exempt) {
        // Refuse a vacuous pass: a mangling or filter change that
        // matches no analyzable kernel must not read as "verified".
        std::fprintf(stderr,
                     "sfi-verify: no policy kernel was analyzed across "
                     "%zu object(s) — refusing a vacuous pass\n",
                     opt.elfObjs.size());
        return 3;
    }
    if (opt.jsonPath && !writeCoverageJson(opt.jsonPath, per))
        return 3;
    return violations ? 1 : 0;
}

/**
 * --cache-audit: exercise the lazy tiered pipeline over the selected
 * matrix so the process-wide CodeCache holds exactly the blobs a FaaS
 * host would publish (baseline bodies via resolve(), optimized bodies
 * via the tier-up fill path, thunk sets via create()), then ask the
 * cache to re-prove every one of them from stored metadata. The audit
 * is independent of the fill-time verification — a checker or cache
 * bug that let a bad blob through the fill is caught here.
 */
int
runCacheAudit(const Options& opt)
{
    auto configs = selectConfigs(opt);
    auto workloads = selectWorkloads(opt);
    if (configs.empty() || workloads.empty())
        return 2;

    jit::CodeCache& cache = jit::CodeCache::instance();
    uint64_t modules = 0, functions = 0, fallbacks = 0;
    for (const CompilerConfig& cfg : configs) {
        // The tiered pipeline is CfiMode::None-only (tier.h).
        if (cfg.cfi == CfiMode::Lfi)
            continue;
        for (const auto& w : workloads) {
            wasm::Module m = w.make();
            auto tm = jit::TieredModule::create(m, cfg,
                                                jit::TierOptions{});
            if (!tm.isOk()) {
                std::fprintf(stderr,
                             "sfi-verify: %-14s %-12s tiered create "
                             "failed: %s\n",
                             jit::name(cfg.mem), w.name,
                             tm.message().c_str());
                return 3;
            }
            uint64_t min_mem =
                uint64_t(m.memory.minPages) * 65536;
            for (uint32_t i = 0; i < (*tm)->numDefined(); i++) {
                (*tm)->resolve(i);  // baseline fill (or interp, closed)
                // Optimized-tier fill: the same cache call tier-up
                // makes when the counter trips.
                auto blob = cache.getFunction((*tm)->moduleHash(), i, m,
                                              (*tm)->optConfig(),
                                              min_mem);
                if (!blob.isOk() && !opt.quiet)
                    std::printf("  note: %-14s %-12s fn %u optimized "
                                "fill rejected (fail closed): %s\n",
                                jit::name(cfg.mem), w.name, i,
                                blob.message().c_str());
                functions++;
            }
            fallbacks += (*tm)->stats().interpFallbacks;
            modules++;
        }
    }

    auto proven = cache.audit();
    jit::CodeCache::Stats st = cache.stats();
    if (!proven.isOk()) {
        std::printf("cache audit FAILED after %llu modules: %s\n",
                    (unsigned long long)modules,
                    proven.message().c_str());
        return 1;
    }
    if (!opt.quiet) {
        std::printf(
            "cache audit: %llu blob(s) re-proven (%llu cache entries, "
            "%llu KiB published) from %llu module fills, %llu "
            "functions, %llu interp fallbacks; %llu fill-time verify "
            "failure(s) stayed unpublished\n",
            (unsigned long long)*proven,
            (unsigned long long)st.entries,
            (unsigned long long)(st.publishedBytes / 1024),
            (unsigned long long)modules, (unsigned long long)functions,
            (unsigned long long)fallbacks,
            (unsigned long long)st.verifyFailures);
    }
    if (*proven == 0) {
        // Same vacuous-pass refusal as the ELF gate.
        std::fprintf(stderr,
                     "sfi-verify: cache audit proved no blob — "
                     "refusing a vacuous pass\n");
        return 3;
    }
    return 0;
}

int
run(const Options& opt)
{
    auto configs = selectConfigs(opt);
    auto workloads = selectWorkloads(opt);
    if (configs.empty() || workloads.empty())
        return 2;

    int failures = 0;
    verify::Stats total;
    for (const CompilerConfig& cfg : configs) {
        uint64_t viol = 0;
        verify::Stats cfgStats;
        jit::OptStats cfgOpt;
        for (const auto& w : workloads) {
            auto cm = jit::compile(w.make(), cfg);
            if (!cm.isOk()) {
                std::printf("%-14s %-4s %-12s COMPILE FAILED: %s\n",
                            jit::name(cfg.mem), jit::name(cfg.cfi),
                            w.name, cm.message().c_str());
                failures++;
                continue;
            }
            cfgOpt.merge(cm->optStats);
            verify::Report rep = verify::checkModule(*cm);
            cfgStats.merge(rep.stats);
            viol += rep.violations.size();
            if (!rep.ok()) {
                std::printf("%-14s %-4s %-12s\n%s\n", jit::name(cfg.mem),
                            jit::name(cfg.cfi), w.name,
                            rep.summary().c_str());
            }
            if (opt.dump)
                dumpListing(*cm);
        }
        total.merge(cfgStats);
        if (viol)
            failures++;
        if (!opt.quiet || viol) {
            std::printf(
                "%-14s %-4s  %-8s %4llu fn %6llu insn  gs %llu "
                "(ea32 %llu)  basereg %llu  bounds %llu  masked %llu  "
                "ret %llu\n",
                jit::name(cfg.mem), jit::name(cfg.cfi),
                viol ? "FAIL" : "verified",
                (unsigned long long)cfgStats.functions,
                (unsigned long long)cfgStats.instructions,
                (unsigned long long)cfgStats.heapGs,
                (unsigned long long)cfgStats.heapGsEa32,
                (unsigned long long)cfgStats.heapBaseReg,
                (unsigned long long)cfgStats.boundsChecked,
                (unsigned long long)cfgStats.maskedIndirects,
                (unsigned long long)cfgStats.protectedReturns);
            if (opt.optimize && cfg.explicitBounds()) {
                std::printf(
                    "  opt: %llu/%llu checks eliminated (%llu dominated, "
                    "%llu static), re-proved %llu dynamic + %llu static; "
                    "%llu adds folded, %llu cse, %llu insns removed\n",
                    (unsigned long long)cfgOpt.checksEliminated(),
                    (unsigned long long)cfgOpt.checksConsidered,
                    (unsigned long long)cfgOpt.checksDominated,
                    (unsigned long long)cfgOpt.checksStatic,
                    (unsigned long long)cfgStats.boundsChecked,
                    (unsigned long long)cfgStats.boundsStatic,
                    (unsigned long long)cfgOpt.addsFolded,
                    (unsigned long long)cfgOpt.cseHits,
                    (unsigned long long)cfgOpt.instrsRemoved);
            }
            if (opt.optimize) {
                std::printf(
                    "  peephole: %llu dead movs, %llu redundant zexts, "
                    "%llu xor-zeros; %llu bytes saved\n",
                    (unsigned long long)cfgOpt.peepMovsDropped,
                    (unsigned long long)cfgOpt.peepZextsDropped,
                    (unsigned long long)cfgOpt.peepXorZeros,
                    (unsigned long long)cfgOpt.peepBytesSaved);
            }
        }
    }
    if (!opt.quiet) {
        std::printf(
            "\n%d configuration(s) failed; %llu instructions verified "
            "across %llu functions\n",
            failures, (unsigned long long)total.instructions,
            (unsigned long long)total.functions);
    }
    return failures;
}

}  // namespace
}  // namespace sfi

int
main(int argc, char** argv)
{
    sfi::Options opt;
    for (int i = 1; i < argc; i++) {
        auto want = [&](const char* flag) -> const char* {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "sfi-verify: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (const char* v = want("--wkld"))
            opt.wkld = v;
        else if (const char* v = want("--mem"))
            opt.mem = v;
        else if (const char* v = want("--cfi"))
            opt.cfi = v;
        else if (const char* v = want("--elf"))
            opt.elfObjs.push_back(v);
        else if (const char* v = want("--policy-filter"))
            opt.policyFilter = v;
        else if (const char* v = want("--json"))
            opt.jsonPath = v;
        else if (!std::strcmp(argv[i], "--opt"))
            opt.optimize = true;
        else if (!std::strcmp(argv[i], "--no-opt"))
            opt.optimize = false;
        else if (!std::strcmp(argv[i], "--dump"))
            opt.dump = true;
        else if (!std::strcmp(argv[i], "--quiet"))
            opt.quiet = true;
        else if (!std::strcmp(argv[i], "--cache-audit"))
            opt.cacheAudit = true;
        else
            return sfi::usage();
    }
    if (!opt.elfObjs.empty()) {
        if (opt.wkld || opt.mem || opt.cfi || opt.cacheAudit)
            return sfi::usage();
        return sfi::runElf(opt);
    }
    if (opt.policyFilter || opt.jsonPath)
        return sfi::usage();
    if (opt.cacheAudit)
        return sfi::runCacheAudit(opt);
    return sfi::run(opt);
}
