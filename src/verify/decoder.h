/**
 * @file
 * Linear x86-64 decoder for the Assembler-emitted subset.
 *
 * Handles the legacy prefixes the JIT uses (0x65 %gs, 0x64 %fs, 0x67
 * address-size, 0x66 operand-size, 0xf2/0xf3 mandatory), REX, two-byte
 * 0x0f escapes, full ModRM/SIB/disp addressing, and the rel32 branch
 * forms. Anything else returns false — the checker fails closed.
 */
#ifndef SFIKIT_VERIFY_DECODER_H_
#define SFIKIT_VERIFY_DECODER_H_

#include <cstddef>
#include <cstdint>

#include "verify/insn.h"

namespace sfi::verify {

/**
 * Decodes one instruction at @p p (at most @p avail bytes). On success
 * fills @p out (including out->len) and returns true. On failure
 * returns false with out->len set to the number of bytes examined
 * (>= 1 when avail > 0), so callers can report the offending offset.
 */
bool decode(const uint8_t* p, size_t avail, Insn* out);

}  // namespace sfi::verify

#endif  // SFIKIT_VERIFY_DECODER_H_
