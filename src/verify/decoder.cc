#include "verify/decoder.h"

#include <cstdio>
#include <cstring>

namespace sfi::verify {

namespace {

using x64::AluOp;
using x64::Cond;
using x64::Reg;
using x64::Seg;
using x64::ShiftOp;
using x64::Width;

/** Cursor over the byte stream; all reads are bounds-checked. */
struct Cursor
{
    const uint8_t* p;
    size_t avail;
    size_t pos = 0;

    bool
    u8(uint8_t* out)
    {
        if (pos >= avail)
            return false;
        *out = p[pos++];
        return true;
    }

    bool
    peek(uint8_t* out) const
    {
        if (pos >= avail)
            return false;
        *out = p[pos];
        return true;
    }

    bool
    u32(uint32_t* out)
    {
        if (pos + 4 > avail)
            return false;
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
        pos += 4;
        *out = v;
        return true;
    }

    bool
    u64(uint64_t* out)
    {
        if (pos + 8 > avail)
            return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
        pos += 8;
        *out = v;
        return true;
    }
};

/** Prefix state accumulated before the opcode. */
struct Prefixes
{
    Seg seg = Seg::None;
    bool addr32 = false;  // 0x67
    bool op16 = false;    // 0x66 (operand size or SSE mandatory)
    bool repF2 = false;   // 0xf2
    bool repF3 = false;   // 0xf3
    uint8_t rex = 0;      // 0 when absent
    bool rexW() const { return (rex & 0x08) != 0; }
    uint8_t rexR() const { return (rex & 0x04) ? 8 : 0; }
    uint8_t rexX() const { return (rex & 0x02) ? 8 : 0; }
    uint8_t rexB() const { return (rex & 0x01) ? 8 : 0; }

    Width
    opWidth() const  // for non-byte integer ops
    {
        if (rexW())
            return Width::W64;
        if (op16)
            return Width::W16;
        return Width::W32;
    }
};

/**
 * Decodes ModRM (+SIB +disp). On a register form sets *rm_reg (with
 * REX.B applied) and leaves mem->present false; on a memory form fills
 * *mem. reg_out receives the (REX.R-extended) reg field.
 */
bool
modrm(Cursor& c, const Prefixes& pfx, uint8_t* reg_out, int8_t* rm_reg,
      MemRef* mem)
{
    uint8_t b;
    if (!c.u8(&b))
        return false;
    uint8_t mod = b >> 6;
    uint8_t reg = (b >> 3) & 7;
    uint8_t rm = b & 7;
    *reg_out = static_cast<uint8_t>(reg | pfx.rexR());

    if (mod == 3) {
        *rm_reg = static_cast<int8_t>(rm | pfx.rexB());
        return true;
    }

    mem->present = true;
    mem->seg = pfx.seg;
    mem->addr32 = pfx.addr32;

    uint8_t disp_size = mod == 1 ? 1 : mod == 2 ? 4 : 0;

    if (rm == 4) {
        uint8_t s;
        if (!c.u8(&s))
            return false;
        uint8_t ss = s >> 6;
        uint8_t idx = (s >> 3) & 7;
        uint8_t base = s & 7;
        if (idx != 4 || pfx.rexX()) {
            mem->hasIndex = true;
            mem->index = static_cast<Reg>(idx | pfx.rexX());
            mem->scale = static_cast<uint8_t>(1u << ss);
        }
        if (mod == 0 && base == 5) {
            disp_size = 4;  // no base, disp32
        } else {
            mem->hasBase = true;
            mem->base = static_cast<Reg>(base | pfx.rexB());
        }
    } else if (mod == 0 && rm == 5) {
        // RIP-relative: the Assembler never emits it; reject so the
        // checker fails closed on foreign code.
        return false;
    } else {
        mem->hasBase = true;
        mem->base = static_cast<Reg>(rm | pfx.rexB());
    }

    if (disp_size == 1) {
        uint8_t d;
        if (!c.u8(&d))
            return false;
        mem->disp = static_cast<int8_t>(d);
    } else if (disp_size == 4) {
        uint32_t d;
        if (!c.u32(&d))
            return false;
        mem->disp = static_cast<int32_t>(d);
    }
    return true;
}

bool
imm8(Cursor& c, Insn* out)
{
    uint8_t v;
    if (!c.u8(&v))
        return false;
    out->hasImm = true;
    out->imm = static_cast<int8_t>(v);
    return true;
}

bool
imm32(Cursor& c, Insn* out)
{
    uint32_t v;
    if (!c.u32(&v))
        return false;
    out->hasImm = true;
    out->imm = static_cast<int32_t>(v);
    return true;
}

bool
rel32(Cursor& c, Insn* out)
{
    uint32_t v;
    if (!c.u32(&v))
        return false;
    out->hasRel = true;
    out->rel = static_cast<int32_t>(v);
    return true;
}

/** Two-byte (0x0f) opcode space. */
bool
decode0f(Cursor& c, const Prefixes& pfx, Insn* out)
{
    uint8_t op;
    if (!c.u8(&op))
        return false;

    uint8_t reg;
    int8_t rm = -1;

    // Conditional families first.
    if (op >= 0x40 && op <= 0x4f) {  // cmovcc r, r
        out->mn = Mn::Cmovcc;
        out->cond = static_cast<Cond>(op & 0xf);
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;
    }
    if (op >= 0x80 && op <= 0x8f) {  // jcc rel32
        out->mn = Mn::Jcc;
        out->cond = static_cast<Cond>(op & 0xf);
        return rel32(c, out);
    }
    if (op >= 0x90 && op <= 0x9f) {  // setcc r8
        out->mn = Mn::Setcc;
        out->cond = static_cast<Cond>(op & 0xf);
        out->width = Width::W8;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = rm;  // the written register
        out->rm = rm;
        return true;
    }

    switch (op) {
      case 0x0b:
        out->mn = Mn::Ud2;
        return true;

      case 0x10:  // movsd xmm, xmm/m64 (F2)
        if (!pfx.repF2)
            return false;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        out->mn = out->mem.present ? Mn::MovsdLoad : Mn::MovsdRR;
        return true;
      case 0x11:  // movsd m64, xmm (F2)
        if (!pfx.repF2)
            return false;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || !out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->mn = Mn::MovsdStore;
        return true;

      case 0x1f:  // multi-byte NOP, /0
        out->mn = Mn::Nop;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->mem = MemRef{};  // operand is meaningless
        return true;

      case 0x2a:  // cvtsi2sd xmm, r (F2)
        if (!pfx.repF2)
            return false;
        out->mn = Mn::Cvtsi2sd;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);  // xmm dst
        out->rm = rm;                         // gpr src
        return true;
      case 0x2c:  // cvttsd2si r, xmm (F2)
        if (!pfx.repF2)
            return false;
        out->mn = Mn::Cvttsd2si;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);  // gpr dst
        out->rm = rm;                         // xmm src
        return true;

      case 0x2e:  // ucomisd (66)
      case 0x51: case 0x57: case 0x58: case 0x59: case 0x5c: case 0x5d:
      case 0x5e: case 0x5f: {
        bool needs66 = op == 0x2e || op == 0x57;
        if (needs66 ? !pfx.op16 : !pfx.repF2)
            return false;
        switch (op) {
          case 0x2e: out->mn = Mn::Ucomisd; break;
          case 0x51: out->mn = Mn::Sqrtsd; break;
          case 0x57: out->mn = Mn::Xorpd; break;
          case 0x58: out->mn = Mn::Addsd; break;
          case 0x59: out->mn = Mn::Mulsd; break;
          case 0x5c: out->mn = Mn::Subsd; break;
          case 0x5d: out->mn = Mn::Minsd; break;
          case 0x5e: out->mn = Mn::Divsd; break;
          case 0x5f: out->mn = Mn::Maxsd; break;
        }
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;
      }

      case 0x6e:  // movq xmm, r64 (66 REX.W)
        if (!pfx.op16)
            return false;
        out->mn = Mn::MovqToXmm;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);  // xmm
        out->rm = rm;                         // gpr
        return true;
      case 0x7e:  // movq r64, xmm (66 REX.W)
        if (!pfx.op16)
            return false;
        out->mn = Mn::MovqFromXmm;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);  // xmm src
        out->rm = rm;                         // gpr dst
        return true;

      case 0xaf:  // imul r, r
        out->mn = Mn::Imul;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      case 0xb6:  // movzx r32, r/m8
      case 0xb7:  // movzx r32, r/m16
      case 0xbe:  // movsx r, r/m8
      case 0xbf: {  // movsx r, r/m16
        bool sx = op >= 0xbe;
        Width src = (op == 0xb6 || op == 0xbe) ? Width::W8 : Width::W16;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        out->srcWidth = src;
        out->signExtend = sx;
        if (out->mem.present) {
            // Assembler load() path: movzx/movsx from memory.
            out->mn = Mn::Load;
            out->width = src;  // access width
        } else {
            out->mn = sx ? Mn::Movsx : Mn::Movzx;
            out->width = pfx.rexW() ? Width::W64 : Width::W32;
        }
        return true;
      }

      case 0xb8:  // popcnt (F3)
        if (!pfx.repF3)
            return false;
        out->mn = Mn::Popcnt;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      default:
        return false;
    }
}

bool
decodeOne(Cursor& c, Insn* out)
{
    Prefixes pfx;
    for (;;) {
        uint8_t b;
        if (!c.peek(&b))
            return false;
        if (b == 0x65)
            pfx.seg = Seg::Gs;
        else if (b == 0x64)
            pfx.seg = Seg::Fs;
        else if (b == 0x67)
            pfx.addr32 = true;
        else if (b == 0x66)
            pfx.op16 = true;
        else if (b == 0xf2)
            pfx.repF2 = true;
        else if (b == 0xf3)
            pfx.repF3 = true;
        else
            break;
        c.pos++;
    }
    {
        uint8_t b;
        if (c.peek(&b) && (b & 0xf0) == 0x40) {
            pfx.rex = b;
            c.pos++;
        }
    }

    uint8_t op;
    if (!c.u8(&op))
        return false;

    uint8_t reg;
    int8_t rm = -1;

    if (op == 0x0f)
        return decode0f(c, pfx, out);

    // ALU family: (aluop << 3) | 0x02 (r8, rm8) or | 0x03 (r, rm).
    if (op <= 0x3b && (op & 0x06) == 0x02 && (op & 0x01) <= 1) {
        uint8_t low = op & 0x07;
        if (low == 2 || low == 3) {
            out->mn = Mn::AluRR;
            out->aluOp = static_cast<AluOp>(op >> 3);
            out->width = low == 2 ? Width::W8 : pfx.opWidth();
            if (!modrm(c, pfx, &reg, &rm, &out->mem))
                return false;
            out->reg = static_cast<int8_t>(reg);  // destination
            out->rm = rm;
            if (out->mem.present)
                out->mn = Mn::AluMem;
            return true;
        }
    }

    if (op >= 0x50 && op <= 0x57) {
        out->mn = Mn::Push;
        out->reg = static_cast<int8_t>((op & 7) | pfx.rexB());
        out->width = Width::W64;
        return true;
    }
    if (op >= 0x58 && op <= 0x5f) {
        out->mn = Mn::Pop;
        out->reg = static_cast<int8_t>((op & 7) | pfx.rexB());
        out->width = Width::W64;
        return true;
    }

    if (op >= 0xb8 && op <= 0xbf) {
        out->reg = static_cast<int8_t>((op & 7) | pfx.rexB());
        if (pfx.rexW()) {
            out->mn = Mn::MovImm64;
            out->width = Width::W64;
            uint64_t v;
            if (!c.u64(&v))
                return false;
            out->hasImm = true;
            out->imm = static_cast<int64_t>(v);
        } else {
            out->mn = Mn::MovImm32;
            out->width = Width::W32;
            if (!imm32(c, out))
                return false;
        }
        return true;
    }

    switch (op) {
      case 0x63:  // movsxd r64, r/m32
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        out->signExtend = true;
        if (out->mem.present) {
            out->mn = Mn::Load;
            out->width = Width::W32;
        } else {
            out->mn = Mn::Movsxd;
            out->width = Width::W64;
            out->srcWidth = Width::W32;
        }
        return true;

      case 0x80:  // alu r/m8, imm8
      case 0x81:  // alu r/m, imm32
      case 0x83:  // alu r/m, imm8 (sign-extended)
        out->mn = Mn::AluImm;
        out->width = op == 0x80 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->aluOp = static_cast<AluOp>(reg & 7);
        out->reg = rm;  // destination
        out->rm = rm;
        return op == 0x81 ? imm32(c, out) : imm8(c, out);

      case 0x84:  // test rm8, r8
      case 0x85:  // test rm, r
        out->mn = Mn::Test;
        out->width = op == 0x84 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      case 0x88:  // mov rm8, r8
      case 0x89:  // mov rm, r
        out->width = op == 0x88 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);  // source
        out->rm = rm;                         // dst when register form
        out->mn = out->mem.present ? Mn::Store : Mn::MovRR;
        return true;

      case 0x8b:  // mov r, rm (loads only; reg form never emitted)
        out->mn = Mn::Load;
        out->width = pfx.rexW() ? Width::W64
                     : pfx.op16 ? Width::W16
                                : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || !out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        return true;

      case 0x8d:  // lea
        out->mn = Mn::Lea;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || !out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        return true;

      case 0x90:
        out->mn = Mn::Nop;
        return true;

      case 0x99:
        out->mn = pfx.rexW() ? Mn::Cqo : Mn::Cdq;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        return true;

      case 0xc0:  // shift r/m8, imm8
      case 0xc1:  // shift r/m, imm8
        out->mn = Mn::ShiftImm;
        out->width = op == 0xc0 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->shiftOp = static_cast<ShiftOp>(reg & 7);
        out->reg = rm;
        out->rm = rm;
        return imm8(c, out);

      case 0xc3:
        out->mn = Mn::Ret;
        return true;

      case 0xc6:  // mov m8, imm8
      case 0xc7: {  // mov m, imm16/32
        out->mn = Mn::StoreImm;
        out->width = op == 0xc6 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || !out->mem.present ||
            (reg & 7) != 0)
            return false;
        if (op == 0xc6)
            return imm8(c, out);
        if (pfx.op16) {
            uint8_t lo, hi;
            if (!c.u8(&lo) || !c.u8(&hi))
                return false;
            out->hasImm = true;
            out->imm = static_cast<int16_t>(lo | (hi << 8));
            return true;
        }
        return imm32(c, out);
      }

      case 0xcc:
        out->mn = Mn::Int3;
        return true;

      case 0xd2:  // shift r/m8, cl
      case 0xd3:  // shift r/m, cl
        out->mn = Mn::ShiftCl;
        out->width = op == 0xd2 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->shiftOp = static_cast<ShiftOp>(reg & 7);
        out->reg = rm;
        out->rm = rm;
        return true;

      case 0xe8:
        out->mn = Mn::Call;
        return rel32(c, out);
      case 0xe9:
        out->mn = Mn::Jmp;
        return rel32(c, out);

      case 0xf6:  // group 3, 8-bit
      case 0xf7: {  // group 3
        out->width = op == 0xf6 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        switch (reg & 7) {
          case 2: out->mn = Mn::Not; break;
          case 3: out->mn = Mn::Neg; break;
          case 6: out->mn = Mn::Div; break;
          case 7: out->mn = Mn::Idiv; break;
          default: return false;
        }
        out->reg = rm;
        out->rm = rm;
        return true;
      }

      case 0xff: {  // group 5: call/jmp r
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        switch (reg & 7) {
          case 2: out->mn = Mn::CallReg; break;
          case 4: out->mn = Mn::JmpReg; break;
          default: return false;
        }
        out->reg = rm;
        out->rm = rm;
        out->width = Width::W64;
        return true;
      }

      default:
        return false;
    }
}

}  // namespace

bool
decode(const uint8_t* p, size_t avail, Insn* out)
{
    *out = Insn{};
    Cursor c{p, avail};
    bool ok = decodeOne(c, out);
    out->len = static_cast<uint8_t>(c.pos > 0 ? c.pos
                                    : avail > 0 ? 1
                                                : 0);
    if (!ok)
        out->mn = Mn::Invalid;
    return ok;
}

const char*
name(Mn m)
{
    switch (m) {
      case Mn::Invalid: return "(bad)";
      case Mn::MovImm64: return "movabs";
      case Mn::MovImm32: return "mov";
      case Mn::MovRR: return "mov";
      case Mn::Load: return "mov.load";
      case Mn::Store: return "mov.store";
      case Mn::StoreImm: return "mov.storeimm";
      case Mn::Lea: return "lea";
      case Mn::AluRR: return "alu";
      case Mn::AluImm: return "alu.imm";
      case Mn::AluMem: return "alu.mem";
      case Mn::Test: return "test";
      case Mn::Imul: return "imul";
      case Mn::Neg: return "neg";
      case Mn::Not: return "not";
      case Mn::Div: return "div";
      case Mn::Idiv: return "idiv";
      case Mn::Cdq: return "cdq";
      case Mn::Cqo: return "cqo";
      case Mn::ShiftCl: return "shift.cl";
      case Mn::ShiftImm: return "shift.imm";
      case Mn::Movzx: return "movzx";
      case Mn::Movsx: return "movsx";
      case Mn::Movsxd: return "movsxd";
      case Mn::Setcc: return "setcc";
      case Mn::Cmovcc: return "cmovcc";
      case Mn::Popcnt: return "popcnt";
      case Mn::Jmp: return "jmp";
      case Mn::Jcc: return "jcc";
      case Mn::JmpReg: return "jmp.reg";
      case Mn::Call: return "call";
      case Mn::CallReg: return "call.reg";
      case Mn::Ret: return "ret";
      case Mn::Push: return "push";
      case Mn::Pop: return "pop";
      case Mn::Nop: return "nop";
      case Mn::Ud2: return "ud2";
      case Mn::Int3: return "int3";
      case Mn::MovsdLoad: return "movsd.load";
      case Mn::MovsdStore: return "movsd.store";
      case Mn::MovsdRR: return "movsd";
      case Mn::MovqToXmm: return "movq.toxmm";
      case Mn::MovqFromXmm: return "movq.fromxmm";
      case Mn::Addsd: return "addsd";
      case Mn::Subsd: return "subsd";
      case Mn::Mulsd: return "mulsd";
      case Mn::Divsd: return "divsd";
      case Mn::Sqrtsd: return "sqrtsd";
      case Mn::Minsd: return "minsd";
      case Mn::Maxsd: return "maxsd";
      case Mn::Ucomisd: return "ucomisd";
      case Mn::Xorpd: return "xorpd";
      case Mn::Cvtsi2sd: return "cvtsi2sd";
      case Mn::Cvttsd2si: return "cvttsd2si";
    }
    return "?";
}

std::string
Insn::text() const
{
    static const char* kRegNames[16] = {
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
    std::string s = name(mn);
    auto reg_name = [](int r) {
        return r >= 0 && r < 16 ? kRegNames[r] : "?";
    };
    if (reg >= 0) {
        s += " ";
        s += reg_name(reg);
    }
    if (rm >= 0 && rm != reg) {
        s += ", ";
        s += reg_name(rm);
    }
    if (mem.present) {
        s += mem.seg == x64::Seg::Gs   ? " gs:["
             : mem.seg == x64::Seg::Fs ? " fs:["
                                       : " [";
        bool any = false;
        if (mem.hasBase) {
            s += reg_name(static_cast<int>(mem.base));
            any = true;
        }
        if (mem.hasIndex) {
            if (any)
                s += "+";
            s += reg_name(static_cast<int>(mem.index));
            s += "*";
            s += std::to_string(mem.scale);
            any = true;
        }
        if (mem.disp != 0 || !any) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%s%d", any ? "+" : "",
                          mem.disp);
            s += buf;
        }
        s += "]";
        if (mem.addr32)
            s += " (ea32)";
    }
    if (hasImm) {
        char buf[24];
        std::snprintf(buf, sizeof buf, ", %lld",
                      static_cast<long long>(imm));
        s += buf;
    }
    if (hasRel) {
        char buf[24];
        std::snprintf(buf, sizeof buf, " rel %d", rel);
        s += buf;
    }
    return s;
}

}  // namespace sfi::verify
