#include "verify/decoder.h"

#include <cstdio>
#include <cstring>

namespace sfi::verify {

namespace {

using x64::AluOp;
using x64::Cond;
using x64::Reg;
using x64::Seg;
using x64::ShiftOp;
using x64::Width;

/** Cursor over the byte stream; all reads are bounds-checked. */
struct Cursor
{
    const uint8_t* p;
    size_t avail;
    size_t pos = 0;

    bool
    u8(uint8_t* out)
    {
        if (pos >= avail)
            return false;
        *out = p[pos++];
        return true;
    }

    bool
    peek(uint8_t* out) const
    {
        if (pos >= avail)
            return false;
        *out = p[pos];
        return true;
    }

    bool
    u32(uint32_t* out)
    {
        if (pos + 4 > avail)
            return false;
        uint32_t v = 0;
        for (int i = 0; i < 4; i++)
            v |= static_cast<uint32_t>(p[pos + i]) << (8 * i);
        pos += 4;
        *out = v;
        return true;
    }

    bool
    u64(uint64_t* out)
    {
        if (pos + 8 > avail)
            return false;
        uint64_t v = 0;
        for (int i = 0; i < 8; i++)
            v |= static_cast<uint64_t>(p[pos + i]) << (8 * i);
        pos += 8;
        *out = v;
        return true;
    }
};

/** Prefix state accumulated before the opcode. */
struct Prefixes
{
    Seg seg = Seg::None;
    bool addr32 = false;  // 0x67
    bool op16 = false;    // 0x66 (operand size or SSE mandatory)
    bool repF2 = false;   // 0xf2
    bool repF3 = false;   // 0xf3
    uint8_t rex = 0;      // 0 when absent
    bool rexW() const { return (rex & 0x08) != 0; }
    uint8_t rexR() const { return (rex & 0x04) ? 8 : 0; }
    uint8_t rexX() const { return (rex & 0x02) ? 8 : 0; }
    uint8_t rexB() const { return (rex & 0x01) ? 8 : 0; }

    Width
    opWidth() const  // for non-byte integer ops
    {
        if (rexW())
            return Width::W64;
        if (op16)
            return Width::W16;
        return Width::W32;
    }
};

/**
 * Decodes ModRM (+SIB +disp). On a register form sets *rm_reg (with
 * REX.B applied) and leaves mem->present false; on a memory form fills
 * *mem. reg_out receives the (REX.R-extended) reg field.
 */
bool
modrm(Cursor& c, const Prefixes& pfx, uint8_t* reg_out, int8_t* rm_reg,
      MemRef* mem)
{
    uint8_t b;
    if (!c.u8(&b))
        return false;
    uint8_t mod = b >> 6;
    uint8_t reg = (b >> 3) & 7;
    uint8_t rm = b & 7;
    *reg_out = static_cast<uint8_t>(reg | pfx.rexR());

    if (mod == 3) {
        *rm_reg = static_cast<int8_t>(rm | pfx.rexB());
        return true;
    }

    mem->present = true;
    mem->seg = pfx.seg;
    mem->addr32 = pfx.addr32;

    uint8_t disp_size = mod == 1 ? 1 : mod == 2 ? 4 : 0;

    if (rm == 4) {
        uint8_t s;
        if (!c.u8(&s))
            return false;
        uint8_t ss = s >> 6;
        uint8_t idx = (s >> 3) & 7;
        uint8_t base = s & 7;
        if (idx != 4 || pfx.rexX()) {
            mem->hasIndex = true;
            mem->index = static_cast<Reg>(idx | pfx.rexX());
            mem->scale = static_cast<uint8_t>(1u << ss);
        }
        if (mod == 0 && base == 5) {
            disp_size = 4;  // no base, disp32
        } else {
            mem->hasBase = true;
            mem->base = static_cast<Reg>(base | pfx.rexB());
        }
    } else if (mod == 0 && rm == 5) {
        // RIP-relative: marked so each checker can decide — the JIT
        // checker rejects it (the Assembler never emits it), the ELF
        // checker resolves the target through relocations.
        mem->ripRel = true;
        disp_size = 4;
    } else {
        mem->hasBase = true;
        mem->base = static_cast<Reg>(rm | pfx.rexB());
    }

    if (disp_size == 1) {
        uint8_t d;
        if (!c.u8(&d))
            return false;
        mem->disp = static_cast<int8_t>(d);
    } else if (disp_size == 4) {
        uint32_t d;
        if (!c.u32(&d))
            return false;
        mem->disp = static_cast<int32_t>(d);
    }
    return true;
}

bool
imm8(Cursor& c, Insn* out)
{
    uint8_t v;
    if (!c.u8(&v))
        return false;
    out->hasImm = true;
    out->imm = static_cast<int8_t>(v);
    return true;
}

bool
imm32(Cursor& c, Insn* out)
{
    uint32_t v;
    if (!c.u32(&v))
        return false;
    out->hasImm = true;
    out->imm = static_cast<int32_t>(v);
    return true;
}

bool
rel32(Cursor& c, Insn* out)
{
    uint32_t v;
    if (!c.u32(&v))
        return false;
    out->hasRel = true;
    out->rel = static_cast<int32_t>(v);
    return true;
}

/** Two-byte (0x0f) opcode space. */
bool
decode0f(Cursor& c, const Prefixes& pfx, Insn* out)
{
    uint8_t op;
    if (!c.u8(&op))
        return false;

    uint8_t reg;
    int8_t rm = -1;

    // Conditional families first.
    if (op >= 0x40 && op <= 0x4f) {  // cmovcc r, r/m
        out->mn = Mn::Cmovcc;
        out->cond = static_cast<Cond>(op & 0xf);
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;
    }
    if (op >= 0x80 && op <= 0x8f) {  // jcc rel32
        out->mn = Mn::Jcc;
        out->cond = static_cast<Cond>(op & 0xf);
        return rel32(c, out);
    }
    if (op >= 0x90 && op <= 0x9f) {  // setcc r/m8
        out->mn = Mn::Setcc;
        out->cond = static_cast<Cond>(op & 0xf);
        out->width = Width::W8;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = rm;  // the written register (-1 on a memory form)
        out->rm = rm;
        return true;
    }

    switch (op) {
      case 0x0b:
        out->mn = Mn::Ud2;
        return true;

      case 0x10:  // movsd xmm, xmm/m64 (F2); movups/movupd xmm, xmm/m128
        if (pfx.repF3)
            return false;  // movss: never emitted for the f64 workloads
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        if (pfx.repF2)
            out->mn = out->mem.present ? Mn::MovsdLoad : Mn::MovsdRR;
        else
            out->mn = out->mem.present ? Mn::MovVecLoad : Mn::MovVecRR;
        return true;
      case 0x11:  // movsd m64, xmm (F2); movups/movupd m128, xmm
        if (pfx.repF3)
            return false;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        if (pfx.repF2)
            out->mn = out->mem.present ? Mn::MovsdStore : Mn::MovsdRR;
        else
            out->mn = out->mem.present ? Mn::MovVecStore : Mn::MovVecRR;
        return true;

      case 0x28:  // movaps/movapd xmm, xmm/m128
      case 0x29:  // movaps/movapd xmm/m128, xmm
        if (pfx.repF2 || pfx.repF3)
            return false;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        if (!out->mem.present)
            out->mn = Mn::MovVecRR;
        else
            out->mn = op == 0x28 ? Mn::MovVecLoad : Mn::MovVecStore;
        return true;

      case 0x1f:  // multi-byte NOP, /0
        out->mn = Mn::Nop;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->mem = MemRef{};  // operand is meaningless
        return true;

      case 0x2a:  // cvtsi2sd xmm, r/m (F2)
        if (!pfx.repF2)
            return false;
        out->mn = Mn::Cvtsi2sd;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);  // xmm dst
        out->rm = rm;                         // gpr src
        return true;
      case 0x2c:  // cvttsd2si r, xmm/m64 (F2)
        if (!pfx.repF2)
            return false;
        out->mn = Mn::Cvttsd2si;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);  // gpr dst
        out->rm = rm;                         // xmm src
        return true;

      case 0x2e:  // ucomisd (66)
      case 0x2f:  // comisd (66)
      case 0x51: case 0x57: case 0x58: case 0x59: case 0x5c: case 0x5d:
      case 0x5e: case 0x5f: {
        if (op == 0x2e || op == 0x2f) {
            if (!pfx.op16)
                return false;
        } else if (op == 0x57) {
            // xorpd (66) and the xorps zero idiom (no prefix) are
            // checker-equivalent.
            if (pfx.repF2 || pfx.repF3)
                return false;
        } else if (!pfx.repF2) {
            return false;
        }
        switch (op) {
          case 0x2e: out->mn = Mn::Ucomisd; break;
          case 0x2f: out->mn = Mn::Comisd; break;
          case 0x51: out->mn = Mn::Sqrtsd; break;
          case 0x57: out->mn = Mn::Xorpd; break;
          case 0x58: out->mn = Mn::Addsd; break;
          case 0x59: out->mn = Mn::Mulsd; break;
          case 0x5c: out->mn = Mn::Subsd; break;
          case 0x5d: out->mn = Mn::Minsd; break;
          case 0x5e: out->mn = Mn::Divsd; break;
          case 0x5f: out->mn = Mn::Maxsd; break;
        }
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;
      }

      case 0x6e:  // movq xmm, r64 (66 REX.W)
        if (!pfx.op16)
            return false;
        out->mn = Mn::MovqToXmm;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);  // xmm
        out->rm = rm;                         // gpr
        return true;
      case 0x7e:  // movq r64, xmm (66 REX.W) / movq xmm, rm64 (F3)
        if (pfx.repF3) {
            // F3 0F 7E: 8-byte load into xmm (or xmm-xmm move) —
            // checker-equivalent to the movsd forms.
            out->width = Width::W64;
            if (!modrm(c, pfx, &reg, &rm, &out->mem))
                return false;
            out->reg = static_cast<int8_t>(reg);  // xmm dst
            out->rm = rm;
            out->mn = out->mem.present ? Mn::MovsdLoad : Mn::MovsdRR;
            return true;
        }
        if (!pfx.op16)
            return false;
        out->mn = Mn::MovqFromXmm;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);  // xmm src
        out->rm = rm;                         // gpr dst
        return true;

      case 0xa3:  // bt r/m, r (register form only; flags result)
        out->mn = Mn::Bt;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      case 0xaf:  // imul r, r/m
        out->mn = Mn::Imul;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      case 0xb6:  // movzx r32, r/m8
      case 0xb7:  // movzx r32, r/m16
      case 0xbe:  // movsx r, r/m8
      case 0xbf: {  // movsx r, r/m16
        bool sx = op >= 0xbe;
        Width src = (op == 0xb6 || op == 0xbe) ? Width::W8 : Width::W16;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        out->srcWidth = src;
        out->signExtend = sx;
        if (out->mem.present) {
            // Assembler load() path: movzx/movsx from memory.
            out->mn = Mn::Load;
            out->width = src;  // access width
        } else {
            out->mn = sx ? Mn::Movsx : Mn::Movzx;
            out->width = pfx.rexW() ? Width::W64 : Width::W32;
        }
        return true;
      }

      case 0xb8:  // popcnt (F3)
        if (!pfx.repF3)
            return false;
        out->mn = Mn::Popcnt;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      case 0xef:  // pxor xmm, xmm (66; register zero idiom)
        if (!pfx.op16)
            return false;
        out->mn = Mn::Pxor;
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      default:
        return false;
    }
}

bool
decodeOne(Cursor& c, Insn* out)
{
    Prefixes pfx;
    for (;;) {
        uint8_t b;
        if (!c.peek(&b))
            return false;
        if (b == 0x65)
            pfx.seg = Seg::Gs;
        else if (b == 0x64)
            pfx.seg = Seg::Fs;
        else if (b == 0x67)
            pfx.addr32 = true;
        else if (b == 0x66)
            pfx.op16 = true;
        else if (b == 0xf2)
            pfx.repF2 = true;
        else if (b == 0xf3)
            pfx.repF3 = true;
        else if (b == 0x2e || b == 0x3e)
            ;  // cs/ds: branch hints and long-NOP padding; no effect
        else
            break;
        c.pos++;
    }
    {
        uint8_t b;
        if (c.peek(&b) && (b & 0xf0) == 0x40) {
            pfx.rex = b;
            c.pos++;
        }
    }

    uint8_t op;
    if (!c.u8(&op))
        return false;

    uint8_t reg;
    int8_t rm = -1;

    if (op == 0x0f)
        return decode0f(c, pfx, out);

    // ALU family: (aluop << 3) | low, where low 0/1 = rm ← rm op r,
    // 2/3 = r ← r op rm, 4/5 = al/eax ← op imm. Row 2 (0x10, adc)
    // upward all share the pattern.
    if (op <= 0x3d && (op & 0x07) <= 5) {
        uint8_t low = op & 0x07;
        out->aluOp = static_cast<AluOp>(op >> 3);
        out->width = (low & 1) == 0 ? Width::W8 : pfx.opWidth();
        if (low == 4 || low == 5) {  // accumulator, imm
            out->mn = Mn::AluImm;
            out->reg = 0;
            out->rm = 0;
            return low == 4 ? imm8(c, out) : imm32(c, out);
        }
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        if (low == 2 || low == 3) {  // reg is the destination
            out->reg = static_cast<int8_t>(reg);
            out->rm = rm;
            out->mn = out->mem.present ? Mn::AluMem : Mn::AluRR;
        } else if (out->mem.present) {  // rm (memory) is the dest
            out->reg = static_cast<int8_t>(reg);  // source
            out->mn = Mn::AluMemDst;
        } else {  // rm (register) is the dest: normalize to AluRR
            out->reg = rm;
            out->rm = static_cast<int8_t>(reg);
            out->mn = Mn::AluRR;
        }
        return true;
    }

    if (op >= 0x50 && op <= 0x57) {
        out->mn = Mn::Push;
        out->reg = static_cast<int8_t>((op & 7) | pfx.rexB());
        out->width = Width::W64;
        return true;
    }
    if (op >= 0x58 && op <= 0x5f) {
        out->mn = Mn::Pop;
        out->reg = static_cast<int8_t>((op & 7) | pfx.rexB());
        out->width = Width::W64;
        return true;
    }

    if (op == 0x69 || op == 0x6b) {  // imul r, r/m, imm
        out->mn = Mn::Imul;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return op == 0x69 ? imm32(c, out) : imm8(c, out);
    }

    if (op >= 0x70 && op <= 0x7f) {  // jcc rel8
        out->mn = Mn::Jcc;
        out->cond = static_cast<Cond>(op & 0xf);
        uint8_t d;
        if (!c.u8(&d))
            return false;
        out->hasRel = true;
        out->rel = static_cast<int8_t>(d);
        return true;
    }

    if (op == 0x86 || op == 0x87) {  // xchg r, r (register form only)
        out->mn = Mn::Xchg;
        out->width = op == 0x86 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;  // memory xchg is implicitly locked; reject
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;
    }

    if (op >= 0x91 && op <= 0x97) {  // xchg eax/rax, r
        out->mn = Mn::Xchg;
        out->width = pfx.opWidth();
        out->reg = 0;
        out->rm = static_cast<int8_t>((op & 7) | pfx.rexB());
        return true;
    }

    if (op >= 0xb8 && op <= 0xbf) {
        out->reg = static_cast<int8_t>((op & 7) | pfx.rexB());
        if (pfx.rexW()) {
            out->mn = Mn::MovImm64;
            out->width = Width::W64;
            uint64_t v;
            if (!c.u64(&v))
                return false;
            out->hasImm = true;
            out->imm = static_cast<int64_t>(v);
        } else {
            out->mn = Mn::MovImm32;
            out->width = Width::W32;
            if (!imm32(c, out))
                return false;
        }
        return true;
    }

    switch (op) {
      case 0x63:  // movsxd r64, r/m32
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        out->signExtend = true;
        if (out->mem.present) {
            out->mn = Mn::Load;
            out->width = Width::W32;
        } else {
            out->mn = Mn::Movsxd;
            out->width = Width::W64;
            out->srcWidth = Width::W32;
        }
        return true;

      case 0x80:  // alu r/m8, imm8
      case 0x81:  // alu r/m, imm32
      case 0x83:  // alu r/m, imm8 (sign-extended)
        out->width = op == 0x80 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->aluOp = static_cast<AluOp>(reg & 7);
        out->mn = out->mem.present ? Mn::AluImmMem : Mn::AluImm;
        out->reg = rm;  // destination (-1 on a memory form)
        out->rm = rm;
        return op == 0x81 ? imm32(c, out) : imm8(c, out);

      case 0x84:  // test rm8, r8
      case 0x85:  // test rm, r
        out->width = op == 0x84 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->mn = out->mem.present ? Mn::TestMem : Mn::Test;
        out->reg = static_cast<int8_t>(reg);
        out->rm = rm;
        return true;

      case 0x88:  // mov rm8, r8
      case 0x89:  // mov rm, r
        out->width = op == 0x88 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->reg = static_cast<int8_t>(reg);  // source
        out->rm = rm;                         // dst when register form
        out->mn = out->mem.present ? Mn::Store : Mn::MovRR;
        return true;

      case 0x8a:  // mov r8, rm8
      case 0x8b:  // mov r, rm
        out->width = op == 0x8a   ? Width::W8
                     : pfx.rexW() ? Width::W64
                     : pfx.op16   ? Width::W16
                                  : Width::W32;
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        if (out->mem.present) {
            out->mn = Mn::Load;
            out->reg = static_cast<int8_t>(reg);
        } else {
            // Register form: normalize to the 0x89 MovRR convention
            // (reg = source, rm = destination).
            out->mn = Mn::MovRR;
            out->reg = rm;
            out->rm = static_cast<int8_t>(reg);
        }
        return true;

      case 0x8d:  // lea
        out->mn = Mn::Lea;
        out->width = pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || !out->mem.present)
            return false;
        out->reg = static_cast<int8_t>(reg);
        return true;

      case 0x90:
        out->mn = Mn::Nop;
        return true;

      case 0x98:  // cltq (with REX.W); plain cwde is never emitted
        if (!pfx.rexW())
            return false;
        out->mn = Mn::Cdqe;
        out->width = Width::W64;
        return true;

      case 0x99:
        out->mn = pfx.rexW() ? Mn::Cqo : Mn::Cdq;
        out->width = pfx.rexW() ? Width::W64 : Width::W32;
        return true;

      case 0xa8:  // test al, imm8
      case 0xa9:  // test eax/rax, imm32
        out->mn = Mn::TestImm;
        out->width = op == 0xa8 ? Width::W8 : pfx.opWidth();
        out->reg = 0;
        out->rm = 0;
        return op == 0xa8 ? imm8(c, out) : imm32(c, out);

      case 0xc0:  // shift r/m8, imm8
      case 0xc1:  // shift r/m, imm8
        out->mn = Mn::ShiftImm;
        out->width = op == 0xc0 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->shiftOp = static_cast<ShiftOp>(reg & 7);
        out->reg = rm;
        out->rm = rm;
        return imm8(c, out);

      case 0xc3:
        out->mn = Mn::Ret;
        return true;

      case 0xc6:  // mov m8, imm8
      case 0xc7: {  // mov m, imm16/32
        out->mn = Mn::StoreImm;
        out->width = op == 0xc6 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || !out->mem.present ||
            (reg & 7) != 0)
            return false;
        if (op == 0xc6)
            return imm8(c, out);
        if (pfx.op16) {
            uint8_t lo, hi;
            if (!c.u8(&lo) || !c.u8(&hi))
                return false;
            out->hasImm = true;
            out->imm = static_cast<int16_t>(lo | (hi << 8));
            return true;
        }
        return imm32(c, out);
      }

      case 0xcc:
        out->mn = Mn::Int3;
        return true;

      case 0xd0:  // shift r/m8, 1
      case 0xd1:  // shift r/m, 1
        out->mn = Mn::ShiftImm;
        out->width = op == 0xd0 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->shiftOp = static_cast<ShiftOp>(reg & 7);
        out->reg = rm;
        out->rm = rm;
        out->hasImm = true;
        out->imm = 1;
        return true;

      case 0xd2:  // shift r/m8, cl
      case 0xd3:  // shift r/m, cl
        out->mn = Mn::ShiftCl;
        out->width = op == 0xd2 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        out->shiftOp = static_cast<ShiftOp>(reg & 7);
        out->reg = rm;
        out->rm = rm;
        return true;

      case 0xe8:
        out->mn = Mn::Call;
        return rel32(c, out);
      case 0xe9:
        out->mn = Mn::Jmp;
        return rel32(c, out);
      case 0xeb: {  // jmp rel8
        out->mn = Mn::Jmp;
        uint8_t d;
        if (!c.u8(&d))
            return false;
        out->hasRel = true;
        out->rel = static_cast<int8_t>(d);
        return true;
      }

      case 0xf6:  // group 3, 8-bit
      case 0xf7: {  // group 3
        out->width = op == 0xf6 ? Width::W8 : pfx.opWidth();
        if (!modrm(c, pfx, &reg, &rm, &out->mem))
            return false;
        switch (reg & 7) {
          case 0: out->mn = Mn::TestImm; break;
          case 2: out->mn = Mn::Not; break;
          case 3: out->mn = Mn::Neg; break;
          case 4: out->mn = Mn::Mul; break;
          case 6: out->mn = Mn::Div; break;
          case 7: out->mn = Mn::Idiv; break;
          default: return false;
        }
        out->reg = rm;
        out->rm = rm;
        if (out->mn == Mn::TestImm)
            return op == 0xf6 ? imm8(c, out) : imm32(c, out);
        return true;
      }

      case 0xff: {  // group 5: call/jmp r
        if (!modrm(c, pfx, &reg, &rm, &out->mem) || out->mem.present)
            return false;
        switch (reg & 7) {
          case 2: out->mn = Mn::CallReg; break;
          case 4: out->mn = Mn::JmpReg; break;
          default: return false;
        }
        out->reg = rm;
        out->rm = rm;
        out->width = Width::W64;
        return true;
      }

      default:
        return false;
    }
}

/** Bytes a memory operand touches, from mnemonic + operand width. */
uint8_t
accessBytesFor(const Insn& in)
{
    switch (in.mn) {
      case Mn::Lea: case Mn::Nop:
        return 0;  // no access despite the ModRM memory form
      case Mn::MovVecLoad: case Mn::MovVecStore:
        return 16;
      case Mn::MovsdLoad: case Mn::MovsdStore:
      case Mn::Addsd: case Mn::Subsd: case Mn::Mulsd: case Mn::Divsd:
      case Mn::Sqrtsd: case Mn::Minsd: case Mn::Maxsd:
      case Mn::Ucomisd: case Mn::Comisd: case Mn::Cvttsd2si:
        return 8;
      case Mn::Setcc:
        return 1;
      default:
        switch (in.width) {
          case Width::W8: return 1;
          case Width::W16: return 2;
          case Width::W32: return 4;
          case Width::W64: return 8;
        }
        return 8;
    }
}

}  // namespace

bool
decode(const uint8_t* p, size_t avail, Insn* out)
{
    *out = Insn{};
    Cursor c{p, avail};
    bool ok = decodeOne(c, out);
    out->len = static_cast<uint8_t>(c.pos > 0 ? c.pos
                                    : avail > 0 ? 1
                                                : 0);
    if (!ok)
        out->mn = Mn::Invalid;
    else if (out->mem.present)
        out->accessBytes = accessBytesFor(*out);
    return ok;
}

const char*
name(Mn m)
{
    switch (m) {
      case Mn::Invalid: return "(bad)";
      case Mn::MovImm64: return "movabs";
      case Mn::MovImm32: return "mov";
      case Mn::MovRR: return "mov";
      case Mn::Load: return "mov.load";
      case Mn::Store: return "mov.store";
      case Mn::StoreImm: return "mov.storeimm";
      case Mn::Lea: return "lea";
      case Mn::Xchg: return "xchg";
      case Mn::AluRR: return "alu";
      case Mn::AluImm: return "alu.imm";
      case Mn::AluMem: return "alu.mem";
      case Mn::Test: return "test";
      case Mn::Imul: return "imul";
      case Mn::Neg: return "neg";
      case Mn::Not: return "not";
      case Mn::Div: return "div";
      case Mn::Idiv: return "idiv";
      case Mn::Cdq: return "cdq";
      case Mn::Cqo: return "cqo";
      case Mn::ShiftCl: return "shift.cl";
      case Mn::ShiftImm: return "shift.imm";
      case Mn::Movzx: return "movzx";
      case Mn::Movsx: return "movsx";
      case Mn::Movsxd: return "movsxd";
      case Mn::Setcc: return "setcc";
      case Mn::Cmovcc: return "cmovcc";
      case Mn::Popcnt: return "popcnt";
      case Mn::AluMemDst: return "alu.memdst";
      case Mn::AluImmMem: return "alu.imm.mem";
      case Mn::TestMem: return "test.mem";
      case Mn::TestImm: return "test.imm";
      case Mn::Mul: return "mul";
      case Mn::Bt: return "bt";
      case Mn::Cdqe: return "cltq";
      case Mn::Jmp: return "jmp";
      case Mn::Jcc: return "jcc";
      case Mn::JmpReg: return "jmp.reg";
      case Mn::Call: return "call";
      case Mn::CallReg: return "call.reg";
      case Mn::Ret: return "ret";
      case Mn::Push: return "push";
      case Mn::Pop: return "pop";
      case Mn::Nop: return "nop";
      case Mn::Ud2: return "ud2";
      case Mn::Int3: return "int3";
      case Mn::MovsdLoad: return "movsd.load";
      case Mn::MovsdStore: return "movsd.store";
      case Mn::MovsdRR: return "movsd";
      case Mn::MovqToXmm: return "movq.toxmm";
      case Mn::MovqFromXmm: return "movq.fromxmm";
      case Mn::Addsd: return "addsd";
      case Mn::Subsd: return "subsd";
      case Mn::Mulsd: return "mulsd";
      case Mn::Divsd: return "divsd";
      case Mn::Sqrtsd: return "sqrtsd";
      case Mn::Minsd: return "minsd";
      case Mn::Maxsd: return "maxsd";
      case Mn::Ucomisd: return "ucomisd";
      case Mn::Xorpd: return "xorpd";
      case Mn::Cvtsi2sd: return "cvtsi2sd";
      case Mn::Cvttsd2si: return "cvttsd2si";
      case Mn::Comisd: return "comisd";
      case Mn::MovVecLoad: return "movvec.load";
      case Mn::MovVecStore: return "movvec.store";
      case Mn::MovVecRR: return "movvec";
      case Mn::Pxor: return "pxor";
    }
    return "?";
}

std::string
Insn::text() const
{
    static const char* kRegNames[16] = {
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8",  "r9",  "r10", "r11", "r12", "r13", "r14", "r15"};
    std::string s = name(mn);
    auto reg_name = [](int r) {
        return r >= 0 && r < 16 ? kRegNames[r] : "?";
    };
    if (reg >= 0) {
        s += " ";
        s += reg_name(reg);
    }
    if (rm >= 0 && rm != reg) {
        s += ", ";
        s += reg_name(rm);
    }
    if (mem.present) {
        s += mem.seg == x64::Seg::Gs   ? " gs:["
             : mem.seg == x64::Seg::Fs ? " fs:["
                                       : " [";
        bool any = false;
        if (mem.ripRel) {
            s += "rip";
            any = true;
        }
        if (mem.hasBase) {
            s += reg_name(static_cast<int>(mem.base));
            any = true;
        }
        if (mem.hasIndex) {
            if (any)
                s += "+";
            s += reg_name(static_cast<int>(mem.index));
            s += "*";
            s += std::to_string(mem.scale);
            any = true;
        }
        if (mem.disp != 0 || !any) {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%s%d", any ? "+" : "",
                          mem.disp);
            s += buf;
        }
        s += "]";
        if (mem.addr32)
            s += " (ea32)";
    }
    if (hasImm) {
        char buf[24];
        std::snprintf(buf, sizeof buf, ", %lld",
                      static_cast<long long>(imm));
        s += buf;
    }
    if (hasRel) {
        char buf[24];
        std::snprintf(buf, sizeof buf, " rel %d", rel);
        s += buf;
    }
    return s;
}

}  // namespace sfi::verify
