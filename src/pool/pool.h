/**
 * @file
 * The pooling allocator: a pre-reserved slab of instance slots with
 * guard regions and optional ColorGuard striping (§5.1).
 *
 * Slots are handed out and recycled without unmapping: freeing a slot
 * decommits its pages (madvise MADV_DONTNEED), which zeroes them on next
 * use while keeping both the mapping and — crucially — the MPK colors
 * in the page tables, so recycled slots need no re-striping (the very
 * property §7 shows MTE lacks).
 */
#ifndef SFIKIT_POOL_POOL_H_
#define SFIKIT_POOL_POOL_H_

#include <cstdint>
#include <vector>

#include "base/os_mem.h"
#include "base/result.h"
#include "mpk/mpk.h"
#include "pool/layout.h"
#include "runtime/memory.h"

namespace sfi::pool {

/** A checked-out slot. */
struct Slot
{
    uint64_t index = UINT64_MAX;
    uint8_t* base = nullptr;
    /** MPK key protecting this slot (0 when striping is off). */
    mpk::Pkey pkey = 0;

    bool valid() const { return base != nullptr; }
};

class MemoryPool
{
  public:
    struct Options
    {
        PoolConfig config;
        /** Key system for striping; nullptr = mpk::defaultSystem(). */
        mpk::System* mpk = nullptr;
        LayoutArithmetic arithmetic = LayoutArithmetic::Checked;
    };

    /**
     * Reserves the slab, computes + validates the layout, allocates
     * protection keys, and marks guard regions.
     */
    static Result<MemoryPool> create(Options options);

    ~MemoryPool();
    MemoryPool(MemoryPool&&) = default;
    MemoryPool& operator=(MemoryPool&&) = default;

    /** Checks out a free slot (commits + colors it on first use). */
    Result<Slot> allocate();

    /** Returns a slot: decommit (zero-on-reuse), keep mapping+colors. */
    Status free(const Slot& slot);

    const SlotLayout& layout() const { return layout_; }
    uint64_t slotsInUse() const { return inUse_; }
    uint64_t capacity() const { return layout_.numSlots; }
    mpk::System& mpkSystem() const { return *mpk_; }

    /** Key assigned to stripe @p s (identity 0 when striping is off). */
    mpk::Pkey
    keyOfStripe(uint64_t s) const
    {
        return stripeKeys_.empty() ? 0
                                   : stripeKeys_[s % stripeKeys_.size()];
    }

    /**
     * Builds a linear-memory view over @p slot for instantiation. The
     * reported reserved span covers the expected-slot contract so guard
     * faults attribute correctly.
     */
    rt::LinearMemory
    memoryView(const Slot& slot, uint32_t initial_pages,
               uint32_t max_pages) const;

  private:
    MemoryPool() = default;

    Reservation slab_;
    SlotLayout layout_;
    PoolConfig config_;
    mpk::System* mpk_ = nullptr;
    std::vector<mpk::Pkey> stripeKeys_;  ///< empty when striping off
    std::vector<uint64_t> freeList_;
    std::vector<bool> committed_;  ///< slot has been colored+committed
    std::vector<bool> inUseFlags_;
    uint64_t inUse_ = 0;
};

}  // namespace sfi::pool

#endif  // SFIKIT_POOL_POOL_H_
