/**
 * @file
 * The pooling allocator: a pre-reserved slab of instance slots with
 * guard regions and optional ColorGuard striping (§5.1).
 *
 * Slots are handed out and recycled without unmapping: freeing a slot
 * decommits its pages (madvise MADV_DONTNEED), which zeroes them on next
 * use while keeping both the mapping and — crucially — the MPK colors
 * in the page tables, so recycled slots need no re-striping (the very
 * property §7 shows MTE lacks).
 *
 * The allocator is concurrent and multi-core scalable, modelled on
 * production pooling allocators (Wasmtime's, which §5.1 describes):
 *
 *  - The free slots are sharded into per-shard locked sub-lists. A
 *    thread checks out from its home shard and steals from the others
 *    only on exhaustion, so N workers allocating/freeing in parallel do
 *    not contend on one structure.
 *  - Warm-slot affinity: each shard keeps a bounded cache of
 *    recently-freed *still-committed* slots. Reusing one skips the
 *    decommit/refault cycle entirely — the PTEs (and their MPK colors)
 *    stay warm in the TLB. Zero-on-reuse is preserved by memset'ing
 *    only the slot's dirty high-water span, which the caller reports at
 *    free() time.
 *  - Deferred decommit: with `deferredDecommit`, the madvise leaves the
 *    critical path. free() queues the slot on a background reclamation
 *    thread which batches decommits once the pending dirty-byte budget
 *    is exceeded; only the tracked dirty span is decommitted, not all
 *    of maxMemoryBytes.
 */
#ifndef SFIKIT_POOL_POOL_H_
#define SFIKIT_POOL_POOL_H_

#include <cstdint>
#include <memory>

#include "base/os_mem.h"
#include "base/result.h"
#include "base/units.h"
#include "mpk/keyring.h"
#include "mpk/mpk.h"
#include "pool/layout.h"
#include "runtime/memory.h"

namespace sfi::pool {

/** A checked-out slot. */
struct Slot
{
    uint64_t index = UINT64_MAX;
    uint8_t* base = nullptr;
    /** MPK key protecting this slot (0 when striping is off). */
    mpk::Pkey pkey = 0;
    /**
     * Recycle generation of pkey when leased through a KeyRing (0 in
     * static-stripe mode). A (pkey, keyGeneration) pair is unique over
     * the pool's lifetime even though the 4-bit pkey space recycles.
     */
    uint64_t keyGeneration = 0;
    /** Reused from the warm-affinity cache (no decommit in between). */
    bool warm = false;
    /**
     * Bytes from base that may hold stale data from the previous
     * occupant. Always 0 unless Options::zeroOnWarmReuse was disabled.
     */
    uint64_t dirtyBytes = 0;

    bool valid() const { return base != nullptr; }
};

class MemoryPool
{
  public:
    struct Options
    {
        PoolConfig config;
        /** Key system for striping; nullptr = mpk::defaultSystem(). */
        mpk::System* mpk = nullptr;
        /**
         * Recycling key allocator. When set, slots are colored with
         * per-occupancy leases instead of static stripe keys: each
         * allocate() acquires a generation-counted lease (avoiding the
         * address-space neighbors' colors so the adjacent-slots-differ
         * contract holds) and each free() releases it. The ring's
         * quiesce→fence→retag→reissue cycle then lets live-sandbox
         * count exceed 15 × shards. The ring must outlive the pool and
         * use the same System as Options::mpk.
         */
        mpk::KeyRing* keyRing = nullptr;
        LayoutArithmetic arithmetic = LayoutArithmetic::Checked;

        /**
         * Free-list shards. 0 = one per hardware thread (capped at 8);
         * always clamped to [1, numSlots].
         */
        uint32_t shards = 0;
        /** Warm-affinity cache capacity per shard; 0 disables. */
        uint32_t warmSlotsPerShard = 4;
        /**
         * Largest dirty span kept committed (and later memset-zeroed)
         * when a slot enters the warm cache; the tail beyond it is
         * decommitted at free() time. Zeroing by memset beats
         * decommit+refault only while the span is small — for a large
         * footprint one madvise syscall is far cheaper than touching
         * every byte, so the pool keeps just the hot head of the slot
         * resident (the same trade Wasmtime exposes as
         * `linear_memory_keep_resident`). Rounded down to a page
         * boundary; UINT64_MAX keeps everything resident.
         */
        uint64_t warmKeepResidentBytes = kWasmPageSize;
        /**
         * Zero a warm slot's dirty span on reuse (memset, pages stay
         * committed). Disable only when the embedder guarantees slot
         * affinity to a single tenant (Wasmtime's module-affinity
         * reuse); the Slot then reports its dirtyBytes.
         */
        bool zeroOnWarmReuse = true;
        /** Decommit on a background reclamation thread. */
        bool deferredDecommit = false;
        /**
         * Pending dirty bytes that trigger a reclamation batch. Bounds
         * how much committed-but-free memory the pool can hold; the
         * reclaimer also drains on destruction and quiesce().
         */
        uint64_t dirtyByteBudget = 32 * (1ull << 20);
    };

    /** Monotonic counters; read with stats(). */
    struct Stats
    {
        uint64_t allocations = 0;
        uint64_t frees = 0;
        /** Slots committed + colored for the first time. */
        uint64_t firstCommits = 0;
        /** Allocations served from the warm-affinity cache. */
        uint64_t warmHits = 0;
        /** Warm reuses that had a dirty span to memset-zero. */
        uint64_t warmZeroes = 0;
        /**
         * Total bytes memset-zeroed on warm reuse. With callers
         * reporting probed touched spans this tracks the pages
         * occupants actually faulted — far below
         * warmHits * maxMemoryBytes for small-footprint workloads.
         *
         * Caveat: the warm-reuse memset itself refaults the pages it
         * zeroes, so a slot's probed span — and this counter — is
         * monotone non-decreasing across successive warm occupants,
         * converging to the max footprint seen rather than each
         * occupant's own touch. The free-time trim bounds the ratchet
         * at warmKeepResidentBytes (the tail beyond it is decommitted,
         * which resets residency).
         */
        uint64_t warmZeroedBytes = 0;
        /** Allocations served from another thread's shard. */
        uint64_t steals = 0;
        /** madvise batches issued (sync or by the reclaimer). */
        uint64_t decommits = 0;
        uint64_t decommittedBytes = 0;
        /** Current depth of the cold free-lists (all shards). */
        uint64_t coldDepth = 0;
        /** Current warm-affinity cache population (all shards). */
        uint64_t warmDepth = 0;
        /** Slots queued for the reclamation thread right now. */
        uint64_t pendingReclaim = 0;
        /**
         * Lease-mode re-protects because a slot's color or generation
         * changed between occupancies (pages re-colored + scrubbed).
         */
        uint64_t recolors = 0;
        /**
         * Re-protects forced by a backend whose tags do not survive
         * decommit (MTE, §7 Observation 2): the slot's granule tags
         * were dropped with its pages and had to be rewritten.
         */
        uint64_t retags = 0;
        /** KeyRing passthrough (0 in static-stripe mode). */
        uint64_t keyRecycles = 0;
        uint64_t recycleStallNs = 0;
        uint64_t keyShares = 0;
    };

    /**
     * Reserves the slab, computes + validates the layout, allocates
     * protection keys, marks guard regions, and (when configured)
     * starts the reclamation thread.
     */
    static Result<MemoryPool> create(Options options);

    ~MemoryPool();
    MemoryPool(MemoryPool&&) noexcept;
    /**
     * Releases the destination's resources (reclamation thread, MPK
     * stripe keys) before taking over the source's — a defaulted
     * move-assign would leak the destination's keys.
     */
    MemoryPool& operator=(MemoryPool&&) noexcept;

    /**
     * Checks out a free slot. Preference order: home-shard warm cache,
     * home-shard cold list, stealing from other shards, then slots
     * still queued for reclamation. Commits + colors the slot on first
     * use. Thread-safe.
     */
    Result<Slot> allocate();

    /**
     * allocate() with the caller's KeyRing participant, so a lease
     * acquisition that has to open a recycle epoch can fence the caller
     * instead of deadlocking on its own quiesce. Worker threads in
     * lease mode must use this overload.
     */
    Result<Slot> allocate(mpk::KeyRing::Participant* self);

    /**
     * Returns a slot. @p touched_bytes is the span from the slot base
     * the occupant may have written (e.g. its linear memory size); the
     * pool tracks the high-water mark and only zeroes/decommits that
     * much instead of all of maxMemoryBytes. Thread-safe.
     */
    Status free(const Slot& slot, uint64_t touched_bytes);

    /** free() with the conservative full-slot dirty span. */
    Status free(const Slot& slot);

    /**
     * Blocks until the reclamation thread has drained every pending
     * decommit. No-op without deferredDecommit.
     */
    void quiesce();

    /** Snapshot of the counters (takes the shard locks briefly). */
    Stats stats() const;

    const SlotLayout& layout() const;
    uint64_t slotsInUse() const;
    uint64_t capacity() const;
    mpk::System& mpkSystem() const;

    /** Key assigned to stripe @p s (identity 0 when striping is off). */
    mpk::Pkey keyOfStripe(uint64_t s) const;

    /**
     * Builds a linear-memory view over @p slot for instantiation. The
     * reported reserved span covers the expected-slot contract so guard
     * faults attribute correctly.
     */
    rt::LinearMemory memoryView(const Slot& slot, uint32_t initial_pages,
                                uint32_t max_pages) const;

  private:
    struct Core;

    explicit MemoryPool(std::unique_ptr<Core> core);

    /** All state lives behind one pointer so moves cannot tear the
     *  reclamation thread away from the mutexes it sleeps on. */
    std::unique_ptr<Core> core_;
};

}  // namespace sfi::pool

#endif  // SFIKIT_POOL_POOL_H_
