/**
 * @file
 * Pooling-allocator slot-layout computation and the Table 1 invariants.
 *
 * The layout is the explicit contract between the allocator and the
 * compiler (§5.1): the compiler elides bounds checks because the
 * allocator promises that the `expected_slot_bytes` of address space
 * after each slot's base are either that slot's memory or inaccessible
 * (guard pages, or — with ColorGuard — stripes of other colors).
 * Getting this wrong breaks isolation, which is why the paper formally
 * verified it (§5.2); here the same invariants are enforced at runtime
 * by SlotLayout::validate() and fuzzed by property tests.
 *
 * Layout model (mirrors Wasmtime's memory pool):
 *
 *   [pre-guard][slot 0][slot 1]...[slot n-1][post-guard]
 *
 * Slot starts are `slotBytes` apart. Without striping,
 * slotBytes >= maxMemoryBytes + guardBytes, so the space between one
 * slot's memory and the next slot is unmapped guard. With ColorGuard,
 * slotBytes can shrink to maxMemoryBytes: the next numStripes-1 slots
 * carry different MPK colors and are inaccessible while this slot's
 * color is active (Figure 2). The final slot never relies on MPK — a
 * real guard region follows it (Invariant 6).
 */
#ifndef SFIKIT_POOL_LAYOUT_H_
#define SFIKIT_POOL_LAYOUT_H_

#include <cstdint>

#include "base/result.h"

namespace sfi::pool {

/** How layout arithmetic handles overflow. */
enum class LayoutArithmetic : uint8_t {
    /**
     * Checked additions/multiplications; overflow is a configuration
     * error. This is the post-verification behaviour.
     */
    Checked,
    /**
     * Saturating arithmetic — reproduces the bug the paper's
     * verification effort found (§5.2): if a computation actually
     * saturates, the resulting layout silently violates Invariant 1.
     * Kept for the Table 1 demonstration; never use in production.
     */
    SaturatingBuggy,
};

/** User-facing pool configuration. */
struct PoolConfig
{
    /** Number of instance slots. */
    uint64_t numSlots = 16;
    /** Maximum linear-memory bytes an instance may grow to. */
    uint64_t maxMemoryBytes = 0;
    /**
     * Address space the compiler assumes after each slot base
     * (classically maxMemoryBytes + guardBytes; 8 GiB in the standard
     * Wasm scheme, 6 GiB with Wasmtime's shared pre-guards).
     */
    uint64_t expectedSlotBytes = 0;
    /** Guard region each slot requires beyond its memory. */
    uint64_t guardBytes = 0;
    /** Place a guard region before slot 0 (shared pre-guard scheme). */
    bool guardBeforeSlots = false;
    /** Enable ColorGuard striping. */
    bool stripingEnabled = false;
    /**
     * Protection keys the pool may use (user-configurable since the
     * embedding application may use keys for other purposes, §5.1).
     */
    int keysAvailable = 15;
};

/** The computed contract. */
struct SlotLayout
{
    uint64_t slotBytes = 0;          ///< spacing between slot bases
    uint64_t preSlotGuardBytes = 0;
    uint64_t postSlotGuardBytes = 0;
    uint64_t numSlots = 0;
    uint64_t numStripes = 1;         ///< 1 = no striping
    uint64_t maxMemoryBytes = 0;
    uint64_t expectedSlotBytes = 0;
    uint64_t guardBytes = 0;
    uint64_t totalSlotBytes = 0;     ///< whole slab reservation

    /** Byte offset of slot @p i's base within the slab. */
    uint64_t
    slotOffset(uint64_t i) const
    {
        return preSlotGuardBytes + i * slotBytes;
    }

    /** Stripe (color index, 0-based) of slot @p i. */
    uint64_t stripeOf(uint64_t i) const { return i % numStripes; }

    /**
     * Checks the full Table 1 invariant set (1-6 upstream, 7-10 found
     * by verification) against @p config. Returns the first violated
     * invariant in the error message.
     */
    Status validate(const PoolConfig& config) const;
};

/**
 * Computes the slot layout for @p config. With Checked arithmetic,
 * impossible configurations fail; with SaturatingBuggy they may produce
 * a layout that fails validate() — exactly the §5.2 bug.
 */
Result<SlotLayout> computeLayout(const PoolConfig& config,
                                 LayoutArithmetic arithmetic =
                                     LayoutArithmetic::Checked);

}  // namespace sfi::pool

#endif  // SFIKIT_POOL_LAYOUT_H_
