#include "pool/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "base/cpu.h"
#include "base/logging.h"
#include "base/units.h"

namespace sfi::pool {

namespace {

/** Slot lifecycle. Transitions always hand the slot off through a
 *  mutex (shard or reclaim queue), so the per-slot metadata arrays
 *  need no atomics of their own. */
enum SlotState : uint8_t {
    kCold = 0,  ///< decommitted (or never committed): zero on next touch
    kWarm,      ///< in a warm-affinity cache, still committed
    kInUse,
    kFreeing,   ///< claimed by free(), not yet on a list
    kPending,   ///< queued for the reclamation thread
};

/** Stable small integer per thread, used to pick a home shard. */
uint32_t
threadOrdinal()
{
    static std::atomic<uint32_t> next{0};
    static thread_local uint32_t ordinal =
        next.fetch_add(1, std::memory_order_relaxed);
    return ordinal;
}

}  // namespace

struct MemoryPool::Core
{
    struct Shard
    {
        std::mutex mu;
        std::vector<uint64_t> cold;
        std::vector<uint64_t> warm;
    };

    Reservation slab;
    SlotLayout layout;
    PoolConfig config;
    Options opts;
    mpk::System* mpk = nullptr;
    std::vector<mpk::Pkey> stripeKeys;  ///< empty when striping off

    std::vector<Shard> shards;
    /** Guarded by slot-ownership handoff (see SlotState). */
    std::vector<uint8_t> committed;
    std::vector<uint64_t> dirtyBytes;  ///< page-aligned high-water span
    std::unique_ptr<std::atomic<uint8_t>[]> state;
    std::atomic<uint64_t> inUse{0};

    struct Counters
    {
        std::atomic<uint64_t> allocations{0};
        std::atomic<uint64_t> frees{0};
        std::atomic<uint64_t> firstCommits{0};
        std::atomic<uint64_t> warmHits{0};
        std::atomic<uint64_t> warmZeroes{0};
        std::atomic<uint64_t> warmZeroedBytes{0};
        std::atomic<uint64_t> steals{0};
        std::atomic<uint64_t> decommits{0};
        std::atomic<uint64_t> decommittedBytes{0};
    } counters;

    // Reclamation thread state.
    std::mutex reclaimMu;
    std::condition_variable reclaimCv;  ///< work for the reclaimer
    std::condition_variable idleCv;     ///< reclaimer went idle
    std::deque<uint64_t> reclaimQueue;
    uint64_t pendingDirty = 0;
    bool reclaimerBusy = false;
    bool drainRequested = false;
    bool stopRequested = false;
    std::thread reclaimer;

    ~Core();

    uint32_t homeShard() const
    {
        return threadOrdinal() % uint32_t(shards.size());
    }

    Status decommitSlot(uint64_t index);
    void firstCommitFailed(uint64_t index);
    void reclaimerLoop();
    bool popPendingReclaim(uint64_t* index);
};

Result<MemoryPool>
MemoryPool::create(Options options)
{
    auto layout = computeLayout(options.config, options.arithmetic);
    if (!layout)
        return Result<MemoryPool>::error(layout.message());
    if (auto st = layout->validate(options.config); !st) {
        return Result<MemoryPool>::error(
            "layout fails safety validation: " + st.message());
    }

    auto core = std::make_unique<Core>();
    core->layout = *layout;
    core->config = options.config;
    core->opts = options;
    core->mpk = options.mpk ? options.mpk : &mpk::defaultSystem();

    auto slab = Reservation::reserve(core->layout.totalSlotBytes);
    if (!slab)
        return Result<MemoryPool>::error(slab.message());
    core->slab = std::move(*slab);

    // One key per stripe; striping disabled when numStripes == 1.
    if (core->layout.numStripes > 1) {
        for (uint64_t s = 0; s < core->layout.numStripes; s++) {
            auto key = core->mpk->allocKey();
            if (!key) {
                // ~Core returns the keys allocated so far.
                for (mpk::Pkey k : core->stripeKeys)
                    (void)core->mpk->freeKey(k);
                core->stripeKeys.clear();
                return Result<MemoryPool>::error(
                    "allocating stripe keys: " + key.message());
            }
            core->stripeKeys.push_back(*key);
        }
    }

    uint64_t n = core->layout.numSlots;
    uint32_t shards = options.shards;
    if (shards == 0) {
        shards = std::min(8u,
                          std::max(1u, std::thread::hardware_concurrency()));
    }
    shards = uint32_t(std::min<uint64_t>(shards, n));
    core->shards = std::vector<Core::Shard>(shards);

    // Low slot indexes end on top of shard 0's LIFO stack so the first
    // single-threaded allocation is slot 0, matching the pre-sharding
    // allocator.
    for (uint64_t i = n; i-- > 0;)
        core->shards[i % shards].cold.push_back(i);

    core->committed.assign(n, 0);
    core->dirtyBytes.assign(n, 0);
    core->state = std::make_unique<std::atomic<uint8_t>[]>(n);

    if (options.deferredDecommit) {
        Core* c = core.get();
        core->reclaimer = std::thread([c] { c->reclaimerLoop(); });
    }
    return MemoryPool(std::move(core));
}

MemoryPool::Core::~Core()
{
    if (reclaimer.joinable()) {
        {
            std::lock_guard<std::mutex> lock(reclaimMu);
            stopRequested = true;
        }
        reclaimCv.notify_all();
        reclaimer.join();
    }
    if (mpk != nullptr) {
        for (mpk::Pkey key : stripeKeys)
            (void)mpk->freeKey(key);
    }
}

MemoryPool::MemoryPool(std::unique_ptr<Core> core) : core_(std::move(core))
{
}

MemoryPool::~MemoryPool() = default;
MemoryPool::MemoryPool(MemoryPool&&) noexcept = default;

MemoryPool&
MemoryPool::operator=(MemoryPool&& other) noexcept
{
    if (this != &other) {
        // Tear down this pool's reclamation thread and stripe keys
        // before adopting the other's state.
        core_.reset();
        core_ = std::move(other.core_);
    }
    return *this;
}

Status
MemoryPool::Core::decommitSlot(uint64_t index)
{
    uint64_t span = dirtyBytes[index];
    if (!committed[index] || span == 0)
        return Status::ok();
    Status st = slab.decommit(layout.slotOffset(index), span);
    if (st) {
        counters.decommits.fetch_add(1, std::memory_order_relaxed);
        counters.decommittedBytes.fetch_add(span,
                                            std::memory_order_relaxed);
        dirtyBytes[index] = 0;
    }
    return st;
}

/** Undo a failed checkout: the slot goes back to its cold list. */
void
MemoryPool::Core::firstCommitFailed(uint64_t index)
{
    Shard& sh = shards[index % shards.size()];
    std::lock_guard<std::mutex> lock(sh.mu);
    state[index].store(kCold, std::memory_order_relaxed);
    sh.cold.push_back(index);
}

bool
MemoryPool::Core::popPendingReclaim(uint64_t* index)
{
    std::lock_guard<std::mutex> lock(reclaimMu);
    if (reclaimQueue.empty())
        return false;
    *index = reclaimQueue.back();
    reclaimQueue.pop_back();
    pendingDirty -= std::min(pendingDirty, dirtyBytes[*index]);
    return true;
}

Result<Slot>
MemoryPool::allocate()
{
    Core& c = *core_;
    const uint32_t nshards = uint32_t(c.shards.size());
    const uint32_t home = c.homeShard();

    uint64_t index = UINT64_MAX;
    bool from_warm = false;
    for (int attempt = 0; attempt < 2 && index == UINT64_MAX; attempt++) {
        for (uint32_t round = 0; round < nshards && index == UINT64_MAX;
             round++) {
            Core::Shard& sh = c.shards[(home + round) % nshards];
            std::lock_guard<std::mutex> lock(sh.mu);
            if (!sh.warm.empty()) {
                index = sh.warm.back();
                sh.warm.pop_back();
                from_warm = true;
            } else if (!sh.cold.empty()) {
                index = sh.cold.back();
                sh.cold.pop_back();
            } else {
                continue;
            }
            c.state[index].store(kInUse, std::memory_order_relaxed);
            if (round > 0)
                c.counters.steals.fetch_add(1,
                                            std::memory_order_relaxed);
        }
        if (index != UINT64_MAX || !c.opts.deferredDecommit)
            break;

        // Every free list is empty but slots may still sit in (or be
        // mid-flight through) the reclaim queue: claim one and decommit
        // it inline rather than reporting a transient exhaustion.
        if (c.popPendingReclaim(&index)) {
            c.state[index].store(kInUse, std::memory_order_relaxed);
            if (Status st = c.decommitSlot(index); !st) {
                c.firstCommitFailed(index);
                return Result<Slot>::error(st.message());
            }
        } else if (attempt == 0) {
            // A reclaim batch may be in flight between the queue and
            // the cold lists; wait for the reclaimer and rescan once.
            std::unique_lock<std::mutex> lock(c.reclaimMu);
            c.idleCv.wait(lock, [&] { return !c.reclaimerBusy; });
        }
    }
    if (index == UINT64_MAX)
        return Result<Slot>::error("pool exhausted");

    Slot slot;
    slot.index = index;
    slot.base = c.slab.base() + c.layout.slotOffset(index);
    slot.pkey = keyOfStripe(c.layout.stripeOf(index));

    if (!c.committed[index]) {
        // First use: commit the memory range and stamp its color. The
        // color persists across free/decommit cycles (MPK stores it in
        // the PTE), so this happens once per slot lifetime.
        uint64_t commit = c.layout.maxMemoryBytes;
        Status st =
            slot.pkey != 0
                ? c.mpk->protectRange(slot.base, commit,
                                      PageAccess::ReadWrite, slot.pkey)
                : c.slab.protect(c.layout.slotOffset(index), commit,
                                 PageAccess::ReadWrite);
        if (!st) {
            c.firstCommitFailed(index);
            return Result<Slot>::error(st.message());
        }
        c.committed[index] = 1;
        c.counters.firstCommits.fetch_add(1, std::memory_order_relaxed);
    }

    c.inUse.fetch_add(1, std::memory_order_relaxed);
    c.counters.allocations.fetch_add(1, std::memory_order_relaxed);

    if (from_warm) {
        c.counters.warmHits.fetch_add(1, std::memory_order_relaxed);
        slot.warm = true;
        if (c.opts.zeroOnWarmReuse && c.dirtyBytes[index] > 0) {
            SFI_CHECK(c.slab
                          .zero(c.layout.slotOffset(index),
                                c.dirtyBytes[index])
                          .isOk());
            c.counters.warmZeroes.fetch_add(1,
                                            std::memory_order_relaxed);
            c.counters.warmZeroedBytes.fetch_add(
                c.dirtyBytes[index], std::memory_order_relaxed);
            c.dirtyBytes[index] = 0;
        }
        slot.dirtyBytes = c.dirtyBytes[index];
    }
    return slot;
}

Status
MemoryPool::free(const Slot& slot, uint64_t touched_bytes)
{
    Core& c = *core_;
    if (slot.index >= c.layout.numSlots)
        return Status::error("freeing a slot that is not in use");
    // The in-use check is a CAS so a concurrent double free cannot
    // slip a slot onto two free lists.
    uint8_t expected = kInUse;
    if (!c.state[slot.index].compare_exchange_strong(
            expected, kFreeing, std::memory_order_relaxed))
        return Status::error("freeing a slot that is not in use");

    uint64_t dirty = std::min(alignUp(touched_bytes, kOsPageSize),
                              c.layout.maxMemoryBytes);
    if (c.committed[slot.index])
        c.dirtyBytes[slot.index] =
            std::max(c.dirtyBytes[slot.index], dirty);

    c.counters.frees.fetch_add(1, std::memory_order_relaxed);
    c.inUse.fetch_sub(1, std::memory_order_relaxed);

    // Warm-affinity: keep the slot committed in the freeing thread's
    // shard if there is cache room.
    if (c.opts.warmSlotsPerShard > 0 && c.committed[slot.index]) {
        // Trim the resident span first: memset-zeroing on reuse only
        // beats decommit+refault while the span is small, so a large
        // footprint keeps just its head committed and the tail goes
        // through one madvise here.
        uint64_t keep =
            alignDown(c.opts.warmKeepResidentBytes, kOsPageSize);
        bool trimmed = true;
        if (c.dirtyBytes[slot.index] > keep) {
            uint64_t tail = c.dirtyBytes[slot.index] - keep;
            if (c.slab
                    .decommit(c.layout.slotOffset(slot.index) + keep,
                              tail)
                    .isOk()) {
                c.counters.decommits.fetch_add(
                    1, std::memory_order_relaxed);
                c.counters.decommittedBytes.fetch_add(
                    tail, std::memory_order_relaxed);
                c.dirtyBytes[slot.index] = keep;
            } else {
                // Full decommit below; the slot skips the warm cache.
                trimmed = false;
            }
        }
        if (trimmed) {
            Core::Shard& sh = c.shards[c.homeShard()];
            std::lock_guard<std::mutex> lock(sh.mu);
            if (sh.warm.size() < c.opts.warmSlotsPerShard) {
                c.state[slot.index].store(kWarm,
                                          std::memory_order_relaxed);
                sh.warm.push_back(slot.index);
                return Status::ok();
            }
        }
    }

    if (c.opts.deferredDecommit) {
        bool kick;
        {
            std::lock_guard<std::mutex> lock(c.reclaimMu);
            c.state[slot.index].store(kPending,
                                      std::memory_order_relaxed);
            c.reclaimQueue.push_back(slot.index);
            c.pendingDirty += c.dirtyBytes[slot.index];
            kick = c.pendingDirty >= c.opts.dirtyByteBudget;
        }
        if (kick)
            c.reclaimCv.notify_one();
        return Status::ok();
    }

    // Synchronous path: zero-on-reuse via decommit of the dirty span.
    Status st = c.decommitSlot(slot.index);
    Core::Shard& sh = c.shards[c.homeShard()];
    std::lock_guard<std::mutex> lock(sh.mu);
    c.state[slot.index].store(kCold, std::memory_order_relaxed);
    sh.cold.push_back(slot.index);
    return st;
}

Status
MemoryPool::free(const Slot& slot)
{
    return free(slot, core_->layout.maxMemoryBytes);
}

void
MemoryPool::Core::reclaimerLoop()
{
    std::unique_lock<std::mutex> lock(reclaimMu);
    for (;;) {
        reclaimCv.wait(lock, [&] {
            return stopRequested ||
                   (!reclaimQueue.empty() &&
                    (drainRequested ||
                     pendingDirty >= opts.dirtyByteBudget));
        });
        if (reclaimQueue.empty() && stopRequested)
            return;

        std::deque<uint64_t> batch = std::move(reclaimQueue);
        reclaimQueue.clear();
        pendingDirty = 0;
        reclaimerBusy = true;
        lock.unlock();

        // Batched madvise, then back to the cold lists. Slot metadata
        // is owned by the reclaimer here (state == kPending).
        for (uint64_t index : batch) {
            (void)decommitSlot(index);
            Shard& sh = shards[index % shards.size()];
            std::lock_guard<std::mutex> shard_lock(sh.mu);
            state[index].store(kCold, std::memory_order_relaxed);
            sh.cold.push_back(index);
        }

        lock.lock();
        reclaimerBusy = false;
        idleCv.notify_all();
    }
}

void
MemoryPool::quiesce()
{
    Core& c = *core_;
    if (!c.reclaimer.joinable())
        return;
    std::unique_lock<std::mutex> lock(c.reclaimMu);
    c.drainRequested = true;
    c.reclaimCv.notify_all();
    c.idleCv.wait(lock, [&] {
        return c.reclaimQueue.empty() && !c.reclaimerBusy;
    });
    c.drainRequested = false;
}

MemoryPool::Stats
MemoryPool::stats() const
{
    Core& c = *core_;
    Stats s;
    s.allocations = c.counters.allocations.load(std::memory_order_relaxed);
    s.frees = c.counters.frees.load(std::memory_order_relaxed);
    s.firstCommits =
        c.counters.firstCommits.load(std::memory_order_relaxed);
    s.warmHits = c.counters.warmHits.load(std::memory_order_relaxed);
    s.warmZeroes = c.counters.warmZeroes.load(std::memory_order_relaxed);
    s.warmZeroedBytes =
        c.counters.warmZeroedBytes.load(std::memory_order_relaxed);
    s.steals = c.counters.steals.load(std::memory_order_relaxed);
    s.decommits = c.counters.decommits.load(std::memory_order_relaxed);
    s.decommittedBytes =
        c.counters.decommittedBytes.load(std::memory_order_relaxed);
    for (Core::Shard& sh : c.shards) {
        std::lock_guard<std::mutex> lock(sh.mu);
        s.coldDepth += sh.cold.size();
        s.warmDepth += sh.warm.size();
    }
    {
        std::lock_guard<std::mutex> lock(c.reclaimMu);
        s.pendingReclaim = c.reclaimQueue.size();
    }
    return s;
}

const SlotLayout&
MemoryPool::layout() const
{
    return core_->layout;
}

uint64_t
MemoryPool::slotsInUse() const
{
    return core_->inUse.load(std::memory_order_relaxed);
}

uint64_t
MemoryPool::capacity() const
{
    return core_->layout.numSlots;
}

mpk::System&
MemoryPool::mpkSystem() const
{
    return *core_->mpk;
}

mpk::Pkey
MemoryPool::keyOfStripe(uint64_t s) const
{
    const auto& keys = core_->stripeKeys;
    return keys.empty() ? 0 : keys[s % keys.size()];
}

rt::LinearMemory
MemoryPool::memoryView(const Slot& slot, uint32_t initial_pages,
                       uint32_t max_pages) const
{
    const Core& c = *core_;
    uint64_t max_bytes = uint64_t(max_pages) * kWasmPageSize;
    SFI_CHECK_MSG(max_bytes <= c.layout.maxMemoryBytes,
                  "instance max memory exceeds pool slot size");
    // Fault attribution covers the compiler contract window.
    uint64_t reserved = std::min(
        c.layout.expectedSlotBytes,
        c.layout.totalSlotBytes - c.layout.slotOffset(slot.index));
    return rt::LinearMemory::view(slot.base, initial_pages, max_pages,
                                  reserved);
}

}  // namespace sfi::pool
