#include "pool/pool.h"

#include <algorithm>

#include "base/logging.h"
#include "base/units.h"

namespace sfi::pool {

Result<MemoryPool>
MemoryPool::create(Options options)
{
    auto layout = computeLayout(options.config, options.arithmetic);
    if (!layout)
        return Result<MemoryPool>::error(layout.message());
    if (auto st = layout->validate(options.config); !st) {
        return Result<MemoryPool>::error(
            "layout fails safety validation: " + st.message());
    }

    MemoryPool pool;
    pool.layout_ = *layout;
    pool.config_ = options.config;
    pool.mpk_ = options.mpk ? options.mpk : &mpk::defaultSystem();

    auto slab = Reservation::reserve(pool.layout_.totalSlotBytes);
    if (!slab)
        return Result<MemoryPool>::error(slab.message());
    pool.slab_ = std::move(*slab);

    // One key per stripe; striping disabled when numStripes == 1.
    if (pool.layout_.numStripes > 1) {
        for (uint64_t s = 0; s < pool.layout_.numStripes; s++) {
            auto key = pool.mpk_->allocKey();
            if (!key) {
                return Result<MemoryPool>::error(
                    "allocating stripe keys: " + key.message());
            }
            pool.stripeKeys_.push_back(*key);
        }
    }

    pool.freeList_.reserve(pool.layout_.numSlots);
    for (uint64_t i = pool.layout_.numSlots; i-- > 0;)
        pool.freeList_.push_back(i);
    pool.committed_.assign(pool.layout_.numSlots, false);
    pool.inUseFlags_.assign(pool.layout_.numSlots, false);
    return pool;
}

MemoryPool::~MemoryPool()
{
    if (mpk_ != nullptr) {
        for (mpk::Pkey key : stripeKeys_)
            (void)mpk_->freeKey(key);
    }
}

Result<Slot>
MemoryPool::allocate()
{
    if (freeList_.empty())
        return Result<Slot>::error("pool exhausted");
    uint64_t i = freeList_.back();
    freeList_.pop_back();
    inUseFlags_[i] = true;
    inUse_++;

    Slot slot;
    slot.index = i;
    slot.base = slab_.base() + layout_.slotOffset(i);
    slot.pkey = keyOfStripe(layout_.stripeOf(i));

    if (!committed_[i]) {
        // First use: commit the memory range and stamp its color. The
        // color persists across free/decommit cycles (MPK stores it in
        // the PTE), so this happens once per slot lifetime.
        uint64_t commit = layout_.maxMemoryBytes;
        if (slot.pkey != 0) {
            Status st = mpk_->protectRange(
                slot.base, commit, PageAccess::ReadWrite, slot.pkey);
            if (!st) {
                free(slot);
                return Result<Slot>::error(st.message());
            }
        } else {
            Status st = slab_.protect(layout_.slotOffset(i), commit,
                                      PageAccess::ReadWrite);
            if (!st) {
                free(slot);
                return Result<Slot>::error(st.message());
            }
        }
        committed_[i] = true;
    }
    return slot;
}

Status
MemoryPool::free(const Slot& slot)
{
    if (slot.index >= layout_.numSlots || !inUseFlags_[slot.index])
        return Status::error("freeing a slot that is not in use");
    inUseFlags_[slot.index] = false;
    inUse_--;
    freeList_.push_back(slot.index);
    if (committed_[slot.index]) {
        // Zero-on-reuse without losing the mapping or the color.
        return slab_.decommit(layout_.slotOffset(slot.index),
                              layout_.maxMemoryBytes);
    }
    return Status::ok();
}

rt::LinearMemory
MemoryPool::memoryView(const Slot& slot, uint32_t initial_pages,
                       uint32_t max_pages) const
{
    uint64_t max_bytes = uint64_t(max_pages) * kWasmPageSize;
    SFI_CHECK_MSG(max_bytes <= layout_.maxMemoryBytes,
                  "instance max memory exceeds pool slot size");
    // Fault attribution covers the compiler contract window.
    uint64_t reserved = std::min(
        layout_.expectedSlotBytes,
        layout_.totalSlotBytes - layout_.slotOffset(slot.index));
    return rt::LinearMemory::view(slot.base, initial_pages, max_pages,
                                  reserved);
}

}  // namespace sfi::pool
